package repro

// The benchmark harness: one benchmark per reproduced table and figure
// of the paper, one per criterion study and ablation, plus performance
// benchmarks of the core pipeline. Each experiment benchmark runs the
// full regeneration of its artefact and asserts (once) that the
// paper's qualitative shape held, so `go test -bench=.` doubles as a
// reproduction audit.

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/recsys"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	// Shape audit once, outside the timed loop.
	if res := r.Run(42); !res.ShapeOK {
		b.Fatalf("%s did not reproduce the paper's shape:\n%s", id, res.Summary())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Run(42)
	}
}

// ---- Tables ----

// BenchmarkTable1Aims regenerates Table 1 (the seven-aims taxonomy).
func BenchmarkTable1Aims(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkTable2AcademicAims regenerates Table 2 (aims of academic
// systems; 14 rows, 25 marks).
func BenchmarkTable2AcademicAims(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkTable3Commercial regenerates Table 3 (eight commercial
// systems with explanation facilities).
func BenchmarkTable3Commercial(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkTable4Academic regenerates Table 4 (ten academic systems).
func BenchmarkTable4Academic(b *testing.B) { benchExperiment(b, "T4") }

// ---- Figures ----

// BenchmarkFigure1Scrutable regenerates Figure 1: the SASY-style
// scrutable holiday recommender walkthrough.
func BenchmarkFigure1Scrutable(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkFigure2Treemap regenerates Figure 2: the squarified treemap
// news visualization.
func BenchmarkFigure2Treemap(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkFigure3Influence regenerates Figure 3: the LIBRA influence-
// of-ratings explanation.
func BenchmarkFigure3Influence(b *testing.B) { benchExperiment(b, "F3") }

// ---- Criterion studies (Section 3) ----

// BenchmarkE1Persuasion re-runs the Herlocker 21-interface persuasion
// study.
func BenchmarkE1Persuasion(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Effectiveness re-runs Bilgic & Mooney's satisfaction-vs-
// promotion protocol.
func BenchmarkE2Effectiveness(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3ConversationalEfficiency re-runs the Adaptive Place
// Advisor personalisation study.
func BenchmarkE3ConversationalEfficiency(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4StructuredOverview re-runs Pu & Chen's completion-time
// comparison.
func BenchmarkE4StructuredOverview(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5TrustLoyalty re-runs the McNee et al. elicitation-
// interface loyalty study.
func BenchmarkE5TrustLoyalty(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Transparency re-runs the Section 3.1 transparency task.
func BenchmarkE6Transparency(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Scrutability re-runs the Czarkowski-style scrutability
// task.
func BenchmarkE7Scrutability(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8DynamicCritiquing re-runs the McCarthy/Reilly compound-
// critique efficiency study.
func BenchmarkE8DynamicCritiquing(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9RatingShift re-runs Cosley et al.'s biased re-rating
// study.
func BenchmarkE9RatingShift(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10SatisfactionWalkthrough runs the Section 3.7 qualitative
// walk-through with comment/frustration/delight/workaround logging.
func BenchmarkE10SatisfactionWalkthrough(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11PersuasionBackfire runs the Section 2.4 longitudinal
// backfire study: hype wins early sessions, loses trust and loyalty.
func BenchmarkE11PersuasionBackfire(b *testing.B) { benchExperiment(b, "E11") }

// ---- Ablations (Section 3.8 trade-offs) ----

// BenchmarkA1DetailVsTime sweeps explanation detail against decision
// quality and time.
func BenchmarkA1DetailVsTime(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkA2PersuasionVsRegret sweeps hype against acceptance and
// post-consumption regret.
func BenchmarkA2PersuasionVsRegret(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkA3Personality compares the Section 4.6 personalities.
func BenchmarkA3Personality(b *testing.B) { benchExperiment(b, "A3") }

// BenchmarkA4NeighbourhoodSize sweeps CF neighbourhood size against
// accuracy and histogram persuasiveness.
func BenchmarkA4NeighbourhoodSize(b *testing.B) { benchExperiment(b, "A4") }

// BenchmarkA5AccuracyVsGrounding compares matrix factorisation against
// explainable recommenders on accuracy and decision support.
func BenchmarkA5AccuracyVsGrounding(b *testing.B) { benchExperiment(b, "A5") }

// BenchmarkA6Diversification sweeps Ziegler-style topic
// diversification against list score and diversity.
func BenchmarkA6Diversification(b *testing.B) { benchExperiment(b, "A6") }

// ---- Core pipeline performance ----

func benchEngine(b *testing.B) (*dataset.Community, *core.Engine) {
	b.Helper()
	c := dataset.Movies(dataset.Config{Seed: 42, Users: 200, Items: 300, RatingsPerUser: 30})
	eng, err := core.New(c.Catalog, c.Ratings, core.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	return c, eng
}

// BenchmarkEngineRecommend measures an explained top-10 for rotating
// users on a 200x300 community.
func BenchmarkEngineRecommend(b *testing.B) {
	_, eng := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Recommend(model.UserID(i%200+1), 10); err != nil &&
			err != recsys.ErrColdStart {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineExplain measures a single on-demand explanation.
func BenchmarkEngineExplain(b *testing.B) {
	c, eng := benchEngine(b)
	items := c.Catalog.Items()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = eng.Explain(model.UserID(i%200+1), items[i%len(items)].ID)
	}
}

// BenchmarkEngineRecommendParallel measures explained top-10 served
// from all cores at once. The snapshot read path takes no global lock,
// so this should scale with GOMAXPROCS relative to
// BenchmarkEngineRecommend rather than serialising.
func BenchmarkEngineRecommendParallel(b *testing.B) {
	_, eng := benchEngine(b)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			u := model.UserID(ctr.Add(1)%200 + 1)
			if _, err := eng.Recommend(u, 10); err != nil && err != recsys.ErrColdStart {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineExplainParallel measures concurrent on-demand
// explanations across all cores.
func BenchmarkEngineExplainParallel(b *testing.B) {
	c, eng := benchEngine(b)
	items := c.Catalog.Items()
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			_, _ = eng.Explain(model.UserID(i%200+1), items[int(i)%len(items)].ID)
		}
	})
}

// BenchmarkEngineBrowseAll measures the predicted-ratings-for-
// everything view.
func BenchmarkEngineBrowseAll(b *testing.B) {
	_, eng := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.BrowseAll(model.UserID(i%200 + 1))
	}
}

// BenchmarkCommunityGeneration measures synthetic community build time.
func BenchmarkCommunityGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = dataset.Movies(dataset.Config{Seed: uint64(i + 1), Users: 200, Items: 300, RatingsPerUser: 30})
	}
}
