// Command annbench measures the candidate-generation hot path: the
// SimilarTo latency of the brute-force catalogue scan against the ANN
// content index in each configuration (flat, HNSW, HNSW over int8
// codes), plus the recall@10 of every approximate configuration
// against the exact scan on the same seeded catalogue. The result is
// written as JSON for trend tracking (BENCH_ann.json at the repo root
// is the committed baseline).
//
//	annbench -items 4000 -queries 400 -out BENCH_ann.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/stats"
)

// result is one configuration's measurements over the query set.
type result struct {
	Config    string  `json:"config"`
	P50Micros float64 `json:"similar_p50_us"`
	P99Micros float64 `json:"similar_p99_us"`
	// RecallAt10 is the mean overlap of this configuration's top-10
	// with the brute-force top-10 (1 by definition for brute force;
	// flat/unquantized is exact by construction).
	RecallAt10 float64 `json:"recall_at_10"`
	// DistanceCompsPerQuery is the mean number of index vectors scored
	// per search (0 for brute force, which scores the catalogue
	// outside the index).
	DistanceCompsPerQuery float64 `json:"distance_comps_per_query"`
}

// report is the JSON document annbench emits.
type report struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	Seed       uint64   `json:"seed"`
	Users      int      `json:"users"`
	Items      int      `json:"items"`
	Queries    int      `json:"queries"`
	ContentDim int      `json:"content_dim"`
	Results    []result `json:"results"`
}

func main() {
	seed := flag.Uint64("seed", 42, "community seed")
	users := flag.Int("users", 200, "community users")
	items := flag.Int("items", 4000, "community items")
	queries := flag.Int("queries", 400, "SimilarTo queries per configuration")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	com := dataset.Movies(dataset.Config{Seed: *seed, Users: *users, Items: *items, RatingsPerUser: 20})
	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Seed:      *seed,
		Users:     *users,
		Items:     *items,
		Queries:   *queries,
	}

	// The exact baseline: every configuration's recall is scored
	// against these answers.
	brute, err := core.New(com.Catalog, com.Ratings, core.WithSeed(*seed))
	if err != nil {
		log.Fatalf("annbench: %v", err)
	}
	exact, durs := answers(brute, com, *queries)
	rep.Results = append(rep.Results, result{
		Config:     "brute-force",
		P50Micros:  stats.Quantile(durs, 0.50),
		P99Micros:  stats.Quantile(durs, 0.99),
		RecallAt10: 1,
	})
	log.Printf("annbench: %-11s p50=%0.0fus p99=%0.0fus", "brute-force", stats.Quantile(durs, 0.50), stats.Quantile(durs, 0.99))

	configs := []struct {
		name string
		cfg  core.ANNConfig
	}{
		{"flat", core.ANNConfig{Kind: "flat"}},
		{"hnsw", core.ANNConfig{Kind: "hnsw"}},
		{"hnsw-int8", core.ANNConfig{Kind: "hnsw", Quantize: true}},
	}
	for _, c := range configs {
		eng, err := core.New(com.Catalog, com.Ratings, core.WithSeed(*seed), core.WithANN(c.cfg))
		if err != nil {
			log.Fatalf("annbench: %s: %v", c.name, err)
		}
		rep.ContentDim = eng.ANNState().ContentDim
		got, durs := answers(eng, com, *queries)
		st := eng.ANNState()
		r := result{
			Config:     c.name,
			P50Micros:  stats.Quantile(durs, 0.50),
			P99Micros:  stats.Quantile(durs, 0.99),
			RecallAt10: recall(exact, got),
		}
		if st.Searches > 0 {
			r.DistanceCompsPerQuery = float64(st.ContentStats.DistanceComps) / float64(st.Searches)
		}
		rep.Results = append(rep.Results, r)
		log.Printf("annbench: %-11s p50=%0.0fus p99=%0.0fus recall@10=%.4f comps/query=%0.0f",
			c.name, r.P50Micros, r.P99Micros, r.RecallAt10, r.DistanceCompsPerQuery)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("annbench: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("annbench: %v", err)
	}
	log.Printf("annbench: wrote %s", *out)
}

// answers runs the seeded query mix against one engine and returns the
// top-10 ID list per query plus per-query latencies in microseconds.
// Queries cycle deterministically through seed items and users, so
// every configuration answers the identical workload.
func answers(eng *core.Engine, com *dataset.Community, queries int) ([][]model.ItemID, []float64) {
	items := com.Catalog.Items()
	userIDs := com.Ratings.Users()
	// Warm the path (pipeline lazy state, scratch pools) outside the
	// timed window.
	for i := 0; i < 16; i++ {
		_, _ = eng.SimilarTo(userIDs[i%len(userIDs)], items[i%len(items)].ID, 10)
	}
	ids := make([][]model.ItemID, 0, queries)
	durs := make([]float64, 0, queries)
	for q := 0; q < queries; q++ {
		u := userIDs[q%len(userIDs)]
		seed := items[(q*17)%len(items)].ID
		t0 := time.Now()
		p, err := eng.SimilarTo(u, seed, 10)
		d := time.Since(t0)
		if err != nil {
			log.Fatalf("annbench: SimilarTo(%d, %d): %v", u, seed, err)
		}
		durs = append(durs, d.Seconds()*1e6)
		top := make([]model.ItemID, 0, len(p.Entries))
		for _, en := range p.Entries {
			top = append(top, en.Item.ID)
		}
		ids = append(ids, top)
	}
	return ids, durs
}

// recall scores per-query ID overlap against the exact answers,
// averaged over queries with a non-empty exact top list.
func recall(exact, got [][]model.ItemID) float64 {
	if len(exact) != len(got) {
		panic(fmt.Sprintf("annbench: %d exact vs %d approximate answer lists", len(exact), len(got)))
	}
	var sum float64
	var n int
	for q := range exact {
		if len(exact[q]) == 0 {
			continue
		}
		want := make(map[model.ItemID]bool, len(exact[q]))
		for _, id := range exact[q] {
			want[id] = true
		}
		hit := 0
		for _, id := range got[q] {
			if want[id] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(exact[q]))
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
