// Command clusterbench measures routed-cluster serving cost against
// the single-engine baseline: the same seeded community is served by a
// 1-shard and an N-shard router, a fixed read-heavy workload is driven
// through each at a configurable concurrency, and the result — ops/s
// plus p50/p95/p99 latency per configuration and operation mix — is
// written as JSON for trend tracking (BENCH_cluster.json at the repo
// root is the committed baseline).
//
//	clusterbench -shards 4 -ops 20000 -workers 8 -out BENCH_cluster.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// result is one benchmarked configuration.
type result struct {
	Shards    int     `json:"shards"`
	Ops       int     `json:"ops"`
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
}

// report is the JSON document clusterbench emits.
type report struct {
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	Seed      uint64   `json:"seed"`
	Users     int      `json:"users"`
	Items     int      `json:"items"`
	Workload  string   `json:"workload"`
	Results   []result `json:"results"`
}

func main() {
	seed := flag.Uint64("seed", 42, "community seed")
	users := flag.Int("users", 400, "community users")
	items := flag.Int("items", 500, "community items")
	shards := flag.Int("shards", 4, "shard count for the routed configuration")
	ops := flag.Int("ops", 20000, "operations per configuration")
	workers := flag.Int("workers", 8, "concurrent workers")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	com := dataset.Movies(dataset.Config{Seed: *seed, Users: *users, Items: *items, RatingsPerUser: 25})
	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Seed:      *seed,
		Users:     *users,
		Items:     *items,
		Workload:  "80% recommend, 10% similar (scatter-gather), 5% explain, 5% rate",
	}
	for _, n := range []int{1, *shards} {
		r, err := run(com, n, *ops, *workers, *seed)
		if err != nil {
			log.Fatalf("clusterbench: shards=%d: %v", n, err)
		}
		rep.Results = append(rep.Results, r)
		log.Printf("clusterbench: shards=%d %0.0f ops/s p50=%0.0fus p95=%0.0fus p99=%0.0fus",
			n, r.OpsPerSec, r.P50Micros, r.P95Micros, r.P99Micros)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("clusterbench: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("clusterbench: %v", err)
	}
	log.Printf("clusterbench: wrote %s", *out)
}

// run drives the workload through a router with the given shard count
// and reports throughput and latency quantiles.
func run(com *dataset.Community, shards, ops, workers int, seed uint64) (result, error) {
	rt, err := cluster.New(com.Catalog, com.Ratings, cluster.Options{Shards: shards, Seed: seed})
	if err != nil {
		return result{}, err
	}
	userIDs := com.Ratings.Users()
	itemIDs := com.Catalog.Items()

	// Warm every shard's snapshot before timing.
	for i := 0; i < shards*4 && i < len(userIDs); i++ {
		if _, err := rt.RecommendContext(context.Background(), userIDs[i], 5); err != nil {
			return result{}, fmt.Errorf("warmup: %w", err)
		}
	}

	durs := make([][]float64, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := w; i < ops; i += workers {
				u := userIDs[i%len(userIDs)]
				it := itemIDs[i%len(itemIDs)].ID
				t0 := time.Now()
				var err error
				switch {
				case i%20 < 16: // 80%
					_, err = rt.RecommendContext(ctx, u, 5)
				case i%20 < 18: // 10%
					_, err = rt.SimilarToContext(ctx, u, it, 5)
				case i%20 < 19: // 5%
					// A random (user, item) pair may legitimately have no
					// evidence — only infrastructure failures are reportable.
					if _, xerr := rt.ExplainContext(ctx, u, it); core.IsInfrastructureFailure(xerr) {
						err = xerr
					}
				default: // 5%
					err = rt.Rate(u, it, float64(1+i%5))
				}
				durs[w] = append(durs[w], time.Since(t0).Seconds()*1e6)
				if err != nil {
					log.Printf("clusterbench: op %d: %v", i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all []float64
	for _, d := range durs {
		all = append(all, d...)
	}
	return result{
		Shards:    shards,
		Ops:       ops,
		Workers:   workers,
		Seconds:   elapsed,
		OpsPerSec: float64(ops) / elapsed,
		P50Micros: stats.Quantile(all, 0.50),
		P95Micros: stats.Quantile(all, 0.95),
		P99Micros: stats.Quantile(all, 0.99),
	}, nil
}
