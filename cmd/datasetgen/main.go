// Command datasetgen generates a synthetic community for any of the
// six paper domains and writes it to disk in the store format, so
// experiments and demos can run against committed fixtures.
//
// Usage:
//
//	datasetgen -domain movies -seed 7 -users 200 -items 300 -out ./data
//
// writes ./data/catalog.json and ./data/ratings.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/store"
)

// generators maps domain names to their community builders.
var generators = map[string]func(dataset.Config) *dataset.Community{
	"movies":      dataset.Movies,
	"books":       dataset.Books,
	"news":        dataset.News,
	"cameras":     dataset.Cameras,
	"restaurants": dataset.Restaurants,
	"holidays":    dataset.Holidays,
}

func main() {
	domain := flag.String("domain", "movies", "one of movies, books, news, cameras, restaurants, holidays")
	seed := flag.Uint64("seed", 42, "generation seed")
	users := flag.Int("users", 200, "number of users")
	items := flag.Int("items", 300, "number of items")
	perUser := flag.Int("ratings", 30, "mean ratings per user")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	gen, ok := generators[*domain]
	if !ok {
		fmt.Fprintf(os.Stderr, "datasetgen: unknown domain %q\n", *domain)
		os.Exit(2)
	}
	c := gen(dataset.Config{Seed: *seed, Users: *users, Items: *items, RatingsPerUser: *perUser})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	writeTo := func(name string, save func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := save(f); err != nil {
			fatal(err)
		}
		info, err := f.Stat()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
	}
	writeTo("catalog.json", func(f *os.File) error { return store.SaveCatalog(f, c.Catalog) })
	writeTo("ratings.json", func(f *os.File) error { return store.SaveMatrix(f, c.Ratings) })
	fmt.Printf("%s community: %d items, %d users, %d ratings\n",
		*domain, c.Catalog.Len(), c.Truth.Users(), c.Ratings.Len())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datasetgen: %v\n", err)
	os.Exit(1)
}
