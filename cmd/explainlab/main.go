// Command explainlab runs the evaluation laboratory: every reproduced
// experiment (tables T1-T4, figures F1-F3, criterion studies E1-E9 and
// ablations A1-A4), printing each report and a final scoreboard of
// which paper shapes were reproduced.
//
// Usage:
//
//	explainlab                  # run everything at the default seed
//	explainlab -only E1,E2      # a subset
//	explainlab -seed 7          # another seed
//	explainlab -summary         # scoreboard only, no report bodies
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "experiment seed")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	summary := flag.Bool("summary", false, "print only the scoreboard")
	workers := flag.Int("workers", runtime.NumCPU(), "experiments to run concurrently (results print in order)")
	flag.Parse()

	var runners []experiments.Runner
	if *only == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "explainlab: unknown experiment %q\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	// Experiments are independent and deterministic, so they can run
	// concurrently; results are printed in registry order.
	if *workers < 1 {
		*workers = 1
	}
	results := make([]*experiments.Result, len(runners))
	sem := make(chan struct{}, *workers)
	var wg sync.WaitGroup
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r experiments.Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = r.Run(*seed)
		}(i, r)
	}
	wg.Wait()

	failures := 0
	var board strings.Builder
	for _, res := range results {
		if !*summary {
			fmt.Printf("==== %s: %s (seed %d) ====\n\n", res.ID, res.Title, *seed)
			fmt.Println(res.Report)
		}
		fmt.Println(res.Summary())
		verdict := "reproduced"
		if !res.ShapeOK {
			verdict = "NOT REPRODUCED"
			failures++
		}
		fmt.Fprintf(&board, "  %-3s %-55s %s\n", res.ID, res.Title, verdict)
	}
	fmt.Printf("\nScoreboard (seed %d):\n%s", *seed, board.String())
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "explainlab: %d experiment(s) failed to reproduce\n", failures)
		os.Exit(1)
	}
}
