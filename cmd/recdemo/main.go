// Command recdemo runs a scripted end-to-end session against the
// public Engine API: explained recommendations, an on-demand "why?",
// a "why is this low?", rating and opinion feedback, and a surprise-me
// request — the full explain-present-interact cycle of the paper on
// one screen.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/store"
)

func main() {
	seed := flag.Uint64("seed", 42, "community seed (ignored with -load)")
	user := flag.Int("user", 1, "user to run the session as")
	load := flag.String("load", "", "directory with catalog.json and ratings.json (see cmd/datasetgen)")
	flag.Parse()

	catalog, ratings, err := loadOrGenerate(*load, *seed)
	if err != nil {
		log.Fatalf("recdemo: %v", err)
	}
	eng, err := core.New(catalog, ratings, core.WithSeed(*seed), core.WithPersonality(present.Frank))
	if err != nil {
		log.Fatalf("recdemo: %v", err)
	}
	u := model.UserID(*user)

	fmt.Println("== Explained top-5 ==")
	p, err := eng.Recommend(u, 5)
	if err != nil {
		log.Fatalf("recdemo: %v", err)
	}
	fmt.Println(p.Render())

	top := p.Entries[0].Item
	fmt.Printf("== Why %q? ==\n", top.Title)
	exp, err := eng.Explain(u, top.ID)
	if err != nil {
		log.Fatalf("recdemo: %v", err)
	}
	fmt.Println(exp.Text)
	if exp.Detail != "" {
		fmt.Println(exp.Detail)
	}

	fmt.Println("== Browsing everything; why is the worst pick predicted low? ==")
	view := eng.BrowseAll(u)
	if len(view.Entries) > 0 {
		worst := view.Entries[len(view.Entries)-1]
		fmt.Printf("lowest prediction: %s (%.1f stars)\n", worst.Item.Title, worst.Prediction.Score)
		if low, err := eng.WhyLow(u, worst.Item.ID); err == nil {
			fmt.Println(low.Text)
		} else {
			fmt.Println("(no content-based reason available)")
		}
	}

	fmt.Println("\n== Feedback: not interested in the top pick ==")
	if err := eng.Opinion(u, interact.Opinion{Kind: interact.NoMoreLikeThis, Item: top.ID}); err != nil {
		log.Fatalf("recdemo: %v", err)
	}
	fmt.Println("== And surprise me a little ==")
	if err := eng.Opinion(u, interact.Opinion{Kind: interact.SurpriseMe}); err != nil {
		log.Fatalf("recdemo: %v", err)
	}
	fmt.Printf("exploration slider now at %.0f%%\n\n", eng.Surprise(u)*100)

	p2, err := eng.Recommend(u, 5)
	if err != nil {
		log.Fatalf("recdemo: %v", err)
	}
	fmt.Println("== Recommendations after feedback ==")
	fmt.Println(p2.Render())

	fmt.Println("== Where the time went (per pipeline stage) ==")
	stages := eng.Metrics().Stages
	keys := make([]string, 0, len(stages))
	for k := range stages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := stages[k]
		fmt.Printf("  %-22s %3d calls  %s total\n", k, st.Invocations, st.Latency.Round(time.Microsecond))
	}
}

// loadOrGenerate reads a stored community from dir, or generates the
// default movie community when dir is empty.
func loadOrGenerate(dir string, seed uint64) (*model.Catalog, *model.Matrix, error) {
	if dir == "" {
		c := dataset.Movies(dataset.Config{Seed: seed, Users: 120, Items: 150, RatingsPerUser: 25})
		return c.Catalog, c.Ratings, nil
	}
	return store.LoadDir(dir)
}
