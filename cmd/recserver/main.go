// Command recserver serves an explanation-capable recommender over
// HTTP. It loads a stored community (see cmd/datasetgen) or generates
// a synthetic one, then exposes the JSON API of internal/server with
// the resilience chain (breakers, load shedding, degraded-mode
// fallbacks) installed. On SIGTERM/SIGINT it drains gracefully:
// /healthz flips to 503 so load balancers rotate the instance out,
// in-flight requests get -drain-timeout to finish, and only then does
// the listener close.
//
// Every served request is traced (internal/trace): responses carry
// X-Trace-ID, slow/errored/degraded traces are retained tail-based,
// and /debug/traces serves them — on the main listener and, with
// -debug-addr, on a separate operator port that can also expose pprof.
//
// With -shards N (N > 1) the same API is served by a consistent-hash
// router over N independent engine shards: users are partitioned by
// ring ownership, SimilarTo scatter-gathers across every shard, and
// GET /debug/cluster reports per-shard health and routing counters.
//
// With -trainer the engine serves a matrix-factorisation model through
// the versioned model lifecycle: -retrain-every N retrains in the
// background after every N writes, POST /debug/models/retrain does it
// on demand, GET /debug/models reports the artifact history, and
// responses carry the serving model_version. On a sharded deployment
// each shard trains its own model from its derived seed.
//
// With -data-dir the server survives crashes and restarts: every
// accepted write is appended to a write-ahead log before it is
// acknowledged (-fsync picks the durability/throughput trade,
// -checkpoint-every bounds replay length), trained model artifacts
// persist next to the log, and a restart replays the log — serving
// prior ratings and the last published model version without a cold
// retrain. While replay runs, /healthz answers 503 "recovering"; on
// SIGTERM the log is flushed and closed only after the HTTP listener
// drains, so no acknowledged write is lost on graceful exit either.
//
//	recserver -addr :8080 -load ./data
//	recserver -addr :8080 -shards 4
//	recserver -addr :8080 -trainer als-wr -retrain-every 100
//	recserver -addr :8080 -data-dir /var/lib/recserver -fsync every-n -fsync-every 8
//	curl 'localhost:8080/recommend?user=1&n=5'
//	curl 'localhost:8080/explain?user=1&item=42'
//	curl -X POST -H "Content-Type: application/json" -d '{"user":1,"item":42,"value":4.5}' localhost:8080/rate
//	curl 'localhost:8080/debug/traces?status=error'
//	curl 'localhost:8080/debug/models'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/ann"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys/mf"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wal"
)

// config is the parsed flag set, separated from main so validation is
// testable.
type config struct {
	addr            string
	seed            uint64
	load            string
	personality     string
	requestTimeout  time.Duration
	drainTimeout    time.Duration
	shedConcurrency int
	retryAttempts   int
	traceBuffer     int
	traceSlowMS     int
	traceSample     float64
	debugAddr       string
	debugPprof      bool
	shards          int
	trainer         string
	retrainEvery    int
	retrainInterval time.Duration
	modelHistory    int
	ann             string
	annM            int
	annEf           int
	annQuantize     bool
	dataDir         string
	fsync           string
	fsyncEvery      int
	checkpointEvery int
}

// validate checks the flag combination and returns every problem found
// — all of them, so an operator fixes the command line once, not one
// error per restart.
func (c *config) validate() []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if c.addr == "" {
		fail("-addr must not be empty")
	}
	if c.shards < 1 {
		fail("-shards must be at least 1, got %d", c.shards)
	}
	if _, err := parsePersonality(c.personality); err != nil {
		fail("-personality: %v", err)
	}
	if c.trainer != "" {
		if _, err := mf.NewTrainer(c.trainer, mf.Options{}); err != nil {
			fail("-trainer: %v", err)
		}
	}
	if c.retrainEvery < 0 {
		fail("-retrain-every must be non-negative, got %d", c.retrainEvery)
	}
	if c.retrainEvery > 0 && c.trainer == "" {
		fail("-retrain-every requires -trainer")
	}
	if c.retrainInterval < 0 {
		fail("-retrain-interval must be non-negative, got %s", c.retrainInterval)
	}
	if c.retrainInterval > 0 && c.trainer == "" {
		fail("-retrain-interval requires -trainer")
	}
	if c.modelHistory < 0 {
		fail("-model-history must be non-negative, got %d", c.modelHistory)
	}
	if c.modelHistory > 0 && c.trainer == "" {
		fail("-model-history requires -trainer")
	}
	switch c.ann {
	case "", ann.KindHNSW, ann.KindFlat:
	default:
		fail("-ann: unknown index kind %q: want hnsw or flat", c.ann)
	}
	if c.annM < 0 {
		fail("-ann-m must be non-negative, got %d", c.annM)
	}
	if c.annEf < 0 {
		fail("-ann-ef must be non-negative, got %d", c.annEf)
	}
	if c.ann == "" {
		if c.annM != 0 {
			fail("-ann-m requires -ann")
		}
		if c.annEf != 0 {
			fail("-ann-ef requires -ann")
		}
		if c.annQuantize {
			fail("-ann-quantize requires -ann")
		}
	}
	if c.requestTimeout < 0 {
		fail("-request-timeout must be non-negative, got %s", c.requestTimeout)
	}
	if c.drainTimeout < 0 {
		fail("-drain-timeout must be non-negative, got %s", c.drainTimeout)
	}
	if c.shedConcurrency < 0 {
		fail("-shed-concurrency must be non-negative, got %d", c.shedConcurrency)
	}
	if c.retryAttempts < 0 {
		fail("-retry-attempts must be non-negative, got %d", c.retryAttempts)
	}
	if c.traceBuffer < 1 {
		fail("-trace-buffer must be positive, got %d", c.traceBuffer)
	}
	if c.traceSample < 0 || c.traceSample > 1 {
		fail("-trace-sample must be within [0, 1], got %v", c.traceSample)
	}
	if c.debugPprof && c.debugAddr == "" {
		fail("-debug-pprof requires -debug-addr")
	}
	if _, err := parseFsync(c.fsync); err != nil {
		fail("-fsync: %v", err)
	}
	if c.fsync == "every-n" && c.fsyncEvery < 1 {
		fail("-fsync every-n requires a positive -fsync-every, got %d", c.fsyncEvery)
	}
	if c.fsyncEvery != 0 && c.fsync != "every-n" {
		fail("-fsync-every requires -fsync every-n")
	}
	if c.fsyncEvery < 0 {
		fail("-fsync-every must be non-negative, got %d", c.fsyncEvery)
	}
	if c.checkpointEvery < 0 {
		fail("-checkpoint-every must be non-negative, got %d", c.checkpointEvery)
	}
	if c.dataDir == "" {
		if c.fsync != "always" {
			fail("-fsync requires -data-dir")
		}
		if c.fsyncEvery != 0 {
			fail("-fsync-every requires -data-dir")
		}
		if c.checkpointEvery != 0 {
			fail("-checkpoint-every requires -data-dir")
		}
	}
	return errs
}

// parseFsync maps the flag spelling onto the log's policy; the names
// are wal.FsyncPolicy's String() forms.
func parseFsync(name string) (wal.FsyncPolicy, error) {
	for _, p := range []wal.FsyncPolicy{wal.FsyncAlways, wal.FsyncEveryN, wal.FsyncOS} {
		if p.String() == name {
			return p, nil
		}
	}
	return wal.FsyncAlways, fmt.Errorf("unknown policy %q: want always, every-n or os", name)
}

// trainerConfig builds the lifecycle config for one engine seeded with
// seed. Only called after validate, so the trainer name resolves.
func (c *config) trainerConfig(seed uint64) core.TrainerConfig {
	tr, err := mf.NewTrainer(c.trainer, mf.Options{Seed: seed})
	if err != nil {
		panic(err) // unreachable: validate() resolved the same name
	}
	return core.TrainerConfig{
		Trainer:         tr,
		RetrainEvery:    c.retrainEvery,
		RetrainInterval: c.retrainInterval,
		History:         c.modelHistory,
		Clock:           time.Now,
	}
}

// annConfig maps the -ann* flags onto the engine's index config, or
// nil when the ANN path is off. Zero M/EfSearch defer to the library
// defaults.
func (c *config) annConfig() *core.ANNConfig {
	if c.ann == "" {
		return nil
	}
	return &core.ANNConfig{
		Kind:     c.ann,
		M:        c.annM,
		EfSearch: c.annEf,
		Quantize: c.annQuantize,
	}
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.Uint64Var(&cfg.seed, "seed", 42, "community seed (ignored with -load)")
	flag.StringVar(&cfg.load, "load", "", "directory with catalog.json and ratings.json")
	flag.StringVar(&cfg.personality, "personality", "neutral", "neutral, affirming, serendipitous, bold or frank")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", 10*time.Second, "per-request deadline (0 = none)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	flag.IntVar(&cfg.shedConcurrency, "shed-concurrency", 256, "per-stage concurrency limit before load shedding (0 = off)")
	flag.IntVar(&cfg.retryAttempts, "retry-attempts", 2, "attempts per read stage, including the first (<2 = no retry)")
	flag.IntVar(&cfg.traceBuffer, "trace-buffer", 256, "retained-trace ring capacity")
	flag.IntVar(&cfg.traceSlowMS, "trace-slow-ms", 250, "always retain traces at least this slow (negative = off)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0, "fraction of healthy traces to retain (0..1)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "separate listener for /debug/traces and pprof (empty = off)")
	flag.BoolVar(&cfg.debugPprof, "debug-pprof", false, "expose net/http/pprof on the debug listener")
	flag.IntVar(&cfg.shards, "shards", 1, "number of engine shards (>1 serves through the consistent-hash router)")
	flag.StringVar(&cfg.trainer, "trainer", "", "serve a trained MF model: sgd, als-wr (alias als) or rsvd (empty = default hybrid)")
	flag.IntVar(&cfg.retrainEvery, "retrain-every", 0, "background-retrain after every N writes (0 = explicit retrain only; requires -trainer)")
	flag.DurationVar(&cfg.retrainInterval, "retrain-interval", 0, "background-retrain on a wall-clock schedule (0 = off; requires -trainer)")
	flag.IntVar(&cfg.modelHistory, "model-history", 0, "model generations retained for rollback (0 = default; requires -trainer)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durable state directory: write-ahead log and model artifacts (empty = in-memory only)")
	flag.StringVar(&cfg.fsync, "fsync", "always", "WAL durability policy: always, every-n or os (requires -data-dir)")
	flag.IntVar(&cfg.fsyncEvery, "fsync-every", 0, "unsynced appends tolerated under -fsync every-n")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 0, "records between WAL checkpoints (0 = default; requires -data-dir)")
	flag.StringVar(&cfg.ann, "ann", "", "approximate candidate generation: hnsw or flat (empty = exact brute force)")
	flag.IntVar(&cfg.annM, "ann-m", 0, "HNSW graph degree (0 = default; requires -ann)")
	flag.IntVar(&cfg.annEf, "ann-ef", 0, "ANN search beam width (0 = default; requires -ann)")
	flag.BoolVar(&cfg.annQuantize, "ann-quantize", false, "score ANN candidates over int8-quantized vectors (requires -ann)")
	flag.Parse()

	if errs := cfg.validate(); len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "recserver: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "run with -h for usage\n")
		os.Exit(2)
	}

	catalog, ratings, err := loadOrGenerate(cfg.load, cfg.seed)
	if err != nil {
		log.Fatalf("recserver: %v", err)
	}
	p, err := parsePersonality(cfg.personality)
	if err != nil {
		log.Fatalf("recserver: %v", err)
	}
	// One tracer shared by engine and HTTP layer: the server starts the
	// root span, the engine's pipelines hang stage/snapshot/event spans
	// under it. The trace package itself never reads the wall clock
	// (recsyslint's determinism rule); the binary is where time.Now gets
	// wired in — same for training durations via TrainerConfig.Clock.
	tracer := trace.New(trace.Options{
		BufferSize:    cfg.traceBuffer,
		SlowThreshold: time.Duration(cfg.traceSlowMS) * time.Millisecond,
		SampleRate:    cfg.traceSample,
		Clock:         time.Now,
		Seed:          cfg.seed,
	})
	resCfg := core.ResilienceConfig{
		MaxConcurrent: cfg.shedConcurrency,
		RetryAttempts: cfg.retryAttempts,
		RetrySeed:     cfg.seed,
	}
	// The listener opens before the backend is built, behind a
	// switchboard: with -data-dir, WAL replay can take a while, and a
	// probing load balancer should see 503 "recovering" — this instance
	// exists, do not route here yet — rather than a connection refusal.
	sb := server.NewSwitchboard()
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           sb,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	fsyncPolicy, err := parseFsync(cfg.fsync)
	if err != nil {
		log.Fatalf("recserver: %v", err) // unreachable: validate() parsed the same name
	}
	// The HTTP layer consumes the Service interface, not *core.Engine:
	// with -shards > 1 the consistent-hash router drops in here without
	// touching internal/server. Each shard gets its own engine and its
	// own resilience chain; the tracer is shared so a scatter-gather
	// renders as one tree.
	var svc core.Service
	if cfg.shards > 1 {
		clusterOpts := cluster.Options{
			Shards:      cfg.shards,
			Seed:        cfg.seed,
			Personality: p,
			Tracer:      tracer,
			Resilience:  &resCfg,
		}
		if cfg.trainer != "" {
			clusterOpts.Trainer = cfg.trainerConfig
		}
		clusterOpts.ANN = cfg.annConfig()
		if cfg.dataDir != "" {
			clusterOpts.Durability = &cluster.Durability{
				Space:           wal.DirSpace(cfg.dataDir),
				Fsync:           fsyncPolicy,
				FsyncEvery:      cfg.fsyncEvery,
				CheckpointEvery: cfg.checkpointEvery,
			}
		}
		rt, err := cluster.New(catalog, ratings, clusterOpts)
		if err != nil {
			log.Fatalf("recserver: %v", err)
		}
		svc = rt
	} else {
		engOpts := []core.Option{
			core.WithSeed(cfg.seed),
			core.WithPersonality(p),
			core.WithTracer(tracer),
			core.WithResilience(resCfg),
		}
		if cfg.trainer != "" {
			tc := cfg.trainerConfig(cfg.seed)
			if cfg.dataDir != "" {
				// Persist published models next to the log: a restart
				// warm-starts from the artifact (folding in WAL-replayed
				// writes) instead of cold-training.
				tc.ArtifactPath = filepath.Join(cfg.dataDir, "model.json")
				tc.EncodeModel = mf.EncodeModel
				tc.DecodeModel = mf.DecodeModel(catalog)
			}
			engOpts = append(engOpts, core.WithTrainer(tc))
		}
		if ac := cfg.annConfig(); ac != nil {
			engOpts = append(engOpts, core.WithANN(*ac))
		}
		if cfg.dataDir != "" {
			walFS, err := wal.DirFS(filepath.Join(cfg.dataDir, "wal"))
			if err != nil {
				log.Fatalf("recserver: opening -data-dir: %v", err)
			}
			engOpts = append(engOpts, core.WithWAL(core.WALConfig{
				FS:              walFS,
				Fsync:           fsyncPolicy,
				FsyncEvery:      cfg.fsyncEvery,
				CheckpointEvery: cfg.checkpointEvery,
			}))
		}
		eng, err := core.New(catalog, ratings, engOpts...)
		if err != nil {
			log.Fatalf("recserver: %v", err)
		}
		svc = eng
	}
	h := server.New(svc,
		server.WithRequestTimeout(cfg.requestTimeout),
		server.WithTracer(tracer),
	)
	sb.Ready(h)

	// Optional operator listener: trace inspection (and pprof, when
	// asked) off the serving port, so debug traffic is never load
	// balanced and can be firewalled separately.
	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           h.DebugMux(cfg.debugPprof),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("recserver: debug listener: %v", err)
			}
		}()
		log.Printf("recserver: debug endpoints on %s (pprof %v)", cfg.debugAddr, cfg.debugPprof)
	}

	trainerName := cfg.trainer
	if trainerName == "" {
		trainerName = "hybrid (untrained)"
	}
	log.Printf("recserver: %d items, %d ratings, %d shard(s), model %s, personality %s, listening on %s",
		catalog.Len(), ratings.Len(), cfg.shards, trainerName, p, cfg.addr)

	select {
	case err := <-done:
		// The listener failed before any signal arrived.
		log.Fatalf("recserver: %v", err)
	case <-ctx.Done():
	}

	log.Printf("recserver: shutdown signal received, draining for up to %s", cfg.drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	elapsed, err := shutdownSequence(shutdownCtx, time.Now,
		h.StartDrain,
		func(ctx context.Context) error {
			err := srv.Shutdown(ctx)
			if debugSrv != nil {
				// The debug listener drains on the same deadline: an
				// operator mid-request gets to finish, but it never
				// outlives the server.
				if derr := debugSrv.Shutdown(ctx); derr != nil && err == nil {
					err = derr
				}
			}
			return err
		},
		func() error {
			if c, ok := svc.(interface{ Close() error }); ok {
				return c.Close()
			}
			return nil
		},
	)
	if err != nil {
		log.Printf("recserver: drain: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("recserver: %v", err)
	}
	log.Printf("recserver: drained in %s, exiting", elapsed.Round(time.Millisecond))
}

// shutdownSequence runs the graceful-exit steps in their one correct
// order: advertise unhealthiness so load balancers stop sending work,
// drain in-flight HTTP requests, and only THEN flush and close the
// durable state — closing the write-ahead log while requests are still
// in flight would fail their acknowledged-durable contract. The
// injected clock times the drain (deterministically in tests); the
// returned error is the first failure, with the durable close always
// attempted even when the HTTP drain times out.
func shutdownSequence(ctx context.Context, now func() time.Time,
	markDraining func(), drainHTTP func(context.Context) error, closeDurable func() error,
) (time.Duration, error) {
	start := now()
	markDraining()
	httpErr := drainHTTP(ctx)
	closeErr := closeDurable()
	elapsed := now().Sub(start)
	if httpErr != nil {
		return elapsed, httpErr
	}
	return elapsed, closeErr
}

func parsePersonality(name string) (present.Personality, error) {
	for _, p := range []present.Personality{
		present.Neutral, present.Affirming, present.Serendipitous, present.Bold, present.Frank,
	} {
		if p.String() == name {
			return p, nil
		}
	}
	return present.Neutral, fmt.Errorf("unknown personality %q", name)
}

func loadOrGenerate(dir string, seed uint64) (*model.Catalog, *model.Matrix, error) {
	if dir == "" {
		c := dataset.Movies(dataset.Config{Seed: seed, Users: 200, Items: 300, RatingsPerUser: 30})
		return c.Catalog, c.Ratings, nil
	}
	return store.LoadDir(dir)
}
