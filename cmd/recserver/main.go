// Command recserver serves an explanation-capable recommender over
// HTTP. It loads a stored community (see cmd/datasetgen) or generates
// a synthetic one, then exposes the JSON API of internal/server with
// the resilience chain (breakers, load shedding, degraded-mode
// fallbacks) installed. On SIGTERM/SIGINT it drains gracefully:
// /healthz flips to 503 so load balancers rotate the instance out,
// in-flight requests get -drain-timeout to finish, and only then does
// the listener close.
//
// Every served request is traced (internal/trace): responses carry
// X-Trace-ID, slow/errored/degraded traces are retained tail-based,
// and /debug/traces serves them — on the main listener and, with
// -debug-addr, on a separate operator port that can also expose pprof.
//
// With -shards N (N > 1) the same API is served by a consistent-hash
// router over N independent engine shards: users are partitioned by
// ring ownership, SimilarTo scatter-gathers across every shard, and
// GET /debug/cluster reports per-shard health and routing counters.
//
//	recserver -addr :8080 -load ./data
//	recserver -addr :8080 -shards 4
//	curl 'localhost:8080/recommend?user=1&n=5'
//	curl 'localhost:8080/explain?user=1&item=42'
//	curl -X POST -H "Content-Type: application/json" -d '{"user":1,"item":42,"value":4.5}' localhost:8080/rate
//	curl 'localhost:8080/debug/traces?status=error'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 42, "community seed (ignored with -load)")
	load := flag.String("load", "", "directory with catalog.json and ratings.json")
	personality := flag.String("personality", "neutral", "neutral, affirming, serendipitous, bold or frank")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	shedConcurrency := flag.Int("shed-concurrency", 256, "per-stage concurrency limit before load shedding (0 = off)")
	retryAttempts := flag.Int("retry-attempts", 2, "attempts per read stage, including the first (<2 = no retry)")
	traceBuffer := flag.Int("trace-buffer", 256, "retained-trace ring capacity")
	traceSlowMS := flag.Int("trace-slow-ms", 250, "always retain traces at least this slow (negative = off)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of healthy traces to retain (0..1)")
	debugAddr := flag.String("debug-addr", "", "separate listener for /debug/traces and pprof (empty = off)")
	debugPprof := flag.Bool("debug-pprof", false, "expose net/http/pprof on the debug listener")
	shards := flag.Int("shards", 1, "number of engine shards (>1 serves through the consistent-hash router)")
	flag.Parse()

	catalog, ratings, err := loadOrGenerate(*load, *seed)
	if err != nil {
		log.Fatalf("recserver: %v", err)
	}
	p, err := parsePersonality(*personality)
	if err != nil {
		log.Fatalf("recserver: %v", err)
	}
	// One tracer shared by engine and HTTP layer: the server starts the
	// root span, the engine's pipelines hang stage/snapshot/event spans
	// under it. The trace package itself never reads the wall clock
	// (recsyslint's determinism rule); the binary is where time.Now gets
	// wired in.
	tracer := trace.New(trace.Options{
		BufferSize:    *traceBuffer,
		SlowThreshold: time.Duration(*traceSlowMS) * time.Millisecond,
		SampleRate:    *traceSample,
		Clock:         time.Now,
		Seed:          *seed,
	})
	resCfg := core.ResilienceConfig{
		MaxConcurrent: *shedConcurrency,
		RetryAttempts: *retryAttempts,
		RetrySeed:     *seed,
	}
	// The HTTP layer consumes the Service interface, not *core.Engine:
	// with -shards > 1 the consistent-hash router drops in here without
	// touching internal/server. Each shard gets its own engine and its
	// own resilience chain; the tracer is shared so a scatter-gather
	// renders as one tree.
	var svc core.Service
	if *shards > 1 {
		rt, err := cluster.New(catalog, ratings, cluster.Options{
			Shards:      *shards,
			Seed:        *seed,
			Personality: p,
			Tracer:      tracer,
			Resilience:  &resCfg,
		})
		if err != nil {
			log.Fatalf("recserver: %v", err)
		}
		svc = rt
	} else {
		eng, err := core.New(catalog, ratings,
			core.WithSeed(*seed),
			core.WithPersonality(p),
			core.WithTracer(tracer),
			core.WithResilience(resCfg),
		)
		if err != nil {
			log.Fatalf("recserver: %v", err)
		}
		svc = eng
	}
	h := server.New(svc,
		server.WithRequestTimeout(*requestTimeout),
		server.WithTracer(tracer),
	)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Optional operator listener: trace inspection (and pprof, when
	// asked) off the serving port, so debug traffic is never load
	// balanced and can be firewalled separately.
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           h.DebugMux(*debugPprof),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("recserver: debug listener: %v", err)
			}
		}()
		log.Printf("recserver: debug endpoints on %s (pprof %v)", *debugAddr, *debugPprof)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	log.Printf("recserver: %d items, %d ratings, %d shard(s), personality %s, listening on %s",
		catalog.Len(), ratings.Len(), *shards, p, *addr)

	select {
	case err := <-done:
		// The listener failed before any signal arrived.
		log.Fatalf("recserver: %v", err)
	case <-ctx.Done():
	}

	// Drain: advertise unhealthiness first so load balancers stop
	// sending new work, then let in-flight requests finish.
	log.Printf("recserver: shutdown signal received, draining for up to %s", *drainTimeout)
	h.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("recserver: drain deadline exceeded, closing remaining connections: %v", err)
	}
	if debugSrv != nil {
		// The debug listener drains on the same deadline: an operator
		// mid-request gets to finish, but it never outlives the server.
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("recserver: debug listener close: %v", err)
		}
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("recserver: %v", err)
	}
	log.Printf("recserver: drained, exiting")
}

func parsePersonality(name string) (present.Personality, error) {
	for _, p := range []present.Personality{
		present.Neutral, present.Affirming, present.Serendipitous, present.Bold, present.Frank,
	} {
		if p.String() == name {
			return p, nil
		}
	}
	return present.Neutral, fmt.Errorf("unknown personality %q", name)
}

func loadOrGenerate(dir string, seed uint64) (*model.Catalog, *model.Matrix, error) {
	if dir == "" {
		c := dataset.Movies(dataset.Config{Seed: seed, Users: 200, Items: 300, RatingsPerUser: 30})
		return c.Catalog, c.Ratings, nil
	}
	return store.LoadDir(dir)
}
