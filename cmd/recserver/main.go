// Command recserver serves an explanation-capable recommender over
// HTTP. It loads a stored community (see cmd/datasetgen) or generates
// a synthetic one, then exposes the JSON API of internal/server.
//
//	recserver -addr :8080 -load ./data
//	curl 'localhost:8080/recommend?user=1&n=5'
//	curl 'localhost:8080/explain?user=1&item=42'
//	curl -X POST -H "Content-Type: application/json" -d '{"user":1,"item":42,"value":4.5}' localhost:8080/rate
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 42, "community seed (ignored with -load)")
	load := flag.String("load", "", "directory with catalog.json and ratings.json")
	personality := flag.String("personality", "neutral", "neutral, affirming, serendipitous, bold or frank")
	flag.Parse()

	catalog, ratings, err := loadOrGenerate(*load, *seed)
	if err != nil {
		log.Fatalf("recserver: %v", err)
	}
	p, err := parsePersonality(*personality)
	if err != nil {
		log.Fatalf("recserver: %v", err)
	}
	eng, err := core.New(catalog, ratings, core.WithSeed(*seed), core.WithPersonality(p))
	if err != nil {
		log.Fatalf("recserver: %v", err)
	}
	// The HTTP layer consumes the Service interface, not *core.Engine:
	// a sharded or remote backend drops in here without touching
	// internal/server.
	var svc core.Service = eng
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(svc),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("recserver: %d items, %d ratings, personality %s, listening on %s",
		catalog.Len(), ratings.Len(), p, *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("recserver: %v", err)
	}
}

func parsePersonality(name string) (present.Personality, error) {
	for _, p := range []present.Personality{
		present.Neutral, present.Affirming, present.Serendipitous, present.Bold, present.Frank,
	} {
		if p.String() == name {
			return p, nil
		}
	}
	return present.Neutral, fmt.Errorf("unknown personality %q", name)
}

func loadOrGenerate(dir string, seed uint64) (*model.Catalog, *model.Matrix, error) {
	if dir == "" {
		c := dataset.Movies(dataset.Config{Seed: seed, Users: 200, Items: 300, RatingsPerUser: 30})
		return c.Catalog, c.Ratings, nil
	}
	return store.LoadDir(dir)
}
