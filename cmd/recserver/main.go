// Command recserver serves an explanation-capable recommender over
// HTTP. It loads a stored community (see cmd/datasetgen) or generates
// a synthetic one, then exposes the JSON API of internal/server with
// the resilience chain (breakers, load shedding, degraded-mode
// fallbacks) installed. On SIGTERM/SIGINT it drains gracefully:
// /healthz flips to 503 so load balancers rotate the instance out,
// in-flight requests get -drain-timeout to finish, and only then does
// the listener close.
//
// Every served request is traced (internal/trace): responses carry
// X-Trace-ID, slow/errored/degraded traces are retained tail-based,
// and /debug/traces serves them — on the main listener and, with
// -debug-addr, on a separate operator port that can also expose pprof.
//
// With -shards N (N > 1) the same API is served by a consistent-hash
// router over N independent engine shards: users are partitioned by
// ring ownership, SimilarTo scatter-gathers across every shard, and
// GET /debug/cluster reports per-shard health and routing counters.
//
// With -trainer the engine serves a matrix-factorisation model through
// the versioned model lifecycle: -retrain-every N retrains in the
// background after every N writes, POST /debug/models/retrain does it
// on demand, GET /debug/models reports the artifact history, and
// responses carry the serving model_version. On a sharded deployment
// each shard trains its own model from its derived seed.
//
//	recserver -addr :8080 -load ./data
//	recserver -addr :8080 -shards 4
//	recserver -addr :8080 -trainer als-wr -retrain-every 100
//	curl 'localhost:8080/recommend?user=1&n=5'
//	curl 'localhost:8080/explain?user=1&item=42'
//	curl -X POST -H "Content-Type: application/json" -d '{"user":1,"item":42,"value":4.5}' localhost:8080/rate
//	curl 'localhost:8080/debug/traces?status=error'
//	curl 'localhost:8080/debug/models'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys/mf"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
)

// config is the parsed flag set, separated from main so validation is
// testable.
type config struct {
	addr            string
	seed            uint64
	load            string
	personality     string
	requestTimeout  time.Duration
	drainTimeout    time.Duration
	shedConcurrency int
	retryAttempts   int
	traceBuffer     int
	traceSlowMS     int
	traceSample     float64
	debugAddr       string
	debugPprof      bool
	shards          int
	trainer         string
	retrainEvery    int
	modelHistory    int
}

// validate checks the flag combination and returns every problem found
// — all of them, so an operator fixes the command line once, not one
// error per restart.
func (c *config) validate() []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if c.addr == "" {
		fail("-addr must not be empty")
	}
	if c.shards < 1 {
		fail("-shards must be at least 1, got %d", c.shards)
	}
	if _, err := parsePersonality(c.personality); err != nil {
		fail("-personality: %v", err)
	}
	if c.trainer != "" {
		if _, err := mf.NewTrainer(c.trainer, mf.Options{}); err != nil {
			fail("-trainer: %v", err)
		}
	}
	if c.retrainEvery < 0 {
		fail("-retrain-every must be non-negative, got %d", c.retrainEvery)
	}
	if c.retrainEvery > 0 && c.trainer == "" {
		fail("-retrain-every requires -trainer")
	}
	if c.modelHistory < 0 {
		fail("-model-history must be non-negative, got %d", c.modelHistory)
	}
	if c.modelHistory > 0 && c.trainer == "" {
		fail("-model-history requires -trainer")
	}
	if c.requestTimeout < 0 {
		fail("-request-timeout must be non-negative, got %s", c.requestTimeout)
	}
	if c.drainTimeout < 0 {
		fail("-drain-timeout must be non-negative, got %s", c.drainTimeout)
	}
	if c.shedConcurrency < 0 {
		fail("-shed-concurrency must be non-negative, got %d", c.shedConcurrency)
	}
	if c.retryAttempts < 0 {
		fail("-retry-attempts must be non-negative, got %d", c.retryAttempts)
	}
	if c.traceBuffer < 1 {
		fail("-trace-buffer must be positive, got %d", c.traceBuffer)
	}
	if c.traceSample < 0 || c.traceSample > 1 {
		fail("-trace-sample must be within [0, 1], got %v", c.traceSample)
	}
	if c.debugPprof && c.debugAddr == "" {
		fail("-debug-pprof requires -debug-addr")
	}
	return errs
}

// trainerConfig builds the lifecycle config for one engine seeded with
// seed. Only called after validate, so the trainer name resolves.
func (c *config) trainerConfig(seed uint64) core.TrainerConfig {
	tr, err := mf.NewTrainer(c.trainer, mf.Options{Seed: seed})
	if err != nil {
		panic(err) // unreachable: validate() resolved the same name
	}
	return core.TrainerConfig{
		Trainer:      tr,
		RetrainEvery: c.retrainEvery,
		History:      c.modelHistory,
		Clock:        time.Now,
	}
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.Uint64Var(&cfg.seed, "seed", 42, "community seed (ignored with -load)")
	flag.StringVar(&cfg.load, "load", "", "directory with catalog.json and ratings.json")
	flag.StringVar(&cfg.personality, "personality", "neutral", "neutral, affirming, serendipitous, bold or frank")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", 10*time.Second, "per-request deadline (0 = none)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	flag.IntVar(&cfg.shedConcurrency, "shed-concurrency", 256, "per-stage concurrency limit before load shedding (0 = off)")
	flag.IntVar(&cfg.retryAttempts, "retry-attempts", 2, "attempts per read stage, including the first (<2 = no retry)")
	flag.IntVar(&cfg.traceBuffer, "trace-buffer", 256, "retained-trace ring capacity")
	flag.IntVar(&cfg.traceSlowMS, "trace-slow-ms", 250, "always retain traces at least this slow (negative = off)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0, "fraction of healthy traces to retain (0..1)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "separate listener for /debug/traces and pprof (empty = off)")
	flag.BoolVar(&cfg.debugPprof, "debug-pprof", false, "expose net/http/pprof on the debug listener")
	flag.IntVar(&cfg.shards, "shards", 1, "number of engine shards (>1 serves through the consistent-hash router)")
	flag.StringVar(&cfg.trainer, "trainer", "", "serve a trained MF model: sgd, als-wr (alias als) or rsvd (empty = default hybrid)")
	flag.IntVar(&cfg.retrainEvery, "retrain-every", 0, "background-retrain after every N writes (0 = explicit retrain only; requires -trainer)")
	flag.IntVar(&cfg.modelHistory, "model-history", 0, "model generations retained for rollback (0 = default; requires -trainer)")
	flag.Parse()

	if errs := cfg.validate(); len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "recserver: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "run with -h for usage\n")
		os.Exit(2)
	}

	catalog, ratings, err := loadOrGenerate(cfg.load, cfg.seed)
	if err != nil {
		log.Fatalf("recserver: %v", err)
	}
	p, err := parsePersonality(cfg.personality)
	if err != nil {
		log.Fatalf("recserver: %v", err)
	}
	// One tracer shared by engine and HTTP layer: the server starts the
	// root span, the engine's pipelines hang stage/snapshot/event spans
	// under it. The trace package itself never reads the wall clock
	// (recsyslint's determinism rule); the binary is where time.Now gets
	// wired in — same for training durations via TrainerConfig.Clock.
	tracer := trace.New(trace.Options{
		BufferSize:    cfg.traceBuffer,
		SlowThreshold: time.Duration(cfg.traceSlowMS) * time.Millisecond,
		SampleRate:    cfg.traceSample,
		Clock:         time.Now,
		Seed:          cfg.seed,
	})
	resCfg := core.ResilienceConfig{
		MaxConcurrent: cfg.shedConcurrency,
		RetryAttempts: cfg.retryAttempts,
		RetrySeed:     cfg.seed,
	}
	// The HTTP layer consumes the Service interface, not *core.Engine:
	// with -shards > 1 the consistent-hash router drops in here without
	// touching internal/server. Each shard gets its own engine and its
	// own resilience chain; the tracer is shared so a scatter-gather
	// renders as one tree.
	var svc core.Service
	if cfg.shards > 1 {
		clusterOpts := cluster.Options{
			Shards:      cfg.shards,
			Seed:        cfg.seed,
			Personality: p,
			Tracer:      tracer,
			Resilience:  &resCfg,
		}
		if cfg.trainer != "" {
			clusterOpts.Trainer = cfg.trainerConfig
		}
		rt, err := cluster.New(catalog, ratings, clusterOpts)
		if err != nil {
			log.Fatalf("recserver: %v", err)
		}
		svc = rt
	} else {
		engOpts := []core.Option{
			core.WithSeed(cfg.seed),
			core.WithPersonality(p),
			core.WithTracer(tracer),
			core.WithResilience(resCfg),
		}
		if cfg.trainer != "" {
			engOpts = append(engOpts, core.WithTrainer(cfg.trainerConfig(cfg.seed)))
		}
		eng, err := core.New(catalog, ratings, engOpts...)
		if err != nil {
			log.Fatalf("recserver: %v", err)
		}
		svc = eng
	}
	h := server.New(svc,
		server.WithRequestTimeout(cfg.requestTimeout),
		server.WithTracer(tracer),
	)
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Optional operator listener: trace inspection (and pprof, when
	// asked) off the serving port, so debug traffic is never load
	// balanced and can be firewalled separately.
	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           h.DebugMux(cfg.debugPprof),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("recserver: debug listener: %v", err)
			}
		}()
		log.Printf("recserver: debug endpoints on %s (pprof %v)", cfg.debugAddr, cfg.debugPprof)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	trainerName := cfg.trainer
	if trainerName == "" {
		trainerName = "hybrid (untrained)"
	}
	log.Printf("recserver: %d items, %d ratings, %d shard(s), model %s, personality %s, listening on %s",
		catalog.Len(), ratings.Len(), cfg.shards, trainerName, p, cfg.addr)

	select {
	case err := <-done:
		// The listener failed before any signal arrived.
		log.Fatalf("recserver: %v", err)
	case <-ctx.Done():
	}

	// Drain: advertise unhealthiness first so load balancers stop
	// sending new work, then let in-flight requests finish.
	log.Printf("recserver: shutdown signal received, draining for up to %s", cfg.drainTimeout)
	h.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("recserver: drain deadline exceeded, closing remaining connections: %v", err)
	}
	if debugSrv != nil {
		// The debug listener drains on the same deadline: an operator
		// mid-request gets to finish, but it never outlives the server.
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("recserver: debug listener close: %v", err)
		}
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("recserver: %v", err)
	}
	log.Printf("recserver: drained, exiting")
}

func parsePersonality(name string) (present.Personality, error) {
	for _, p := range []present.Personality{
		present.Neutral, present.Affirming, present.Serendipitous, present.Bold, present.Frank,
	} {
		if p.String() == name {
			return p, nil
		}
	}
	return present.Neutral, fmt.Errorf("unknown personality %q", name)
}

func loadOrGenerate(dir string, seed uint64) (*model.Catalog, *model.Matrix, error) {
	if dir == "" {
		c := dataset.Movies(dataset.Config{Seed: seed, Users: 200, Items: 300, RatingsPerUser: 30})
		return c.Catalog, c.Ratings, nil
	}
	return store.LoadDir(dir)
}
