package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/wal"
)

// goodConfig mirrors the flag defaults.
func goodConfig() config {
	return config{
		addr:            ":8080",
		seed:            42,
		personality:     "neutral",
		requestTimeout:  10 * time.Second,
		drainTimeout:    15 * time.Second,
		shedConcurrency: 256,
		retryAttempts:   2,
		traceBuffer:     256,
		traceSlowMS:     250,
		shards:          1,
		fsync:           "always",
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	cfg := goodConfig()
	if errs := cfg.validate(); len(errs) != 0 {
		t.Fatalf("default config rejected: %v", errs)
	}
}

func TestValidateAcceptsTrainerCombos(t *testing.T) {
	for _, name := range []string{"sgd", "als", "als-wr", "rsvd"} {
		cfg := goodConfig()
		cfg.trainer = name
		cfg.retrainEvery = 50
		cfg.modelHistory = 4
		cfg.shards = 4
		if errs := cfg.validate(); len(errs) != 0 {
			t.Fatalf("trainer %q rejected: %v", name, errs)
		}
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		edit func(*config)
		want string
	}{
		{"empty addr", func(c *config) { c.addr = "" }, "-addr"},
		{"zero shards", func(c *config) { c.shards = 0 }, "-shards"},
		{"negative shards", func(c *config) { c.shards = -3 }, "-shards"},
		{"unknown personality", func(c *config) { c.personality = "sassy" }, "-personality"},
		{"unknown trainer", func(c *config) { c.trainer = "deep-wide" }, "-trainer"},
		{"negative retrain-every", func(c *config) { c.retrainEvery = -1 }, "-retrain-every"},
		{"retrain-every without trainer", func(c *config) { c.retrainEvery = 10 }, "requires -trainer"},
		{"negative model-history", func(c *config) { c.modelHistory = -1 }, "-model-history"},
		{"model-history without trainer", func(c *config) { c.modelHistory = 3 }, "requires -trainer"},
		{"negative retrain-interval", func(c *config) { c.retrainInterval = -time.Minute }, "-retrain-interval"},
		{"retrain-interval without trainer", func(c *config) { c.retrainInterval = time.Minute }, "-retrain-interval requires -trainer"},
		{"unknown ann kind", func(c *config) { c.ann = "ivf" }, "-ann"},
		{"negative ann-m", func(c *config) { c.ann = "hnsw"; c.annM = -4 }, "-ann-m"},
		{"negative ann-ef", func(c *config) { c.ann = "hnsw"; c.annEf = -1 }, "-ann-ef"},
		{"ann-m without ann", func(c *config) { c.annM = 16 }, "-ann-m requires -ann"},
		{"ann-ef without ann", func(c *config) { c.annEf = 64 }, "-ann-ef requires -ann"},
		{"ann-quantize without ann", func(c *config) { c.annQuantize = true }, "-ann-quantize requires -ann"},
		{"negative request timeout", func(c *config) { c.requestTimeout = -time.Second }, "-request-timeout"},
		{"negative drain timeout", func(c *config) { c.drainTimeout = -time.Second }, "-drain-timeout"},
		{"negative shed concurrency", func(c *config) { c.shedConcurrency = -1 }, "-shed-concurrency"},
		{"negative retry attempts", func(c *config) { c.retryAttempts = -1 }, "-retry-attempts"},
		{"zero trace buffer", func(c *config) { c.traceBuffer = 0 }, "-trace-buffer"},
		{"trace sample above one", func(c *config) { c.traceSample = 1.5 }, "-trace-sample"},
		{"trace sample negative", func(c *config) { c.traceSample = -0.1 }, "-trace-sample"},
		{"pprof without debug addr", func(c *config) { c.debugPprof = true }, "-debug-pprof requires -debug-addr"},
		{"unknown fsync policy", func(c *config) { c.dataDir = "/tmp/x"; c.fsync = "sometimes" }, "-fsync"},
		{"every-n without interval", func(c *config) { c.dataDir = "/tmp/x"; c.fsync = "every-n" }, "-fsync-every"},
		{"interval without every-n", func(c *config) { c.dataDir = "/tmp/x"; c.fsyncEvery = 8 }, "requires -fsync every-n"},
		{"negative checkpoint-every", func(c *config) { c.dataDir = "/tmp/x"; c.checkpointEvery = -1 }, "-checkpoint-every"},
		{"fsync without data-dir", func(c *config) { c.fsync = "os" }, "requires -data-dir"},
		{"checkpoint-every without data-dir", func(c *config) { c.checkpointEvery = 64 }, "requires -data-dir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.edit(&cfg)
			errs := cfg.validate()
			if len(errs) == 0 {
				t.Fatal("config accepted")
			}
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error mentions %q: %v", tc.want, errs)
			}
		})
	}
}

// TestValidateCollectsEveryProblem: a command line with several
// mistakes reports all of them at once, not just the first.
func TestValidateCollectsEveryProblem(t *testing.T) {
	cfg := goodConfig()
	cfg.shards = 0
	cfg.trainer = "nonsense"
	cfg.traceSample = 2
	errs := cfg.validate()
	if len(errs) != 3 {
		t.Fatalf("got %d errors, want 3: %v", len(errs), errs)
	}
}

func TestTrainerConfigResolvesSeed(t *testing.T) {
	cfg := goodConfig()
	cfg.trainer = "als"
	cfg.retrainEvery = 25
	cfg.modelHistory = 2
	tc := cfg.trainerConfig(99)
	if tc.Trainer.Name() != "als-wr" {
		t.Fatalf("trainer = %q", tc.Trainer.Name())
	}
	if tc.RetrainEvery != 25 || tc.History != 2 || tc.Clock == nil {
		t.Fatalf("config = %+v", tc)
	}
}

func TestValidateAcceptsANNCombos(t *testing.T) {
	for _, edit := range []func(*config){
		func(c *config) { c.ann = "flat" },
		func(c *config) { c.ann = "hnsw" },
		func(c *config) { c.ann = "hnsw"; c.annM = 24; c.annEf = 128; c.annQuantize = true },
		func(c *config) { c.ann = "hnsw"; c.shards = 4 },
		func(c *config) { c.trainer = "als"; c.retrainInterval = 5 * time.Minute },
	} {
		cfg := goodConfig()
		edit(&cfg)
		if errs := cfg.validate(); len(errs) != 0 {
			t.Fatalf("config rejected: %v", errs)
		}
	}
}

func TestANNConfigMapsFlags(t *testing.T) {
	cfg := goodConfig()
	if cfg.annConfig() != nil {
		t.Fatal("ANN config without -ann")
	}
	cfg.ann = "hnsw"
	cfg.annM = 24
	cfg.annEf = 128
	cfg.annQuantize = true
	ac := cfg.annConfig()
	if ac == nil || ac.Kind != "hnsw" || ac.M != 24 || ac.EfSearch != 128 || !ac.Quantize {
		t.Fatalf("ANN config = %+v", ac)
	}
}

func TestTrainerConfigCarriesRetrainInterval(t *testing.T) {
	cfg := goodConfig()
	cfg.trainer = "sgd"
	cfg.retrainInterval = 3 * time.Minute
	if tc := cfg.trainerConfig(1); tc.RetrainInterval != 3*time.Minute {
		t.Fatalf("RetrainInterval = %s", tc.RetrainInterval)
	}
}

func TestValidateAcceptsDurabilityCombos(t *testing.T) {
	for _, edit := range []func(*config){
		func(c *config) { c.dataDir = "/var/lib/recserver" },
		func(c *config) { c.dataDir = "/tmp/x"; c.fsync = "os" },
		func(c *config) { c.dataDir = "/tmp/x"; c.fsync = "every-n"; c.fsyncEvery = 16 },
		func(c *config) { c.dataDir = "/tmp/x"; c.checkpointEvery = 256 },
	} {
		cfg := goodConfig()
		edit(&cfg)
		if errs := cfg.validate(); len(errs) != 0 {
			t.Fatalf("durable config %+v rejected: %v", cfg, errs)
		}
	}
}

func TestParseFsyncRoundTrips(t *testing.T) {
	for _, name := range []string{"always", "every-n", "os"} {
		p, err := parseFsync(name)
		if err != nil {
			t.Fatalf("parseFsync(%q): %v", name, err)
		}
		if p.String() != name {
			t.Fatalf("parseFsync(%q).String() = %q", name, p)
		}
	}
	if _, err := parseFsync("never"); err == nil {
		t.Fatal("parseFsync accepted nonsense")
	}
}

// TestShutdownSequenceClosesWALAfterDrain: the load-bearing ordering —
// a write still in flight while HTTP drains must reach the open WAL,
// and the log must be closed by the time the sequence returns. The
// clock is fake, so the measured drain duration is deterministic.
func TestShutdownSequenceClosesWALAfterDrain(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 511, Users: 30, Items: 50, RatingsPerUser: 12})
	eng, err := core.New(c.Catalog, c.Ratings,
		core.WithSeed(1),
		core.WithWAL(core.WALConfig{FS: wal.NewMemFS()}),
	)
	if err != nil {
		t.Fatal(err)
	}

	clock := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }
	var order []string
	elapsed, err := shutdownSequence(context.Background(), now,
		func() { order = append(order, "draining") },
		func(context.Context) error {
			// An in-flight request finishing during the drain: its write
			// must land in the (still open) log.
			if err := eng.Rate(1, 2, 4); err != nil {
				t.Fatalf("write during drain hit a closed WAL: %v", err)
			}
			clock = clock.Add(750 * time.Millisecond)
			order = append(order, "http-drained")
			return nil
		},
		func() error {
			order = append(order, "wal-closed")
			return eng.Close()
		},
	)
	if err != nil {
		t.Fatalf("shutdownSequence: %v", err)
	}
	if elapsed != 750*time.Millisecond {
		t.Fatalf("measured drain = %s, want 750ms", elapsed)
	}
	want := []string{"draining", "http-drained", "wal-closed"}
	for i, step := range want {
		if i >= len(order) || order[i] != step {
			t.Fatalf("shutdown order = %v, want %v", order, want)
		}
	}
	// The contract the ordering protects: after the sequence, the log
	// is closed and new writes are refused rather than silently lost.
	if err := eng.Rate(1, 3, 4); err == nil {
		t.Fatal("write accepted after the WAL closed")
	}
}

// TestShutdownSequenceClosesWALOnDrainTimeout: even when the HTTP
// drain fails (deadline exceeded), the durable state is still flushed
// and closed — the error is reported, not traded for a leaked log.
func TestShutdownSequenceClosesWALOnDrainTimeout(t *testing.T) {
	closed := false
	clock := time.Unix(1700000000, 0)
	_, err := shutdownSequence(context.Background(),
		func() time.Time { return clock },
		func() {},
		func(context.Context) error { return context.DeadlineExceeded },
		func() error { closed = true; return nil },
	)
	if err == nil {
		t.Fatal("drain timeout swallowed")
	}
	if !closed {
		t.Fatal("durable close skipped after drain timeout")
	}
}
