package main

import (
	"strings"
	"testing"
	"time"
)

// goodConfig mirrors the flag defaults.
func goodConfig() config {
	return config{
		addr:            ":8080",
		seed:            42,
		personality:     "neutral",
		requestTimeout:  10 * time.Second,
		drainTimeout:    15 * time.Second,
		shedConcurrency: 256,
		retryAttempts:   2,
		traceBuffer:     256,
		traceSlowMS:     250,
		shards:          1,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	cfg := goodConfig()
	if errs := cfg.validate(); len(errs) != 0 {
		t.Fatalf("default config rejected: %v", errs)
	}
}

func TestValidateAcceptsTrainerCombos(t *testing.T) {
	for _, name := range []string{"sgd", "als", "als-wr", "rsvd"} {
		cfg := goodConfig()
		cfg.trainer = name
		cfg.retrainEvery = 50
		cfg.modelHistory = 4
		cfg.shards = 4
		if errs := cfg.validate(); len(errs) != 0 {
			t.Fatalf("trainer %q rejected: %v", name, errs)
		}
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		edit func(*config)
		want string
	}{
		{"empty addr", func(c *config) { c.addr = "" }, "-addr"},
		{"zero shards", func(c *config) { c.shards = 0 }, "-shards"},
		{"negative shards", func(c *config) { c.shards = -3 }, "-shards"},
		{"unknown personality", func(c *config) { c.personality = "sassy" }, "-personality"},
		{"unknown trainer", func(c *config) { c.trainer = "deep-wide" }, "-trainer"},
		{"negative retrain-every", func(c *config) { c.retrainEvery = -1 }, "-retrain-every"},
		{"retrain-every without trainer", func(c *config) { c.retrainEvery = 10 }, "requires -trainer"},
		{"negative model-history", func(c *config) { c.modelHistory = -1 }, "-model-history"},
		{"model-history without trainer", func(c *config) { c.modelHistory = 3 }, "requires -trainer"},
		{"negative request timeout", func(c *config) { c.requestTimeout = -time.Second }, "-request-timeout"},
		{"negative drain timeout", func(c *config) { c.drainTimeout = -time.Second }, "-drain-timeout"},
		{"negative shed concurrency", func(c *config) { c.shedConcurrency = -1 }, "-shed-concurrency"},
		{"negative retry attempts", func(c *config) { c.retryAttempts = -1 }, "-retry-attempts"},
		{"zero trace buffer", func(c *config) { c.traceBuffer = 0 }, "-trace-buffer"},
		{"trace sample above one", func(c *config) { c.traceSample = 1.5 }, "-trace-sample"},
		{"trace sample negative", func(c *config) { c.traceSample = -0.1 }, "-trace-sample"},
		{"pprof without debug addr", func(c *config) { c.debugPprof = true }, "-debug-pprof requires -debug-addr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.edit(&cfg)
			errs := cfg.validate()
			if len(errs) == 0 {
				t.Fatal("config accepted")
			}
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error mentions %q: %v", tc.want, errs)
			}
		})
	}
}

// TestValidateCollectsEveryProblem: a command line with several
// mistakes reports all of them at once, not just the first.
func TestValidateCollectsEveryProblem(t *testing.T) {
	cfg := goodConfig()
	cfg.shards = 0
	cfg.trainer = "nonsense"
	cfg.traceSample = 2
	errs := cfg.validate()
	if len(errs) != 3 {
		t.Fatalf("got %d errors, want 3: %v", len(errs), errs)
	}
}

func TestTrainerConfigResolvesSeed(t *testing.T) {
	cfg := goodConfig()
	cfg.trainer = "als"
	cfg.retrainEvery = 25
	cfg.modelHistory = 2
	tc := cfg.trainerConfig(99)
	if tc.Trainer.Name() != "als-wr" {
		t.Fatalf("trainer = %q", tc.Trainer.Name())
	}
	if tc.RetrainEvery != 25 || tc.History != 2 || tc.Clock == nil {
		t.Fatalf("config = %+v", tc)
	}
}
