// Command recsyslint runs the repository's invariant analyzer
// (internal/lint) over the module and reports violations as
// "file:line:col: rule-id: message", exiting 1 when any are found.
//
// Usage:
//
//	go run ./cmd/recsyslint ./...              # whole module
//	go run ./cmd/recsyslint ./internal/core    # one package
//	go run ./cmd/recsyslint -rules determinism,dropped-error ./...
//	go run ./cmd/recsyslint -list              # describe the rules
//	go run ./cmd/recsyslint -json ./...        # findings as JSON
//	go run ./cmd/recsyslint -sarif out.sarif ./...
//	go run ./cmd/recsyslint -baseline .recsyslint-baseline.json ./...
//	go run ./cmd/recsyslint -baseline f.json -write-baseline ./...
//	go run ./cmd/recsyslint -time ./...        # load/analysis timing
//
// The analyzer always loads and type-checks the whole module (rules
// need cross-package types); the package arguments only restrict which
// packages findings are reported for. With -baseline, findings already
// recorded in the baseline file are suppressed and only new ones fail
// the run; -write-baseline regenerates the file from the current
// findings. Suppress an individual finding with "//lint:ignore
// <rule-id> <reason>" on the offending line or the line above; the
// reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	rulesFlag := flag.String("rules", "", "comma-separated rule ids to run (default: all)")
	listFlag := flag.Bool("list", false, "list the registered rules and exit")
	jsonFlag := flag.Bool("json", false, "emit findings as JSON on stdout")
	sarifFlag := flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
	baselineFlag := flag.String("baseline", "", "baseline file: suppress findings recorded there, fail only on new ones")
	writeBaselineFlag := flag.Bool("write-baseline", false, "regenerate the -baseline file from the current findings and exit 0")
	timeFlag := flag.Bool("time", false, "report load and analysis wall time on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: recsyslint [-rules id,id,...] [-list] [-json] [-sarif file] [-baseline file [-write-baseline]] [-time] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-20s %s\n", r.ID(), r.Doc())
		}
		return
	}
	if *writeBaselineFlag && *baselineFlag == "" {
		fatal(fmt.Errorf("recsyslint: -write-baseline requires -baseline"))
	}

	rules, err := selectRules(*rulesFlag)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	loadStart := time.Now()
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}
	loadDur := time.Since(loadStart)

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	match, err := packageFilter(loader, cwd, args)
	if err != nil {
		fatal(err)
	}
	var selected []*lint.Package
	for _, p := range pkgs {
		if match(p.Path) {
			selected = append(selected, p)
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("recsyslint: no packages match %s", strings.Join(args, " ")))
	}

	analysisStart := time.Now()
	findings := lint.Run(selected, lint.DefaultConfig(), rules)
	analysisDur := time.Since(analysisStart)
	if *timeFlag {
		fmt.Fprintf(os.Stderr, "recsyslint: loaded %d packages in %v, analyzed %d in %v (%d rules)\n",
			len(pkgs), loadDur.Round(time.Millisecond), len(selected), analysisDur.Round(time.Millisecond), len(rules))
	}

	// Relativize paths against the module root so baselines and SARIF
	// artifacts are stable regardless of checkout location.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}

	if *writeBaselineFlag {
		if err := lint.NewBaseline(findings).WriteBaseline(*baselineFlag); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "recsyslint: wrote %d finding(s) to baseline %s\n", len(findings), *baselineFlag)
		return
	}
	baselined := 0
	if *baselineFlag != "" {
		base, err := lint.ReadBaseline(*baselineFlag)
		if err != nil {
			fatal(err)
		}
		kept := base.Filter(findings)
		baselined = len(findings) - len(kept)
		findings = kept
	}

	if *sarifFlag != "" {
		f, err := os.Create(*sarifFlag)
		if err != nil {
			fatal(err)
		}
		err = lint.WriteSARIF(f, findings, rules)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}
	if *jsonFlag {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		suffix := ""
		if baselined > 0 {
			suffix = fmt.Sprintf(" (%d more suppressed by baseline)", baselined)
		}
		fmt.Fprintf(os.Stderr, "recsyslint: %d finding(s)%s\n", len(findings), suffix)
		os.Exit(1)
	}
	if baselined > 0 {
		fmt.Fprintf(os.Stderr, "recsyslint: clean (%d baselined finding(s) suppressed)\n", baselined)
	}
}

// selectRules resolves the -rules filter against the registry.
func selectRules(filter string) ([]lint.Rule, error) {
	all := lint.AllRules()
	if filter == "" {
		return all, nil
	}
	byID := make(map[string]lint.Rule, len(all))
	for _, r := range all {
		byID[r.ID()] = r
	}
	var out []lint.Rule
	for _, id := range strings.Split(filter, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		r, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("recsyslint: unknown rule %q (known: %s)", id, strings.Join(lint.RuleIDs(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("recsyslint: -rules selected no rules")
	}
	return out, nil
}

// packageFilter turns go-style package patterns (./..., ./dir/...,
// ./dir) into a predicate over module import paths. Patterns are
// resolved relative to the working directory.
func packageFilter(loader *lint.Loader, cwd string, patterns []string) (func(string) bool, error) {
	type matcher struct {
		path      string // import path the pattern anchors at
		recursive bool
	}
	var ms []matcher
	for _, pat := range patterns {
		recursive := false
		dir := pat
		if pat == "..." || pat == "./..." {
			dir, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			dir, recursive = rest, true
		}
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, dir)
		}
		rel, err := filepath.Rel(loader.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("recsyslint: pattern %q is outside module %s", pat, loader.Root)
		}
		ip := loader.ModPath
		if rel != "." {
			ip = loader.ModPath + "/" + filepath.ToSlash(rel)
		}
		ms = append(ms, matcher{path: ip, recursive: recursive})
	}
	return func(path string) bool {
		for _, m := range ms {
			if path == m.path {
				return true
			}
			if m.recursive && (m.path == loader.ModPath || strings.HasPrefix(path, m.path+"/")) {
				return true
			}
		}
		return false
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
