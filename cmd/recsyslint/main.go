// Command recsyslint runs the repository's invariant analyzer
// (internal/lint) over the module and reports violations as
// "file:line:col: rule-id: message", exiting 1 when any are found.
//
// Usage:
//
//	go run ./cmd/recsyslint ./...              # whole module
//	go run ./cmd/recsyslint ./internal/core    # one package
//	go run ./cmd/recsyslint -rules determinism,dropped-error ./...
//	go run ./cmd/recsyslint -list              # describe the rules
//
// The analyzer always loads and type-checks the whole module (rules
// need cross-package types); the package arguments only restrict which
// packages findings are reported for. Suppress an individual finding
// with "//lint:ignore <rule-id> <reason>" on the offending line or the
// line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	rulesFlag := flag.String("rules", "", "comma-separated rule ids to run (default: all)")
	listFlag := flag.Bool("list", false, "list the registered rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: recsyslint [-rules id,id,...] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-18s %s\n", r.ID(), r.Doc())
		}
		return
	}

	rules, err := selectRules(*rulesFlag)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	match, err := packageFilter(loader, cwd, args)
	if err != nil {
		fatal(err)
	}
	var selected []*lint.Package
	for _, p := range pkgs {
		if match(p.Path) {
			selected = append(selected, p)
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("recsyslint: no packages match %s", strings.Join(args, " ")))
	}

	findings := lint.Run(selected, lint.DefaultConfig(), rules)
	for _, f := range findings {
		rel, err := filepath.Rel(cwd, f.Pos.Filename)
		if err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "recsyslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectRules resolves the -rules filter against the registry.
func selectRules(filter string) ([]lint.Rule, error) {
	all := lint.AllRules()
	if filter == "" {
		return all, nil
	}
	byID := make(map[string]lint.Rule, len(all))
	for _, r := range all {
		byID[r.ID()] = r
	}
	var out []lint.Rule
	for _, id := range strings.Split(filter, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		r, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("recsyslint: unknown rule %q (known: %s)", id, strings.Join(lint.RuleIDs(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("recsyslint: -rules selected no rules")
	}
	return out, nil
}

// packageFilter turns go-style package patterns (./..., ./dir/...,
// ./dir) into a predicate over module import paths. Patterns are
// resolved relative to the working directory.
func packageFilter(loader *lint.Loader, cwd string, patterns []string) (func(string) bool, error) {
	type matcher struct {
		path      string // import path the pattern anchors at
		recursive bool
	}
	var ms []matcher
	for _, pat := range patterns {
		recursive := false
		dir := pat
		if pat == "..." || pat == "./..." {
			dir, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			dir, recursive = rest, true
		}
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, dir)
		}
		rel, err := filepath.Rel(loader.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("recsyslint: pattern %q is outside module %s", pat, loader.Root)
		}
		ip := loader.ModPath
		if rel != "." {
			ip = loader.ModPath + "/" + filepath.ToSlash(rel)
		}
		ms = append(ms, matcher{path: ip, recursive: recursive})
	}
	return func(path string) bool {
		for _, m := range ms {
			if path == m.path {
				return true
			}
			if m.recursive && (m.path == loader.ModPath || strings.HasPrefix(path, m.path+"/")) {
				return true
			}
		}
		return false
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
