// Command surveyctl prints the paper's reproduced artefacts: Tables
// 1-4, the figure renderings (F1-F3), and the implementation index
// mapping every catalogued facility class to the package implementing
// it in this repository.
//
// Usage:
//
//	surveyctl              # print everything
//	surveyctl -only T3     # one artefact
//	surveyctl -seed 7      # figures are seeded simulations
//	surveyctl -markdown    # tables as GitHub markdown
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/survey"
)

func main() {
	seed := flag.Uint64("seed", 42, "seed for the figure simulations")
	only := flag.String("only", "", "print a single artefact (T1-T4, F1-F3, IMPL)")
	markdown := flag.Bool("markdown", false, "render tables as markdown")
	flag.Parse()

	if *markdown {
		for _, tbl := range []interface{ Markdown() string }{
			survey.Table1(), survey.Table2(), survey.Table3(), survey.Table4(),
		} {
			fmt.Println(tbl.Markdown())
		}
		return
	}

	ids := []string{"T1", "T2", "T3", "T4", "F1", "F2", "F3"}
	if *only != "" {
		if *only == "IMPL" {
			fmt.Println(survey.ImplementationIndex().String())
			return
		}
		ids = []string{*only}
	}
	for _, id := range ids {
		runner, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "surveyctl: unknown artefact %q\n", id)
			os.Exit(2)
		}
		res := runner.Run(*seed)
		fmt.Println(res.Report)
		if !res.ShapeOK {
			fmt.Fprintln(os.Stderr, res.Summary())
			os.Exit(1)
		}
	}
	if *only == "" {
		fmt.Println(survey.ImplementationIndex().String())
	}
}
