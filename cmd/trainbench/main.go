// Command trainbench measures the model lifecycle's three costs for
// every MF trainer: full training time, incremental fold-in latency
// (the write path between rebuilds), and read-path latency while a
// background rebuild trains and swaps underneath the readers — the
// number the lock-free snapshot design exists to keep flat. The result
// is written as JSON for trend tracking (BENCH_train.json at the repo
// root is the committed baseline).
//
//	trainbench -users 300 -items 300 -reads 4000 -out BENCH_train.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys/mf"
	"repro/internal/stats"
)

// result is one trainer's measurements.
type result struct {
	Trainer      string  `json:"trainer"`
	TrainSeconds float64 `json:"train_seconds"`
	// Fold-in latency of a single-user RebindMatrix, microseconds.
	FoldInP50Micros float64 `json:"foldin_p50_us"`
	FoldInP99Micros float64 `json:"foldin_p99_us"`
	// Read-path latency while a background rebuild runs, microseconds.
	ReadsDuringRebuild int     `json:"reads_during_rebuild"`
	ReadP50Micros      float64 `json:"read_p50_us"`
	ReadP99Micros      float64 `json:"read_p99_us"`
	// Version swap observed by the readers, proving the rebuild
	// completed inside the measured window.
	VersionBefore uint64 `json:"version_before"`
	VersionAfter  uint64 `json:"version_after"`
}

// report is the JSON document trainbench emits.
type report struct {
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	Seed      uint64   `json:"seed"`
	Users     int      `json:"users"`
	Items     int      `json:"items"`
	Factors   int      `json:"factors"`
	Epochs    int      `json:"epochs"`
	Results   []result `json:"results"`
}

func main() {
	seed := flag.Uint64("seed", 42, "community seed")
	users := flag.Int("users", 300, "community users")
	items := flag.Int("items", 300, "community items")
	factors := flag.Int("factors", 16, "latent dimensionality")
	epochs := flag.Int("epochs", 20, "training epochs / ALS sweeps")
	foldins := flag.Int("foldins", 500, "fold-in operations to sample")
	readers := flag.Int("readers", 8, "concurrent readers during the rebuild")
	reads := flag.Int("reads", 4000, "minimum reads to sample during the rebuild")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	com := dataset.Movies(dataset.Config{Seed: *seed, Users: *users, Items: *items, RatingsPerUser: 25})
	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Seed:      *seed,
		Users:     *users,
		Items:     *items,
		Factors:   *factors,
		Epochs:    *epochs,
	}
	opts := mf.Options{Seed: *seed, Factors: *factors, Epochs: *epochs}
	for _, name := range mf.TrainerNames() {
		r, err := run(com, name, opts, *foldins, *readers, *reads)
		if err != nil {
			log.Fatalf("trainbench: %s: %v", name, err)
		}
		rep.Results = append(rep.Results, r)
		log.Printf("trainbench: %-6s train=%.2fs foldin p99=%0.0fus reads-during-rebuild p99=%0.0fus (v%d -> v%d)",
			name, r.TrainSeconds, r.FoldInP99Micros, r.ReadP99Micros, r.VersionBefore, r.VersionAfter)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("trainbench: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("trainbench: %v", err)
	}
	log.Printf("trainbench: wrote %s", *out)
}

func run(com *dataset.Community, name string, opts mf.Options, foldins, readers, reads int) (result, error) {
	trainer, err := mf.NewTrainer(name, opts)
	if err != nil {
		return result{}, err
	}

	// Full training time, measured directly on the trainer.
	t0 := time.Now()
	rec := trainer.Train(com.Ratings, com.Catalog)
	trainSeconds := time.Since(t0).Seconds()
	md, ok := rec.(*mf.Model)
	if !ok {
		return result{}, fmt.Errorf("trainer %s produced %T, want *mf.Model", name, rec)
	}

	// Fold-in latency: re-solve one user at a time against the frozen
	// item factors, cycling through the community's users.
	userIDs := com.Ratings.Users()
	itemIDs := com.Catalog.Items()
	foldDurs := make([]float64, 0, foldins)
	m := com.Ratings.Clone()
	for i := 0; i < foldins; i++ {
		u := userIDs[i%len(userIDs)]
		m.Set(u, itemIDs[i%len(itemIDs)].ID, float64(1+i%5))
		f0 := time.Now()
		_ = md.RebindMatrix(m, u)
		foldDurs = append(foldDurs, time.Since(f0).Seconds()*1e6)
	}

	// Read-path latency during a background rebuild: readers hammer
	// Recommend while one explicit Retrain trains and swaps. Reads
	// continue until the swap lands AND the minimum sample is in, so
	// the p99 covers the whole rebuild window including the swap.
	eng, err := core.New(com.Catalog, com.Ratings, core.WithSeed(opts.Seed),
		core.WithTrainer(core.TrainerConfig{Trainer: trainer}))
	if err != nil {
		return result{}, err
	}
	versionBefore := eng.ModelVersion()

	var (
		mu       sync.Mutex
		readDurs []float64
		wg       sync.WaitGroup
		stop     = make(chan struct{})
	)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, 0, reads/readers+1)
			for i := w; ; i += readers {
				select {
				case <-stop:
					mu.Lock()
					readDurs = append(readDurs, local...)
					mu.Unlock()
					return
				default:
				}
				u := userIDs[i%len(userIDs)]
				r0 := time.Now()
				if _, err := eng.RecommendContext(context.Background(), u, 5); err != nil {
					log.Printf("trainbench: read during rebuild: %v", err)
				}
				local = append(local, time.Since(r0).Seconds()*1e6)
			}
		}(w)
	}
	// Give the readers a head start so the rebuild races warm traffic.
	for eng.Metrics().Recommendations < readers {
		time.Sleep(100 * time.Microsecond)
	}
	if err := eng.Retrain(context.Background()); err != nil {
		close(stop)
		wg.Wait()
		return result{}, fmt.Errorf("retrain: %w", err)
	}
	for eng.Metrics().Recommendations < reads {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// A couple of writes prove the folded write path stays live on the
	// new generation too (not timed; sanity only).
	for i := 0; i < 3; i++ {
		u := model.UserID(990000 + i)
		if err := eng.Rate(u, itemIDs[i].ID, 4); err != nil {
			return result{}, fmt.Errorf("post-swap rate: %w", err)
		}
	}

	return result{
		Trainer:            name,
		TrainSeconds:       trainSeconds,
		FoldInP50Micros:    stats.Quantile(foldDurs, 0.50),
		FoldInP99Micros:    stats.Quantile(foldDurs, 0.99),
		ReadsDuringRebuild: len(readDurs),
		ReadP50Micros:      stats.Quantile(readDurs, 0.50),
		ReadP99Micros:      stats.Quantile(readDurs, 0.99),
		VersionBefore:      versionBefore,
		VersionAfter:       eng.ModelVersion(),
	}, nil
}
