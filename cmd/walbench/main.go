// Command walbench measures the write-ahead log's cost envelope: the
// per-append latency of each fsync policy (the price of durability),
// replay throughput on reopen, and how a checkpoint bounds recovery
// time. Each configuration appends a fixed workload to a fresh
// on-disk log, then closes and reopens it, timing recovery. The
// result is written as JSON for trend tracking (BENCH_wal.json at the
// repo root is the committed baseline).
//
//	walbench -ops 5000 -payload 128 -out BENCH_wal.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/stats"
	"repro/internal/wal"
)

// result is one benchmarked (policy, checkpoint) configuration.
type result struct {
	Fsync            string  `json:"fsync"`
	FsyncEvery       int     `json:"fsync_every,omitempty"`
	CheckpointEvery  int     `json:"checkpoint_every,omitempty"`
	Ops              int     `json:"ops"`
	PayloadBytes     int     `json:"payload_bytes"`
	AppendsPerSec    float64 `json:"appends_per_sec"`
	AppendP50Micros  float64 `json:"append_p50_us"`
	AppendP99Micros  float64 `json:"append_p99_us"`
	RecoveryMillis   float64 `json:"recovery_ms"`
	ReplayedRecords  int     `json:"replayed_records"`
	ReplayRecsPerSec float64 `json:"replay_records_per_sec"`
}

// report is the JSON document walbench emits.
type report struct {
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	Results   []result `json:"results"`
}

// config is one configuration to benchmark.
type config struct {
	fsync           wal.FsyncPolicy
	fsyncEvery      int
	checkpointEvery int
}

func main() {
	ops := flag.Int("ops", 5000, "appends per configuration")
	payload := flag.Int("payload", 128, "payload bytes per record")
	every := flag.Int("every", 64, "sync interval for the every-n configuration")
	checkpoint := flag.Int("checkpoint", 1000, "checkpoint interval for the checkpointed configuration")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	configs := []config{
		{fsync: wal.FsyncAlways},
		{fsync: wal.FsyncEveryN, fsyncEvery: *every},
		{fsync: wal.FsyncOS},
		// The checkpointed run shows recovery cost bounded by the
		// records SINCE the last checkpoint, not total history.
		{fsync: wal.FsyncOS, checkpointEvery: *checkpoint},
	}
	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	for _, c := range configs {
		r, err := run(c, *ops, *payload)
		if err != nil {
			log.Fatalf("walbench: fsync=%s: %v", c.fsync, err)
		}
		rep.Results = append(rep.Results, r)
		log.Printf("walbench: fsync=%s ckpt=%d %0.0f appends/s p50=%0.1fus p99=%0.1fus recovery=%0.2fms (%d records)",
			r.Fsync, r.CheckpointEvery, r.AppendsPerSec, r.AppendP50Micros, r.AppendP99Micros, r.RecoveryMillis, r.ReplayedRecords)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("walbench: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("walbench: %v", err)
	}
	log.Printf("walbench: wrote %s", *out)
}

// run appends the workload under one configuration, then reopens the
// log and times recovery.
func run(c config, ops, payload int) (result, error) {
	dir, err := os.MkdirTemp("", "walbench-")
	if err != nil {
		return result{}, err
	}
	defer os.RemoveAll(dir)
	fs, err := wal.DirFS(dir)
	if err != nil {
		return result{}, err
	}
	opts := wal.Options{FS: fs, Fsync: c.fsync, FsyncEvery: c.fsyncEvery}

	l, rec, err := wal.Open(opts)
	if err != nil {
		return result{}, err
	}
	if len(rec.Records) != 0 {
		return result{}, fmt.Errorf("fresh log recovered %d records", len(rec.Records))
	}

	body := make([]byte, payload)
	for i := range body {
		body[i] = byte(i)
	}
	durs := make([]float64, 0, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if _, err := l.Append(body); err != nil {
			return result{}, fmt.Errorf("append %d: %w", i, err)
		}
		durs = append(durs, time.Since(t0).Seconds()*1e6)
		if c.checkpointEvery > 0 && (i+1)%c.checkpointEvery == 0 {
			if err := l.Checkpoint([]byte("state-at-" + fmt.Sprint(i+1))); err != nil {
				return result{}, fmt.Errorf("checkpoint at %d: %w", i+1, err)
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	if err := l.Close(); err != nil {
		return result{}, err
	}

	t0 := time.Now()
	l2, rec2, err := wal.Open(opts)
	if err != nil {
		return result{}, fmt.Errorf("reopen: %w", err)
	}
	recovery := time.Since(t0)
	if err := l2.Close(); err != nil {
		return result{}, err
	}
	if rec2.Report.Truncated != 0 {
		return result{}, fmt.Errorf("clean close truncated %d bytes on reopen", rec2.Report.Truncated)
	}

	r := result{
		Fsync:           c.fsync.String(),
		FsyncEvery:      c.fsyncEvery,
		CheckpointEvery: c.checkpointEvery,
		Ops:             ops,
		PayloadBytes:    payload,
		AppendsPerSec:   float64(ops) / elapsed,
		AppendP50Micros: stats.Quantile(durs, 0.50),
		AppendP99Micros: stats.Quantile(durs, 0.99),
		RecoveryMillis:  recovery.Seconds() * 1e3,
		ReplayedRecords: rec2.Report.Records,
	}
	if recovery > 0 {
		r.ReplayRecsPerSec = float64(rec2.Report.Records) / recovery.Seconds()
	}
	return r, nil
}
