// Package repro is a from-scratch Go reproduction of Tintarev &
// Masthoff, "A Survey of Explanations in Recommender Systems"
// (WPRSIUI @ ICDE 2007): the seven-aims taxonomy, every explanation
// style, presentation mode and interaction mode the survey catalogues,
// the recommender substrates they need, and a simulated-user
// laboratory that re-runs the user studies behind the paper's
// evaluation criteria.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The root package holds
// only the benchmark harness (bench_test.go), which regenerates every
// table and figure; the library lives under internal/ and the
// executables under cmd/.
package repro
