// Book influence: a LIBRA-style content-based book recommender with
// Figure-3 influence explanations, keyword justifications, and the
// "You might also like... Oliver Twist by Charles Dickens" similar-
// items presentation of Section 4.3.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/recsys/content"
)

func main() {
	c := dataset.Books(dataset.Config{Seed: 19, Users: 80, Items: 120, RatingsPerUser: 20})
	bayes := content.NewBayes(c.Ratings, c.Catalog)
	const user = model.UserID(2)

	recs := bayes.Recommend(user, 2, recsys.ExcludeRated(c.Ratings, user))
	if len(recs) == 0 {
		log.Fatal("no recommendations")
	}

	inflEx := explain.NewInfluenceExplainer(bayes, c.Catalog)
	kwEx := explain.NewKeywordExplainer(bayes)
	for _, pred := range recs {
		it, err := c.Catalog.Item(pred.Item)
		if err != nil {
			continue
		}
		fmt.Println(explain.Describe(it, pred))
		if exp, err := inflEx.Explain(user, it); err == nil {
			fmt.Println("  " + exp.Text)
			fmt.Println(exp.Detail)
		}
		if exp, err := kwEx.Explain(user, it); err == nil {
			fmt.Println("  keyword view: " + exp.Text)
		}
		fmt.Println()
	}

	// "You might also like..." — the Section 4.3 example, verbatim if
	// the user liked Great Expectations.
	var seed *model.Item
	for _, it := range c.Catalog.Items() {
		if it.Title == "Great Expectations" {
			seed = it
			break
		}
	}
	if seed == nil {
		log.Fatal("seed book missing from catalogue")
	}
	fmt.Printf("== Because you liked %q ==\n", seed.Title)
	view := present.SimilarToTop(c.Catalog, seed, 3, recsys.ExcludeRated(c.Ratings, user))
	for _, entry := range view.Entries {
		if entry.Explanation != nil {
			fmt.Println("  " + entry.Explanation.Text)
		}
	}
	fmt.Println("\nSocial framing: " + explain.SocialPhrase(seed))
}
