// Camera critiquing: a conversational shopping session in the style of
// Qwikshop / dynamic critiquing (survey Sections 4.5 and 5.2). Shows
// the structured overview with trade-off category titles, then walks a
// critique session — unit critiques ("cheaper") and mined compound
// critiques ("Less Memory and Lower Resolution and Cheaper") — until a
// satisfactory camera is on display.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/interact"
	"repro/internal/present"
	"repro/internal/recsys/knowledge"
)

func main() {
	c := dataset.Cameras(dataset.Config{Seed: 13, Users: 5, Items: 120, RatingsPerUser: 3})
	rec := knowledge.New(c.Catalog)

	// The shopper states requirements: a budget-conscious buyer who
	// wants decent resolution.
	lo, hi, _ := c.Catalog.NumericRange(dataset.CamPrice)
	prefs := &knowledge.Preferences{
		NumericIdeal:  map[string]float64{dataset.CamPrice: lo + (hi-lo)*0.15, dataset.CamResolution: 20},
		NumericWeight: map[string]float64{dataset.CamPrice: 2, dataset.CamResolution: 1},
	}

	scored, err := rec.Recommend(prefs, nil, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Structured overview (Pu & Chen) ==")
	ov, err := present.BuildOverview(c.Catalog, scored, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ov.Render())

	fmt.Println("== Critique session ==")
	session, err := interact.NewCritiqueSession(rec, prefs, nil)
	if err != nil {
		log.Fatal(err)
	}
	show := func() {
		cur := session.Current()
		fmt.Printf("showing: %s  ($%.0f, %.1fMP, %.0fGB, %.0fg)\n",
			cur.Title, cur.Numeric[dataset.CamPrice], cur.Numeric[dataset.CamResolution],
			cur.Numeric[dataset.CamMemory], cur.Numeric[dataset.CamWeight])
	}
	show()

	fmt.Println("\nuser: show me something cheaper")
	if err := session.ApplyUnit(interact.Critique{Attr: dataset.CamPrice, Dir: knowledge.Better}); err != nil {
		fmt.Println("system:", err)
	}
	show()

	fmt.Println("\nAvailable compound critiques for this display:")
	compounds := session.Compounds(0.15, 3, 4)
	for i, cc := range compounds {
		fmt.Printf("  %d. %s (matches %.0f%% of remaining cameras)\n", i+1, cc.Label, cc.Support*100)
	}
	if len(compounds) > 0 {
		fmt.Printf("\nuser: picks %q\n", compounds[0].Label)
		if err := session.ApplyCompound(compounds[0]); err != nil {
			fmt.Println("system:", err)
		}
		show()
	}

	// Compare the final display against the overview's best match with
	// a trade-off explanation.
	if exp, err := explain.ExplainTradeoffs(c.Catalog, ov.Best.Item, session.Current()); err == nil {
		fmt.Println("\n" + exp.Text)
	}
	fmt.Printf("\nsession length: %d critiques over %d remaining candidates\n",
		session.Steps(), len(session.Candidates()))
}
