// Family night: group recommendation with group-aware explanations,
// in the spirit of INTRIGUE (the survey's reference [2], a tourist
// recommender that served heterogeneous groups and explained its
// choices per subgroup). Three family members with different tastes
// pick a movie together; each aggregation strategy justifies its pick
// in its own terms, and a diversified list keeps the evening's
// shortlist from being three variations on the same film.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/group"
)

func main() {
	c := dataset.Movies(dataset.Config{Seed: 29, Users: 80, Items: 120, RatingsPerUser: 25})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 15})

	family := []model.UserID{1, 2, 3}
	names := map[model.UserID]string{1: "Ada", 2: "Ben", 3: "Chloe"}
	exclude := func(i model.ItemID) bool {
		for _, u := range family {
			if _, rated := c.Ratings.Get(u, i); rated {
				return true
			}
		}
		return false
	}

	gr := group.New(knn, c.Catalog)
	for _, strategy := range []group.Strategy{group.Average, group.LeastMisery, group.MostPleasure} {
		recs, err := gr.Recommend(family, strategy, 1, exclude)
		if err != nil || len(recs) == 0 {
			log.Fatalf("familynight: %v", err)
		}
		it, err := c.Catalog.Item(recs[0].Item)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== Strategy: %s ==\n", strategy)
		fmt.Printf("Tonight's pick: %s (group score %.1f)\n", it.Title, recs[0].Score)
		fmt.Println("  " + group.Explain(recs[0], strategy, names))
		fmt.Println()
	}

	// A diversified shortlist for the family to argue over, with the
	// transparency disclosure the survey requires for any factor that
	// shapes the list.
	fmt.Println("== Tonight's shortlist (diversified) ==")
	lm, err := gr.Recommend(family, group.LeastMisery, 0, exclude)
	if err != nil {
		log.Fatal(err)
	}
	var preds []recsys.Prediction
	for _, p := range lm {
		preds = append(preds, recsys.Prediction{Item: p.Item, Score: p.Score})
	}
	const lambda = 0.6
	for i, p := range present.Diversify(c.Catalog, preds, lambda, 5) {
		it, err := c.Catalog.Item(p.Item)
		if err != nil {
			continue
		}
		fmt.Printf("  %d. %s (%.1f) %v\n", i+1, it.Title, p.Score, it.Keywords)
	}
	fmt.Println("\n" + present.DiversificationNote(lambda))
}
