// Movie dialog: the plain-English preference conversation the survey
// quotes in Section 5.1 (Wärnestål's system), run against a synthetic
// movie catalogue seeded with the paper's own example. The closing
// line explains indirectly, "by reiterating (and satisfying) the
// user's requirements."
package main

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/interact"
	"repro/internal/model"
)

func main() {
	// A generated catalogue plus the paper's canonical movie, so the
	// famous transcript can play out verbatim.
	c := dataset.Movies(dataset.Config{Seed: 23, Users: 10, Items: 60, RatingsPerUser: 5})
	c.Catalog.MustAdd(&model.Item{
		ID: 1000, Title: "Pulp Fiction", Creator: "Bruce Willis",
		Popularity: 0.97, Keywords: []string{"thriller"},
	})

	d := interact.NewNLDialog(c.Catalog)
	for _, say := range []string{
		"I feel like watching a thriller.",
		"Uhm, I'm not sure",
		"I think Bruce Willis is good",
		"No",
	} {
		d.Say(say)
	}
	fmt.Println("== The paper's Section 5.1 dialog, live ==")
	fmt.Println(d.Render())

	// A second conversation that takes the other branches: the user
	// names a favourite, has seen the first proposal, and the system
	// moves on instead of dead-ending.
	d2 := interact.NewNLDialog(c.Catalog)
	fmt.Println("== A longer conversation ==")
	for _, say := range []string{
		"something in the western genre tonight",
		"not sure about favourites",
		"really, no idea",
		"yes, seen that one",
		"no",
	} {
		reply := d2.Say(say)
		_ = reply
		if d2.Done() {
			break
		}
	}
	fmt.Println(d2.Render())
	if d2.Proposed() != nil {
		fmt.Printf("settled on: %s\n", d2.Proposed().Title)
	}
}
