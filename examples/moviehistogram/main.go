// Movie histograms: the Herlocker et al. explanation interfaces on a
// collaborative-filtering movie recommender. Prints the winning
// clustered histogram for a recommendation, then showcases a sample of
// the 21 persuasion interfaces on the same evidence — the material of
// the survey's Section 3.4.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
)

func main() {
	c := dataset.Movies(dataset.Config{Seed: 11, Users: 150, Items: 200, RatingsPerUser: 30})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 20})
	const user = 3

	recs := knn.Recommend(user, 3, recsys.ExcludeRated(c.Ratings, user))
	if len(recs) == 0 {
		log.Fatal("no recommendations for this user")
	}

	histEx := explain.NewHistogramExplainer(knn)
	countEx := explain.NewNeighborCountExplainer(knn)
	fmt.Println("== Collaborative recommendations with histogram explanations ==")
	for _, pred := range recs {
		it, err := c.Catalog.Item(pred.Item)
		if err != nil {
			continue
		}
		fmt.Println(explain.Describe(it, pred))
		if exp, err := histEx.Explain(user, it); err == nil {
			fmt.Println("  " + exp.Text)
			fmt.Println(exp.Detail)
		}
		if exp, err := countEx.Explain(user, it); err == nil {
			fmt.Println("  terse variant: " + exp.Text)
		}
		fmt.Println()
	}

	// The same recommendation through a sample of Herlocker's 21
	// interfaces.
	top, err := c.Catalog.Item(recs[0].Item)
	if err != nil {
		log.Fatal(err)
	}
	nbs := knn.Neighbors(user, top.ID)
	avg, _ := c.Ratings.ItemMean(top.ID)
	ev := explain.PersuasionEvidence{
		Item: top, Neighbors: nbs, Prediction: recs[0], ItemAvg: avg, PastAccuracy: 0.8,
	}
	fmt.Printf("== The same recommendation through six of the 21 interfaces ==\n\n")
	show := map[string]bool{
		"histogram-grouped": true, "past-performance": true, "neighbor-count": true,
		"won-awards": true, "percent-liked": true, "raw-data-dump": true,
	}
	for _, pi := range explain.Herlocker21() {
		if !show[pi.Name] {
			continue
		}
		fmt.Printf("[%d] %s (clarity %.2f, support %+.2f)\n%s\n",
			pi.ID, pi.Name, pi.Clarity, pi.Support(ev), pi.Render(ev))
	}
}
