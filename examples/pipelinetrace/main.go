// Pipelinetrace: install a custom pipeline interceptor around the
// engine's serving stages. The survey's cycle — recommend, explain,
// present — runs as named stages (rank, rerank, explainTopN, present),
// and WithInterceptor lets an application wrap every stage with its
// own cross-cutting concern; here, a per-stage trace printed as the
// request executes, plus the engine's own per-stage counters after.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
)

func main() {
	community := dataset.Movies(dataset.Config{Seed: 7, Users: 120, Items: 150, RatingsPerUser: 25})

	// A tracing interceptor: runs outside the stock metrics/deadline/
	// recovery chain, so it observes every stage attempt.
	trace := func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			start := time.Now()
			resp, err := next(ctx, req)
			status := "ok"
			if err != nil {
				status = err.Error()
			}
			fmt.Printf("  trace %s/%-12s user=%d %8s  %s\n",
				info.Pipeline, info.Stage, req.User, time.Since(start).Round(time.Microsecond), status)
			return resp, err
		}
	}

	eng, err := core.New(community.Catalog, community.Ratings,
		core.WithSeed(7), core.WithInterceptor(trace))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Recommend(1, 5) through the traced pipeline:")
	view, err := eng.Recommend(1, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(view.Render())

	fmt.Println("Explain the top pick:")
	if _, err := eng.Explain(1, view.Entries[0].Item.ID); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nPer-stage counters from Engine.Metrics():")
	stages := eng.Metrics().Stages
	keys := make([]string, 0, len(stages))
	for k := range stages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := stages[k]
		fmt.Printf("  %-22s %d calls, %d errors, %s total\n",
			k, st.Invocations, st.Errors, st.Latency.Round(time.Microsecond))
	}
}
