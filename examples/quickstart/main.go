// Quickstart: build a community, construct the Engine, and print an
// explained top-5 plus an on-demand justification — the minimum a
// downstream application needs.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	// A synthetic movie community: 120 users, 150 movies, seeded so
	// every run prints the same thing.
	community := dataset.Movies(dataset.Config{Seed: 7, Users: 120, Items: 150, RatingsPerUser: 25})

	eng, err := core.New(community.Catalog, community.Ratings)
	if err != nil {
		log.Fatal(err)
	}

	const user = 1
	view, err := eng.Recommend(user, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(view.Render())

	// Ask "why?" about the top pick.
	why, err := eng.Explain(user, view.Entries[0].Item.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Why the top pick?")
	fmt.Println("  " + why.Text)
	if why.Detail != "" {
		fmt.Println(why.Detail)
	}
}
