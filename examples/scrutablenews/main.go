// Scrutable news: the survey's running example as a working program.
// A football-and-technology fan gets preference-based explanations
// ("You have been watching a lot of sport, and football in
// particular"), asks why a hockey item is predicted low, gives opinion
// feedback, and finally sees the day's news as a Figure-2 treemap.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/recsys/content"
	"repro/internal/rng"
)

func main() {
	c := dataset.News(dataset.Config{Seed: 17, Users: 40, Items: 150, RatingsPerUser: 25})
	const user = model.UserID(1)

	// Install the paper's canonical taste and re-sample the user's
	// history so the observable profile matches it.
	c.Truth.InstallTaste(user, dataset.FootballFanTaste())
	r := rng.New(99)
	var history []model.ItemID
	for i, it := range c.Catalog.Items() {
		if i%3 == 0 {
			history = append(history, it.ID)
		}
	}
	c.Rerate(user, history, r)

	kw := content.NewKeywordRecommender(c.Ratings, c.Catalog)
	profEx := explain.NewProfileExplainer(kw)

	fmt.Println("== Top stories with preference-based explanations ==")
	p, err := present.TopN(c.Catalog, kw, profEx, user, 5, recsys.ExcludeRated(c.Ratings, user))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Render())

	// Browse everything; ask why a hockey item is predicted low.
	view := present.PredictedRatings(c.Catalog, kw, profEx, user)
	fmt.Println("== Why is this predicted low? ==")
	for i := len(view.Entries) - 1; i >= 0; i-- {
		it := view.Entries[i].Item
		if !it.HasKeyword("hockey") {
			continue
		}
		fmt.Printf("%s (predicted %.1f stars)\n", it.Title, view.Entries[i].Prediction.Score)
		if exp, err := view.WhyLow(it); err == nil {
			fmt.Println("  " + exp.Text)
		}
		break
	}

	// Opinion feedback: no more hockey, surprise me a bit.
	fb := interact.NewFeedbackModel()
	for _, it := range c.Catalog.Items() {
		if it.HasKeyword("hockey") {
			_ = fb.Apply(interact.Opinion{Kind: interact.NoMoreLikeThis, Item: it.ID}, it)
			break
		}
	}
	_ = fb.Apply(interact.Opinion{Kind: interact.SurpriseMe}, nil)
	fmt.Printf("\nfeedback applied: %d opinions, exploration at %.0f%%\n\n",
		len(fb.History()), fb.Surprise()*100)

	preds := kw.Recommend(user, 20, recsys.ExcludeRated(c.Ratings, user))
	preds = fb.Rerank(c.Catalog, preds, rng.New(5))

	// Figure 2: the personalised front page as a treemap — tile size is
	// importance to this user, letter is the topic, upper case means
	// recent.
	fmt.Println("== Your front page as a treemap ==")
	var tiles []present.TreemapItem
	for _, pr := range preds {
		it, err := c.Catalog.Item(pr.Item)
		if err != nil {
			continue
		}
		weight := (pr.Score - 1) * (0.5 + it.Popularity)
		if weight <= 0 {
			continue
		}
		tiles = append(tiles, present.TreemapItem{
			Label:  it.Title,
			Weight: weight,
			Class:  it.Keywords[0],
			Shade:  it.Recency,
		})
	}
	nodes, err := present.Squarify(tiles, present.Rect{W: 72, H: 18})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(present.RenderTreemap(nodes, 72, 18))
}
