// Trace dump: the "debugging a slow request" walkthrough from the
// README, self-contained. A traced engine serves three kinds of
// request — healthy, errored (unknown item), and chaos-degraded
// (explain stage broken, retry exhausted, breaker tripped, fallback
// served) — and the program prints what the tail-based sampler kept:
// the span tree of each retained trace, with resilience events inline
// under the stage they interrupted.
//
// The tracer runs on its synthetic logical clock (no Clock wired), so
// the output — IDs, timings, retention decisions — is identical on
// every run. That determinism is the point: a failing chaos run
// replays bit-for-bit.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

func main() {
	c := dataset.Movies(dataset.Config{Seed: 11, Users: 40, Items: 60, RatingsPerUser: 15})

	// Tail-based sampling with no head sampling: only slow, errored or
	// degraded traces survive. The healthy request below vanishes.
	tracer := trace.New(trace.Options{Seed: 11})

	// Chaos: the explain stage fails every time. With one retry, a
	// one-failure breaker and the degraded fallback, a request rides
	// the whole resilience chain and still answers.
	inj := fault.NewInjector(11,
		fault.Rule{Pipeline: pipeline.OpExplain, Stage: "explain", Nth: 1, Err: fault.ErrInjected})

	eng, err := core.New(c.Catalog, c.Ratings,
		core.WithSeed(11),
		core.WithTracer(tracer),
		core.WithResilience(core.ResilienceConfig{BreakerThreshold: 1, RetryAttempts: 2}),
		core.WithChaos(inj.Interceptor()),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 1. A healthy recommend: traced, observed in metrics, not retained.
	ctx, root := tracer.Start(context.Background(), "recommend")
	if _, err := eng.RecommendContext(ctx, 1, 5); err != nil {
		log.Fatal(err)
	}
	root.End(nil)

	// 2. An errored explain: unknown item. Errored traces always stay.
	ctx, root = tracer.Start(context.Background(), "explain")
	_, badErr := eng.ExplainContext(ctx, 1, 99999)
	root.End(badErr)
	fmt.Printf("explain(99999) failed as expected: %v\n", badErr)

	// 3. The chaos request: retry → breaker opens → degraded fallback.
	ctx, root = tracer.Start(context.Background(), "explain")
	exp, err := eng.ExplainContext(ctx, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	root.End(nil)
	fmt.Printf("degraded explain still answered: %q (degraded=%v)\n\n", exp.Text, exp.Degraded)

	retained := tracer.Recent(0)
	fmt.Printf("tracer retained %d of 3 traces (the healthy one was dropped at the tail):\n\n", len(retained))
	for i := len(retained) - 1; i >= 0; i-- { // oldest first for reading order
		dump(retained[i])
	}
}

// dump prints one retained trace as an indented span tree.
func dump(d *trace.Data) {
	fmt.Printf("trace %s  op=%s  status=%s  reason=%s  degraded=%v  spans=%d\n",
		d.ID, d.Op, d.Status, d.Reason, d.Degraded, len(d.Spans))
	children := make(map[trace.SpanID][]trace.Span)
	var roots []trace.Span
	for _, sp := range d.Spans {
		if sp.Kind == trace.KindRequest {
			roots = append(roots, sp)
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var walk func(sp trace.Span, depth int)
	walk = func(sp trace.Span, depth int) {
		attrs := make([]string, 0, len(sp.Attrs))
		for _, a := range sp.Attrs {
			attrs = append(attrs, a.Key+"="+a.Value)
		}
		line := fmt.Sprintf("%s%-9s %s", strings.Repeat("  ", depth), sp.Kind, sp.Name)
		if sp.Kind != trace.KindEvent {
			line += fmt.Sprintf("  (%s)", sp.Duration)
		}
		if len(attrs) > 0 {
			line += "  [" + strings.Join(attrs, " ") + "]"
		}
		if sp.Err != "" {
			line += "  err=" + sp.Err
		}
		fmt.Println(line)
		for _, child := range children[sp.ID] {
			walk(child, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}
	fmt.Println()
}
