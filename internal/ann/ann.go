// Package ann provides seeded, deterministic approximate-nearest-
// neighbour indexes for the candidate-generation hot path.
//
// Two implementations share the Index interface: Flat scans every
// vector (exact by construction, the baseline the recall harness
// measures against) and HNSW builds the layered small-world graph that
// turns a full catalogue scan into a logarithmic walk. Both score by
// inner product — the similarity every caller in this repository ranks
// by — and both can hold vectors as int8 codes with a per-vector scale
// (Params.Quantize), scored with a batched integer dot product.
//
// Determinism is a hard requirement here, not a nicety: the cluster
// simulation and the conformance suites replay whole serving histories
// from a seed, so two indexes built from the same vectors and the same
// Params.Seed must answer every query with byte-identical neighbour
// lists. All randomness flows from internal/rng, ties break on
// ascending vector ID everywhere, and no map is ever iterated into an
// output. Search paths allocate from a sync.Pool-backed scratch so a
// steady-state query performs no heap growth beyond its result slice.
package ann

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Vector is one catalogue entry handed to an index builder: an opaque
// identifier and its embedding. Callers keep ownership of Elems; the
// builders copy what they need.
type Vector struct {
	ID    int64
	Elems []float32
}

// Neighbor is one search result: the vector's ID and its (possibly
// quantized) inner-product score against the query, best first.
type Neighbor struct {
	ID    int64
	Score float32
}

// Index is the common surface of the flat and HNSW indexes. Search
// returns up to k neighbours by descending inner product (ties broken
// by ascending ID); vectors for which skip returns true are excluded
// from results but still route graph traversal. A nil skip keeps
// everything. Search is safe for concurrent use once the index is
// built; indexes are immutable after Build.
type Index interface {
	Search(q []float32, k int, skip func(id int64) bool) []Neighbor
	Len() int
	Dim() int
	Kind() string
	Stats() Stats
}

// Params tunes index construction and search. The zero value is
// usable: withDefaults fills in the standard HNSW operating point.
type Params struct {
	// M is the maximum neighbours per node on upper graph layers
	// (layer 0 keeps 2M). Default 16.
	M int
	// EfConstruction is the beam width while building. Default 200.
	EfConstruction int
	// EfSearch is the beam width while querying; the effective beam
	// is max(EfSearch, k). Default 64.
	EfSearch int
	// Seed drives level assignment. Same vectors + same seed =>
	// identical graph, identical answers.
	Seed uint64
	// Quantize stores vectors as int8 codes with a per-vector scale
	// instead of float32, trading ≤0.5-ulp-of-scale per-element error
	// for a 4x smaller, integer-scored working set.
	Quantize bool
}

func (p Params) withDefaults() Params {
	if p.M <= 0 {
		p.M = 16
	}
	if p.EfConstruction <= 0 {
		p.EfConstruction = 200
	}
	if p.EfSearch <= 0 {
		p.EfSearch = 64
	}
	return p
}

// Stats is a point-in-time snapshot of an index's search counters.
type Stats struct {
	// Searches is the number of Search calls served.
	Searches int64 `json:"searches"`
	// DistanceComps is the number of query-to-vector score
	// evaluations across all searches — the work an exact scan would
	// spend n-per-query on.
	DistanceComps int64 `json:"distance_comps"`
}

// indexStats is the shared atomic counter block embedded by both
// implementations.
type indexStats struct {
	searches  atomic.Int64
	distComps atomic.Int64
}

func (s *indexStats) snapshot() Stats {
	return Stats{
		Searches:      s.searches.Load(),
		DistanceComps: s.distComps.Load(),
	}
}

// Kinds every Build recognises.
const (
	KindFlat = "flat"
	KindHNSW = "hnsw"
)

// Build constructs an index of the given kind over vecs. Vectors are
// copied (and sorted by ID internally), so the caller may reuse the
// slice. All vectors must share one non-zero dimension and IDs must be
// unique.
func Build(kind string, vecs []Vector, p Params) (Index, error) {
	switch kind {
	case KindFlat:
		return NewFlat(vecs, p)
	case KindHNSW:
		return NewHNSW(vecs, p)
	default:
		return nil, fmt.Errorf("ann: unknown index kind %q (want %q or %q)", kind, KindFlat, KindHNSW)
	}
}

var errEmptyDim = errors.New("ann: vectors must have a non-zero dimension")

// newStore validates vecs, sorts them by ascending ID, and packs them
// into the shared columnar layout (optionally quantized).
func newStore(vecs []Vector, quantize bool) (*store, error) {
	st := &store{quant: quantize}
	if len(vecs) == 0 {
		return st, nil
	}
	sorted := make([]Vector, len(vecs))
	copy(sorted, vecs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	st.dim = len(sorted[0].Elems)
	if st.dim == 0 {
		return nil, errEmptyDim
	}
	n := len(sorted)
	st.ids = make([]int64, n)
	if quantize {
		st.codes = make([]int8, n*st.dim)
		st.scales = make([]float32, n)
	} else {
		st.vecs = make([]float32, n*st.dim)
	}
	for i, v := range sorted {
		if len(v.Elems) != st.dim {
			return nil, fmt.Errorf("ann: vector %d has dimension %d, want %d", v.ID, len(v.Elems), st.dim)
		}
		if i > 0 && v.ID == sorted[i-1].ID {
			return nil, fmt.Errorf("ann: duplicate vector ID %d", v.ID)
		}
		st.ids[i] = v.ID
		if quantize {
			st.scales[i] = quantizeInto(st.codes[i*st.dim:(i+1)*st.dim], v.Elems)
		} else {
			copy(st.vecs[i*st.dim:(i+1)*st.dim], v.Elems)
		}
	}
	return st, nil
}
