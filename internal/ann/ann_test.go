package ann

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/rng"
)

// corpus builds n deterministic gaussian vectors of the given
// dimension, plus nq query vectors from the same stream.
func corpus(seed uint64, n, dim, nq int) ([]Vector, [][]float32) {
	r := rng.New(seed)
	vecs := make([]Vector, n)
	for i := range vecs {
		e := make([]float32, dim)
		for j := range e {
			e[j] = float32(r.Norm(0, 1))
		}
		vecs[i] = Vector{ID: int64(i + 1), Elems: e}
	}
	queries := make([][]float32, nq)
	for i := range queries {
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(r.Norm(0, 1))
		}
		queries[i] = q
	}
	return vecs, queries
}

// naiveTopK is the reference implementation the indexes are tested
// against: full scan, float64 accumulation, score desc then ID asc.
func naiveTopK(vecs []Vector, q []float32, k int, skip func(int64) bool) []Neighbor {
	var all []Neighbor
	for _, v := range vecs {
		if skip != nil && skip(v.ID) {
			continue
		}
		var s float64
		for j := range q {
			s += float64(q[j]) * float64(v.Elems[j])
		}
		all = append(all, Neighbor{ID: v.ID, Score: float32(s)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestFlatMatchesNaive(t *testing.T) {
	vecs, queries := corpus(1, 300, 16, 20)
	idx, err := NewFlat(vecs, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		got := idx.Search(q, 10, nil)
		want := naiveTopK(vecs, q, 10, nil)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("query %d rank %d: got ID %d, want %d", qi, i, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestFlatRespectsSkip(t *testing.T) {
	vecs, queries := corpus(2, 200, 8, 5)
	idx, err := NewFlat(vecs, Params{})
	if err != nil {
		t.Fatal(err)
	}
	skip := func(id int64) bool { return id%3 == 0 }
	for _, q := range queries {
		for _, nb := range idx.Search(q, 25, skip) {
			if nb.ID%3 == 0 {
				t.Fatalf("skip filter leaked ID %d into results", nb.ID)
			}
		}
	}
}

func TestHNSWRespectsSkip(t *testing.T) {
	vecs, queries := corpus(3, 400, 16, 5)
	idx, err := NewHNSW(vecs, Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	skip := func(id int64) bool { return id <= 200 }
	for _, q := range queries {
		res := idx.Search(q, 10, skip)
		if len(res) == 0 {
			t.Fatal("filtered search returned nothing on a 400-vector corpus")
		}
		for _, nb := range res {
			if nb.ID <= 200 {
				t.Fatalf("skip filter leaked ID %d into results", nb.ID)
			}
		}
	}
}

// TestSameSeedBuildsAreIdentical is the determinism gate: two indexes
// built from the same vectors and seed must return byte-identical
// neighbour lists for every query.
func TestSameSeedBuildsAreIdentical(t *testing.T) {
	vecs, queries := corpus(7, 600, 24, 40)
	for _, quant := range []bool{false, true} {
		a, err := NewHNSW(vecs, Params{Seed: 99, Quantize: quant})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewHNSW(vecs, Params{Seed: 99, Quantize: quant})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			ra := a.Search(q, 10, nil)
			rb := b.Search(q, 10, nil)
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("quantize=%v query %d: same-seed builds disagree:\n%v\nvs\n%v", quant, qi, ra, rb)
			}
		}
	}
}

func TestDifferentSeedsChangeGraphNotCorrectness(t *testing.T) {
	vecs, queries := corpus(8, 500, 16, 30)
	a, err := NewHNSW(vecs, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHNSW(vecs, Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewFlat(vecs, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if r := RecallAtK(exact, a, queries, 10); r < 0.9 {
		t.Fatalf("seed 1 recall@10 = %.3f, want >= 0.9", r)
	}
	if r := RecallAtK(exact, b, queries, 10); r < 0.9 {
		t.Fatalf("seed 2 recall@10 = %.3f, want >= 0.9", r)
	}
}

// TestANNRecallGate is the fidelity floor CI enforces: on the seeded
// corpus, HNSW with default parameters must recover at least 95% of
// the exact top-10, quantized or not.
func TestANNRecallGate(t *testing.T) {
	vecs, queries := corpus(42, 2000, 32, 100)
	for _, quant := range []bool{false, true} {
		exact, err := NewFlat(vecs, Params{})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := NewHNSW(vecs, Params{Seed: 42, Quantize: quant})
		if err != nil {
			t.Fatal(err)
		}
		r := RecallAtK(exact, approx, queries, 10)
		if r < 0.95 {
			t.Fatalf("quantize=%v: recall@10 = %.4f, want >= 0.95", quant, r)
		}
		t.Logf("quantize=%v: recall@10 = %.4f over %d queries", quant, r, len(queries))
	}
}

// TestQuantizationErrorBound checks the advertised error model: each
// element is off by at most scale/2, so a d-dim dot product of vectors
// with max magnitudes A and B deviates by at most d*(A/254*B + B/254*A
// + small cross term) from the exact value.
func TestQuantizationErrorBound(t *testing.T) {
	vecs, queries := corpus(11, 100, 32, 20)
	exact, err := NewFlat(vecs, Params{})
	if err != nil {
		t.Fatal(err)
	}
	quant, err := NewFlat(vecs, Params{Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		var qMax float64
		for _, x := range q {
			if a := math.Abs(float64(x)); a > qMax {
				qMax = a
			}
		}
		re := exact.Search(q, 100, nil)
		rq := quant.Search(q, 100, nil)
		eScore := make(map[int64]float64, len(re))
		for _, nb := range re {
			eScore[nb.ID] = float64(nb.Score)
		}
		for _, nb := range rq {
			var vMax float64
			for _, v := range vecs {
				if v.ID != nb.ID {
					continue
				}
				for _, x := range v.Elems {
					if a := math.Abs(float64(x)); a > vMax {
						vMax = a
					}
				}
			}
			// Per element: |q*v - q̂*v̂| <= qMax*vMax/254 + vMax*qMax/254 + (qMax/254)*(vMax/254).
			perElem := qMax*vMax/254 + vMax*qMax/254 + qMax*vMax/(254*254)
			bound := 32 * perElem * 1.01 // 1% slack for float32 rounding
			if diff := math.Abs(eScore[nb.ID] - float64(nb.Score)); diff > bound {
				t.Fatalf("ID %d: quantized score off by %.5f, bound %.5f", nb.ID, diff, bound)
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	good := []Vector{{ID: 1, Elems: []float32{1, 2}}, {ID: 2, Elems: []float32{3, 4}}}
	if _, err := Build("ivf", good, Params{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	dup := []Vector{{ID: 1, Elems: []float32{1}}, {ID: 1, Elems: []float32{2}}}
	if _, err := NewFlat(dup, Params{}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	ragged := []Vector{{ID: 1, Elems: []float32{1, 2}}, {ID: 2, Elems: []float32{3}}}
	if _, err := NewHNSW(ragged, Params{}); err == nil {
		t.Fatal("ragged dimensions accepted")
	}
	empty := []Vector{{ID: 1, Elems: nil}}
	if _, err := NewFlat(empty, Params{}); err == nil {
		t.Fatal("zero-dimension vectors accepted")
	}
	if _, err := NewHNSW(good, Params{M: 1}); err == nil {
		t.Fatal("M=1 accepted")
	}
}

func TestEmptyAndTinyIndexes(t *testing.T) {
	for _, kind := range []string{KindFlat, KindHNSW} {
		idx, err := Build(kind, nil, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if got := idx.Search([]float32{1}, 5, nil); got != nil {
			t.Fatalf("%s: empty index returned %v", kind, got)
		}
		if idx.Len() != 0 || idx.Dim() != 0 {
			t.Fatalf("%s: empty index Len/Dim = %d/%d", kind, idx.Len(), idx.Dim())
		}
		one, err := Build(kind, []Vector{{ID: 9, Elems: []float32{1, 0}}}, Params{})
		if err != nil {
			t.Fatal(err)
		}
		got := one.Search([]float32{1, 1}, 3, nil)
		if len(got) != 1 || got[0].ID != 9 {
			t.Fatalf("%s: single-vector search = %v", kind, got)
		}
	}
}

func TestStatsCount(t *testing.T) {
	vecs, queries := corpus(5, 3000, 8, 10)
	idx, err := NewHNSW(vecs, Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		idx.Search(q, 5, nil)
	}
	st := idx.Stats()
	if st.Searches != int64(len(queries)) {
		t.Fatalf("Searches = %d, want %d", st.Searches, len(queries))
	}
	if st.DistanceComps <= 0 {
		t.Fatalf("DistanceComps = %d, want > 0", st.DistanceComps)
	}
	// An HNSW search should touch far fewer vectors than a full scan
	// once the corpus dwarfs the beam width.
	if perQuery := st.DistanceComps / st.Searches; perQuery >= int64(len(vecs)/2) {
		t.Fatalf("hnsw scored %d vectors per query on a %d-vector corpus", perQuery, len(vecs))
	}
}

// TestConcurrentSearch hammers one index from many goroutines; run
// with -race this proves the pooled scratch path is data-race free and
// that concurrent searches agree with a sequential one.
func TestConcurrentSearch(t *testing.T) {
	vecs, queries := corpus(6, 500, 16, 16)
	for _, kind := range []string{KindFlat, KindHNSW} {
		idx, err := Build(kind, vecs, Params{Seed: 6, Quantize: true})
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]Neighbor, len(queries))
		for i, q := range queries {
			want[i] = idx.Search(q, 10, nil)
		}
		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for rep := 0; rep < 20; rep++ {
					qi := (w + rep) % len(queries)
					got := idx.Search(queries[qi], 10, nil)
					if !reflect.DeepEqual(got, want[qi]) {
						select {
						case errs <- kind + ": concurrent search diverged":
						default:
						}
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Fatal(msg)
		}
	}
}

func BenchmarkFlatSearch(b *testing.B) {
	vecs, queries := corpus(21, 4000, 32, 64)
	for _, quant := range []bool{false, true} {
		name := "float32"
		if quant {
			name = "int8"
		}
		b.Run(name, func(b *testing.B) {
			idx, err := NewFlat(vecs, Params{Quantize: quant})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Search(queries[i%len(queries)], 10, nil)
			}
		})
	}
}

func BenchmarkHNSWSearch(b *testing.B) {
	vecs, queries := corpus(22, 4000, 32, 64)
	for _, quant := range []bool{false, true} {
		name := "float32"
		if quant {
			name = "int8"
		}
		b.Run(name, func(b *testing.B) {
			idx, err := NewHNSW(vecs, Params{Seed: 22, Quantize: quant})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Search(queries[i%len(queries)], 10, nil)
			}
		})
	}
}
