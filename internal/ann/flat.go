package ann

// Flat is the exact index: Search scans every stored vector. It exists
// both as the correctness baseline for the recall harness and as the
// deployable fallback when a catalogue is small enough that a graph
// walk cannot beat a linear scan. With Params.Quantize it still scans
// everything but through the batched int8 kernel.
type Flat struct {
	st    *store
	stats indexStats
}

// NewFlat builds a flat index over vecs. Params other than Quantize
// are ignored.
func NewFlat(vecs []Vector, p Params) (*Flat, error) {
	st, err := newStore(vecs, p.Quantize)
	if err != nil {
		return nil, err
	}
	return &Flat{st: st}, nil
}

// Len reports the number of indexed vectors.
func (f *Flat) Len() int { return f.st.len() }

// Dim reports the vector dimensionality (0 when empty).
func (f *Flat) Dim() int { return f.st.dim }

// Kind reports "flat".
func (f *Flat) Kind() string { return KindFlat }

// Stats returns a snapshot of the search counters.
func (f *Flat) Stats() Stats { return f.stats.snapshot() }

// Search scans the whole store, keeping the best k by descending score
// (ties toward the smaller ID) through a bounded worst-first heap.
func (f *Flat) Search(q []float32, k int, skip func(id int64) bool) []Neighbor {
	n := f.st.len()
	if n == 0 || k <= 0 {
		return nil
	}
	if len(q) != f.st.dim {
		panic("ann: query dimension mismatch")
	}
	sc := getScratch(n)
	defer putScratch(sc)
	qq := f.st.prepare(sc, q)
	sc.res.reset(false, k+1)
	for i := int32(0); int(i) < n; i++ {
		id := f.st.ids[i]
		if skip != nil && skip(id) {
			continue
		}
		p := pair{score: f.st.score(qq, i), id: id, node: i}
		sc.comps++
		if sc.res.len() < k {
			sc.res.push(p)
			continue
		}
		if better(p, sc.res.top()) {
			sc.res.pop()
			sc.res.push(p)
		}
	}
	out := drainResults(&sc.res, k)
	f.stats.searches.Add(1)
	f.stats.distComps.Add(sc.comps)
	return out
}
