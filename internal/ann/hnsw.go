package ann

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// maxLevelCap bounds node levels so a pathological seed cannot build a
// degenerate tower of layers.
const maxLevelCap = 32

// HNSW is a hierarchical navigable small-world graph: each vector gets
// a geometrically distributed level, upper layers form progressively
// sparser long-range graphs, and a query greedily descends the tower
// before running a beam search over the dense bottom layer.
//
// Construction is fully deterministic: vectors are sorted by ID, level
// draws come from a single internal/rng stream in insertion order, and
// every frontier/result ordering breaks ties toward the smaller ID.
// Two builds with equal inputs and Params answer queries identically.
type HNSW struct {
	st *store
	p  Params
	// levels[i] is node i's top layer; links[i][lc] are its
	// neighbours (node indexes) on layer lc.
	levels   []int32
	links    [][][]int32
	entry    int32
	maxLevel int
	stats    indexStats
}

// NewHNSW builds the graph over vecs with the given parameters.
func NewHNSW(vecs []Vector, p Params) (*HNSW, error) {
	p = p.withDefaults()
	if p.M < 2 {
		return nil, fmt.Errorf("ann: hnsw M must be at least 2, got %d", p.M)
	}
	st, err := newStore(vecs, p.Quantize)
	if err != nil {
		return nil, err
	}
	h := &HNSW{st: st, p: p, entry: -1, maxLevel: -1}
	n := st.len()
	h.levels = make([]int32, n)
	h.links = make([][][]int32, n)

	// Draw every level up front from one seeded stream so the graph
	// shape is a pure function of (vectors, seed).
	r := rng.New(p.Seed)
	mL := 1 / math.Log(float64(p.M))
	for i := range h.levels {
		u := r.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		l := int(-math.Log(u) * mL)
		if l > maxLevelCap {
			l = maxLevelCap
		}
		h.levels[i] = int32(l)
	}

	sc := new(scratch)
	for i := int32(0); int(i) < n; i++ {
		h.insert(sc, i)
	}
	return h, nil
}

// Len reports the number of indexed vectors.
func (h *HNSW) Len() int { return h.st.len() }

// Dim reports the vector dimensionality (0 when empty).
func (h *HNSW) Dim() int { return h.st.dim }

// Kind reports "hnsw".
func (h *HNSW) Kind() string { return KindHNSW }

// Stats returns a snapshot of the search counters.
func (h *HNSW) Stats() Stats { return h.stats.snapshot() }

// maxM is the neighbour budget on layer lc: 2M on the dense bottom
// layer, M above it.
func (h *HNSW) maxM(lc int) int {
	if lc == 0 {
		return 2 * h.p.M
	}
	return h.p.M
}

// insert wires node i into every layer up to its level.
func (h *HNSW) insert(sc *scratch, i int32) {
	li := int(h.levels[i])
	h.links[i] = make([][]int32, li+1)
	if h.entry < 0 {
		h.entry, h.maxLevel = i, li
		return
	}
	qq := h.st.nodeQuery(i)
	ep := h.entry
	for lc := h.maxLevel; lc > li; lc-- {
		ep = h.greedy(sc, qq, ep, lc)
	}
	for lc := min(li, h.maxLevel); lc >= 0; lc-- {
		h.searchLayer(sc, qq, ep, h.p.EfConstruction, lc, nil)
		w := sc.drainPairs()
		m := h.maxM(lc)
		sel := w
		if len(sel) > m {
			sel = sel[:m]
		}
		lst := make([]int32, 0, len(sel))
		for _, p := range sel {
			if p.node != i {
				lst = append(lst, p.node)
			}
		}
		h.links[i][lc] = lst
		for _, nb := range lst {
			h.links[nb][lc] = append(h.links[nb][lc], i)
			if len(h.links[nb][lc]) > m {
				h.shrink(nb, lc, m)
			}
		}
		if len(w) > 0 {
			ep = w[0].node
		}
	}
	if li > h.maxLevel {
		h.maxLevel, h.entry = li, i
	}
}

// shrink trims node n's layer-lc neighbour list back to the m closest
// (by score to n, ties toward the smaller ID).
func (h *HNSW) shrink(n int32, lc, m int) {
	lst := h.links[n][lc]
	ps := make([]pair, len(lst))
	for k, c := range lst {
		ps[k] = pair{score: h.st.scoreNodes(n, c), id: h.st.ids[c], node: c}
	}
	sort.Slice(ps, func(a, b int) bool { return better(ps[a], ps[b]) })
	lst = lst[:m]
	for k := 0; k < m; k++ {
		lst[k] = ps[k].node
	}
	h.links[n][lc] = lst
}

// greedy walks layer lc from ep to the locally best node for qq.
// Equal-score moves go toward the smaller ID, which both keeps the
// walk deterministic and guarantees termination.
func (h *HNSW) greedy(sc *scratch, qq query, ep int32, lc int) int32 {
	cur := pair{score: h.st.score(qq, ep), id: h.st.ids[ep], node: ep}
	sc.comps++
	for {
		improved := false
		for _, nb := range h.links[cur.node][lc] {
			np := pair{score: h.st.score(qq, nb), id: h.st.ids[nb], node: nb}
			sc.comps++
			if better(np, cur) {
				cur, improved = np, true
			}
		}
		if !improved {
			return cur.node
		}
	}
}

// searchLayer runs the ef-bounded beam search over layer lc starting
// at ep, leaving up to ef results in sc.res (worst-first heap).
// Vectors rejected by skip stay out of the result set but still route
// the traversal, so filtering never strands the walk.
func (h *HNSW) searchLayer(sc *scratch, qq query, ep int32, ef, lc int, skip func(id int64) bool) {
	sc.nextEpoch(h.st.len())
	sc.cand.reset(true, ef+1)
	sc.res.reset(false, ef+1)
	sc.markVisited(ep)
	p := pair{score: h.st.score(qq, ep), id: h.st.ids[ep], node: ep}
	sc.comps++
	sc.cand.push(p)
	if skip == nil || !skip(p.id) {
		sc.res.push(p)
	}
	for sc.cand.len() > 0 {
		c := sc.cand.pop()
		if sc.res.len() >= ef && !better(c, sc.res.top()) {
			break
		}
		for _, nb := range h.links[c.node][lc] {
			if sc.markVisited(nb) {
				continue
			}
			np := pair{score: h.st.score(qq, nb), id: h.st.ids[nb], node: nb}
			sc.comps++
			if sc.res.len() < ef || better(np, sc.res.top()) {
				sc.cand.push(np)
				if skip == nil || !skip(np.id) {
					sc.res.push(np)
					if sc.res.len() > ef {
						sc.res.pop()
					}
				}
			}
		}
	}
}

// Search descends the layer tower greedily, beam-searches the bottom
// layer with width max(EfSearch, k), and returns the best k survivors.
func (h *HNSW) Search(q []float32, k int, skip func(id int64) bool) []Neighbor {
	n := h.st.len()
	if n == 0 || k <= 0 {
		return nil
	}
	if len(q) != h.st.dim {
		panic("ann: query dimension mismatch")
	}
	sc := getScratch(n)
	defer putScratch(sc)
	qq := h.st.prepare(sc, q)
	ep := h.entry
	for lc := h.maxLevel; lc > 0; lc-- {
		ep = h.greedy(sc, qq, ep, lc)
	}
	ef := h.p.EfSearch
	if ef < k {
		ef = k
	}
	h.searchLayer(sc, qq, ep, ef, 0, skip)
	out := drainResults(&sc.res, k)
	h.stats.searches.Add(1)
	h.stats.distComps.Add(sc.comps)
	return out
}
