package ann

import (
	"math"
	"sync"
)

// store is the columnar vector storage shared by Flat and HNSW. With
// quant set, each vector lives as dim int8 codes plus one float32
// scale such that elem ≈ code*scale; otherwise vectors stay float32.
// The absolute quantization error per element is at most scale/2, so a
// dot product of two quantized d-dimensional vectors with max
// magnitudes A and B is within d*(A+B)/2 * (1/127) of the exact value
// — tight enough that exact rescoring of the top candidates recovers
// the true ordering (the recall harness measures exactly this).
type store struct {
	dim    int
	ids    []int64
	vecs   []float32 // n*dim, when !quant
	codes  []int8    // n*dim, when quant
	scales []float32 // n, when quant
	quant  bool
}

func (st *store) len() int { return len(st.ids) }

// quantizeInto writes the int8 codes for v into dst and returns the
// per-vector scale. A zero vector gets scale 0 (all codes 0).
func quantizeInto(dst []int8, v []float32) float32 {
	var maxAbs float32
	for _, x := range v {
		if a := float32(math.Abs(float64(x))); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, x := range v {
		c := math.Round(float64(x * inv))
		if c > 127 {
			c = 127
		} else if c < -127 {
			c = -127
		}
		dst[i] = int8(c)
	}
	return scale
}

// dotI8 is the batched integer kernel: a four-way unrolled int32
// accumulation over int8 codes. Both slices must have equal length.
func dotI8(a, b []int8) int32 {
	var s0, s1, s2, s3 int32
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for i := n; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}

// dotF32 is the float kernel, unrolled to match.
func dotF32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for i := n; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// query is a prepared search vector: the raw floats plus, on a
// quantized store, its own int8 codes and scale.
type query struct {
	f     []float32
	q     []int8
	scale float32
}

// prepare loads q into the scratch buffers for this store's layout.
func (st *store) prepare(sc *scratch, q []float32) query {
	if !st.quant {
		return query{f: q}
	}
	if cap(sc.qcodes) < len(q) {
		sc.qcodes = make([]int8, len(q))
	}
	codes := sc.qcodes[:len(q)]
	return query{f: q, q: codes, scale: quantizeInto(codes, q)}
}

// score evaluates the query against vector i in the store's layout.
func (st *store) score(q query, i int32) float32 {
	if st.quant {
		d := int(i) * st.dim
		return float32(dotI8(q.q, st.codes[d:d+st.dim])) * q.scale * st.scales[i]
	}
	d := int(i) * st.dim
	return dotF32(q.f, st.vecs[d:d+st.dim])
}

// nodeQuery wraps stored vector i as a query, letting the construction
// path score node-to-node without dequantizing.
func (st *store) nodeQuery(i int32) query {
	d := int(i) * st.dim
	if st.quant {
		return query{q: st.codes[d : d+st.dim], scale: st.scales[i]}
	}
	return query{f: st.vecs[d : d+st.dim]}
}

// scoreNodes evaluates stored vector a against stored vector b; the
// construction path uses it when shrinking over-full neighbour lists.
func (st *store) scoreNodes(a, b int32) float32 {
	da, db := int(a)*st.dim, int(b)*st.dim
	if st.quant {
		return float32(dotI8(st.codes[da:da+st.dim], st.codes[db:db+st.dim])) * st.scales[a] * st.scales[b]
	}
	return dotF32(st.vecs[da:da+st.dim], st.vecs[db:db+st.dim])
}

// pair is one (score, node) entry in the search heaps. The external ID
// rides along so ties always break toward the smaller ID without an
// extra lookup.
type pair struct {
	score float32
	id    int64
	node  int32
}

// better reports whether a ranks strictly ahead of b: higher score
// first, then smaller ID. It is the single ordering used by every
// heap, sort, and truncation in this package.
func better(a, b pair) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// pairHeap is a binary heap over pairs. With max set it pops the best
// pair first (candidate frontier); unset it pops the worst first
// (bounded result set, evicting the weakest).
type pairHeap struct {
	data []pair
	max  bool
}

func (h *pairHeap) reset(max bool, hint int) {
	if cap(h.data) < hint {
		h.data = make([]pair, 0, hint)
	}
	h.data = h.data[:0]
	h.max = max
}

func (h *pairHeap) len() int { return len(h.data) }

// top returns the root without removing it.
func (h *pairHeap) top() pair { return h.data[0] }

func (h *pairHeap) ahead(a, b pair) bool {
	if h.max {
		return better(a, b)
	}
	return better(b, a)
}

func (h *pairHeap) push(p pair) {
	h.data = append(h.data, p)
	i := len(h.data) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.ahead(h.data[i], h.data[parent]) {
			break
		}
		h.data[i], h.data[parent] = h.data[parent], h.data[i]
		i = parent
	}
}

func (h *pairHeap) pop() pair {
	root := h.data[0]
	last := len(h.data) - 1
	h.data[0] = h.data[last]
	h.data = h.data[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < last && h.ahead(h.data[l], h.data[next]) {
			next = l
		}
		if r < last && h.ahead(h.data[r], h.data[next]) {
			next = r
		}
		if next == i {
			break
		}
		h.data[i], h.data[next] = h.data[next], h.data[i]
		i = next
	}
	return root
}

// scratch is the pooled per-search working set: quantized query codes,
// an epoch-stamped visited set (cleared in O(1) by bumping the epoch),
// and the two heaps. One scratch serves one Search call at a time.
type scratch struct {
	qcodes  []int8
	visited []uint32
	epoch   uint32
	cand    pairHeap
	res     pairHeap
	w       []pair
	comps   int64
}

// drainPairs empties the result heap into a best-first slice backed by
// the scratch's reusable buffer (valid until the next drain).
func (sc *scratch) drainPairs() []pair {
	n := sc.res.len()
	if cap(sc.w) < n {
		sc.w = make([]pair, n)
	}
	sc.w = sc.w[:n]
	for i := n - 1; i >= 0; i-- {
		sc.w[i] = sc.res.pop()
	}
	return sc.w
}

// markVisited reports whether node i was already seen this epoch,
// marking it either way.
func (sc *scratch) markVisited(i int32) bool {
	if sc.visited[i] == sc.epoch {
		return true
	}
	sc.visited[i] = sc.epoch
	return false
}

// nextEpoch readies the visited set for a fresh traversal over n nodes.
func (sc *scratch) nextEpoch(n int) {
	if len(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamp everything invalid once
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 1
	}
}

// scratchPool hands out scratches shared across all indexes; buffers
// grow to the largest corpus they have served and stay there.
var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(n int) *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.nextEpoch(n)
	sc.comps = 0
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// drainResults empties the result heap (which pops worst-first) into a
// best-first Neighbor slice of at most k entries.
func drainResults(res *pairHeap, k int) []Neighbor {
	for res.len() > k {
		res.pop()
	}
	out := make([]Neighbor, res.len())
	for i := res.len() - 1; i >= 0; i-- {
		p := res.pop()
		out[i] = Neighbor{ID: p.id, Score: p.score}
	}
	return out
}
