package ann

// RecallAtK measures how much of the exact top-k the approximate index
// recovers: for each query it compares approx.Search's IDs against
// exact.Search's and returns matched / expected over the whole query
// set. 1.0 means every exact neighbour was found. This is the fidelity
// gate the CI recall step enforces — an index change that trades too
// much recall for speed fails here, not in production.
func RecallAtK(exact, approx Index, queries [][]float32, k int) float64 {
	if len(queries) == 0 {
		return 1
	}
	var hits, want int
	for _, q := range queries {
		truth := exact.Search(q, k, nil)
		if len(truth) == 0 {
			continue
		}
		got := approx.Search(q, k, nil)
		found := make(map[int64]bool, len(got))
		for _, nb := range got {
			found[nb.ID] = true
		}
		for _, nb := range truth {
			if found[nb.ID] {
				hits++
			}
		}
		want += len(truth)
	}
	if want == 0 {
		return 1
	}
	return float64(hits) / float64(want)
}
