package ann

// ItemVectorSource is implemented by models that can expose per-item
// embedding vectors for indexing. The returned slice must be sorted by
// ascending ID and is owned by the caller of the interface (sources
// build fresh slices; they do not retain them).
type ItemVectorSource interface {
	ANNItemVectors() []Vector
}

// UserQuerySource produces, for one user, the query vector paired with
// ANNItemVectors such that query·item preserves the model's per-user
// item ranking (any per-user additive constant may be dropped). ok is
// false for users the model has never seen — callers fall back to the
// model's own Recommend path.
type UserQuerySource interface {
	ANNUserQuery(user int64) (q []float32, ok bool)
}
