// Per-shard ANN surface: the Router exposes every shard engine's ANN
// index state so /debug/ann on a sharded deployment shows which legs
// of a scatter-gather actually serve approximate candidates.

package cluster

import "repro/internal/core"

// ShardANN pairs a shard ID with its engine's ANN index state.
type ShardANN struct {
	Shard int           `json:"shard"`
	ANN   core.ANNState `json:"ann"`
}

// ShardANN reports every shard's ANN state in shard-ID order. Down
// shards are reported too: the index is shard-local engine state and
// an unreachable shard still knows what it would serve.
func (rt *Router) ShardANN() []ShardANN {
	topo := rt.topo.Load()
	out := make([]ShardANN, 0, len(topo.order))
	for _, sh := range topo.order {
		out = append(out, ShardANN{Shard: sh.id, ANN: sh.eng.ANNState()})
	}
	return out
}
