package cluster

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestShardANNReportsEveryShard(t *testing.T) {
	com := chaosCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 4, Seed: 9,
		ANN:     &core.ANNConfig{Kind: "hnsw", Quantize: true},
		Trainer: mfTrainerFactory(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	shards := rt.ShardANN()
	if len(shards) != 4 {
		t.Fatalf("got %d shard states", len(shards))
	}
	for want, sa := range shards {
		if sa.Shard != want {
			t.Fatalf("shard order: %d at index %d", sa.Shard, want)
		}
		st := sa.ANN
		if !st.Enabled || st.Kind != "hnsw" || !st.Quantize {
			t.Fatalf("shard %d ANN state = %+v", sa.Shard, st)
		}
		if st.ContentVectors == 0 || st.ModelVectors == 0 || st.ModelVersion != 1 {
			t.Fatalf("shard %d indexes missing: %+v", sa.Shard, st)
		}
	}
}

func TestShardANNDisabledWithoutConfig(t *testing.T) {
	com := chaosCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{Shards: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for _, sa := range rt.ShardANN() {
		if sa.ANN.Enabled {
			t.Fatalf("shard %d reports ANN without config", sa.Shard)
		}
	}
}

func TestModelVersionSkew(t *testing.T) {
	com := chaosCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 3, Seed: 9, Trainer: mfTrainerFactory(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	sk := rt.ModelVersionSkew()
	if !sk.Enabled || sk.MinVersion != 1 || sk.MaxVersion != 1 || sk.Skew != 0 {
		t.Fatalf("fresh cluster skew = %+v", sk)
	}

	// Retrain one shard directly: its version advances past its peers
	// and the skew widens to exactly that gap.
	topo := rt.topo.Load()
	if err := topo.order[1].eng.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	sk = rt.ModelVersionSkew()
	if sk.MinVersion != 1 || sk.MaxVersion != 2 || sk.Skew != 1 {
		t.Fatalf("post-retrain skew = %+v", sk)
	}

	// A fan-out retrain bumps every shard; the spread closes again.
	if err := rt.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	sk = rt.ModelVersionSkew()
	if sk.Skew != 1 {
		// Shard 1 is now at 3, the rest at 2.
		t.Fatalf("post-fanout skew = %+v", sk)
	}
}

func TestModelVersionSkewWithoutLifecycle(t *testing.T) {
	com := chaosCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{Shards: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if sk := rt.ModelVersionSkew(); sk.Enabled || sk.Skew != 0 {
		t.Fatalf("lifecycle-free skew = %+v", sk)
	}
}
