// The cluster chaos suite: seeded fault.ClusterSim scenarios — shard
// loss mid-load, slow shards, network partitions, rebalance under
// concurrent traffic — asserting the contract the refactor promises:
// surviving-shard requests are untouched, lost-shard requests degrade
// instead of erroring, and a routed request stays one trace tree.

package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/trace"
)

func chaosCommunity(t *testing.T) *dataset.Community {
	t.Helper()
	return dataset.Movies(dataset.Config{Seed: 402, Users: 80, Items: 90, RatingsPerUser: 20})
}

// TestChaosShardLossMidLoad is the acceptance scenario: 4 shards, a
// full pass of recommend load, then one shard killed mid-run. Every
// request keeps succeeding; users on surviving shards get exactly the
// answers they got before the loss; users on the dead shard get
// explicitly degraded answers.
func TestChaosShardLossMidLoad(t *testing.T) {
	com := chaosCommunity(t)
	sim := fault.NewClusterSim(11)
	tr := trace.New(trace.Options{BufferSize: 512, SampleRate: 1, Seed: 5})
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 4, Seed: 9, Gate: sim, Tracer: tr, FailureThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	users := com.Ratings.Users()
	victim := rt.Owner(users[0])

	// Phase 1: healthy load; remember every user's answer.
	healthy := make(map[model.UserID][]model.ItemID, len(users))
	for _, u := range users {
		p, err := rt.RecommendContext(context.Background(), u, 5)
		if err != nil {
			t.Fatalf("healthy recommend for %d: %v", u, err)
		}
		if p.Degraded {
			t.Fatalf("healthy cluster served user %d degraded", u)
		}
		for _, e := range p.Entries {
			healthy[u] = append(healthy[u], e.Item.ID)
		}
	}

	// Mid-load: shard loss.
	sim.Kill(victim)

	victims, survivors := 0, 0
	for _, u := range users {
		ctx, root := tr.Start(context.Background(), "recommend")
		p, err := rt.RecommendContext(ctx, u, 5)
		root.End(err)
		if err != nil {
			t.Fatalf("recommend for %d during shard loss: %v", u, err)
		}
		if rt.Owner(u) == victim {
			victims++
			if !p.Degraded {
				t.Fatalf("user %d on lost shard %d served undegraded", u, victim)
			}
			if len(p.Entries) == 0 {
				t.Fatalf("user %d on lost shard got an empty degraded answer", u)
			}
			for _, e := range p.Entries {
				if e.Explanation == nil || !e.Explanation.Degraded {
					t.Fatalf("degraded entry for %d lacks a degraded-marked explanation", u)
				}
			}
			continue
		}
		survivors++
		if p.Degraded {
			t.Fatalf("user %d on surviving shard served degraded", u)
		}
		got := make([]model.ItemID, 0, len(p.Entries))
		for _, e := range p.Entries {
			got = append(got, e.Item.ID)
		}
		if len(got) != len(healthy[u]) {
			t.Fatalf("user %d: %d entries during loss, %d before", u, len(got), len(healthy[u]))
		}
		for i := range got {
			if got[i] != healthy[u][i] {
				t.Fatalf("user %d answer changed during unrelated shard loss: %v vs %v", u, got, healthy[u])
			}
		}
	}
	if victims == 0 || survivors == 0 {
		t.Fatalf("degenerate split: %d victims, %d survivors", victims, survivors)
	}

	st := shardState(t, rt, victim)
	if st.Healthy || st.Degraded == 0 {
		t.Fatalf("victim state after loss: %+v", st)
	}
	for _, sh := range rt.ClusterState().Shards {
		if sh.ID != victim && sh.Degraded != 0 {
			t.Fatalf("surviving shard %d accrued degraded serves: %+v", sh.ID, sh)
		}
	}
}

// TestScatterGatherSingleTraceTree: a routed scatter-gather renders as
// one trace tree — the request root with one shard-kind child per
// fanout leg, every span parented inside the tree.
func TestScatterGatherSingleTraceTree(t *testing.T) {
	com := chaosCommunity(t)
	tr := trace.New(trace.Options{BufferSize: 64, SampleRate: 1, MaxSpans: 256, Seed: 5})
	sim := fault.NewClusterSim(13)
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 4, Seed: 9, Gate: sim, Tracer: tr, FailureThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Kill(1) // one dead shard must still appear in the tree, as an errored leg

	u := com.Ratings.Users()[0]
	seed := com.Catalog.Items()[0].ID
	ctx, root := tr.Start(context.Background(), "similar")
	rootID := root.SpanID()
	p, err := rt.SimilarToContext(ctx, u, seed, 5)
	root.End(err)
	if err != nil {
		t.Fatalf("scatter-gather with a dead shard: %v", err)
	}
	if !p.Degraded {
		t.Fatal("partial scatter-gather not marked degraded")
	}

	data := tr.Lookup(root.TraceID())
	if data == nil {
		t.Fatal("trace not retained")
	}
	byID := make(map[trace.SpanID]trace.Span, len(data.Spans))
	for _, sp := range data.Spans {
		byID[sp.ID] = sp
	}
	shardLegs := map[string]trace.Span{}
	for _, sp := range data.Spans {
		// Every span must chain to the single root: one tree.
		cur := sp
		for cur.ID != rootID {
			parent, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %q parent %v not in trace", cur.Name, cur.Parent)
			}
			cur = parent
		}
		if sp.Kind == trace.KindShard {
			if sp.Parent != rootID {
				t.Fatalf("shard span %q not a direct child of the request root", sp.Name)
			}
			shardLegs[sp.Name] = sp
		}
	}
	if len(shardLegs) != 4 {
		t.Fatalf("got %d shard legs, want 4: %v", len(shardLegs), shardLegs)
	}
	if sp := shardLegs["shard-1"]; sp.Err == "" {
		t.Fatal("dead shard's leg recorded no error")
	}
}

// TestChaosPartitionScatterGather: cut the router off from half the
// cluster; similarity keeps answering from the reachable half, marked
// degraded, and heals back to full answers.
func TestChaosPartitionScatterGather(t *testing.T) {
	com := chaosCommunity(t)
	sim := fault.NewClusterSim(17)
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 4, Seed: 9, Gate: sim, FailureThreshold: 1, ProbeEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := com.Ratings.Users()[0]
	seed := com.Catalog.Items()[0].ID

	full, err := rt.SimilarToContext(context.Background(), u, seed, 8)
	if err != nil || full.Degraded {
		t.Fatalf("healthy similar: %v degraded=%v", err, full != nil && full.Degraded)
	}

	sim.Partition(0, 2)
	part, err := rt.SimilarToContext(context.Background(), u, seed, 8)
	if err != nil {
		t.Fatalf("similar during partition: %v", err)
	}
	if !part.Degraded {
		t.Fatal("partial merge not marked degraded")
	}

	sim.Heal()
	// Probes heal the downed shards over subsequent scatters.
	for i := 0; i < 64; i++ {
		if _, err := rt.SimilarToContext(context.Background(), u, seed, 8); err != nil {
			t.Fatalf("similar while healing: %v", err)
		}
		healthyAll := true
		for _, sh := range rt.ClusterState().Shards {
			healthyAll = healthyAll && sh.Healthy
		}
		if healthyAll {
			break
		}
	}
	again, err := rt.SimilarToContext(context.Background(), u, seed, 8)
	if err != nil || again.Degraded {
		t.Fatalf("similar after heal: %v degraded=%v", err, again != nil && again.Degraded)
	}
	if len(again.Entries) != len(full.Entries) {
		t.Fatalf("healed answer has %d entries, healthy had %d", len(again.Entries), len(full.Entries))
	}
}

// TestChaosSlowShardDeadline: a shard slower than the per-shard
// deadline is treated as lost — its users degrade, nobody blocks.
func TestChaosSlowShardDeadline(t *testing.T) {
	com := chaosCommunity(t)
	users := com.Ratings.Users()
	probe, err := New(com.Catalog, com.Ratings, Options{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	victim := probe.Owner(users[0])

	sim := fault.NewClusterSim(19, fault.ClusterRule{
		Shard: victim, Nth: 1, Latency: 200 * time.Millisecond,
	})
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 4, Seed: 9, Gate: sim, ShardTimeout: 5 * time.Millisecond, FailureThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := users[0]
	for i := 0; i < 3; i++ {
		start := time.Now()
		p, err := rt.RecommendContext(context.Background(), u, 5)
		if err != nil {
			t.Fatalf("recommend against slow shard: %v", err)
		}
		if !p.Degraded {
			t.Fatalf("call %d against slow shard served undegraded", i)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("call %d blocked %v; per-shard deadline not applied", i, el)
		}
	}
	if st := shardState(t, rt, victim); st.Healthy {
		t.Fatalf("persistently slow shard still healthy: %+v", st)
	}
}

// TestChaosRebalanceMidLoad: grow the cluster while request and write
// load is in flight (run under -race in CI); nothing errors and no
// rating is lost.
func TestChaosRebalanceMidLoad(t *testing.T) {
	com := chaosCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	users := com.Ratings.Users()
	items := com.Catalog.Items()

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := users[(w*13+i)%len(users)]
				if _, err := rt.RecommendContext(context.Background(), u, 3); err != nil {
					errs <- err
					return
				}
				if err := rt.Rate(u, items[(w+i)%len(items)].ID, float64(1+i%5)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	id, err := rt.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RemoveShard(id); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("load during rebalance: %v", err)
	}

	// Every original rating must still be resolvable post-rebalance
	// (values may have been overwritten by the write load, which only
	// ever rates existing user/item pairs plus new ones).
	merged := rt.Ratings()
	for _, u := range users {
		for it := range com.Ratings.UserRatings(u) {
			if _, ok := merged.Get(u, it); !ok {
				t.Fatalf("rating (%d,%d) lost across rebalance", u, it)
			}
		}
	}
}

// TestChaosDegradedBrowseAndExplain: the remaining read ops also
// degrade rather than fail during shard loss.
func TestChaosDegradedBrowseAndExplain(t *testing.T) {
	com := chaosCommunity(t)
	sim := fault.NewClusterSim(23)
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 4, Seed: 9, Gate: sim, FailureThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := com.Ratings.Users()[0]
	sim.Kill(rt.Owner(u))

	exp, err := rt.ExplainContext(context.Background(), u, com.Catalog.Items()[0].ID)
	if err != nil {
		t.Fatalf("explain during shard loss: %v", err)
	}
	if !exp.Degraded || exp.Text == "" {
		t.Fatalf("degraded explain = %+v", exp)
	}

	low, err := rt.WhyLowContext(context.Background(), u, com.Catalog.Items()[1].ID)
	if err != nil {
		t.Fatalf("why-low during shard loss: %v", err)
	}
	if !low.Degraded {
		t.Fatalf("degraded why-low = %+v", low)
	}

	v, err := rt.BrowseAllContext(context.Background(), u)
	if err != nil {
		t.Fatalf("browse during shard loss: %v", err)
	}
	if !v.Degraded {
		t.Fatal("degraded browse not marked")
	}
	if got := len(v.Entries) + len(v.Unrated()); got != com.Catalog.Len() {
		t.Fatalf("degraded browse covers %d items, catalogue has %d", got, com.Catalog.Len())
	}

	// Writes during loss are accepted, never errored.
	if err := rt.Rate(u, com.Catalog.Items()[2].ID, 4); err != nil {
		t.Fatalf("rate during shard loss: %v", err)
	}
}
