// The router's runs of the shared core.Service conformance suite: a
// degenerate 1-shard cluster and a 4-shard cluster must both be
// behaviourally indistinguishable from a single engine at the Service
// seam — that is the whole point of the refactor.

package cluster

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/core/servicetest"
	"repro/internal/model"
)

func TestRouterServiceConformance(t *testing.T) {
	for _, shards := range []int{1, 4} {
		servicetest.Run(t, fmt.Sprintf("router-%d-shard", shards), func(t *testing.T, cat *model.Catalog, ratings *model.Matrix) core.Service {
			rt, err := New(cat, ratings, Options{Shards: shards, Seed: 7})
			if err != nil {
				t.Fatalf("cluster.New: %v", err)
			}
			return rt
		})
	}
}
