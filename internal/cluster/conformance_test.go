// The router's runs of the shared core.Service conformance suite: a
// degenerate 1-shard cluster and a 4-shard cluster must both be
// behaviourally indistinguishable from a single engine at the Service
// seam — that is the whole point of the refactor.

package cluster

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/core/servicetest"
	"repro/internal/model"
	"repro/internal/recsys/mf"
)

func TestRouterServiceConformance(t *testing.T) {
	for _, shards := range []int{1, 4} {
		servicetest.Run(t, fmt.Sprintf("router-%d-shard", shards), func(t *testing.T, cat *model.Catalog, ratings *model.Matrix) core.Service {
			rt, err := New(cat, ratings, Options{Shards: shards, Seed: 7})
			if err != nil {
				t.Fatalf("cluster.New: %v", err)
			}
			return rt
		})
	}
}

// TestRouterANNConformance runs the suite against a 4-shard cluster
// whose shard engines serve approximate candidates from per-shard
// HNSW indexes: every scatter-gather leg searches its own index, and
// the merged answers must stay behaviourally indistinguishable from
// the brute-force cluster.
func TestRouterANNConformance(t *testing.T) {
	servicetest.Run(t, "router-4-shard-ann", func(t *testing.T, cat *model.Catalog, ratings *model.Matrix) core.Service {
		rt, err := New(cat, ratings, Options{
			Shards: 4,
			Seed:   7,
			ANN:    &core.ANNConfig{Kind: "hnsw", Quantize: true},
			Trainer: func(shardSeed uint64) core.TrainerConfig {
				return core.TrainerConfig{
					Trainer: mf.SGD{Opts: mf.Options{Seed: shardSeed, Factors: 8, Epochs: 6}},
				}
			},
		})
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		return rt
	})
}

// TestRouterMidRetrainConformance runs the suite against a 4-shard
// cluster whose shard engines serve MF models and retrain in the
// background after every single write — the harshest version-swap
// schedule. Every answer the suite checks must hold while models are
// being swapped underneath it.
func TestRouterMidRetrainConformance(t *testing.T) {
	servicetest.Run(t, "router-4-shard-mid-retrain", func(t *testing.T, cat *model.Catalog, ratings *model.Matrix) core.Service {
		rt, err := New(cat, ratings, Options{
			Shards: 4,
			Seed:   7,
			Trainer: func(shardSeed uint64) core.TrainerConfig {
				return core.TrainerConfig{
					Trainer:      mf.SGD{Opts: mf.Options{Seed: shardSeed, Factors: 8, Epochs: 6}},
					RetrainEvery: 1,
				}
			},
		})
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		return rt
	})
}
