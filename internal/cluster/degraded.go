// Degraded serving: when a user's owning shard is unreachable, their
// reads are answered from the surviving shards' merged popularity
// evidence instead of erroring — the cluster-level extension of the
// engine's own degraded-mode stages. Every degraded answer is marked
// (Presentation.Degraded, Explanation.Degraded, trace SetDegraded) so
// the honesty contract holds: a fallback never impersonates the
// personalised answer.

package cluster

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/trace"
)

// noteDegraded records one degraded response against the shard whose
// loss caused it, in counters and on the trace.
func (rt *Router) noteDegraded(ctx context.Context, sh *shard, op string) {
	sh.degraded.Add(1)
	trace.SetDegraded(ctx)
	trace.Event(ctx, "cluster_degraded",
		trace.Attr{Key: "shard", Value: strconv.Itoa(sh.id)},
		trace.Attr{Key: "op", Value: op})
}

// degradedRecommend serves a popularity list from the surviving
// shards' merged evidence.
func (rt *Router) degradedRecommend(ctx context.Context, topo *topology, sh *shard, u model.UserID, n int) (*present.Presentation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	merged := topo.healthyMatrix()
	preds := core.PopularityRanking(merged, rt.cat, u, n)
	entries := make([]present.Entry, 0, len(preds))
	for _, pr := range preds {
		it, err := rt.cat.Item(pr.Item)
		if err != nil {
			continue
		}
		entries = append(entries, present.Entry{
			Item:        it,
			Prediction:  pr,
			Explanation: core.PopularityExplanation(merged, it),
		})
	}
	rt.noteDegraded(ctx, sh, "recommend")
	return &present.Presentation{
		Title:    fmt.Sprintf("Top %d for you", len(entries)),
		Entries:  entries,
		Degraded: true,
	}, nil
}

// degradedExplain serves popularity evidence for one item. Unknown
// items keep their domain error.
func (rt *Router) degradedExplain(ctx context.Context, topo *topology, sh *shard, item model.ItemID, op string) (*explain.Explanation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	it, err := rt.cat.Item(item)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	rt.noteDegraded(ctx, sh, op)
	return core.PopularityExplanation(topo.healthyMatrix(), it), nil
}

// degradedBrowse serves the full catalogue ordered by the surviving
// shards' item popularity.
func (rt *Router) degradedBrowse(ctx context.Context, topo *topology, sh *shard, u model.UserID) (*present.RatingsView, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	merged := topo.healthyMatrix()
	v := present.PredictedRatings(rt.cat, popularityPredictor{m: merged}, nil, u)
	v.Degraded = true
	rt.noteDegraded(ctx, sh, "browse")
	return v, nil
}

// popularityPredictor scores every item by its mean rating in the
// merged surviving-shard matrix; items no survivor has rated stay
// unpredictable and land in the view's unrated list.
type popularityPredictor struct {
	m *model.Matrix
}

func (p popularityPredictor) Predict(u model.UserID, item model.ItemID) (recsys.Prediction, error) {
	ratings := p.m.ItemRatings(item)
	if len(ratings) == 0 {
		return recsys.Prediction{}, fmt.Errorf("item %d: %w", item, recsys.ErrColdStart)
	}
	mean, _ := p.m.ItemMean(item)
	c := float64(len(ratings))
	return recsys.Prediction{Item: item, Score: mean, Confidence: c / (c + 5)}, nil
}
