// Cluster durability: with Options.Durability set, every piece of
// router state that must survive a process death gets a write-ahead
// log under one Space — each shard engine's mutations (core.WithWAL at
// "shard-N/wal"), each shard's parked write journal ("shard-N/journal"),
// and the topology itself ("topology"). The topology log records the
// founding parameters plus every AddShard/RemoveShard, so a restart
// rebuilds exactly the cluster that died: same ring, same shard set,
// same per-shard seeds — and fails fast when the operator's flags
// disagree with what is on disk, because silently re-partitioning a
// durable cluster would strand every shard's recovered users.
//
// A restart finishes what a crash interrupted: user migrations are
// completed by a deterministic ownership sweep (import into the ring
// owner, evict from the stale holder — both idempotent, both logged by
// the engines' own WALs), and recovered parked writes re-route through
// the healthy cluster, then compact away.

package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/wal"
)

// Durability configures the cluster's durable state. The zero Space is
// invalid; everything else defaults sensibly.
type Durability struct {
	// Space roots the cluster's logs: wal.DirSpace(dir) in production,
	// wal.NewMemSpace().FS in tests. Required.
	Space wal.Space
	// Fsync is the durability policy applied to every log (engine WALs,
	// journals, topology). Defaults to wal.FsyncAlways.
	Fsync wal.FsyncPolicy
	// FsyncEvery is the N for wal.FsyncEveryN.
	FsyncEvery int
	// CheckpointEvery is each shard engine's checkpoint cadence in
	// records; 0 selects core.DefaultCheckpointEvery.
	CheckpointEvery int
}

// walOptions is the common log configuration durable components share.
func (d *Durability) walOptions() wal.Options {
	return wal.Options{Fsync: d.Fsync, FsyncEvery: d.FsyncEvery}
}

// topoRecord is one topology-log record. Init carries the founding
// parameters; add/remove carry the shard ID.
type topoRecord struct {
	Op     string `json:"op"` // "init", "add", "remove"
	Shards int    `json:"shards,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	VNodes int    `json:"vnodes,omitempty"`
	ID     int    `json:"id,omitempty"`
}

// topoCheckpoint is the compacted topology: founding parameters plus
// the current membership, written after every topology change so
// replay stays O(1).
type topoCheckpoint struct {
	Shards  int    `json:"shards"`
	Seed    uint64 `json:"seed"`
	VNodes  int    `json:"vnodes"`
	Members []int  `json:"members"`
}

// openTopology opens (or founds) the durable topology log and returns
// the member shard IDs to build, plus whether this is a restart of an
// existing cluster. initIDs is the founding membership implied by
// Options.Shards.
func (rt *Router) openTopology(initIDs []int) (ids []int, restarted bool, err error) {
	d := rt.opts.Durability
	fs, err := d.Space("topology")
	if err != nil {
		return nil, false, fmt.Errorf("cluster: topology space: %w", err)
	}
	opts := d.walOptions()
	opts.FS = fs
	l, recv, err := wal.Open(opts)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: topology log: %w", err)
	}
	rt.topoLog = l

	if recv.Checkpoint == nil && len(recv.Records) == 0 {
		// Founding boot: record the parameters the cluster is built
		// with, so every later boot can verify against them.
		rec := topoRecord{Op: "init", Shards: rt.opts.Shards, Seed: rt.opts.Seed, VNodes: rt.opts.VNodes}
		if err := rt.appendTopo(rec); err != nil {
			l.Close()
			return nil, false, err
		}
		return initIDs, false, nil
	}

	members := map[int]bool{}
	founding := topoRecord{}
	if recv.Checkpoint != nil {
		var ck topoCheckpoint
		if err := json.Unmarshal(recv.Checkpoint, &ck); err != nil {
			l.Close()
			return nil, false, fmt.Errorf("cluster: topology checkpoint: %w", err)
		}
		founding = topoRecord{Op: "init", Shards: ck.Shards, Seed: ck.Seed, VNodes: ck.VNodes}
		for _, id := range ck.Members {
			members[id] = true
		}
	}
	for _, rec := range recv.Records {
		var tr topoRecord
		if err := json.Unmarshal(rec.Payload, &tr); err != nil {
			l.Close()
			return nil, false, fmt.Errorf("cluster: topology record %d: %w", rec.Seq, err)
		}
		switch tr.Op {
		case "init":
			founding = tr
			for i := 0; i < tr.Shards; i++ {
				members[i] = true
			}
		case "add":
			members[tr.ID] = true
		case "remove":
			delete(members, tr.ID)
		default:
			l.Close()
			return nil, false, fmt.Errorf("cluster: topology record %d has unknown op %q", rec.Seq, tr.Op)
		}
	}
	if founding.Op != "init" {
		l.Close()
		return nil, false, errors.New("cluster: topology log has no founding record")
	}
	// Fail fast on parameter drift: a durable cluster's partitioning is
	// defined by what is on disk, not by this boot's flags.
	if founding.Shards != rt.opts.Shards || founding.Seed != rt.opts.Seed || founding.VNodes != rt.opts.VNodes {
		l.Close()
		return nil, false, fmt.Errorf(
			"cluster: durable topology was founded with shards=%d seed=%d vnodes=%d, but this boot asks for shards=%d seed=%d vnodes=%d",
			founding.Shards, founding.Seed, founding.VNodes, rt.opts.Shards, rt.opts.Seed, rt.opts.VNodes)
	}
	if len(members) == 0 {
		l.Close()
		return nil, false, errors.New("cluster: topology log resolves to zero shards")
	}
	ids = make([]int, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, true, nil
}

// appendTopo logs one topology record; topology changes that cannot be
// made durable do not happen.
func (rt *Router) appendTopo(rec topoRecord) error {
	if rt.topoLog == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: encoding topology record: %w", err)
	}
	if _, err := rt.topoLog.Append(data); err != nil {
		return fmt.Errorf("cluster: topology log rejected the change: %w", err)
	}
	return nil
}

// compactTopo checkpoints the topology log at the given membership so
// replay never reads more than the records since the last change.
// Best-effort: an uncompacted log replays the same history.
func (rt *Router) compactTopo(t *topology) {
	if rt.topoLog == nil {
		return
	}
	ck := topoCheckpoint{Shards: rt.opts.Shards, Seed: rt.opts.Seed, VNodes: rt.opts.VNodes}
	for _, sh := range t.order {
		ck.Members = append(ck.Members, sh.id)
	}
	payload, err := json.Marshal(&ck)
	if err != nil {
		return
	}
	//lint:ignore dropped-error compaction is advisory — the record history replays to the same membership
	_ = rt.topoLog.Checkpoint(payload)
}

// completeMigrations finishes any user migration a crash interrupted:
// every user held by a shard the ring no longer assigns them to moves
// to the owner (import before evict, exactly like a live rebalance).
// Both primitives are idempotent and engine-WAL-logged, so the sweep
// is safe to run on every restart and a crash DURING the sweep just
// reruns it next boot.
func (rt *Router) completeMigrations(t *topology) {
	for _, sh := range t.order {
		m := sh.eng.Ratings()
		for _, u := range m.Users() {
			owner := t.ring.Owner(u)
			if owner == sh.id {
				continue
			}
			// Evict only an applied import: if the owner's WAL rejected
			// the append, the stale holder keeps the only durable copy
			// and the next boot's sweep retries the move.
			if err := t.byID[owner].eng.ImportUserRatings(u, m.UserRatings(u)); err != nil {
				continue
			}
			sh.eng.EvictUser(u)
		}
	}
}

// WALState reports the topology log's state — the cluster's own
// durable log, alongside the per-shard states in ClusterState. ok is
// false on in-memory clusters.
func (rt *Router) WALState() (wal.State, bool) {
	if rt.topoLog == nil {
		return wal.State{}, false
	}
	return rt.topoLog.State(), true
}

// Close flushes and releases every durable resource: each shard
// engine's WAL, each journal log, and the topology log. Reads keep
// serving from closed engines; writes are rejected. Idempotent.
func (rt *Router) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	topo := rt.topo.Load()
	if topo != nil {
		for _, sh := range topo.order {
			keep(sh.eng.Close())
			keep(sh.journal.close())
		}
	}
	if rt.topoLog != nil {
		keep(rt.topoLog.Close())
	}
	return first
}
