// Durable-cluster tests: everything here runs against wal.NewMemSpace
// so "crash" is just abandoning a router (or closing it) and building
// a new one over the same space — no disk, no sleeps, fully seeded.

package cluster

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/wal"
)

func durableOpts(space wal.Space) Options {
	return Options{Shards: 3, Seed: 9, Durability: &Durability{Space: space}}
}

// mergedRatings flattens a router's ratings for equality checks.
func mergedRatings(rt *Router) map[model.UserID]map[model.ItemID]float64 {
	out := map[model.UserID]map[model.ItemID]float64{}
	m := rt.Ratings()
	for _, u := range m.Users() {
		out[u] = m.UserRatings(u)
	}
	return out
}

// TestDurableClusterSurvivesRestart: every accepted write lands in a
// shard WAL, so a restart over the same space — seeded with an EMPTY
// matrix — rebuilds the exact rating state, live writes included.
func TestDurableClusterSurvivesRestart(t *testing.T) {
	com := testCommunity(t)
	space := wal.NewMemSpace()
	rt, err := New(com.Catalog, com.Ratings, durableOpts(space.FS))
	if err != nil {
		t.Fatal(err)
	}
	u := com.Ratings.Users()[0]
	item := com.Catalog.Items()[0].ID
	if err := rt.Rate(u, item, 5); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetInfluenceWeight(u, item, 0.25); err != nil {
		t.Fatal(err)
	}
	want := mergedRatings(rt)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// The constructor matrix is seed data only: pass an empty one and
	// let the recovered WAL checkpoints prove they are the source of
	// truth.
	rt2, err := New(com.Catalog, model.NewMatrix(), durableOpts(space.FS))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	got := mergedRatings(rt2)
	if len(got) != len(want) {
		t.Fatalf("restart recovered %d users, want %d", len(got), len(want))
	}
	for ru, ratings := range want {
		for it, v := range ratings {
			if gv, ok := rt2.Ratings().Get(ru, it); !ok || gv != v {
				t.Fatalf("rating (%d,%d) = %v,%v after restart, want %v", ru, it, gv, ok, v)
			}
		}
	}

	st := rt2.ClusterState()
	if !st.Durable {
		t.Fatal("restarted cluster does not report durable")
	}
	for _, sh := range st.Shards {
		if sh.WAL == nil || sh.JournalWAL == nil {
			t.Fatalf("shard %d missing WAL state: %+v", sh.ID, sh)
		}
	}
	// The restarted cluster is live, not a read-only museum.
	if err := rt2.Rate(u, com.Catalog.Items()[1].ID, 4); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}

// TestDurableClusterRecoversParkedWrites: a write parked for a down
// shard is durably journaled before it is acknowledged, so a crash
// with the shard still down does not lose it — the restart replays it
// through the healthy cluster.
func TestDurableClusterRecoversParkedWrites(t *testing.T) {
	com := testCommunity(t)
	space := wal.NewMemSpace()
	sim := fault.NewClusterSim(3)
	opts := durableOpts(space.FS)
	opts.Gate = sim
	opts.FailureThreshold = 1
	rt, err := New(com.Catalog, com.Ratings, opts)
	if err != nil {
		t.Fatal(err)
	}
	u := com.Ratings.Users()[0]
	victim := rt.Owner(u)
	item := com.Catalog.Items()[0].ID

	sim.Kill(victim)
	if _, err := rt.RecommendContext(context.Background(), u, 3); err != nil {
		t.Fatalf("recommend during shard loss: %v", err)
	}
	if err := rt.Rate(u, item, 5); err != nil {
		t.Fatalf("rate during shard loss: %v", err)
	}
	if st := shardState(t, rt, victim); st.JournalDepth == 0 {
		t.Fatalf("write not parked: %+v", st)
	}
	// Crash: abandon the router without closing anything.

	rt2, err := New(com.Catalog, com.Ratings, durableOpts(space.FS))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got, ok := rt2.Ratings().Get(u, item); !ok || got != 5 {
		t.Fatalf("parked write after restart = %v,%v, want 5,true", got, ok)
	}
	st := shardState(t, rt2, victim)
	if st.JournalDepth != 0 {
		t.Fatalf("journal not drained at restart: %+v", st)
	}
	if st.JournalWAL == nil || st.JournalWAL.CheckpointAge != 0 {
		t.Fatalf("journal log not compacted after restart replay: %+v", st.JournalWAL)
	}
}

// TestDurableJournalBoundedAcrossKillHealCycles: repeated kill/heal
// cycles must not pin memory or grow the journal log without bound —
// each heal's replay compacts the log back to a checkpoint of the
// (empty) parked set.
func TestDurableJournalBoundedAcrossKillHealCycles(t *testing.T) {
	com := testCommunity(t)
	space := wal.NewMemSpace()
	sim := fault.NewClusterSim(3)
	opts := durableOpts(space.FS)
	opts.Gate = sim
	opts.FailureThreshold = 1
	opts.ProbeEvery = 2
	rt, err := New(com.Catalog, com.Ratings, opts)
	if err != nil {
		t.Fatal(err)
	}
	u := com.Ratings.Users()[0]
	victim := rt.Owner(u)
	items := com.Catalog.Items()

	const cycles = 6
	for c := 0; c < cycles; c++ {
		sim.Kill(victim)
		if _, err := rt.RecommendContext(context.Background(), u, 3); err != nil {
			t.Fatalf("cycle %d: recommend during loss: %v", c, err)
		}
		for k := 0; k < 4; k++ {
			if err := rt.Rate(u, items[(c*4+k)%len(items)].ID, 4); err != nil {
				t.Fatalf("cycle %d: rate: %v", c, err)
			}
		}
		sim.Restore(victim)
		healed := false
		for i := 0; i < 64 && !healed; i++ {
			if _, err := rt.RecommendContext(context.Background(), u, 3); err != nil {
				t.Fatalf("cycle %d: recommend while healing: %v", c, err)
			}
			healed = shardState(t, rt, victim).Healthy
		}
		if !healed {
			t.Fatalf("cycle %d: victim never healed", c)
		}
	}

	st := shardState(t, rt, victim)
	if st.JournalDepth != 0 {
		t.Fatalf("parked entries pinned after %d cycles: %+v", cycles, st)
	}
	if st.JournalWAL == nil {
		t.Fatal("no journal log state on a durable cluster")
	}
	// The log's replay cost must reflect the LAST cycle, not the sum of
	// all of them: compaction after each heal resets the age to zero.
	if st.JournalWAL.CheckpointAge != 0 {
		t.Fatalf("journal log grew across cycles: age %d, want 0 (state %+v)",
			st.JournalWAL.CheckpointAge, st.JournalWAL)
	}
	if st.JournalWAL.Checkpoints < cycles {
		t.Fatalf("journal compacted %d times over %d heal cycles", st.JournalWAL.Checkpoints, cycles)
	}
}

// TestDurableTopologyDriftFailsFast: a durable cluster's partitioning
// is defined by its founding record; booting over the same space with
// different flags must refuse, not silently re-partition.
func TestDurableTopologyDriftFailsFast(t *testing.T) {
	com := testCommunity(t)
	space := wal.NewMemSpace()
	rt, err := New(com.Catalog, com.Ratings, durableOpts(space.FS))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	bad := []Options{
		{Shards: 4, Seed: 9, Durability: &Durability{Space: space.FS}},
		{Shards: 3, Seed: 10, Durability: &Durability{Space: space.FS}},
		{Shards: 3, Seed: 9, VNodes: 7, Durability: &Durability{Space: space.FS}},
	}
	for i, opts := range bad {
		if _, err := New(com.Catalog, com.Ratings, opts); err == nil {
			t.Fatalf("drifted boot %d succeeded", i)
		} else if !strings.Contains(err.Error(), "founded") {
			t.Fatalf("drifted boot %d: unexpected error %v", i, err)
		}
	}

	// Matching flags still boot.
	rt2, err := New(com.Catalog, com.Ratings, durableOpts(space.FS))
	if err != nil {
		t.Fatalf("matching boot refused: %v", err)
	}
	if err := rt2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRebalanceSurvivesRestart: AddShard and RemoveShard are
// topology-logged, so a restart rebuilds the rebalanced cluster — with
// the ORIGINAL founding flags, because membership now comes from the
// log, not from Options.Shards.
func TestDurableRebalanceSurvivesRestart(t *testing.T) {
	com := testCommunity(t)
	space := wal.NewMemSpace()
	rt, err := New(com.Catalog, com.Ratings, durableOpts(space.FS))
	if err != nil {
		t.Fatal(err)
	}
	id, err := rt.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	rt2, err := New(com.Catalog, model.NewMatrix(), durableOpts(space.FS))
	if err != nil {
		t.Fatalf("restart after add: %v", err)
	}
	st := rt2.ClusterState()
	if len(st.Shards) != 4 {
		t.Fatalf("restart rebuilt %d shards, want 4", len(st.Shards))
	}
	if got := rt2.Ratings().Len(); got != com.Ratings.Len() {
		t.Fatalf("restart after add holds %d ratings, want %d", got, com.Ratings.Len())
	}
	for _, sh := range rt2.topo.Load().order {
		for _, ru := range sh.eng.Ratings().Users() {
			if rt2.Owner(ru) != sh.id {
				t.Fatalf("after restart: user %d on shard %d, owned by %d", ru, sh.id, rt2.Owner(ru))
			}
		}
	}

	if err := rt2.RemoveShard(id); err != nil {
		t.Fatal(err)
	}
	if err := rt2.Close(); err != nil {
		t.Fatal(err)
	}
	rt3, err := New(com.Catalog, model.NewMatrix(), durableOpts(space.FS))
	if err != nil {
		t.Fatalf("restart after remove: %v", err)
	}
	if got := len(rt3.ClusterState().Shards); got != 3 {
		t.Fatalf("restart after remove rebuilt %d shards, want 3", got)
	}
	if got := rt3.Ratings().Len(); got != com.Ratings.Len() {
		t.Fatalf("restart after remove holds %d ratings, want %d", got, com.Ratings.Len())
	}
}

// TestRemoveShardCrashCannotLoseData: RemoveShard appends its "remove"
// topology record only AFTER the departing shard's journal is drained
// and its users are durably imported at their new owners. Crash the
// topology log at exactly that append — in both directions the record
// can resolve (bytes survived the dying machine, bytes torn off) — and
// verify no rating is lost either way.
func TestRemoveShardCrashCannotLoseData(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear int // CrashPlan.TearBytes for the fatal topology append
		want int // shards after restart
	}{
		// The NACKed record's bytes reached disk: the restart excludes
		// the shard, so its data must already live on the survivors.
		{"record survives", -1, 2},
		// The record tore off entirely: the restart keeps the shard and
		// the ownership sweep settles the half-made copies.
		{"record torn", 0, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			com := testCommunity(t)
			space := wal.NewMemSpace()
			// Wrap only the topology log: write 1 is the founding record,
			// write 2 the fatal "remove".
			crashTopo := func(dir string) (wal.FS, error) {
				fs, err := space.FS(dir)
				if err != nil {
					return nil, err
				}
				if dir == "topology" {
					return fault.NewCrashFS(fs, fault.CrashPlan{AfterWrites: 2, TearBytes: tc.tear}), nil
				}
				return fs, nil
			}
			rt, err := New(com.Catalog, com.Ratings, Options{
				Shards: 3, Seed: 9, Durability: &Durability{Space: crashTopo},
			})
			if err != nil {
				t.Fatal(err)
			}
			want := com.Ratings.Len()
			if err := rt.RemoveShard(2); err == nil {
				t.Fatal("RemoveShard succeeded through a crashing topology log")
			}
			// Crash: abandon rt and restart over the raw space.

			rt2, err := New(com.Catalog, model.NewMatrix(), durableOpts(space.FS))
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			if got := len(rt2.ClusterState().Shards); got != tc.want {
				t.Fatalf("restart rebuilt %d shards, want %d", got, tc.want)
			}
			if got := rt2.Ratings().Len(); got != want {
				t.Fatalf("restart holds %d ratings, want %d — acknowledged writes lost", got, want)
			}
			for _, sh := range rt2.topo.Load().order {
				for _, ru := range sh.eng.Ratings().Users() {
					if rt2.Owner(ru) != sh.id {
						t.Fatalf("user %d stranded on shard %d, owned by %d", ru, sh.id, rt2.Owner(ru))
					}
				}
			}
		})
	}
}

// TestDurableRestartFinishesInterruptedMigration: simulate a crash in
// the worst spot — the "add" record is on disk but the process died
// before migrating a single user. The restart must build the new
// (empty) shard and the ownership sweep must finish the move.
func TestDurableRestartFinishesInterruptedMigration(t *testing.T) {
	com := testCommunity(t)
	space := wal.NewMemSpace()
	rt, err := New(com.Catalog, com.Ratings, durableOpts(space.FS))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge the crash: append the topology record AddShard would have
	// written, with none of the migration work done.
	fs, err := space.FS("topology")
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open(wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := json.Marshal(topoRecord{Op: "add", ID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rt2, err := New(com.Catalog, model.NewMatrix(), durableOpts(space.FS))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := len(rt2.ClusterState().Shards); got != 4 {
		t.Fatalf("restart rebuilt %d shards, want 4", got)
	}
	if got := rt2.Ratings().Len(); got != com.Ratings.Len() {
		t.Fatalf("sweep lost ratings: %d, want %d", got, com.Ratings.Len())
	}
	moved := 0
	for _, sh := range rt2.topo.Load().order {
		for _, ru := range sh.eng.Ratings().Users() {
			if rt2.Owner(ru) != sh.id {
				t.Fatalf("user %d stranded on shard %d, owned by %d", ru, sh.id, rt2.Owner(ru))
			}
			if sh.id == 3 {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Fatal("migration sweep moved no users to the forged shard")
	}
}
