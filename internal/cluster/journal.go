// The write journal: when a user's owning shard is unreachable, their
// writes are accepted and parked here instead of failing, then replayed
// through the router when the shard heals (or drained into the new
// owner on a rebalance). Entries are validated before journaling, so
// replay failures are anomalies worth counting, not expected noise.

package cluster

import (
	"sync"

	"repro/internal/interact"
	"repro/internal/model"
)

// journalOp enumerates the journaled write kinds — the Service write
// surface exactly.
type journalOp int

const (
	opRate journalOp = iota
	opRemove
	opOpinion
	opInfluence
)

// journalEntry is one parked write.
type journalEntry struct {
	op      journalOp
	user    model.UserID
	item    model.ItemID
	value   float64 // rating for opRate, weight for opInfluence
	opinion interact.Opinion
}

// opName reports the operation name the chaos gate sees for this
// entry, matching the read-path names in style.
func (e journalEntry) opName() string {
	switch e.op {
	case opRate:
		return "rate"
	case opRemove:
		return "remove"
	case opOpinion:
		return "opinion"
	default:
		return "influence"
	}
}

// journal is one shard's parked-write queue, in arrival order.
type journal struct {
	mu      sync.Mutex
	entries []journalEntry
}

func (j *journal) push(e journalEntry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = append(j.entries, e)
}

// drain removes and returns every parked entry in arrival order.
func (j *journal) drain() []journalEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := j.entries
	j.entries = nil
	return out
}

func (j *journal) len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// applyEntry applies one journaled write to a shard engine. Inputs
// were validated at accept time, so errors here are domain rejections
// from the engine itself.
func applyEntry(eng engineOps, e journalEntry) error {
	switch e.op {
	case opRate:
		return eng.Rate(e.user, e.item, e.value)
	case opRemove:
		eng.RemoveRating(e.user, e.item)
		return nil
	case opOpinion:
		return eng.Opinion(e.user, e.opinion)
	default:
		return eng.SetInfluenceWeight(e.user, e.item, e.value)
	}
}

// engineOps is the slice of the engine surface applyEntry needs; a
// tiny interface keeps journal tests independent of a full engine.
type engineOps interface {
	Rate(u model.UserID, item model.ItemID, value float64) error
	RemoveRating(u model.UserID, item model.ItemID)
	Opinion(u model.UserID, op interact.Opinion) error
	SetInfluenceWeight(u model.UserID, item model.ItemID, weight float64) error
}
