// The write journal: when a user's owning shard is unreachable, their
// writes are accepted and parked here instead of failing, then replayed
// through the router when the shard heals (or drained into the new
// owner on a rebalance). Entries are validated before journaling, so
// replay failures are anomalies worth counting, not expected noise.
//
// With durability enabled (Options.Durability) every parked entry is
// appended to a per-shard write-ahead log before it is acknowledged,
// so accepted-but-parked writes survive a router crash. After a drain
// is applied, the journal compacts: a checkpoint holding the current
// parked set (usually empty) replaces the record history, so repeated
// kill/heal cycles leave both the in-memory queue and the on-disk log
// bounded. Replay after a crash is at-least-once — a crash between
// applying a drained entry and the compaction checkpoint re-parks it —
// which is the right trade for writes that were already acknowledged.

package cluster

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/wal"
)

// journalOp enumerates the journaled write kinds — the Service write
// surface exactly.
type journalOp int

const (
	opRate journalOp = iota
	opRemove
	opOpinion
	opInfluence
)

// journalEntry is one parked write.
type journalEntry struct {
	op      journalOp
	user    model.UserID
	item    model.ItemID
	value   float64 // rating for opRate, weight for opInfluence
	opinion interact.Opinion
}

// opName reports the operation name the chaos gate sees for this
// entry, matching the read-path names in style.
func (e journalEntry) opName() string {
	switch e.op {
	case opRate:
		return "rate"
	case opRemove:
		return "remove"
	case opOpinion:
		return "opinion"
	default:
		return "influence"
	}
}

// journal is one shard's parked-write queue, in arrival order. dlog is
// the durable backing, nil when the cluster runs in-memory only.
type journal struct {
	mu      sync.Mutex
	entries []journalEntry
	dlog    *wal.Log
}

// journalWire is the durable form of one entry: the journalEntry
// fields flattened, with the opinion expanded so the record is plain
// JSON.
type journalWire struct {
	Op     journalOp            `json:"op"`
	User   model.UserID         `json:"u"`
	Item   model.ItemID         `json:"it,omitempty"`
	Value  float64              `json:"v,omitempty"`
	Kind   interact.OpinionKind `json:"k,omitempty"`
	OpItem model.ItemID         `json:"oi,omitempty"`
	Aspect string               `json:"a,omitempty"`
}

func wireOf(e journalEntry) journalWire {
	return journalWire{
		Op:     e.op,
		User:   e.user,
		Item:   e.item,
		Value:  e.value,
		Kind:   e.opinion.Kind,
		OpItem: e.opinion.Item,
		Aspect: e.opinion.Aspect,
	}
}

func (w journalWire) entry() journalEntry {
	return journalEntry{
		op:      w.Op,
		user:    w.User,
		item:    w.Item,
		value:   w.Value,
		opinion: interact.Opinion{Kind: w.Kind, Item: w.OpItem, Aspect: w.Aspect},
	}
}

// openDurable attaches a write-ahead log to the journal and recovers
// previously parked entries: the newest compaction checkpoint's parked
// set plus every record after it.
func (j *journal) openDurable(fs wal.FS, opts wal.Options) error {
	opts.FS = fs
	l, recv, err := wal.Open(opts)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dlog = l
	if len(recv.Checkpoint) > 0 {
		var wires []journalWire
		if err := json.Unmarshal(recv.Checkpoint, &wires); err != nil {
			l.Close()
			return fmt.Errorf("cluster: journal checkpoint: %w", err)
		}
		for _, w := range wires {
			j.entries = append(j.entries, w.entry())
		}
	}
	for _, rec := range recv.Records {
		var w journalWire
		if err := json.Unmarshal(rec.Payload, &w); err != nil {
			l.Close()
			return fmt.Errorf("cluster: journal record %d: %w", rec.Seq, err)
		}
		j.entries = append(j.entries, w.entry())
	}
	return nil
}

// push parks one entry, appending it to the durable log first when one
// is attached — an entry is only acknowledged once it would survive a
// crash.
func (j *journal) push(e journalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dlog != nil {
		data, err := json.Marshal(wireOf(e))
		if err != nil {
			return err
		}
		if _, err := j.dlog.Append(data); err != nil {
			return err
		}
	}
	j.entries = append(j.entries, e)
	return nil
}

// drain removes and returns every parked entry in arrival order. The
// durable log is deliberately NOT compacted here: the caller is about
// to apply the entries, and until they land the log is their only
// crash-safe copy. Call compact once the drain has been applied.
func (j *journal) drain() []journalEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := j.entries
	j.entries = nil
	return out
}

// compact checkpoints the durable log at the CURRENT parked set (empty
// after a fully applied drain; the re-parked survivors otherwise), so
// kill/heal cycles do not grow the log without bound. Best-effort: a
// failed compaction leaves the full history, which replays correctly.
func (j *journal) compact() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dlog == nil {
		return
	}
	wires := make([]journalWire, 0, len(j.entries))
	for _, e := range j.entries {
		wires = append(wires, wireOf(e))
	}
	payload, err := json.Marshal(wires)
	if err != nil {
		return
	}
	//lint:ignore dropped-error compaction is advisory — an uncompacted journal replays the same entries, just from more records
	_ = j.dlog.Checkpoint(payload)
}

// close releases the durable log, if any.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dlog == nil {
		return nil
	}
	return j.dlog.Close()
}

// walState reports the durable log's state for ClusterState.
func (j *journal) walState() (wal.State, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dlog == nil {
		return wal.State{}, false
	}
	return j.dlog.State(), true
}

func (j *journal) len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// applyEntry applies one journaled write to a shard engine. Inputs
// were validated at accept time, so errors here are domain rejections
// from the engine itself.
func applyEntry(eng engineOps, e journalEntry) error {
	switch e.op {
	case opRate:
		return eng.Rate(e.user, e.item, e.value)
	case opRemove:
		eng.RemoveRating(e.user, e.item)
		return nil
	case opOpinion:
		return eng.Opinion(e.user, e.opinion)
	default:
		return eng.SetInfluenceWeight(e.user, e.item, e.value)
	}
}

// engineOps is the slice of the engine surface applyEntry needs; a
// tiny interface keeps journal tests independent of a full engine.
type engineOps interface {
	Rate(u model.UserID, item model.ItemID, value float64) error
	RemoveRating(u model.UserID, item model.ItemID)
	Opinion(u model.UserID, op interact.Opinion) error
	SetInfluenceWeight(u model.UserID, item model.ItemID, weight float64) error
}
