// Per-shard model lifecycle surface: the Router exposes every shard
// engine's versioned-model state and a fan-out retrain, mirroring the
// single-engine ModelsState/Retrain API so the HTTP layer serves both
// backends through the same probes.

package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// ShardModels pairs a shard ID with its engine's model-lifecycle
// state, as reported by /debug/models on a sharded deployment.
type ShardModels struct {
	Shard  int              `json:"shard"`
	Models core.ModelsState `json:"models"`
}

// ShardModels reports every shard's lifecycle state in shard-ID order.
// Down shards are reported too: the lifecycle is router-side state and
// a shard marked unreachable still knows what model it would serve.
func (rt *Router) ShardModels() []ShardModels {
	topo := rt.topo.Load()
	out := make([]ShardModels, 0, len(topo.order))
	for _, sh := range topo.order {
		out = append(out, ShardModels{Shard: sh.id, Models: sh.eng.ModelsState()})
	}
	return out
}

// VersionSkew summarises the spread of serving model versions across
// the cluster's lifecycle-enabled shards. Shards retrain independently
// (different write rates, different schedules), so their artifact
// versions drift apart; operators watch the skew to spot a shard whose
// retrains are stuck while its peers advance. Enabled is false (and
// the rest zero) when no shard runs a lifecycle.
type VersionSkew struct {
	Enabled    bool   `json:"enabled"`
	MinVersion uint64 `json:"min_version,omitempty"`
	MaxVersion uint64 `json:"max_version,omitempty"`
	// Skew is MaxVersion - MinVersion: 0 means every shard serves the
	// same model generation.
	Skew uint64 `json:"skew"`
}

// ModelVersionSkew computes the cross-shard version spread from the
// shards' lock-free version counters.
func (rt *Router) ModelVersionSkew() VersionSkew {
	topo := rt.topo.Load()
	var sk VersionSkew
	for _, sh := range topo.order {
		// ModelVersion is 0 exactly when the shard runs no lifecycle:
		// a lifecycle engine's initial train always publishes v1.
		v := sh.eng.ModelVersion()
		if v == 0 {
			continue
		}
		if !sk.Enabled {
			sk = VersionSkew{Enabled: true, MinVersion: v, MaxVersion: v}
			continue
		}
		if v < sk.MinVersion {
			sk.MinVersion = v
		}
		if v > sk.MaxVersion {
			sk.MaxVersion = v
		}
	}
	sk.Skew = sk.MaxVersion - sk.MinVersion
	return sk
}

// Retrain triggers a synchronous retrain on every shard engine, in
// shard-ID order so the version bumps are deterministic. Per-shard
// failures are joined; core.ErrNoTrainer and core.ErrTrainInProgress
// survive errors.Is through the join, so the frontend keeps its
// status mapping.
func (rt *Router) Retrain(ctx context.Context) error {
	topo := rt.topo.Load()
	var errs []error
	for _, sh := range topo.order {
		if err := sh.eng.Retrain(ctx); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh.id, err))
		}
	}
	return errors.Join(errs...)
}
