package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/recsys/mf"
)

func mfTrainerFactory(retrainEvery int) func(uint64) core.TrainerConfig {
	return func(shardSeed uint64) core.TrainerConfig {
		return core.TrainerConfig{
			Trainer:      mf.SGD{Opts: mf.Options{Seed: shardSeed, Factors: 8, Epochs: 4}},
			RetrainEvery: retrainEvery,
		}
	}
}

func TestShardModelsReportsEveryShard(t *testing.T) {
	com := chaosCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 4, Seed: 9, Trainer: mfTrainerFactory(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := rt.ShardModels()
	if len(shards) != 4 {
		t.Fatalf("got %d shard states", len(shards))
	}
	sums := map[string]int{}
	for want, sm := range shards {
		if sm.Shard != want {
			t.Fatalf("shard order: %d at index %d", sm.Shard, want)
		}
		if !sm.Models.Enabled || sm.Models.ServingVersion != 1 || sm.Models.Trainer != "sgd" {
			t.Fatalf("shard %d state = %+v", sm.Shard, sm.Models)
		}
		sums[sm.Models.Artifacts[0].Checksum]++
	}
	// Shards hold disjoint user slices and derived seeds, so the
	// per-shard models must differ.
	if len(sums) != 4 {
		t.Fatalf("shard model checksums collided: %v", sums)
	}
}

// TestShardModelsDeterministicInClusterSeed: equal clusters train equal
// per-shard models — the property journal replay and rebuild depend on.
func TestShardModelsDeterministicInClusterSeed(t *testing.T) {
	com := chaosCommunity(t)
	build := func() *Router {
		rt, err := New(com.Catalog, com.Ratings, Options{
			Shards: 4, Seed: 9, Trainer: mfTrainerFactory(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a, b := build(), build()
	sa, sb := a.ShardModels(), b.ShardModels()
	for k := range sa {
		ca := sa[k].Models.Artifacts[0].Checksum
		cb := sb[k].Models.Artifacts[0].Checksum
		if ca != cb {
			t.Fatalf("shard %d checksums diverge: %s vs %s", sa[k].Shard, ca, cb)
		}
	}
}

func TestRouterRetrainBumpsEveryShard(t *testing.T) {
	com := chaosCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 3, Seed: 9, Trainer: mfTrainerFactory(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, sm := range rt.ShardModels() {
		if sm.Models.ServingVersion != 2 {
			t.Fatalf("shard %d at version %d after cluster retrain", sm.Shard, sm.Models.ServingVersion)
		}
	}
}

func TestRouterWithoutTrainerReportsDisabled(t *testing.T) {
	com := chaosCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{Shards: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range rt.ShardModels() {
		if sm.Models.Enabled {
			t.Fatalf("shard %d claims a lifecycle: %+v", sm.Shard, sm.Models)
		}
	}
	err = rt.Retrain(context.Background())
	if !errors.Is(err, core.ErrNoTrainer) {
		t.Fatalf("err = %v, want wrapped ErrNoTrainer", err)
	}
}

// TestJournalReplayRetrainsHealedShard: writes journaled while a shard
// is down replay through the normal write path at heal, so they fold
// into the healed shard's model and fire its retrain trigger exactly
// like live writes.
func TestJournalReplayRetrainsHealedShard(t *testing.T) {
	com := chaosCommunity(t)
	sim := fault.NewClusterSim(11)
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 4, Seed: 9, Gate: sim, FailureThreshold: 1, ProbeEvery: 2,
		Trainer: mfTrainerFactory(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	users := com.Ratings.Users()
	victimShard := rt.Owner(users[0])
	var victims []model.UserID
	for _, u := range users {
		if rt.Owner(u) == victimShard {
			victims = append(victims, u)
		}
	}
	if len(victims) < 2 {
		t.Skip("not enough users on the victim shard")
	}
	sim.Kill(victimShard)
	// Trip the breaker, then journal writes against the down shard.
	_, _ = rt.RecommendContext(context.Background(), victims[0], 3)
	item := com.Catalog.Items()[0].ID
	for _, u := range victims {
		if err := rt.Rate(u, item, 4.5); err != nil {
			t.Fatalf("journaled write: %v", err)
		}
	}
	sim.Heal()
	// Probing is arrival-count based: keep reading until the shard
	// heals and its journal replays.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _ = rt.RecommendContext(context.Background(), victims[0], 3)
		st := rt.ShardModels()[victimShard]
		if st.Models.DataRev >= uint64(len(victims)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never replayed; state = %+v", st.Models)
		}
	}
	// The replayed writes fired the every-write retrain trigger.
	deadline = time.Now().Add(10 * time.Second)
	for rt.ShardModels()[victimShard].Models.ServingVersion < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("healed shard never retrained; state = %+v", rt.ShardModels()[victimShard].Models)
		}
		time.Sleep(time.Millisecond)
	}
	// The replayed rating is visible on the healed shard.
	if _, ok := rt.Ratings().Get(victims[0], item); !ok {
		t.Fatal("replayed rating not visible after heal")
	}
}
