// Rebalancing: adding or removing a shard publishes a new ring and
// migrates only the users whose ownership changed — the consistent
// hash's ~1/N guarantee. Migration moves rating history with the
// engine's import/evict primitives (one snapshot generation each, no
// repair-action inflation) and drains a removed shard's write journal
// through the new ring. Reads never block: in-flight requests finish
// on the topology they loaded; the next request sees the new one.

package cluster

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// AddShard grows the cluster by one shard, migrating the users the new
// ring assigns to it. It returns the new shard's ID.
func (rt *Router) AddShard() (int, error) {
	rt.rebalanceMu.lock()
	defer rt.rebalanceMu.unlock()

	old := rt.topo.Load()
	id := old.order[len(old.order)-1].id + 1
	// Log the change before acting on it: a crash after this record
	// replays into a cluster that has the shard (with an empty engine),
	// and the restart's migration sweep finishes moving its users.
	if err := rt.appendTopo(topoRecord{Op: "add", ID: id}); err != nil {
		return 0, err
	}
	sh, err := rt.newShard(id, model.NewMatrix())
	if err != nil {
		return 0, err
	}
	ring := old.ring.WithShard(id)

	// Import into the new shard before evicting from the old ones, so a
	// concurrent reader on either topology always finds the user's
	// ratings somewhere. An import the new shard's WAL rejects skips the
	// evict too — the user simply stays on the source shard, and the
	// restart ownership sweep retries the move.
	for _, src := range old.order {
		m := src.eng.Ratings()
		for _, u := range m.Users() {
			if ring.Owner(u) != id {
				continue
			}
			if err := sh.eng.ImportUserRatings(u, m.UserRatings(u)); err != nil {
				continue
			}
			src.eng.EvictUser(u)
		}
	}

	next := &topology{ring: ring, byID: make(map[int]*shard, len(old.order)+1)}
	for _, s := range old.order {
		next.byID[s.id] = s
	}
	next.byID[id] = sh
	next.order = append(append([]*shard{}, old.order...), sh)
	sort.Slice(next.order, func(a, b int) bool { return next.order[a].id < next.order[b].id })
	rt.topo.Store(next)
	rt.compactTopo(next)
	return id, nil
}

// RemoveShard drains shard id out of the cluster: its users' ratings
// migrate to their new owners and its parked journal writes re-route
// through the new ring. The last shard cannot be removed.
func (rt *Router) RemoveShard(id int) error {
	rt.rebalanceMu.lock()
	defer rt.rebalanceMu.unlock()

	old := rt.topo.Load()
	gone, ok := old.byID[id]
	if !ok {
		return fmt.Errorf("cluster: no shard %d", id)
	}
	if len(old.order) == 1 {
		return fmt.Errorf("cluster: cannot remove the last shard %d", id)
	}
	ring := old.ring.WithoutShard(id)

	next := &topology{ring: ring, byID: make(map[int]*shard, len(old.order)-1)}
	for _, s := range old.order {
		if s.id == id {
			continue
		}
		next.byID[s.id] = s
		next.order = append(next.order, s)
	}

	// Drain the departing shard's parked writes BEFORE migrating, so the
	// migration below copies a rating state that includes them. Entries
	// still owned by the departing shard under the current ring apply
	// directly to its engine (bypassing the router's down-state: the
	// shard is being decommissioned, not failed, and its engine is
	// in-process and healthy); entries whose owner moved in an earlier
	// rebalance re-route normally.
	for _, e := range gone.journal.drain() {
		var err error
		if old.ring.Owner(e.user) == id {
			err = applyEntry(gone.eng, e)
		} else {
			err = rt.applyWrite(e)
		}
		if err != nil {
			gone.replayDropped.Add(1)
			continue
		}
		gone.replayed.Add(1)
	}
	// Applied entries are durable in engine WALs now; the journal's
	// record history can compact away.
	gone.journal.compact()

	// Migrate the departing shard's users to their new owners. Each
	// import is logged in the destination engine's own WAL, so by the
	// time the "remove" record below commits the membership change,
	// every migrated rating is already durable at its new home.
	m := gone.eng.Ratings()
	for _, u := range m.Users() {
		if err := next.byID[ring.Owner(u)].eng.ImportUserRatings(u, m.UserRatings(u)); err != nil {
			// A destination that cannot make an import durable aborts
			// the removal: the shard stays a member and keeps its data.
			// Users already copied are NOT evicted back — they are
			// harmless stale duplicates the next restart's ownership
			// sweep clears, whereas evicting here could destroy the
			// last durable copy if a concurrent failure settles the
			// membership differently than this process saw.
			return fmt.Errorf("cluster: migrating user %d off shard %d: %w", u, id, err)
		}
	}

	// Log the membership change only now, after every rating and parked
	// write has a durable home elsewhere. A crash BEFORE this record
	// restarts WITH the shard (the ownership sweep re-imports and then
	// evicts the copies made above); a crash AFTER it restarts without
	// the shard, whose data the surviving engines' WALs already hold.
	if err := rt.appendTopo(topoRecord{Op: "remove", ID: id}); err != nil {
		// The append was NACKed, but the log's boundary is at-least-once:
		// the record's bytes may have reached disk anyway, in which case
		// a restart WILL exclude the shard. The imported copies above are
		// then the data's only home — leave them in place. If the record
		// did not survive, the restart sweep treats them as stale
		// duplicates and settles ownership back onto this shard.
		return err
	}

	rt.topo.Store(next)
	if err := gone.journal.close(); err != nil {
		return err
	}
	if err := gone.eng.Close(); err != nil {
		return err
	}
	rt.compactTopo(next)
	return nil
}
