// Rebalancing: adding or removing a shard publishes a new ring and
// migrates only the users whose ownership changed — the consistent
// hash's ~1/N guarantee. Migration moves rating history with the
// engine's import/evict primitives (one snapshot generation each, no
// repair-action inflation) and drains a removed shard's write journal
// through the new ring. Reads never block: in-flight requests finish
// on the topology they loaded; the next request sees the new one.

package cluster

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// AddShard grows the cluster by one shard, migrating the users the new
// ring assigns to it. It returns the new shard's ID.
func (rt *Router) AddShard() (int, error) {
	rt.rebalanceMu.lock()
	defer rt.rebalanceMu.unlock()

	old := rt.topo.Load()
	id := old.order[len(old.order)-1].id + 1
	// Log the change before acting on it: a crash after this record
	// replays into a cluster that has the shard (with an empty engine),
	// and the restart's migration sweep finishes moving its users.
	if err := rt.appendTopo(topoRecord{Op: "add", ID: id}); err != nil {
		return 0, err
	}
	sh, err := rt.newShard(id, model.NewMatrix())
	if err != nil {
		return 0, err
	}
	ring := old.ring.WithShard(id)

	// Import into the new shard before evicting from the old ones, so a
	// concurrent reader on either topology always finds the user's
	// ratings somewhere.
	for _, src := range old.order {
		m := src.eng.Ratings()
		for _, u := range m.Users() {
			if ring.Owner(u) != id {
				continue
			}
			sh.eng.ImportUserRatings(u, m.UserRatings(u))
			src.eng.EvictUser(u)
		}
	}

	next := &topology{ring: ring, byID: make(map[int]*shard, len(old.order)+1)}
	for _, s := range old.order {
		next.byID[s.id] = s
	}
	next.byID[id] = sh
	next.order = append(append([]*shard{}, old.order...), sh)
	sort.Slice(next.order, func(a, b int) bool { return next.order[a].id < next.order[b].id })
	rt.topo.Store(next)
	rt.compactTopo(next)
	return id, nil
}

// RemoveShard drains shard id out of the cluster: its users' ratings
// migrate to their new owners and its parked journal writes re-route
// through the new ring. The last shard cannot be removed.
func (rt *Router) RemoveShard(id int) error {
	rt.rebalanceMu.lock()
	defer rt.rebalanceMu.unlock()

	old := rt.topo.Load()
	gone, ok := old.byID[id]
	if !ok {
		return fmt.Errorf("cluster: no shard %d", id)
	}
	if len(old.order) == 1 {
		return fmt.Errorf("cluster: cannot remove the last shard %d", id)
	}
	// Log before acting, exactly like AddShard: a crash after this
	// record restarts without the shard, and the migration sweep (plus
	// this drain's at-least-once journal) finishes the move.
	if err := rt.appendTopo(topoRecord{Op: "remove", ID: id}); err != nil {
		return err
	}
	ring := old.ring.WithoutShard(id)

	next := &topology{ring: ring, byID: make(map[int]*shard, len(old.order)-1)}
	for _, s := range old.order {
		if s.id == id {
			continue
		}
		next.byID[s.id] = s
		next.order = append(next.order, s)
	}

	// Migrate the departing shard's users to their new owners.
	m := gone.eng.Ratings()
	for _, u := range m.Users() {
		next.byID[ring.Owner(u)].eng.ImportUserRatings(u, m.UserRatings(u))
	}

	// Publish, then drain the departing shard's journal through the new
	// ring so parked writes land on (or journal at) the new owners.
	rt.topo.Store(next)
	for _, e := range gone.journal.drain() {
		if err := rt.applyWrite(e); err != nil {
			gone.replayDropped.Add(1)
			continue
		}
		gone.replayed.Add(1)
	}
	// The departed shard's durable state is settled (its users' ratings
	// were re-imported and re-logged by the surviving engines, and the
	// drain just re-routed its parked writes), so its logs can close.
	gone.journal.compact()
	if err := gone.journal.close(); err != nil {
		return err
	}
	if err := gone.eng.Close(); err != nil {
		return err
	}
	rt.compactTopo(next)
	return nil
}
