// Package cluster shards the serving engine: a seeded consistent-hash
// ring partitions the user base across N shard-local engines, and a
// Router implementing core.Service routes every operation to the
// owning shard (or scatter-gathers across all of them), so the HTTP
// layer and every other frontend keep consuming the same interface
// they consume for a single engine.
//
// The survey's argument — that explanation quality is a property of
// the whole serving system, not just the explanation text — is why the
// cluster layer exists: at "millions of users" scale a single
// in-process engine cannot answer in time, and a late or failed
// explanation undermines trust as surely as a bad one. The cluster
// keeps the explain-present-interact cycle intact per shard and
// degrades (popularity fallbacks, partial scatter-gather merges)
// rather than failing when shards are lost.
//
// Everything here is deterministic from its seeds: ring placement,
// shard engine behaviour, and the chaos simulator (fault.ClusterSim)
// that drives shard loss, slow shards and partitions in tests. The
// package sits under recsyslint's determinism rule — no wall-clock
// reads, no math/rand — so a failing chaos run replays bit-for-bit.
package cluster

import (
	"sort"

	"repro/internal/model"
)

// Ring is a seeded consistent-hash ring mapping users to shard IDs.
// It is immutable: WithShard and WithoutShard return new rings, so a
// Router can publish ring changes with an atomic pointer swap exactly
// like the engine publishes model snapshots.
//
// Each shard owns VNodes pseudo-random points on a 64-bit circle; a
// user hashes to a point and is owned by the first shard point at or
// after it (wrapping). Ownership is a pure function of (seed, vnodes,
// member set, user), so two rings built with the same parameters agree
// on every assignment — across processes, runs and Go versions — and
// adding or removing one shard moves only the arcs that shard's points
// cover, about 1/N of the users.
type Ring struct {
	seed    uint64
	vnodes  int
	members []int   // sorted shard IDs
	points  []point // sorted by (hash, shard)
}

// point is one virtual node: a position on the circle owned by a shard.
type point struct {
	hash  uint64
	shard int
}

// DefaultVNodes is the virtual-node count used when NewRing is given
// zero: high enough that ownership imbalance stays within a few
// percent at realistic shard counts, low enough that ring rebuilds
// stay trivially cheap.
const DefaultVNodes = 64

// NewRing builds a ring over the given shard IDs. vnodes <= 0 selects
// DefaultVNodes. Duplicate shard IDs are collapsed.
func NewRing(seed uint64, vnodes int, shards []int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[int]bool, len(shards))
	members := make([]int, 0, len(shards))
	for _, id := range shards {
		if !seen[id] {
			seen[id] = true
			members = append(members, id)
		}
	}
	sort.Ints(members)
	r := &Ring{seed: seed, vnodes: vnodes, members: members}
	r.points = make([]point, 0, len(members)*vnodes)
	for _, id := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: r.pointHash(id, v), shard: id})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// splitmix64 is the finalizer of the splitmix64 generator — a strong
// 64-bit mix used for both point placement and user hashing. It is
// seed-stable: no dependence on Go's runtime hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// pointHash places virtual node v of a shard on the circle.
func (r *Ring) pointHash(shard, v int) uint64 {
	return splitmix64(r.seed ^ splitmix64(uint64(int64(shard))<<20|uint64(int64(v))))
}

// userHash places a user on the circle.
func (r *Ring) userHash(u model.UserID) uint64 {
	return splitmix64(r.seed ^ (uint64(int64(u)) * 0xD6E8FEB86659FD93))
}

// Owner returns the shard that owns user u. It panics on an empty
// ring; a Router never publishes one.
func (r *Ring) Owner(u model.UserID) int {
	if len(r.points) == 0 {
		panic("cluster: Owner on empty ring")
	}
	h := r.userHash(u)
	// First point at or after h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Members returns the shard IDs on the ring, sorted ascending. The
// returned slice is shared; treat it as read-only.
func (r *Ring) Members() []int { return r.members }

// Has reports whether shard id is on the ring.
func (r *Ring) Has(id int) bool {
	i := sort.SearchInts(r.members, id)
	return i < len(r.members) && r.members[i] == id
}

// WithShard returns a ring with shard id added (the receiver if it is
// already a member). Only users on arcs now covered by the new shard's
// points change owner.
func (r *Ring) WithShard(id int) *Ring {
	if r.Has(id) {
		return r
	}
	return NewRing(r.seed, r.vnodes, append(append([]int{}, r.members...), id))
}

// WithoutShard returns a ring with shard id removed (the receiver if
// it is not a member). Only users the removed shard owned change
// owner.
func (r *Ring) WithoutShard(id int) *Ring {
	if !r.Has(id) {
		return r
	}
	members := make([]int, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != id {
			members = append(members, m)
		}
	}
	return NewRing(r.seed, r.vnodes, members)
}
