package cluster

import (
	"testing"

	"repro/internal/model"
)

func TestRingSameSeedSameOwnership(t *testing.T) {
	a := NewRing(42, 64, []int{0, 1, 2, 3})
	b := NewRing(42, 64, []int{3, 1, 0, 2, 2}) // order and dupes must not matter
	for u := model.UserID(0); u < 2000; u++ {
		if a.Owner(u) != b.Owner(u) {
			t.Fatalf("user %d: %d vs %d for identical rings", u, a.Owner(u), b.Owner(u))
		}
	}
}

func TestRingDifferentSeedsDisagree(t *testing.T) {
	a := NewRing(1, 64, []int{0, 1, 2, 3})
	b := NewRing(2, 64, []int{0, 1, 2, 3})
	same := 0
	const users = 2000
	for u := model.UserID(0); u < users; u++ {
		if a.Owner(u) == b.Owner(u) {
			same++
		}
	}
	// Independent placements agree ~1/N of the time; near-total
	// agreement would mean the seed is not actually feeding the hash.
	if same > users/2 {
		t.Fatalf("rings with different seeds agree on %d/%d users", same, users)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(7, DefaultVNodes, []int{0, 1, 2, 3})
	counts := map[int]int{}
	const users = 8000
	for u := model.UserID(0); u < users; u++ {
		counts[r.Owner(u)]++
	}
	for _, id := range r.Members() {
		got := counts[id]
		// Perfect balance is 25%; virtual nodes keep every shard within
		// a loose band of it.
		if got < users*10/100 || got > users*45/100 {
			t.Fatalf("shard %d owns %d of %d users; balance lost (%v)", id, got, users, counts)
		}
	}
}

// TestRingAddMovesBoundedFraction is the consistent-hash contract:
// growing N shards to N+1 moves only the users the new shard takes
// over — about 1/(N+1) of them — and every moved user moves TO the new
// shard, never between old ones.
func TestRingAddMovesBoundedFraction(t *testing.T) {
	const users = 8000
	old := NewRing(7, DefaultVNodes, []int{0, 1, 2, 3})
	grown := old.WithShard(4)
	moved := 0
	for u := model.UserID(0); u < users; u++ {
		was, is := old.Owner(u), grown.Owner(u)
		if was == is {
			continue
		}
		if is != 4 {
			t.Fatalf("user %d moved %d -> %d; adding a shard must only move users onto it", u, was, is)
		}
		moved++
	}
	// Expected 1/5 = 20%; allow generous variance but catch a full
	// reshuffle (which would move ~80%).
	if moved == 0 || moved > users*32/100 {
		t.Fatalf("adding a shard moved %d/%d users, want ~%d", moved, users, users/5)
	}
}

func TestRingRemoveMovesOnlyOrphanedUsers(t *testing.T) {
	const users = 8000
	old := NewRing(7, DefaultVNodes, []int{0, 1, 2, 3})
	shrunk := old.WithoutShard(2)
	moved := 0
	for u := model.UserID(0); u < users; u++ {
		was, is := old.Owner(u), shrunk.Owner(u)
		if was != 2 {
			if was != is {
				t.Fatalf("user %d moved %d -> %d though shard 2's removal did not orphan it", u, was, is)
			}
			continue
		}
		if is == 2 {
			t.Fatalf("user %d still owned by removed shard 2", u)
		}
		moved++
	}
	if moved == 0 || moved > users*40/100 {
		t.Fatalf("removing a shard moved %d/%d users, want ~%d", moved, users, users/4)
	}
}

func TestRingImmutableOps(t *testing.T) {
	r := NewRing(3, 16, []int{0, 1})
	if r.WithShard(1) != r {
		t.Fatal("WithShard on an existing member must return the receiver")
	}
	if r.WithoutShard(9) != r {
		t.Fatal("WithoutShard on a non-member must return the receiver")
	}
	grown := r.WithShard(2)
	if len(r.Members()) != 2 || len(grown.Members()) != 3 {
		t.Fatalf("receiver mutated: %v / %v", r.Members(), grown.Members())
	}
	if !grown.Has(2) || r.Has(2) {
		t.Fatal("membership wrong after WithShard")
	}
}

// TestRingPinnedAssignments pins exact ownership for fixed
// (seed, vnodes, members) triples. If this table ever changes, ring
// hashing changed and every deployed cluster would re-shuffle its
// users on upgrade — that is a breaking change, not a refactor. The
// seed-1 rows also pin one exact rebalance: growing {0,1,2} to
// {0,1,2,3} moves users 1 and 6 onto the new shard and nobody else.
func TestRingPinnedAssignments(t *testing.T) {
	cases := []struct {
		seed    uint64
		vnodes  int
		members []int
		user    model.UserID
		owner   int
	}{
		{seed: 1, vnodes: 16, members: []int{0, 1, 2}, user: 1, owner: 1},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2}, user: 2, owner: 2},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2}, user: 3, owner: 2},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2}, user: 4, owner: 1},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2}, user: 5, owner: 0},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2}, user: 6, owner: 2},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2}, user: 7, owner: 1},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2}, user: 8, owner: 0},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2, 3}, user: 1, owner: 3},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2, 3}, user: 2, owner: 2},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2, 3}, user: 3, owner: 2},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2, 3}, user: 4, owner: 1},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2, 3}, user: 5, owner: 0},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2, 3}, user: 6, owner: 3},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2, 3}, user: 7, owner: 1},
		{seed: 1, vnodes: 16, members: []int{0, 1, 2, 3}, user: 8, owner: 0},
		{seed: 99, vnodes: 64, members: []int{0, 1, 2, 3}, user: 1, owner: 3},
		{seed: 99, vnodes: 64, members: []int{0, 1, 2, 3}, user: 2, owner: 2},
		{seed: 99, vnodes: 64, members: []int{0, 1, 2, 3}, user: 3, owner: 1},
		{seed: 99, vnodes: 64, members: []int{0, 1, 2, 3}, user: 4, owner: 0},
		{seed: 99, vnodes: 64, members: []int{0, 1, 2, 3}, user: 5, owner: 1},
		{seed: 99, vnodes: 64, members: []int{0, 1, 2, 3}, user: 6, owner: 0},
		{seed: 99, vnodes: 64, members: []int{0, 1, 2, 3}, user: 7, owner: 2},
		{seed: 99, vnodes: 64, members: []int{0, 1, 2, 3}, user: 8, owner: 0},
	}
	for _, c := range cases {
		if got := NewRing(c.seed, c.vnodes, c.members).Owner(c.user); got != c.owner {
			t.Errorf("seed %d vnodes %d members %v user %d: owner = %d, want pinned %d",
				c.seed, c.vnodes, c.members, c.user, got, c.owner)
		}
	}
}
