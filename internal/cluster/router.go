// The Router: core.Service over N shard-local engines. Reads route to
// the owning shard (scatter-gather for cross-shard similarity), writes
// fan to the owning shard and journal when it is unreachable, and
// every routed call is health-checked, deadline-bounded and traced
// with shard attributes so one request's cluster hops render as a
// single span tree.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/fault"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/trace"
	"repro/internal/wal"
)

// ErrShardDown reports a shard call refused because the shard is (or
// was just observed to be) unreachable. It never escapes the Router's
// read path — reads reroute to degraded serving — but shard spans and
// health accounting carry it.
var ErrShardDown = errors.New("cluster: shard unreachable")

// Gate is the chaos seam: when non-nil it is consulted before every
// shard call and its decision (unreachable, added latency, injected
// transport error) is applied before the shard engine runs.
// fault.ClusterSim is the stock implementation; production runs with a
// nil Gate and pays one nil check per call.
type Gate interface {
	Decide(shard int, op string) fault.ClusterDecision
}

// Options configures a Router. The zero value of every field selects a
// sensible default; only Shards is mandatory.
type Options struct {
	// Shards is the number of shard engines to partition users across.
	Shards int
	// Seed drives ring placement and every shard engine's exploration
	// stream; equal seeds mean equal clusters. 0 means 1.
	Seed uint64
	// VNodes is the virtual-node count per shard on the ring; 0 means
	// DefaultVNodes.
	VNodes int

	// ShardTimeout bounds each routed or scattered shard call; 0 leaves
	// calls bounded only by the request context.
	ShardTimeout time.Duration
	// MaxFanout bounds concurrent shard calls in one scatter-gather; 0
	// means 4.
	MaxFanout int

	// FailureThreshold is the run of consecutive infrastructure
	// failures that marks a shard down at the router (degraded serving
	// starts without even calling it); 0 means 3.
	FailureThreshold int
	// ProbeEvery lets every nth arrival for a down shard through as a
	// probe; a probe that succeeds heals the shard and replays its
	// journal. 0 means 8. Probing is count-based, not time-based, so
	// chaos runs stay deterministic.
	ProbeEvery int

	// Personality is applied to every shard engine.
	Personality present.Personality
	// Tracer, when non-nil, is installed on every shard engine and used
	// for the router's own shard spans.
	Tracer *trace.Tracer
	// Resilience, when non-nil, installs the breaker/shed/retry chain
	// on every shard engine — per-shard breakers and per-shard shedding
	// by construction, since each shard engine owns its own chain.
	Resilience *core.ResilienceConfig
	// Gate is the chaos seam (see Gate); nil disables fault injection.
	Gate Gate

	// Trainer, when non-nil, installs a versioned model lifecycle
	// (core.WithTrainer) on every shard engine. It is called once per
	// shard with the shard's derived seed, so each shard trains its
	// own model deterministically in the cluster seed and shard ID —
	// equal clusters train equal per-shard models. Journal replay at
	// shard heal flows through the normal write path, so replayed
	// writes fold in and trigger retrains exactly like live ones.
	Trainer func(shardSeed uint64) core.TrainerConfig

	// ANN, when non-nil, installs the approximate candidate-generation
	// indexes (core.WithANN) on every shard engine, so the router's
	// scatter-gather SimilarTo legs each hit a per-shard index instead
	// of brute-forcing their slice of the catalogue. A zero Seed is
	// derived per shard from the shard's own seed, keeping equal
	// clusters byte-identical.
	ANN *core.ANNConfig

	// Durability, when non-nil, makes the cluster survive process death:
	// shard engines log writes to per-shard WALs, parked journal writes
	// persist, and topology changes replay at restart (see durable.go).
	Durability *Durability
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.VNodes <= 0 {
		out.VNodes = DefaultVNodes
	}
	if out.MaxFanout <= 0 {
		out.MaxFanout = 4
	}
	if out.FailureThreshold <= 0 {
		out.FailureThreshold = 3
	}
	if out.ProbeEvery <= 0 {
		out.ProbeEvery = 8
	}
	return out
}

// shard is one shard engine plus the router-side state attached to it:
// health, write journal and counters. Shard objects survive topology
// changes — a rebalance publishes a new topology referencing the same
// shard pointers — so health and counters are continuous.
type shard struct {
	id  int
	eng *core.Engine

	// down marks the shard unreachable at the router; consecFails
	// counts the current run of infrastructure failures and probeTick
	// spaces the count-based probes while down.
	down        atomic.Bool
	consecFails atomic.Int64
	probeTick   atomic.Int64

	journal journal

	// Counters surfaced by ClusterState and the recsys_shard_* metrics.
	requests      atomic.Int64
	infraFailures atomic.Int64
	degraded      atomic.Int64
	journaled     atomic.Int64
	journalErrors atomic.Int64
	replayed      atomic.Int64
	replayDropped atomic.Int64
}

// topology is one immutable generation of the cluster layout: the ring
// and the shard set it routes over. The Router publishes topologies
// through an atomic pointer exactly like the engine publishes model
// snapshots, so reads never lock and a rebalance never blocks serving.
type topology struct {
	ring  *Ring
	byID  map[int]*shard
	order []*shard // sorted by id
}

func (t *topology) owner(u model.UserID) *shard { return t.byID[t.ring.Owner(u)] }

// Router implements core.Service over a consistent-hash-partitioned
// set of shard engines. See the package documentation for the design.
type Router struct {
	cat  *model.Catalog
	opts Options

	topo atomic.Pointer[topology]

	// topoLog is the durable topology journal, nil without Durability.
	topoLog *wal.Log

	// rebalanceMu serialises topology changes (AddShard/RemoveShard);
	// the read path never takes it.
	rebalanceMu chMutex
}

// chMutex is a plain mutex built on a channel so the lock-free-read
// claim stays auditable: the only lock in this package guards
// rebalancing, never a read.
type chMutex struct{ ch chan struct{} }

func (m *chMutex) init()   { m.ch = make(chan struct{}, 1) }
func (m *chMutex) lock()   { m.ch <- struct{}{} }
func (m *chMutex) unlock() { <-m.ch }

// The Router is a drop-in Service backend.
var _ core.Service = (*Router)(nil)

// New partitions ratings across opts.Shards shard engines by ring
// ownership and returns the routing Service. The input matrix is
// treated as immutable, exactly as core.New treats it.
func New(cat *model.Catalog, ratings *model.Matrix, opts Options) (*Router, error) {
	if cat == nil || cat.Len() == 0 {
		return nil, errors.New("cluster: empty catalogue")
	}
	if ratings == nil {
		return nil, errors.New("cluster: nil rating matrix")
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", opts.Shards)
	}
	rt := &Router{cat: cat, opts: opts.withDefaults()}
	rt.rebalanceMu.init()

	ids := make([]int, rt.opts.Shards)
	for i := range ids {
		ids[i] = i
	}
	restarted := false
	if rt.opts.Durability != nil {
		if rt.opts.Durability.Space == nil {
			return nil, errors.New("cluster: Durability requires a Space")
		}
		var err error
		ids, restarted, err = rt.openTopology(ids)
		if err != nil {
			return nil, err
		}
	}
	ring := NewRing(rt.opts.Seed, rt.opts.VNodes, ids)

	// Partition the input matrix by ring ownership. On a durable
	// restart these partitions are seed data only: each shard engine's
	// recovered WAL checkpoint replaces its constructor matrix.
	parts := make(map[int]*model.Matrix, len(ids))
	for _, id := range ids {
		parts[id] = model.NewMatrix()
	}
	for _, u := range ratings.Users() {
		m := parts[ring.Owner(u)]
		for it, v := range ratings.UserRatings(u) {
			m.Set(u, it, v)
		}
	}

	topo := &topology{ring: ring, byID: make(map[int]*shard, len(ids))}
	for _, id := range ids {
		sh, err := rt.newShard(id, parts[id])
		if err != nil {
			for _, built := range topo.order {
				//lint:ignore dropped-error construction is failing with its own error; cleanup close errors have no caller to go to
				_ = built.eng.Close()
				//lint:ignore dropped-error construction is failing with its own error; cleanup close errors have no caller to go to
				_ = built.journal.close()
			}
			if rt.topoLog != nil {
				//lint:ignore dropped-error construction is failing with its own error; cleanup close errors have no caller to go to
				_ = rt.topoLog.Close()
			}
			return nil, err
		}
		topo.byID[id] = sh
		topo.order = append(topo.order, sh)
	}
	rt.topo.Store(topo)

	if restarted {
		// Finish whatever the dead process left half-done: interrupted
		// user migrations, then parked writes recovered from the journal
		// logs — applied through the normal write path (which reads
		// rt.topo, hence the Store above) and compacted.
		//lint:ignore snapshot-escape construction is single-goroutine; no reader holds the published topology yet, and the sweep mutates engines, not the topology struct
		rt.completeMigrations(topo)
		for _, sh := range topo.order {
			if sh.journal.len() > 0 {
				rt.replayJournal(sh)
			}
		}
		rt.compactTopo(topo)
	}
	return rt, nil
}

// newShard builds one shard: its engine (WAL-backed when durable) and
// its journal (ditto, with previously parked writes recovered).
func (rt *Router) newShard(id int, m *model.Matrix) (*shard, error) {
	eng, err := rt.newShardEngine(id, m)
	if err != nil {
		return nil, err
	}
	sh := &shard{id: id, eng: eng}
	if d := rt.opts.Durability; d != nil {
		fs, err := d.Space(fmt.Sprintf("shard-%d/journal", id))
		if err != nil {
			//lint:ignore dropped-error construction is failing with its own error; cleanup close errors have no caller to go to
			_ = eng.Close()
			return nil, fmt.Errorf("cluster: shard %d journal space: %w", id, err)
		}
		if err := sh.journal.openDurable(fs, d.walOptions()); err != nil {
			//lint:ignore dropped-error construction is failing with its own error; cleanup close errors have no caller to go to
			_ = eng.Close()
			return nil, fmt.Errorf("cluster: shard %d journal: %w", id, err)
		}
	}
	return sh, nil
}

// newShardEngine builds one shard-local engine over its user
// partition, wiring through the router-wide personality, tracer and
// per-shard resilience chain. The shard seed is derived from the
// cluster seed and the shard ID, so equal clusters behave identically.
func (rt *Router) newShardEngine(id int, m *model.Matrix) (*core.Engine, error) {
	shardSeed := rt.opts.Seed ^ splitmix64(uint64(int64(id))+0x5bd1)
	opts := []core.Option{
		core.WithSeed(shardSeed),
		core.WithPersonality(rt.opts.Personality),
	}
	if rt.opts.Tracer != nil {
		opts = append(opts, core.WithTracer(rt.opts.Tracer))
	}
	if rt.opts.Resilience != nil {
		opts = append(opts, core.WithResilience(*rt.opts.Resilience))
	}
	if rt.opts.Trainer != nil {
		opts = append(opts, core.WithTrainer(rt.opts.Trainer(shardSeed)))
	}
	if rt.opts.ANN != nil {
		opts = append(opts, core.WithANN(*rt.opts.ANN))
	}
	if d := rt.opts.Durability; d != nil {
		fs, err := d.Space(fmt.Sprintf("shard-%d/wal", id))
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d wal space: %w", id, err)
		}
		opts = append(opts, core.WithWAL(core.WALConfig{
			FS:              fs,
			Fsync:           d.Fsync,
			FsyncEvery:      d.FsyncEvery,
			CheckpointEvery: d.CheckpointEvery,
		}))
	}
	eng, err := core.New(rt.cat, m, opts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d: %w", id, err)
	}
	return eng, nil
}

// Catalog returns the shared catalogue (every shard serves the full
// item space; only users are partitioned).
func (rt *Router) Catalog() *model.Catalog { return rt.cat }

// Ratings returns a point-in-time merge of the reachable shards'
// rating matrices. Ratings held only by an unreachable shard are
// absent until it heals — the honest cluster answer.
func (rt *Router) Ratings() *model.Matrix {
	return rt.topo.Load().healthyMatrix()
}

// healthyMatrix merges the reachable shards' matrices, in shard-ID
// order so the merge is deterministic even where stale duplicates
// linger between a migration's import and evict.
func (t *topology) healthyMatrix() *model.Matrix {
	out := model.NewMatrix()
	for _, sh := range t.order {
		if sh.down.Load() {
			continue
		}
		m := sh.eng.Ratings()
		for _, u := range m.Users() {
			for it, v := range m.UserRatings(u) {
				out.Set(u, it, v)
			}
		}
	}
	return out
}

// Owner reports which shard currently owns user u — ring inspection
// for tests and /debug/cluster.
func (rt *Router) Owner(u model.UserID) int { return rt.topo.Load().ring.Owner(u) }

// ---- routed shard calls ----

// callShard runs fn against sh under the chaos gate, down-shard
// probing, the per-shard deadline and a shard-kind trace span. The
// returned error is fn's verbatim (domain errors must survive for
// errors.Is at the frontend), ErrShardDown for an unreachable shard,
// or the context's.
func (rt *Router) callShard(ctx context.Context, sh *shard, op, role string, fn func(context.Context) error) error {
	sh.requests.Add(1)
	ctx, sp := trace.StartSpan(ctx, "shard-"+strconv.Itoa(sh.id), trace.KindShard)
	sp.SetAttr("shard", strconv.Itoa(sh.id))
	sp.SetAttr("op", op)
	sp.SetAttr("role", role)
	err := rt.doShardCall(ctx, sh, op, fn)
	if err != nil && core.IsInfrastructureFailure(err) {
		sh.infraFailures.Add(1)
		sp.SetAttr("outcome", "infra_failure")
	}
	sp.End(err)
	return err
}

func (rt *Router) doShardCall(ctx context.Context, sh *shard, op string, fn func(context.Context) error) error {
	if sh.down.Load() {
		// Count-based probing: most arrivals fail fast to degraded
		// serving; every ProbeEvery-th tries the shard so recovery is
		// discovered without a clock.
		if sh.probeTick.Add(1)%int64(rt.opts.ProbeEvery) != 0 {
			return fmt.Errorf("shard %d: %w", sh.id, ErrShardDown)
		}
	}
	// The per-shard deadline covers the whole call, injected network
	// latency included — a slow shard must burn its own budget, not the
	// request's.
	cctx := ctx
	if rt.opts.ShardTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, rt.opts.ShardTimeout)
		defer cancel()
	}
	if rt.opts.Gate != nil {
		d := rt.opts.Gate.Decide(sh.id, op)
		if d.Down {
			rt.noteFailure(sh)
			return fmt.Errorf("shard %d: %w", sh.id, ErrShardDown)
		}
		if d.Latency > 0 {
			if err := waitCtx(cctx, d.Latency); err != nil {
				rt.noteFailure(sh)
				return err
			}
		}
		if d.Err != nil {
			rt.noteFailure(sh)
			return fmt.Errorf("shard %d: %w", sh.id, d.Err)
		}
	}
	err := fn(cctx)
	if err == nil || !core.IsInfrastructureFailure(err) {
		rt.noteSuccess(sh)
		return err
	}
	rt.noteFailure(sh)
	return err
}

// noteFailure advances the shard's consecutive-failure run and marks
// it down at the threshold.
func (rt *Router) noteFailure(sh *shard) {
	if sh.consecFails.Add(1) >= int64(rt.opts.FailureThreshold) {
		sh.down.Store(true)
	}
}

// noteSuccess resets the failure run; a success that heals a down
// shard (a probe that got through) replays its journal.
func (rt *Router) noteSuccess(sh *shard) {
	sh.consecFails.Store(0)
	if sh.down.CompareAndSwap(true, false) {
		rt.replayJournal(sh)
	}
}

// waitCtx sleeps d or until ctx dies (injected slow-shard latency).
func waitCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---- read path ----

// RecommendContext routes to the owning shard; if the shard is down or
// fails with an infrastructure fault, the request is served degraded
// from the surviving shards' popularity evidence instead of erroring.
func (rt *Router) RecommendContext(ctx context.Context, u model.UserID, n int) (*present.Presentation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: n must be positive, got %d", n)
	}
	topo := rt.topo.Load()
	sh := topo.owner(u)
	var p *present.Presentation
	err := rt.callShard(ctx, sh, "recommend", "owner", func(c context.Context) error {
		var e error
		p, e = sh.eng.RecommendContext(c, u, n)
		return e
	})
	if err == nil {
		return p, nil
	}
	if !core.IsInfrastructureFailure(err) {
		return nil, err
	}
	return rt.degradedRecommend(ctx, topo, sh, u, n)
}

// ExplainContext routes to the owning shard, degrading to popularity
// evidence from the surviving shards on infrastructure failure.
// Unknown items keep their domain-error semantics on both paths.
func (rt *Router) ExplainContext(ctx context.Context, u model.UserID, item model.ItemID) (*explain.Explanation, error) {
	topo := rt.topo.Load()
	sh := topo.owner(u)
	var exp *explain.Explanation
	err := rt.callShard(ctx, sh, "explain", "owner", func(c context.Context) error {
		var e error
		exp, e = sh.eng.ExplainContext(c, u, item)
		return e
	})
	if err == nil {
		return exp, nil
	}
	if !core.IsInfrastructureFailure(err) {
		return nil, err
	}
	return rt.degradedExplain(ctx, topo, sh, item, "explain")
}

// WhyLowContext routes like ExplainContext; the degraded answer is the
// same popularity evidence (scrutiny keeps working, just shallower).
func (rt *Router) WhyLowContext(ctx context.Context, u model.UserID, item model.ItemID) (*explain.Explanation, error) {
	topo := rt.topo.Load()
	sh := topo.owner(u)
	var exp *explain.Explanation
	err := rt.callShard(ctx, sh, "whylow", "owner", func(c context.Context) error {
		var e error
		exp, e = sh.eng.WhyLowContext(c, u, item)
		return e
	})
	if err == nil {
		return exp, nil
	}
	if !core.IsInfrastructureFailure(err) {
		return nil, err
	}
	return rt.degradedExplain(ctx, topo, sh, item, "whylow")
}

// BrowseAllContext routes to the owning shard, degrading to a
// popularity-ordered view of the catalogue on infrastructure failure.
func (rt *Router) BrowseAllContext(ctx context.Context, u model.UserID) (*present.RatingsView, error) {
	topo := rt.topo.Load()
	sh := topo.owner(u)
	var v *present.RatingsView
	err := rt.callShard(ctx, sh, "browse", "owner", func(c context.Context) error {
		var e error
		v, e = sh.eng.BrowseAllContext(c, u)
		return e
	})
	if err == nil {
		return v, nil
	}
	if !core.IsInfrastructureFailure(err) {
		return nil, err
	}
	return rt.degradedBrowse(ctx, topo, sh, u)
}

// ---- write path ----

// write routes one mutation to the owning shard; when the shard is
// unreachable the entry is journaled for replay at heal, so writes are
// accepted (eventually consistent) rather than failed during shard
// loss. Domain errors from a reachable shard return verbatim.
func (rt *Router) write(u model.UserID, e journalEntry) error {
	topo := rt.topo.Load()
	sh := topo.owner(u)
	sh.requests.Add(1)
	if !sh.down.Load() {
		reachable := true
		if rt.opts.Gate != nil {
			d := rt.opts.Gate.Decide(sh.id, e.opName())
			if d.Down || d.Err != nil {
				rt.noteFailure(sh)
				sh.infraFailures.Add(1)
				reachable = false
			}
		}
		if reachable {
			err := applyEntry(sh.eng, e)
			if err == nil || !core.IsInfrastructureFailure(err) {
				sh.consecFails.Store(0)
				return err
			}
			rt.noteFailure(sh)
			sh.infraFailures.Add(1)
		}
	}
	if err := sh.journal.push(e); err != nil {
		// A durable journal that cannot persist the entry must reject
		// it — acknowledging a write that only exists in the memory of a
		// process whose disk just failed would be lying.
		sh.journalErrors.Add(1)
		return fmt.Errorf("cluster: shard %d: parking write: %w", sh.id, err)
	}
	sh.journaled.Add(1)
	return nil
}

// replayJournal drains a healed shard's journal in arrival order,
// re-routing every entry through the current ring (users may have
// moved while the shard was down). Entries whose target is down again
// are re-journaled by write; entries rejected on domain grounds are
// counted dropped — they were validated at accept time, so drops mean
// the world changed underneath them (e.g. an influence model swap).
func (rt *Router) replayJournal(sh *shard) {
	for _, e := range sh.journal.drain() {
		if err := rt.applyWrite(e); err != nil {
			sh.replayDropped.Add(1)
			continue
		}
		sh.replayed.Add(1)
	}
	// Every drained entry has landed (in an engine WAL, or re-parked in
	// a journal whose log re-appended it), so the history up to here can
	// compact away.
	sh.journal.compact()
}

// applyWrite routes one journal entry through the router's write path.
func (rt *Router) applyWrite(e journalEntry) error {
	return rt.write(e.user, e)
}

// Rate records (or corrects) a rating on the owning shard, journaling
// it when the shard is unreachable.
func (rt *Router) Rate(u model.UserID, item model.ItemID, value float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("rating %v: %w", value, core.ErrNonFiniteValue)
	}
	return rt.write(u, journalEntry{op: opRate, user: u, item: item, value: value})
}

// RemoveRating withdraws a past rating on the owning shard.
func (rt *Router) RemoveRating(u model.UserID, item model.ItemID) {
	//lint:ignore dropped-error the Service surface keeps RemoveRating void; a durable-journal append failure is counted in the shard's JournalErrors
	_ = rt.write(u, journalEntry{op: opRemove, user: u, item: item})
}

// Opinion applies opinion feedback on the owning shard. The item is
// validated against the catalogue before journaling so an unreachable
// shard still rejects nonsense immediately.
func (rt *Router) Opinion(u model.UserID, op interact.Opinion) error {
	if op.Kind != interact.SurpriseMe {
		if _, err := rt.cat.Item(op.Item); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	return rt.write(u, journalEntry{op: opOpinion, user: u, opinion: op})
}

// SetInfluenceWeight adjusts a rating's content-model influence on the
// owning shard.
func (rt *Router) SetInfluenceWeight(u model.UserID, item model.ItemID, weight float64) error {
	if math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("influence weight %v: %w", weight, core.ErrNonFiniteValue)
	}
	return rt.write(u, journalEntry{op: opInfluence, user: u, item: item, value: weight})
}

// Surprise reports the user's exploration rate from the owning shard;
// an unreachable shard answers the neutral zero.
func (rt *Router) Surprise(u model.UserID) float64 {
	sh := rt.topo.Load().owner(u)
	if sh.down.Load() {
		return 0
	}
	return sh.eng.Surprise(u)
}

// Metrics merges the shard engines' usage counters — the cluster's
// aggregate view. Per-shard routing counters live in ClusterState.
func (rt *Router) Metrics() core.Stats {
	topo := rt.topo.Load()
	out := core.Stats{Stages: make(map[string]core.StageStats)}
	for _, sh := range topo.order {
		m := sh.eng.Metrics()
		out.Recommendations += m.Recommendations
		out.ExplanationsServed += m.ExplanationsServed
		out.WhyLowQueries += m.WhyLowQueries
		out.RepairActions += m.RepairActions
		out.DegradedServed += m.DegradedServed
		for k, v := range m.Stages {
			agg := out.Stages[k]
			agg.Invocations += v.Invocations
			agg.Errors += v.Errors
			agg.Panics += v.Panics
			agg.Latency += v.Latency
			out.Stages[k] = agg
		}
		for k, v := range m.Resilience {
			if out.Resilience == nil {
				out.Resilience = make(map[string]int)
			}
			out.Resilience[k] += v
		}
	}
	return out
}
