package cluster

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/model"
)

func testCommunity(t *testing.T) *dataset.Community {
	t.Helper()
	return dataset.Movies(dataset.Config{Seed: 401, Users: 60, Items: 80, RatingsPerUser: 20})
}

func TestRouterPartitionsUsersByOwner(t *testing.T) {
	com := testCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	topo := rt.topo.Load()
	total := 0
	for _, sh := range topo.order {
		m := sh.eng.Ratings()
		total += m.Len()
		for _, u := range m.Users() {
			if own := rt.Owner(u); own != sh.id {
				t.Fatalf("user %d lives on shard %d but is owned by %d", u, sh.id, own)
			}
		}
	}
	if total != com.Ratings.Len() {
		t.Fatalf("shards hold %d ratings, community has %d", total, com.Ratings.Len())
	}
}

func TestRouterMergedRatingsMatchCommunity(t *testing.T) {
	com := testCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	merged := rt.Ratings()
	if merged.Len() != com.Ratings.Len() {
		t.Fatalf("merged %d ratings, want %d", merged.Len(), com.Ratings.Len())
	}
	for _, u := range com.Ratings.Users() {
		for it, want := range com.Ratings.UserRatings(u) {
			if got, ok := merged.Get(u, it); !ok || got != want {
				t.Fatalf("rating (%d,%d) = %v,%v, want %v", u, it, got, ok, want)
			}
		}
	}
}

// TestWriteJournalAndReplay: writes to a down shard are accepted and
// parked, then replayed when a successful probe heals the shard.
func TestWriteJournalAndReplay(t *testing.T) {
	com := testCommunity(t)
	sim := fault.NewClusterSim(3)
	rt, err := New(com.Catalog, com.Ratings, Options{
		Shards: 4, Seed: 9, Gate: sim, FailureThreshold: 1, ProbeEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := com.Ratings.Users()[0]
	victim := rt.Owner(u)
	item := com.Catalog.Items()[0].ID

	sim.Kill(victim)
	// One read drives the router to observe the loss.
	if _, err := rt.RecommendContext(context.Background(), u, 3); err != nil {
		t.Fatalf("recommend during shard loss: %v", err)
	}
	if err := rt.Rate(u, item, 5); err != nil {
		t.Fatalf("rate during shard loss: %v", err)
	}
	st := shardState(t, rt, victim)
	if st.Healthy {
		t.Fatal("victim still marked healthy after failures")
	}
	if st.Journaled == 0 || st.JournalDepth == 0 {
		t.Fatalf("write not journaled: %+v", st)
	}
	if got, ok := rt.Ratings().Get(u, item); ok {
		t.Fatalf("journaled rating visible early: %v", got)
	}

	sim.Restore(victim)
	// Drive reads until a probe heals the shard and replays the journal.
	for i := 0; i < 64; i++ {
		if _, err := rt.RecommendContext(context.Background(), u, 3); err != nil {
			t.Fatalf("recommend while healing: %v", err)
		}
		if shardState(t, rt, victim).Healthy {
			break
		}
	}
	st = shardState(t, rt, victim)
	if !st.Healthy {
		t.Fatalf("victim never healed: %+v", st)
	}
	if st.Replayed == 0 || st.JournalDepth != 0 {
		t.Fatalf("journal not replayed: %+v", st)
	}
	if got, ok := rt.Ratings().Get(u, item); !ok || got != 5 {
		t.Fatalf("replayed rating = %v,%v, want 5,true", got, ok)
	}
}

// TestRebalanceMovesBoundedUsersAndKeepsRatings: add a shard, verify
// only a bounded user fraction moved and no rating was lost; remove it
// again and verify the cluster converges back with everything intact.
func TestRebalanceMovesBoundedUsersAndKeepsRatings(t *testing.T) {
	com := testCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	users := com.Ratings.Users()
	before := make(map[model.UserID]int, len(users))
	for _, u := range users {
		before[u] = rt.Owner(u)
	}

	id, err := rt.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, u := range users {
		now := rt.Owner(u)
		if now != before[u] {
			if now != id {
				t.Fatalf("user %d moved %d -> %d, not to the new shard %d", u, before[u], now, id)
			}
			moved++
		}
	}
	// 1/5 expected; a migration bug that reshuffles everyone trips this.
	if moved > len(users)*40/100 {
		t.Fatalf("adding shard %d moved %d/%d users", id, moved, len(users))
	}
	if got := rt.Ratings().Len(); got != com.Ratings.Len() {
		t.Fatalf("after add: %d ratings, want %d", got, com.Ratings.Len())
	}
	for _, sh := range rt.topo.Load().order {
		for _, u := range sh.eng.Ratings().Users() {
			if rt.Owner(u) != sh.id {
				t.Fatalf("after add: user %d on shard %d, owned by %d", u, sh.id, rt.Owner(u))
			}
		}
	}

	if err := rt.RemoveShard(id); err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if rt.Owner(u) != before[u] {
			t.Fatalf("after remove: user %d owned by %d, want original %d", u, rt.Owner(u), before[u])
		}
	}
	if got := rt.Ratings().Len(); got != com.Ratings.Len() {
		t.Fatalf("after remove: %d ratings, want %d", got, com.Ratings.Len())
	}
}

func TestRemoveLastShardRefused(t *testing.T) {
	com := testCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{Shards: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RemoveShard(0); err == nil {
		t.Fatal("removing the last shard succeeded")
	}
	if err := rt.RemoveShard(17); err == nil {
		t.Fatal("removing an unknown shard succeeded")
	}
}

func TestClusterStateShape(t *testing.T) {
	com := testCommunity(t)
	rt, err := New(com.Catalog, com.Ratings, Options{Shards: 3, Seed: 5, VNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.ClusterState()
	if st.Seed != 5 || st.VNodes != 32 || len(st.Shards) != 3 {
		t.Fatalf("state = %+v", st)
	}
	owned, ratings := 0, 0
	for i, sh := range st.Shards {
		if sh.ID != i {
			t.Fatalf("shards not in ID order: %+v", st.Shards)
		}
		if !sh.Healthy {
			t.Fatalf("fresh shard %d unhealthy", sh.ID)
		}
		owned += sh.OwnedUsers
		ratings += sh.Ratings
	}
	if owned != len(com.Ratings.Users()) {
		t.Fatalf("owned users sum %d, want %d", owned, len(com.Ratings.Users()))
	}
	if ratings != com.Ratings.Len() {
		t.Fatalf("ratings sum %d, want %d", ratings, com.Ratings.Len())
	}
}

func shardState(t *testing.T, rt *Router, id int) ShardState {
	t.Helper()
	for _, sh := range rt.ClusterState().Shards {
		if sh.ID == id {
			return sh
		}
	}
	t.Fatalf("no shard %d in cluster state", id)
	return ShardState{}
}
