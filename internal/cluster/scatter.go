// Scatter-gather: cross-shard reads fan out to every shard with
// bounded concurrency and per-shard deadlines, then merge whatever
// came back. A missing shard shrinks the answer and marks it degraded;
// it never fails the request. Because each shard call runs through
// callShard, the whole scatter renders as one trace tree: the request
// span with one shard-kind child per fanout leg.

package cluster

import (
	"context"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/trace"
)

// shardResult is one leg's outcome in a scatter.
type shardResult struct {
	shard *shard
	val   *present.Presentation
	err   error
}

// scatterPresentations fans fn across the given shards with at most
// MaxFanout legs in flight, returning one result per shard in shard
// order. Each leg runs under callShard: gated, probed, deadline-bound
// and traced.
func (rt *Router) scatterPresentations(ctx context.Context, op string, shards []*shard, fn func(context.Context, *shard) (*present.Presentation, error)) []shardResult {
	results := make([]shardResult, len(shards))
	sem := make(chan struct{}, rt.opts.MaxFanout)
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var p *present.Presentation
			err := rt.callShard(ctx, sh, op, "fanout", func(c context.Context) error {
				var e error
				p, e = fn(c, sh)
				return e
			})
			results[i] = shardResult{shard: sh, val: p, err: err}
		}(i, sh)
	}
	wg.Wait()
	return results
}

// SimilarToContext is the cluster's scatter-gather read: similarity
// evidence lives on every shard (each holds a different slice of the
// user base), so the router fans out to all of them and merges the
// partial answers. Lost shards shrink the evidence and mark the
// result degraded; only a dead cluster falls back to catalogue-only
// similarity.
func (rt *Router) SimilarToContext(ctx context.Context, u model.UserID, seed model.ItemID, n int) (*present.Presentation, error) {
	topo := rt.topo.Load()
	seedItem, err := rt.cat.Item(seed)
	if err != nil {
		return nil, err
	}
	results := rt.scatterPresentations(ctx, "similar", topo.order, func(c context.Context, sh *shard) (*present.Presentation, error) {
		return sh.eng.SimilarToContext(c, u, seed, n)
	})

	// Merge: dedupe by item keeping the best-scored entry, then rank.
	best := make(map[model.ItemID]present.Entry)
	var order []model.ItemID
	partial := false
	answered := 0
	for _, r := range results {
		if r.err != nil {
			if core.IsInfrastructureFailure(r.err) {
				partial = true
			}
			continue
		}
		answered++
		for _, e := range r.val.Entries {
			if e.Item == nil {
				continue
			}
			prev, seen := best[e.Item.ID]
			if !seen {
				best[e.Item.ID] = e
				order = append(order, e.Item.ID)
				continue
			}
			if e.Prediction.Score > prev.Prediction.Score {
				best[e.Item.ID] = e
			}
		}
	}

	if answered == 0 {
		// Every shard is gone: serve catalogue-only similarity rather
		// than nothing. ctx errors still win — a dead request context
		// means the caller is gone.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := present.SimilarToTop(rt.cat, seedItem, n, nil)
		p.Degraded = true
		rt.noteDegraded(ctx, topo.owner(u), "similar")
		return p, nil
	}

	entries := make([]present.Entry, 0, len(order))
	for _, id := range order {
		entries = append(entries, best[id])
	}
	sort.SliceStable(entries, func(a, b int) bool {
		if entries[a].Prediction.Score != entries[b].Prediction.Score {
			return entries[a].Prediction.Score > entries[b].Prediction.Score
		}
		return entries[a].Item.ID < entries[b].Item.ID
	})
	if n > 0 && len(entries) > n {
		entries = entries[:n]
	}
	if partial {
		trace.SetDegraded(ctx)
	}
	return &present.Presentation{
		Title:    "Because you are looking at: " + seedItem.Title,
		Entries:  entries,
		Degraded: partial,
	}, nil
}
