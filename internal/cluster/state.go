// ClusterState: the observable shape of the cluster for /debug/cluster
// and the recsys_shard_* metrics — ring parameters, per-shard health,
// ownership counts and routing counters.

package cluster

import (
	"repro/internal/model"
	"repro/internal/wal"
)

// State is a point-in-time snapshot of the cluster.
type State struct {
	Seed    uint64       `json:"seed"`
	VNodes  int          `json:"vnodes"`
	Durable bool         `json:"durable,omitempty"`
	Shards  []ShardState `json:"shards"`
}

// ShardState is one shard's slice of the snapshot.
type ShardState struct {
	ID      int  `json:"id"`
	Healthy bool `json:"healthy"`

	// OwnedUsers counts users the ring currently assigns to this shard,
	// among users with any ratings in the cluster.
	OwnedUsers int `json:"owned_users"`
	// Ratings is the shard engine's matrix size.
	Ratings int `json:"ratings"`

	// Routing counters since process start.
	Requests      int64 `json:"requests"`
	InfraFailures int64 `json:"infra_failures"`
	Degraded      int64 `json:"degraded"`
	Journaled     int64 `json:"journaled"`
	JournalErrors int64 `json:"journal_errors,omitempty"`
	Replayed      int64 `json:"replayed"`
	ReplayDropped int64 `json:"replay_dropped,omitempty"`
	// JournalDepth is the currently parked write count.
	JournalDepth int `json:"journal_depth"`

	// Durable-log states, present only on durable clusters: WAL is the
	// shard engine's mutation log, JournalWAL the parked-write log.
	WAL        *wal.State `json:"wal,omitempty"`
	JournalWAL *wal.State `json:"journal_wal,omitempty"`
}

// ClusterState snapshots ring parameters, shard health and routing
// counters. Shards report in ID order.
func (rt *Router) ClusterState() State {
	topo := rt.topo.Load()
	st := State{Seed: rt.opts.Seed, VNodes: rt.opts.VNodes}

	// Ownership: count each distinct rated user once, under the shard
	// the ring assigns it to today (stale duplicates mid-migration must
	// not double-count).
	owned := make(map[int]int, len(topo.order))
	counted := make(map[model.UserID]bool)
	for _, sh := range topo.order {
		for _, u := range sh.eng.Ratings().Users() {
			if counted[u] {
				continue
			}
			counted[u] = true
			owned[topo.ring.Owner(u)]++
		}
	}

	st.Durable = rt.opts.Durability != nil
	for _, sh := range topo.order {
		ss := ShardState{
			ID:            sh.id,
			Healthy:       !sh.down.Load(),
			OwnedUsers:    owned[sh.id],
			Ratings:       sh.eng.Ratings().Len(),
			Requests:      sh.requests.Load(),
			InfraFailures: sh.infraFailures.Load(),
			Degraded:      sh.degraded.Load(),
			Journaled:     sh.journaled.Load(),
			JournalErrors: sh.journalErrors.Load(),
			Replayed:      sh.replayed.Load(),
			ReplayDropped: sh.replayDropped.Load(),
			JournalDepth:  sh.journal.len(),
		}
		if ws, ok := sh.eng.WALState(); ok {
			ss.WAL = &ws
		}
		if js, ok := sh.journal.walState(); ok {
			ss.JournalWAL = &js
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}
