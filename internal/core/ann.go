// ANN-accelerated candidate generation: an Engine configured with
// WithANN consults deterministic approximate-nearest-neighbour indexes
// (internal/ann) instead of brute-forcing the catalogue on its
// similarity hot paths, then exact-rescores the short candidate list
// with the same scoring functions the brute-force paths use.
//
// Two indexes exist. The *content* index embeds every catalogue item
// over the keyword+creator vocabulary so that an inner product equals
// present.ContentScore exactly; the catalogue is immutable, so this
// index is built once in New and shared by every snapshot. The *model*
// index holds the serving MF model's item factors (the standard MIPS
// reduction: [factors..., bias] against [userFactors..., 1]); it is
// rebuilt off-lock by the model lifecycle whenever a trained model
// publishes and rides the same atomic snapshot swap, so reads never
// block on an index build. Write-path fold-ins re-solve only user-side
// factors (the item side is shared frozen between rebuilds — see
// mf.RebindMatrix), which is precisely why the carried index stays
// exact between publishes.

package core

import (
	"fmt"

	"repro/internal/ann"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
	"sync/atomic"
)

// ANNConfig configures the approximate candidate-generation indexes
// installed with WithANN.
type ANNConfig struct {
	// Kind selects the index implementation: ann.KindHNSW (the
	// layered-graph default) or ann.KindFlat (exact scan — useful as a
	// deployable baseline and in conformance tests).
	Kind string
	// M, EfConstruction and EfSearch are the HNSW operating point;
	// zero values select the ann package defaults (16/200/64). Ignored
	// by the flat index.
	M              int
	EfConstruction int
	EfSearch       int
	// Quantize stores vectors as int8 codes with per-vector scales,
	// scored by the batched integer kernel.
	Quantize bool
	// Rescore is the candidate-widening factor: the index is asked for
	// Rescore*n candidates and the top n survive exact rescoring.
	// Default 4.
	Rescore int
	// Seed drives deterministic graph construction; 0 derives from the
	// engine seed.
	Seed uint64
}

func (c ANNConfig) withDefaults(baseSeed uint64) ANNConfig {
	if c.Kind == "" {
		c.Kind = ann.KindHNSW
	}
	if c.Rescore <= 0 {
		c.Rescore = 4
	}
	if c.Seed == 0 {
		c.Seed = baseSeed ^ 0xA11CE5ED
	}
	return c
}

func (c ANNConfig) params() ann.Params {
	return ann.Params{
		M:              c.M,
		EfConstruction: c.EfConstruction,
		EfSearch:       c.EfSearch,
		Seed:           c.Seed,
		Quantize:       c.Quantize,
	}
}

// WithANN routes the engine's candidate-generation hot paths through
// approximate-nearest-neighbour indexes with exact rescoring. See
// ANNConfig for the knobs; the zero config selects a quantize-off
// HNSW index with default parameters.
func WithANN(cfg ANNConfig) Option {
	return func(e *Engine) { e.annCfg = &cfg }
}

// annCounters tracks engine-level ANN serving outcomes (the per-index
// traversal counters live on the indexes themselves).
type annCounters struct {
	searches  atomic.Int64 // reads answered from an index
	rescored  atomic.Int64 // candidates exact-rescored
	fallbacks atomic.Int64 // reads that fell back to the brute-force path
}

// contentANN is the immutable catalogue index: one presence vector per
// item over the sorted keyword+creator vocabulary, plus the per-item
// query vectors (keyword multiplicities, so query·item equals
// present.ContentScore exactly even when an item lists a keyword
// twice).
type contentANN struct {
	idx     ann.Index
	queries map[model.ItemID][]float32
	dim     int
}

// buildContentANN embeds the catalogue and builds the configured index
// over it. A catalogue with no keywords and no creators has nothing to
// embed; callers treat a nil return as "serve brute force".
func buildContentANN(cat *model.Catalog, cfg ANNConfig) (*contentANN, error) {
	kws := cat.Keywords() // sorted, distinct
	kwSlot := make(map[string]int, len(kws))
	for i, k := range kws {
		kwSlot[k] = i
	}
	crSlot := make(map[string]int)
	for _, it := range cat.Items() {
		if it.Creator == "" {
			continue
		}
		if _, ok := crSlot[it.Creator]; !ok {
			// Items() iterates insertion order, so slot assignment is
			// deterministic without sorting the creator set.
			crSlot[it.Creator] = len(kws) + len(crSlot)
		}
	}
	dim := len(kws) + len(crSlot)
	if dim == 0 {
		return nil, nil
	}
	items := cat.Items()
	vecs := make([]ann.Vector, 0, len(items))
	queries := make(map[model.ItemID][]float32, len(items))
	for _, it := range items {
		e := make([]float32, dim)
		q := make([]float32, dim)
		for _, k := range it.Keywords {
			slot, ok := kwSlot[k]
			if !ok {
				continue
			}
			e[slot] = 1 // presence: candidate side of ContentScore
			q[slot]++   // multiplicity: seed side of ContentScore
		}
		if it.Creator != "" {
			e[crSlot[it.Creator]] = 1
			q[crSlot[it.Creator]] = 1
		}
		vecs = append(vecs, ann.Vector{ID: int64(it.ID), Elems: e})
		queries[it.ID] = q
	}
	idx, err := ann.Build(cfg.Kind, vecs, cfg.params())
	if err != nil {
		return nil, fmt.Errorf("core: building content ANN index: %w", err)
	}
	return &contentANN{idx: idx, queries: queries, dim: dim}, nil
}

// buildModelANN indexes the serving model's item vectors, when the
// model exposes them (ann.ItemVectorSource — *mf.Model does). Runs
// off-lock on the lifecycle's training goroutine; a model that exposes
// nothing simply leaves the rank path on brute force.
func (e *Engine) buildModelANN(rec recsys.Recommender) ann.Index {
	if e.annCfg == nil {
		return nil
	}
	src, ok := rec.(ann.ItemVectorSource)
	if !ok {
		return nil
	}
	vecs := src.ANNItemVectors()
	if len(vecs) == 0 {
		return nil
	}
	idx, err := ann.Build(e.annCfg.Kind, vecs, e.annCfg.params())
	if err != nil {
		// The config was validated in New; a build failure here means
		// the model emitted malformed vectors. Serve brute force.
		return nil
	}
	return idx
}

// annSimilar answers the SimilarTo presentation from the content
// index: search for Rescore*n candidates (seed and already-rated items
// filtered during traversal), exact-rescore with present.ContentScore,
// and render through the same present.SimilarPresentation the
// brute-force path uses. ok is false when the engine must fall back.
func (e *Engine) annSimilar(s *snapshot, u model.UserID, seed *model.Item, n int) (*present.Presentation, bool) {
	ca := e.annContent
	if ca == nil || n <= 0 {
		return nil, false
	}
	q := ca.queries[seed.ID]
	if q == nil {
		return nil, false
	}
	exclude := recsys.ExcludeRated(s.ratings, u)
	k := n * e.annCfg.Rescore
	if k > ca.idx.Len() {
		k = ca.idx.Len()
	}
	nbs := ca.idx.Search(q, k, func(id int64) bool {
		iid := model.ItemID(id)
		if iid == seed.ID {
			return true
		}
		return exclude != nil && exclude(iid)
	})
	cands := make([]present.ScoredItem, 0, len(nbs))
	for _, nb := range nbs {
		it, err := e.catalog.Item(model.ItemID(nb.ID))
		if err != nil {
			continue
		}
		if sc := present.ContentScore(seed, it); sc > 0 {
			cands = append(cands, present.ScoredItem{Item: it, Score: sc})
		}
	}
	present.SortScoredItems(cands)
	if len(cands) > n {
		cands = cands[:n]
	}
	e.annStats.searches.Add(1)
	e.annStats.rescored.Add(int64(len(nbs)))
	return present.SimilarPresentation(seed, cands), true
}

// annRank produces the wide candidate ranking for Recommend from the
// snapshot's model index: search for Rescore*pool item candidates by
// approximate model score, exact-rescore through the serving model's
// Predict, and keep the top pool. ok is false when the engine must
// fall back — no index, a model that exposes no user query, a user the
// model has never folded in (cold start), or an index whose dimension
// no longer matches (a stale carry after a model-family change).
func (e *Engine) annRank(s *snapshot, u model.UserID, pool int, exclude func(model.ItemID) bool) ([]recsys.Prediction, bool) {
	idx := s.annModel
	if idx == nil || idx.Len() == 0 {
		// Count the fallback only on ANN-enabled engines: a plain
		// engine taking the brute-force path is not an ANN miss.
		if e.annCfg != nil {
			e.annStats.fallbacks.Add(1)
		}
		return nil, false
	}
	src, ok := s.rec.(ann.UserQuerySource)
	if !ok {
		e.annStats.fallbacks.Add(1)
		return nil, false
	}
	q, ok := src.ANNUserQuery(int64(u))
	if !ok {
		e.annStats.fallbacks.Add(1)
		return nil, false
	}
	if len(q) != idx.Dim() {
		e.annStats.fallbacks.Add(1)
		return nil, false
	}
	k := pool * e.annCfg.Rescore
	if k > idx.Len() {
		k = idx.Len()
	}
	nbs := idx.Search(q, k, func(id int64) bool {
		return exclude != nil && exclude(model.ItemID(id))
	})
	preds := make([]recsys.Prediction, 0, len(nbs))
	for _, nb := range nbs {
		p, err := s.rec.Predict(u, model.ItemID(nb.ID))
		if err != nil {
			continue
		}
		preds = append(preds, p)
	}
	if len(preds) == 0 {
		e.annStats.fallbacks.Add(1)
		return nil, false
	}
	recsys.SortPredictions(preds)
	preds = recsys.TopN(preds, pool)
	e.annStats.searches.Add(1)
	e.annStats.rescored.Add(int64(len(nbs)))
	return preds, true
}

// ANNState is the operator view of the ANN subsystem, served by
// GET /debug/ann. Enabled is false (and everything else zero) on
// engines without WithANN.
type ANNState struct {
	Enabled        bool   `json:"enabled"`
	Kind           string `json:"kind,omitempty"`
	Quantize       bool   `json:"quantize,omitempty"`
	M              int    `json:"m,omitempty"`
	EfConstruction int    `json:"ef_construction,omitempty"`
	EfSearch       int    `json:"ef_search,omitempty"`
	Rescore        int    `json:"rescore,omitempty"`

	// Content index: catalogue items over the keyword+creator space.
	ContentVectors int `json:"content_vectors,omitempty"`
	ContentDim     int `json:"content_dim,omitempty"`
	// Model index: the serving model's item vectors; ModelVersion is
	// the artifact generation the snapshot serves (the index was built
	// at that generation or an earlier one whose item side it shares).
	ModelVectors int    `json:"model_vectors,omitempty"`
	ModelDim     int    `json:"model_dim,omitempty"`
	ModelVersion uint64 `json:"model_version,omitempty"`

	// Serving outcomes.
	Searches  int64 `json:"searches"`
	Rescored  int64 `json:"rescored"`
	Fallbacks int64 `json:"fallbacks"`
	// Per-index traversal counters.
	ContentStats ann.Stats `json:"content_stats"`
	ModelStats   ann.Stats `json:"model_stats"`
}

// ANNState reports the ANN subsystem's current state. Lock-free: one
// snapshot load plus atomic reads.
func (e *Engine) ANNState() ANNState {
	if e.annCfg == nil {
		return ANNState{}
	}
	st := ANNState{
		Enabled:        true,
		Kind:           e.annCfg.Kind,
		Quantize:       e.annCfg.Quantize,
		M:              e.annCfg.M,
		EfConstruction: e.annCfg.EfConstruction,
		EfSearch:       e.annCfg.EfSearch,
		Rescore:        e.annCfg.Rescore,
		Searches:       e.annStats.searches.Load(),
		Rescored:       e.annStats.rescored.Load(),
		Fallbacks:      e.annStats.fallbacks.Load(),
	}
	if e.annContent != nil {
		st.ContentVectors = e.annContent.idx.Len()
		st.ContentDim = e.annContent.dim
		st.ContentStats = e.annContent.idx.Stats()
	}
	s := e.snap.Load()
	if s.annModel != nil {
		st.ModelVectors = s.annModel.Len()
		st.ModelDim = s.annModel.Dim()
		st.ModelVersion = s.modelVersion
		st.ModelStats = s.annModel.Stats()
	}
	return st
}
