package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/model"
	"repro/internal/recsys/mf"
)

func annConfigFlat() ANNConfig {
	return ANNConfig{Kind: ann.KindFlat}
}

func TestWithANNValidation(t *testing.T) {
	_, err := New(nilSafeCatalog(t), model.NewMatrix(), WithANN(ANNConfig{Kind: "ivf"}))
	if err == nil {
		t.Fatal("unknown ANN kind accepted")
	}
}

// nilSafeCatalog builds a minimal valid catalogue for validation tests.
func nilSafeCatalog(t *testing.T) *model.Catalog {
	t.Helper()
	cat := model.NewCatalog("books")
	if err := cat.Add(&model.Item{ID: 1, Title: "x", Keywords: []string{"k"}}); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestANNSimilarMatchesBruteForceExactly: with a flat, unquantized
// index the ANN SimilarTo path must be byte-identical to the
// brute-force catalogue scan — same candidates, same scores, same
// rendered explanation strings — because the index embeds
// present.ContentScore exactly and rescoring calls back into it.
func TestANNSimilarMatchesBruteForceExactly(t *testing.T) {
	c, plain := engine(t, WithSeed(7))
	_, approx := engine(t, WithSeed(7), WithANN(annConfigFlat()))

	if st := approx.ANNState(); !st.Enabled || st.ContentVectors == 0 {
		t.Fatalf("ANN state = %+v", st)
	}
	items := c.Catalog.Items()
	checked := 0
	for i, it := range items {
		if i >= 25 {
			break
		}
		u := model.UserID(1 + i%5)
		want, errW := plain.SimilarTo(u, it.ID, 5)
		got, errG := approx.SimilarTo(u, it.ID, 5)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("seed %d: err mismatch: %v vs %v", it.ID, errW, errG)
		}
		if errW != nil {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: ANN presentation diverges:\nbrute: %+v\nann:   %+v", it.ID, want, got)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no seeds compared")
	}
	if st := approx.ANNState(); st.Searches == 0 {
		t.Fatal("ANN path never consulted the index")
	}
}

// TestANNHNSWSimilarStaysFaithful: the HNSW path may approximate the
// candidate set but every surviving entry is exact-rescored, so each
// reported score must equal present.ContentScore and the list must be
// sorted score-desc/ID-asc like the brute-force path.
func TestANNHNSWSimilarStaysFaithful(t *testing.T) {
	for _, quantize := range []bool{false, true} {
		c, e := engine(t, WithSeed(7), WithANN(ANNConfig{Kind: ann.KindHNSW, Quantize: quantize}))
		items := c.Catalog.Items()
		p, err := e.SimilarTo(3, items[0].ID, 5)
		if err != nil {
			t.Fatalf("quantize=%v: %v", quantize, err)
		}
		if len(p.Entries) == 0 {
			t.Fatalf("quantize=%v: empty presentation", quantize)
		}
		for _, en := range p.Entries {
			if !en.Explanation.Faithful {
				t.Fatalf("quantize=%v: unfaithful ANN explanation for %d", quantize, en.Item.ID)
			}
		}
	}
}

// TestANNRankPathServesRecommendations: an ANN engine with a trainer
// routes Recommend through the model index and exact Predict
// rescoring; recommendations stay non-empty, deterministic, and the
// serving counters move.
func TestANNRankPathServesRecommendations(t *testing.T) {
	_, e := engine(t, WithSeed(7),
		WithTrainer(sgdTrainer(7)),
		WithANN(ANNConfig{Kind: ann.KindHNSW}))

	st := e.ANNState()
	if !st.Enabled || st.ModelVectors == 0 || st.ModelVersion != 1 {
		t.Fatalf("ANN state = %+v", st)
	}
	before := st.Searches
	p1, err := e.Recommend(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Recommend(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Entries) == 0 {
		t.Fatal("empty recommendations")
	}
	if !reflect.DeepEqual(p1.Entries, p2.Entries) {
		t.Fatal("ANN recommendations are not deterministic across calls")
	}
	if after := e.ANNState().Searches; after <= before {
		t.Fatalf("searches did not advance: %d -> %d", before, after)
	}
}

// TestANNFallsBackWithoutModelIndex: an ANN engine without a trainer
// has no model index, so Recommend must silently serve the brute-force
// ranking and count the fallback.
func TestANNFallsBackWithoutModelIndex(t *testing.T) {
	_, e := engine(t, WithSeed(7), WithANN(annConfigFlat()))
	if st := e.ANNState(); st.ModelVectors != 0 {
		t.Fatalf("unexpected model index: %+v", st)
	}
	p, err := e.Recommend(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) == 0 {
		t.Fatal("fallback ranking empty")
	}
	if st := e.ANNState(); st.Fallbacks == 0 {
		t.Fatal("fallback not counted")
	}
}

// TestANNIndexSurvivesFoldIns: write-path fold-ins only move user-side
// factors (mf freezes the item side on RebindMatrix), so the carried
// model index stays attached and exact across writes without a
// rebuild.
func TestANNIndexSurvivesFoldIns(t *testing.T) {
	c, e := engine(t, WithSeed(7),
		WithTrainer(sgdTrainer(7)),
		WithANN(annConfigFlat()))
	items := c.Catalog.Items()
	for i := 0; i < 10; i++ {
		u := model.UserID(1 + i%4)
		if err := e.Rate(u, items[i%len(items)].ID, 4); err != nil {
			t.Fatal(err)
		}
	}
	st := e.ANNState()
	if st.ModelVectors == 0 {
		t.Fatal("model index lost across fold-ins")
	}
	if _, err := e.Recommend(2, 5); err != nil {
		t.Fatal(err)
	}
}

// TestANNReadsNeverBlockDuringIndexRebuild mirrors the lifecycle
// swap-safety acceptance test with the ANN path on (a primary -race
// target): readers hammer Recommend and SimilarTo while background and
// explicit retrains rebuild and swap the model index off-lock. No read
// may error and versions only move forward.
func TestANNReadsNeverBlockDuringIndexRebuild(t *testing.T) {
	cfg := TrainerConfig{
		Trainer:      mf.SGD{Opts: mf.Options{Seed: 7, Factors: 8, Epochs: 3}},
		RetrainEvery: 2,
	}
	c, e := engine(t, WithSeed(7), WithTrainer(cfg), WithANN(ANNConfig{Kind: ann.KindHNSW, Quantize: true}))
	items := c.Catalog.Items()

	const readers = 8
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := model.UserID(1 + g%4)
			var lastVersion uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p, err := e.RecommendContext(context.Background(), u, 5)
				if err != nil {
					errs <- fmt.Errorf("recommend: %w", err)
					return
				}
				if p.ModelVersion < lastVersion {
					errs <- fmt.Errorf("model version went backwards: %d -> %d", lastVersion, p.ModelVersion)
					return
				}
				lastVersion = p.ModelVersion
				seed := items[(g+i)%len(items)].ID
				if _, err := e.SimilarToContext(context.Background(), u, seed, 5); err != nil {
					errs <- fmt.Errorf("similar: %w", err)
					return
				}
			}
		}(g)
	}

	for k := 0; k < 40; k++ {
		u := model.UserID(10 + k%5)
		if err := e.Rate(u, items[k%len(items)].ID, 3.5); err != nil {
			t.Fatal(err)
		}
		if k%10 == 0 {
			if err := e.Retrain(context.Background()); err != nil && err != ErrTrainInProgress {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Let in-flight background trains land, then the serving snapshot's
	// index generation must match the serving model version.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := e.ModelsState()
		if !st.TrainInFlight && st.ServingVersion >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("training never settled; state = %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if v, st := e.ModelVersion(), e.ANNState(); st.ModelVersion != v {
		t.Fatalf("index generation %d lags serving version %d", st.ModelVersion, v)
	}
}

// TestScheduledRetrains drives the wall-clock retrain loop through the
// injectable tick channel: each tick triggers a retrain, the counters
// move, and Close joins the loop.
func TestScheduledRetrains(t *testing.T) {
	ticks := make(chan time.Time)
	cfg := sgdTrainer(7)
	cfg.RetrainTicks = ticks
	_, e := lifecycleEngine(t, cfg)
	if v := e.ModelVersion(); v != 1 {
		t.Fatalf("initial version = %d", v)
	}

	ticks <- time.Time{}
	deadline := time.After(5 * time.Second)
	for e.ModelVersion() < 2 {
		select {
		case <-deadline:
			t.Fatalf("scheduled retrain never published: version = %d", e.ModelVersion())
		case <-time.After(5 * time.Millisecond):
		}
	}
	st := e.ModelsState()
	if st.ScheduledRetrains < 1 {
		t.Fatalf("scheduled retrains = %d", st.ScheduledRetrains)
	}

	done := make(chan error, 1)
	go func() { done <- e.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not join the scheduled-retrain loop")
	}
	// A second Close (and a stray tick after shutdown) must be safe.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRetrainIntervalValidation(t *testing.T) {
	cat := nilSafeCatalog(t)
	cfg := sgdTrainer(1)
	cfg.RetrainInterval = -time.Second
	if _, err := New(cat, model.NewMatrix(), WithTrainer(cfg)); err == nil {
		t.Fatal("negative RetrainInterval accepted")
	}
}

// TestModelsStateReportsSchedule: the debug surface carries the
// configured interval so operators can confirm the schedule from
// /debug/models.
func TestModelsStateReportsSchedule(t *testing.T) {
	cfg := sgdTrainer(7)
	cfg.RetrainInterval = 90 * time.Second
	cfg.RetrainTicks = make(chan time.Time) // never fires; keeps the test quiet
	_, e := lifecycleEngine(t, cfg)
	defer e.Close()
	st := e.ModelsState()
	if st.RetrainIntervalSeconds != 90 {
		t.Fatalf("RetrainIntervalSeconds = %v", st.RetrainIntervalSeconds)
	}
}
