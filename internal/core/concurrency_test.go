package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/interact"
	"repro/internal/model"
)

// TestEngineConcurrentStress hammers one engine from 32 goroutines with
// a mix of every read and write operation. It is primarily a race
// detector target (go test -race): the snapshot architecture promises
// that lock-free readers never observe a half-applied write.
func TestEngineConcurrentStress(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 77, Users: 40, Items: 60, RatingsPerUser: 15})
	e, err := New(c.Catalog, c.Ratings, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	items := c.Catalog.Items()

	const (
		goroutines = 32
		opsPerG    = 60
	)
	var served atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := model.UserID(g%40 + 1)
			for op := 0; op < opsPerG; op++ {
				item := items[(g*opsPerG+op)%len(items)].ID
				switch op % 8 {
				case 0:
					if p, err := e.Recommend(u, 5); err == nil {
						if len(p.Entries) == 0 {
							t.Error("empty presentation without error")
						}
						served.Add(1)
					}
				case 1:
					// Explanations may legitimately fail (no evidence);
					// only data races and panics count as failures here.
					_, _ = e.Explain(u, item)
				case 2:
					e.Rate(u, item, float64(op%5)+1)
				case 3:
					if err := e.Opinion(u, interact.Opinion{Kind: interact.SurpriseMe}); err != nil {
						t.Errorf("opinion: %v", err)
					}
				case 4:
					_, _ = e.WhyLow(u, item)
				case 5:
					if _, err := e.SimilarTo(u, item, 3); err != nil {
						t.Errorf("similar: %v", err)
					}
				case 6:
					e.RemoveRating(u, item)
				case 7:
					_ = e.SetInfluenceWeight(u, item, float64(op%4))
				}
			}
		}(g)
	}
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no recommendation succeeded under load")
	}
	// The engine must still be coherent after the storm.
	if _, err := e.Recommend(1, 5); err != nil {
		t.Fatalf("post-stress recommend: %v", err)
	}
	m := e.Metrics()
	if m.Recommendations == 0 || m.RepairActions == 0 {
		t.Fatalf("metrics not counted under load: %+v", m)
	}
}

// TestEngineGuardedModeStress exercises the compatibility path: a
// custom recommender without MatrixRebinder forces guarded (read-write
// locked) mode, which must still be race-free under mixed load.
func TestEngineGuardedModeStress(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 80, Users: 20, Items: 30, RatingsPerUser: 8})
	e, err := New(c.Catalog, c.Ratings, WithRecommender(stubRecommender{item: c.Catalog.Items()[0].ID}))
	if err != nil {
		t.Fatal(err)
	}
	items := c.Catalog.Items()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := model.UserID(g%20 + 1)
			for op := 0; op < 40; op++ {
				switch op % 4 {
				case 0:
					if _, err := e.Recommend(u, 3); err != nil {
						t.Errorf("recommend: %v", err)
					}
				case 1:
					_, _ = e.Explain(u, items[op%len(items)].ID)
				case 2:
					e.Rate(u, items[op%len(items)].ID, 3)
				case 3:
					e.RemoveRating(u, items[op%len(items)].ID)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEngineSnapshotIsolation checks the copy-on-write contract
// directly: a reader holding a pre-write view (via Ratings) does not
// observe a concurrent Rate, while post-write readers do.
func TestEngineSnapshotIsolation(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 78, Users: 10, Items: 20, RatingsPerUser: 5})
	e, err := New(c.Catalog, c.Ratings)
	if err != nil {
		t.Fatal(err)
	}
	var target model.ItemID
	for _, it := range c.Catalog.Items() {
		if _, rated := c.Ratings.Get(3, it.ID); !rated {
			target = it.ID
			break
		}
	}
	before := e.Ratings()
	e.Rate(3, target, 5)
	if _, ok := before.Get(3, target); ok {
		t.Fatal("pre-write snapshot observed the write")
	}
	if v, ok := e.Ratings().Get(3, target); !ok || v != 5 {
		t.Fatalf("post-write snapshot missed the write: %v %v", v, ok)
	}
	if _, ok := c.Ratings.Get(3, target); ok {
		t.Fatal("engine mutated the caller's matrix")
	}
}

// TestEngineContextCancellation checks that the Context read variants
// respect an already-cancelled context.
func TestEngineContextCancellation(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 79, Users: 10, Items: 20, RatingsPerUser: 5})
	e, err := New(c.Catalog, c.Ratings)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RecommendContext(ctx, 1, 5); err != context.Canceled {
		t.Fatalf("RecommendContext err = %v", err)
	}
	if _, err := e.ExplainContext(ctx, 1, c.Catalog.Items()[0].ID); err != context.Canceled {
		t.Fatalf("ExplainContext err = %v", err)
	}
	if _, err := e.WhyLowContext(ctx, 1, c.Catalog.Items()[0].ID); err != context.Canceled {
		t.Fatalf("WhyLowContext err = %v", err)
	}
	if _, err := e.BrowseAllContext(ctx, 1); err != context.Canceled {
		t.Fatalf("BrowseAllContext err = %v", err)
	}
	if _, err := e.SimilarToContext(ctx, 1, c.Catalog.Items()[0].ID, 3); err != context.Canceled {
		t.Fatalf("SimilarToContext err = %v", err)
	}
}
