// The engine's run of the shared core.Service conformance suite. The
// suite lives in internal/core/servicetest so the cluster router (and
// any future backend) runs the identical checks; this file only binds
// it to the stock Engine. It is in package core_test because the suite
// imports core.

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/core/servicetest"
	"repro/internal/model"
)

func TestEngineServiceConformance(t *testing.T) {
	servicetest.Run(t, "engine", func(t *testing.T, cat *model.Catalog, ratings *model.Matrix) core.Service {
		eng, err := core.New(cat, ratings, core.WithSeed(7))
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		return eng
	})
}
