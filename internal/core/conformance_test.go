// The engine's run of the shared core.Service conformance suite. The
// suite lives in internal/core/servicetest so the cluster router (and
// any future backend) runs the identical checks; this file only binds
// it to the stock Engine. It is in package core_test because the suite
// imports core.

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/core/servicetest"
	"repro/internal/model"
	"repro/internal/recsys/mf"
)

func TestEngineServiceConformance(t *testing.T) {
	servicetest.Run(t, "engine", func(t *testing.T, cat *model.Catalog, ratings *model.Matrix) core.Service {
		eng, err := core.New(cat, ratings, core.WithSeed(7))
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		return eng
	})
}

// TestANNEngineServiceConformance runs the identical suite against
// ANN-backed engines: flat (exact by construction) and quantized HNSW
// (approximate candidates, exact rescoring) must both be behaviourally
// indistinguishable from the brute-force scan at the Service seam.
func TestANNEngineServiceConformance(t *testing.T) {
	cfgs := map[string]core.ANNConfig{
		"ann-flat": {Kind: "flat"},
		"ann-hnsw": {Kind: "hnsw", Quantize: true},
	}
	for name, cfg := range cfgs {
		trainer, err := mf.NewTrainer("sgd", mf.Options{Seed: 7, Factors: 8, Epochs: 6})
		if err != nil {
			t.Fatal(err)
		}
		servicetest.Run(t, name, func(t *testing.T, cat *model.Catalog, ratings *model.Matrix) core.Service {
			eng, err := core.New(cat, ratings, core.WithSeed(7),
				core.WithTrainer(core.TrainerConfig{Trainer: trainer}),
				core.WithANN(cfg))
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			return eng
		})
	}
}

// TestMFEngineServiceConformance runs the identical suite against an
// engine serving each MF trainer through the versioned lifecycle: a
// trainer-managed model must be behaviourally indistinguishable from
// the stock hybrid at the Service seam.
func TestMFEngineServiceConformance(t *testing.T) {
	for _, name := range mf.TrainerNames() {
		trainer, err := mf.NewTrainer(name, mf.Options{Seed: 7, Factors: 8, Epochs: 6})
		if err != nil {
			t.Fatal(err)
		}
		servicetest.Run(t, "mf-"+name, func(t *testing.T, cat *model.Catalog, ratings *model.Matrix) core.Service {
			eng, err := core.New(cat, ratings, core.WithSeed(7),
				core.WithTrainer(core.TrainerConfig{Trainer: trainer}))
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			return eng
		})
	}
}
