// Package core is the public face of the library: an Engine that wires
// a recommender, an explanation engine, presentation modes,
// personality and per-user feedback into the explain-present-interact
// cycle the survey describes ("explanations should be part of a cycle,
// where the user understands what is going on in the system and exerts
// control over the type of recommendations made").
//
// A downstream application typically does:
//
//	eng, err := core.New(catalog, ratings)
//	view, err := eng.Recommend(userID, 10)     // explained top-N
//	why, err := eng.Explain(userID, itemID)    // on-demand justification
//	eng.Rate(userID, itemID, 4.5)              // rating feedback
//	eng.Opinion(userID, interact.Opinion{...}) // opinion feedback
//
// Frontends that only serve requests should depend on the Service
// interface instead of *Engine, so alternative backends (sharded,
// remote, recording fakes) can drop in.
//
// # Serving pipeline
//
// Each read operation executes as a pipeline of named stages
// (internal/pipeline): Recommend is rank → rerank → explainTopN →
// present, and the other operations are built from the same stage
// vocabulary. Every stage is wrapped by three stock interceptors —
// per-stage metrics (outermost), deadline/cancellation enforcement,
// and panic recovery (innermost) — and by any custom interceptors
// installed with WithInterceptor, which wrap outside the stock set.
// Per-stage invocation counts, error counts and cumulative latency
// are reported by Metrics() under Stats.Stages.
//
// # Concurrency model
//
// The Engine is safe for concurrent use and its read path is
// lock-free: Recommend, Explain, WhyLow, BrowseAll and SimilarTo load
// an immutable snapshot (rating matrix, recommenders with
// concurrency-safe caches, wired explainers) from an atomic pointer
// and never take a global lock. Writes (Rate, RemoveRating,
// SetInfluenceWeight) serialise on a writer mutex, apply the mutation
// to a copy-on-write clone of the matrix, and publish a new snapshot
// that reuses every cached similarity and trained table not involving
// the touched user. Opinion feedback lives outside snapshots in a
// sharded per-user map, so one user's opinion update never blocks
// another user's read; two requests for the same user serialise only
// on that user's entry. Usage counters are atomics.
//
// Consequently the Engine treats the matrix passed to New as input: it
// is never mutated. Read the live state through Ratings(), which
// returns the current snapshot's matrix.
//
// Custom recommenders and explainers installed via WithRecommender /
// WithExplainer join the lock-free path when they implement
// recsys.MatrixRebinder / explain.MatrixRebinder; otherwise the engine
// degrades gracefully to guarding reads with a read-write lock (reads
// still run concurrently with each other; writes are exclusive and
// mutate the matrix in place).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/explain"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/content"
	"repro/internal/recsys/hybrid"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Engine is a configured explanation-capable recommender. See the
// package documentation for the concurrency model: lock-free
// snapshot reads, serialised copy-on-write writes.
type Engine struct {
	catalog     *model.Catalog
	personality present.Personality
	baseSeed    uint64

	// customRec / customExp are set by options; non-nil values replace
	// the default hybrid stack on the serving path.
	customRec recsys.Recommender
	customExp explain.Explainer

	// trainerCfg is set by WithTrainer; lc is the resulting model
	// lifecycle (background trainers, versioned artifact store,
	// fold-in at swap time — see lifecycle.go). Nil without the
	// option.
	trainerCfg *TrainerConfig
	lc         *lifecycle

	// annCfg is set by WithANN; annContent is the immutable catalogue
	// index built once in New (the model-side index lives on the
	// snapshot — see ann.go). Nil without the option.
	annCfg     *ANNConfig
	annContent *contentANN
	annStats   annCounters

	// Scheduled-retrain loop plumbing (TrainerConfig.RetrainInterval /
	// RetrainTicks): schedStop ends the loop, schedDone reports it
	// exited, schedOnce makes Close idempotent. All nil/zero without a
	// schedule.
	schedStop chan struct{}
	schedDone chan struct{}
	schedOnce sync.Once

	// pipes are the composed read-operation pipelines; extraICs are
	// user interceptors wrapped outside the stock metrics/deadline/
	// recovery chain, and stageTimeout bounds any single stage (0 =
	// cancellation checks only).
	pipes        pipelines
	extraICs     []pipeline.Interceptor
	stageTimeout time.Duration

	// resilience enables the breaker/shed/retry/fallback chain
	// (nil = off); chaos holds fault-injection interceptors composed
	// innermost, inside Recover, so injected panics exercise the real
	// recovery path.
	resilience *ResilienceConfig
	chaos      []pipeline.Interceptor

	// tracer, when non-nil, records a span per stage execution plus
	// resilience-event and snapshot-acquisition children (see
	// internal/trace). Requests whose context carries no active trace
	// pay one context lookup per stage and nothing else.
	tracer *trace.Tracer

	// stageStats collects per-stage latency/count observations from
	// the Metrics interceptor; resEvents counts resilience events
	// (breaker transitions, sheds, retries, fallbacks).
	stageStats stageRecorder
	resEvents  eventRecorder

	// walCfg is set by WithWAL; wlog is the open write-ahead log (nil
	// without the option) and ledger tracks durable non-matrix state
	// for checkpoints. walReplaying is true only during construction-
	// time replay, before any other goroutine can observe the engine:
	// it suppresses re-logging and retrain triggers.
	walCfg       *WALConfig
	wlog         *wal.Log
	ledger       *walLedger
	walReplaying bool

	// writeMu serialises all snapshot-publishing mutations.
	writeMu sync.Mutex
	// snap is the current immutable snapshot; readers Load it once per
	// operation and work on a consistent view.
	snap atomic.Pointer[snapshot]

	// users holds per-user feedback models and exploration RNGs,
	// sharded so cross-user operations never contend.
	users userStates

	stats counters
}

// snapshot is one immutable generation of the engine's model state.
// Everything reachable from a snapshot is either never mutated after
// publication or internally concurrency-safe (sharded caches).
type snapshot struct {
	ratings   *model.Matrix
	rec       recsys.Recommender
	explainer explain.Explainer
	low       present.LowExplainer

	// degraded is the cheap explainer degraded-mode serving draws on
	// when the primary explain stage is unavailable (see resilience.go).
	degraded explain.Explainer

	// Default substrate, rebound (caches carried, touched entries
	// dropped) on every write. Explanations are always grounded in it
	// unless a custom explainer is installed.
	knn   *cf.UserKNN
	bayes *content.Bayes
	kw    *content.KeywordRecommender

	// editable reports whether SetInfluenceWeight may edit bayes: only
	// when the default stack is also the serving recommender.
	editable bool

	// guard is non-nil when a custom component cannot be rebound to a
	// new matrix: reads RLock it, writes Lock it and mutate the matrix
	// in place. Nil on the lock-free path.
	guard *sync.RWMutex

	// modelVersion is the artifact version of the serving model when
	// the engine runs a versioned lifecycle (WithTrainer), 0
	// otherwise. Carried into Presentations and Explanations so
	// responses are attributable to a model generation.
	modelVersion uint64

	// annModel is the ANN index over the serving model's item vectors
	// (WithANN + a lifecycle model exposing them; nil otherwise). It is
	// rebuilt off-lock when a trained model publishes and swaps in with
	// this snapshot; write-path fold-ins carry it unchanged, which is
	// exact because fold-in freezes the model's item-side factors.
	annModel ann.Index
}

// Stats are the engine's usage counters. The survey's Section 3 lists
// exactly these as indirect measures: explanations inspected, repair
// actions activated (re-ratings, opinions), interactions per session.
type Stats struct {
	Recommendations    int // Recommend calls served
	ExplanationsServed int // explanations attached or fetched on demand
	WhyLowQueries      int // "why is this low?" scrutiny
	RepairActions      int // ratings changed/removed + opinions applied
	DegradedServed     int // responses served by a degraded fallback stage

	// Stages holds per-stage pipeline counters keyed "pipeline/stage"
	// (e.g. "recommend/rank"): invocations, errors, panics, cumulative
	// latency.
	Stages map[string]StageStats

	// Resilience holds resilience-event counters keyed
	// "pipeline/stage/event" (e.g. "explain/explain/breaker_open");
	// empty unless WithResilience is installed and events occurred.
	Resilience map[string]int
}

// counters is the atomic backing store for Stats, so pure reads never
// touch a lock just to bump a number.
type counters struct {
	recommendations    atomic.Int64
	explanationsServed atomic.Int64
	whyLowQueries      atomic.Int64
	repairActions      atomic.Int64
	degradedServed     atomic.Int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithRecommender replaces the default hybrid recommender. If r
// implements recsys.MatrixRebinder the engine keeps its lock-free read
// path; otherwise reads are guarded by a read-write lock.
func WithRecommender(r recsys.Recommender) Option {
	return func(e *Engine) { e.customRec = r }
}

// WithExplainer replaces the default explainer. If x implements
// explain.MatrixRebinder the engine keeps its lock-free read path;
// otherwise reads are guarded by a read-write lock.
func WithExplainer(x explain.Explainer) Option {
	return func(e *Engine) { e.customExp = x }
}

// WithPersonality sets the recommender personality (Section 4.6).
// Non-neutral personalities disclose themselves in explanations.
func WithPersonality(p present.Personality) Option {
	return func(e *Engine) { e.personality = p }
}

// WithSeed seeds the engine's exploration randomness (surprise-me
// picks). Each user's exploration stream is derived deterministically
// from the seed and the user ID, so engines with equal seeds behave
// identically regardless of request interleaving across users.
func WithSeed(seed uint64) Option {
	return func(e *Engine) { e.baseSeed = seed }
}

// WithInterceptor installs a custom pipeline interceptor around every
// stage of every read operation — tracing, request logging, custom
// accounting. Custom interceptors wrap outside the stock
// metrics/deadline/recovery chain; repeated options nest in the order
// given (the first is outermost).
func WithInterceptor(ic pipeline.Interceptor) Option {
	return func(e *Engine) { e.extraICs = append(e.extraICs, ic) }
}

// WithStageTimeout bounds every pipeline stage to d; a stage that
// overruns sees its context expire and the request fails with
// context.DeadlineExceeded. Zero (the default) enforces only
// cancellation between stages.
func WithStageTimeout(d time.Duration) Option {
	return func(e *Engine) { e.stageTimeout = d }
}

// WithTracer wires a trace.Tracer into every read pipeline: each stage
// execution becomes a span, resilience events (retries, breaker flips,
// sheds, fallback reroutes, recovered panics) become zero-duration
// child events, and snapshot acquisition is timed separately. The
// tracer's tail-based sampler decides at request end which traces are
// retained. A nil tracer is a no-op.
func WithTracer(t *trace.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// Tracer returns the tracer installed with WithTracer, or nil.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// New builds an Engine over a catalogue and rating matrix. The default
// configuration is a weighted hybrid of user-based collaborative
// filtering and a naive-Bayes content model, explained by whichever
// source dominates each prediction — collaborative evidence gets a
// neighbour histogram, content evidence an influence report.
//
// The matrix is treated as immutable input: the engine never writes to
// it, publishing copy-on-write clones instead (see the package
// documentation).
func New(cat *model.Catalog, ratings *model.Matrix, opts ...Option) (*Engine, error) {
	if cat == nil || cat.Len() == 0 {
		return nil, errors.New("core: empty catalogue")
	}
	if ratings == nil {
		return nil, errors.New("core: nil rating matrix")
	}
	e := &Engine{catalog: cat, baseSeed: 1}
	e.users.init()
	for _, opt := range opts {
		opt(e)
	}

	if e.trainerCfg != nil {
		if e.trainerCfg.Trainer == nil {
			return nil, errors.New("core: WithTrainer requires a non-nil Trainer")
		}
		if e.customRec != nil {
			return nil, errors.New("core: WithTrainer conflicts with WithRecommender")
		}
		if e.trainerCfg.ArtifactPath != "" && (e.trainerCfg.EncodeModel == nil || e.trainerCfg.DecodeModel == nil) {
			return nil, errors.New("core: TrainerConfig.ArtifactPath requires EncodeModel and DecodeModel")
		}
		if e.trainerCfg.RetrainInterval < 0 {
			return nil, errors.New("core: TrainerConfig.RetrainInterval must not be negative")
		}
		e.lc = newLifecycle(*e.trainerCfg)
	}

	if e.annCfg != nil {
		cfg := e.annCfg.withDefaults(e.baseSeed)
		if cfg.Kind != ann.KindHNSW && cfg.Kind != ann.KindFlat {
			return nil, fmt.Errorf("core: unknown ANN index kind %q (want %q or %q)", cfg.Kind, ann.KindHNSW, ann.KindFlat)
		}
		e.annCfg = &cfg
		ca, err := buildContentANN(cat, cfg)
		if err != nil {
			return nil, err
		}
		e.annContent = ca
	}

	// Durable engines recover before they serve: the newest checkpoint
	// REPLACES the constructor matrix (the WAL directory is the source
	// of truth once it exists), and the tail records are re-applied
	// below, after the first snapshot is in place.
	var recv *wal.Recovery
	var ck *walCheckpoint
	if e.walCfg != nil {
		var ckMatrix *model.Matrix
		var err error
		recv, ck, ckMatrix, err = e.openWAL()
		if err != nil {
			return nil, err
		}
		if ckMatrix != nil {
			ratings = ckMatrix
		}
		if e.lc != nil && ck != nil {
			// Continue the lifecycle's revision numbering where the
			// checkpoint left it: replayed tail records advance dataRev
			// exactly like the live writes they replay, so after replay
			// the counters equal the crashed process's — and warmStart
			// can tell precisely which users were written after the
			// persisted artifact, including writes the checkpoint has
			// already materialised.
			e.lc.dataRev = ck.DataRev
			e.lc.trainedRev = ck.TrainedRev
			for _, us := range ck.Users {
				if us.Rev > 0 {
					e.lc.touched[us.User] = us.Rev
				}
			}
		}
	}

	s := &snapshot{
		ratings: ratings,
		knn:     cf.NewUserKNN(ratings, cat, cf.Options{}),
		bayes:   content.NewBayes(ratings, cat),
		kw:      content.NewKeywordRecommender(ratings, cat),
	}
	e.wire(s)
	if e.customRec != nil {
		s.rec = e.customRec
		s.editable = false
	}
	if e.customExp != nil {
		s.explainer = e.customExp
	}
	if e.needsGuard() {
		s.guard = &sync.RWMutex{}
	}
	e.snap.Store(s)

	if e.walCfg != nil {
		if err := e.replayWAL(ck, recv.Records); err != nil {
			e.wlog.Close()
			return nil, err
		}
		if ck == nil {
			// First boot of this directory: a baseline checkpoint makes
			// it self-contained, so later recoveries never depend on the
			// constructor matrix again.
			e.writeMu.Lock()
			err := e.walCheckpointLocked()
			e.writeMu.Unlock()
			if err != nil {
				e.wlog.Close()
				return nil, fmt.Errorf("core: writing baseline checkpoint: %w", err)
			}
		}
	}

	if e.lc != nil {
		// The initial model trains on the post-recovery matrix (or loads
		// from a persisted artifact), so replayed writes are in it; mark
		// the replayed revisions trained.
		cur := e.snap.Load()
		if !e.warmStart(cur) {
			if err := e.initialTrain(cur); err != nil {
				e.Close()
				return nil, err
			}
		}
		e.snap.Store(cur)
		e.lc.trainedRev = e.lc.dataRev
		e.lc.touched = map[model.UserID]uint64{}
	}
	e.buildPipelines()
	e.startScheduledRetrains()
	return e, nil
}

// needsGuard reports whether any installed custom component cannot be
// rebound to a fresh matrix, forcing the guarded (read-write-locked)
// compatibility mode.
func (e *Engine) needsGuard() bool {
	if e.customRec != nil {
		if _, ok := e.customRec.(recsys.MatrixRebinder); !ok {
			return true
		}
	}
	if e.customExp != nil {
		if _, ok := e.customExp.(explain.MatrixRebinder); !ok {
			return true
		}
	}
	return false
}

// wire builds the serving hybrid recommender and default explainer
// graph from the snapshot's substrate components.
func (e *Engine) wire(s *snapshot) {
	h := hybrid.New(e.catalog,
		hybrid.Source{Name: "collaborative", Weight: 2, Predictor: s.knn},
		hybrid.Source{Name: "content", Weight: 1, Predictor: s.bayes},
	)
	hx := explain.NewHybridExplainer(h, map[string]explain.Explainer{
		"collaborative": explain.NewHistogramExplainer(s.knn),
		"content":       explain.NewInfluenceExplainer(s.bayes, e.catalog),
	})
	hx.Fallback = explain.NewProfileExplainer(s.kw)
	s.rec = h
	s.explainer = hx
	pe := explain.NewProfileExplainer(s.kw)
	s.low = pe
	s.degraded = pe
	s.editable = true
}

// rebuild publishes-ready state for a new matrix generation: the
// substrate is rebound carrying over every cache entry not involving a
// touched user, and custom components are rebound when they support
// it or carried as-is in guarded mode.
func (e *Engine) rebuild(prev *snapshot, m *model.Matrix, touched ...model.UserID) *snapshot {
	s := &snapshot{
		ratings: m,
		guard:   prev.guard,
		knn:     prev.knn.Rebind(m, touched...),
		bayes:   prev.bayes.Rebind(m, touched...),
		kw:      prev.kw.Rebind(m, touched...),
	}
	e.wire(s)
	if e.customRec != nil {
		if rb, ok := prev.rec.(recsys.MatrixRebinder); ok {
			s.rec = rb.RebindMatrix(m, touched...)
		} else {
			s.rec = prev.rec
		}
		s.editable = false
	}
	if e.lc != nil {
		// The lifecycle-served model absorbs the write by incremental
		// fold-in when it can; a non-rebindable model is carried as-is
		// (its artifact is immutable — the background retrain, not the
		// write path, refreshes it). The serving version is unchanged
		// either way: fold-in updates the model in place semantically,
		// it does not publish a generation.
		rec := prev.rec
		if rb, ok := rec.(recsys.MatrixRebinder); ok {
			rec = rb.RebindMatrix(m, touched...)
			e.lc.foldIns.Add(int64(len(touched)))
		}
		e.groundModel(s, rec, prev.modelVersion)
		// The carried ANN index stays exact across the fold-in: only
		// user-side factors were re-solved, the indexed item side is
		// shared frozen until the next trained publish.
		s.annModel = prev.annModel
	}
	if e.customExp != nil {
		if rb, ok := prev.explainer.(explain.MatrixRebinder); ok {
			s.explainer = rb.RebindMatrix(m, touched...)
		} else {
			s.explainer = prev.explainer
		}
	}
	return s
}

// Catalog returns the engine's catalogue.
func (e *Engine) Catalog() *model.Catalog { return e.catalog }

// Ratings returns the current snapshot's rating matrix. The returned
// matrix is a point-in-time view: treat it as read-only, and call
// Ratings again after writes to observe them. The matrix originally
// passed to New is never mutated.
func (e *Engine) Ratings() *model.Matrix { return e.snap.Load().ratings }

// Recommend returns an explained top-n presentation for u: base
// predictions, personality adjustment, opinion-feedback re-ranking,
// then explanation of each surviving entry.
func (e *Engine) Recommend(u model.UserID, n int) (*present.Presentation, error) {
	return e.RecommendContext(context.Background(), u, n)
}

// RecommendContext is Recommend with cancellation: the deadline
// interceptor checks ctx before every stage and the explainTopN stage
// checks between per-entry explanation generations, so a cancelled
// request stops paying the explanation cost mid-list.
func (e *Engine) RecommendContext(ctx context.Context, u model.UserID, n int) (*present.Presentation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: n must be positive, got %d", n)
	}
	s, release := e.tracedSnapshot(ctx)
	defer release()
	resp, err := e.pipes.recommend.Run(withSnapshot(ctx, s),
		&pipeline.Request{Op: pipeline.OpRecommend, User: u, N: n})
	if err != nil {
		return nil, err
	}
	return resp.Presentation, nil
}

// Explain justifies recommending item to u on demand.
func (e *Engine) Explain(u model.UserID, item model.ItemID) (*explain.Explanation, error) {
	return e.ExplainContext(context.Background(), u, item)
}

// ExplainContext is Explain with cancellation.
func (e *Engine) ExplainContext(ctx context.Context, u model.UserID, item model.ItemID) (*explain.Explanation, error) {
	s, release := e.tracedSnapshot(ctx)
	defer release()
	resp, err := e.pipes.explain.Run(withSnapshot(ctx, s),
		&pipeline.Request{Op: pipeline.OpExplain, User: u, Item: item})
	if err != nil {
		return nil, err
	}
	return resp.Explanation, nil
}

// WhyLow answers "why is this item predicted low for me?" — the
// scrutability entry point of Section 4.4.
func (e *Engine) WhyLow(u model.UserID, item model.ItemID) (*explain.Explanation, error) {
	return e.WhyLowContext(context.Background(), u, item)
}

// WhyLowContext is WhyLow with cancellation.
func (e *Engine) WhyLowContext(ctx context.Context, u model.UserID, item model.ItemID) (*explain.Explanation, error) {
	s, release := e.tracedSnapshot(ctx)
	defer release()
	resp, err := e.pipes.whyLow.Run(withSnapshot(ctx, s),
		&pipeline.Request{Op: pipeline.OpWhyLow, User: u, Item: item})
	if err != nil {
		return nil, err
	}
	return resp.Explanation, nil
}

// BrowseAll returns the predicted-ratings-for-everything view of
// Section 4.4.
//
// Contract: BrowseAllContext fails only when its context is cancelled
// or expired, and the background context used here can do neither, so
// the discarded error below is provably nil. Callers that need
// cancellation (and the error that comes with it) must use
// BrowseAllContext.
func (e *Engine) BrowseAll(u model.UserID) *present.RatingsView {
	//lint:ignore dropped-error BrowseAllContext only errors on ctx cancellation, impossible with context.Background()
	v, _ := e.BrowseAllContext(context.Background(), u)
	return v
}

// BrowseAllContext is BrowseAll with cancellation; the only possible
// error is the context's.
func (e *Engine) BrowseAllContext(ctx context.Context, u model.UserID) (*present.RatingsView, error) {
	s, release := e.tracedSnapshot(ctx)
	defer release()
	resp, err := e.pipes.browse.Run(withSnapshot(ctx, s),
		&pipeline.Request{Op: pipeline.OpBrowse, User: u})
	if err != nil {
		return nil, err
	}
	return resp.View, nil
}

// SimilarTo presents items similar to a seed item (Section 4.3).
func (e *Engine) SimilarTo(u model.UserID, seed model.ItemID, n int) (*present.Presentation, error) {
	return e.SimilarToContext(context.Background(), u, seed, n)
}

// SimilarToContext is SimilarTo with cancellation.
func (e *Engine) SimilarToContext(ctx context.Context, u model.UserID, seed model.ItemID, n int) (*present.Presentation, error) {
	s, release := e.tracedSnapshot(ctx)
	defer release()
	resp, err := e.pipes.similar.Run(withSnapshot(ctx, s),
		&pipeline.Request{Op: pipeline.OpSimilar, User: u, Item: seed, N: n})
	if err != nil {
		return nil, err
	}
	return resp.Presentation, nil
}

// mutate applies one matrix mutation for user u and publishes the next
// snapshot generation. On the lock-free path the mutation lands on a
// copy-on-write clone, so readers of the current snapshot never see
// it; in guarded mode the matrix is mutated in place under the write
// lock.
//
// With a WAL, rec is appended BEFORE the mutation applies; an append
// failure rejects the whole mutation (non-nil return), upholding "no
// acknowledged write is lost" in both directions — nothing lost, and
// nothing acknowledged that durability didn't cover.
func (e *Engine) mutate(u model.UserID, rec *walRecord, apply func(*model.Matrix)) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if err := e.walAppend(rec); err != nil {
		return err
	}
	cur := e.snap.Load()
	if cur.guard != nil {
		cur.guard.Lock()
		apply(cur.ratings)
		cur.guard.Unlock()
		e.snap.Store(e.rebuild(cur, cur.ratings, u))
	} else {
		m := cur.ratings.CloneShared()
		apply(m)
		e.snap.Store(e.rebuild(cur, m, u))
	}
	e.ledgerApply(rec)
	// The lifecycle write counter advances after the snapshot publish,
	// so a triggered background retrain always captures a matrix that
	// includes the write that triggered it. Replay suppresses the
	// trigger: the post-replay initial train covers every replayed write.
	if e.lc != nil && e.lc.noteWrite(u) && !e.walReplaying {
		e.retrainAsync()
	}
	e.walMaybeCheckpoint()
	return nil
}

// ErrNonFiniteValue is returned when a rating value or influence
// weight is NaN or ±Inf. Rejecting these up front keeps poisoned
// numbers out of the copy-on-write matrix, where a single NaN would
// silently corrupt every similarity and mean that touches it.
var ErrNonFiniteValue = errors.New("core: value must be finite")

// Rate records (or corrects) a rating — Section 5.3 interaction. The
// next Recommend call reflects it immediately, closing the
// scrutability cycle. Non-finite values are rejected: ClampRating
// cannot clamp a NaN (every comparison with NaN is false), so without
// this check a NaN would flow straight into the matrix.
func (e *Engine) Rate(u model.UserID, item model.ItemID, value float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("rating %v: %w", value, ErrNonFiniteValue)
	}
	err := e.mutate(u, &walRecord{Op: walOpRate, User: u, Item: item, Value: value},
		func(m *model.Matrix) { m.Set(u, item, model.ClampRating(value)) })
	if err != nil {
		return err
	}
	e.stats.repairActions.Add(1)
	return nil
}

// RemoveRating withdraws a past rating. On a durable engine whose WAL
// has failed the removal is rejected (not applied); the rejection is
// observable through the WAL metrics, keeping this signature stable
// for the Service interface.
func (e *Engine) RemoveRating(u model.UserID, item model.ItemID) {
	//lint:ignore dropped-error a WAL append failure rejects the mutation without applying it; the failure is counted in WALState and the interface keeps Remove void
	_ = e.mutate(u, &walRecord{Op: walOpRemove, User: u, Item: item},
		func(m *model.Matrix) { m.Delete(u, item) })
	e.stats.repairActions.Add(1)
}

// ImportUserRatings installs a user's full rating set in one snapshot
// generation — the cluster router's migration primitive when a ring
// change moves the user onto this shard engine. Values are clamped
// like Rate; non-finite values are skipped (the accepting router
// already validated them). Unlike Rate it does not count repair
// actions: migration is topology maintenance, not user feedback.
//
// A non-nil error means the import was NOT applied (a durable engine
// whose WAL rejected the append). Migration callers must not evict the
// user from the source shard in that case — doing so would drop the
// ratings from both sides.
func (e *Engine) ImportUserRatings(u model.UserID, ratings map[model.ItemID]float64) error {
	if len(ratings) == 0 {
		return nil
	}
	clean := make(map[model.ItemID]float64, len(ratings))
	for it, v := range ratings {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		clean[it] = v
	}
	return e.mutate(u, &walRecord{Op: walOpImport, User: u, Ratings: clean},
		func(m *model.Matrix) {
			for it, v := range clean {
				m.Set(u, it, model.ClampRating(v))
			}
		})
}

// EvictUser removes every rating of u in one snapshot generation — the
// counterpart of ImportUserRatings on the shard engine the user left.
// Like import, it does not count repair actions.
func (e *Engine) EvictUser(u model.UserID) {
	//lint:ignore dropped-error a WAL append failure rejects the eviction without applying it; the router re-runs evictions on the next rebalance
	_ = e.mutate(u, &walRecord{Op: walOpEvict, User: u},
		func(m *model.Matrix) {
			items := make([]model.ItemID, 0, len(m.UserRatings(u)))
			for it := range m.UserRatings(u) {
				items = append(items, it)
			}
			for _, it := range items {
				m.Delete(u, it)
			}
		})
}

// Opinion applies explicit opinion feedback (Section 5.4). Feedback
// lives outside model snapshots, so this blocks neither other users'
// reads nor writers: it serialises only on u's own feedback entry.
func (e *Engine) Opinion(u model.UserID, op interact.Opinion) error {
	var it *model.Item
	if op.Kind != interact.SurpriseMe {
		var err error
		it, err = e.catalog.Item(op.Item)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	// On a durable engine the opinion is logged first and the ledger
	// updated under writeMu, so a checkpoint cuts matrix and opinion
	// state at the same instant (opinion application is order-sensitive,
	// so the cut must be exact). Logging precedes Apply; should Apply
	// then fail, the logged record is inert — replay's Apply fails
	// identically and is skipped, reproducing this exact state.
	if e.wlog != nil {
		rec := &walRecord{Op: walOpOpinion, User: u, Item: op.Item, Kind: op.Kind, Aspect: op.Aspect}
		e.writeMu.Lock()
		defer e.writeMu.Unlock()
		if err := e.walAppend(rec); err != nil {
			return err
		}
		st := e.users.get(u, e.baseSeed)
		st.mu.Lock()
		err := st.fb.Apply(op, it)
		st.mu.Unlock()
		if err != nil {
			return err
		}
		e.ledgerApply(rec)
		e.stats.repairActions.Add(1)
		e.walMaybeCheckpoint()
		return nil
	}
	st := e.users.get(u, e.baseSeed)
	st.mu.Lock()
	err := st.fb.Apply(op, it)
	st.mu.Unlock()
	if err != nil {
		return err
	}
	e.stats.repairActions.Add(1)
	return nil
}

// ErrNoInfluenceModel is returned by SetInfluenceWeight when the
// engine runs a custom recommender without an editable content model.
var ErrNoInfluenceModel = errors.New("core: no editable influence model configured")

// SetInfluenceWeight adjusts how strongly one of u's past ratings
// influences content-based recommendations — the Figure-3
// functionality the survey imagines ("it can be imagined that this
// functionality could be implemented"). Weight 0 silences the rating,
// 1 is the default. It counts as a repair action.
func (e *Engine) SetInfluenceWeight(u model.UserID, item model.ItemID, weight float64) error {
	if math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("influence weight %v: %w", weight, ErrNonFiniteValue)
	}
	if err := e.applyInfluence(u, item, weight); err != nil {
		return err
	}
	e.stats.repairActions.Add(1)
	return nil
}

// applyInfluence is SetInfluenceWeight's body, shared with WAL replay
// (which bypasses the finiteness check and usage counters — the record
// was validated when accepted).
func (e *Engine) applyInfluence(u model.UserID, item model.ItemID, weight float64) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.snap.Load()
	if !cur.editable || cur.bayes == nil {
		return ErrNoInfluenceModel
	}
	if _, err := e.catalog.Item(item); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	rec := &walRecord{Op: walOpInfluence, User: u, Item: item, Value: weight}
	if err := e.walAppend(rec); err != nil {
		return err
	}
	// The matrix is unchanged, so the collaborative and keyword caches
	// carry over whole; only the Bayes model takes the copy-on-write
	// edit and drops u's trained table.
	next := &snapshot{
		ratings:  cur.ratings,
		guard:    cur.guard,
		knn:      cur.knn,
		kw:       cur.kw,
		bayes:    cur.bayes.WithInfluenceWeight(u, item, weight),
		annModel: cur.annModel,
	}
	e.wire(next)
	if e.customExp != nil {
		next.explainer = cur.explainer
	}
	e.snap.Store(next)
	e.ledgerApply(rec)
	e.walMaybeCheckpoint()
	return nil
}

// Metrics returns a snapshot of the engine's usage counters, including
// the per-stage pipeline latencies recorded by the metrics interceptor.
func (e *Engine) Metrics() Stats {
	return Stats{
		Recommendations:    int(e.stats.recommendations.Load()),
		ExplanationsServed: int(e.stats.explanationsServed.Load()),
		WhyLowQueries:      int(e.stats.whyLowQueries.Load()),
		RepairActions:      int(e.stats.repairActions.Load()),
		DegradedServed:     int(e.stats.degradedServed.Load()),
		Stages:             e.stageStats.snapshot(),
		Resilience:         e.resEvents.snapshot(),
	}
}

// Surprise reports the user's current exploration rate — the sliding
// bar of Section 5.4.
func (e *Engine) Surprise(u model.UserID) float64 {
	st := e.users.get(u, e.baseSeed)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fb.Surprise()
}

// ---- per-user interaction state ----

// userState is one user's mutable interaction state: the opinion
// feedback model and the exploration RNG that splices surprise picks.
// Both are guarded by mu; contention is strictly per-user.
type userState struct {
	mu  sync.Mutex
	fb  *interact.FeedbackModel
	rnd *rng.RNG
}

// rerank applies the user's feedback model (and exploration RNG) to a
// prediction list under the user's own lock.
func (st *userState) rerank(cat *model.Catalog, preds []recsys.Prediction) []recsys.Prediction {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fb.Rerank(cat, preds, st.rnd)
}

// userShards is the stripe count of the per-user state map; 64 keeps
// map-lookup contention negligible at realistic core counts.
const userShards = 64

type userShard struct {
	mu sync.RWMutex
	m  map[model.UserID]*userState
}

// userStates is a sharded lazy map of userState keyed by user ID.
type userStates struct {
	shards [userShards]userShard
}

func (us *userStates) init() {
	for i := range us.shards {
		us.shards[i].m = make(map[model.UserID]*userState)
	}
}

// get returns u's state, creating it on first use with an exploration
// RNG derived deterministically from the engine seed and the user ID.
func (us *userStates) get(u model.UserID, seed uint64) *userState {
	h := uint64(int64(u)) * 0x9E3779B97F4A7C15
	sh := &us.shards[(h>>32)%userShards]
	sh.mu.RLock()
	st := sh.m[u]
	sh.mu.RUnlock()
	if st != nil {
		return st
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st = sh.m[u]; st == nil {
		st = &userState{
			fb:  interact.NewFeedbackModel(),
			rnd: rng.New(seed ^ h),
		}
		sh.m[u] = st
	}
	return st
}
