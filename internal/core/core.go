// Package core is the public face of the library: an Engine that wires
// a recommender, an explanation engine, presentation modes,
// personality and per-user feedback into the explain-present-interact
// cycle the survey describes ("explanations should be part of a cycle,
// where the user understands what is going on in the system and exerts
// control over the type of recommendations made").
//
// A downstream application typically does:
//
//	eng, err := core.New(catalog, ratings)
//	view, err := eng.Recommend(userID, 10)     // explained top-N
//	why, err := eng.Explain(userID, itemID)    // on-demand justification
//	eng.Rate(userID, itemID, 4.5)              // rating feedback
//	eng.Opinion(userID, interact.Opinion{...}) // opinion feedback
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/explain"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/content"
	"repro/internal/recsys/hybrid"
	"repro/internal/rng"
)

// Engine is a configured explanation-capable recommender. It is safe
// for concurrent use: operations serialise on an internal mutex (the
// recommenders cache similarity computations lazily, so even reads
// mutate state).
type Engine struct {
	mu      sync.Mutex
	catalog *model.Catalog
	ratings *model.Matrix

	rec         recsys.Recommender
	explainer   explain.Explainer
	low         present.LowExplainer
	personality present.Personality
	rnd         *rng.RNG

	// feedback holds per-user opinion state (Section 5.4).
	feedback map[model.UserID]*interact.FeedbackModel

	// bayes is the default content model, retained so influence
	// weights can be edited; nil when a custom recommender was
	// installed.
	bayes *content.Bayes

	stats Stats
}

// Stats are the engine's usage counters. The survey's Section 3 lists
// exactly these as indirect measures: explanations inspected, repair
// actions activated (re-ratings, opinions), interactions per session.
type Stats struct {
	Recommendations    int // Recommend calls served
	ExplanationsServed int // explanations attached or fetched on demand
	WhyLowQueries      int // "why is this low?" scrutiny
	RepairActions      int // ratings changed/removed + opinions applied
}

// Option configures an Engine.
type Option func(*Engine)

// WithRecommender replaces the default hybrid recommender.
func WithRecommender(r recsys.Recommender) Option {
	return func(e *Engine) { e.rec = r }
}

// WithExplainer replaces the default explainer.
func WithExplainer(x explain.Explainer) Option {
	return func(e *Engine) { e.explainer = x }
}

// WithPersonality sets the recommender personality (Section 4.6).
// Non-neutral personalities disclose themselves in explanations.
func WithPersonality(p present.Personality) Option {
	return func(e *Engine) { e.personality = p }
}

// WithSeed seeds the engine's exploration randomness (surprise-me
// picks). Engines with equal seeds behave identically.
func WithSeed(seed uint64) Option {
	return func(e *Engine) { e.rnd = rng.New(seed) }
}

// New builds an Engine over a catalogue and rating matrix. The default
// configuration is a weighted hybrid of user-based collaborative
// filtering and a naive-Bayes content model, explained by whichever
// source dominates each prediction — collaborative evidence gets a
// neighbour histogram, content evidence an influence report.
func New(cat *model.Catalog, ratings *model.Matrix, opts ...Option) (*Engine, error) {
	if cat == nil || cat.Len() == 0 {
		return nil, errors.New("core: empty catalogue")
	}
	if ratings == nil {
		return nil, errors.New("core: nil rating matrix")
	}
	e := &Engine{
		catalog:  cat,
		ratings:  ratings,
		rnd:      rng.New(1),
		feedback: map[model.UserID]*interact.FeedbackModel{},
	}
	knn := cf.NewUserKNN(ratings, cat, cf.Options{})
	bayes := content.NewBayes(ratings, cat)
	e.bayes = bayes
	kw := content.NewKeywordRecommender(ratings, cat)
	h := hybrid.New(cat,
		hybrid.Source{Name: "collaborative", Weight: 2, Predictor: knn},
		hybrid.Source{Name: "content", Weight: 1, Predictor: bayes},
	)
	e.rec = h
	hx := explain.NewHybridExplainer(h, map[string]explain.Explainer{
		"collaborative": explain.NewHistogramExplainer(knn),
		"content":       explain.NewInfluenceExplainer(bayes, cat),
	})
	hx.Fallback = explain.NewProfileExplainer(kw)
	e.explainer = hx
	e.low = explain.NewProfileExplainer(kw)
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Catalog returns the engine's catalogue.
func (e *Engine) Catalog() *model.Catalog { return e.catalog }

// Ratings returns the engine's rating matrix.
func (e *Engine) Ratings() *model.Matrix { return e.ratings }

// feedbackFor lazily creates the per-user feedback model.
func (e *Engine) feedbackFor(u model.UserID) *interact.FeedbackModel {
	fb, ok := e.feedback[u]
	if !ok {
		fb = interact.NewFeedbackModel()
		e.feedback[u] = fb
	}
	return fb
}

// Recommend returns an explained top-n presentation for u: base
// predictions, personality adjustment, opinion-feedback re-ranking,
// then explanation of each surviving entry.
func (e *Engine) Recommend(u model.UserID, n int) (*present.Presentation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n <= 0 {
		return nil, fmt.Errorf("core: n must be positive, got %d", n)
	}
	// Rank a wide pool so personality and feedback have room to work.
	pool := n * 4
	if pool < 20 {
		pool = 20
	}
	preds := e.rec.Recommend(u, pool, recsys.ExcludeRated(e.ratings, u))
	if len(preds) == 0 {
		return nil, fmt.Errorf("user %d: %w", u, recsys.ErrColdStart)
	}
	e.stats.Recommendations++
	preds = e.personality.Apply(e.catalog, preds)
	preds = e.feedbackFor(u).Rerank(e.catalog, preds, e.rnd)
	preds = recsys.TopN(preds, n)
	p := &present.Presentation{Title: fmt.Sprintf("Top %d for you", len(preds))}
	for _, pr := range preds {
		it, err := e.catalog.Item(pr.Item)
		if err != nil {
			continue
		}
		var exp *explain.Explanation
		if got, err := e.explainer.Explain(u, it); err == nil {
			exp = e.personality.Decorate(got)
			e.stats.ExplanationsServed++
		}
		p.Entries = append(p.Entries, present.Entry{Item: it, Prediction: pr, Explanation: exp})
	}
	return p, nil
}

// Explain justifies recommending item to u on demand.
func (e *Engine) Explain(u model.UserID, item model.ItemID) (*explain.Explanation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, err := e.catalog.Item(item)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	exp, err := e.explainer.Explain(u, it)
	if err != nil {
		return nil, err
	}
	e.stats.ExplanationsServed++
	return e.personality.Decorate(exp), nil
}

// WhyLow answers "why is this item predicted low for me?" — the
// scrutability entry point of Section 4.4.
func (e *Engine) WhyLow(u model.UserID, item model.ItemID) (*explain.Explanation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, err := e.catalog.Item(item)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	exp, err := e.low.ExplainLow(u, it)
	if err != nil {
		return nil, err
	}
	e.stats.WhyLowQueries++
	return exp, nil
}

// BrowseAll returns the predicted-ratings-for-everything view of
// Section 4.4.
func (e *Engine) BrowseAll(u model.UserID) *present.RatingsView {
	e.mu.Lock()
	defer e.mu.Unlock()
	return present.PredictedRatings(e.catalog, e.rec, e.low, u)
}

// SimilarTo presents items similar to a seed item (Section 4.3).
func (e *Engine) SimilarTo(u model.UserID, seed model.ItemID, n int) (*present.Presentation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, err := e.catalog.Item(seed)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return present.SimilarToTop(e.catalog, it, n, recsys.ExcludeRated(e.ratings, u)), nil
}

// Rate records (or corrects) a rating — Section 5.3 interaction. The
// next Recommend call reflects it immediately, closing the
// scrutability cycle.
func (e *Engine) Rate(u model.UserID, item model.ItemID, value float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ratings.Set(u, item, model.ClampRating(value))
	e.stats.RepairActions++
}

// RemoveRating withdraws a past rating.
func (e *Engine) RemoveRating(u model.UserID, item model.ItemID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ratings.Delete(u, item)
	e.stats.RepairActions++
}

// Opinion applies explicit opinion feedback (Section 5.4).
func (e *Engine) Opinion(u model.UserID, op interact.Opinion) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var it *model.Item
	if op.Kind != interact.SurpriseMe {
		var err error
		it, err = e.catalog.Item(op.Item)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if err := e.feedbackFor(u).Apply(op, it); err != nil {
		return err
	}
	e.stats.RepairActions++
	return nil
}

// ErrNoInfluenceModel is returned by SetInfluenceWeight when the
// engine runs a custom recommender without an editable content model.
var ErrNoInfluenceModel = errors.New("core: no editable influence model configured")

// SetInfluenceWeight adjusts how strongly one of u's past ratings
// influences content-based recommendations — the Figure-3
// functionality the survey imagines ("it can be imagined that this
// functionality could be implemented"). Weight 0 silences the rating,
// 1 is the default. It counts as a repair action.
func (e *Engine) SetInfluenceWeight(u model.UserID, item model.ItemID, weight float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bayes == nil {
		return ErrNoInfluenceModel
	}
	if _, err := e.catalog.Item(item); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	e.bayes.SetInfluenceWeight(u, item, weight)
	e.stats.RepairActions++
	return nil
}

// Metrics returns a snapshot of the engine's usage counters.
func (e *Engine) Metrics() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Surprise reports the user's current exploration rate — the sliding
// bar of Section 5.4.
func (e *Engine) Surprise(u model.UserID) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.feedbackFor(u).Surprise()
}
