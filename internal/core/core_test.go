package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/store"
)

func engine(t testing.TB, opts ...Option) (*dataset.Community, *Engine) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 401, Users: 60, Items: 80, RatingsPerUser: 20})
	e, err := New(c.Catalog, c.Ratings, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, model.NewMatrix()); err == nil {
		t.Fatal("nil catalogue accepted")
	}
	if _, err := New(model.NewCatalog("x"), model.NewMatrix()); err == nil {
		t.Fatal("empty catalogue accepted")
	}
	cat := model.NewCatalog("x")
	cat.MustAdd(&model.Item{ID: 1})
	if _, err := New(cat, nil); err == nil {
		t.Fatal("nil matrix accepted")
	}
}

func TestRecommendExplainedTopN(t *testing.T) {
	c, e := engine(t)
	p, err := e.Recommend(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != 5 {
		t.Fatalf("entries = %d", len(p.Entries))
	}
	var explained int
	for _, entry := range p.Entries {
		if _, rated := c.Ratings.Get(1, entry.Item.ID); rated {
			t.Fatalf("recommended already-rated item %d", entry.Item.ID)
		}
		if entry.Explanation != nil {
			explained++
			if entry.Explanation.Text == "" {
				t.Fatal("empty explanation text")
			}
		}
	}
	if explained == 0 {
		t.Fatal("no recommendations were explained")
	}
	if _, err := e.Recommend(1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := e.Recommend(9999, 5); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("cold start err = %v", err)
	}
}

func TestExplainOnDemand(t *testing.T) {
	_, e := engine(t)
	p, err := e.Recommend(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := e.Explain(2, p.Entries[0].Item.ID)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Text == "" || !exp.Faithful {
		t.Fatalf("explanation = %+v", exp)
	}
	if _, err := e.Explain(2, 99999); err == nil {
		t.Fatal("unknown item accepted")
	}
}

func TestRatingFeedbackChangesRecommendations(t *testing.T) {
	// The scrutability cycle: corrections must visibly steer the
	// system. Rate the current top item with 1 star; it must vanish
	// (it is now rated, hence excluded), and the matrix must hold the
	// correction.
	_, e := engine(t)
	before, err := e.Recommend(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := before.Entries[0].Item.ID
	e.Rate(3, top, 1)
	if v, ok := e.Ratings().Get(3, top); !ok || v != 1 {
		t.Fatalf("rating not stored: %v %v", v, ok)
	}
	after, err := e.Recommend(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range after.Entries {
		if entry.Item.ID == top {
			t.Fatal("rated item still recommended")
		}
	}
	e.RemoveRating(3, top)
	if _, ok := e.Ratings().Get(3, top); ok {
		t.Fatal("rating not removed")
	}
}

func TestOpinionFeedback(t *testing.T) {
	_, e := engine(t)
	p, err := e.Recommend(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	blocked := p.Entries[0].Item.ID
	if err := e.Opinion(4, interact.Opinion{Kind: interact.NoMoreLikeThis, Item: blocked}); err != nil {
		t.Fatal(err)
	}
	after, err := e.Recommend(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range after.Entries {
		if entry.Item.ID == blocked {
			t.Fatal("blocked item still recommended")
		}
	}
	// Surprise-me moves the slider.
	if e.Surprise(4) != 0 {
		t.Fatal("fresh surprise rate should be 0")
	}
	if err := e.Opinion(4, interact.Opinion{Kind: interact.SurpriseMe}); err != nil {
		t.Fatal(err)
	}
	if e.Surprise(4) != 0.25 {
		t.Fatalf("surprise = %v", e.Surprise(4))
	}
	// Unknown item rejected.
	if err := e.Opinion(4, interact.Opinion{Kind: interact.MoreLikeThis, Item: 99999}); err == nil {
		t.Fatal("unknown item accepted")
	}
}

func TestBrowseAllAndWhyLow(t *testing.T) {
	c, e := engine(t)
	v := e.BrowseAll(5)
	if len(v.Entries) == 0 {
		t.Fatal("browse view empty")
	}
	if len(v.Entries)+len(v.Unrated()) != c.Catalog.Len() {
		t.Fatal("browse view incomplete")
	}
	lowest := v.Entries[len(v.Entries)-1].Item
	if exp, err := e.WhyLow(5, lowest.ID); err == nil {
		if !strings.Contains(exp.Text, "do not seem to like") {
			t.Fatalf("WhyLow text = %q", exp.Text)
		}
	} else if !errors.Is(err, explain.ErrNoEvidence) {
		t.Fatalf("WhyLow err = %v", err)
	}
}

func TestSimilarTo(t *testing.T) {
	c, e := engine(t)
	seed := c.Catalog.Items()[0]
	p, err := e.SimilarTo(6, seed.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range p.Entries {
		if entry.Item.ID == seed.ID {
			t.Fatal("seed item recommended as similar to itself")
		}
	}
	if _, err := e.SimilarTo(6, 99999, 3); err == nil {
		t.Fatal("unknown seed accepted")
	}
}

func TestPersonalityOption(t *testing.T) {
	_, frank := engine(t, WithPersonality(present.Frank))
	p, err := frank.Recommend(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, entry := range p.Entries {
		if entry.Explanation != nil &&
			(strings.Contains(entry.Explanation.Text, "confident") ||
				strings.Contains(entry.Explanation.Text, "long shot")) {
			found = true
		}
	}
	if !found {
		t.Fatal("frank personality did not disclose confidence")
	}
}

func TestWithSeedDeterministic(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 402, Users: 40, Items: 60, RatingsPerUser: 15})
	run := func() string {
		e, err := New(c.Catalog, c.Ratings.Clone(), WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		_ = e.Opinion(1, interact.Opinion{Kind: interact.SurpriseMe})
		p, err := e.Recommend(1, 5)
		if err != nil {
			t.Fatal(err)
		}
		return p.Render()
	}
	if run() != run() {
		t.Fatal("seeded engines diverged")
	}
}

func TestWithRecommenderAndExplainerOptions(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 403, Users: 30, Items: 40, RatingsPerUser: 12})
	fixed := stubRecommender{item: c.Catalog.Items()[0].ID}
	e, err := New(c.Catalog, c.Ratings, WithRecommender(fixed), WithExplainer(stubExplainer{}))
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Recommend(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entries[0].Explanation.Text != "stub explanation" {
		t.Fatalf("custom explainer not used: %+v", p.Entries[0].Explanation)
	}
}

type stubRecommender struct{ item model.ItemID }

func (s stubRecommender) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	return recsys.Prediction{Item: i, Score: 4, Confidence: 1}, nil
}

func (s stubRecommender) Recommend(u model.UserID, n int, exclude func(model.ItemID) bool) []recsys.Prediction {
	return []recsys.Prediction{{Item: s.item, Score: 4, Confidence: 1}}
}

type stubExplainer struct{}

func (stubExplainer) Explain(model.UserID, *model.Item) (*explain.Explanation, error) {
	return &explain.Explanation{Text: "stub explanation", Faithful: true}, nil
}

func (stubExplainer) Style() explain.Style { return explain.PreferenceBased }

func TestEngineSurvivesStoreRoundTrip(t *testing.T) {
	// Persisting a community and rebuilding the engine from the files
	// must reproduce the exact recommendations — the store's sorted
	// replay keeps even the floating-point state identical.
	c := dataset.Movies(dataset.Config{Seed: 404, Users: 50, Items: 70, RatingsPerUser: 18})
	orig, err := New(c.Catalog, c.Ratings, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := orig.Recommend(5, 5)
	if err != nil {
		t.Fatal(err)
	}

	var catBuf, matBuf bytes.Buffer
	if err := store.SaveCatalog(&catBuf, c.Catalog); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveMatrix(&matBuf, c.Ratings); err != nil {
		t.Fatal(err)
	}
	cat2, err := store.LoadCatalog(&catBuf)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := store.LoadMatrix(&matBuf)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := New(cat2, m2, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := reloaded.Recommend(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Fatalf("recommendations differ after store round trip:\n--- want\n%s\n--- got\n%s",
			want.Render(), got.Render())
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	// The Engine promises safe concurrent use; hammer it from several
	// goroutines (run with -race in CI).
	_, e := engine(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := model.UserID(g%5 + 1)
			for i := 0; i < 10; i++ {
				_, _ = e.Recommend(u, 3)
				_, _ = e.Explain(u, model.ItemID(i%20+1))
				e.Rate(u, model.ItemID(i%20+1), float64(i%5)+1)
				_ = e.Opinion(u, interact.Opinion{Kind: interact.SurpriseMe})
			}
		}(g)
	}
	wg.Wait()
}

func TestEngineMetrics(t *testing.T) {
	_, e := engine(t)
	if m := e.Metrics(); m.Recommendations != 0 || m.ExplanationsServed != 0 ||
		m.WhyLowQueries != 0 || m.RepairActions != 0 || len(m.Stages) != 0 {
		t.Fatalf("fresh stats = %+v", m)
	}
	p, err := e.Recommend(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	e.Rate(1, p.Entries[0].Item.ID, 2)
	_ = e.Opinion(1, interact.Opinion{Kind: interact.SurpriseMe})
	m := e.Metrics()
	if m.Recommendations != 1 {
		t.Fatalf("recommendations = %d", m.Recommendations)
	}
	if m.ExplanationsServed == 0 {
		t.Fatal("no explanations counted")
	}
	if m.RepairActions != 2 {
		t.Fatalf("repair actions = %d", m.RepairActions)
	}
}

func TestEngineInfluenceEditing(t *testing.T) {
	c, e := engine(t)
	u := model.UserID(1)
	var rated model.ItemID
	for i := range c.Ratings.UserRatings(u) {
		if rated == 0 || i < rated {
			rated = i
		}
	}
	if err := e.SetInfluenceWeight(u, rated, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.SetInfluenceWeight(u, 99999, 1); err == nil {
		t.Fatal("unknown item accepted")
	}
	// With a custom recommender there is no editable content model.
	custom, err := New(c.Catalog, c.Ratings, WithRecommender(stubRecommender{item: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := custom.SetInfluenceWeight(u, rated, 0.5); !errors.Is(err, ErrNoInfluenceModel) {
		t.Fatalf("err = %v", err)
	}
}

// TestRateRejectsNonFinite: a poisoned rating must never enter the
// copy-on-write matrix.
func TestRateRejectsNonFinite(t *testing.T) {
	_, e := engine(t)
	before := e.Ratings()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := e.Rate(1, 1, v); !errors.Is(err, ErrNonFiniteValue) {
			t.Errorf("Rate(%v) err = %v, want ErrNonFiniteValue", v, err)
		}
	}
	if e.Ratings() != before {
		t.Fatal("rejected rating still published a new snapshot")
	}
	if m := e.Metrics(); m.RepairActions != 0 {
		t.Fatalf("rejected ratings counted as repair actions: %d", m.RepairActions)
	}
	if err := e.Rate(1, 1, 4); err != nil {
		t.Fatalf("finite rating rejected: %v", err)
	}
}

// TestSetInfluenceWeightRejectsNonFinite mirrors the rating check for
// the Figure-3 influence control.
func TestSetInfluenceWeightRejectsNonFinite(t *testing.T) {
	_, e := engine(t)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := e.SetInfluenceWeight(1, 1, v); !errors.Is(err, ErrNonFiniteValue) {
			t.Errorf("SetInfluenceWeight(%v) err = %v, want ErrNonFiniteValue", v, err)
		}
	}
}

// TestStageMetricsRecorded drives each read operation once and checks
// the per-stage counters the metrics interceptor collected.
func TestStageMetricsRecorded(t *testing.T) {
	c, e := engine(t)
	if _, err := e.Recommend(1, 3); err != nil {
		t.Fatal(err)
	}
	item := c.Catalog.Items()[0].ID
	_, _ = e.Explain(1, item)
	_, _ = e.WhyLow(1, item)
	_ = e.BrowseAll(1)
	_, _ = e.SimilarTo(1, item, 3)

	stages := e.Metrics().Stages
	for _, key := range []string{
		"recommend/rank", "recommend/rerank", "recommend/explainTopN", "recommend/present",
		"explain/resolve", "explain/explain", "explain/present",
		"whylow/resolve", "whylow/explainLow", "whylow/present",
		"browse/present",
		"similar/resolve", "similar/present",
	} {
		st, ok := stages[key]
		if !ok {
			t.Errorf("stage %q not recorded: %v", key, stages)
			continue
		}
		if st.Invocations == 0 {
			t.Errorf("stage %q has zero invocations", key)
		}
	}
	if st := stages["recommend/rank"]; st.Latency <= 0 {
		t.Errorf("recommend/rank latency = %v, want > 0", st.Latency)
	}
	// Errors are counted: an unknown item fails the resolve stage.
	_, _ = e.Explain(1, 99999)
	if st := e.Metrics().Stages["explain/resolve"]; st.Errors != 1 {
		t.Errorf("explain/resolve errors = %d, want 1", st.Errors)
	}
}

// panicExplainer blows up on every call, standing in for a buggy
// custom component.
type panicExplainer struct{}

func (panicExplainer) Explain(u model.UserID, item *model.Item) (*explain.Explanation, error) {
	panic("buggy explainer")
}

func (panicExplainer) Style() explain.Style { return explain.PreferenceBased }

// TestStagePanicBecomesError: a panicking stage must surface as an
// error, not kill the serving goroutine.
func TestStagePanicBecomesError(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 401, Users: 60, Items: 80, RatingsPerUser: 20})
	e, err := New(c.Catalog, c.Ratings, WithExplainer(panicExplainer{}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Explain(1, c.Catalog.Items()[0].ID)
	var pe *pipeline.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *pipeline.PanicError", err)
	}
	if pe.Pipeline != "explain" || pe.Stage != "explain" {
		t.Fatalf("panic located at %s/%s", pe.Pipeline, pe.Stage)
	}
	if st := e.Metrics().Stages["explain/explain"]; st.Errors != 1 {
		t.Fatalf("recovered panic not counted as stage error: %+v", st)
	}
	// The engine still serves.
	if _, err := e.Recommend(1, 3); err == nil {
		t.Fatal("recommend should also hit the panicking explainer via explainTopN")
	}
}

// TestWithInterceptorWrapsOutsideStock: custom interceptors see every
// stage and run outside the stock chain.
func TestWithInterceptorWrapsOutsideStock(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	trace := func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			mu.Lock()
			seen = append(seen, info.Pipeline+"/"+info.Stage)
			mu.Unlock()
			return next(ctx, req)
		}
	}
	_, e := engine(t, WithInterceptor(trace))
	if _, err := e.Recommend(1, 3); err != nil {
		t.Fatal(err)
	}
	want := []string{"recommend/rank", "recommend/rerank", "recommend/explainTopN", "recommend/present"}
	if strings.Join(seen, ",") != strings.Join(want, ",") {
		t.Fatalf("custom interceptor saw %v, want %v", seen, want)
	}
	// A cancelled context is refused by the stock Deadline interceptor
	// inside the custom one, so the custom trace still observes the
	// stage attempt.
	seen = nil
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RecommendContext(ctx, 1, 3); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if len(seen) != 1 || seen[0] != "recommend/rank" {
		t.Fatalf("custom interceptor on dead context saw %v", seen)
	}
}
