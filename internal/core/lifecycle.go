// The versioned model lifecycle: an Engine configured with WithTrainer
// serves a trained model published through an immutable artifact store
// (internal/modelstore) instead of the default hybrid stack. Training
// runs off-snapshot — in New synchronously, afterwards in a background
// goroutine triggered deterministically every RetrainEvery writes or
// explicitly via Retrain — and the finished model is swapped in with a
// single snapshot publish, so concurrent reads never block on, or
// observe, a half-trained model. Writes that land while a training run
// is in flight are folded into the fresh model at swap time through
// the recsys.MatrixRebinder seam, so the swap never loses data the
// readers already saw.

package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/modelstore"
	"repro/internal/present"
	"repro/internal/recsys"
	"sync/atomic"
)

// TrainerConfig configures the versioned model lifecycle installed
// with WithTrainer.
type TrainerConfig struct {
	// Trainer produces the serving model. Required.
	Trainer recsys.ModelTrainer
	// RetrainEvery triggers a background retrain after every
	// RetrainEvery-th write (counted in snapshot generations, so the
	// trigger is deterministic in the write sequence). 0 disables the
	// write trigger; Retrain remains available.
	RetrainEvery int
	// History is the artifact-store ring depth (serving generation
	// included); values below 1 select modelstore.DefaultHistory.
	History int
	// Clock, when non-nil, times training runs for ModelsState and
	// metrics. Nil keeps the engine clockless (durations read as 0);
	// tests inject a fake, recserver injects time.Now.
	Clock func() time.Time
	// RetrainInterval, when positive, retrains on the clock as well: a
	// background loop triggers a retrain every interval even when no
	// writes land, so long-lived engines pick up model improvements
	// (regularisation of drifted fold-ins, fresh item factors) without
	// waiting for traffic. Scheduled triggers share the single-flight
	// gate with write-triggered and explicit retrains.
	RetrainInterval time.Duration
	// RetrainTicks, when non-nil, replaces the interval ticker as the
	// scheduled-trigger source — the injectable-clock seam for tests
	// (send on the channel, observe a retrain). RetrainInterval may be
	// zero when RetrainTicks is set.
	RetrainTicks <-chan time.Time
	// ArtifactPath, when non-empty, persists every published model to
	// this file (atomic replace via modelstore.SaveArtifact) and
	// warm-starts from it at construction: when the file holds an
	// artifact produced by the same trainer, New serves it — at its
	// persisted version — instead of training from scratch. Requires
	// EncodeModel and DecodeModel.
	ArtifactPath string
	// EncodeModel serializes the serving model for persistence (for mf
	// trainers: mf.EncodeModel). Required with ArtifactPath.
	EncodeModel func(recsys.Recommender) ([]byte, error)
	// DecodeModel rebuilds a model from persisted bytes (for mf
	// trainers: mf.DecodeModel(cat)). Required with ArtifactPath.
	DecodeModel func([]byte) (recsys.Recommender, error)
}

// WithTrainer installs a versioned model lifecycle: cfg.Trainer is run
// synchronously for the initial model, then re-run in the background
// (every cfg.RetrainEvery writes, or on Retrain) with the finished
// model atomically swapped into the serving snapshot. Conflicts with
// WithRecommender — an engine serves either a fixed recommender or a
// trainer-managed one, not both.
func WithTrainer(cfg TrainerConfig) Option {
	return func(e *Engine) { e.trainerCfg = &cfg }
}

// ErrNoTrainer is returned by lifecycle operations on an engine built
// without WithTrainer.
var ErrNoTrainer = errors.New("core: no trainer configured")

// ErrTrainInProgress is returned by Retrain when a training run is
// already in flight; the engine trains at most one model at a time.
var ErrTrainInProgress = errors.New("core: a training run is already in flight")

// lifecycle is the engine's training/publishing machinery. The store
// and the atomic counters are safe for concurrent use; dataRev,
// trainedRev and touched are guarded by Engine.writeMu.
type lifecycle struct {
	trainer         recsys.ModelTrainer
	retrainEvery    int
	retrainInterval time.Duration
	clock           func() time.Time
	store           *modelstore.Store[recsys.Recommender]

	// Artifact persistence (zero-valued when TrainerConfig.ArtifactPath
	// is empty). warmStarted is written once during New, before the
	// engine is shared, and only read afterwards.
	artifactPath string
	encode       func(recsys.Recommender) ([]byte, error)
	decode       func([]byte) (recsys.Recommender, error)
	warmStarted  bool

	// training is the single-flight gate: CompareAndSwap(false, true)
	// admits exactly one training run at a time.
	training atomic.Bool

	// dataRev counts snapshot-publishing writes; trainedRev is dataRev
	// as of the last swapped-in model; touched maps users to the
	// revision of their last write, so a swap knows which users raced
	// the training run and must be folded in. All guarded by writeMu.
	dataRev    uint64
	trainedRev uint64
	touched    map[model.UserID]uint64

	trainsStarted      atomic.Int64
	trainsCompleted    atomic.Int64
	trainsFailed       atomic.Int64
	scheduledRetrains  atomic.Int64 // clock-triggered retrain attempts
	foldIns            atomic.Int64 // write-path fold-ins (RebindMatrix on mutate)
	swapFoldIns        atomic.Int64 // swap-time fold-ins of raced writes
	lastTrainNanos     atomic.Int64
	trainNanosTotal    atomic.Int64
	artifactsPersisted atomic.Int64
	persistErrors      atomic.Int64
}

func newLifecycle(cfg TrainerConfig) *lifecycle {
	return &lifecycle{
		trainer:         cfg.Trainer,
		retrainEvery:    cfg.RetrainEvery,
		retrainInterval: cfg.RetrainInterval,
		clock:           cfg.Clock,
		store:           modelstore.New[recsys.Recommender](cfg.History),
		artifactPath:    cfg.ArtifactPath,
		encode:          cfg.EncodeModel,
		decode:          cfg.DecodeModel,
		touched:         map[model.UserID]uint64{},
	}
}

// persist writes a to the configured artifact path, best-effort: the
// publish already happened and readers are being served from it, so a
// persistence failure must not unwind the train — it is counted for
// ModelsState/metrics and the next publish retries the path.
func (lc *lifecycle) persist(a *modelstore.Artifact[recsys.Recommender]) {
	if lc.artifactPath == "" || lc.encode == nil {
		return
	}
	if err := modelstore.SaveArtifact(lc.artifactPath, a, lc.encode); err != nil {
		lc.persistErrors.Add(1)
		return
	}
	lc.artifactsPersisted.Add(1)
}

// warmStart tries to serve the persisted artifact instead of paying
// the initial train. It declines (returns false, leaving the caller to
// cold-train) when no usable artifact exists: no path configured,
// missing/corrupt file, a different trainer's model, a checksum that
// no longer matches the payload, an artifact older than the model the
// WAL checkpoint was written against, or post-artifact writes that the
// model cannot fold in. Runs during New, before the engine is shared.
func (e *Engine) warmStart(s *snapshot) bool {
	lc := e.lc
	if lc.artifactPath == "" || lc.decode == nil {
		return false
	}
	art, err := modelstore.LoadArtifact(lc.artifactPath, lc.decode)
	if err != nil {
		return false
	}
	if art.Trainer != lc.trainer.Name() {
		return false
	}
	if sum := checksumOf(art.Model); sum != art.Checksum {
		return false
	}
	// trainedRev was restored from the WAL checkpoint: the revision the
	// model serving at checkpoint time covered. When it is ahead of the
	// artifact on disk (an earlier persist failed, leaving an older
	// file), the writes between the two watermarks are unattributable —
	// decline and retrain rather than serve silently stale vectors.
	if lc.trainedRev > art.DataRev {
		return false
	}
	rec := art.Model
	// Fold in every user written after the artifact was trained. The
	// per-user revisions cover both replayed WAL tail records and
	// writes an earlier checkpoint already materialised, so the fold
	// set is exactly the users a live process would have folded on the
	// mutate path. A model that cannot fold declines the warm start
	// rather than serve stale vectors.
	var users []model.UserID
	for u, rev := range lc.touched {
		if rev > art.DataRev {
			users = append(users, u)
		}
	}
	if len(users) > 0 {
		rb, ok := rec.(recsys.MatrixRebinder)
		if !ok {
			return false
		}
		sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
		rec = rb.RebindMatrix(s.ratings, users...)
		lc.foldIns.Add(int64(len(users)))
		art = &modelstore.Artifact[recsys.Recommender]{
			Version:  art.Version,
			Trainer:  art.Trainer,
			DataRev:  lc.dataRev,
			Checksum: checksumOf(rec),
			Model:    rec,
		}
	}
	if err := lc.store.Restore(art); err != nil {
		return false
	}
	if len(users) > 0 {
		// Re-persist at the folded revision so the on-disk watermark
		// matches the WAL's and the next restart need not re-fold.
		lc.persist(art)
	}
	e.groundModel(s, rec, art.Version)
	s.annModel = e.buildModelANN(rec)
	lc.warmStarted = true
	return true
}

// selfExplaining is the seam a lifecycle-served model exposes to have
// its explanations grounded in the model itself (e.g. mf factor
// overlap) rather than the default substrate.
type selfExplaining interface{ Explainer() explain.Explainer }

// checksummed is probed at publish time so artifacts of models that
// can digest themselves (e.g. *mf.Model) carry a provenance checksum.
type checksummed interface{ Checksum() uint64 }

func checksumOf(rec recsys.Recommender) uint64 {
	if c, ok := rec.(checksummed); ok {
		return c.Checksum()
	}
	return 0
}

// groundModel installs a lifecycle-served model into a snapshot:
// serving recommender, model version, and — unless a custom explainer
// overrides it — the model's own explainer (which also answers why-low
// questions when it can).
func (e *Engine) groundModel(s *snapshot, rec recsys.Recommender, version uint64) {
	s.rec = rec
	s.modelVersion = version
	s.editable = false
	if e.customExp != nil {
		return
	}
	if se, ok := rec.(selfExplaining); ok {
		x := se.Explainer()
		s.explainer = x
		if le, ok := x.(present.LowExplainer); ok {
			s.low = le
		}
	}
}

// servingSnapshot builds the next snapshot generation for a model swap:
// same matrix and substrate as cur, new serving model and version.
func (e *Engine) servingSnapshot(cur *snapshot, rec recsys.Recommender, version uint64) *snapshot {
	s := &snapshot{
		ratings:   cur.ratings,
		guard:     cur.guard,
		knn:       cur.knn,
		bayes:     cur.bayes,
		kw:        cur.kw,
		low:       cur.low,
		degraded:  cur.degraded,
		explainer: cur.explainer,
	}
	e.groundModel(s, rec, version)
	return s
}

// safeTrain runs the trainer, converting a panic or a nil model into
// an error so a background retrain can never take the process down.
func safeTrain(t recsys.ModelTrainer, m *model.Matrix, cat *model.Catalog) (rec recsys.Recommender, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: trainer %q panicked: %v", t.Name(), r)
		}
	}()
	rec = t.Train(m, cat)
	if rec == nil {
		return nil, fmt.Errorf("core: trainer %q returned a nil model", t.Name())
	}
	return rec, nil
}

// initialTrain runs the synchronous first training in New and grounds
// the result in the initial snapshot.
func (e *Engine) initialTrain(s *snapshot) error {
	lc := e.lc
	lc.trainsStarted.Add(1)
	rec, d, err := lc.timedTrain(s.ratings, e.catalog)
	if err != nil {
		lc.trainsFailed.Add(1)
		return err
	}
	lc.recordTrain(d)
	// Publish at the post-recovery data revision (0 on a fresh engine):
	// the train saw every replayed write, so the artifact's watermark
	// must say so — a later warm start compares it against the WAL
	// checkpoint's watermarks to pick its fold set.
	art := lc.store.Publish(lc.trainer.Name(), lc.dataRev, checksumOf(rec), rec)
	lc.persist(art)
	e.groundModel(s, rec, art.Version)
	s.annModel = e.buildModelANN(rec)
	lc.trainsCompleted.Add(1)
	return nil
}

// timedTrain runs safeTrain under the injected clock (if any).
func (lc *lifecycle) timedTrain(m *model.Matrix, cat *model.Catalog) (recsys.Recommender, time.Duration, error) {
	var start time.Time
	if lc.clock != nil {
		start = lc.clock()
	}
	rec, err := safeTrain(lc.trainer, m, cat)
	var d time.Duration
	if err == nil && lc.clock != nil {
		d = lc.clock().Sub(start)
	}
	return rec, d, err
}

func (lc *lifecycle) recordTrain(d time.Duration) {
	lc.lastTrainNanos.Store(int64(d))
	lc.trainNanosTotal.Add(int64(d))
}

// noteWrite records one snapshot-publishing write for user u and
// reports whether the deterministic retrain trigger fires. Caller
// holds writeMu.
func (lc *lifecycle) noteWrite(u model.UserID) bool {
	lc.dataRev++
	lc.touched[u] = lc.dataRev
	return lc.retrainEvery > 0 && lc.dataRev-lc.trainedRev >= uint64(lc.retrainEvery)
}

// Retrain trains a fresh model from the current rating data and swaps
// it into the serving snapshot, synchronously. Reads proceed
// unblocked throughout; writes that land mid-train are folded into
// the new model at swap time. Returns ErrNoTrainer without a
// lifecycle, ErrTrainInProgress when another run (background or
// explicit) holds the single-flight gate.
func (e *Engine) Retrain(ctx context.Context) error {
	if e.lc == nil {
		return ErrNoTrainer
	}
	if !e.lc.training.CompareAndSwap(false, true) {
		return ErrTrainInProgress
	}
	defer e.lc.training.Store(false)
	return e.runTrain(ctx)
}

// retrainAsync starts a background training run if none is in flight.
// Caller holds writeMu (the trigger fires inside mutate); the training
// itself runs on a fresh goroutine against its own capture of the
// snapshot, so the write that triggered it completes immediately.
func (e *Engine) retrainAsync() {
	if !e.lc.training.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.lc.training.Store(false)
		// Whole-body guard: safeTrain only covers the trainer call, but
		// a panic anywhere else on this goroutine (capture, fold-in,
		// publish) would otherwise kill the process with no caller to
		// notice. Recovered panics count as failed trains.
		defer func() {
			if r := recover(); r != nil {
				e.lc.trainsFailed.Add(1)
			}
		}()
		//lint:ignore dropped-error background retrains have no caller to report to; failures are counted in ModelsState and the train metrics
		_ = e.runTrain(context.Background())
	}()
}

// runTrain is the shared training body: capture a consistent matrix
// and revision, train off-lock, fold in raced writes, publish the
// artifact and swap the snapshot. Caller holds the single-flight gate.
func (e *Engine) runTrain(ctx context.Context) error {
	lc := e.lc
	lc.trainsStarted.Add(1)

	// Capture: the training input is the snapshot matrix at a known
	// revision. In guarded compatibility mode the matrix is mutated in
	// place by writers, so train on a deep clone taken under the read
	// lock; on the lock-free path the snapshot matrix is immutable.
	e.writeMu.Lock()
	base := e.snap.Load()
	baseRev := lc.dataRev
	m := base.ratings
	e.writeMu.Unlock()
	if base.guard != nil {
		base.guard.RLock()
		m = base.ratings.Clone()
		base.guard.RUnlock()
	}
	if err := ctx.Err(); err != nil {
		lc.trainsFailed.Add(1)
		return err
	}

	rec, d, err := lc.timedTrain(m, e.catalog)
	if err != nil {
		lc.trainsFailed.Add(1)
		return err
	}
	lc.recordTrain(d)
	if err := ctx.Err(); err != nil {
		lc.trainsFailed.Add(1)
		return err
	}

	// The ANN index over the fresh model's item vectors builds here,
	// off-lock on the training goroutine: readers keep serving the old
	// snapshot (and its old index) throughout. The swap-time fold-in
	// below cannot invalidate it — fold-in re-solves user factors only
	// and shares the indexed item side frozen.
	aidx := e.buildModelANN(rec)

	// Swap: under the writer mutex, fold in every user whose ratings
	// changed after the capture, publish the artifact, and make the
	// new model the serving one in a single snapshot store.
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.snap.Load()
	if lc.dataRev != baseRev {
		if rb, ok := rec.(recsys.MatrixRebinder); ok {
			var raced []model.UserID
			for u, rev := range lc.touched {
				if rev > baseRev {
					raced = append(raced, u)
				}
			}
			sort.Slice(raced, func(a, b int) bool { return raced[a] < raced[b] })
			rec = rb.RebindMatrix(cur.ratings, raced...)
			lc.swapFoldIns.Add(int64(len(raced)))
		}
	}
	art := lc.store.Publish(lc.trainer.Name(), lc.dataRev, checksumOf(rec), rec)
	lc.persist(art)
	next := e.servingSnapshot(cur, rec, art.Version)
	next.annModel = aidx
	e.snap.Store(next)
	lc.trainedRev = lc.dataRev
	for u, rev := range lc.touched {
		if rev <= lc.trainedRev {
			delete(lc.touched, u)
		}
	}
	lc.trainsCompleted.Add(1)
	return nil
}

// startScheduledRetrains launches the clock-driven retrain loop when
// TrainerConfig asked for one. Called at the end of New, after the
// initial model is in place, so the first scheduled trigger always
// retrains a serving engine.
func (e *Engine) startScheduledRetrains() {
	if e.lc == nil {
		return
	}
	if e.lc.retrainInterval <= 0 && e.trainerCfg.RetrainTicks == nil {
		return
	}
	e.schedStop = make(chan struct{})
	e.schedDone = make(chan struct{})
	go e.scheduledRetrainLoop(e.trainerCfg.RetrainTicks)
}

// stopScheduledRetrains shuts the loop down and waits for it to exit;
// idempotent, and a no-op on engines without a schedule. Engine.Close
// calls it before touching durable state so no retrain can race the
// teardown.
func (e *Engine) stopScheduledRetrains() {
	if e.schedStop == nil {
		return
	}
	e.schedOnce.Do(func() {
		close(e.schedStop)
		<-e.schedDone
	})
}

// scheduledRetrainLoop fires a retrain per tick until stopped. Ticks
// come from the injected RetrainTicks channel when set (tests), else
// from a real ticker at RetrainInterval. A tick that finds a training
// run already in flight is simply absorbed by the single-flight gate.
func (e *Engine) scheduledRetrainLoop(ticks <-chan time.Time) {
	defer close(e.schedDone)
	// Whole-body guard, mirroring retrainAsync: a panic on this
	// goroutine has no caller to land on and must not kill the process.
	defer func() {
		if r := recover(); r != nil {
			e.lc.trainsFailed.Add(1)
		}
	}()
	if ticks == nil {
		t := time.NewTicker(e.lc.retrainInterval)
		defer t.Stop()
		ticks = t.C
	}
	for {
		select {
		case <-e.schedStop:
			return
		case <-ticks:
			e.lc.scheduledRetrains.Add(1)
			//lint:ignore dropped-error scheduled retrains have no caller to report to; ErrTrainInProgress means a concurrent run already covers this tick and real failures are counted in ModelsState
			_ = e.Retrain(context.Background())
		}
	}
}

// RollbackModel republishes the previous model generation (under a
// new, monotonic version) and makes it the serving one. The model
// serves exactly as published — point-in-time semantics; writes
// applied since it was trained fold in again on the next write or
// retrain. Returns ErrNoTrainer without a lifecycle and
// modelstore.ErrNoHistory when no predecessor is retained.
func (e *Engine) RollbackModel() (ModelArtifact, error) {
	if e.lc == nil {
		return ModelArtifact{}, ErrNoTrainer
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	art, err := e.lc.store.Rollback()
	if err != nil {
		return ModelArtifact{}, err
	}
	e.lc.persist(art)
	cur := e.snap.Load()
	next := e.servingSnapshot(cur, art.Model, art.Version)
	// Rollback is a rare operator action: rebuilding the index under
	// the writer mutex is acceptable, and serving the rolled-back model
	// with the newer model's index would not be.
	next.annModel = e.buildModelANN(art.Model)
	e.snap.Store(next)
	return artifactState(art, true), nil
}

// ModelArtifact is one artifact-store generation as reported by
// ModelsState and /debug/models.
type ModelArtifact struct {
	Version  uint64 `json:"version"`
	Trainer  string `json:"trainer"`
	DataRev  uint64 `json:"data_rev"`
	Checksum string `json:"checksum"`
	Serving  bool   `json:"serving,omitempty"`
}

func artifactState(a *modelstore.Artifact[recsys.Recommender], serving bool) ModelArtifact {
	return ModelArtifact{
		Version:  a.Version,
		Trainer:  a.Trainer,
		DataRev:  a.DataRev,
		Checksum: fmt.Sprintf("%016x", a.Checksum),
		Serving:  serving,
	}
}

// ModelsState is the operator view of the model lifecycle, served by
// GET /debug/models. Enabled is false (and everything else zero) on
// engines without WithTrainer.
type ModelsState struct {
	Enabled      bool   `json:"enabled"`
	Trainer      string `json:"trainer,omitempty"`
	RetrainEvery int    `json:"retrain_every,omitempty"`
	// RetrainIntervalSeconds is the clock-driven retrain period (0 =
	// no schedule); ScheduledRetrains counts its triggers so far.
	RetrainIntervalSeconds float64 `json:"retrain_interval_seconds,omitempty"`
	ScheduledRetrains      int64   `json:"scheduled_retrains,omitempty"`
	ServingVersion         uint64  `json:"serving_version,omitempty"`
	// DataRev counts snapshot-publishing writes; TrainedRev is the
	// revision the serving model was trained (or folded) up to.
	DataRev    uint64 `json:"data_rev,omitempty"`
	TrainedRev uint64 `json:"trained_rev,omitempty"`
	// TrainInFlight reports a training run currently holding the
	// single-flight gate.
	TrainInFlight   bool  `json:"train_in_flight,omitempty"`
	TrainsStarted   int64 `json:"trains_started,omitempty"`
	TrainsCompleted int64 `json:"trains_completed,omitempty"`
	TrainsFailed    int64 `json:"trains_failed,omitempty"`
	// FoldIns counts write-path incremental fold-ins; SwapFoldIns
	// counts users folded into a fresh model at swap time because
	// their writes raced the training run.
	FoldIns     int64 `json:"fold_ins,omitempty"`
	SwapFoldIns int64 `json:"swap_fold_ins,omitempty"`
	// Training durations are measured by the injected TrainerConfig
	// Clock; 0 when no clock is configured.
	LastTrainSeconds  float64 `json:"last_train_seconds,omitempty"`
	TrainSecondsTotal float64 `json:"train_seconds_total,omitempty"`
	// Artifact persistence: WarmStarted reports that New served the
	// persisted artifact instead of cold-training.
	ArtifactPath          string `json:"artifact_path,omitempty"`
	WarmStarted           bool   `json:"warm_started,omitempty"`
	ArtifactsPersisted    int64  `json:"artifacts_persisted,omitempty"`
	ArtifactPersistErrors int64  `json:"artifact_persist_errors,omitempty"`
	// Artifacts lists the retained generations, newest (serving) first.
	Artifacts []ModelArtifact `json:"artifacts,omitempty"`
}

// ModelsState reports the lifecycle's current state. Cheap enough to
// serve on a debug endpoint: one brief writer-mutex hold for the
// revision counters plus atomic loads.
func (e *Engine) ModelsState() ModelsState {
	if e.lc == nil {
		return ModelsState{}
	}
	lc := e.lc
	e.writeMu.Lock()
	dataRev, trainedRev := lc.dataRev, lc.trainedRev
	e.writeMu.Unlock()
	st := ModelsState{
		Enabled:                true,
		Trainer:                lc.trainer.Name(),
		RetrainEvery:           lc.retrainEvery,
		RetrainIntervalSeconds: lc.retrainInterval.Seconds(),
		ScheduledRetrains:      lc.scheduledRetrains.Load(),
		ServingVersion:         lc.store.Version(),
		DataRev:                dataRev,
		TrainedRev:             trainedRev,
		TrainInFlight:          lc.training.Load(),
		TrainsStarted:          lc.trainsStarted.Load(),
		TrainsCompleted:        lc.trainsCompleted.Load(),
		TrainsFailed:           lc.trainsFailed.Load(),
		FoldIns:                lc.foldIns.Load(),
		SwapFoldIns:            lc.swapFoldIns.Load(),
		LastTrainSeconds:       time.Duration(lc.lastTrainNanos.Load()).Seconds(),
		TrainSecondsTotal:      time.Duration(lc.trainNanosTotal.Load()).Seconds(),
		ArtifactPath:           lc.artifactPath,
		WarmStarted:            lc.warmStarted,
		ArtifactsPersisted:     lc.artifactsPersisted.Load(),
		ArtifactPersistErrors:  lc.persistErrors.Load(),
	}
	serving := lc.store.Version()
	for _, a := range lc.store.History() {
		st.Artifacts = append(st.Artifacts, artifactState(a, a.Version == serving))
	}
	return st
}

// ModelVersion returns the serving model's artifact version (0 on
// engines without a lifecycle). Lock-free.
func (e *Engine) ModelVersion() uint64 {
	if e.lc == nil {
		return 0
	}
	return e.lc.store.Version()
}
