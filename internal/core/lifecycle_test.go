package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/modelstore"
	"repro/internal/recsys"
	"repro/internal/recsys/mf"
)

// sgdTrainer is the small, fast trainer the lifecycle tests use.
func sgdTrainer(seed uint64) TrainerConfig {
	return TrainerConfig{Trainer: mf.SGD{Opts: mf.Options{Seed: seed, Factors: 8, Epochs: 4}}}
}

// lifecycleEngine builds the standard test community with a lifecycle.
func lifecycleEngine(t testing.TB, cfg TrainerConfig) (*dataset.Community, *Engine) {
	t.Helper()
	return engine(t, WithSeed(7), WithTrainer(cfg))
}

func TestWithTrainerValidation(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 401, Users: 10, Items: 20, RatingsPerUser: 5})
	if _, err := New(c.Catalog, c.Ratings, WithTrainer(TrainerConfig{})); err == nil {
		t.Fatal("nil Trainer accepted")
	}
	md := mf.Train(c.Ratings, c.Catalog, mf.Options{Seed: 1, Epochs: 1})
	_, err := New(c.Catalog, c.Ratings,
		WithRecommender(md), WithTrainer(sgdTrainer(1)))
	if err == nil {
		t.Fatal("WithTrainer + WithRecommender accepted")
	}
}

func TestLifecycleServesVersionOne(t *testing.T) {
	_, e := lifecycleEngine(t, sgdTrainer(7))
	if got := e.ModelVersion(); got != 1 {
		t.Fatalf("ModelVersion = %d, want 1", got)
	}
	st := e.ModelsState()
	if !st.Enabled || st.Trainer != "sgd" || st.ServingVersion != 1 {
		t.Fatalf("state = %+v", st)
	}
	if st.TrainsStarted != 1 || st.TrainsCompleted != 1 || st.TrainsFailed != 0 {
		t.Fatalf("train counters = %+v", st)
	}
	if len(st.Artifacts) != 1 || !st.Artifacts[0].Serving || st.Artifacts[0].Trainer != "sgd" {
		t.Fatalf("artifacts = %+v", st.Artifacts)
	}
	if st.Artifacts[0].Checksum == fmt.Sprintf("%016x", 0) {
		t.Fatal("mf model published without a checksum")
	}

	p, err := e.Recommend(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.ModelVersion != 1 {
		t.Fatalf("presentation model version = %d, want 1", p.ModelVersion)
	}
	exp, err := e.Explain(1, p.Entries[0].Item.ID)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ModelVersion != 1 {
		t.Fatalf("explanation model version = %d, want 1", exp.ModelVersion)
	}
	if len(exp.Evidence.Factors) == 0 {
		t.Fatal("lifecycle engine did not explain from the model's factor overlap")
	}
	if bv := e.BrowseAll(1); bv.ModelVersion != 1 {
		t.Fatalf("browse model version = %d, want 1", bv.ModelVersion)
	}
}

// TestLifecycleEngineWithoutTrainer: the lifecycle surface on a stock
// engine reports disabled and every operation maps to ErrNoTrainer.
func TestLifecycleEngineWithoutTrainer(t *testing.T) {
	_, e := engine(t, WithSeed(7))
	if st := e.ModelsState(); st.Enabled {
		t.Fatalf("state = %+v", st)
	}
	if got := e.ModelVersion(); got != 0 {
		t.Fatalf("ModelVersion = %d", got)
	}
	if err := e.Retrain(context.Background()); !errors.Is(err, ErrNoTrainer) {
		t.Fatalf("Retrain err = %v", err)
	}
	if _, err := e.RollbackModel(); !errors.Is(err, ErrNoTrainer) {
		t.Fatalf("RollbackModel err = %v", err)
	}
	p, err := e.Recommend(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.ModelVersion != 0 {
		t.Fatalf("stock engine leaked model version %d", p.ModelVersion)
	}
}

// TestLifecycleFoldInKeepsVersion: a write between rebuilds folds the
// model incrementally — the serving version must not move, the rating
// must be visible, and the fold-in must be counted.
func TestLifecycleFoldInKeepsVersion(t *testing.T) {
	c, e := lifecycleEngine(t, sgdTrainer(7))
	target := c.Catalog.Items()[0].ID
	if err := e.Rate(999001, target, 5); err != nil {
		t.Fatal(err)
	}
	if got := e.ModelVersion(); got != 1 {
		t.Fatalf("write bumped serving version to %d", got)
	}
	st := e.ModelsState()
	if st.DataRev != 1 || st.TrainedRev != 0 {
		t.Fatalf("revisions = %+v", st)
	}
	if st.FoldIns == 0 {
		t.Fatal("write did not fold into the serving model")
	}
	if _, ok := e.Ratings().Get(999001, target); !ok {
		t.Fatal("rating not visible")
	}
	// The folded model serves the new user immediately.
	if _, err := e.Recommend(999001, 3); err != nil {
		t.Fatalf("folded user not served: %v", err)
	}
}

func TestRetrainSwapsToNextVersion(t *testing.T) {
	c, e := lifecycleEngine(t, sgdTrainer(7))
	if err := e.Rate(1, c.Catalog.Items()[0].ID, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := e.ModelsState()
	if st.ServingVersion != 2 || st.TrainsCompleted != 2 {
		t.Fatalf("state = %+v", st)
	}
	if st.TrainedRev != st.DataRev {
		t.Fatalf("retrain left trained rev %d behind data rev %d", st.TrainedRev, st.DataRev)
	}
	if len(st.Artifacts) != 2 {
		t.Fatalf("artifacts = %+v", st.Artifacts)
	}
	if !st.Artifacts[0].Serving || st.Artifacts[0].Version != 2 || st.Artifacts[1].Serving {
		t.Fatalf("serving flags wrong: %+v", st.Artifacts)
	}
	p, err := e.Recommend(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.ModelVersion != 2 {
		t.Fatalf("presentation version = %d, want 2", p.ModelVersion)
	}
}

// TestRetrainDeterministicAcrossSwap is the acceptance criterion: two
// engines with equal seeds, equal writes and equal retrains serve
// byte-identical recommendations — before and after the version swap.
func TestRetrainDeterministicAcrossSwap(t *testing.T) {
	build := func() (*dataset.Community, *Engine) {
		return lifecycleEngine(t, sgdTrainer(7))
	}
	ca, a := build()
	_, b := build()

	render := func(e *Engine, u model.UserID) string {
		p, err := e.Recommend(u, 8)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "v%d:", p.ModelVersion)
		for _, en := range p.Entries {
			fmt.Fprintf(&sb, " %d=%v", en.Item.ID, en.Prediction.Score)
		}
		return sb.String()
	}
	if ra, rb := render(a, 1), render(b, 1); ra != rb {
		t.Fatalf("initial models diverge:\n%s\n%s", ra, rb)
	}
	for _, e := range []*Engine{a, b} {
		if err := e.Rate(2, ca.Catalog.Items()[1].ID, 4.5); err != nil {
			t.Fatal(err)
		}
		if err := e.Retrain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ra, rb := render(a, 1), render(b, 1)
	if ra != rb {
		t.Fatalf("post-swap models diverge:\n%s\n%s", ra, rb)
	}
	if !strings.HasPrefix(ra, "v2:") {
		t.Fatalf("post-swap render %q not serving version 2", ra)
	}
}

// TestBackgroundRetrainTriggersEveryN: the deterministic write trigger
// fires a background retrain on the RetrainEvery-th write.
func TestBackgroundRetrainTriggersEveryN(t *testing.T) {
	cfg := sgdTrainer(7)
	cfg.RetrainEvery = 3
	c, e := lifecycleEngine(t, cfg)
	for k := 0; k < 2; k++ {
		if err := e.Rate(1, c.Catalog.Items()[k].ID, 4); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.ModelVersion(); got != 1 {
		t.Fatalf("version bumped to %d before the trigger", got)
	}
	if err := e.Rate(1, c.Catalog.Items()[2].ID, 4); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.ModelVersion() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("background retrain never swapped; state = %+v", e.ModelsState())
		}
		time.Sleep(time.Millisecond)
	}
	st := e.ModelsState()
	if st.TrainedRev != 3 {
		t.Fatalf("trained rev = %d, want 3", st.TrainedRev)
	}
}

func TestRetrainSingleFlightGate(t *testing.T) {
	_, e := lifecycleEngine(t, sgdTrainer(7))
	if !e.lc.training.CompareAndSwap(false, true) {
		t.Fatal("gate unexpectedly held")
	}
	defer e.lc.training.Store(false)
	if err := e.Retrain(context.Background()); !errors.Is(err, ErrTrainInProgress) {
		t.Fatalf("err = %v, want ErrTrainInProgress", err)
	}
	if st := e.ModelsState(); !st.TrainInFlight {
		t.Fatal("state does not report the held gate")
	}
}

func TestRetrainHonoursContext(t *testing.T) {
	_, e := lifecycleEngine(t, sgdTrainer(7))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Retrain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := e.ModelsState()
	if st.TrainsFailed != 1 || st.ServingVersion != 1 {
		t.Fatalf("state = %+v", st)
	}
	// The gate is released: a live retrain succeeds afterwards.
	if err := e.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackModelRepublishesPredecessor(t *testing.T) {
	_, e := lifecycleEngine(t, sgdTrainer(7))
	if _, err := e.RollbackModel(); !errors.Is(err, modelstore.ErrNoHistory) {
		t.Fatalf("rollback with one generation: err = %v", err)
	}
	v1sum := e.ModelsState().Artifacts[0].Checksum

	if err := e.Rate(999002, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	art, err := e.RollbackModel()
	if err != nil {
		t.Fatal(err)
	}
	if art.Version != 3 || !art.Serving {
		t.Fatalf("artifact = %+v", art)
	}
	if art.Checksum != v1sum {
		t.Fatalf("rollback served checksum %s, want v1's %s", art.Checksum, v1sum)
	}
	if got := e.ModelVersion(); got != 3 {
		t.Fatalf("serving version = %d, want 3", got)
	}
	if _, err := e.Recommend(1, 3); err != nil {
		t.Fatalf("rolled-back model does not serve: %v", err)
	}
}

// panicTrainer trains fine until the remaining counter runs out, then
// panics — the background-failure path.
type panicTrainer struct {
	inner recsys.ModelTrainer
	calls *int
	okFor int
}

func (p panicTrainer) Name() string { return "panic-after" }
func (p panicTrainer) Train(m *model.Matrix, cat *model.Catalog) recsys.Recommender {
	*p.calls++
	if *p.calls > p.okFor {
		panic("trainer exploded")
	}
	return p.inner.Train(m, cat)
}

func TestInitialTrainFailureFailsNew(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 401, Users: 10, Items: 20, RatingsPerUser: 5})
	calls := 0
	_, err := New(c.Catalog, c.Ratings, WithTrainer(TrainerConfig{
		Trainer: panicTrainer{inner: mf.SGD{Opts: mf.Options{Seed: 1, Epochs: 1}}, calls: &calls, okFor: 0},
	}))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestRetrainFailureKeepsServingModel(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 401, Users: 10, Items: 20, RatingsPerUser: 5})
	calls := 0
	e, err := New(c.Catalog, c.Ratings, WithSeed(7), WithTrainer(TrainerConfig{
		Trainer: panicTrainer{inner: mf.SGD{Opts: mf.Options{Seed: 1, Epochs: 1}}, calls: &calls, okFor: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Retrain(context.Background()); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
	st := e.ModelsState()
	if st.TrainsFailed != 1 || st.ServingVersion != 1 {
		t.Fatalf("state = %+v", st)
	}
	if _, err := e.Recommend(1, 3); err != nil {
		t.Fatalf("failed retrain broke serving: %v", err)
	}
}

func TestLifecycleClockTimesTraining(t *testing.T) {
	var now time.Time
	cfg := sgdTrainer(7)
	cfg.Clock = func() time.Time {
		now = now.Add(250 * time.Millisecond)
		return now
	}
	_, e := lifecycleEngine(t, cfg)
	st := e.ModelsState()
	if st.LastTrainSeconds != 0.25 {
		t.Fatalf("last train = %v, want 0.25", st.LastTrainSeconds)
	}
	if err := e.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = e.ModelsState()
	if st.TrainSecondsTotal != 0.5 {
		t.Fatalf("total = %v, want 0.5", st.TrainSecondsTotal)
	}
}

// TestHistoryRingDepth: History bounds how many generations rollback
// can reach.
func TestHistoryRingDepth(t *testing.T) {
	cfg := sgdTrainer(7)
	cfg.History = 2
	_, e := lifecycleEngine(t, cfg)
	for k := 0; k < 3; k++ {
		if err := e.Retrain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := e.ModelsState()
	if len(st.Artifacts) != 2 {
		t.Fatalf("ring retained %d artifacts, want 2", len(st.Artifacts))
	}
}

// TestMFRecommenderKeepsLockFreePath is the rebind-seam regression
// test: an engine given an MF model and its factor explainer as custom
// components must stay on the lock-free snapshot path — both implement
// the rebind seams, so no guard mutex may be installed.
func TestMFRecommenderKeepsLockFreePath(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 401, Users: 20, Items: 30, RatingsPerUser: 8})
	md := mf.Train(c.Ratings, c.Catalog, mf.Options{Seed: 7, Epochs: 3})
	e, err := New(c.Catalog, c.Ratings, WithSeed(7),
		WithRecommender(md), WithExplainer(mf.NewFactorExplainer(md)))
	if err != nil {
		t.Fatal(err)
	}
	if e.snap.Load().guard != nil {
		t.Fatal("MF model + factor explainer forced the guarded fallback")
	}
	if err := e.Rate(1, c.Catalog.Items()[0].ID, 5); err != nil {
		t.Fatal(err)
	}
	if e.snap.Load().guard != nil {
		t.Fatal("guard appeared after a write")
	}
	// A lifecycle engine rides the same seam.
	_, le := lifecycleEngine(t, sgdTrainer(7))
	if le.snap.Load().guard != nil {
		t.Fatal("lifecycle engine installed a guard")
	}
}

// TestReadsNeverBlockDuringRebuild is the concurrency acceptance test
// (a primary -race target): reader goroutines hammer every read path
// while writes trigger background retrains and explicit retrains force
// extra swaps. No read may error, and each goroutine must observe a
// non-decreasing model version.
func TestReadsNeverBlockDuringRebuild(t *testing.T) {
	cfg := TrainerConfig{
		Trainer:      mf.SGD{Opts: mf.Options{Seed: 7, Factors: 8, Epochs: 3}},
		RetrainEvery: 2,
	}
	c, e := lifecycleEngine(t, cfg)
	items := c.Catalog.Items()

	const readers = 8
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := model.UserID(1 + g%4)
			var lastVersion uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := e.RecommendContext(context.Background(), u, 5)
				if err != nil {
					errs <- fmt.Errorf("recommend: %w", err)
					return
				}
				if p.ModelVersion < lastVersion {
					errs <- fmt.Errorf("model version went backwards: %d -> %d", lastVersion, p.ModelVersion)
					return
				}
				lastVersion = p.ModelVersion
				if _, err := e.ExplainContext(context.Background(), u, p.Entries[0].Item.ID); err != nil {
					errs <- fmt.Errorf("explain: %w", err)
					return
				}
				if _, err := e.BrowseAllContext(context.Background(), u); err != nil {
					errs <- fmt.Errorf("browse: %w", err)
					return
				}
			}
		}(g)
	}

	for k := 0; k < 40; k++ {
		u := model.UserID(10 + k%5)
		if err := e.Rate(u, items[k%len(items)].ID, 3.5); err != nil {
			t.Fatal(err)
		}
		if k%10 == 9 {
			// Explicit retrains race the background trigger; losing the
			// single-flight gate is the expected outcome half the time.
			if err := e.Retrain(context.Background()); err != nil && !errors.Is(err, ErrTrainInProgress) {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Under -race a training run can still be in flight here; the swap
	// must land eventually and serve a version past the initial one.
	deadline := time.Now().Add(30 * time.Second)
	for e.ModelVersion() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no background swap ever landed; state = %+v", e.ModelsState())
		}
		time.Sleep(time.Millisecond)
	}
	if st := e.ModelsState(); st.TrainsCompleted < 2 {
		t.Fatalf("expected a completed background train, state = %+v", st)
	}
}
