package core

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/present"
	"repro/internal/trace"
)

// recommendDirect replicates the pre-pipeline (PR 1) Recommend path:
// the same stage logic invoked as plain method calls, with no pipeline
// dispatch and no interceptors. It is the baseline that prices the
// abstraction.
func (e *Engine) recommendDirect(ctx context.Context, u model.UserID, n int) (*present.Presentation, error) {
	s, release := e.readSnapshot()
	defer release()
	ctx = withSnapshot(ctx, s)
	req := &pipeline.Request{Op: pipeline.OpRecommend, User: u, N: n}
	for _, run := range []pipeline.Handler{e.stageRank, e.stageRerank, e.stageExplainTopN} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := run(ctx, req); err != nil {
			return nil, err
		}
	}
	resp, err := e.stagePresentTopN(ctx, req)
	if err != nil {
		return nil, err
	}
	return resp.Presentation, nil
}

// BenchmarkPipelineOverhead prices the pipeline abstraction on the
// Recommend hot path: "direct" calls the stage logic as plain
// functions, "pipeline" goes through the composed pipeline with the
// stock metrics/deadline/recovery interceptors. The acceptance
// criterion for the refactor is pipeline ≤ 1.05× direct.
func BenchmarkPipelineOverhead(b *testing.B) {
	c := dataset.Movies(dataset.Config{Seed: 42, Users: 200, Items: 300, RatingsPerUser: 30})
	e, err := New(c.Catalog, c.Ratings, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.recommendDirect(ctx, model.UserID(i%200+1), 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.RecommendContext(ctx, model.UserID(i%200+1), 10); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Tracing installed on the engine, no root span on the request: the
	// interceptor's nil-span fast path. The PR's acceptance criterion is
	// this variant within 5% of "pipeline".
	tr := trace.New(trace.Options{})
	te, err := New(c.Catalog, c.Ratings, WithSeed(1), WithTracer(tr))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("traced-unsampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := te.RecommendContext(ctx, model.UserID(i%200+1), 10); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Full span recording per request (root span started, spans written,
	// trace discarded at the tail — nothing here is slow, errored or
	// sampled). Informational: this is the price a *traced* request pays.
	b.Run("traced-recording", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rctx, root := tr.Start(ctx, "recommend")
			_, err := te.RecommendContext(rctx, model.UserID(i%200+1), 10)
			root.End(err)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
