// Resilience wiring: the engine's degraded-mode serving path.
//
// WithResilience inserts the internal/resilience chain — load shedding,
// fallback routing, circuit breaking, retry — between the Metrics and
// Deadline interceptors of every read pipeline, and registers degraded
// replacements for the expensive stages: when the primary ranking or
// explanation stage fails with an infrastructure fault (breaker open,
// per-stage deadline, recovered panic, retries exhausted), the request
// is served from cheap popularity/profile evidence instead of erroring,
// and the response is tagged Degraded so clients see the downgrade.
// Domain outcomes (cold start, unknown item, no evidence) are not
// infrastructure faults: they keep their error semantics and never trip
// a breaker.

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Sentinels of the resilience layer, re-exported so frontends can map
// them to HTTP statuses without importing internal/resilience.
var (
	// ErrBreakerOpen reports a stage refused because its circuit
	// breaker is open and no fallback route absorbed it. Maps to 503.
	ErrBreakerOpen = resilience.ErrBreakerOpen
	// ErrOverloaded reports a request shed because a stage's
	// concurrency limit and queue were full. Maps to 429.
	ErrOverloaded = resilience.ErrOverloaded
	// ErrDegraded reports that degraded-mode serving was attempted and
	// the fallback path itself failed. Maps to 503.
	ErrDegraded = resilience.ErrDegraded
)

// RetryAfterHint re-exports resilience.RetryAfterHint so frontends can
// derive Retry-After headers — an open breaker's remaining cooldown, a
// shed stage's estimated queue drain — without importing
// internal/resilience.
func RetryAfterHint(err error) (time.Duration, bool) {
	return resilience.RetryAfterHint(err)
}

// ResilienceConfig tunes the resilience chain installed by
// WithResilience. The zero value enables breakers and degraded
// fallbacks with library defaults, no shedding and no retry.
type ResilienceConfig struct {
	// BreakerThreshold is the run of consecutive infrastructure
	// failures that opens a stage's circuit. 0 means the library
	// default (5).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects before
	// probing. 0 means the library default (1s).
	BreakerCooldown time.Duration
	// BreakerProbes is the number of successful half-open probes that
	// close the circuit again. 0 means the library default (1).
	BreakerProbes int

	// MaxConcurrent bounds concurrent executions per stage; 0 disables
	// load shedding entirely.
	MaxConcurrent int
	// MaxQueue bounds waiters beyond MaxConcurrent before arrivals are
	// shed with ErrOverloaded. 0 means MaxConcurrent.
	MaxQueue int
	// ShedDrainEstimate is the assumed per-execution service time used
	// to derive the Retry-After hint on shed rejections. 0 means the
	// library default (250ms).
	ShedDrainEstimate time.Duration

	// RetryAttempts is the total tries per stage execution, including
	// the first; values below 2 disable retrying. Retrying is safe
	// here because every read stage rebuilds its working fields from
	// scratch on each run.
	RetryAttempts int
	// RetryBase is the pre-jitter backoff before the first retry. 0
	// means the library default (2ms).
	RetryBase time.Duration
	// RetrySeed seeds the jitter stream (0 means 1). All resilience
	// randomness routes through internal/rng for reproducibility.
	RetrySeed uint64
}

// WithResilience installs the breaker/shed/retry/fallback chain on
// every read pipeline (see ResilienceConfig and DESIGN.md §7). With it
// installed, Recommend and Explain keep answering — marked degraded —
// while their primary stages are broken, and Stats gains resilience
// event counters under Stats.Resilience.
func WithResilience(cfg ResilienceConfig) Option {
	return func(e *Engine) { e.resilience = &cfg }
}

// WithChaos installs a fault-injection interceptor (internal/fault)
// innermost — inside the Recover interceptor — so injected panics and
// errors are indistinguishable from genuine stage failures to every
// production layer above: recovery, retry, breaker, fallback and
// metrics all see exactly what they would see in a real incident.
// Repeated options nest in the order given.
func WithChaos(ic pipeline.Interceptor) Option {
	return func(e *Engine) { e.chaos = append(e.chaos, ic) }
}

// resilienceChain builds the interceptors between Metrics and Deadline:
// Shed (optional) → Fallback → Breaker → Retry (optional). Ordering
// rationale lives in the internal/resilience package documentation.
func (e *Engine) resilienceChain() []pipeline.Interceptor {
	cfg := e.resilience
	var ics []pipeline.Interceptor
	if cfg.MaxConcurrent > 0 {
		ics = append(ics, resilience.Shed(resilience.ShedOptions{
			MaxConcurrent: cfg.MaxConcurrent,
			MaxQueue:      cfg.MaxQueue,
			DrainEstimate: cfg.ShedDrainEstimate,
			Recorder:      &e.resEvents,
		}))
	}
	ics = append(ics, resilience.Fallback(resilience.FallbackOptions{
		Routes: []resilience.Route{
			{Pipeline: pipeline.OpRecommend, Stage: "rank", Handler: e.stageRankDegraded},
			{Pipeline: pipeline.OpRecommend, Stage: "explainTopN", Handler: e.stageExplainTopNDegraded},
			{Pipeline: pipeline.OpExplain, Stage: "explain", Handler: e.stageExplainDegraded},
			{Pipeline: pipeline.OpWhyLow, Stage: "explainLow", Handler: e.stageExplainDegraded},
		},
		When:     IsInfrastructureFailure,
		Recorder: &e.resEvents,
	}))
	ics = append(ics, resilience.Breaker(resilience.BreakerOptions{
		FailureThreshold: cfg.BreakerThreshold,
		Cooldown:         cfg.BreakerCooldown,
		HalfOpenProbes:   cfg.BreakerProbes,
		ShouldTrip:       IsInfrastructureFailure,
		Recorder:         &e.resEvents,
		// core is not a determinism-checked package, so it may wire the
		// wall clock; rejections then advise the *remaining* cooldown.
		Clock: time.Now,
	}))
	if cfg.RetryAttempts >= 2 {
		ics = append(ics, resilience.Retry(resilience.RetryOptions{
			Attempts:  cfg.RetryAttempts,
			BaseDelay: cfg.RetryBase,
			Seed:      cfg.RetrySeed,
			Recorder:  &e.resEvents,
		}))
	}
	return ics
}

// IsInfrastructureFailure reports whether err is a genuine serving
// fault — the kind that should trip a breaker and reroute to degraded
// mode — as opposed to a domain outcome (cold start, unknown item, no
// evidence, invalid input) that is the correct answer to the request,
// or an overload rejection that must stay an overload rejection. The
// cluster router applies the same classification to whole-shard calls:
// a shard's domain answer passes through verbatim, a shard's
// infrastructure failure reroutes to degraded cluster serving.
func IsInfrastructureFailure(err error) bool {
	if err == nil ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, resilience.ErrOverloaded) {
		return false
	}
	for _, domain := range []error{
		recsys.ErrColdStart,
		explain.ErrNoEvidence,
		model.ErrUnknownItem,
		ErrNonFiniteValue,
		ErrNoInfluenceModel,
	} {
		if errors.Is(err, domain) {
			return false
		}
	}
	return true
}

// classifyError maps a stage error onto the short class label recorded
// on trace spans, separating infrastructure faults from domain
// outcomes the same way infrastructureFailure does — but with enough
// resolution to read a trace without the error text.
func classifyError(err error) string {
	var pe *pipeline.PanicError
	switch {
	case errors.As(err, &pe):
		return "panic"
	case errors.Is(err, resilience.ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, resilience.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, resilience.ErrDegraded):
		return "degraded_failed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, recsys.ErrColdStart):
		return "cold_start"
	case errors.Is(err, explain.ErrNoEvidence):
		return "no_evidence"
	case errors.Is(err, model.ErrUnknownItem):
		return "unknown_item"
	case errors.Is(err, ErrNonFiniteValue):
		return "invalid_value"
	default:
		return "error"
	}
}

// ---- degraded-mode stages ----

// stageRankDegraded replaces the rank stage when the primary
// recommender is unavailable: a popularity ranking straight off the
// snapshot's rating matrix. It is deliberately model-free — the point
// of degraded mode is to not depend on the component that just failed.
func (e *Engine) stageRankDegraded(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	s := snapshotFrom(ctx)
	pool := req.N * 4
	if pool < 20 {
		pool = 20
	}
	req.Preds = PopularityRanking(s.ratings, e.catalog, req.User, pool)
	e.stats.recommendations.Add(1)
	e.stats.degradedServed.Add(1)
	return nil, nil
}

// PopularityRanking scores every item of the catalogue u has not rated
// in m by its mean rating with a shrinkage confidence n/(n+5); items
// nobody rated score the global mean with zero confidence, so the list
// is never empty while the catalogue has unrated items.
//
// It is the shared degraded-mode ranking: the engine's fallback rank
// stage uses it against the snapshot matrix, and the cluster router
// uses it against the merged matrices of the surviving shards when a
// user's owning shard is down. Deliberately model-free — the point of
// degraded mode is to not depend on the component that just failed.
func PopularityRanking(m *model.Matrix, cat *model.Catalog, u model.UserID, n int) []recsys.Prediction {
	rated := recsys.ExcludeRated(m, u)
	global := m.GlobalMean()
	var preds []recsys.Prediction
	for _, it := range cat.Items() {
		if rated(it.ID) {
			continue
		}
		score, conf := global, 0.0
		if mean, ok := m.ItemMean(it.ID); ok {
			c := float64(len(m.ItemRatings(it.ID)))
			score, conf = mean, c/(c+5)
		}
		preds = append(preds, recsys.Prediction{Item: it.ID, Score: score, Confidence: conf})
	}
	recsys.SortPredictions(preds)
	return recsys.TopN(preds, n)
}

// stageExplainTopNDegraded replaces explainTopN: every surviving entry
// gets a cheap degraded explanation instead of the primary explainer's.
// Entries are rebuilt from scratch (idempotent under retry).
func (e *Engine) stageExplainTopNDegraded(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	s := snapshotFrom(ctx)
	// Rebuilt from scratch for retry-idempotence, pre-sized so the
	// per-entry appends never regrow the backing array.
	req.Entries = make([]present.Entry, 0, len(req.Preds))
	for _, pr := range req.Preds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		it, err := e.catalog.Item(pr.Item)
		if err != nil {
			continue
		}
		exp := e.degradedExplanation(s, req.User, it)
		e.stats.explanationsServed.Add(1)
		req.Entries = append(req.Entries, present.Entry{Item: it, Prediction: pr, Explanation: exp})
	}
	e.stats.degradedServed.Add(1)
	return nil, nil
}

// stageExplainDegraded replaces the explain (and explainLow) stage for
// on-demand justification: the resolve stage has already bound
// req.Target, so only the explanation source is downgraded.
func (e *Engine) stageExplainDegraded(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	s := snapshotFrom(ctx)
	req.Explanation = e.degradedExplanation(s, req.User, req.Target)
	e.stats.explanationsServed.Add(1)
	e.stats.degradedServed.Add(1)
	return nil, nil
}

// degradedExplanation produces a schema-complete explanation without
// touching the primary explainer, trying progressively cheaper
// evidence; it never fails, which is what makes the fallback routes
// total. Every result is marked Degraded.
func (e *Engine) degradedExplanation(s *snapshot, u model.UserID, it *model.Item) *explain.Explanation {
	// Cheapest faithful source first: the keyword profile explainer
	// ("your interests suggest..."), which shares no machinery with the
	// hybrid explainer path beyond the keyword index.
	if s.degraded != nil {
		if exp, err := s.degraded.Explain(u, it); err == nil {
			exp.Degraded = true
			return exp
		}
	}
	return PopularityExplanation(s.ratings, it)
}

// PopularityExplanation produces a schema-complete degraded
// explanation for it from raw rating counts in m — honest
// collaborative-style evidence when anyone rated the item, a plain
// catalogue-pick sentence (marked unfaithful: it reflects no data)
// otherwise. It never fails, which is what makes degraded routes
// total; the cluster router serves it when a user's owning shard is
// down, grounding the text in whichever shards survive.
func PopularityExplanation(m *model.Matrix, it *model.Item) *explain.Explanation {
	if mean, ok := m.ItemMean(it.ID); ok {
		c := float64(len(m.ItemRatings(it.ID)))
		return &explain.Explanation{
			Style: explain.CollaborativeBased,
			Text: fmt.Sprintf("%d of our users rated %s, averaging %s.",
				int(c), it.Title, ratedPhrase(mean)),
			Confidence: c / (c + 5),
			Faithful:   true,
			Degraded:   true,
		}
	}
	// Last resort: a catalogue pick with no grounding evidence; marked
	// unfaithful because it reflects no data about the recommendation.
	return &explain.Explanation{
		Style:    explain.PreferenceBased,
		Text:     fmt.Sprintf("%s is one of our catalogue picks.", it.Title),
		Faithful: false,
		Degraded: true,
	}
}

// ratedPhrase renders "4.2 stars" fragments for degraded explanations.
func ratedPhrase(v float64) string { return fmt.Sprintf("%.1f stars", v) }

// ---- resilience event counters ----

// eventRecorder implements resilience.Recorder over a sync.Map, the
// same lock-free-after-first-touch pattern as stageRecorder. Keys are
// "pipeline/stage/event". Each event is also attached to the request's
// trace (when one is active on ctx) as a zero-duration child span, so
// a retained trace shows retry attempts, breaker flips and fallback
// reroutes inline with the stage spans they interrupted.
type eventRecorder struct {
	m sync.Map // "pipeline/stage/event" → *atomic.Int64
}

// RecordEvent implements resilience.Recorder.
func (r *eventRecorder) RecordEvent(ctx context.Context, pipe, stage, event string) {
	key := pipe + "/" + stage + "/" + event
	v, ok := r.m.Load(key)
	if !ok {
		v, _ = r.m.LoadOrStore(key, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
	trace.Event(ctx, event, trace.Attr{Key: "stage", Value: pipe + "/" + stage})
}

// snapshot copies the counters into a plain map for Stats, sorted
// iteration being the caller's concern. Nil when no events occurred.
func (r *eventRecorder) snapshot() map[string]int {
	var out map[string]int
	r.m.Range(func(k, v any) bool {
		if out == nil {
			out = make(map[string]int)
		}
		out[k.(string)] = int(v.(*atomic.Int64).Load())
		return true
	})
	return out
}
