// Chaos acceptance tests: deterministic fault injection (internal/
// fault) against an engine with the resilience chain installed. The
// headline contract under test is the issue's: with the primary explain
// stage forced broken, recommend/explain still answer with well-formed
// explanations marked degraded, and every breaker/shed/retry/fallback
// event is visible in Stats.

package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/pipeline"
)

// chaosEngine builds an engine over a small community with resilience
// on and the given fault rules injected innermost.
func chaosEngine(t testing.TB, cfg ResilienceConfig, rules ...fault.Rule) (*Engine, *fault.Injector) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 601, Users: 40, Items: 60, RatingsPerUser: 15})
	inj := fault.NewInjector(601, rules...)
	eng, err := New(c.Catalog, c.Ratings,
		WithSeed(1),
		WithResilience(cfg),
		WithChaos(inj.Interceptor()),
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng, inj
}

// checkDegradedExplanation asserts an explanation is schema-complete
// and honestly tagged: non-empty text, a printable style, Degraded set.
func checkDegradedExplanation(t *testing.T, exp *explain.Explanation) {
	t.Helper()
	if exp == nil {
		t.Fatal("nil explanation")
	}
	if !exp.Degraded {
		t.Fatalf("explanation %q not marked Degraded", exp.Text)
	}
	if exp.Text == "" {
		t.Fatal("degraded explanation has empty text")
	}
	if s := exp.Style.String(); strings.HasPrefix(s, "Style(") {
		t.Fatalf("degraded explanation has invalid style %s", s)
	}
	if exp.Confidence < 0 || exp.Confidence > 1 {
		t.Fatalf("degraded explanation confidence %v outside [0,1]", exp.Confidence)
	}
}

// TestExplainDegradedWhenPrimaryBroken forces the explain stage to fail
// on every call: each request must still answer 200-shaped (no error)
// with a degraded explanation, and once the breaker opens, later
// requests are served degraded without even touching the broken stage.
func TestExplainDegradedWhenPrimaryBroken(t *testing.T) {
	eng, inj := chaosEngine(t, ResilienceConfig{BreakerThreshold: 3},
		fault.Rule{Pipeline: pipeline.OpExplain, Stage: "explain", Nth: 1, Err: fault.ErrInjected})
	item := eng.Catalog().Items()[0].ID
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		exp, err := eng.ExplainContext(ctx, model.UserID(i%5), item)
		if err != nil {
			t.Fatalf("explain %d: err = %v, want degraded success", i, err)
		}
		checkDegradedExplanation(t, exp)
	}

	m := eng.Metrics()
	if m.DegradedServed != 10 {
		t.Fatalf("DegradedServed = %d, want 10", m.DegradedServed)
	}
	if m.Resilience["explain/explain/breaker_open"] == 0 {
		t.Fatal("breaker never opened; resilience events:", m.Resilience)
	}
	if m.Resilience["explain/explain/fallback"] != 10 {
		t.Fatalf("fallback events = %d, want 10", m.Resilience["explain/explain/fallback"])
	}
	// Once open, the breaker keeps the broken stage untouched: the
	// injector saw only the pre-open calls (threshold), not all 10.
	if got := inj.Calls(0); got >= 10 {
		t.Fatalf("broken stage called %d times; breaker should have cut this below 10", got)
	}
}

// TestRecommendDegradedWhenExplainTopNBroken: the recommend pipeline's
// explanation stage fails; the presentation still arrives, marked
// degraded, with every entry carrying a degraded explanation.
func TestRecommendDegradedWhenExplainTopNBroken(t *testing.T) {
	eng, _ := chaosEngine(t, ResilienceConfig{},
		fault.Rule{Pipeline: pipeline.OpRecommend, Stage: "explainTopN", Nth: 1, Err: fault.ErrInjected})
	p, err := eng.RecommendContext(context.Background(), 1, 5)
	if err != nil {
		t.Fatalf("err = %v, want degraded success", err)
	}
	if !p.Degraded {
		t.Fatal("presentation not marked Degraded")
	}
	if len(p.Entries) == 0 {
		t.Fatal("degraded presentation has no entries")
	}
	for _, e := range p.Entries {
		checkDegradedExplanation(t, e.Explanation)
	}
}

// TestRecommendDegradedWhenRankBroken: even the ranking stage failing
// (panicking, here) leaves recommend serving — from the popularity
// fallback — and the recovered panic is visible as a resilience event.
func TestRecommendDegradedWhenRankBroken(t *testing.T) {
	eng, _ := chaosEngine(t, ResilienceConfig{},
		fault.Rule{Pipeline: pipeline.OpRecommend, Stage: "rank", Nth: 1, Panic: "rank blew up"})
	p, err := eng.RecommendContext(context.Background(), 1, 5)
	if err != nil {
		t.Fatalf("err = %v, want degraded success", err)
	}
	if !p.Degraded {
		t.Fatal("presentation not marked Degraded")
	}
	if len(p.Entries) != 5 {
		t.Fatalf("entries = %d, want 5 from popularity ranking", len(p.Entries))
	}
	m := eng.Metrics()
	if m.Resilience["recommend/rank/panic"] == 0 {
		t.Fatal("recovered panic not recorded; resilience events:", m.Resilience)
	}
	// The popularity ranking must not recommend items the user rated.
	rated := eng.Ratings().UserRatings(1)
	for _, e := range p.Entries {
		if _, ok := rated[e.Item.ID]; ok {
			t.Fatalf("degraded ranking recommended already-rated item %d", e.Item.ID)
		}
	}
}

// TestWhyLowDegradedWhenExplainLowBroken: the scrutiny path degrades
// the same way the persuasion path does.
func TestWhyLowDegradedWhenExplainLowBroken(t *testing.T) {
	eng, _ := chaosEngine(t, ResilienceConfig{},
		fault.Rule{Pipeline: pipeline.OpWhyLow, Stage: "explainLow", Nth: 1, Err: fault.ErrInjected})
	item := eng.Catalog().Items()[0].ID
	exp, err := eng.WhyLowContext(context.Background(), 2, item)
	if err != nil {
		t.Fatalf("err = %v, want degraded success", err)
	}
	checkDegradedExplanation(t, exp)
}

// TestDomainErrorsAreNotDegraded: a domain outcome (unknown item) keeps
// its error identity — fallbacks are for infrastructure faults only —
// and never trips the breaker.
func TestDomainErrorsAreNotDegraded(t *testing.T) {
	eng, _ := chaosEngine(t, ResilienceConfig{BreakerThreshold: 2})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := eng.ExplainContext(ctx, 1, model.ItemID(99999)); !errors.Is(err, model.ErrUnknownItem) {
			t.Fatalf("err = %v, want ErrUnknownItem passthrough", err)
		}
	}
	m := eng.Metrics()
	if n := m.Resilience["explain/resolve/breaker_open"]; n != 0 {
		t.Fatalf("breaker opened %d times on domain errors", n)
	}
	if m.DegradedServed != 0 {
		t.Fatalf("DegradedServed = %d on domain errors, want 0", m.DegradedServed)
	}
}

// TestRetryAbsorbsTransientFault: a fault on exactly the first explain
// call is retried away — the caller sees a normal, non-degraded
// explanation and one retry event.
func TestRetryAbsorbsTransientFault(t *testing.T) {
	eng, _ := chaosEngine(t, ResilienceConfig{RetryAttempts: 2},
		fault.Rule{Pipeline: pipeline.OpExplain, Stage: "explain", Nth: 1, Count: 1, Err: fault.ErrInjected})
	item := eng.Catalog().Items()[0].ID
	exp, err := eng.ExplainContext(context.Background(), 1, item)
	if err != nil {
		t.Fatalf("err = %v, want retried success", err)
	}
	if exp.Degraded {
		t.Fatal("retried-away fault must not serve degraded")
	}
	m := eng.Metrics()
	if m.Resilience["explain/explain/retry"] != 1 {
		t.Fatalf("retry events = %d, want 1; events: %v", m.Resilience["explain/explain/retry"], m.Resilience)
	}
	if m.DegradedServed != 0 {
		t.Fatalf("DegradedServed = %d, want 0", m.DegradedServed)
	}
}

// TestPanicCountedInStageStats (no resilience chain): a recovered panic
// keeps its stage context in Stats.Stages — the Metrics interceptor
// sees the PanicError and attributes it.
func TestPanicCountedInStageStats(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 602, Users: 20, Items: 30, RatingsPerUser: 8})
	inj := fault.NewInjector(1, fault.Rule{Pipeline: pipeline.OpExplain, Stage: "explain", Nth: 1, Panic: "boom"})
	eng, err := New(c.Catalog, c.Ratings, WithChaos(inj.Interceptor()))
	if err != nil {
		t.Fatal(err)
	}
	item := eng.Catalog().Items()[0].ID
	_, err = eng.ExplainContext(context.Background(), 1, item)
	var pe *pipeline.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError without resilience installed", err)
	}
	st := eng.Metrics().Stages["explain/explain"]
	if st.Panics != 1 || st.Errors != 1 {
		t.Fatalf("stage stats = %+v, want Panics=1 Errors=1", st)
	}
}

// TestShedUnderSaturation: with MaxConcurrent=1, MaxQueue=1 and the
// rank stage blocked, concurrent recommends see exactly the documented
// outcomes — and shed rejections surface as ErrOverloaded.
func TestShedUnderSaturation(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 64)
	gate := func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		if info.Pipeline != pipeline.OpRecommend || info.Stage != "rank" {
			return next
		}
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			entered <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return next(ctx, req)
		}
	}
	c := dataset.Movies(dataset.Config{Seed: 603, Users: 20, Items: 30, RatingsPerUser: 8})
	eng, err := New(c.Catalog, c.Ratings,
		WithResilience(ResilienceConfig{MaxConcurrent: 1, MaxQueue: 1}),
		WithChaos(gate),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	results := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := eng.RecommendContext(ctx, 1, 5)
			results <- err
		}()
	}
	<-entered // one request holds the stage; the rest queue or shed

	// Wait until shedding is observable, then release the gate.
	deadline := time.After(5 * time.Second)
	for {
		m := eng.Metrics()
		if m.Resilience["recommend/rank/shed_reject"] > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no shed_reject events under saturation")
		default:
		}
	}
	close(release)

	var ok, shed int
	for i := 0; i < 8; i++ {
		switch err := <-results; {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("unexpected outcome: %v", err)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("ok=%d shed=%d, want both positive", ok, shed)
	}
}

// TestConcurrentChaosServesEveryRequest is the -race soak: probabilistic
// faults and panics on the explain stages while many goroutines hammer
// the read API. Every single request must resolve to a success
// (degraded or not) — the engine never surfaces an infrastructure
// error while the fallback routes are total.
func TestConcurrentChaosServesEveryRequest(t *testing.T) {
	eng, _ := chaosEngine(t, ResilienceConfig{BreakerThreshold: 4, RetryAttempts: 2},
		fault.Rule{Pipeline: pipeline.OpExplain, Stage: "explain", P: 0.5, Err: fault.ErrInjected},
		fault.Rule{Pipeline: pipeline.OpRecommend, Stage: "explainTopN", P: 0.3, Panic: "chaos"},
	)
	ctx := context.Background()
	items := eng.Catalog().Items()

	var wg sync.WaitGroup
	errs := make(chan error, 8*40)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				// Users 1..20 exist in the community; user 0 would be a
				// legitimate cold-start error, not a chaos failure.
				u := model.UserID((w*40+i)%20 + 1)
				if i%2 == 0 {
					if _, err := eng.RecommendContext(ctx, u, 5); err != nil {
						errs <- fmt.Errorf("recommend: %w", err)
					}
				} else {
					it := items[(w+i)%len(items)].ID
					if _, err := eng.ExplainContext(ctx, u, it); err != nil {
						errs <- fmt.Errorf("explain: %w", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		// Cold-start users are a legitimate domain outcome of the
		// degraded popularity path too; anything else is a bug.
		t.Errorf("request failed under chaos: %v", err)
	}
	m := eng.Metrics()
	if m.DegradedServed == 0 {
		t.Fatal("chaos run served nothing degraded; injection did not bite")
	}
}
