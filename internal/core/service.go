package core

import (
	"context"

	"repro/internal/explain"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/present"
)

// Service is the serving surface of an explanation-capable
// recommender: the five read operations of the explain-present cycle
// plus the interaction (repair) operations that close it. The HTTP
// layer and other frontends consume this interface rather than the
// concrete *Engine, so alternative backends — a sharded engine, a
// remote engine behind RPC, a recording fake in tests — drop in
// without re-plumbing the frontend.
//
// Implementations must be safe for concurrent use; *Engine is the
// stock implementation.
type Service interface {
	// Catalog returns the item catalogue the service recommends over.
	Catalog() *model.Catalog
	// Ratings returns a point-in-time view of the rating matrix;
	// treat it as read-only.
	Ratings() *model.Matrix

	// Read path: the explain–present cycle.
	RecommendContext(ctx context.Context, u model.UserID, n int) (*present.Presentation, error)
	ExplainContext(ctx context.Context, u model.UserID, item model.ItemID) (*explain.Explanation, error)
	WhyLowContext(ctx context.Context, u model.UserID, item model.ItemID) (*explain.Explanation, error)
	BrowseAllContext(ctx context.Context, u model.UserID) (*present.RatingsView, error)
	SimilarToContext(ctx context.Context, u model.UserID, seed model.ItemID, n int) (*present.Presentation, error)

	// Interaction path: feedback and repair actions.
	Rate(u model.UserID, item model.ItemID, value float64) error
	RemoveRating(u model.UserID, item model.ItemID)
	Opinion(u model.UserID, op interact.Opinion) error
	SetInfluenceWeight(u model.UserID, item model.ItemID, weight float64) error
	Surprise(u model.UserID) float64

	// Metrics reports usage counters and per-stage pipeline latencies.
	Metrics() Stats
}

// The Engine is the canonical Service.
var _ Service = (*Engine)(nil)
