// Package servicetest is a reusable conformance suite for
// core.Service implementations. Any backend claiming the interface —
// the single engine, the sharded cluster router, a future remote
// client — runs the same behavioural checks, so "drop-in" stays a
// tested property rather than a type assertion.
//
// The suite builds its own seeded community and asks the factory for a
// Service over it, then exercises the full read and interaction
// surface: serving shape, domain-error semantics, write visibility,
// and concurrent use.
package servicetest

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/interact"
	"repro/internal/model"
)

// Factory builds the Service under test over the given community. It
// is called once per subtest, so state never leaks between checks.
type Factory func(t *testing.T, cat *model.Catalog, ratings *model.Matrix) core.Service

// community returns the fixed seeded community every conformance run
// uses.
func community(t *testing.T) (*model.Catalog, *model.Matrix) {
	t.Helper()
	com := dataset.Movies(dataset.Config{Seed: 404, Users: 40, Items: 60, RatingsPerUser: 15})
	return com.Catalog, com.Ratings
}

// ratedUser returns a user with ratings, preferring a stable pick.
func ratedUser(t *testing.T, ratings *model.Matrix) model.UserID {
	t.Helper()
	users := ratings.Users()
	if len(users) == 0 {
		t.Fatal("community has no rated users")
	}
	return users[0]
}

// Run executes the conformance suite against the factory's Service
// under the given subtest name.
func Run(t *testing.T, name string, factory Factory) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		t.Run("RecommendServesRankedEntries", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			u := ratedUser(t, ratings)
			p, err := svc.RecommendContext(context.Background(), u, 5)
			if err != nil {
				t.Fatalf("Recommend: %v", err)
			}
			if len(p.Entries) == 0 || len(p.Entries) > 5 {
				t.Fatalf("got %d entries, want 1..5", len(p.Entries))
			}
			for i, e := range p.Entries {
				if e.Item == nil {
					t.Fatalf("entry %d has nil item", i)
				}
				if e.Item.ID != e.Prediction.Item {
					t.Fatalf("entry %d: item %d != prediction %d", i, e.Item.ID, e.Prediction.Item)
				}
				if i > 0 && p.Entries[i-1].Prediction.Score < e.Prediction.Score {
					t.Fatalf("entries not ranked: %v then %v", p.Entries[i-1].Prediction, e.Prediction)
				}
			}
		})

		t.Run("RecommendRejectsNonPositiveN", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			if _, err := svc.RecommendContext(context.Background(), ratedUser(t, ratings), 0); err == nil {
				t.Fatal("n=0 accepted, want error")
			}
		})

		t.Run("ExplainRecommendedItem", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			u := ratedUser(t, ratings)
			p, err := svc.RecommendContext(context.Background(), u, 3)
			if err != nil {
				t.Fatalf("Recommend: %v", err)
			}
			exp, err := svc.ExplainContext(context.Background(), u, p.Entries[0].Item.ID)
			if err != nil {
				t.Fatalf("Explain: %v", err)
			}
			if exp == nil || exp.Text == "" {
				t.Fatalf("empty explanation: %+v", exp)
			}
		})

		t.Run("ExplainUnknownItemIsDomainError", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			_, err := svc.ExplainContext(context.Background(), ratedUser(t, ratings), model.ItemID(1<<30))
			if !errors.Is(err, model.ErrUnknownItem) {
				t.Fatalf("err = %v, want ErrUnknownItem", err)
			}
		})

		t.Run("WhyLowAnswersOrDomainErrors", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			u := ratedUser(t, ratings)
			for _, it := range cat.Items() {
				exp, err := svc.WhyLowContext(context.Background(), u, it.ID)
				if err == nil {
					if exp == nil || exp.Text == "" {
						t.Fatalf("item %d: empty why-low explanation", it.ID)
					}
					return
				}
				if core.IsInfrastructureFailure(err) {
					t.Fatalf("item %d: infrastructure failure from healthy service: %v", it.ID, err)
				}
			}
			t.Fatal("why-low answered for no item at all")
		})

		t.Run("BrowseAllCoversCatalogue", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			v, err := svc.BrowseAllContext(context.Background(), ratedUser(t, ratings))
			if err != nil {
				t.Fatalf("BrowseAll: %v", err)
			}
			if got := len(v.Entries) + len(v.Unrated()); got != cat.Len() {
				t.Fatalf("entries %d + unrated %d != catalogue %d", len(v.Entries), len(v.Unrated()), cat.Len())
			}
		})

		t.Run("SimilarToDeduplicatesAndBounds", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			seed := cat.Items()[0]
			p, err := svc.SimilarToContext(context.Background(), ratedUser(t, ratings), seed.ID, 5)
			if err != nil {
				t.Fatalf("SimilarTo: %v", err)
			}
			if len(p.Entries) > 5 {
				t.Fatalf("got %d entries, want <= 5", len(p.Entries))
			}
			seen := map[model.ItemID]bool{}
			for _, e := range p.Entries {
				if e.Item == nil {
					t.Fatal("nil item in similar entries")
				}
				if e.Item.ID == seed.ID {
					t.Fatal("seed item recommended as similar to itself")
				}
				if seen[e.Item.ID] {
					t.Fatalf("duplicate item %d", e.Item.ID)
				}
				seen[e.Item.ID] = true
			}
		})

		t.Run("SimilarToUnknownSeedErrors", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			if _, err := svc.SimilarToContext(context.Background(), ratedUser(t, ratings), model.ItemID(1<<30), 5); !errors.Is(err, model.ErrUnknownItem) {
				t.Fatalf("err = %v, want ErrUnknownItem", err)
			}
		})

		t.Run("RateIsVisibleAndRemovable", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			u := model.UserID(999001) // fresh user, any shard
			it := cat.Items()[1].ID
			if err := svc.Rate(u, it, 4); err != nil {
				t.Fatalf("Rate: %v", err)
			}
			if got, ok := svc.Ratings().Get(u, it); !ok || got != 4 {
				t.Fatalf("rating = %v,%v after Rate, want 4,true", got, ok)
			}
			svc.RemoveRating(u, it)
			if _, ok := svc.Ratings().Get(u, it); ok {
				t.Fatal("rating survived RemoveRating")
			}
		})

		t.Run("RateRejectsNonFinite", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
				if err := svc.Rate(ratedUser(t, ratings), cat.Items()[0].ID, v); !errors.Is(err, core.ErrNonFiniteValue) {
					t.Fatalf("Rate(%v) err = %v, want ErrNonFiniteValue", v, err)
				}
			}
			if err := svc.SetInfluenceWeight(ratedUser(t, ratings), cat.Items()[0].ID, math.NaN()); !errors.Is(err, core.ErrNonFiniteValue) {
				t.Fatal("SetInfluenceWeight accepted NaN")
			}
		})

		t.Run("OpinionMovesSurprise", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			u := ratedUser(t, ratings)
			before := svc.Surprise(u)
			if err := svc.Opinion(u, interact.Opinion{Kind: interact.SurpriseMe}); err != nil {
				t.Fatalf("Opinion: %v", err)
			}
			if after := svc.Surprise(u); after <= before {
				t.Fatalf("surprise %v -> %v, want increase", before, after)
			}
			if err := svc.Opinion(u, interact.Opinion{Kind: interact.MoreLikeThis, Item: model.ItemID(1 << 30)}); !errors.Is(err, model.ErrUnknownItem) {
				t.Fatalf("opinion on unknown item: err = %v, want ErrUnknownItem", err)
			}
		})

		t.Run("MetricsCountReads", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			u := ratedUser(t, ratings)
			before := svc.Metrics().Recommendations
			if _, err := svc.RecommendContext(context.Background(), u, 3); err != nil {
				t.Fatalf("Recommend: %v", err)
			}
			if after := svc.Metrics().Recommendations; after <= before {
				t.Fatalf("recommendations %d -> %d, want increase", before, after)
			}
		})

		t.Run("ConcurrentUse", func(t *testing.T) {
			cat, ratings := community(t)
			svc := factory(t, cat, ratings)
			users := ratings.Users()
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					u := users[i%len(users)]
					for j := 0; j < 10; j++ {
						if _, err := svc.RecommendContext(context.Background(), u, 3); err != nil && core.IsInfrastructureFailure(err) {
							t.Errorf("Recommend: %v", err)
							return
						}
						if err := svc.Rate(u, cat.Items()[j%cat.Len()].ID, float64(1+j%5)); err != nil {
							t.Errorf("Rate: %v", err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
		})
	})
}
