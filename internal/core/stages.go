// The engine's five read operations decomposed into pipeline stages.
// Each stage is a method closure over the Engine that pulls the
// immutable snapshot from the request context, so every stage of one
// request observes the same model generation and the lock-free read
// path of the snapshot design is preserved exactly.
//
// Stage graph (stock interceptors wrap every stage: Metrics outermost,
// then Deadline, then Recover — see internal/pipeline):
//
//	recommend: rank → rerank → explainTopN → present
//	explain:   resolve → explain → present (personality-decorated)
//	whylow:    resolve → explainLow → present
//	browse:    present
//	similar:   resolve → present

package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/explain"
	"repro/internal/pipeline"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/trace"
)

// snapCtxKey carries the per-request snapshot through the context, as
// the pipeline contract requires: stages never load the engine's
// current snapshot themselves, which could observe a newer generation
// mid-request.
type snapCtxKey struct{}

// withSnapshot attaches the request's model snapshot to ctx.
func withSnapshot(ctx context.Context, s *snapshot) context.Context {
	return context.WithValue(ctx, snapCtxKey{}, s)
}

// snapshotFrom retrieves the request's model snapshot.
func snapshotFrom(ctx context.Context) *snapshot {
	s, _ := ctx.Value(snapCtxKey{}).(*snapshot)
	return s
}

// readSnapshot loads the current snapshot for one read operation and
// returns the matching release function (an RUnlock in guarded
// compatibility mode, a no-op on the lock-free path).
func (e *Engine) readSnapshot() (*snapshot, func()) {
	s := e.snap.Load()
	if s.guard != nil {
		s.guard.RLock()
		return s, s.guard.RUnlock
	}
	return s, func() {}
}

// tracedSnapshot is readSnapshot with a snapshot-kind trace span
// covering the acquisition: instantaneous on the lock-free path,
// potentially long in guarded compatibility mode where the span
// exposes read-lock contention that per-stage timings would hide.
func (e *Engine) tracedSnapshot(ctx context.Context) (*snapshot, func()) {
	_, sp := trace.StartSpan(ctx, "snapshot", trace.KindSnapshot)
	s, release := e.readSnapshot()
	if sp != nil {
		if s.guard != nil {
			sp.SetAttr("mode", "guarded")
		} else {
			sp.SetAttr("mode", "lock-free")
		}
		sp.End(nil)
	}
	return s, release
}

// pipelines holds one composed pipeline per read operation.
type pipelines struct {
	recommend *pipeline.Pipeline
	explain   *pipeline.Pipeline
	whyLow    *pipeline.Pipeline
	browse    *pipeline.Pipeline
	similar   *pipeline.Pipeline
}

// buildPipelines composes the read-operation pipelines once, at
// construction time. Custom interceptors installed via WithInterceptor
// wrap outside the stock set, so they observe each stage exactly as
// the stock chain reports it. With WithResilience and WithTracer the
// full per-stage chain is
//
//	extraICs → Metrics → Trace → Shed → Fallback → Breaker → Retry →
//	Deadline → Recover → chaos → stage
//
// (see DESIGN.md §7–§8 for the ordering rationale); Trace sits inside
// Metrics so stage metrics are never inflated by span bookkeeping, and
// outside the resilience chain so one stage span covers shed queueing,
// every retry attempt and the degraded fallback. Chaos interceptors
// (WithChaos) sit innermost so injected faults traverse every
// production layer.
func (e *Engine) buildPipelines() {
	ics := append(append([]pipeline.Interceptor{}, e.extraICs...),
		pipeline.Metrics(&e.stageStats))
	if e.tracer != nil {
		ics = append(ics, trace.Interceptor(e.tracer, classifyError))
	}
	if e.resilience != nil {
		ics = append(ics, e.resilienceChain()...)
	}
	ics = append(ics,
		pipeline.Deadline(e.stageTimeout),
		pipeline.Recover(),
	)
	ics = append(ics, e.chaos...)
	e.pipes = pipelines{
		recommend: pipeline.New(pipeline.OpRecommend, []pipeline.Stage{
			{Name: "rank", Run: e.stageRank},
			{Name: "rerank", Run: e.stageRerank},
			{Name: "explainTopN", Run: e.stageExplainTopN},
			{Name: "present", Run: e.stagePresentTopN},
		}, ics...),
		explain: pipeline.New(pipeline.OpExplain, []pipeline.Stage{
			{Name: "resolve", Run: e.stageResolveItem},
			{Name: "explain", Run: e.stageExplainOne},
			{Name: "present", Run: e.stagePresentDecorated},
		}, ics...),
		whyLow: pipeline.New(pipeline.OpWhyLow, []pipeline.Stage{
			{Name: "resolve", Run: e.stageResolveItem},
			{Name: "explainLow", Run: e.stageExplainLow},
			{Name: "present", Run: e.stagePresentExplanation},
		}, ics...),
		browse: pipeline.New(pipeline.OpBrowse, []pipeline.Stage{
			{Name: "present", Run: e.stageBrowseAll},
		}, ics...),
		similar: pipeline.New(pipeline.OpSimilar, []pipeline.Stage{
			{Name: "resolve", Run: e.stageResolveItem},
			{Name: "present", Run: e.stagePresentSimilar},
		}, ics...),
	}
}

// stageRank produces the wide candidate ranking: 4n (at least 20) so
// personality and feedback re-ranking have room to work. With an ANN
// model index on the snapshot the candidates come from an approximate
// search exact-rescored through the serving model's Predict; every
// fallback condition (no index, cold user, non-MIPS model) lands on
// the brute-force Recommend unchanged.
func (e *Engine) stageRank(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	s := snapshotFrom(ctx)
	pool := req.N * 4
	if pool < 20 {
		pool = 20
	}
	exclude := recsys.ExcludeRated(s.ratings, req.User)
	preds, ok := e.annRank(s, req.User, pool, exclude)
	if !ok {
		preds = s.rec.Recommend(req.User, pool, exclude)
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("user %d: %w", req.User, recsys.ErrColdStart)
	}
	e.stats.recommendations.Add(1)
	req.Preds = preds
	return nil, nil
}

// stageRerank applies personality adjustment and the user's opinion
// feedback, then cuts the list to the requested length.
func (e *Engine) stageRerank(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	preds := e.personality.Apply(e.catalog, req.Preds)
	preds = e.users.get(req.User, e.baseSeed).rerank(e.catalog, preds)
	req.Preds = recsys.TopN(preds, req.N)
	return nil, nil
}

// stageExplainTopN attaches an explanation to each surviving entry,
// checking cancellation between per-entry generations so a cancelled
// request stops paying the explanation cost mid-list.
func (e *Engine) stageExplainTopN(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	s := snapshotFrom(ctx)
	// Rebuild the entry list from scratch: the stage must stay
	// idempotent so the resilience layer can retry it. Pre-size to the
	// surviving prediction count so the per-entry appends never regrow
	// the backing array.
	req.Entries = make([]present.Entry, 0, len(req.Preds))
	for _, pr := range req.Preds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		it, err := e.catalog.Item(pr.Item)
		if err != nil {
			continue
		}
		var exp *explain.Explanation
		if got, err := s.explainer.Explain(req.User, it); err == nil {
			exp = e.personality.Decorate(got)
			e.stats.explanationsServed.Add(1)
		}
		req.Entries = append(req.Entries, present.Entry{Item: it, Prediction: pr, Explanation: exp})
	}
	return nil, nil
}

// stagePresentTopN renders the explained entries as a titled top-N
// presentation, stamped with the serving model generation.
func (e *Engine) stagePresentTopN(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	return &pipeline.Response{Presentation: &present.Presentation{
		Title:        "Top " + strconv.Itoa(len(req.Preds)) + " for you",
		Entries:      req.Entries,
		Degraded:     req.Degraded,
		ModelVersion: snapshotFrom(ctx).modelVersion,
	}}, nil
}

// stageResolveItem resolves the request's target/seed item against the
// catalogue.
func (e *Engine) stageResolveItem(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	it, err := e.catalog.Item(req.Item)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	req.Target = it
	return nil, nil
}

// stageExplainOne generates the on-demand justification for the
// resolved item.
func (e *Engine) stageExplainOne(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	s := snapshotFrom(ctx)
	exp, err := s.explainer.Explain(req.User, req.Target)
	if err != nil {
		return nil, err
	}
	e.stats.explanationsServed.Add(1)
	req.Explanation = exp
	return nil, nil
}

// stageExplainLow answers "why is this predicted low?" from the
// profile explainer.
func (e *Engine) stageExplainLow(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	s := snapshotFrom(ctx)
	exp, err := s.low.ExplainLow(req.User, req.Target)
	if err != nil {
		return nil, err
	}
	e.stats.whyLowQueries.Add(1)
	req.Explanation = exp
	return nil, nil
}

// stagePresentDecorated finishes an explanation with the personality's
// presentation layer (disclosure, tone).
func (e *Engine) stagePresentDecorated(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	exp := e.personality.Decorate(req.Explanation)
	if req.Degraded {
		exp.Degraded = true
	}
	exp.ModelVersion = snapshotFrom(ctx).modelVersion
	return &pipeline.Response{Explanation: exp}, nil
}

// stagePresentExplanation returns the explanation as generated; why-low
// answers are scrutiny, not persuasion, so the personality stays out.
func (e *Engine) stagePresentExplanation(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	if req.Degraded {
		req.Explanation.Degraded = true
	}
	req.Explanation.ModelVersion = snapshotFrom(ctx).modelVersion
	return &pipeline.Response{Explanation: req.Explanation}, nil
}

// stageBrowseAll builds the predicted-ratings-for-everything view.
func (e *Engine) stageBrowseAll(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	s := snapshotFrom(ctx)
	v := present.PredictedRatings(e.catalog, s.rec, s.low, req.User)
	v.ModelVersion = s.modelVersion
	return &pipeline.Response{View: v}, nil
}

// stagePresentSimilar renders the similar-to-seed presentation: from
// the ANN content index (approximate search, exact rescore through
// present.ContentScore, identical rendering) when WithANN configured
// one, else by the brute-force catalogue scan.
func (e *Engine) stagePresentSimilar(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	s := snapshotFrom(ctx)
	p, ok := e.annSimilar(s, req.User, req.Target, req.N)
	if !ok {
		p = present.SimilarToTop(e.catalog, req.Target, req.N, recsys.ExcludeRated(s.ratings, req.User))
	}
	p.ModelVersion = s.modelVersion
	return &pipeline.Response{Presentation: p}, nil
}

// ---- per-stage metrics ----

// StageStats are the cumulative counters of one pipeline stage,
// reported under "pipeline/stage" keys in Stats.Stages.
type StageStats struct {
	Invocations int           // stage executions (including refused/failed)
	Errors      int           // executions that returned an error
	Panics      int           // executions whose error was a recovered panic
	Latency     time.Duration // cumulative wall time inside the stage chain
}

// stageCounter is the atomic backing store of one stage's counters.
type stageCounter struct {
	n      atomic.Int64
	errs   atomic.Int64
	panics atomic.Int64
	nanos  atomic.Int64
}

// stageRecorder implements pipeline.StatsRecorder over a sync.Map so
// the hot path stays lock-free after the first request per stage.
type stageRecorder struct {
	m sync.Map // "pipeline/stage" → *stageCounter
}

// RecordStage implements pipeline.StatsRecorder.
func (r *stageRecorder) RecordStage(pipe, stage string, d time.Duration, err error) {
	key := pipe + "/" + stage
	v, ok := r.m.Load(key)
	if !ok {
		v, _ = r.m.LoadOrStore(key, &stageCounter{})
	}
	c := v.(*stageCounter)
	c.n.Add(1)
	c.nanos.Add(int64(d))
	if err != nil {
		c.errs.Add(1)
		// Keep the stage identity of a recovered panic: Recover wraps
		// the panic value with pipeline/stage, and counting it here
		// (rather than only in the error total) preserves that context
		// in Stats even when a fallback later absorbs the error.
		var pe *pipeline.PanicError
		if errors.As(err, &pe) {
			c.panics.Add(1)
		}
	}
}

// snapshot copies the counters into a plain map for Stats.
func (r *stageRecorder) snapshot() map[string]StageStats {
	out := make(map[string]StageStats)
	r.m.Range(func(k, v any) bool {
		c := v.(*stageCounter)
		out[k.(string)] = StageStats{
			Invocations: int(c.n.Load()),
			Errors:      int(c.errs.Load()),
			Panics:      int(c.panics.Load()),
			Latency:     time.Duration(c.nanos.Load()),
		}
		return true
	})
	return out
}
