// Integration tests for tracing inside the engine: a traced request
// produces stage spans parented to the root, a snapshot-kind span for
// snapshot acquisition, and — under injected chaos — event child spans
// for every resilience action (retry, breaker flip, fallback reroute)
// on a trace retained because the request was served degraded.

package core

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// tracedEngine builds an engine with a deterministic tracer installed,
// plus whatever resilience/chaos configuration the test needs.
func tracedEngine(t testing.TB, tr *trace.Tracer, opts ...Option) *Engine {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 901, Users: 30, Items: 50, RatingsPerUser: 12})
	e, err := New(c.Catalog, c.Ratings, append([]Option{WithSeed(1), WithTracer(tr)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTraceRecordsStageAndSnapshotSpans: a healthy traced Recommend
// yields one span per pipeline stage plus the snapshot span, all
// correctly parented under the root.
func TestTraceRecordsStageAndSnapshotSpans(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1}) // retain everything
	e := tracedEngine(t, tr)

	ctx, root := tr.Start(context.Background(), "recommend")
	if _, err := e.RecommendContext(ctx, 1, 5); err != nil {
		t.Fatal(err)
	}
	root.End(nil)

	d := tr.Lookup(root.TraceID())
	if d == nil {
		t.Fatal("trace not retained at SampleRate 1")
	}
	byName := map[string]trace.Span{}
	for _, s := range d.Spans {
		byName[s.Name] = s
	}
	for _, stage := range []string{"recommend/rank", "recommend/rerank", "recommend/explainTopN", "recommend/present"} {
		sp, ok := byName[stage]
		if !ok {
			t.Fatalf("no span for stage %s in %v", stage, names(d.Spans))
		}
		if sp.Kind != trace.KindStage || sp.Parent != root.SpanID() {
			t.Fatalf("stage span %s = kind %q parent %v, want stage kind parented to root", stage, sp.Kind, sp.Parent)
		}
	}
	snap, ok := byName["snapshot"]
	if !ok || snap.Kind != trace.KindSnapshot {
		t.Fatalf("snapshot span missing or wrong kind: %+v", snap)
	}
	if !hasAttr(byName["recommend/rank"].Attrs, "user", "1") {
		t.Fatalf("rank span lacks user attr: %v", byName["recommend/rank"].Attrs)
	}
}

// TestChaosTraceShowsResilienceEvents is the trace half of the issue's
// acceptance scenario at engine level: with the explain stage broken,
// retry enabled and a one-failure breaker, the (degraded-retained)
// trace's span tree shows the retry attempts, the breaker flip and the
// degraded fallback as event spans under the explain stage span.
func TestChaosTraceShowsResilienceEvents(t *testing.T) {
	tr := trace.New(trace.Options{})
	inj := fault.NewInjector(901,
		fault.Rule{Pipeline: pipeline.OpExplain, Stage: "explain", Nth: 1, Err: fault.ErrInjected})
	e := tracedEngine(t, tr,
		WithResilience(ResilienceConfig{BreakerThreshold: 1, RetryAttempts: 2}),
		WithChaos(inj.Interceptor()),
	)

	ctx, root := tr.Start(context.Background(), "explain")
	exp, err := e.ExplainContext(ctx, 1, 3)
	if err != nil {
		t.Fatalf("degraded explain should succeed, got %v", err)
	}
	if !exp.Degraded {
		t.Fatal("explanation not marked degraded")
	}
	root.End(nil)

	d := tr.Lookup(root.TraceID())
	if d == nil {
		t.Fatal("degraded trace not retained")
	}
	if d.Reason != trace.ReasonDegraded || !d.Degraded || d.Status != "ok" {
		t.Fatalf("trace = reason %q degraded %v status %q, want degraded/true/ok", d.Reason, d.Degraded, d.Status)
	}

	var stageSpan trace.Span
	events := map[string]trace.Span{}
	for _, s := range d.Spans {
		if s.Name == "explain/explain" && s.Kind == trace.KindStage {
			stageSpan = s
		}
		if s.Kind == trace.KindEvent {
			events[s.Name] = s
		}
	}
	if stageSpan.ID.IsZero() {
		t.Fatalf("no explain stage span in %v", names(d.Spans))
	}
	// The stage span itself ended clean: fallback absorbed the failure.
	if stageSpan.Err != "" {
		t.Fatalf("stage span err = %q, want clean (fallback absorbed it)", stageSpan.Err)
	}
	if !hasAttr(stageSpan.Attrs, "degraded", "true") {
		t.Fatalf("stage span not marked degraded: %v", stageSpan.Attrs)
	}
	for _, want := range []string{"retry", "breaker_open", "fallback"} {
		ev, ok := events[want]
		if !ok {
			t.Fatalf("no %s event span in %v", want, names(d.Spans))
		}
		if ev.Parent != stageSpan.ID {
			t.Fatalf("%s event parented to %v, want the explain stage span %v", want, ev.Parent, stageSpan.ID)
		}
		if !hasAttr(ev.Attrs, "stage", "explain/explain") {
			t.Fatalf("%s event lacks stage attr: %v", want, ev.Attrs)
		}
	}
}

// TestUntracedRequestsRecordNothing: with a tracer installed but no
// root span on the context, requests pass through the interceptor on
// the nil-span fast path and nothing is started or retained.
func TestUntracedRequestsRecordNothing(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	e := tracedEngine(t, tr)
	if _, err := e.RecommendContext(context.Background(), 1, 5); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Recent(0)); got != 0 {
		t.Fatalf("untraced request retained %d traces", got)
	}
	if got := len(tr.Metrics()); got != 0 {
		t.Fatalf("untraced request started %d ops worth of traces", got)
	}
}

func names(spans []trace.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Kind + ":" + s.Name
	}
	return out
}

func hasAttr(attrs []trace.Attr, key, value string) bool {
	for _, a := range attrs {
		if a.Key == key && a.Value == value {
			return true
		}
	}
	return false
}
