// Durability: an Engine built WithWAL writes every mutating operation
// to a write-ahead log before publishing the snapshot that contains
// it, and replays the log at construction, so the scrutable user
// profile the survey is about — ratings, critiques, influence edits —
// survives a process crash. The WAL stores opaque payloads; this file
// owns the record and checkpoint codecs.
//
// Ordering invariant: the record is appended (and, under FsyncAlways,
// on stable storage) BEFORE the snapshot swap makes the mutation
// visible to readers. An append failure therefore rejects the
// mutation outright — the engine never acknowledges a write it cannot
// make durable.
//
// Checkpoints materialise the full recovered state — rating matrix,
// influence-weight ledger, per-user opinion logs — as deterministic
// sorted JSON every CheckpointEvery records, bounding replay length.
// The first Open of an empty directory writes a baseline checkpoint of
// the constructor matrix, so a WAL directory is always self-contained:
// recovery never needs to consult (and can never resurrect state from)
// the matrix passed to New on a later boot.

package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/wal"
)

// DefaultCheckpointEvery is the default record count between automatic
// checkpoints.
const DefaultCheckpointEvery = 512

// WALConfig configures the engine's write-ahead log.
type WALConfig struct {
	// FS is the log's storage (wal.DirFS for a directory). Required.
	FS wal.FS
	// Fsync is the durability policy (default wal.FsyncAlways).
	Fsync wal.FsyncPolicy
	// FsyncEvery bounds unsynced appends under wal.FsyncEveryN.
	FsyncEvery int
	// CheckpointEvery writes a checkpoint after this many records
	// since the last one; values below 1 select DefaultCheckpointEvery.
	CheckpointEvery int
	// SegmentBytes overrides the log's segment rotation size (0 =
	// wal.DefaultSegmentBytes).
	SegmentBytes int64
}

// WithWAL arms durable logging: every mutating operation is appended
// to the log before it becomes visible, and New replays the log (last
// checkpoint + tail records) before serving, so a restarted engine
// resumes exactly where the crashed one was acknowledged to be.
func WithWAL(cfg WALConfig) Option {
	return func(e *Engine) { e.walCfg = &cfg }
}

// ---- record codec ----

// WAL operation names. They are the on-disk format: append-only.
const (
	walOpRate      = "rate"
	walOpRemove    = "remove"
	walOpImport    = "import"
	walOpEvict     = "evict"
	walOpOpinion   = "opinion"
	walOpInfluence = "influence"
)

// walRecord is one logged mutation. Value carries the rating for
// "rate" and the weight for "influence".
type walRecord struct {
	Op      string                   `json:"op"`
	User    model.UserID             `json:"u"`
	Item    model.ItemID             `json:"it,omitempty"`
	Value   float64                  `json:"v"`
	Ratings map[model.ItemID]float64 `json:"r,omitempty"`
	Kind    interact.OpinionKind     `json:"k,omitempty"`
	Aspect  string                   `json:"a,omitempty"`
}

// ---- checkpoint codec ----

// walCheckpointVersion is bumped on incompatible checkpoint layout
// changes; decode rejects unknown versions.
const walCheckpointVersion = 1

var errCheckpointVersion = errors.New("core: unsupported WAL checkpoint version")

type walCheckpoint struct {
	Version int `json:"version"`
	// DataRev and TrainedRev are the model lifecycle's watermarks at
	// checkpoint time (absent without WithTrainer): DataRev counts
	// snapshot-publishing writes, TrainedRev is DataRev as of the last
	// swapped-in model. New restores them before replay, so revision
	// numbering is continuous across restarts and a warm start can
	// compare the persisted artifact's DataRev against the writes the
	// checkpoint has already materialised — not just the replayed tail.
	DataRev    uint64         `json:"data_rev,omitempty"`
	TrainedRev uint64         `json:"trained_rev,omitempty"`
	Users      []walUserState `json:"users,omitempty"`
}

// walUserState is one user's full durable state: ratings, influence
// edits, and the opinion log in application order.
type walUserState struct {
	User      model.UserID `json:"u"`
	Ratings   []walEntry   `json:"r,omitempty"`
	Influence []walEntry   `json:"w,omitempty"`
	Opinions  []walOpinion `json:"o,omitempty"`
	// Rev is the user's last-write data revision (absent when the last
	// write predates the last model swap — such users need no fold-in,
	// or when no lifecycle is configured). It keeps warm starts exact:
	// the fold set is every user with Rev beyond the artifact's DataRev.
	Rev uint64 `json:"rev,omitempty"`
}

type walEntry struct {
	Item  model.ItemID `json:"it"`
	Value float64      `json:"v"`
}

type walOpinion struct {
	Kind   interact.OpinionKind `json:"k"`
	Item   model.ItemID         `json:"it,omitempty"`
	Aspect string               `json:"a,omitempty"`
}

// walLedger is the engine's record of durable state that lives outside
// the rating matrix: influence-weight edits (last write wins) and
// per-user opinion logs (order matters — opinion application is not
// commutative). Guarded by writeMu; exists only WithWAL.
type walLedger struct {
	influence map[influenceKey]float64
	opinions  map[model.UserID][]interact.Opinion
}

type influenceKey struct {
	U  model.UserID
	It model.ItemID
}

func newWALLedger() *walLedger {
	return &walLedger{
		influence: map[influenceKey]float64{},
		opinions:  map[model.UserID][]interact.Opinion{},
	}
}

// ledgerApply folds one applied record into the ledger. Caller holds
// writeMu. Eviction deliberately leaves the ledger untouched: the live
// engine keeps a user's feedback model and influence weights across
// EvictUser (only the matrix row is cleared), so the durable state
// must too — otherwise a checkpoint-then-restart after a migration
// would serve that user differently than the process that never died.
func (e *Engine) ledgerApply(rec *walRecord) {
	if e.ledger == nil || rec == nil {
		return
	}
	switch rec.Op {
	case walOpInfluence:
		e.ledger.influence[influenceKey{U: rec.User, It: rec.Item}] = rec.Value
	case walOpOpinion:
		e.ledger.opinions[rec.User] = append(e.ledger.opinions[rec.User],
			interact.Opinion{Kind: rec.Kind, Item: rec.Item, Aspect: rec.Aspect})
	}
}

// encodeWALCheckpoint renders the current durable state as
// deterministic JSON: users sorted, items sorted, opinions in
// application order. Caller holds writeMu, so the matrix and the
// ledger are cut at the same instant.
func (e *Engine) encodeWALCheckpoint() ([]byte, error) {
	m := e.snap.Load().ratings
	seen := map[model.UserID]bool{}
	for _, u := range m.Users() {
		seen[u] = true
	}
	for k := range e.ledger.influence {
		seen[k.U] = true
	}
	for u := range e.ledger.opinions {
		seen[u] = true
	}
	if e.lc != nil {
		// A touched user with no surviving ratings (all removed) still
		// carries a fold-in marker the next warm start must see.
		for u := range e.lc.touched {
			seen[u] = true
		}
	}
	users := make([]model.UserID, 0, len(seen))
	for u := range seen {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })

	ck := walCheckpoint{Version: walCheckpointVersion}
	if e.lc != nil {
		ck.DataRev = e.lc.dataRev
		ck.TrainedRev = e.lc.trainedRev
	}
	for _, u := range users {
		us := walUserState{User: u}
		if e.lc != nil {
			us.Rev = e.lc.touched[u]
		}
		for it, v := range m.UserRatings(u) {
			us.Ratings = append(us.Ratings, walEntry{Item: it, Value: v})
		}
		sort.Slice(us.Ratings, func(a, b int) bool { return us.Ratings[a].Item < us.Ratings[b].Item })
		for k, w := range e.ledger.influence {
			if k.U == u {
				us.Influence = append(us.Influence, walEntry{Item: k.It, Value: w})
			}
		}
		sort.Slice(us.Influence, func(a, b int) bool { return us.Influence[a].Item < us.Influence[b].Item })
		for _, op := range e.ledger.opinions[u] {
			us.Opinions = append(us.Opinions, walOpinion{Kind: op.Kind, Item: op.Item, Aspect: op.Aspect})
		}
		ck.Users = append(ck.Users, us)
	}
	return json.Marshal(ck)
}

// decodeWALCheckpoint rebuilds the rating matrix and the checkpoint's
// ledger state from a checkpoint payload.
func decodeWALCheckpoint(payload []byte) (*model.Matrix, *walCheckpoint, error) {
	var ck walCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil, nil, fmt.Errorf("core: decoding WAL checkpoint: %w", err)
	}
	if ck.Version != walCheckpointVersion {
		return nil, nil, fmt.Errorf("%w: %d", errCheckpointVersion, ck.Version)
	}
	m := model.NewMatrix()
	for _, us := range ck.Users {
		for _, r := range us.Ratings {
			m.Set(us.User, r.Item, r.Value)
		}
	}
	return m, &ck, nil
}

// ---- logging hooks ----

// walAppend logs one record before its mutation is applied. Caller
// holds writeMu. Nil-safe: a no-op without a WAL and during replay.
func (e *Engine) walAppend(rec *walRecord) error {
	if e.wlog == nil || rec == nil || e.walReplaying {
		return nil
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("core: encoding WAL record: %w", err)
	}
	if _, err := e.wlog.Append(body); err != nil {
		return fmt.Errorf("core: WAL append rejected the write: %w", err)
	}
	return nil
}

// walMaybeCheckpoint writes a checkpoint when enough records have
// accumulated since the last one. Caller holds writeMu. A checkpoint
// failure is not fatal to the write that triggered it (the write is
// already durable in the log); the next write retries, and a failed
// fsync inside the attempt marks the log failed anyway.
func (e *Engine) walMaybeCheckpoint() {
	if e.wlog == nil || e.walReplaying {
		return
	}
	every := e.walCfg.CheckpointEvery
	if every < 1 {
		every = DefaultCheckpointEvery
	}
	if e.wlog.State().CheckpointAge >= uint64(every) {
		//lint:ignore dropped-error checkpointing is best-effort: the triggering write is already durable and the next write retries
		_ = e.walCheckpointLocked()
	}
}

// walCheckpointLocked encodes the current state and hands it to the
// log. Caller holds writeMu.
func (e *Engine) walCheckpointLocked() error {
	payload, err := e.encodeWALCheckpoint()
	if err != nil {
		return err
	}
	return e.wlog.Checkpoint(payload)
}

// Checkpoint forces a WAL checkpoint of the current state, bounding
// what a restart must replay. Returns nil on engines without a WAL.
func (e *Engine) Checkpoint() error {
	if e.wlog == nil {
		return nil
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.walCheckpointLocked()
}

// Close stops the scheduled-retrain loop (waiting for any in-flight
// scheduled run to finish), then flushes and closes the WAL. Reads
// keep serving from the last snapshot; mutating operations fail once
// the log is closed, so Close belongs after the HTTP listener has
// drained. Nil on engines with neither a schedule nor a WAL;
// idempotent.
func (e *Engine) Close() error {
	e.stopScheduledRetrains()
	if e.wlog == nil {
		return nil
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.wlog.Close()
}

// WALState reports the log's state for /debug/wal and the
// recsys_wal_* metrics; ok is false on engines without a WAL.
func (e *Engine) WALState() (wal.State, bool) {
	if e.wlog == nil {
		return wal.State{}, false
	}
	return e.wlog.State(), true
}

// ---- construction-time recovery ----

// openWAL opens the log and decodes the newest checkpoint, if any.
// Called from New before the first snapshot is built: a recovered
// checkpoint REPLACES the constructor matrix, making the WAL directory
// the single source of truth across restarts.
func (e *Engine) openWAL() (*wal.Recovery, *walCheckpoint, *model.Matrix, error) {
	if e.walCfg.FS == nil {
		return nil, nil, nil, errors.New("core: WithWAL requires a non-nil FS")
	}
	l, recv, err := wal.Open(wal.Options{
		FS:           e.walCfg.FS,
		Fsync:        e.walCfg.Fsync,
		FsyncEvery:   e.walCfg.FsyncEvery,
		SegmentBytes: e.walCfg.SegmentBytes,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: opening WAL: %w", err)
	}
	e.wlog = l
	e.ledger = newWALLedger()
	if recv.Checkpoint == nil {
		return recv, nil, nil, nil
	}
	m, ck, err := decodeWALCheckpoint(recv.Checkpoint)
	if err != nil {
		l.Close()
		return nil, nil, nil, err
	}
	return recv, ck, m, nil
}

// replayWAL restores the checkpoint's ledger state and re-applies the
// tail records on the freshly built engine. Runs in New after the
// first snapshot is published and before any goroutine exists, with
// walReplaying set so nothing is re-logged and no retrain triggers
// fire. A record that fails to apply (e.g. an opinion for an item no
// longer in the catalogue) is skipped — it failed identically when
// first accepted or the catalogue changed between runs; either way
// skipping reproduces a servable prefix state.
func (e *Engine) replayWAL(ck *walCheckpoint, records []wal.Record) error {
	e.walReplaying = true
	defer func() { e.walReplaying = false }()

	if ck != nil {
		for _, us := range ck.Users {
			for _, w := range us.Influence {
				//lint:ignore dropped-error checkpointed influence edits were valid when logged; a failure here means the catalogue changed and the edit is moot
				_ = e.applyInfluence(us.User, w.Item, w.Value)
			}
			for _, op := range us.Opinions {
				e.replayOpinion(us.User, interact.Opinion{Kind: op.Kind, Item: op.Item, Aspect: op.Aspect})
			}
		}
	}
	for _, r := range records {
		var rec walRecord
		if err := json.Unmarshal(r.Payload, &rec); err != nil {
			return fmt.Errorf("core: WAL record %d undecodable: %w", r.Seq, err)
		}
		e.applyWALRecord(&rec)
	}
	return nil
}

// applyWALRecord re-applies one logged mutation through the same
// internal paths the original call used, bypassing validation (the
// record was validated when accepted) and usage counters (replay is
// not user activity).
func (e *Engine) applyWALRecord(rec *walRecord) {
	switch rec.Op {
	case walOpRate:
		//lint:ignore dropped-error replayed mutations cannot fail: walReplaying suppresses the only error source (the append itself)
		_ = e.mutate(rec.User, rec, func(m *model.Matrix) {
			m.Set(rec.User, rec.Item, model.ClampRating(rec.Value))
		})
	case walOpRemove:
		//lint:ignore dropped-error replayed mutations cannot fail: walReplaying suppresses the only error source (the append itself)
		_ = e.mutate(rec.User, rec, func(m *model.Matrix) { m.Delete(rec.User, rec.Item) })
	case walOpImport:
		//lint:ignore dropped-error replayed mutations cannot fail: walReplaying suppresses the only error source (the append itself)
		_ = e.mutate(rec.User, rec, func(m *model.Matrix) {
			for it, v := range rec.Ratings {
				m.Set(rec.User, it, model.ClampRating(v))
			}
		})
	case walOpEvict:
		//lint:ignore dropped-error replayed mutations cannot fail: walReplaying suppresses the only error source (the append itself)
		_ = e.mutate(rec.User, rec, func(m *model.Matrix) {
			items := make([]model.ItemID, 0, len(m.UserRatings(rec.User)))
			for it := range m.UserRatings(rec.User) {
				items = append(items, it)
			}
			for _, it := range items {
				m.Delete(rec.User, it)
			}
		})
	case walOpInfluence:
		//lint:ignore dropped-error a logged influence edit that no longer applies (catalogue drift) is skipped; see replayWAL
		_ = e.applyInfluence(rec.User, rec.Item, rec.Value)
	case walOpOpinion:
		e.replayOpinion(rec.User, interact.Opinion{Kind: rec.Kind, Item: rec.Item, Aspect: rec.Aspect})
	}
}

// replayOpinion re-applies one opinion without logging or counting.
// Failures are skipped (see replayWAL).
func (e *Engine) replayOpinion(u model.UserID, op interact.Opinion) {
	var it *model.Item
	if op.Kind != interact.SurpriseMe {
		var err error
		it, err = e.catalog.Item(op.Item)
		if err != nil {
			return
		}
	}
	st := e.users.get(u, e.baseSeed)
	st.mu.Lock()
	err := st.fb.Apply(op, it)
	st.mu.Unlock()
	if err != nil {
		return
	}
	e.writeMu.Lock()
	e.ledgerApply(&walRecord{Op: walOpOpinion, User: u, Item: op.Item, Kind: op.Kind, Aspect: op.Aspect})
	e.writeMu.Unlock()
}
