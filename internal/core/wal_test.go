package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/wal"
)

// walFixture builds a small community for durability tests: small
// enough that per-write snapshot rebuilds keep the crash sweep fast.
func walFixture(t testing.TB) *dataset.Community {
	t.Helper()
	return dataset.Movies(dataset.Config{Seed: 77, Users: 12, Items: 24, RatingsPerUser: 6})
}

func matricesEqual(a, b *model.Matrix) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, u := range a.Users() {
		for it, v := range a.UserRatings(u) {
			if w, ok := b.Get(u, it); !ok || w != v {
				return false
			}
		}
	}
	return true
}

// renderUser serialises one user's externally observable state —
// recommendations with explanations — for byte-identity comparison.
func renderUser(t testing.TB, e *Engine, u model.UserID) string {
	t.Helper()
	p, err := e.Recommend(u, 5)
	if err != nil {
		return fmt.Sprintf("err:%v", err)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal presentation: %v", err)
	}
	if len(p.Entries) > 0 {
		x, err := e.Explain(u, p.Entries[0].Item.ID)
		if err != nil {
			return string(b) + fmt.Sprintf("|err:%v", err)
		}
		xb, err := json.Marshal(x)
		if err != nil {
			t.Fatalf("marshal explanation: %v", err)
		}
		return string(b) + "|" + string(xb)
	}
	return string(b)
}

func TestWALPersistsAcrossRestart(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	e1, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: fs}))
	if err != nil {
		t.Fatal(err)
	}
	items := c.Catalog.Items()
	if err := e1.Rate(3, items[0].ID, 4.5); err != nil {
		t.Fatal(err)
	}
	if err := e1.Rate(3, items[1].ID, 1.0); err != nil {
		t.Fatal(err)
	}
	e1.RemoveRating(3, items[1].ID)
	if err := e1.Opinion(5, interact.Opinion{Kind: interact.MoreLikeThis, Item: items[2].ID}); err != nil {
		t.Fatal(err)
	}
	if err := e1.SetInfluenceWeight(3, items[0].ID, 0.25); err != nil {
		t.Fatal(err)
	}
	want3, want5 := renderUser(t, e1, 3), renderUser(t, e1, 5)
	wantRatings := e1.Ratings()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: fs}))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !matricesEqual(wantRatings, e2.Ratings()) {
		t.Fatal("recovered rating matrix differs from pre-restart state")
	}
	if got := renderUser(t, e2, 3); got != want3 {
		t.Errorf("user 3 serves differently after restart:\n got %s\nwant %s", got, want3)
	}
	if got := renderUser(t, e2, 5); got != want5 {
		t.Errorf("user 5 (opinion state) serves differently after restart:\n got %s\nwant %s", got, want5)
	}
	st, ok := e2.WALState()
	if !ok {
		t.Fatal("WALState not available on a durable engine")
	}
	if st.RecoveredRecords != 5 {
		t.Errorf("RecoveredRecords = %d, want 5", st.RecoveredRecords)
	}
}

// TestWALDirectoryIsSelfContained pins the rating-resurrection fix:
// once a WAL directory exists, the constructor matrix on later boots
// is ignored — state comes from the baseline checkpoint and log only.
func TestWALDirectoryIsSelfContained(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	e1, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: fs}))
	if err != nil {
		t.Fatal(err)
	}
	u := c.Ratings.Users()[0]
	e1.EvictUser(u)
	if len(e1.Ratings().UserRatings(u)) != 0 {
		t.Fatal("eviction did not empty the user row")
	}
	e1.Close()

	// Restart passing the ORIGINAL matrix, which still contains the
	// evicted user's ratings. They must not come back.
	e2, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: fs}))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.Ratings().UserRatings(u); len(got) != 0 {
		t.Fatalf("evicted user resurrected with %d ratings from the constructor matrix", len(got))
	}
}

func TestWALCheckpointBoundsReplay(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	e1, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: fs, CheckpointEvery: 8}))
	if err != nil {
		t.Fatal(err)
	}
	items := c.Catalog.Items()
	for i := 0; i < 50; i++ {
		if err := e1.Rate(model.UserID(1+i%5), items[i%len(items)].ID, float64(1+i%5)); err != nil {
			t.Fatal(err)
		}
	}
	wantRatings := e1.Ratings()
	e1.Close()

	e2, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: fs, CheckpointEvery: 8}))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st, _ := e2.WALState()
	if st.RecoveredRecords >= 8 {
		t.Errorf("RecoveredRecords = %d; checkpoints every 8 records should bound replay below 8", st.RecoveredRecords)
	}
	if st.CheckpointSeq == 0 {
		t.Error("no checkpoint observed after 50 writes")
	}
	if !matricesEqual(wantRatings, e2.Ratings()) {
		t.Fatal("checkpointed state differs from pre-restart state")
	}
}

func TestWALExplicitCheckpoint(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	e, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: fs}))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Rate(1, c.Catalog.Items()[0].ID, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ := e.WALState()
	if st.CheckpointAge != 0 {
		t.Fatalf("CheckpointAge = %d after explicit checkpoint", st.CheckpointAge)
	}
}

func TestWALFailureRejectsWrites(t *testing.T) {
	c := walFixture(t)
	mem := wal.NewMemFS()
	// The baseline checkpoint costs two syncs (temp file, directory
	// rename) and the workload write's segment publish a third; the
	// write's own fsync — number 4 — fails.
	cfs := fault.NewCrashFS(mem, fault.CrashPlan{AfterSyncs: 4})
	e, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: cfs, Fsync: wal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	items := c.Catalog.Items()
	before := e.Ratings()
	if err := e.Rate(1, items[0].ID, 5); err == nil {
		t.Fatal("Rate succeeded although the WAL could not make it durable")
	}
	if !matricesEqual(before, e.Ratings()) {
		t.Fatal("rejected write still mutated the matrix")
	}
	// Reads keep serving.
	if _, err := e.Recommend(1, 3); err != nil {
		t.Fatalf("reads must survive a failed WAL: %v", err)
	}
	st, _ := e.WALState()
	if !st.Failed {
		t.Fatal("WAL state does not report the failure")
	}
}

func TestWALClosedEngineRejectsWrites(t *testing.T) {
	c := walFixture(t)
	e, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: wal.NewMemFS()}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}
	if err := e.Rate(1, c.Catalog.Items()[0].ID, 3); err == nil {
		t.Fatal("Rate accepted after Close")
	}
	if _, err := e.Recommend(1, 3); err != nil {
		t.Fatalf("reads must survive Close: %v", err)
	}
}

func TestWALDisabledEngineNoops(t *testing.T) {
	_, e := engine(t)
	if _, ok := e.WALState(); ok {
		t.Fatal("WALState reported enabled without WithWAL")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close on WAL-less engine: %v", err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on WAL-less engine: %v", err)
	}
}

// ---- the crash-recovery property test (satellite) ----

// walOpGen is one deterministic workload operation, applicable to any
// engine so the recovered engine can be compared against a reference
// built by replaying the acknowledged prefix.
type walOpGen struct {
	apply func(e *Engine)
}

// buildWorkload derives n mixed mutating operations from seed: rates,
// removals, imports, evictions, opinions and influence edits over the
// fixture's users and items.
func buildWorkload(c *dataset.Community, seed uint64, n int) []walOpGen {
	r := rng.New(seed)
	items := c.Catalog.Items()
	ops := make([]walOpGen, 0, n)
	for i := 0; i < n; i++ {
		u := model.UserID(1 + r.Intn(12))
		it := items[r.Intn(len(items))].ID
		switch r.Intn(10) {
		case 0:
			ops = append(ops, walOpGen{func(e *Engine) { e.RemoveRating(u, it) }})
		case 1:
			op := interact.Opinion{Kind: interact.MoreLikeThis, Item: it}
			if r.Intn(2) == 0 {
				op.Kind = interact.NoMoreLikeThis
			}
			//lint:ignore dropped-error workload opinions are structurally valid; an error would surface as a state mismatch in the sweep
			ops = append(ops, walOpGen{func(e *Engine) { _ = e.Opinion(u, op) }})
		case 2:
			w := float64(r.Intn(5)) / 4
			//lint:ignore dropped-error workload influence targets exist in the catalogue; an error would surface as a state mismatch in the sweep
			ops = append(ops, walOpGen{func(e *Engine) { _ = e.SetInfluenceWeight(u, it, w) }})
		case 3:
			imp := map[model.ItemID]float64{
				items[r.Intn(len(items))].ID: float64(1 + r.Intn(5)),
				items[r.Intn(len(items))].ID: float64(1 + r.Intn(5)),
			}
			//lint:ignore dropped-error workload imports target a healthy WAL; a rejection would surface as a state mismatch in the sweep
			ops = append(ops, walOpGen{func(e *Engine) { _ = e.ImportUserRatings(u, imp) }})
		case 4:
			ops = append(ops, walOpGen{func(e *Engine) { e.EvictUser(u) }})
		default:
			v := float64(1+r.Intn(9)) / 2
			//lint:ignore dropped-error workload ratings are finite by construction; an error would surface as a state mismatch in the sweep
			ops = append(ops, walOpGen{func(e *Engine) { _ = e.Rate(u, it, v) }})
		}
	}
	return ops
}

// TestWALCrashRecoverySweep is the property test: run a seeded
// 1000-write workload, crash the filesystem at record boundaries
// across the whole run (plus torn-write and short-write variants), and
// assert that the engine recovered from the survivor bytes is exactly
// the engine produced by replaying the acknowledged prefix —
// byte-identical Recommend and Explain responses included. The
// wal-level sweep over EVERY boundary lives in internal/fault; this
// test buys the end-to-end engine equivalence at a stride that keeps
// the runtime bounded.
func TestWALCrashRecoverySweep(t *testing.T) {
	const nOps = 1000
	c := walFixture(t)
	ops := buildWorkload(c, 0xC0FFEE, nOps)

	// Probe run: count FS writes for the full workload so crash points
	// cover the entire write sequence (records + checkpoint traffic).
	probe := fault.NewCrashFS(wal.NewMemFS(), fault.CrashPlan{})
	pe, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: probe, Fsync: wal.FsyncOS, CheckpointEvery: 64}))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		op.apply(pe)
	}
	pe.Close()
	totalWrites := probe.Writes()
	if totalWrites < nOps {
		t.Fatalf("probe run produced %d writes for %d ops", totalWrites, nOps)
	}

	type variant struct {
		name string
		plan func(k int) fault.CrashPlan
	}
	variants := []variant{
		{"clean-cut", func(k int) fault.CrashPlan { return fault.CrashPlan{AfterWrites: k} }},
		{"torn-7b", func(k int) fault.CrashPlan { return fault.CrashPlan{AfterWrites: k, TearBytes: 7} }},
		{"full-frame", func(k int) fault.CrashPlan { return fault.CrashPlan{AfterWrites: k, TearBytes: -1} }},
		{"short-write", func(k int) fault.CrashPlan { return fault.CrashPlan{AfterWrites: k, TearBytes: 3, ShortWrite: true} }},
	}

	stride := totalWrites / 9 // ~10 crash points per variant across the run
	if stride < 1 {
		stride = 1
	}
	for _, v := range variants {
		for k := 1; k <= totalWrites; k += stride {
			t.Run(fmt.Sprintf("%s/write-%d", v.name, k), func(t *testing.T) {
				mem := wal.NewMemFS()
				cfs := fault.NewCrashFS(mem, v.plan(k))
				we, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: cfs, Fsync: wal.FsyncOS, CheckpointEvery: 64}))
				if err != nil {
					// The crash hit during construction (baseline
					// checkpoint). The directory may hold any prefix of
					// the baseline; recovery must still come up.
					re, rerr := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: mem}))
					if rerr != nil {
						t.Fatalf("recovery after construction crash: %v", rerr)
					}
					re.Close()
					return
				}
				acked := 0
				for _, op := range ops {
					op.apply(we)
					st, _ := we.WALState()
					if st.Failed {
						break
					}
					acked = int(st.LastSeq)
				}
				we.Close()

				// Recover from the survivor bytes.
				re, err := New(c.Catalog, c.Ratings, WithWAL(WALConfig{FS: mem}))
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				defer re.Close()
				rst, _ := re.WALState()
				got := int(rst.LastSeq)
				if got != acked && got != acked+1 {
					t.Fatalf("recovered %d records, acknowledged %d: not a prefix extension", got, acked)
				}

				// Reference: replay exactly the recovered prefix on a
				// WAL-less engine.
				ref, err := New(c.Catalog, c.Ratings)
				if err != nil {
					t.Fatal(err)
				}
				for _, op := range ops[:got] {
					op.apply(ref)
				}
				if !matricesEqual(ref.Ratings(), re.Ratings()) {
					t.Fatal("recovered rating matrix differs from the acknowledged-prefix replay")
				}
				for _, u := range []model.UserID{1, 4, 7, 11} {
					if w, g := renderUser(t, ref, u), renderUser(t, re, u); w != g {
						t.Fatalf("user %d serves differently after recovery:\n got %s\nwant %s", u, g, w)
					}
				}
			})
		}
	}
}
