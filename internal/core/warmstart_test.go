package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/recsys/mf"
	"repro/internal/wal"
)

func warmStartOpts(t testing.TB, fs wal.FS, path string, trainer mf.Trainer) []Option {
	t.Helper()
	c := walFixture(t)
	return []Option{
		WithWAL(WALConfig{FS: fs}),
		WithTrainer(TrainerConfig{
			Trainer:      trainer,
			ArtifactPath: path,
			EncodeModel:  mf.EncodeModel,
			DecodeModel:  mf.DecodeModel(c.Catalog),
		}),
	}
}

func TestWarmStartServesPersistedVersion(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	path := filepath.Join(t.TempDir(), "model.json")
	trainer := mf.ALSWR{Opts: mf.Options{Seed: 5, Factors: 6, Epochs: 8}}

	e1, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	// Publish a second generation so the restart provably resumes at
	// the LAST version, not just "a" version.
	if err := e1.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v := e1.ModelVersion(); v != 2 {
		t.Fatalf("serving version = %d, want 2", v)
	}
	before := renderUser(t, e1, 3)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st := e2.ModelsState()
	if !st.WarmStarted {
		t.Fatal("restart did not warm-start from the persisted artifact")
	}
	if st.TrainsStarted != 0 {
		t.Fatalf("restart cold-trained anyway: %d trains", st.TrainsStarted)
	}
	if v := e2.ModelVersion(); v != 2 {
		t.Fatalf("restart serves version %d, want 2", v)
	}
	if after := renderUser(t, e2, 3); after != before {
		t.Fatalf("warm-started engine serves differently:\nbefore: %s\nafter:  %s", before, after)
	}
	// The version counter keeps climbing from the restored generation.
	if err := e2.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v := e2.ModelVersion(); v != 3 {
		t.Fatalf("retrain after warm start = v%d, want v3", v)
	}
}

func TestWarmStartFoldsInReplayedWrites(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	path := filepath.Join(t.TempDir(), "model.json")
	trainer := mf.ALSWR{Opts: mf.Options{Seed: 5, Factors: 6, Epochs: 8}}

	e1, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	// Writes after the artifact was saved land in the WAL only.
	u := model.UserID(3)
	target := c.Catalog.Items()[0].ID
	if err := e1.Rate(u, target, 5); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st := e2.ModelsState()
	if !st.WarmStarted {
		t.Fatal("restart did not warm-start")
	}
	if st.FoldIns == 0 {
		t.Fatal("replayed write was not folded into the warm model")
	}
	if v, ok := e2.snap.Load().ratings.Get(u, target); !ok || v != 5 {
		t.Fatalf("replayed rating missing after warm start: %v %v", v, ok)
	}
	// The serving model must know the fold: the freshly rated item may
	// not be recommended back to the user.
	p, err := e2.Recommend(u, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Entries {
		if r.Item.ID == target {
			t.Fatal("warm model still recommends an item the user rated after the artifact was saved")
		}
	}
}

func TestWarmStartFoldsCheckpointedWrites(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	path := filepath.Join(t.TempDir(), "model.json")
	trainer := mf.ALSWR{Opts: mf.Options{Seed: 5, Factors: 6, Epochs: 8}}

	e1, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	u := model.UserID(3)
	target := c.Catalog.Items()[0].ID
	if err := e1.Rate(u, target, 5); err != nil {
		t.Fatal(err)
	}
	// Materialize the write into a WAL checkpoint: the restart replays
	// NO tail records, so the fold set must come from the checkpoint's
	// persisted per-user revisions, not from replayed records.
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st := e2.ModelsState()
	if !st.WarmStarted {
		t.Fatal("restart did not warm-start")
	}
	if st.FoldIns == 0 {
		t.Fatal("checkpointed write was not folded into the warm model")
	}
	p, err := e2.Recommend(u, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Entries {
		if r.Item.ID == target {
			t.Fatal("warm model still recommends an item whose rating was checkpointed after the artifact was saved")
		}
	}
}

func TestWarmStartDeclinesStaleArtifact(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	path := filepath.Join(t.TempDir(), "model.json")
	trainer := mf.ALSWR{Opts: mf.Options{Seed: 5, Factors: 6, Epochs: 8}}

	e1, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	u := model.UserID(3)
	target := c.Catalog.Items()[0].ID
	if err := e1.Rate(u, target, 5); err != nil {
		t.Fatal(err)
	}
	// The retrain covers the write (pruning its fold marker) and the
	// checkpoint persists the advanced trained revision.
	if err := e1.Retrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	// Roll the artifact file back to the pre-write generation, as if the
	// retrain's persist had failed. The checkpoint's trained revision now
	// postdates the artifact, and no fold marker bridges the gap — warm
	// starting would serve vectors that never saw the write.
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st := e2.ModelsState()
	if st.WarmStarted {
		t.Fatal("warm-started from an artifact older than the checkpoint's trained revision")
	}
	if st.TrainsStarted != 1 {
		t.Fatalf("expected a cold train, got %+v", st)
	}
}

func TestWarmStartTrainerMismatchColdTrains(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	path := filepath.Join(t.TempDir(), "model.json")

	e1, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, mf.SGD{Opts: mf.Options{Seed: 5, Factors: 6, Epochs: 8}})...)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Same artifact file, different trainer: the persisted model is not
	// this trainer's output, so the engine must train fresh.
	e2, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, mf.ALSWR{Opts: mf.Options{Seed: 5, Factors: 6, Epochs: 8}})...)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st := e2.ModelsState()
	if st.WarmStarted {
		t.Fatal("warm-started from a different trainer's artifact")
	}
	if st.TrainsStarted != 1 || st.ServingVersion != 1 {
		t.Fatalf("expected a cold train at v1, got %+v", st)
	}
}

func TestWarmStartCorruptArtifactColdTrains(t *testing.T) {
	c := walFixture(t)
	fs := wal.NewMemFS()
	path := filepath.Join(t.TempDir(), "model.json")
	trainer := mf.SGD{Opts: mf.Options{Seed: 5, Factors: 6, Epochs: 8}}

	e1, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := New(c.Catalog, c.Ratings, warmStartOpts(t, fs, path, trainer)...)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st := e2.ModelsState()
	if st.WarmStarted {
		t.Fatal("warm-started from a corrupt artifact")
	}
	if st.TrainsStarted != 1 {
		t.Fatalf("expected a cold train, got %+v", st)
	}
	// The cold train overwrote the corrupt file with a good artifact.
	if st.ArtifactsPersisted != 1 {
		t.Fatalf("artifacts persisted = %d, want 1", st.ArtifactsPersisted)
	}
}

func TestArtifactPathRequiresHooks(t *testing.T) {
	c := walFixture(t)
	_, err := New(c.Catalog, c.Ratings, WithTrainer(TrainerConfig{
		Trainer:      mf.SGD{},
		ArtifactPath: "somewhere.json",
	}))
	if err == nil {
		t.Fatal("New accepted ArtifactPath without encode/decode hooks")
	}
}
