package dataset

import (
	"repro/internal/model"
	"repro/internal/rng"
)

// BookGenres are the content features of the book domain (LIBRA,
// Amazon, the Bilgic & Mooney effectiveness study).
var BookGenres = []string{
	"classic", "mystery", "fantasy", "history", "biography", "poetry",
	"science", "travel", "romance", "crime",
}

var bookAuthors = []string{
	"Charles Dickens", "Imara Bell", "Tomas Reyes", "Yuki Sato",
	"Greta Holm", "Omar Farouk", "Lena Vargas", "Piotr Zielinski",
	"Maeve Connolly", "Sam Whitfield",
}

// Books generates a book community. Authors matter here: the paper's
// Section 4.3 example ("You might also like... Oliver Twist by Charles
// Dickens") and the "More later!" feedback (any future book by a liked
// author) both key on Creator. A handful of real Dickens titles are
// seeded so the worked examples render verbatim.
func Books(cfg Config) *Community {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	cat := model.NewCatalog("books",
		model.AttrDef{Name: "pages", Kind: model.Numeric, Unit: "pp"},
	)
	dickens := []string{"Great Expectations", "Oliver Twist", "Bleak House", "Hard Times"}
	for i := 0; i < cfg.Items; i++ {
		var title, author string
		if i < len(dickens) {
			title, author = dickens[i], "Charles Dickens"
		} else {
			title = titled(r, "Book", i+1)
			author = bookAuthors[r.Intn(len(bookAuthors))]
		}
		keywords := pickSome(r, BookGenres, 1+r.Intn(3))
		if author == "Charles Dickens" {
			keywords = append(keywords, "classic")
		}
		it := &model.Item{
			ID:         model.ItemID(i + 1),
			Title:      title,
			Creator:    author,
			Keywords:   dedupe(keywords),
			Numeric:    map[string]float64{"pages": 120 + float64(r.Intn(700))},
			Popularity: zipfPopularity(i),
			Recency:    r.Float64(),
		}
		cat.MustAdd(it)
	}
	truth := &Truth{tastes: map[model.UserID]*Taste{}, ranges: attrRanges(cat)}
	for u := 1; u <= cfg.Users; u++ {
		taste := &Taste{
			Keyword:         map[string]float64{},
			CategoricalPref: map[string]map[string]float64{},
			Bias:            r.Norm(0, 0.3),
			PopularityBias:  r.Norm(0.2, 0.3),
		}
		perm := r.Perm(len(BookGenres))
		for rank, gi := range perm {
			g := BookGenres[gi]
			switch {
			case rank < 2:
				taste.Keyword[g] = 0.5 + 0.5*r.Float64()
			case rank < 4:
				taste.Keyword[g] = -(0.5 + 0.5*r.Float64())
			default:
				taste.Keyword[g] = r.Norm(0, 0.2)
			}
		}
		truth.tastes[model.UserID(u)] = taste
	}
	c := &Community{Catalog: cat, Ratings: model.NewMatrix(), Truth: truth, Noise: cfg.Noise}
	populate(c, cfg, r)
	return c
}

func dedupe(ss []string) []string {
	seen := map[string]bool{}
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
