package dataset

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rng"
)

// Camera attribute names, exported so critique and overview tests can
// refer to them without string literals scattered around.
const (
	CamPrice      = "price"
	CamResolution = "resolution"
	CamZoom       = "zoom"
	CamMemory     = "memory"
	CamWeight     = "weight"
	CamBrand      = "brand"
	CamType       = "type"
)

var cameraBrands = []string{"Axiom", "Lumo", "Prisma", "Vanta", "Kite"}
var cameraTypes = []string{"compact", "bridge", "dslr"}

// Cameras generates the digital-camera domain used by the critiquing
// studies (McCarthy et al.'s "Less Memory and Lower Resolution and
// Cheaper") and Pu & Chen's structured-overview experiments. It is an
// attribute catalogue: tastes are MAUT ideal points, not keyword
// affinities, and attribute values correlate realistically (a DSLR is
// heavier, pricier and sharper).
func Cameras(cfg Config) *Community {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	cat := model.NewCatalog("cameras",
		model.AttrDef{Name: CamPrice, Kind: model.Numeric, LessIsBetter: true, Unit: "$"},
		model.AttrDef{Name: CamResolution, Kind: model.Numeric, Unit: "MP"},
		model.AttrDef{Name: CamZoom, Kind: model.Numeric, Unit: "x"},
		model.AttrDef{Name: CamMemory, Kind: model.Numeric, Unit: "GB"},
		model.AttrDef{Name: CamWeight, Kind: model.Numeric, LessIsBetter: true, Unit: "g"},
		model.AttrDef{Name: CamBrand, Kind: model.Categorical},
		model.AttrDef{Name: CamType, Kind: model.Categorical},
	)
	for i := 0; i < cfg.Items; i++ {
		typ := cameraTypes[r.Intn(len(cameraTypes))]
		var price, res, zoom, mem, weight float64
		switch typ {
		case "compact":
			price = 80 + 170*r.Float64()
			res = 8 + 8*r.Float64()
			zoom = 3 + 5*r.Float64()
			mem = 4 + float64(r.Intn(4))*4
			weight = 120 + 130*r.Float64()
		case "bridge":
			price = 200 + 300*r.Float64()
			res = 12 + 8*r.Float64()
			zoom = 10 + 30*r.Float64()
			mem = 8 + float64(r.Intn(4))*8
			weight = 350 + 300*r.Float64()
		default: // dslr
			price = 450 + 900*r.Float64()
			res = 18 + 14*r.Float64()
			zoom = 1 + 4*r.Float64()
			mem = 16 + float64(r.Intn(4))*16
			weight = 500 + 600*r.Float64()
		}
		brand := cameraBrands[r.Intn(len(cameraBrands))]
		it := &model.Item{
			ID:      model.ItemID(i + 1),
			Title:   fmt.Sprintf("%s %s-%d", brand, shortType(typ), 100+i),
			Creator: brand,
			Numeric: map[string]float64{
				CamPrice:      round2(price),
				CamResolution: round2(res),
				CamZoom:       round2(zoom),
				CamMemory:     mem,
				CamWeight:     round2(weight),
			},
			Categorical: map[string]string{CamBrand: brand, CamType: typ},
			Popularity:  zipfPopularity(i),
			Recency:     r.Float64(),
		}
		cat.MustAdd(it)
	}
	truth := &Truth{tastes: map[model.UserID]*Taste{}, ranges: attrRanges(cat)}
	for u := 1; u <= cfg.Users; u++ {
		truth.tastes[model.UserID(u)] = cameraTaste(r, cat)
	}
	c := &Community{Catalog: cat, Ratings: model.NewMatrix(), Truth: truth, Noise: cfg.Noise}
	populate(c, cfg, r)
	return c
}

// cameraTaste draws a shopper profile: an ideal point inside the
// attribute ranges with per-attribute importance weights.
func cameraTaste(r *rng.RNG, cat *model.Catalog) *Taste {
	taste := &Taste{
		NumericIdeal:    map[string]float64{},
		NumericWeight:   map[string]float64{},
		CategoricalPref: map[string]map[string]float64{},
		Bias:            r.Norm(0, 0.2),
	}
	for _, attr := range []string{CamPrice, CamResolution, CamZoom, CamMemory, CamWeight} {
		lo, hi, ok := cat.NumericRange(attr)
		if !ok {
			continue
		}
		def, _ := cat.AttrDef(attr)
		// Budget shoppers idealise low price/weight; everyone idealises
		// somewhere in-range for the rest.
		var ideal float64
		if def.LessIsBetter {
			ideal = lo + (hi-lo)*0.25*r.Float64()
		} else {
			ideal = lo + (hi-lo)*(0.4+0.6*r.Float64())
		}
		taste.NumericIdeal[attr] = ideal
		taste.NumericWeight[attr] = 0.3 + r.Float64()
	}
	if r.Bernoulli(0.4) {
		taste.CategoricalPref[CamBrand] = map[string]float64{
			cameraBrands[r.Intn(len(cameraBrands))]: 0.4,
		}
	}
	return taste
}

func shortType(t string) string {
	switch t {
	case "compact":
		return "C"
	case "bridge":
		return "B"
	default:
		return "D"
	}
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}
