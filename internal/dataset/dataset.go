// Package dataset generates the synthetic item catalogues and rating
// communities used throughout the reproduction.
//
// The survey's studies ran on proprietary logs and human subjects
// (MovieLens ratings, Amazon catalogues, restaurant databases). We
// substitute deterministic, seeded synthetic equivalents with explicit
// latent ground truth: every user has a hidden Taste from which their
// "true" utility for any item can be computed. Observed ratings are
// noisy samples of that truth. This gives the evaluation laboratory
// something real logs cannot: a known answer sheet against which
// persuasion, effectiveness and accuracy can be measured.
//
// Six domains from the paper are provided: movies (TiVo/MovieLens
// examples), books (LIBRA/Amazon), news (Findory/News Dude, the
// football-and-technology running example), digital cameras
// (Qwikshop/Pu & Chen), restaurants (Adaptive Place Advisor) and
// holidays (SASY/Top Case).
package dataset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/rng"
)

// sortedKeys returns map keys ascending, for order-stable accumulation.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Config controls community generation. Zero fields fall back to the
// defaults documented on each field.
type Config struct {
	Seed  uint64 // generator seed; communities with equal seeds are identical
	Users int    // number of users (default 200)
	Items int    // number of items (default 300)
	// RatingsPerUser is the mean number of observed ratings each user
	// contributes (default 30). Actual counts vary per user.
	RatingsPerUser int
	// Noise is the standard deviation of rating noise around true
	// utility (default 0.6, roughly what MovieLens re-rating studies
	// report as intra-user inconsistency).
	Noise float64
}

func (c Config) withDefaults() Config {
	if c.Users == 0 {
		c.Users = 200
	}
	if c.Items == 0 {
		c.Items = 300
	}
	if c.RatingsPerUser == 0 {
		c.RatingsPerUser = 30
	}
	if c.Noise == 0 {
		c.Noise = 0.6
	}
	return c
}

// Taste is a user's latent ground-truth preference structure.
type Taste struct {
	// Keyword maps content features (genres, topics) to affinities in
	// roughly [-1, 1].
	Keyword map[string]float64
	// NumericIdeal and NumericWeight describe attribute preferences for
	// structured domains: utility decreases with weighted distance from
	// the ideal point (an additive MAUT-style value function).
	NumericIdeal  map[string]float64
	NumericWeight map[string]float64
	// CategoricalPref maps attribute name -> preferred value -> bonus.
	CategoricalPref map[string]map[string]float64
	// Bias shifts the user's whole scale (some users rate generously).
	Bias float64
	// PopularityBias > 0 means mainstream taste; < 0 means contrarian.
	PopularityBias float64
}

// Truth holds the latent tastes of a community and scores items
// against them.
type Truth struct {
	tastes map[model.UserID]*Taste
	ranges map[string][2]float64 // numeric attribute ranges for normalisation
}

// Taste returns the latent taste of user u, or nil if unknown.
func (t *Truth) Taste(u model.UserID) *Taste { return t.tastes[u] }

// Users returns the number of users with known tastes.
func (t *Truth) Users() int { return len(t.tastes) }

// Utility returns user u's true utility for item it on the rating
// scale [MinRating, MaxRating]. Unknown users score the scale midpoint.
func (t *Truth) Utility(u model.UserID, it *model.Item) float64 {
	taste := t.tastes[u]
	if taste == nil {
		return (model.MinRating + model.MaxRating) / 2
	}
	base := (model.MinRating+model.MaxRating)/2 + taste.Bias

	// Content part: average keyword affinity, scaled to +-1.5 stars.
	if len(it.Keywords) > 0 && len(taste.Keyword) > 0 {
		var sum float64
		for _, k := range it.Keywords {
			sum += taste.Keyword[k]
		}
		base += 1.5 * sum / float64(len(it.Keywords))
	}

	// Attribute part: negative weighted normalised distance from the
	// ideal point, worth up to about -2 stars when maximally wrong.
	// Iteration is in sorted attribute order so the sums — and thus
	// every experiment output — are bit-identical across runs.
	if len(taste.NumericIdeal) > 0 {
		var dist, wsum float64
		for _, attr := range sortedKeys(taste.NumericIdeal) {
			ideal := taste.NumericIdeal[attr]
			v, ok := it.Numeric[attr]
			if !ok {
				continue
			}
			w := taste.NumericWeight[attr]
			if w == 0 {
				w = 1
			}
			span := t.span(attr)
			d := math.Abs(v-ideal) / span
			dist += w * d
			wsum += w
		}
		if wsum > 0 {
			base -= 2 * dist / wsum
			base += 1 // centre so a perfect match gains vs midpoint
		}
	}
	if len(taste.CategoricalPref) > 0 {
		attrs := make([]string, 0, len(taste.CategoricalPref))
		for attr := range taste.CategoricalPref {
			attrs = append(attrs, attr)
		}
		sort.Strings(attrs)
		for _, attr := range attrs {
			if v, ok := it.Categorical[attr]; ok {
				base += taste.CategoricalPref[attr][v]
			}
		}
	}

	base += taste.PopularityBias * (it.Popularity - 0.5)
	return model.ClampRating(base)
}

func (t *Truth) span(attr string) float64 {
	r, ok := t.ranges[attr]
	if !ok || r[1] <= r[0] {
		return 1
	}
	return r[1] - r[0]
}

// Community bundles a catalogue, its observed rating matrix, and the
// latent ground truth the ratings were sampled from.
type Community struct {
	Catalog *model.Catalog
	Ratings *model.Matrix
	Truth   *Truth
	// Noise is the rating-noise standard deviation used at generation
	// time; simulations reuse it for consistent re-rating behaviour.
	Noise float64
}

// UserIDs returns the IDs 1..n of the community's users in order.
// Every generated community numbers users densely from 1.
func (c *Community) UserIDs() []model.UserID {
	out := make([]model.UserID, 0, c.Truth.Users())
	for i := 1; i <= c.Truth.Users(); i++ {
		out = append(out, model.UserID(i))
	}
	return out
}

// Rerate replaces user u's observed ratings with fresh noisy samples
// of their current truth over the given items. Experiments that
// install a scripted taste (InstallTaste) call this so the observable
// history matches the new latent preferences.
func (c *Community) Rerate(u model.UserID, items []model.ItemID, r *rng.RNG) {
	for _, id := range append([]model.ItemID(nil), c.Ratings.RatedItems()...) {
		c.Ratings.Delete(u, id)
	}
	for _, id := range items {
		it, err := c.Catalog.Item(id)
		if err != nil {
			continue
		}
		v := c.Truth.Utility(u, it) + r.Norm(0, c.Noise)
		c.Ratings.Set(u, id, quantize(model.ClampRating(v)))
	}
}

// populate fills a community's ratings by sampling noisy truth. Items
// are chosen with popularity-proportional probability, mimicking the
// skew of real rating logs.
func populate(c *Community, cfg Config, r *rng.RNG) {
	items := c.Catalog.Items()
	weights := make([]float64, len(items))
	for i, it := range items {
		weights[i] = 0.05 + it.Popularity
	}
	for u := 1; u <= cfg.Users; u++ {
		uid := model.UserID(u)
		n := cfg.RatingsPerUser/2 + r.Intn(cfg.RatingsPerUser+1)
		if n > len(items) {
			n = len(items)
		}
		seen := make(map[int]bool, n)
		for len(seen) < n {
			idx := r.Pick(weights)
			if seen[idx] {
				// Fall back to a uniform probe to escape popularity
				// collisions in tiny catalogues.
				idx = r.Intn(len(items))
				if seen[idx] {
					continue
				}
			}
			seen[idx] = true
			it := items[idx]
			v := c.Truth.Utility(uid, it) + r.Norm(0, cfg.Noise)
			c.Ratings.Set(uid, it.ID, quantize(model.ClampRating(v)))
		}
	}
}

// quantize snaps a rating to the half-star grid users actually emit.
func quantize(v float64) float64 {
	return model.ClampRating(math.Round(v*2) / 2)
}

// attrRanges snapshots numeric ranges for truth normalisation.
func attrRanges(cat *model.Catalog) map[string][2]float64 {
	out := map[string][2]float64{}
	for _, a := range cat.Attrs {
		if a.Kind != model.Numeric {
			continue
		}
		lo, hi, ok := cat.NumericRange(a.Name)
		if ok {
			out[a.Name] = [2]float64{lo, hi}
		}
	}
	return out
}

// pickSome selects k distinct strings from pool (k clamped to the pool
// size), deterministically under r.
func pickSome(r *rng.RNG, pool []string, k int) []string {
	if k > len(pool) {
		k = len(pool)
	}
	perm := r.Perm(len(pool))
	out := make([]string, 0, k)
	for _, idx := range perm[:k] {
		out = append(out, pool[idx])
	}
	return out
}

// zipfPopularity returns a popularity in (0,1] following a Zipf-like
// curve over rank: a few blockbusters, a long tail.
func zipfPopularity(rank int) float64 {
	return 1 / math.Pow(float64(rank+1), 0.7)
}

// titled produces deterministic synthetic titles like "The Crimson
// Harbor III".
func titled(r *rng.RNG, kind string, n int) string {
	adjectives := []string{
		"Crimson", "Silent", "Golden", "Broken", "Hidden", "Last",
		"Electric", "Distant", "Midnight", "Burning", "Frozen", "Lost",
	}
	nouns := []string{
		"Harbor", "Garden", "Empire", "Signal", "Winter", "Promise",
		"Mirror", "Voyage", "Orchard", "Station", "Circuit", "Meadow",
	}
	a := adjectives[r.Intn(len(adjectives))]
	b := nouns[r.Intn(len(nouns))]
	return fmt.Sprintf("The %s %s (%s #%d)", a, b, kind, n)
}
