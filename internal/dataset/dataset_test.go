package dataset

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/rng"
)

func communities(cfg Config) map[string]*Community {
	return map[string]*Community{
		"movies":      Movies(cfg),
		"books":       Books(cfg),
		"news":        News(cfg),
		"cameras":     Cameras(cfg),
		"restaurants": Restaurants(cfg),
		"holidays":    Holidays(cfg),
	}
}

func TestAllDomainsGenerate(t *testing.T) {
	cfg := Config{Seed: 1, Users: 40, Items: 60, RatingsPerUser: 10}
	for name, c := range communities(cfg) {
		if c.Catalog.Len() != 60 {
			t.Errorf("%s: catalog has %d items, want 60", name, c.Catalog.Len())
		}
		if c.Truth.Users() != 40 {
			t.Errorf("%s: truth has %d users, want 40", name, c.Truth.Users())
		}
		if c.Ratings.Len() == 0 {
			t.Errorf("%s: no ratings generated", name)
		}
		if got := len(c.UserIDs()); got != 40 {
			t.Errorf("%s: UserIDs returned %d ids", name, got)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := Config{Seed: 7, Users: 20, Items: 30, RatingsPerUser: 8}
	a := Movies(cfg)
	b := Movies(cfg)
	if a.Ratings.Len() != b.Ratings.Len() {
		t.Fatalf("rating counts differ: %d vs %d", a.Ratings.Len(), b.Ratings.Len())
	}
	for _, u := range a.Ratings.Users() {
		for i, v := range a.Ratings.UserRatings(u) {
			if w, ok := b.Ratings.Get(u, i); !ok || w != v {
				t.Fatalf("rating (%d,%d) differs: %v vs %v,%v", u, i, v, w, ok)
			}
		}
	}
	// And different seeds genuinely differ.
	c := Movies(Config{Seed: 8, Users: 20, Items: 30, RatingsPerUser: 8})
	diff := false
	for _, u := range a.Ratings.Users() {
		for i, v := range a.Ratings.UserRatings(u) {
			if w, ok := c.Ratings.Get(u, i); !ok || w != v {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical communities")
	}
}

func TestRatingsAreOnScaleAndQuantized(t *testing.T) {
	for name, c := range communities(Config{Seed: 3, Users: 30, Items: 50, RatingsPerUser: 12}) {
		for _, u := range c.Ratings.Users() {
			for _, v := range c.Ratings.UserRatings(u) {
				if v < model.MinRating || v > model.MaxRating {
					t.Fatalf("%s: rating %v off scale", name, v)
				}
				if v*2 != float64(int(v*2)) {
					t.Fatalf("%s: rating %v not on half-star grid", name, v)
				}
			}
		}
	}
}

func TestUtilityWithinScaleQuick(t *testing.T) {
	c := Movies(Config{Seed: 5, Users: 30, Items: 50, RatingsPerUser: 5})
	items := c.Catalog.Items()
	f := func(u uint8, i uint16) bool {
		uid := model.UserID(int(u)%30 + 1)
		it := items[int(i)%len(items)]
		v := c.Truth.Utility(uid, it)
		return v >= model.MinRating && v <= model.MaxRating
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilityUnknownUserIsMidpoint(t *testing.T) {
	c := Movies(Config{Seed: 5, Users: 5, Items: 10, RatingsPerUser: 3})
	it := c.Catalog.Items()[0]
	if v := c.Truth.Utility(999, it); v != 3 {
		t.Fatalf("unknown user utility = %v, want 3", v)
	}
}

func TestTasteShapesUtility(t *testing.T) {
	// A user who loves football must on average prefer football items
	// to hockey items. Uses the canonical taste from the paper.
	c := News(Config{Seed: 11, Users: 10, Items: 400, RatingsPerUser: 5})
	c.Truth.InstallTaste(1, FootballFanTaste())
	var footSum, hockSum float64
	var footN, hockN int
	for _, it := range c.Catalog.Items() {
		switch {
		case it.HasKeyword("football"):
			footSum += c.Truth.Utility(1, it)
			footN++
		case it.HasKeyword("hockey"):
			hockSum += c.Truth.Utility(1, it)
			hockN++
		}
	}
	if footN == 0 || hockN == 0 {
		t.Fatal("generated news lacks football or hockey items")
	}
	if footSum/float64(footN) <= hockSum/float64(hockN)+0.5 {
		t.Fatalf("football mean %.2f not clearly above hockey mean %.2f",
			footSum/float64(footN), hockSum/float64(hockN))
	}
}

func TestCameraAttributesPresent(t *testing.T) {
	c := Cameras(Config{Seed: 2, Users: 10, Items: 40, RatingsPerUser: 5})
	for _, it := range c.Catalog.Items() {
		for _, attr := range []string{CamPrice, CamResolution, CamZoom, CamMemory, CamWeight} {
			if _, ok := it.Numeric[attr]; !ok {
				t.Fatalf("camera %q missing %s", it.Title, attr)
			}
		}
		if it.Categorical[CamBrand] == "" || it.Categorical[CamType] == "" {
			t.Fatalf("camera %q missing categorical attributes", it.Title)
		}
	}
	def, ok := c.Catalog.AttrDef(CamPrice)
	if !ok || !def.LessIsBetter {
		t.Fatal("price should be declared less-is-better")
	}
}

func TestCameraTypeCorrelations(t *testing.T) {
	c := Cameras(Config{Seed: 4, Users: 5, Items: 300, RatingsPerUser: 3})
	sums := map[string][2]float64{} // type -> (price sum, count)
	for _, it := range c.Catalog.Items() {
		typ := it.Categorical[CamType]
		s := sums[typ]
		s[0] += it.Numeric[CamPrice]
		s[1]++
		sums[typ] = s
	}
	compact := sums["compact"][0] / sums["compact"][1]
	dslr := sums["dslr"][0] / sums["dslr"][1]
	if dslr <= compact {
		t.Fatalf("dslr mean price %.0f should exceed compact %.0f", dslr, compact)
	}
}

func TestBooksIncludeDickensSeeds(t *testing.T) {
	c := Books(Config{Seed: 1, Users: 5, Items: 20, RatingsPerUser: 3})
	var found int
	for _, it := range c.Catalog.Items() {
		if it.Creator == "Charles Dickens" {
			found++
			if !it.HasKeyword("classic") {
				t.Fatalf("Dickens book %q missing classic keyword", it.Title)
			}
		}
	}
	if found < 4 {
		t.Fatalf("found %d Dickens books, want >= 4", found)
	}
}

func TestNewsItemsCarryTopicAndSubtopic(t *testing.T) {
	c := News(Config{Seed: 9, Users: 5, Items: 50, RatingsPerUser: 3})
	for _, it := range c.Catalog.Items() {
		if len(it.Keywords) != 2 {
			t.Fatalf("news item %q keywords = %v", it.Title, it.Keywords)
		}
		topic := it.Keywords[0]
		subs, ok := NewsSubtopics[topic]
		if !ok {
			t.Fatalf("unknown topic %q", topic)
		}
		legal := false
		for _, s := range subs {
			if s == it.Keywords[1] {
				legal = true
			}
		}
		if !legal {
			t.Fatalf("subtopic %q not under topic %q", it.Keywords[1], topic)
		}
	}
}

func TestPopularityDecreasesWithRank(t *testing.T) {
	c := Movies(Config{Seed: 1, Users: 5, Items: 50, RatingsPerUser: 3})
	items := c.Catalog.Items()
	if items[0].Popularity <= items[49].Popularity {
		t.Fatal("popularity should decay with rank")
	}
}

func TestHolidayKidFriendlyTastes(t *testing.T) {
	c := Holidays(Config{Seed: 13, Users: 200, Items: 50, RatingsPerUser: 5})
	withKids := 0
	for u := 1; u <= 200; u++ {
		taste := c.Truth.Taste(model.UserID(u))
		if taste == nil {
			t.Fatalf("user %d missing taste", u)
		}
		if p, ok := taste.CategoricalPref[HolKids]; ok && p["yes"] > 0 {
			withKids++
		}
	}
	if withKids < 30 || withKids > 120 {
		t.Fatalf("%d of 200 users travel with children; expected roughly 35%%", withKids)
	}
}

func TestRestaurantCuisineAffectsUtility(t *testing.T) {
	c := Restaurants(Config{Seed: 17, Users: 50, Items: 200, RatingsPerUser: 5})
	// For each user, their top-preferred cuisine items should average
	// higher utility than their most-disliked cuisine items.
	better := 0
	for u := 1; u <= 50; u++ {
		taste := c.Truth.Taste(model.UserID(u))
		var best, worst string
		bestV, worstV := -2.0, 2.0
		for cuisine, v := range taste.Keyword {
			if v > bestV {
				best, bestV = cuisine, v
			}
			if v < worstV {
				worst, worstV = cuisine, v
			}
		}
		var bSum, wSum float64
		var bN, wN int
		for _, it := range c.Catalog.Items() {
			switch it.Categorical[RestCuisine] {
			case best:
				bSum += c.Truth.Utility(model.UserID(u), it)
				bN++
			case worst:
				wSum += c.Truth.Utility(model.UserID(u), it)
				wN++
			}
		}
		if bN > 0 && wN > 0 && bSum/float64(bN) > wSum/float64(wN) {
			better++
		}
	}
	if better < 45 {
		t.Fatalf("cuisine preference visible for only %d/50 users", better)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Movies(Config{Seed: 1})
	if c.Catalog.Len() != 300 || c.Truth.Users() != 200 {
		t.Fatalf("defaults not applied: %d items, %d users", c.Catalog.Len(), c.Truth.Users())
	}
	if c.Noise != 0.6 {
		t.Fatalf("default noise = %v", c.Noise)
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]string{"a", "b", "a", "c", "b"})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("dedupe = %v", got)
	}
}

func TestRerateMatchesInstalledTaste(t *testing.T) {
	c := News(Config{Seed: 23, Users: 10, Items: 120, RatingsPerUser: 10})
	u := model.UserID(1)
	c.Truth.InstallTaste(u, FootballFanTaste())
	var history []model.ItemID
	for i, it := range c.Catalog.Items() {
		if i%2 == 0 {
			history = append(history, it.ID)
		}
	}
	r := rng.New(3)
	c.Rerate(u, history, r)
	// Old ratings gone, exactly the history rated.
	if got := len(c.Ratings.UserRatings(u)); got != len(history) {
		t.Fatalf("user has %d ratings, want %d", got, len(history))
	}
	// Ratings track the installed taste: football items outrate hockey.
	var footSum, hockSum float64
	var footN, hockN int
	for id, v := range c.Ratings.UserRatings(u) {
		it, _ := c.Catalog.Item(id)
		switch {
		case it.HasKeyword("football"):
			footSum += v
			footN++
		case it.HasKeyword("hockey"):
			hockSum += v
			hockN++
		}
	}
	if footN == 0 || hockN == 0 {
		t.Skip("history lacks football or hockey items at this seed")
	}
	if footSum/float64(footN) <= hockSum/float64(hockN) {
		t.Fatalf("rerated football mean %.2f not above hockey %.2f",
			footSum/float64(footN), hockSum/float64(hockN))
	}
	// Other users untouched.
	if len(c.Ratings.UserRatings(2)) == 0 {
		t.Fatal("rerate clobbered another user")
	}
}
