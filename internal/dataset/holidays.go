package dataset

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rng"
)

// Holiday attribute names. The SASY example in the paper (Figure 1)
// personalises holidays on attributes the user volunteered (budget,
// travelling with children) and attributes the system inferred.
const (
	HolPrice    = "price"
	HolClimate  = "climate"
	HolSetting  = "setting" // beach, city, mountains, countryside
	HolKids     = "kidfriendly"
	HolDuration = "duration"
)

var holidayPlaces = []string{
	"Costa Azul", "Lake Miren", "Porto Velho", "Mount Ardan",
	"Isla Blanca", "Riverford", "Sunhaven", "Kalmar Bay",
	"Vale of Gerel", "New Carthage",
}

// Holidays generates the holiday domain behind the scrutable adaptive
// hypertext example (Czarkowski's SASY, Figure 1) and Top Case.
func Holidays(cfg Config) *Community {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	cat := model.NewCatalog("holidays",
		model.AttrDef{Name: HolPrice, Kind: model.Numeric, LessIsBetter: true, Unit: "$"},
		model.AttrDef{Name: HolDuration, Kind: model.Numeric, Unit: "days"},
		model.AttrDef{Name: HolClimate, Kind: model.Categorical},
		model.AttrDef{Name: HolSetting, Kind: model.Categorical},
		model.AttrDef{Name: HolKids, Kind: model.Categorical},
	)
	climates := []string{"tropical", "temperate", "cold"}
	settings := []string{"beach", "city", "mountains", "countryside"}
	yesno := []string{"yes", "no"}
	for i := 0; i < cfg.Items; i++ {
		setting := settings[r.Intn(len(settings))]
		it := &model.Item{
			ID:       model.ItemID(i + 1),
			Title:    fmt.Sprintf("%s %s break #%d", holidayPlaces[r.Intn(len(holidayPlaces))], setting, i+1),
			Keywords: []string{setting},
			Numeric: map[string]float64{
				HolPrice:    300 + 2700*r.Float64(),
				HolDuration: float64(3 + r.Intn(12)),
			},
			Categorical: map[string]string{
				HolClimate: climates[r.Intn(len(climates))],
				HolSetting: setting,
				HolKids:    yesno[r.Intn(2)],
			},
			Popularity: zipfPopularity(i),
			Recency:    r.Float64(),
		}
		cat.MustAdd(it)
	}
	truth := &Truth{tastes: map[model.UserID]*Taste{}, ranges: attrRanges(cat)}
	for u := 1; u <= cfg.Users; u++ {
		taste := &Taste{
			NumericIdeal:    map[string]float64{},
			NumericWeight:   map[string]float64{},
			CategoricalPref: map[string]map[string]float64{},
			Bias:            r.Norm(0, 0.2),
		}
		lo, hi, _ := cat.NumericRange(HolPrice)
		taste.NumericIdeal[HolPrice] = lo + (hi-lo)*0.4*r.Float64()
		taste.NumericWeight[HolPrice] = 0.5 + r.Float64()
		taste.CategoricalPref[HolSetting] = map[string]float64{
			settings[r.Intn(len(settings))]: 0.7,
		}
		taste.CategoricalPref[HolClimate] = map[string]float64{
			climates[r.Intn(len(climates))]: 0.4,
		}
		if r.Bernoulli(0.35) {
			// Travelling with children: kid-friendliness becomes a
			// strong preference — the attribute SASY's profile exposes.
			taste.CategoricalPref[HolKids] = map[string]float64{"yes": 0.8, "no": -0.8}
		}
		truth.tastes[model.UserID(u)] = taste
	}
	c := &Community{Catalog: cat, Ratings: model.NewMatrix(), Truth: truth, Noise: cfg.Noise}
	populate(c, cfg, r)
	return c
}
