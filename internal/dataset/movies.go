package dataset

import (
	"repro/internal/model"
	"repro/internal/rng"
)

// MovieGenres are the content features of the movie domain. The list
// covers the paper's running examples: comedies (transparency task,
// Sec 3.1), Disney movies (scrutability task, Sec 3.2), war movies and
// documentaries (the TiVo anecdote, Sec 2.1).
var MovieGenres = []string{
	"comedy", "drama", "thriller", "action", "romance", "documentary",
	"war", "disney", "horror", "scifi", "western", "musical",
}

var movieDirectors = []string{
	"A. Calder", "B. Okafor", "C. Lindqvist", "D. Moreau", "E. Tanaka",
	"F. Herrera", "G. Novak", "H. Baptiste",
}

// Movies generates a movie community: a catalogue with genre keywords
// plus users whose tastes are genre affinities. This is the substrate
// for the collaborative-filtering studies (Herlocker persuasion,
// Cosley rating shift, transparency and scrutability tasks).
func Movies(cfg Config) *Community {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	cat := model.NewCatalog("movies")
	for i := 0; i < cfg.Items; i++ {
		nGenres := 1 + r.Intn(3)
		it := &model.Item{
			ID:         model.ItemID(i + 1),
			Title:      titled(r, "Movie", i+1),
			Creator:    movieDirectors[r.Intn(len(movieDirectors))],
			Keywords:   pickSome(r, MovieGenres, nGenres),
			Popularity: zipfPopularity(i),
			Recency:    r.Float64(),
		}
		cat.MustAdd(it)
	}
	truth := &Truth{tastes: map[model.UserID]*Taste{}, ranges: attrRanges(cat)}
	for u := 1; u <= cfg.Users; u++ {
		taste := &Taste{
			Keyword:        map[string]float64{},
			Bias:           r.Norm(0, 0.3),
			PopularityBias: r.Norm(0.3, 0.4),
		}
		// Each user loves a couple of genres, dislikes a couple, and is
		// lukewarm on the rest — the structure the survey's worked
		// examples ("likes football, not hockey") assume.
		perm := r.Perm(len(MovieGenres))
		for rank, gi := range perm {
			g := MovieGenres[gi]
			switch {
			case rank < 2:
				taste.Keyword[g] = 0.6 + 0.4*r.Float64()
			case rank < 4:
				taste.Keyword[g] = -(0.6 + 0.4*r.Float64())
			default:
				taste.Keyword[g] = r.Norm(0, 0.25)
			}
		}
		truth.tastes[model.UserID(u)] = taste
	}
	c := &Community{Catalog: cat, Ratings: model.NewMatrix(), Truth: truth, Noise: cfg.Noise}
	populate(c, cfg, r)
	return c
}
