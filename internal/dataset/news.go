package dataset

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rng"
)

// News topics and subtopics. The paper's running example (Sections
// 4.1-4.4) is a user who watches a lot of sport — football in
// particular, not hockey or tennis — and also likes technology news.
// Items carry both the broad topic and the subtopic as keywords so
// explanations can say "this is a sports item, but it is about hockey".
var (
	NewsTopics = []string{"sport", "technology", "politics", "business", "culture", "science"}

	// NewsSubtopics maps each topic to its subtopics.
	NewsSubtopics = map[string][]string{
		"sport":      {"football", "hockey", "tennis", "athletics"},
		"technology": {"gadgets", "software", "internet", "hardware"},
		"politics":   {"elections", "policy", "world"},
		"business":   {"markets", "startups", "trade"},
		"culture":    {"film", "music", "books"},
		"science":    {"space", "health", "climate"},
	}
)

var newsHeadlineTemplates = []string{
	"%s update: what happened today",
	"Analysis: the week in %s",
	"Breaking: major development in %s",
	"%s briefing for the morning",
	"Why everyone is talking about %s",
}

// News generates a news community. Recency is first-class here: the
// treemap (Figure 2) shades by recency and the Top Item explanation
// cites "the most popular and recent item from the world cup".
func News(cfg Config) *Community {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	cat := model.NewCatalog("news",
		model.AttrDef{Name: "words", Kind: model.Numeric},
		model.AttrDef{Name: "region", Kind: model.Categorical},
	)
	regions := []string{"local", "national", "world"}
	for i := 0; i < cfg.Items; i++ {
		topic := NewsTopics[r.Intn(len(NewsTopics))]
		subs := NewsSubtopics[topic]
		sub := subs[r.Intn(len(subs))]
		it := &model.Item{
			ID:       model.ItemID(i + 1),
			Title:    fmt.Sprintf(newsHeadlineTemplates[r.Intn(len(newsHeadlineTemplates))], sub),
			Keywords: []string{topic, sub},
			Numeric:  map[string]float64{"words": 150 + float64(r.Intn(1800))},
			Categorical: map[string]string{
				"region": regions[r.Intn(len(regions))],
			},
			Popularity: zipfPopularity(i),
			Recency:    r.Float64(),
		}
		cat.MustAdd(it)
	}
	truth := &Truth{tastes: map[model.UserID]*Taste{}, ranges: attrRanges(cat)}
	for u := 1; u <= cfg.Users; u++ {
		taste := &Taste{
			Keyword:        map[string]float64{},
			Bias:           r.Norm(0, 0.25),
			PopularityBias: r.Norm(0.4, 0.3),
		}
		// Users like 1-2 broad topics, and within a liked topic they
		// have sharply differentiated subtopic preferences (football
		// yes, hockey no).
		perm := r.Perm(len(NewsTopics))
		for rank, ti := range perm {
			topic := NewsTopics[ti]
			var topicAff float64
			switch {
			case rank < 2:
				topicAff = 0.5 + 0.4*r.Float64()
			case rank < 4:
				topicAff = r.Norm(0, 0.2)
			default:
				topicAff = -(0.3 + 0.4*r.Float64())
			}
			taste.Keyword[topic] = topicAff
			for si, sub := range NewsSubtopics[topic] {
				if topicAff > 0.4 {
					if si == 0 || r.Bernoulli(0.3) {
						taste.Keyword[sub] = 0.6 + 0.4*r.Float64()
					} else {
						taste.Keyword[sub] = -(0.4 + 0.4*r.Float64())
					}
				} else {
					taste.Keyword[sub] = r.Norm(topicAff/2, 0.2)
				}
			}
		}
		truth.tastes[model.UserID(u)] = taste
	}
	c := &Community{Catalog: cat, Ratings: model.NewMatrix(), Truth: truth, Noise: cfg.Noise}
	populate(c, cfg, r)
	return c
}

// FootballFanTaste returns the paper's canonical example user: loves
// sport (football especially) and technology, dislikes hockey and
// tennis. Experiments that replay the Section 4 worked examples
// install this taste for a chosen user ID.
func FootballFanTaste() *Taste {
	return &Taste{
		Keyword: map[string]float64{
			"sport": 0.9, "football": 1.0, "hockey": -0.8, "tennis": -0.6,
			"athletics":  0.1,
			"technology": 0.7, "gadgets": 0.8, "software": 0.2,
			"politics": -0.4, "business": -0.2, "culture": -0.3, "science": 0.0,
		},
		PopularityBias: 0.4,
	}
}

// InstallTaste replaces (or adds) the latent taste of user u. It is
// used by experiments that need a scripted user inside a generated
// community.
func (t *Truth) InstallTaste(u model.UserID, taste *Taste) {
	t.tastes[u] = taste
}
