package dataset

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rng"
)

// Restaurant attribute names.
const (
	RestCuisine  = "cuisine"
	RestPrice    = "price"
	RestDistance = "distance"
	RestNoise    = "ambience" // quiet..lively, numeric 0..10
	RestParking  = "parking"
)

var cuisines = []string{
	"italian", "thai", "mexican", "japanese", "indian", "french",
	"greek", "vegan", "steakhouse", "seafood",
}

var restaurantNames = []string{
	"Olive & Ash", "Blue Lantern", "Casa Verde", "Night Market",
	"The Copper Pot", "Saffron House", "Driftwood", "Juniper",
	"Red Maple", "Harbor Lights",
}

// Restaurants generates the conversational-recommendation domain of
// Thompson, Goeker & Langley's Adaptive Place Advisor (Section 3.6).
// Conversations iterate over attribute constraints (cuisine, price,
// distance), so every item is densely attributed.
func Restaurants(cfg Config) *Community {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	cat := model.NewCatalog("restaurants",
		model.AttrDef{Name: RestPrice, Kind: model.Numeric, LessIsBetter: true, Unit: "$"},
		model.AttrDef{Name: RestDistance, Kind: model.Numeric, LessIsBetter: true, Unit: "km"},
		model.AttrDef{Name: RestNoise, Kind: model.Numeric},
		model.AttrDef{Name: RestCuisine, Kind: model.Categorical},
		model.AttrDef{Name: RestParking, Kind: model.Categorical},
	)
	parking := []string{"street", "lot", "none"}
	for i := 0; i < cfg.Items; i++ {
		cuisine := cuisines[r.Intn(len(cuisines))]
		it := &model.Item{
			ID:       model.ItemID(i + 1),
			Title:    fmt.Sprintf("%s (%s #%d)", restaurantNames[r.Intn(len(restaurantNames))], cuisine, i+1),
			Creator:  cuisine,
			Keywords: []string{cuisine},
			Numeric: map[string]float64{
				RestPrice:    10 + 90*r.Float64(),
				RestDistance: round2(0.2 + 25*r.Float64()),
				RestNoise:    float64(r.Intn(11)),
			},
			Categorical: map[string]string{
				RestCuisine: cuisine,
				RestParking: parking[r.Intn(len(parking))],
			},
			Popularity: zipfPopularity(i),
			Recency:    r.Float64(),
		}
		cat.MustAdd(it)
	}
	truth := &Truth{tastes: map[model.UserID]*Taste{}, ranges: attrRanges(cat)}
	for u := 1; u <= cfg.Users; u++ {
		taste := &Taste{
			Keyword:         map[string]float64{},
			NumericIdeal:    map[string]float64{},
			NumericWeight:   map[string]float64{},
			CategoricalPref: map[string]map[string]float64{RestCuisine: {}},
			Bias:            r.Norm(0, 0.2),
		}
		perm := r.Perm(len(cuisines))
		for rank, ci := range perm {
			cuisine := cuisines[ci]
			switch {
			case rank < 2:
				taste.Keyword[cuisine] = 0.7 + 0.3*r.Float64()
				taste.CategoricalPref[RestCuisine][cuisine] = 0.5
			case rank < 4:
				taste.Keyword[cuisine] = -(0.5 + 0.5*r.Float64())
				taste.CategoricalPref[RestCuisine][cuisine] = -0.5
			default:
				taste.Keyword[cuisine] = r.Norm(0, 0.2)
			}
		}
		lo, hi, _ := cat.NumericRange(RestPrice)
		taste.NumericIdeal[RestPrice] = lo + (hi-lo)*0.3*r.Float64()
		taste.NumericWeight[RestPrice] = 0.5 + r.Float64()
		taste.NumericIdeal[RestDistance] = 0.5 + 5*r.Float64()
		taste.NumericWeight[RestDistance] = 0.5 + r.Float64()
		truth.tastes[model.UserID(u)] = taste
	}
	c := &Community{Catalog: cat, Ratings: model.NewMatrix(), Truth: truth, Noise: cfg.Noise}
	populate(c, cfg, r)
	return c
}
