package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Cross-validation over rating matrices: the standard protocol behind
// every accuracy number in the recommender literature the survey
// leans on. Folds are deterministic in the seed and partition the
// rating set exactly.

// Fold is one train/test split.
type Fold struct {
	Train *model.Matrix
	Test  []model.Rating
}

// ErrBadFoldCount is returned for k < 2 or k larger than the rating
// count.
var ErrBadFoldCount = errors.New("eval: fold count must be in [2, #ratings]")

// KFold splits the matrix into k folds. Every rating appears in
// exactly one test set; each fold's training matrix is the complement.
func KFold(m *model.Matrix, k int, seed uint64) ([]Fold, error) {
	if k < 2 || k > m.Len() {
		return nil, fmt.Errorf("%w: k=%d over %d ratings", ErrBadFoldCount, k, m.Len())
	}
	// Deterministic rating list: users sorted, items sorted.
	var all []model.Rating
	for _, u := range m.Users() {
		ratings := m.UserRatings(u)
		ids := make([]model.ItemID, 0, len(ratings))
		for i := range ratings {
			ids = append(ids, i)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, i := range ids {
			all = append(all, model.Rating{User: u, Item: i, Value: ratings[i]})
		}
	}
	r := rng.New(seed)
	r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	folds := make([]Fold, k)
	for idx, rt := range all {
		f := idx % k
		folds[f].Test = append(folds[f].Test, rt)
	}
	for f := range folds {
		train := m.Clone()
		for _, rt := range folds[f].Test {
			train.Delete(rt.User, rt.Item)
		}
		folds[f].Train = train
	}
	return folds, nil
}

// CrossValResult aggregates per-fold errors.
type CrossValResult struct {
	FoldMAE  []float64
	FoldRMSE []float64
	// Coverage is the fraction of test ratings the predictor could
	// score at all (cold starts reduce it).
	Coverage float64
}

// MeanMAE returns the mean of the per-fold MAEs.
func (r CrossValResult) MeanMAE() float64 { return stats.Mean(r.FoldMAE) }

// MeanRMSE returns the mean of the per-fold RMSEs.
func (r CrossValResult) MeanRMSE() float64 { return stats.Mean(r.FoldRMSE) }

// CrossValidate trains a predictor on each fold's training matrix and
// scores it on the held-out ratings. The trainer is called once per
// fold.
func CrossValidate(m *model.Matrix, k int, seed uint64, trainer func(train *model.Matrix) recsys.Predictor) (CrossValResult, error) {
	folds, err := KFold(m, k, seed)
	if err != nil {
		return CrossValResult{}, err
	}
	var res CrossValResult
	var predicted, total int
	for _, fold := range folds {
		p := trainer(fold.Train)
		var pred, actual []float64
		for _, rt := range fold.Test {
			total++
			pr, err := p.Predict(rt.User, rt.Item)
			if err != nil {
				continue
			}
			predicted++
			pred = append(pred, pr.Score)
			actual = append(actual, rt.Value)
		}
		if len(pred) == 0 {
			continue
		}
		mae, err := MAE(pred, actual)
		if err != nil {
			return CrossValResult{}, err
		}
		rmse, err := RMSE(pred, actual)
		if err != nil {
			return CrossValResult{}, err
		}
		res.FoldMAE = append(res.FoldMAE, mae)
		res.FoldRMSE = append(res.FoldRMSE, rmse)
	}
	if total > 0 {
		res.Coverage = float64(predicted) / float64(total)
	}
	if len(res.FoldMAE) == 0 {
		return res, errors.New("eval: no fold produced any prediction")
	}
	if math.IsNaN(res.MeanMAE()) {
		return res, errors.New("eval: NaN fold error")
	}
	return res, nil
}
