package eval

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
)

func TestKFoldPartitionsExactly(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 81, Users: 30, Items: 40, RatingsPerUser: 10})
	folds, err := KFold(c.Ratings, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[[2]int]int{}
	total := 0
	for _, f := range folds {
		total += len(f.Test)
		for _, rt := range f.Test {
			seen[[2]int{int(rt.User), int(rt.Item)}]++
			// Test ratings are absent from that fold's training matrix.
			if _, ok := f.Train.Get(rt.User, rt.Item); ok {
				t.Fatalf("test rating (%d,%d) leaked into training", rt.User, rt.Item)
			}
		}
		if f.Train.Len()+len(f.Test) != c.Ratings.Len() {
			t.Fatalf("fold sizes inconsistent: %d + %d != %d",
				f.Train.Len(), len(f.Test), c.Ratings.Len())
		}
	}
	if total != c.Ratings.Len() {
		t.Fatalf("test sets cover %d of %d ratings", total, c.Ratings.Len())
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("rating %v in %d test sets", key, n)
		}
	}
}

func TestKFoldDeterministic(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 82, Users: 20, Items: 30, RatingsPerUser: 8})
	a, _ := KFold(c.Ratings, 4, 9)
	b, _ := KFold(c.Ratings, 4, 9)
	for f := range a {
		if len(a[f].Test) != len(b[f].Test) {
			t.Fatal("fold sizes differ between runs")
		}
		for i := range a[f].Test {
			if a[f].Test[i] != b[f].Test[i] {
				t.Fatal("fold contents differ between runs")
			}
		}
	}
	// Different seeds shuffle differently.
	d, _ := KFold(c.Ratings, 4, 10)
	same := true
	for i := range a[0].Test {
		if i < len(d[0].Test) && a[0].Test[i] != d[0].Test[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical folds")
	}
}

func TestKFoldErrors(t *testing.T) {
	m := model.NewMatrix()
	m.Set(1, 1, 3)
	if _, err := KFold(m, 1, 0); !errors.Is(err, ErrBadFoldCount) {
		t.Fatalf("err = %v", err)
	}
	if _, err := KFold(m, 5, 0); !errors.Is(err, ErrBadFoldCount) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossValidateCF(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 83, Users: 120, Items: 80, RatingsPerUser: 30})
	res, err := CrossValidate(c.Ratings, 5, 3, func(train *model.Matrix) recsys.Predictor {
		return cf.NewUserKNN(train, c.Catalog, cf.Options{K: 20})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldMAE) != 5 {
		t.Fatalf("fold MAEs = %v", res.FoldMAE)
	}
	if res.MeanMAE() <= 0 || res.MeanMAE() > 1.5 {
		t.Fatalf("MAE = %v", res.MeanMAE())
	}
	if res.MeanRMSE() < res.MeanMAE() {
		t.Fatalf("RMSE %v < MAE %v", res.MeanRMSE(), res.MeanMAE())
	}
	if res.Coverage < 0.8 {
		t.Fatalf("coverage = %v", res.Coverage)
	}
}

func TestCrossValidateDegeneratePredictor(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 84, Users: 10, Items: 15, RatingsPerUser: 5})
	_, err := CrossValidate(c.Ratings, 3, 1, func(*model.Matrix) recsys.Predictor {
		return failingPredictor{}
	})
	if err == nil {
		t.Fatal("all-failing predictor should error")
	}
}

type failingPredictor struct{}

func (failingPredictor) Predict(model.UserID, model.ItemID) (recsys.Prediction, error) {
	return recsys.Prediction{}, recsys.ErrColdStart
}
