// Package eval implements the evaluation measures of the survey's
// Section 3: the classic accuracy metrics the paper says "can only
// partially evaluate a recommender system" (MAE, RMSE, precision,
// recall), the beyond-accuracy measures it cites (coverage, diversity,
// serendipity), and the per-aim instruments — trust questionnaires,
// loyalty proxies, task outcomes — that the criterion experiments
// aggregate.
package eval

import (
	"errors"
	"math"

	"repro/internal/model"
)

// ErrMismatchedSamples is returned when paired metric inputs differ in
// length or are empty.
var ErrMismatchedSamples = errors.New("eval: mismatched or empty samples")

// MAE returns the mean absolute error between predictions and actuals.
func MAE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return 0, ErrMismatchedSamples
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred)), nil
}

// RMSE returns the root mean squared error.
func RMSE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return 0, ErrMismatchedSamples
	}
	var sum float64
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// PrecisionRecallAtK scores a ranked recommendation list against a
// relevance set: precision = relevant retrieved / k-or-fewer
// retrieved, recall = relevant retrieved / all relevant. A k <= 0
// means the whole list. An empty relevance set yields zero recall.
func PrecisionRecallAtK(ranked []model.ItemID, relevant map[model.ItemID]bool, k int) (precision, recall float64) {
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0, 0
	}
	var hit int
	for _, id := range ranked[:k] {
		if relevant[id] {
			hit++
		}
	}
	precision = float64(hit) / float64(k)
	if len(relevant) > 0 {
		recall = float64(hit) / float64(len(relevant))
	}
	return precision, recall
}

// F1 combines precision and recall; zero when both are zero.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// CatalogCoverage returns the fraction of the catalogue that appears
// in at least one recommendation list.
func CatalogCoverage(lists [][]model.ItemID, catalogSize int) float64 {
	if catalogSize <= 0 {
		return 0
	}
	seen := map[model.ItemID]bool{}
	for _, l := range lists {
		for _, id := range l {
			seen[id] = true
		}
	}
	return float64(len(seen)) / float64(catalogSize)
}

// IntraListDiversity returns 1 minus the mean pairwise keyword Jaccard
// similarity of a recommendation list (Ziegler et al.'s topic
// diversification intuition). Single-item or empty lists score 0.
func IntraListDiversity(cat *model.Catalog, list []model.ItemID) float64 {
	items := make([]*model.Item, 0, len(list))
	for _, id := range list {
		if it, err := cat.Item(id); err == nil {
			items = append(items, it)
		}
	}
	if len(items) < 2 {
		return 0
	}
	var sum float64
	var n int
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			sum += 1 - jaccard(items[i].Keywords, items[j].Keywords)
			n++
		}
	}
	return sum / float64(n)
}

func jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := map[string]bool{}
	for _, k := range a {
		set[k] = true
	}
	var inter int
	union := map[string]bool{}
	for _, k := range a {
		union[k] = true
	}
	for _, k := range b {
		if set[k] {
			inter++
		}
		union[k] = true
	}
	return float64(inter) / float64(len(union))
}

// Serendipity returns the fraction of recommended items that are both
// relevant and unexpected (popularity below popThreshold) — McNee et
// al.'s "accuracy is not enough" measure.
func Serendipity(cat *model.Catalog, list []model.ItemID, relevant map[model.ItemID]bool, popThreshold float64) float64 {
	if len(list) == 0 {
		return 0
	}
	var hits int
	for _, id := range list {
		it, err := cat.Item(id)
		if err != nil {
			continue
		}
		if relevant[id] && it.Popularity < popThreshold {
			hits++
		}
	}
	return float64(hits) / float64(len(list))
}
