package eval

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/rng"
)

func TestMAEAndRMSE(t *testing.T) {
	pred := []float64{3, 4, 5}
	actual := []float64{4, 4, 3}
	mae, err := MAE(pred, actual)
	if err != nil || mae != 1 {
		t.Fatalf("MAE = %v, %v", mae, err)
	}
	rmse, err := RMSE(pred, actual)
	if err != nil || math.Abs(rmse-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("RMSE = %v, %v", rmse, err)
	}
	if _, err := MAE(nil, nil); !errors.Is(err, ErrMismatchedSamples) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrMismatchedSamples) {
		t.Fatalf("mismatch err = %v", err)
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	ranked := []model.ItemID{1, 2, 3, 4, 5}
	relevant := map[model.ItemID]bool{1: true, 3: true, 9: true}
	p, r := PrecisionRecallAtK(ranked, relevant, 3)
	if p != 2.0/3 || r != 2.0/3 {
		t.Fatalf("P/R@3 = %v, %v", p, r)
	}
	p, r = PrecisionRecallAtK(ranked, relevant, 0) // whole list
	if p != 2.0/5 || r != 2.0/3 {
		t.Fatalf("P/R@all = %v, %v", p, r)
	}
	p, r = PrecisionRecallAtK(nil, relevant, 3)
	if p != 0 || r != 0 {
		t.Fatalf("empty list P/R = %v, %v", p, r)
	}
	_, r = PrecisionRecallAtK(ranked, nil, 3)
	if r != 0 {
		t.Fatalf("empty relevance recall = %v", r)
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Fatal("F1(0,0)")
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("F1 = %v", got)
	}
}

func TestCatalogCoverage(t *testing.T) {
	lists := [][]model.ItemID{{1, 2}, {2, 3}}
	if got := CatalogCoverage(lists, 10); got != 0.3 {
		t.Fatalf("coverage = %v", got)
	}
	if CatalogCoverage(nil, 0) != 0 {
		t.Fatal("degenerate coverage")
	}
}

func TestIntraListDiversity(t *testing.T) {
	cat := model.NewCatalog("t")
	cat.MustAdd(&model.Item{ID: 1, Keywords: []string{"a"}})
	cat.MustAdd(&model.Item{ID: 2, Keywords: []string{"a"}})
	cat.MustAdd(&model.Item{ID: 3, Keywords: []string{"b"}})
	same := IntraListDiversity(cat, []model.ItemID{1, 2})
	diff := IntraListDiversity(cat, []model.ItemID{1, 3})
	if same != 0 || diff != 1 {
		t.Fatalf("diversity same=%v diff=%v", same, diff)
	}
	if IntraListDiversity(cat, []model.ItemID{1}) != 0 {
		t.Fatal("singleton diversity should be 0")
	}
	// Unknown IDs are skipped, not fatal.
	if IntraListDiversity(cat, []model.ItemID{1, 999}) != 0 {
		t.Fatal("unknown id handling")
	}
}

func TestJaccard(t *testing.T) {
	if jaccard(nil, nil) != 1 {
		t.Fatal("empty sets are identical")
	}
	if got := jaccard([]string{"a", "b"}, []string{"b", "c"}); got != 1.0/3 {
		t.Fatalf("jaccard = %v", got)
	}
}

func TestSerendipity(t *testing.T) {
	cat := model.NewCatalog("t")
	cat.MustAdd(&model.Item{ID: 1, Popularity: 0.9})
	cat.MustAdd(&model.Item{ID: 2, Popularity: 0.1})
	cat.MustAdd(&model.Item{ID: 3, Popularity: 0.1})
	relevant := map[model.ItemID]bool{1: true, 2: true}
	// Item 2 is relevant and obscure; item 1 relevant but popular;
	// item 3 obscure but irrelevant.
	if got := Serendipity(cat, []model.ItemID{1, 2, 3}, relevant, 0.5); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("serendipity = %v", got)
	}
	if Serendipity(cat, nil, relevant, 0.5) != 0 {
		t.Fatal("empty list serendipity")
	}
}

func TestTrustQuestionnaire(t *testing.T) {
	q := NewTrustQuestionnaire()
	if len(q.Dimensions) != 5 {
		t.Fatalf("dimensions = %v", q.Dimensions)
	}
	r := rng.New(3)
	var lowSum, highSum float64
	const n = 300
	for i := 0; i < n; i++ {
		lowSum += q.Administer(0.1, r).Overall()
		highSum += q.Administer(0.9, r).Overall()
	}
	low, high := lowSum/n, highSum/n
	if high <= low+2 {
		t.Fatalf("questionnaire should separate trust levels: %v vs %v", low, high)
	}
	resp := q.Administer(0.5, r)
	for d, v := range resp.Scores {
		if v < 1 || v > 7 {
			t.Fatalf("dimension %s score %v off Likert scale", d, v)
		}
	}
}

func TestSummarizeTasks(t *testing.T) {
	rep := SummarizeTasks([]TaskOutcome{
		{Correct: true, Seconds: 30},
		{Correct: false, Seconds: 90, GaveUp: true},
		{Correct: true, Seconds: 60},
	})
	if rep.N != 3 || math.Abs(rep.CorrectRate-2.0/3) > 1e-12 || math.Abs(rep.GaveUpRate-1.0/3) > 1e-12 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.TimeSummary.Mean != 60 {
		t.Fatalf("mean time = %v", rep.TimeSummary.Mean)
	}
	if SummarizeTasks(nil).N != 0 {
		t.Fatal("empty report")
	}
}

func TestWalkthroughLog(t *testing.T) {
	var w WalkthroughLog
	if w.PositiveRatio() != 0.5 {
		t.Fatal("empty ratio should be neutral")
	}
	for _, k := range []string{"+", "+", "-", "frustrated", "delighted", "workaround", "bogus"} {
		w.Record(k)
	}
	if w.Positive != 2 || w.Negative != 1 || w.Frustrated != 1 || w.Delighted != 1 || w.Workarounds != 1 {
		t.Fatalf("log = %+v", w)
	}
	if math.Abs(w.PositiveRatio()-2.0/3) > 1e-12 {
		t.Fatalf("ratio = %v", w.PositiveRatio())
	}
	if !strings.Contains(w.String(), "comments +2/-1") {
		t.Fatalf("String = %q", w.String())
	}
}
