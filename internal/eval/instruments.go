package eval

import (
	"fmt"
	"strings"

	"repro/internal/rng"
	"repro/internal/stats"
)

// TrustQuestionnaire models the five-dimensional trust scale the
// survey cites (Ohanian 1990, adapted to recommender systems as
// suggested in Section 3.3). Each dimension is a 1-7 Likert item; the
// simulated response is driven by the respondent's latent trust state
// plus response noise — the instrument's unreliability is part of the
// simulation, mirroring the paper's caveat that stated preferences and
// behaviour diverge.
type TrustQuestionnaire struct {
	// Dimensions of the validated scale.
	Dimensions []string
}

// NewTrustQuestionnaire returns the five-dimension instrument.
func NewTrustQuestionnaire() *TrustQuestionnaire {
	return &TrustQuestionnaire{Dimensions: []string{
		"expertise", "trustworthiness", "attractiveness", "reliability", "intention-to-return",
	}}
}

// QuestionnaireResponse is one filled-in questionnaire.
type QuestionnaireResponse struct {
	Scores map[string]float64 // per dimension, 1-7
}

// Overall returns the mean across dimensions.
func (r QuestionnaireResponse) Overall() float64 {
	var sum float64
	for _, v := range r.Scores {
		sum += v
	}
	return sum / float64(len(r.Scores))
}

// Administer produces a response from a latent trust level in [0,1].
func (q *TrustQuestionnaire) Administer(trust float64, r *rng.RNG) QuestionnaireResponse {
	resp := QuestionnaireResponse{Scores: map[string]float64{}}
	for _, d := range q.Dimensions {
		v := 1 + 6*trust + r.Norm(0, 0.7)
		if v < 1 {
			v = 1
		}
		if v > 7 {
			v = 7
		}
		resp.Scores[d] = v
	}
	return resp
}

// TaskOutcome records one task-based trial (transparency and
// scrutability studies, Sections 3.1-3.2).
type TaskOutcome struct {
	Correct bool
	Seconds float64
	// GaveUp marks abandonment (patience exhausted) — counted as
	// incorrect but tracked separately because the Czarkowski study
	// found time/correctness misleading when interface issues arose.
	GaveUp bool
}

// TaskReport aggregates task outcomes.
type TaskReport struct {
	N            int
	CorrectRate  float64
	GaveUpRate   float64
	TimeSummary  stats.Summary
	TimesSeconds []float64
}

// SummarizeTasks aggregates trials into a report.
func SummarizeTasks(outcomes []TaskOutcome) TaskReport {
	rep := TaskReport{N: len(outcomes)}
	if len(outcomes) == 0 {
		return rep
	}
	var correct, gaveUp int
	for _, o := range outcomes {
		if o.Correct {
			correct++
		}
		if o.GaveUp {
			gaveUp++
		}
		rep.TimesSeconds = append(rep.TimesSeconds, o.Seconds)
	}
	rep.CorrectRate = float64(correct) / float64(len(outcomes))
	rep.GaveUpRate = float64(gaveUp) / float64(len(outcomes))
	rep.TimeSummary = stats.Summarize(rep.TimesSeconds)
	return rep
}

// WalkthroughLog collects the qualitative satisfaction measures of
// Section 3.7: positive and negative comments, frustration and
// delight events, and workarounds.
type WalkthroughLog struct {
	Positive, Negative    int
	Frustrated, Delighted int
	Workarounds           int
}

// Record notes one event by kind: "+", "-", "frustrated", "delighted",
// "workaround". Unknown kinds are ignored.
func (w *WalkthroughLog) Record(kind string) {
	switch kind {
	case "+":
		w.Positive++
	case "-":
		w.Negative++
	case "frustrated":
		w.Frustrated++
	case "delighted":
		w.Delighted++
	case "workaround":
		w.Workarounds++
	}
}

// PositiveRatio returns positive/(positive+negative), or 0.5 with no
// comments.
func (w *WalkthroughLog) PositiveRatio() float64 {
	total := w.Positive + w.Negative
	if total == 0 {
		return 0.5
	}
	return float64(w.Positive) / float64(total)
}

// String renders the log for reports.
func (w *WalkthroughLog) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "comments +%d/-%d (ratio %.2f), frustrated %d, delighted %d, workarounds %d",
		w.Positive, w.Negative, w.PositiveRatio(), w.Frustrated, w.Delighted, w.Workarounds)
	return b.String()
}
