package eval

import (
	"math"

	"repro/internal/model"
)

// Ranking-quality measures over graded relevance. The survey's
// effectiveness criterion "is most closely related to accuracy
// measures such as precision and recall" (Section 3.5); nDCG and MRR
// extend that to position-aware evaluation of the ranked lists the
// presentation layer actually shows.

// DCGAtK returns the discounted cumulative gain of a ranked list
// against graded relevances (missing items count zero). k <= 0 means
// the whole list. An item's gain is realised at its first occurrence
// only, so malformed lists with duplicates cannot inflate the score.
func DCGAtK(ranked []model.ItemID, relevance map[model.ItemID]float64, k int) float64 {
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	var dcg float64
	seen := map[model.ItemID]bool{}
	for pos := 0; pos < k; pos++ {
		id := ranked[pos]
		if seen[id] {
			continue
		}
		seen[id] = true
		rel := relevance[id]
		if rel == 0 {
			continue
		}
		dcg += (math.Pow(2, rel) - 1) / math.Log2(float64(pos)+2)
	}
	return dcg
}

// NDCGAtK returns the normalised DCG in [0, 1]: the list's DCG divided
// by the DCG of the ideal ordering of the relevance set. Zero when the
// relevance set is empty.
func NDCGAtK(ranked []model.ItemID, relevance map[model.ItemID]float64, k int) float64 {
	if len(relevance) == 0 {
		return 0
	}
	ideal := idealDCG(relevance, k, len(ranked))
	if ideal == 0 {
		return 0
	}
	return DCGAtK(ranked, relevance, k) / ideal
}

func idealDCG(relevance map[model.ItemID]float64, k, listLen int) float64 {
	rels := make([]float64, 0, len(relevance))
	for _, r := range relevance {
		if r > 0 {
			rels = append(rels, r)
		}
	}
	// Descending sort of relevances.
	for i := 0; i < len(rels); i++ {
		for j := i + 1; j < len(rels); j++ {
			if rels[j] > rels[i] {
				rels[i], rels[j] = rels[j], rels[i]
			}
		}
	}
	if k <= 0 {
		k = listLen
	}
	if k <= 0 || k > len(rels) {
		k = len(rels)
	}
	var dcg float64
	for pos := 0; pos < k; pos++ {
		dcg += (math.Pow(2, rels[pos]) - 1) / math.Log2(float64(pos)+2)
	}
	return dcg
}

// MRR returns the mean reciprocal rank of the first relevant item over
// a set of ranked lists; lists with no relevant item contribute zero.
func MRR(lists [][]model.ItemID, relevant map[model.ItemID]bool) float64 {
	if len(lists) == 0 {
		return 0
	}
	var sum float64
	for _, l := range lists {
		for pos, id := range l {
			if relevant[id] {
				sum += 1 / float64(pos+1)
				break
			}
		}
	}
	return sum / float64(len(lists))
}
