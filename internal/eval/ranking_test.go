package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/rng"
)

func TestDCGHandComputed(t *testing.T) {
	ranked := []model.ItemID{1, 2, 3}
	rel := map[model.ItemID]float64{1: 3, 3: 1}
	// DCG = (2^3-1)/log2(2) + 0 + (2^1-1)/log2(4) = 7 + 0.5
	if got := DCGAtK(ranked, rel, 0); math.Abs(got-7.5) > 1e-12 {
		t.Fatalf("DCG = %v, want 7.5", got)
	}
	// At k=1 only the first position counts.
	if got := DCGAtK(ranked, rel, 1); got != 7 {
		t.Fatalf("DCG@1 = %v", got)
	}
}

func TestNDCGPerfectOrdering(t *testing.T) {
	rel := map[model.ItemID]float64{1: 3, 2: 2, 3: 1}
	perfect := []model.ItemID{1, 2, 3}
	if got := NDCGAtK(perfect, rel, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect nDCG = %v", got)
	}
	worst := []model.ItemID{9, 8, 7, 3, 2, 1}
	if got := NDCGAtK(worst, rel, 0); got >= 1 || got <= 0 {
		t.Fatalf("degraded nDCG = %v", got)
	}
	if NDCGAtK(perfect, nil, 0) != 0 {
		t.Fatal("empty relevance should score 0")
	}
}

func TestNDCGBoundsQuick(t *testing.T) {
	r := rng.New(3)
	f := func(n uint8) bool {
		size := int(n%20) + 1
		ranked := make([]model.ItemID, size)
		rel := map[model.ItemID]float64{}
		for i := range ranked {
			ranked[i] = model.ItemID(r.Intn(30))
			if r.Bernoulli(0.4) {
				rel[model.ItemID(r.Intn(30))] = float64(r.Intn(3) + 1)
			}
		}
		v := NDCGAtK(ranked, rel, 0)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMRR(t *testing.T) {
	lists := [][]model.ItemID{
		{5, 1, 2}, // relevant at rank 2
		{1, 9, 9}, // rank 1
		{9, 9, 9}, // none
	}
	relevant := map[model.ItemID]bool{1: true, 2: true}
	want := (0.5 + 1 + 0) / 3
	if got := MRR(lists, relevant); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MRR = %v, want %v", got, want)
	}
	if MRR(nil, relevant) != 0 {
		t.Fatal("empty lists MRR")
	}
}

func TestNDCGRewardsBetterOrderingOnRealRecommender(t *testing.T) {
	// nDCG of a taste-ordered list must beat a reversed one.
	rel := map[model.ItemID]float64{1: 3, 2: 3, 3: 2, 4: 1}
	good := []model.ItemID{1, 2, 3, 4, 5, 6}
	bad := []model.ItemID{6, 5, 4, 3, 2, 1}
	if NDCGAtK(good, rel, 0) <= NDCGAtK(bad, rel, 0) {
		t.Fatal("nDCG did not reward better ordering")
	}
}
