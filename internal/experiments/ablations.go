package experiments

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/usersim"
)

// RunA4 sweeps the CF neighbourhood size K and reports both prediction
// accuracy (held-out MAE) and the persuasiveness of the histogram
// explanation built from the same neighbourhood. The design point the
// sweep illuminates: tiny neighbourhoods make weak histograms (little
// social proof) and noisy predictions; very large ones dilute
// similarity. Explanation quality and accuracy are coupled through the
// same evidence.
func RunA4(seed uint64) *Result {
	r := newResult("A4", "Ablation: CF neighbourhood size")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 200, Items: 100, RatingsPerUser: 40})
	pop := usersim.NewPopulation(c, 100, seed+15)

	// Hold out one rating per user for MAE.
	type holdout struct {
		u model.UserID
		i model.ItemID
		v float64
	}
	// Deterministic holdout: each user's three lowest-ID rated items
	// (map iteration order must never leak into experiment output).
	var held []holdout
	train := c.Ratings.Clone()
	for _, u := range c.Ratings.Users() {
		ids := make([]model.ItemID, 0, len(c.Ratings.UserRatings(u)))
		for i := range c.Ratings.UserRatings(u) {
			ids = append(ids, i)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for k := 0; k < 3 && k < len(ids); k++ {
			v, _ := c.Ratings.Get(u, ids[k])
			held = append(held, holdout{u, ids[k], v})
		}
	}
	for _, h := range held {
		train.Delete(h.u, h.i)
	}

	ks := []int{3, 5, 10, 20, 40}
	tbl := tablewriter.New("K", "Held-out MAE", "Mean histogram intent (1-7)", "Mean neighbours shown").
		SetTitle("A4: neighbourhood size vs accuracy and histogram persuasiveness").
		SetAligns(tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	maes := make([]float64, 0, len(ks))
	intents := make([]float64, 0, len(ks))
	for _, k := range ks {
		knn := cf.NewUserKNN(train, c.Catalog, cf.Options{K: k})
		var errSum float64
		var n int
		for _, h := range held {
			pred, err := knn.Predict(h.u, h.i)
			if err != nil {
				continue
			}
			errSum += math.Abs(pred.Score - h.v)
			n++
		}
		mae := errSum / float64(n)

		var intentXs []float64
		var nbCount float64
		var nbN int
		for _, u := range pop.Users {
			var done int
			for _, it := range c.Catalog.Items() {
				if done >= 2 {
					break
				}
				if _, rated := train.Get(u.ID, it.ID); rated {
					continue
				}
				nbs := knn.Neighbors(u.ID, it.ID)
				if len(nbs) == 0 {
					continue
				}
				pred, err := knn.Predict(u.ID, it.ID)
				if err != nil {
					continue
				}
				avg, _ := train.ItemMean(it.ID)
				ev := explain.PersuasionEvidence{
					Item: it, Neighbors: nbs, Prediction: pred, ItemAvg: avg, PastAccuracy: 0.7,
				}
				pi := explain.Herlocker21()[0] // histogram-grouped
				intentXs = append(intentXs, u.Intent(it, usersim.Stimulus{
					Support: pi.Support(ev),
					Clarity: pi.Clarity,
				}))
				nbCount += float64(len(nbs))
				nbN++
				done++
			}
		}
		meanIntent := stats.Mean(intentXs)
		maes = append(maes, mae)
		intents = append(intents, meanIntent)
		tbl.AddRow(k, mae, meanIntent, nbCount/float64(nbN))
	}
	r.Report = tbl.String()

	bestMAEAt := 0
	for i := range maes {
		if maes[i] < maes[bestMAEAt] {
			bestMAEAt = i
		}
	}
	r.metric("mae_k3", maes[0])
	r.metric("mae_best", maes[bestMAEAt])
	r.metric("best_k", float64(ks[bestMAEAt]))
	r.metric("intent_k3", intents[0])
	r.metric("intent_k40", intents[len(intents)-1])

	r.check(ks[bestMAEAt] >= 10,
		"accuracy improves beyond tiny neighbourhoods (best K = %d)", ks[bestMAEAt])
	r.check(maes[0] > maes[bestMAEAt],
		"K=3 is worse than the best K (%.3f > %.3f)", maes[0], maes[bestMAEAt])
	return r
}

// RunA6 sweeps the topic-diversification strength of Ziegler et al.
// (the survey's reference [39]) against list quality: as the
// diversification factor grows, intra-list topic diversity rises while
// the mean predicted score of the list falls — the diversity/accuracy
// trade-off the survey's introduction cites alongside serendipity as
// "increasingly seen as important" beyond raw accuracy.
func RunA6(seed uint64) *Result {
	r := newResult("A6", "Ablation: topic diversification vs accuracy")
	c := dataset.News(dataset.Config{Seed: seed, Users: 100, Items: 150, RatingsPerUser: 25})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 15})

	lambdas := []float64{1, 0.8, 0.6, 0.4}
	tbl := tablewriter.New("Lambda", "Mean list score", "Intra-list diversity", "Mean true utility").
		SetTitle("A6: diversification strength vs score and diversity (top-10 lists)").
		SetAligns(tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	scores := make([]float64, 0, len(lambdas))
	diversities := make([]float64, 0, len(lambdas))
	for _, lambda := range lambdas {
		var scoreSum, divSum, truthSum float64
		var n int
		for u := 1; u <= 100; u++ {
			uid := model.UserID(u)
			preds := knn.Recommend(uid, 40, recsys.ExcludeRated(c.Ratings, uid))
			if len(preds) < 10 {
				continue
			}
			list := present.Diversify(c.Catalog, preds, lambda, 10)
			var ids []model.ItemID
			for _, p := range list {
				ids = append(ids, p.Item)
				scoreSum += p.Score
				if it, err := c.Catalog.Item(p.Item); err == nil {
					truthSum += c.Truth.Utility(uid, it)
				}
			}
			divSum += eval.IntraListDiversity(c.Catalog, ids)
			n++
		}
		meanScore := scoreSum / float64(n*10)
		meanDiv := divSum / float64(n)
		scores = append(scores, meanScore)
		diversities = append(diversities, meanDiv)
		tbl.AddRow(lambda, meanScore, meanDiv, truthSum/float64(n*10))
	}
	r.Report = tbl.String()
	r.metric("score_lambda1", scores[0])
	r.metric("score_lambda04", scores[len(scores)-1])
	r.metric("diversity_lambda1", diversities[0])
	r.metric("diversity_lambda04", diversities[len(diversities)-1])
	r.check(diversities[len(diversities)-1] > diversities[0],
		"diversification raises intra-list diversity (%.3f > %.3f)",
		diversities[len(diversities)-1], diversities[0])
	r.check(scores[len(scores)-1] < scores[0],
		"diversification costs predicted score (%.3f < %.3f)",
		scores[len(scores)-1], scores[0])
	for i := 1; i < len(diversities); i++ {
		r.check(diversities[i] >= diversities[i-1]-0.01,
			"diversity responds monotonically at lambda=%.1f", lambdas[i])
	}
	return r
}
