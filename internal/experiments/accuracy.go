package experiments

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/content"
	"repro/internal/recsys/mf"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/usersim"
)

// RunA5 is the "being accurate is not enough" ablation (the survey's
// introduction cites McNee et al. 2006 for exactly this point). Three
// recommenders run on the same community:
//
//   - matrix factorisation — the strongest predictor, but its latent
//     factors name nothing a user recognises, so its only explanation
//     is the vague preference-based fallback;
//   - user-kNN — explained by neighbour histograms (social proof);
//   - naive Bayes — explained by influence reports grounded in the
//     user's own ratings.
//
// Measured per recommender: held-out MAE (accuracy), and the
// effectiveness of the recommend-and-explain pipeline — the
// pre/post-consumption error of users deciding with that recommender's
// best available explanation. The shape: MF wins accuracy but loses
// effectiveness, because an explanation that cannot ground itself in
// anything the user knows cannot help them judge.
func RunA5(seed uint64) *Result {
	r := newResult("A5", "Ablation: accuracy vs explanation grounding")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 200, Items: 120, RatingsPerUser: 30})
	pop := usersim.NewPopulation(c, 200, seed+16)

	// Held-out split: three lowest-ID ratings per user.
	type holdout struct {
		u model.UserID
		i model.ItemID
		v float64
	}
	var held []holdout
	train := c.Ratings.Clone()
	for _, u := range c.Ratings.Users() {
		ids := make([]model.ItemID, 0, len(c.Ratings.UserRatings(u)))
		for i := range c.Ratings.UserRatings(u) {
			ids = append(ids, i)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for k := 0; k < 3 && k < len(ids); k++ {
			v, _ := c.Ratings.Get(u, ids[k])
			held = append(held, holdout{u, ids[k], v})
			train.Delete(u, ids[k])
		}
	}

	knn := cf.NewUserKNN(train, c.Catalog, cf.Options{K: 20})
	bayes := content.NewBayes(train, c.Catalog)
	factors := mf.Train(train, c.Catalog, mf.Options{Seed: seed})

	histEx := explain.NewHistogramExplainer(knn)
	inflEx := explain.NewInfluenceExplainer(bayes, c.Catalog)

	type system struct {
		name string
		rec  recsys.Recommender
		// stimulus builds the user-facing display for one pick; nil
		// explanation means only the vague fallback is available.
		stimulus func(u model.UserID, it *model.Item, pred recsys.Prediction) usersim.Stimulus
	}
	systems := []system{
		{
			name: "matrix-factorisation",
			rec:  factors,
			stimulus: func(u model.UserID, it *model.Item, pred recsys.Prediction) usersim.Stimulus {
				// "Your interests suggest you would like X": true but
				// groundless — nothing for the user's own judgement to
				// engage with.
				return usersim.Stimulus{
					Shown: pred.Score, Clarity: 0.9,
					Informativeness: 0.05, Hype: 0.2, Support: 0.2,
				}
			},
		},
		{
			name: "user-knn + histogram",
			rec:  knn,
			stimulus: func(u model.UserID, it *model.Item, pred recsys.Prediction) usersim.Stimulus {
				if exp, err := histEx.Explain(u, it); err == nil {
					return usersim.StimulusFrom(exp, 0.9)
				}
				return usersim.Stimulus{Shown: pred.Score, Clarity: 0.9, Informativeness: 0.05, Hype: 0.2}
			},
		},
		{
			name: "naive-bayes + influence",
			rec:  bayes,
			stimulus: func(u model.UserID, it *model.Item, pred recsys.Prediction) usersim.Stimulus {
				if exp, err := inflEx.Explain(u, it); err == nil {
					s := usersim.StimulusFrom(exp, 0.9)
					s.Shown = pred.Score
					return s
				}
				return usersim.Stimulus{Shown: pred.Score, Clarity: 0.9, Informativeness: 0.05, Hype: 0.2}
			},
		},
	}

	tbl := tablewriter.New("System", "Held-out MAE", "Mean |pre-post| error", "Mean true utility of accepted").
		SetTitle("A5: prediction accuracy vs decision support from grounded explanations").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)

	maes := map[string]float64{}
	absGaps := map[string]float64{}
	for _, sys := range systems {
		// Accuracy.
		var errSum float64
		var n int
		for _, h := range held {
			pred, err := sys.rec.Predict(h.u, h.i)
			if err != nil {
				continue
			}
			errSum += math.Abs(pred.Score - h.v)
			n++
		}
		mae := errSum / float64(n)
		maes[sys.name] = mae

		// Effectiveness of the explained pipeline.
		var gapAbs, acceptedTruth []float64
		for _, u := range pop.Users {
			recs := sys.rec.Recommend(u.ID, 5, recsys.ExcludeRated(train, u.ID))
			if len(recs) == 0 {
				continue
			}
			it, err := c.Catalog.Item(recs[0].Item)
			if err != nil {
				continue
			}
			s := sys.stimulus(u.ID, it, recs[0])
			pre := u.PreRating(it, s)
			post := u.PostRating(it)
			gapAbs = append(gapAbs, math.Abs(pre-post))
			if u.Intent(it, s) >= 4.5 {
				acceptedTruth = append(acceptedTruth, u.TrueUtility(it))
			}
		}
		absGaps[sys.name] = stats.Mean(gapAbs)
		tbl.AddRow(sys.name, mae, stats.Mean(gapAbs), stats.Mean(acceptedTruth))
	}
	r.Report = tbl.String()

	r.metric("mae_mf", maes["matrix-factorisation"])
	r.metric("mae_knn", maes["user-knn + histogram"])
	r.metric("mae_bayes", maes["naive-bayes + influence"])
	r.metric("abs_gap_mf", absGaps["matrix-factorisation"])
	r.metric("abs_gap_bayes", absGaps["naive-bayes + influence"])

	r.check(maes["matrix-factorisation"] < maes["naive-bayes + influence"],
		"MF predicts more accurately than the explainable content model (%.3f < %.3f)",
		maes["matrix-factorisation"], maes["naive-bayes + influence"])
	r.check(absGaps["naive-bayes + influence"] < absGaps["matrix-factorisation"],
		"grounded influence explanations support decisions better than groundless accuracy (%.3f < %.3f)",
		absGaps["naive-bayes + influence"], absGaps["matrix-factorisation"])
	return r
}
