package experiments

import (
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys/cf"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/usersim"
)

// RunE11 tests the survey's Section 2.4 warning that "too much
// persuasion may backfire once users realize that they have tried or
// bought items that they do not really want": two otherwise identical
// systems serve users over repeated sessions, one with honest
// explanations (faithful, no hype), one with hyped ones. The hyped
// system wins the first sessions on acceptance — and then pays for it:
// every over-sold item that disappoints erodes trust, acceptance
// converges down, and fewer users keep coming back.
func RunE11(seed uint64) *Result {
	r := newResult("E11", "Persuasion backfire over repeated sessions (Section 2.4)")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 160, Items: 150, RatingsPerUser: 25})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 20})

	const sessions = 10

	type series struct {
		accept [sessions]float64 // acceptance rate per session
		n      [sessions]int
		trust  []float64 // final trust per user
		stayed []float64 // sessions attended per user
	}

	run := func(hyped bool, popSeed uint64) *series {
		pop := usersim.NewPopulation(c, 80, popSeed)
		out := &series{}
		for _, u := range pop.Users {
			consumed := map[model.ItemID]bool{}
			attended := 0
			for sess := 0; sess < sessions; sess++ {
				attended++
				recs := knn.Recommend(u.ID, 1, func(i model.ItemID) bool {
					if consumed[i] {
						return true
					}
					_, rated := c.Ratings.Get(u.ID, i)
					return rated
				})
				if len(recs) == 0 {
					break
				}
				it, err := c.Catalog.Item(recs[0].Item)
				if err != nil {
					break
				}
				consumed[it.ID] = true
				s := usersim.Stimulus{Shown: recs[0].Score, Clarity: 0.9, Support: 0.3, Informativeness: 0.3}
				claim := recs[0].Score
				if hyped {
					// The bold sell: inflated claim, heavy hype, and
					// nothing for the user's own judgement.
					claim = model.ClampRating(recs[0].Score + 1)
					s = usersim.Stimulus{Shown: claim, Clarity: 0.9, Support: 0.6, Hype: 0.8}
				}
				out.n[sess]++
				if u.Intent(it, s) >= 4.8 {
					out.accept[sess]++
					experienced := u.Consume(it)
					// Trust updates against the *claim* the display
					// made; honest displays also soften failures the
					// way explanations do (Section 2.3).
					u.UpdateTrust(claim, experienced, !hyped)
				}
				if !u.WillReturn() {
					break
				}
			}
			out.trust = append(out.trust, u.Trust)
			out.stayed = append(out.stayed, float64(attended))
		}
		return out
	}

	honest := run(false, seed+18)
	hyped := run(true, seed+18) // same population draw: paired design

	tbl := tablewriter.New("Session", "Honest acceptance", "Hyped acceptance").
		SetTitle("E11: acceptance per session under honest vs hyped explanations").
		SetAligns(tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	rate := func(s *series, i int) float64 {
		if s.n[i] == 0 {
			return 0
		}
		return s.accept[i] / float64(s.n[i])
	}
	for i := 0; i < sessions; i++ {
		if honest.n[i] == 0 && hyped.n[i] == 0 {
			break
		}
		tbl.AddRow(i+1, rate(honest, i), rate(hyped, i))
	}
	r.Report = tbl.String()

	earlyHonest := (rate(honest, 0) + rate(honest, 1)) / 2
	earlyHyped := (rate(hyped, 0) + rate(hyped, 1)) / 2
	r.metric("early_accept_honest", earlyHonest)
	r.metric("early_accept_hyped", earlyHyped)
	r.metric("final_trust_honest", stats.Mean(honest.trust))
	r.metric("final_trust_hyped", stats.Mean(hyped.trust))
	r.metric("sessions_honest", stats.Mean(honest.stayed))
	r.metric("sessions_hyped", stats.Mean(hyped.stayed))

	r.check(earlyHyped > earlyHonest,
		"hype wins the first sessions (%.2f > %.2f acceptance)", earlyHyped, earlyHonest)
	r.check(stats.Mean(hyped.trust) < stats.Mean(honest.trust),
		"hype ends with less trust (%.2f < %.2f)", stats.Mean(hyped.trust), stats.Mean(honest.trust))
	r.check(stats.Mean(hyped.stayed) < stats.Mean(honest.stayed),
		"hype loses loyalty (%.1f < %.1f sessions attended)",
		stats.Mean(hyped.stayed), stats.Mean(honest.stayed))
	return r
}
