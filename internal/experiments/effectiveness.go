package experiments

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/content"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/usersim"
)

// RunE2 re-runs the Bilgic & Mooney (2005) effectiveness protocol
// (survey Section 3.5): users rate a recommended book twice — once
// after seeing only the explanation, and again after "reading" the
// book. If the two ratings agree the explanation was effective; if the
// first is systematically higher the interface merely promotes. The
// paper's finding: the neighbour-histogram interface over-promotes,
// while the influence- and keyword-based interfaces track the user's
// eventual opinion.
func RunE2(seed uint64) *Result {
	r := newResult("E2", "Effectiveness: satisfaction vs promotion (Bilgic & Mooney)")
	c := dataset.Books(dataset.Config{Seed: seed, Users: 300, Items: 150, RatingsPerUser: 25})
	bayes := content.NewBayes(c.Ratings, c.Catalog)
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 20})
	pop := usersim.NewPopulation(c, 300, seed+3)

	hist := explain.NewHistogramExplainer(knn)
	infl := explain.NewInfluenceExplainer(bayes, c.Catalog)
	kw := explain.NewKeywordExplainer(bayes)

	// Each condition explains its own system's recommendation, as a
	// deployment would: the histogram justifies the collaborative
	// recommender's pick with social proof, while influence and keyword
	// justify the content recommender's pick with the user's own
	// history. Social proof over-promises exactly when community
	// consensus and personal fit diverge — the mechanism behind the
	// study's promotion finding.
	conditions := []struct {
		name string
		rec  recsys.Recommender
		gen  func(u model.UserID, it *model.Item) (*explain.Explanation, error)
	}{
		{"histogram", knn, func(u model.UserID, it *model.Item) (*explain.Explanation, error) { return hist.Explain(u, it) }},
		{"influence", bayes, func(u model.UserID, it *model.Item) (*explain.Explanation, error) { return infl.Explain(u, it) }},
		{"keyword", bayes, func(u model.UserID, it *model.Item) (*explain.Explanation, error) { return kw.Explain(u, it) }},
	}

	gaps := map[string][]float64{}
	absErr := map[string][]float64{}
	for ui, u := range pop.Users {
		cond := conditions[ui%len(conditions)]
		recs := cond.rec.Recommend(u.ID, 8, func(i model.ItemID) bool {
			_, rated := c.Ratings.Get(u.ID, i)
			return rated
		})
		for ri := 0; ri < len(recs); ri++ {
			it, err := c.Catalog.Item(recs[ri].Item)
			if err != nil {
				continue
			}
			exp, err := cond.gen(u.ID, it)
			if err != nil {
				continue
			}
			s := usersim.StimulusFrom(exp, 0.9)
			if s.Shown == 0 {
				s.Shown = recs[ri].Score // the interface displays the prediction
			}
			pre := u.PreRating(it, s)
			post := u.PostRating(it)
			gaps[cond.name] = append(gaps[cond.name], pre-post)
			absErr[cond.name] = append(absErr[cond.name], math.Abs(pre-post))
			break // one trial per user keeps subjects independent
		}
	}

	tbl := tablewriter.New("Interface", "N", "Mean gap (pre-post)", "Mean |gap|", "95% CI of gap").
		SetTitle("E2: pre- vs post-consumption rating gap per explanation interface").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	means := map[string]float64{}
	for _, cond := range conditions {
		xs := gaps[cond.name]
		means[cond.name] = stats.Mean(xs)
		tbl.AddRow(cond.name, len(xs), means[cond.name], stats.Mean(absErr[cond.name]),
			fmt.Sprintf("±%.3f", stats.ConfidenceInterval95(xs)))
	}
	r.Report = tbl.String()
	for name, m := range means {
		r.metric("gap_"+name, m)
	}
	r.metric("n_histogram", float64(len(gaps["histogram"])))

	r.check(len(gaps["histogram"]) >= 30 && len(gaps["influence"]) >= 30 && len(gaps["keyword"]) >= 30,
		"all conditions have enough trials (%d/%d/%d)",
		len(gaps["histogram"]), len(gaps["influence"]), len(gaps["keyword"]))
	r.check(means["histogram"] > 0.1,
		"histogram over-promotes: positive gap %.3f", means["histogram"])
	r.check(math.Abs(means["influence"]) < 0.2,
		"influence explanation is roughly unbiased (gap %.3f)", means["influence"])
	r.check(math.Abs(means["keyword"]) < 0.2,
		"keyword explanation is roughly unbiased (gap %.3f)", means["keyword"])
	r.check(means["histogram"] > means["influence"] && means["histogram"] > means["keyword"],
		"promotion exceeds both effective interfaces")
	return r
}

// RunA2 is the persuasiveness-vs-effectiveness ablation of Section
// 3.8: sweeping the hype channel of an explanation from 0 to 1 raises
// acceptance but also post-consumption regret ("an explanation that
// has great persuasive power might convince the user to buy books they
// later do not like").
func RunA2(seed uint64) *Result {
	r := newResult("A2", "Ablation: persuasion vs effectiveness")
	c := dataset.Books(dataset.Config{Seed: seed, Users: 200, Items: 120, RatingsPerUser: 20})
	bayes := content.NewBayes(c.Ratings, c.Catalog)
	pop := usersim.NewPopulation(c, 200, seed+4)

	hypes := []float64{0, 0.25, 0.5, 0.75, 1}
	tbl := tablewriter.New("Hype", "Acceptance rate", "Mean regret (pre-post)", "Regretted picks %").
		SetTitle("A2: persuasion strength vs post-consumption regret").
		SetAligns(tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	var acceptSeries, regretSeries []float64
	for _, hype := range hypes {
		var accepted, trials, regretted int
		var gapSum float64
		for _, u := range pop.Users {
			recs := bayes.Recommend(u.ID, 3, func(i model.ItemID) bool {
				_, rated := c.Ratings.Get(u.ID, i)
				return rated
			})
			if len(recs) == 0 {
				continue
			}
			it, err := c.Catalog.Item(recs[0].Item)
			if err != nil {
				continue
			}
			trials++
			s := usersim.Stimulus{Hype: hype, Clarity: 0.9, Shown: recs[0].Score, Support: 0.3}
			intent := u.Intent(it, s)
			if intent < 4.5 {
				continue
			}
			accepted++
			pre := u.PreRating(it, s)
			post := u.PostRating(it)
			gapSum += pre - post
			if pre-post > 1 {
				regretted++
			}
		}
		acceptRate := float64(accepted) / float64(trials)
		meanRegret := 0.0
		regretRate := 0.0
		if accepted > 0 {
			meanRegret = gapSum / float64(accepted)
			regretRate = float64(regretted) / float64(accepted)
		}
		acceptSeries = append(acceptSeries, acceptRate)
		regretSeries = append(regretSeries, meanRegret)
		tbl.AddRow(hype, acceptRate, meanRegret, fmt.Sprintf("%.1f%%", regretRate*100))
	}
	r.Report = tbl.String()
	r.metric("accept_at_0", acceptSeries[0])
	r.metric("accept_at_1", acceptSeries[len(acceptSeries)-1])
	r.metric("regret_at_0", regretSeries[0])
	r.metric("regret_at_1", regretSeries[len(regretSeries)-1])
	r.check(acceptSeries[len(acceptSeries)-1] > acceptSeries[0],
		"hype raises acceptance (%.2f -> %.2f)", acceptSeries[0], acceptSeries[len(acceptSeries)-1])
	r.check(regretSeries[len(regretSeries)-1] > regretSeries[0],
		"hype raises regret (%.2f -> %.2f)", regretSeries[0], regretSeries[len(regretSeries)-1])
	return r
}
