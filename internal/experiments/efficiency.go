package experiments

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys/knowledge"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/usersim"
)

// prefsFromTaste compiles a latent Taste into the MAUT preference
// model the knowledge-based recommender scores with — the bridge that
// lets simulated users "state" the requirements they actually have.
func prefsFromTaste(taste *dataset.Taste) *knowledge.Preferences {
	prefs := &knowledge.Preferences{
		NumericIdeal:      map[string]float64{},
		NumericWeight:     map[string]float64{},
		CategoricalPrefer: map[string]string{},
		CategoricalWeight: map[string]float64{},
	}
	for attr, ideal := range taste.NumericIdeal {
		prefs.NumericIdeal[attr] = ideal
		w := taste.NumericWeight[attr]
		if w == 0 {
			w = 1
		}
		prefs.NumericWeight[attr] = w
	}
	for attr, vals := range taste.CategoricalPref {
		best, bestV := "", math.Inf(-1)
		for v, score := range vals {
			// Deterministic tie-break on the value name.
			if score > bestV || (score == bestV && v < best) {
				best, bestV = v, score
			}
		}
		if best != "" && bestV > 0 {
			prefs.CategoricalPrefer[attr] = best
			prefs.CategoricalWeight[attr] = bestV
		}
	}
	return prefs
}

// RunE3 re-runs the Adaptive Place Advisor efficiency study (survey
// Section 3.6): a personalised conversational recommender needs
// significantly fewer interactions (and less time) to reach a
// satisfactory restaurant than an unpersonalised one, because the user
// model answers questions the system would otherwise have to ask.
func RunE3(seed uint64) *Result {
	r := newResult("E3", "Conversational efficiency (Adaptive Place Advisor)")
	c := dataset.Restaurants(dataset.Config{Seed: seed, Users: 150, Items: 200, RatingsPerUser: 10})
	rec := knowledge.New(c.Catalog)
	pop := usersim.NewPopulation(c, 150, seed+5)

	const (
		questionSeconds = 9.0
		proposalSeconds = 6.0
	)

	runSession := func(u *usersim.User, personalized bool) (interactions int, seconds float64, found bool) {
		taste := c.Truth.Taste(u.ID)
		prefs := prefsFromTaste(taste)
		d := interact.NewDialog(rec)
		d.ProposeAt = 6
		if personalized {
			d.Prefill(prefs)
		}
		for {
			def, ok := d.NextQuestion()
			if !ok {
				break
			}
			switch def.Name {
			case dataset.RestCuisine:
				if cuisine, ok := prefs.CategoricalPrefer[dataset.RestCuisine]; ok {
					d.AnswerCategorical(dataset.RestCuisine, cuisine)
				} else {
					d.DontCare(def.Name)
				}
			case dataset.RestPrice:
				d.AnswerNumericMax(dataset.RestPrice, prefs.NumericIdeal[dataset.RestPrice]*1.6)
			case dataset.RestDistance:
				d.AnswerNumericMax(dataset.RestDistance, prefs.NumericIdeal[dataset.RestDistance]*2)
			default:
				d.DontCare(def.Name)
			}
		}
		for i := 0; i < u.Patience; i++ {
			scored, err := d.Propose(prefs)
			if err != nil {
				break
			}
			if u.Satisfied(scored.Item) {
				found = true
				break
			}
			d.Reject(scored.Item.ID)
		}
		interactions = d.Interactions()
		seconds = float64(d.Questions())*questionSeconds +
			float64(interactions-d.Questions())*proposalSeconds
		return interactions, seconds, found
	}

	var coldI, warmI, coldT, warmT []float64
	var coldFound, warmFound int
	for _, u := range pop.Users {
		i1, t1, f1 := runSession(u, false)
		coldI = append(coldI, float64(i1))
		coldT = append(coldT, t1)
		if f1 {
			coldFound++
		}
		i2, t2, f2 := runSession(u, true)
		warmI = append(warmI, float64(i2))
		warmT = append(warmT, t2)
		if f2 {
			warmFound++
		}
	}

	tbl := tablewriter.New("Condition", "Mean interactions", "Mean seconds", "Found %").
		SetTitle("E3: conversation cost with and without a personalised user model").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	tbl.AddRow("unpersonalised", stats.Mean(coldI), stats.Mean(coldT),
		fmt.Sprintf("%.0f%%", 100*float64(coldFound)/float64(len(pop.Users))))
	tbl.AddRow("personalised", stats.Mean(warmI), stats.Mean(warmT),
		fmt.Sprintf("%.0f%%", 100*float64(warmFound)/float64(len(pop.Users))))
	r.Report = tbl.String()

	r.metric("cold_interactions", stats.Mean(coldI))
	r.metric("warm_interactions", stats.Mean(warmI))
	r.metric("cold_seconds", stats.Mean(coldT))
	r.metric("warm_seconds", stats.Mean(warmT))

	test, err := stats.PairedTTest(coldI, warmI)
	if err != nil {
		r.check(false, "t-test failed: %v", err)
		return r
	}
	r.metric("interactions_p", test.P)
	r.check(stats.Mean(warmI) < stats.Mean(coldI),
		"personalisation reduces interactions (%.2f < %.2f)", stats.Mean(warmI), stats.Mean(coldI))
	r.check(stats.Mean(warmT) < stats.Mean(coldT),
		"personalisation reduces time (%.1fs < %.1fs)", stats.Mean(warmT), stats.Mean(coldT))
	r.check(test.Significant(0.01), "reduction is significant (p=%.4g)", test.P)
	r.check(warmFound >= coldFound-5, "personalisation does not hurt task success")
	return r
}

// RunE4 re-runs Pu & Chen's completion-time comparison (survey Section
// 3.6): the structured overview tends to be faster than a plain ranked
// list, but — as in the original study — the difference is not
// statistically significant.
func RunE4(seed uint64) *Result {
	r := newResult("E4", "Completion time with structured overview (Pu & Chen)")
	c := dataset.Cameras(dataset.Config{Seed: seed, Users: 120, Items: 150, RatingsPerUser: 5})
	rec := knowledge.New(c.Catalog)
	pop := usersim.NewPopulation(c, 120, seed+6)

	var listT, overviewT []float64
	for _, u := range pop.Users {
		prefs := prefsFromTaste(c.Truth.Taste(u.ID))
		scored, err := rec.Recommend(prefs, nil, 24)
		if err != nil || len(scored) < 5 {
			continue
		}
		goodEnough := scored[0].Utility * 0.97
		inspect := func() float64 { return math.Max(2, u.R.Norm(7, 3)) }

		// Plain list: the shop's default ordering (catalogue order, not
		// utility order) — the user inspects items one by one until one
		// is good enough for them.
		shuffled := append([]knowledge.ScoredItem(nil), scored...)
		u.R.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		var t float64
		for _, s := range shuffled {
			t += inspect()
			if s.Utility >= goodEnough {
				break
			}
		}
		listT = append(listT, t)

		// Structured overview: read the best match, skim the category
		// titles, and validate the choice by inspecting a sample item
		// in each of the top categories (the study's participants spent
		// time understanding the organisation before committing).
		ov, err := present.BuildOverview(rec.Catalog(), scored, 6)
		if err != nil {
			continue
		}
		t2 := inspect() // the best match
		for ci, cat := range ov.Categories {
			if ci >= 6 {
				break // bounded attention: nobody reads twenty titles
			}
			t2 += math.Max(1, u.R.Norm(3, 1)) // title skim
			if ci < 3 && len(cat.Items) > 0 {
				t2 += inspect() // validate with one member
			}
		}
		overviewT = append(overviewT, t2)
	}

	tbl := tablewriter.New("Interface", "N", "Mean completion (s)", "SD").
		SetTitle("E4: completion time, ranked list vs structured overview").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	tbl.AddRow("ranked list", len(listT), stats.Mean(listT), stats.StdDev(listT))
	tbl.AddRow("structured overview", len(overviewT), stats.Mean(overviewT), stats.StdDev(overviewT))
	r.Report = tbl.String()

	r.metric("list_seconds", stats.Mean(listT))
	r.metric("overview_seconds", stats.Mean(overviewT))
	test, err := stats.WelchTTest(listT, overviewT)
	if err != nil {
		r.check(false, "t-test failed: %v", err)
		return r
	}
	r.metric("p_value", test.P)
	d := stats.CohenD(listT, overviewT)
	r.metric("cohen_d", d)
	r.check(stats.Mean(overviewT) < stats.Mean(listT)+5,
		"overview is not slower than the list (%.1fs vs %.1fs)",
		stats.Mean(overviewT), stats.Mean(listT))
	r.check(math.Abs(d) < 0.6,
		"effect is small, matching the study's non-significant result (d=%.2f)", d)
	return r
}

// RunE8 re-runs the dynamic-critiquing efficiency study (McCarthy et
// al. 2004, Reilly et al. 2004; survey Sections 2.6 and 5.2): letting
// shoppers apply compound critiques ("Less Memory and Lower Resolution
// and Cheaper") shortens sessions compared with unit critiques alone.
func RunE8(seed uint64) *Result {
	r := newResult("E8", "Dynamic critiquing efficiency (McCarthy et al.)")
	c := dataset.Cameras(dataset.Config{Seed: seed, Users: 200, Items: 200, RatingsPerUser: 5})
	rec := knowledge.New(c.Catalog)
	pop := usersim.NewPopulation(c, 200, seed+7)

	const maxSteps = 40

	// The evaluation follows Reilly et al.'s methodology: the simulated
	// shopper has a known target item (their utility-optimal camera) and
	// critiques toward it until the display reaches it. Because every
	// critique is chosen in the target's direction, the target survives
	// every filter — the two conditions differ only in how many clicks
	// the journey takes.
	const gapEps = 0.02 // attribute gaps below 2% of the range read as "same"

	// directionsToward maps numeric attributes to the critique direction
	// that moves current toward target, skipping negligible gaps.
	directionsToward := func(current, target *model.Item) map[string]knowledge.Direction {
		out := map[string]knowledge.Direction{}
		for _, def := range c.Catalog.Attrs {
			if def.Kind != model.Numeric {
				continue
			}
			v, okV := current.Numeric[def.Name]
			w, okW := target.Numeric[def.Name]
			if !okV || !okW {
				continue
			}
			lo, hi, ok := c.Catalog.NumericRange(def.Name)
			if !ok || hi <= lo || math.Abs(v-w)/(hi-lo) <= gapEps {
				continue
			}
			wantDecrease := v > w
			if wantDecrease == def.LessIsBetter {
				out[def.Name] = knowledge.Better
			} else {
				out[def.Name] = knowledge.Worse
			}
		}
		return out
	}

	// targetFor is the shopper's utility-optimal camera.
	targetFor := func(u *usersim.User) *model.Item {
		best := c.Catalog.Items()[0]
		bestU := -1.0
		for _, it := range c.Catalog.Items() {
			if v := u.TrueUtility(it); v > bestU {
				best, bestU = it, v
			}
		}
		return best
	}

	// The shop's opening display knows nothing about the shopper: a
	// mid-range merchandising default. Critiquing is how the user gets
	// from there to their own ideal.
	systemPrefs := &knowledge.Preferences{NumericIdeal: map[string]float64{}}
	for _, attr := range []string{dataset.CamPrice, dataset.CamResolution, dataset.CamZoom, dataset.CamMemory, dataset.CamWeight} {
		lo, hi, ok := c.Catalog.NumericRange(attr)
		if ok {
			systemPrefs.NumericIdeal[attr] = (lo + hi) / 2
		}
	}

	runSession := func(u *usersim.User, compound bool) (steps int, reached bool) {
		target := targetFor(u)
		s, err := interact.NewCritiqueSession(rec, systemPrefs, nil)
		if err != nil {
			return 0, false
		}
		// FindMe-style display: after a critique, show the item most
		// similar to the previous one that satisfies it — unit critiques
		// inch along, compound critiques leap.
		s.SelectNearest = true
		for s.Steps() < maxSteps {
			want := directionsToward(s.Current(), target)
			if s.Current().ID == target.ID || len(want) == 0 {
				return s.Steps(), true
			}
			applied := false
			if compound {
				// Take the first mined compound whose every part moves an
				// attribute toward the target.
				for _, cc := range s.Compounds(0.05, 3, 12) {
					ok := len(cc.Parts) >= 2
					for _, part := range cc.Parts {
						if d, cares := want[part.Attr]; !cares || d != part.Dir {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					if err := s.ApplyCompound(cc); err == nil {
						applied = true
						break
					}
				}
			}
			if !applied {
				// Unit fallback: critique the attribute with the largest
				// normalised gap to the target.
				bestAttr, bestGap := "", 0.0
				for attr := range want {
					lo, hi, _ := c.Catalog.NumericRange(attr)
					gap := math.Abs(s.Current().Numeric[attr]-target.Numeric[attr]) / (hi - lo)
					if gap > bestGap {
						bestAttr, bestGap = attr, gap
					}
				}
				if bestAttr == "" {
					break
				}
				if err := s.ApplyUnit(interact.Critique{Attr: bestAttr, Dir: want[bestAttr]}); err != nil {
					break
				}
				applied = true
			}
		}
		want := directionsToward(s.Current(), target)
		return s.Steps(), s.Current().ID == target.ID || len(want) == 0
	}

	// Session length is censored at maxSteps: a session that never
	// reaches the target counts as the full budget, as in session-
	// length analyses of the critiquing literature.
	var unitSteps, compSteps []float64
	var unitReached, compReached int
	for _, u := range pop.Users {
		s1, ok1 := runSession(u, false)
		if !ok1 {
			s1 = maxSteps
		} else {
			unitReached++
		}
		unitSteps = append(unitSteps, float64(s1))
		s2, ok2 := runSession(u, true)
		if !ok2 {
			s2 = maxSteps
		} else {
			compReached++
		}
		compSteps = append(compSteps, float64(s2))
	}

	tbl := tablewriter.New("Condition", "Mean session length", "Reached target %").
		SetTitle("E8: critiquing session length, unit-only vs dynamic compound critiques").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight)
	tbl.AddRow("unit critiques", stats.Mean(unitSteps),
		fmt.Sprintf("%.0f%%", 100*float64(unitReached)/float64(len(pop.Users))))
	tbl.AddRow("compound critiques", stats.Mean(compSteps),
		fmt.Sprintf("%.0f%%", 100*float64(compReached)/float64(len(pop.Users))))
	r.Report = tbl.String()

	r.metric("unit_steps", stats.Mean(unitSteps))
	r.metric("compound_steps", stats.Mean(compSteps))
	r.metric("unit_reached", float64(unitReached))
	r.metric("compound_reached", float64(compReached))
	test, err := stats.PairedTTest(unitSteps, compSteps)
	if err == nil {
		r.metric("p_value", test.P)
	}
	r.check(stats.Mean(compSteps) < stats.Mean(unitSteps),
		"compound critiques shorten sessions (%.2f < %.2f)",
		stats.Mean(compSteps), stats.Mean(unitSteps))
	r.check(compReached >= unitReached,
		"compound critiques do not hurt success (%d vs %d)", compReached, unitReached)
	return r
}

// RunA1 is the transparency-vs-efficiency ablation of Section 3.8:
// more detailed explanations improve decision quality but cost reading
// time ("an explanation that offers great transparency may impede
// efficiency").
func RunA1(seed uint64) *Result {
	r := newResult("A1", "Ablation: explanation detail vs efficiency")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 200, Items: 120, RatingsPerUser: 20})
	pop := usersim.NewPopulation(c, 200, seed+8)

	levels := []struct {
		name            string
		informativeness float64
		textLen         int
	}{
		{"none", 0, 0},
		{"one-liner", 0.35, 90},
		{"detailed", 0.65, 420},
	}
	tbl := tablewriter.New("Detail level", "Correct choices %", "Mean decision time (s)").
		SetTitle("A1: explanation detail vs decision quality and time").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight)
	var correctSeries, timeSeries []float64
	items := c.Catalog.Items()
	for _, lvl := range levels {
		var correct, trials int
		var timeSum float64
		for ui, u := range pop.Users {
			// The user must pick the better of two candidate movies.
			a := items[(ui*3)%len(items)]
			b := items[(ui*3+57)%len(items)]
			if a.ID == b.ID || math.Abs(u.TrueUtility(a)-u.TrueUtility(b)) < 0.4 {
				continue
			}
			s := usersim.Stimulus{Informativeness: lvl.informativeness, Clarity: 0.9, TextLen: lvl.textLen}
			ia := u.Intent(a, s)
			ib := u.Intent(b, s)
			picked, other := a, b
			if ib > ia {
				picked, other = b, a
			}
			trials++
			if u.TrueUtility(picked) > u.TrueUtility(other) {
				correct++
			}
			timeSum += 4 + 2*u.ReadTime(lvl.textLen) // read both displays
		}
		rate := float64(correct) / float64(trials)
		meanT := timeSum / float64(trials)
		correctSeries = append(correctSeries, rate)
		timeSeries = append(timeSeries, meanT)
		tbl.AddRow(lvl.name, fmt.Sprintf("%.1f%%", rate*100), meanT)
	}
	r.Report = tbl.String()
	r.metric("correct_none", correctSeries[0])
	r.metric("correct_detailed", correctSeries[2])
	r.metric("time_none", timeSeries[0])
	r.metric("time_detailed", timeSeries[2])
	r.check(correctSeries[2] > correctSeries[0],
		"detail improves decisions (%.2f -> %.2f)", correctSeries[0], correctSeries[2])
	r.check(timeSeries[2] > timeSeries[0],
		"detail costs time (%.1fs -> %.1fs)", timeSeries[0], timeSeries[2])
	return r
}
