// Package experiments contains one runner per reproduced artefact of
// the paper: the four survey tables (T1-T4), the three figures
// (F1-F3), the eleven criterion studies (E1-E11) and the
// six trade-off ablations (A1-A6). Each runner is
// deterministic in its seed and returns a Result with a rendered
// report, headline metrics, and a ShapeOK verdict stating whether the
// qualitative finding the paper reports was reproduced.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the outcome of one experiment run.
type Result struct {
	ID    string
	Title string
	// Report is the full rendered output (tables, transcripts,
	// figures).
	Report string
	// Metrics holds the headline numbers, keyed by stable names used in
	// EXPERIMENTS.md.
	Metrics map[string]float64
	// ShapeOK reports whether the paper's qualitative finding held in
	// this run; Notes explain what was checked.
	ShapeOK bool
	Notes   []string
}

// metric records a metric value, allocating the map on first use.
func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// check records one shape assertion; all must hold for ShapeOK.
func (r *Result) check(ok bool, format string, args ...any) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		r.ShapeOK = false
	}
	r.Notes = append(r.Notes, fmt.Sprintf("[%s] %s", status, fmt.Sprintf(format, args...)))
}

// newResult starts a Result with ShapeOK true until a check fails.
func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, ShapeOK: true}
}

// MetricNames returns the sorted metric keys, for stable reporting.
func (r *Result) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Summary renders the result header, metrics and shape notes (without
// the full report body).
func (r *Result) Summary() string {
	var b strings.Builder
	verdict := "shape reproduced"
	if !r.ShapeOK {
		verdict = "SHAPE NOT REPRODUCED"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, verdict)
	for _, name := range r.MetricNames() {
		fmt.Fprintf(&b, "   %-32s %10.4f\n", name, r.Metrics[name])
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   %s\n", n)
	}
	return b.String()
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(seed uint64) *Result
}

// All returns every experiment in presentation order: tables, figures,
// criterion studies, ablations.
func All() []Runner {
	return []Runner{
		{"T1", "Table 1: aims taxonomy", RunT1},
		{"T2", "Table 2: aims of academic systems", RunT2},
		{"T3", "Table 3: commercial systems", RunT3},
		{"T4", "Table 4: academic systems", RunT4},
		{"F1", "Figure 1: scrutable adaptive hypertext (SASY)", RunF1},
		{"F2", "Figure 2: treemap news visualization", RunF2},
		{"F3", "Figure 3: influence of ratings (LIBRA)", RunF3},
		{"E1", "Persuasion across 21 explanation interfaces (Herlocker)", RunE1},
		{"E2", "Effectiveness: satisfaction vs promotion (Bilgic & Mooney)", RunE2},
		{"E3", "Conversational efficiency (Adaptive Place Advisor)", RunE3},
		{"E4", "Completion time with structured overview (Pu & Chen)", RunE4},
		{"E5", "Trust and loyalty (McNee et al.)", RunE5},
		{"E6", "Transparency task", RunE6},
		{"E7", "Scrutability task (Czarkowski)", RunE7},
		{"E8", "Dynamic critiquing efficiency (McCarthy et al.)", RunE8},
		{"E9", "Persuasive rating shift (Cosley et al.)", RunE9},
		{"E10", "Satisfaction walk-through (Section 3.7)", RunE10},
		{"E11", "Persuasion backfire over repeated sessions (Section 2.4)", RunE11},
		{"A1", "Ablation: explanation detail vs efficiency", RunA1},
		{"A2", "Ablation: persuasion vs effectiveness", RunA2},
		{"A3", "Ablation: recommender personality", RunA3},
		{"A4", "Ablation: CF neighbourhood size", RunA4},
		{"A5", "Ablation: accuracy vs explanation grounding", RunA5},
		{"A6", "Ablation: topic diversification vs accuracy", RunA6},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
