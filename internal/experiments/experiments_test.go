package experiments

import (
	"strings"
	"testing"
)

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registry has %d experiments, want 24 (4 tables, 3 figures, 11 studies, 6 ablations)", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate runner %s", r.ID)
		}
		seen[r.ID] = true
	}
	for _, id := range []string{"T1", "T4", "F1", "F3", "E1", "E9", "A1", "A4"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("ByID(%s) missing", id)
		}
	}
	if _, ok := ByID("Z9"); ok {
		t.Fatal("ByID should reject unknown ids")
	}
}

func TestResultHelpers(t *testing.T) {
	r := newResult("X", "test")
	if !r.ShapeOK {
		t.Fatal("fresh result should be OK until a check fails")
	}
	r.metric("b", 2)
	r.metric("a", 1)
	names := r.MetricNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("MetricNames = %v", names)
	}
	r.check(true, "fine")
	if !r.ShapeOK {
		t.Fatal("passing check must not flip ShapeOK")
	}
	r.check(false, "boom %d", 7)
	if r.ShapeOK {
		t.Fatal("failing check must flip ShapeOK")
	}
	sum := r.Summary()
	if !strings.Contains(sum, "SHAPE NOT REPRODUCED") ||
		!strings.Contains(sum, "[FAIL] boom 7") ||
		!strings.Contains(sum, "[PASS] fine") {
		t.Fatalf("summary:\n%s", sum)
	}
}

// TestTablesAndFiguresReproduce runs the fast artefact experiments and
// requires the paper shapes to hold.
func TestTablesAndFiguresReproduce(t *testing.T) {
	for _, id := range []string{"T1", "T2", "T3", "T4", "F1", "F2", "F3"} {
		r, _ := ByID(id)
		res := r.Run(42)
		if !res.ShapeOK {
			t.Errorf("%s failed:\n%s", id, res.Summary())
		}
		if res.Report == "" {
			t.Errorf("%s produced no report", id)
		}
	}
}

// TestCriterionStudiesReproduce runs the nine Section 3 studies at the
// reference seed. These are the headline reproduction results.
func TestCriterionStudiesReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation studies skipped in -short mode")
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, _ := ByID(id)
			res := r.Run(42)
			if !res.ShapeOK {
				t.Errorf("%s failed:\n%s", id, res.Summary())
			}
		})
	}
}

// TestAblationsReproduce runs the four design-trade-off ablations.
func TestAblationsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation studies skipped in -short mode")
	}
	for _, id := range []string{"A1", "A2", "A3", "A4", "A5", "A6"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, _ := ByID(id)
			res := r.Run(42)
			if !res.ShapeOK {
				t.Errorf("%s failed:\n%s", id, res.Summary())
			}
		})
	}
}

// TestSeedRobustness re-runs every experiment on alternative seeds:
// the reproduced shapes are properties of the design, not of one lucky
// draw.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for _, seed := range []uint64{7, 99} {
		seed := seed
		for _, r := range All() {
			r := r
			t.Run(r.ID, func(t *testing.T) {
				t.Parallel()
				res := r.Run(seed)
				if !res.ShapeOK {
					t.Errorf("seed %d: %s failed:\n%s", seed, res.ID, res.Summary())
				}
			})
		}
	}
}

// TestDeterminism: the same seed must yield byte-identical reports for
// the simulation experiments.
func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	for _, id := range []string{"E1", "E3", "A4"} {
		r, _ := ByID(id)
		a := r.Run(9)
		b := r.Run(9)
		if a.Report != b.Report {
			t.Errorf("%s not deterministic", id)
		}
		for k, v := range a.Metrics {
			if b.Metrics[k] != v {
				t.Errorf("%s metric %s differs: %v vs %v", id, k, v, b.Metrics[k])
			}
		}
	}
}
