package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys/content"
	"repro/internal/recsys/knowledge"
	"repro/internal/rng"
)

// RunF1 reproduces Figure 1: the scrutable adaptive hypertext (SASY)
// holiday recommender. The walkthrough shows the personalised page,
// the profile behind it (volunteered + inferred attributes with
// evidence), and a scrutinise-and-correct step whose effect on the
// recommendation is verified against the live system.
func RunF1(seed uint64) *Result {
	r := newResult("F1", "Figure 1: scrutable adaptive hypertext (SASY)")
	c := dataset.Holidays(dataset.Config{Seed: seed, Users: 20, Items: 120, RatingsPerUser: 8})
	rec := knowledge.New(c.Catalog)

	profile := interact.NewScrutableProfile()
	profile.Set(interact.ProfileEntry{Key: dataset.HolClimate, Value: "tropical", Source: interact.Volunteered})
	profile.Set(interact.ProfileEntry{Key: dataset.HolSetting, Value: "beach", Source: interact.Volunteered})
	profile.Set(interact.ProfileEntry{
		Key: dataset.HolKids, Value: "no", Source: interact.Inferred,
		Evidence: "you have never searched for family rooms",
	})

	var b strings.Builder
	b.WriteString("SASY-style scrutable holiday recommender\n")
	b.WriteString("----------------------------------------\n\n")
	before, err := rec.Recommend(profile.ToPreferences(c.Catalog), nil, 1)
	if err != nil || len(before) == 0 {
		r.check(false, "initial recommendation failed: %v", err)
		return r
	}
	ue := explain.NewUtilityExplainer(c.Catalog)
	exp, err := ue.ExplainScored(before[0])
	if err != nil {
		r.check(false, "explanation failed: %v", err)
		return r
	}
	fmt.Fprintf(&b, "Recommended: %s\n  Why? %s\n\n", before[0].Item.Title, exp.Text)
	b.WriteString(profile.Render())
	b.WriteString("\n-- The user scrutinises: \"I AM travelling with children!\" --\n\n")
	if err := profile.Correct(dataset.HolKids, "yes"); err != nil {
		r.check(false, "correction failed: %v", err)
		return r
	}
	after, err := rec.Recommend(profile.ToPreferences(c.Catalog), nil, 1)
	if err != nil || len(after) == 0 {
		r.check(false, "post-correction recommendation failed: %v", err)
		return r
	}
	exp2, err := ue.ExplainScored(after[0])
	if err != nil {
		r.check(false, "post-correction explanation failed: %v", err)
		return r
	}
	fmt.Fprintf(&b, "Recommended: %s\n  Why? %s\n\n", after[0].Item.Title, exp2.Text)
	b.WriteString(profile.Render())
	r.Report = b.String()

	r.metric("profile_entries", float64(len(profile.Entries())))
	r.metric("changes_logged", float64(len(profile.Log())))
	r.check(before[0].Item.Categorical[dataset.HolKids] == "no",
		"pre-correction top holiday matched the wrong inference")
	r.check(after[0].Item.Categorical[dataset.HolKids] == "yes",
		"post-correction top holiday is kid-friendly")
	entry, _ := profile.Get(dataset.HolKids)
	r.check(entry.Source == interact.Volunteered,
		"corrected entry is now marked volunteered")
	return r
}

// RunF2 reproduces Figure 2: the treemap news visualization. Colour
// (letter) encodes topic, tile size encodes importance to the current
// user (predicted score weighted by popularity), shade encodes
// recency.
func RunF2(seed uint64) *Result {
	r := newResult("F2", "Figure 2: treemap news visualization")
	c := dataset.News(dataset.Config{Seed: seed, Users: 30, Items: 150, RatingsPerUser: 25})
	u := model.UserID(1)
	c.Truth.InstallTaste(u, dataset.FootballFanTaste())
	// Re-sample the user's observed history so it reflects the
	// installed taste: rate a spread of 50 items.
	r2 := rng.New(seed + 1)
	var history []model.ItemID
	for i, it := range c.Catalog.Items() {
		if i%3 == 0 {
			history = append(history, it.ID)
		}
	}
	c.Rerate(u, history, r2)
	kw := content.NewKeywordRecommender(c.Ratings, c.Catalog)

	var items []present.TreemapItem
	classes := map[string]bool{}
	for _, it := range c.Catalog.Items()[:60] {
		pred, err := kw.Predict(u, it.ID)
		importance := 1 + it.Popularity
		if err == nil {
			importance = (pred.Score - 1) * (0.5 + it.Popularity)
		}
		if importance <= 0 {
			continue
		}
		topic := it.Keywords[0]
		classes[topic] = true
		items = append(items, present.TreemapItem{
			Label:  it.Title,
			Weight: importance,
			Class:  topic,
			Shade:  it.Recency,
		})
	}
	nodes, err := present.Squarify(items, present.Rect{W: 72, H: 20})
	if err != nil {
		r.check(false, "treemap layout failed: %v", err)
		return r
	}
	r.Report = present.RenderTreemap(nodes, 72, 20)
	r.metric("tiles", float64(len(nodes)))
	r.metric("topics", float64(len(classes)))
	r.check(len(nodes) == len(items), "all tiles laid out")
	r.check(len(classes) >= 3, "multiple topic colours present (got %d)", len(classes))
	gridOnly := strings.Split(r.Report, "legend:")[0]
	r.check(!strings.Contains(gridOnly, " "), "treemap tiles the full plane")
	// Sanity: the user's favourite topic occupies the largest area.
	area := map[string]float64{}
	for _, n := range nodes {
		area[n.Item.Class] += n.Rect.Area()
	}
	bestTopic, bestArea := "", 0.0
	for topic, a := range area {
		if a > bestArea {
			bestTopic, bestArea = topic, a
		}
	}
	r.check(bestTopic == "sport" || bestTopic == "technology",
		"largest area goes to a liked topic (got %s)", bestTopic)
	return r
}

// RunF3 reproduces Figure 3: the LIBRA-style influence-of-ratings
// explanation for a recommended book.
func RunF3(seed uint64) *Result {
	r := newResult("F3", "Figure 3: influence of ratings (LIBRA)")
	c := dataset.Books(dataset.Config{Seed: seed, Users: 40, Items: 80, RatingsPerUser: 15})
	b := content.NewBayes(c.Ratings, c.Catalog)
	ie := explain.NewInfluenceExplainer(b, c.Catalog)
	// The figure needs a representative case: scan the first users for
	// a recommendation whose strongest influence is supportive (a
	// recommendation carried by a liked rating, as in the original
	// LIBRA screenshot).
	var exp *explain.Explanation
	for uid := model.UserID(1); uid <= 10 && exp == nil; uid++ {
		recs := b.Recommend(uid, 1, func(i model.ItemID) bool {
			_, rated := c.Ratings.Get(uid, i)
			return rated
		})
		if len(recs) == 0 {
			continue
		}
		target, err := c.Catalog.Item(recs[0].Item)
		if err != nil {
			continue
		}
		e, err := ie.Explain(uid, target)
		if err != nil || len(e.Evidence.Influences) == 0 {
			continue
		}
		if e.Evidence.Influences[0].Weight > 0 {
			exp = e
		}
	}
	if exp == nil {
		r.check(false, "no representative influence explanation found")
		return r
	}
	r.Report = exp.Text + "\n\n" + exp.Detail
	infl := exp.Evidence.Influences
	var pctSum float64
	for _, in := range infl {
		pctSum += in.Percent
	}
	r.metric("influences", float64(len(infl)))
	r.metric("top_influence_pct", infl[0].Percent)
	r.metric("pct_sum", pctSum)
	r.check(len(infl) > 0, "influence rows produced")
	r.check(pctSum > 99.9 && pctSum < 100.1, "influence percentages sum to 100 (got %.2f)", pctSum)
	r.check(infl[0].Weight > 0, "top influence supports the recommendation")
	r.check(strings.Contains(exp.Detail, "Influence"), "rendered table has the influence column")
	return r
}
