package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestGoldenArtefacts pins the byte-exact output of the deterministic
// paper artefacts at the reference seed. Any unintended change to a
// table layout, figure rendering or catalogue row shows up as a diff
// here. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenArtefacts -update
func TestGoldenArtefacts(t *testing.T) {
	for _, id := range []string{"T1", "T2", "T3", "T4", "F1", "F2", "F3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			got := r.Run(42).Report
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden file.\n--- got\n%s\n--- want\n%s",
					id, got, string(want))
			}
		})
	}
}
