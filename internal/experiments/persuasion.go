package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/usersim"
)

// RunE1 re-runs the Herlocker, Konstan & Riedl (2000) persuasion study
// (survey Section 3.4): 21 explanation interfaces, each shown to the
// same simulated users for the same movies, measuring the mean
// likelihood-to-watch on a 1-7 scale. The paper reports that the best
// response was a histogram of similar users' ratings with good and bad
// ratings clustered, and that some interfaces fell below the
// no-explanation base case.
func RunE1(seed uint64) *Result {
	r := newResult("E1", "Persuasion across 21 explanation interfaces (Herlocker)")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 200, Items: 150, RatingsPerUser: 30})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 20})
	pop := usersim.NewPopulation(c, 200, seed+1)
	ifaces := explain.Herlocker21()

	// Per-user historical accuracy for the past-performance interface:
	// the fraction of the user's own ratings the CF model predicts
	// within one star.
	accuracy := func(u model.UserID) float64 {
		var hits, n int
		ratings := c.Ratings.UserRatings(u)
		ids := make([]model.ItemID, 0, len(ratings))
		for id := range ratings {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, item := range ids {
			actual := ratings[item]
			pred, err := knn.Predict(u, item)
			if err != nil {
				continue
			}
			n++
			if math.Abs(pred.Score-actual) <= 1 {
				hits++
			}
		}
		if n == 0 {
			return 0.5
		}
		return float64(hits) / float64(n)
	}

	// Each user evaluates their top recommended movies under every
	// interface (within-subject, like the original study, which showed
	// participants recommendations with different justifications).
	intents := make(map[int][]float64, len(ifaces))
	evaluated := 0
	for _, u := range pop.Users {
		acc := accuracy(u.ID)
		var evs []explain.PersuasionEvidence
		for _, pred := range knn.Recommend(u.ID, 8, recsys.ExcludeRated(c.Ratings, u.ID)) {
			if len(evs) >= 4 {
				break
			}
			it, err := c.Catalog.Item(pred.Item)
			if err != nil {
				continue
			}
			nbs := knn.Neighbors(u.ID, it.ID)
			if len(nbs) < 5 {
				continue
			}
			avg, _ := c.Ratings.ItemMean(it.ID)
			evs = append(evs, explain.PersuasionEvidence{
				Item: it, Neighbors: nbs, Prediction: pred,
				ItemAvg: avg, PastAccuracy: acc,
			})
		}
		for _, ev := range evs {
			evaluated++
			for _, pi := range ifaces {
				// Ungrounded displays persuade through their fixed
				// claim, which Support already encodes; no extra hype
				// channel on top.
				s := usersim.Stimulus{
					Support: pi.Support(ev),
					Clarity: pi.Clarity,
					TextLen: len(pi.Render(ev)),
				}
				intents[pi.ID] = append(intents[pi.ID], u.Intent(ev.Item, s))
			}
		}
	}

	type row struct {
		pi   explain.PersuasionInterface
		mean float64
		ci   float64
	}
	rows := make([]row, 0, len(ifaces))
	for _, pi := range ifaces {
		xs := intents[pi.ID]
		rows = append(rows, row{pi: pi, mean: stats.Mean(xs), ci: stats.ConfidenceInterval95(xs)})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].mean > rows[b].mean })

	tbl := tablewriter.New("Rank", "Interface", "Mean intent (1-7)", "95% CI").
		SetTitle(fmt.Sprintf("E1: mean likelihood-to-watch per interface (%d user-item trials each)", evaluated)).
		SetAligns(tablewriter.AlignRight, tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight)
	var baseMean float64
	belowBase := 0
	for i, rw := range rows {
		tbl.AddRow(i+1, rw.pi.Name, rw.mean, fmt.Sprintf("±%.2f", rw.ci))
		if rw.pi.ID == explain.BaseInterfaceID {
			baseMean = rw.mean
		}
	}
	for _, rw := range rows {
		if rw.pi.ID != explain.BaseInterfaceID && rw.mean < baseMean {
			belowBase++
		}
	}
	r.Report = tbl.String()
	r.metric("trials_per_interface", float64(evaluated))
	r.metric("best_mean", rows[0].mean)
	r.metric("base_mean", baseMean)
	r.metric("interfaces_below_base", float64(belowBase))

	r.check(rows[0].pi.Name == "histogram-grouped",
		"clustered ratings histogram ranks first (got %s)", rows[0].pi.Name)
	r.check(belowBase >= 2,
		"some interfaces fall below the no-explanation base (%d below)", belowBase)
	r.check(rows[0].mean > baseMean,
		"best interface persuades above base (%.2f > %.2f)", rows[0].mean, baseMean)
	// The confusing displays specifically land at the bottom.
	last := rows[len(rows)-1].pi.Name
	r.check(last == "raw-data-dump" || last == "correlation-graph",
		"a confusing display ranks last (got %s)", last)
	return r
}

// RunE9 re-runs Cosley et al. (2003), "Is seeing believing?" (survey
// Section 3.4): users re-rate movies they rated before while the
// interface shows a predicted rating that is either accurate, shifted
// up by one star, or shifted down by one star. The paper reports that
// users can be manipulated toward the shown prediction.
func RunE9(seed uint64) *Result {
	r := newResult("E9", "Persuasive rating shift (Cosley et al.)")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 150, Items: 120, RatingsPerUser: 25})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 20})
	pop := usersim.NewPopulation(c, 150, seed+2)

	shifts := map[string][]float64{"down": nil, "accurate": nil, "up": nil}
	for _, u := range pop.Users {
		// Re-rate up to three previously rated items per condition.
		items := c.Ratings.UserRatings(u.ID)
		var ids []model.ItemID
		for id := range items {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		if len(ids) > 9 {
			ids = ids[:9]
		}
		for i, id := range ids {
			it, err := c.Catalog.Item(id)
			if err != nil {
				continue
			}
			pred, err := knn.Predict(u.ID, id)
			if err != nil {
				continue
			}
			original := items[id]
			var cond string
			shown := pred.Score
			switch i % 3 {
			case 0:
				cond = "down"
				shown = model.ClampRating(pred.Score - 1)
			case 1:
				cond = "accurate"
			case 2:
				cond = "up"
				shown = model.ClampRating(pred.Score + 1)
			}
			rerated := u.PreRating(it, usersim.Stimulus{Shown: shown, Clarity: 0.9})
			shifts[cond] = append(shifts[cond], rerated-original)
		}
	}

	tbl := tablewriter.New("Condition", "N", "Mean re-rating shift", "95% CI").
		SetTitle("E9: rating shift by displayed-prediction condition").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	means := map[string]float64{}
	for _, cond := range []string{"down", "accurate", "up"} {
		xs := shifts[cond]
		means[cond] = stats.Mean(xs)
		tbl.AddRow(cond, len(xs), means[cond], fmt.Sprintf("±%.3f", stats.ConfidenceInterval95(xs)))
	}
	r.Report = tbl.String()
	r.metric("shift_down", means["down"])
	r.metric("shift_accurate", means["accurate"])
	r.metric("shift_up", means["up"])

	r.check(means["up"] > means["accurate"],
		"inflated predictions pull ratings up (%.3f > %.3f)", means["up"], means["accurate"])
	r.check(means["accurate"] > means["down"],
		"deflated predictions pull ratings down (%.3f > %.3f)", means["accurate"], means["down"])
	welch, err := stats.WelchTTest(shifts["up"], shifts["down"])
	if err == nil {
		r.metric("up_vs_down_p", welch.P)
		r.check(welch.Significant(0.01), "up-vs-down manipulation significant (p=%.4g)", welch.P)
	} else {
		r.check(false, "t-test failed: %v", err)
	}
	return r
}
