package experiments

import (
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/usersim"
)

// RunE10 runs the Section 3.7 satisfaction methodology: a user
// walk-through of the task "find something good to watch", recording
// the qualitative measures the paper lists — the ratio of positive to
// negative comments, the number of times the evaluator was frustrated,
// the number of times delighted, and workarounds — plus the direct
// question "do you prefer the system with explanations?".
//
// The mechanism: each user inspects recommendations until one clears
// their intent bar. An explanation that lets them see *why* a
// recommendation fits (or doesn't) converts bad picks from frustration
// into a forgiving negative comment (Section 2.3: "a user may be more
// forgiving ... if they understand why a bad recommendation has been
// made"), and good, well-explained picks into delight. Without
// explanations, opaque misses frustrate and send users hunting through
// the catalogue by hand — the workaround.
func RunE10(seed uint64) *Result {
	r := newResult("E10", "Satisfaction walk-through (Section 3.7)")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 150, Items: 150, RatingsPerUser: 25})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 20})
	he := explain.NewHistogramExplainer(knn)
	pop := usersim.NewPopulation(c, 150, seed+17)

	walk := func(u *usersim.User, explained bool) (*eval.WalkthroughLog, float64) {
		log := &eval.WalkthroughLog{}
		recs := knn.Recommend(u.ID, 8, recsys.ExcludeRated(c.Ratings, u.ID))
		var satisfaction float64
		found := false
		for _, pred := range recs {
			it, err := c.Catalog.Item(pred.Item)
			if err != nil {
				continue
			}
			var s usersim.Stimulus
			haveExplanation := false
			if explained {
				if exp, err := he.Explain(u.ID, it); err == nil {
					s = usersim.StimulusFrom(exp, 0.9)
					haveExplanation = true
				}
			}
			truth := u.TrueUtility(it)
			intent := u.Intent(it, s)
			switch {
			case truth >= 4 && haveExplanation:
				// A good pick whose reasons the user can see.
				log.Record("delighted")
				log.Record("+")
			case truth >= 3.5 && haveExplanation:
				// Explanations make decent picks legible enough to
				// praise — the paper correlates longer descriptions
				// with perceived usefulness (Section 2.7).
				log.Record("+")
			case truth >= 4:
				log.Record("+")
			case truth <= 2.5 && haveExplanation:
				// A miss, but the display shows why it was suggested:
				// forgiving negative.
				log.Record("-")
			case truth <= 2.5:
				// An opaque miss: frustrating.
				log.Record("frustrated")
				log.Record("-")
			}
			if intent >= 4.8 {
				found = true
				satisfaction = u.Consume(it)
				break
			}
		}
		if !found {
			// The list did not convince; the user falls back to manual
			// browsing — the workaround event of the paper's list. They
			// pick by perceived appeal (popularity cues), not by truth,
			// and the slog costs goodwill.
			log.Record("workaround")
			var pick float64
			bestPrior := -1.0
			for i, it := range c.Catalog.Items() {
				if i >= 20 {
					break
				}
				if p := u.Prior(it); p > bestPrior {
					bestPrior = p
					pick = u.TrueUtility(it)
				}
			}
			satisfaction = pick - 0.7
		}
		return log, satisfaction
	}

	var withLogs, withoutLogs eval.WalkthroughLog
	var withSat, withoutSat []float64
	preferExplained := 0
	for _, u := range pop.Users {
		lw, sw := walk(u, true)
		lo, so := walk(u, false)
		addLogs(&withLogs, lw)
		addLogs(&withoutLogs, lo)
		withSat = append(withSat, sw)
		withoutSat = append(withoutSat, so)
		// The direct question ("which system did you prefer?") reflects
		// the process as much as the outcome: frustration and delight
		// weigh alongside how the chosen item turned out.
		score := (sw - so) +
			0.5*float64(lo.Frustrated-lw.Frustrated) +
			0.5*float64(lw.Delighted-lo.Delighted)
		if u.R.Norm(score, 0.5) > 0 {
			preferExplained++
		}
	}

	tbl := tablewriter.New("Condition", "+/- ratio", "Frustrated", "Delighted", "Workarounds", "Mean satisfaction").
		SetTitle("E10: walk-through of 'find something good to watch'").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight,
			tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	tbl.AddRow("without explanations", withoutLogs.PositiveRatio(), withoutLogs.Frustrated,
		withoutLogs.Delighted, withoutLogs.Workarounds, stats.Mean(withoutSat))
	tbl.AddRow("with explanations", withLogs.PositiveRatio(), withLogs.Frustrated,
		withLogs.Delighted, withLogs.Workarounds, stats.Mean(withSat))
	r.Report = tbl.String()

	prefRate := float64(preferExplained) / float64(len(pop.Users))
	r.metric("ratio_with", withLogs.PositiveRatio())
	r.metric("ratio_without", withoutLogs.PositiveRatio())
	r.metric("frustrated_with", float64(withLogs.Frustrated))
	r.metric("frustrated_without", float64(withoutLogs.Frustrated))
	r.metric("prefer_explained", prefRate)

	r.check(withLogs.PositiveRatio() > withoutLogs.PositiveRatio(),
		"comment ratio improves with explanations (%.2f > %.2f)",
		withLogs.PositiveRatio(), withoutLogs.PositiveRatio())
	r.check(withLogs.Frustrated < withoutLogs.Frustrated,
		"explained misses frustrate less (%d < %d)", withLogs.Frustrated, withoutLogs.Frustrated)
	r.check(withLogs.Delighted > withoutLogs.Delighted,
		"explained hits delight (%d > %d)", withLogs.Delighted, withoutLogs.Delighted)
	r.check(prefRate > 0.5,
		"a majority prefers the system with explanations (%.0f%%)", prefRate*100)
	return r
}

func addLogs(dst, src *eval.WalkthroughLog) {
	dst.Positive += src.Positive
	dst.Negative += src.Negative
	dst.Frustrated += src.Frustrated
	dst.Delighted += src.Delighted
	dst.Workarounds += src.Workarounds
}
