package experiments

import (
	"strings"

	"repro/internal/survey"
)

// RunT1 regenerates Table 1 (the aims taxonomy). The shape check: all
// seven aims with their paper definitions.
func RunT1(seed uint64) *Result {
	r := newResult("T1", "Table 1: aims taxonomy")
	tbl := survey.Table1()
	r.Report = tbl.String()
	r.metric("aims", float64(len(survey.AllAims)))
	r.check(len(survey.AllAims) == 7, "seven aims defined")
	r.check(strings.Contains(r.Report, "Help users make good decisions"),
		"effectiveness definition matches the paper")
	return r
}

// RunT2 regenerates Table 2 (aims of academic systems).
func RunT2(seed uint64) *Result {
	r := newResult("T2", "Table 2: aims of academic systems")
	tbl := survey.Table2()
	r.Report = tbl.String()
	rows := len(survey.Table2Systems())
	marks := strings.Count(r.Report, "X")
	r.metric("rows", float64(rows))
	r.metric("marks", float64(marks))
	r.check(rows == 14, "14 academic systems state aims (got %d)", rows)
	r.check(marks == 25, "25 aim marks as in the paper's layout (got %d)", marks)
	// Every aim column is used at least once.
	for _, a := range survey.AllAims {
		r.check(len(survey.WithAim(a)) > 0, "aim %s stated by at least one system", a.Abbrev())
	}
	return r
}

// RunT3 regenerates Table 3 (commercial systems).
func RunT3(seed uint64) *Result {
	r := newResult("T3", "Table 3: commercial systems")
	tbl := survey.Table3()
	r.Report = tbl.String() + "\n" + survey.ImplementationIndex().String()
	r.metric("rows", float64(tbl.NumRows()))
	r.check(tbl.NumRows() == 8, "eight commercial systems (got %d)", tbl.NumRows())
	for _, name := range []string{"Amazon", "Pandora", "Qwikshop"} {
		r.check(strings.Contains(r.Report, name), "row %s present", name)
	}
	return r
}

// RunT4 regenerates Table 4 (academic systems).
func RunT4(seed uint64) *Result {
	r := newResult("T4", "Table 4: academic systems")
	tbl := survey.Table4()
	r.Report = tbl.String()
	r.metric("rows", float64(tbl.NumRows()))
	r.check(tbl.NumRows() == 10, "ten academic systems (got %d)", tbl.NumRows())
	r.check(strings.Contains(r.Report, "Structured overview"),
		"Pu & Chen's organizational structure row present")
	r.check(strings.Contains(r.Report, "ADAPTIVE PLACE ADVISOR"),
		"conversational recommender row present")
	return r
}
