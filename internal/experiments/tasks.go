package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/content"
	"repro/internal/tablewriter"
	"repro/internal/usersim"
)

// comedyLift measures how much a set of rating actions raised the
// predicted score of unrated comedy items *relative to everything
// else* — the ground-truth check for the transparency task
// ("influence the system so that it learns a preference for
// comedies"). The relative measure matters: rating anything five
// stars raises the user's mean and with it every prediction, which is
// exactly the superstition the task should expose.
func comedyLift(c *dataset.Community, u model.UserID, apply func(m *model.Matrix)) float64 {
	before := comedyAdvantage(c, c.Ratings, u)
	m := c.Ratings.Clone()
	apply(m)
	after := comedyAdvantage(c, m, u)
	return after - before
}

// comedyAdvantage is mean predicted score of unrated comedies minus
// mean predicted score of all other unrated items.
func comedyAdvantage(c *dataset.Community, m *model.Matrix, u model.UserID) float64 {
	kw := content.NewKeywordRecommender(m, c.Catalog)
	var comedySum, otherSum float64
	var comedyN, otherN int
	for _, it := range c.Catalog.Items() {
		if _, rated := m.Get(u, it.ID); rated {
			continue
		}
		pred, err := kw.Predict(u, it.ID)
		if err != nil {
			continue
		}
		if it.HasKeyword("comedy") {
			comedySum += pred.Score
			comedyN++
		} else {
			otherSum += pred.Score
			otherN++
		}
	}
	if comedyN == 0 || otherN == 0 {
		return 0
	}
	return comedySum/float64(comedyN) - otherSum/float64(otherN)
}

// RunE6 re-runs the transparency task of Section 3.1: users must make
// the system "learn" a preference for comedies; task correctness and
// completion time are compared with and without an explanation
// facility. Explanations reveal that recommendations follow rated
// genres, so explained users are far more likely to pick the correct
// strategy (rate comedies highly) instead of a superstition (rate
// popular items highly). Correctness is verified against the live
// recommender, not assumed.
func RunE6(seed uint64) *Result {
	r := newResult("E6", "Transparency task")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 160, Items: 150, RatingsPerUser: 20})
	pop := usersim.NewPopulation(c, 160, seed+13)

	// Strategies the participants might try.
	comedies := func() []*model.Item {
		var out []*model.Item
		for _, it := range c.Catalog.Items() {
			if it.HasKeyword("comedy") {
				out = append(out, it)
			}
		}
		return out
	}()
	popularNonComedies := func() []*model.Item {
		var out []*model.Item
		for _, it := range c.Catalog.Items() {
			if !it.HasKeyword("comedy") {
				out = append(out, it)
			}
			if len(out) == 12 {
				break
			}
		}
		return out
	}()

	correctStrategy := func(u model.UserID) func(m *model.Matrix) {
		return func(m *model.Matrix) {
			rated := 0
			for _, it := range comedies {
				if rated >= 6 {
					break
				}
				m.Set(u, it.ID, 5)
				rated++
			}
		}
	}
	superstition := func(u model.UserID) func(m *model.Matrix) {
		return func(m *model.Matrix) {
			// "Rate popular things highly, the system will get the
			// idea" — the misunderstanding the task is designed to
			// catch.
			for _, it := range popularNonComedies[:6] {
				m.Set(u, it.ID, 5)
			}
		}
	}

	run := func(u *usersim.User, explained bool) eval.TaskOutcome {
		// Probability of understanding the mechanism on each attempt.
		// Without explanations the mechanism must be guessed; with them
		// it is spelled out ("because you have liked comedy items").
		pUnderstand := 0.05 + 0.30*u.Skill
		seconds := 0.0
		if explained {
			pUnderstand = 0.45 + 0.55*u.Skill
			seconds += u.ReadTime(300) // reading the explanations first
		}
		attempts := 2
		for a := 0; a < attempts; a++ {
			understands := u.R.Bernoulli(pUnderstand)
			var lift float64
			if understands {
				lift = comedyLift(c, u.ID, correctStrategy(u.ID))
			} else {
				lift = comedyLift(c, u.ID, superstition(u.ID))
			}
			seconds += 6 * 10 // six rating actions
			if lift >= 0.15 {
				return eval.TaskOutcome{Correct: true, Seconds: seconds}
			}
			// Each failed attempt teaches something.
			pUnderstand += 0.15
		}
		return eval.TaskOutcome{Correct: false, Seconds: seconds, GaveUp: true}
	}

	var with, without []eval.TaskOutcome
	for _, u := range pop.Users {
		without = append(without, run(u, false))
		with = append(with, run(u, true))
	}
	repWith := eval.SummarizeTasks(with)
	repWithout := eval.SummarizeTasks(without)

	tbl := tablewriter.New("Condition", "Correct %", "Gave up %", "Mean time (s)").
		SetTitle("E6: 'teach the system you like comedies' task").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	tbl.AddRow("without explanations", pct(repWithout.CorrectRate), pct(repWithout.GaveUpRate), repWithout.TimeSummary.Mean)
	tbl.AddRow("with explanations", pct(repWith.CorrectRate), pct(repWith.GaveUpRate), repWith.TimeSummary.Mean)
	r.Report = tbl.String()

	r.metric("correct_with", repWith.CorrectRate)
	r.metric("correct_without", repWithout.CorrectRate)
	r.metric("time_with", repWith.TimeSummary.Mean)
	r.metric("time_without", repWithout.TimeSummary.Mean)
	r.check(repWith.CorrectRate > repWithout.CorrectRate+0.1,
		"explanations raise task correctness (%.0f%% > %.0f%%)",
		repWith.CorrectRate*100, repWithout.CorrectRate*100)
	r.check(repWith.GaveUpRate < repWithout.GaveUpRate,
		"explanations reduce abandonment")
	return r
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// RunE7 re-runs the scrutability task of Section 3.2 (Czarkowski's
// methodology): "stop receiving recommendations of Disney movies."
// With a scrutability tool the user blocks the inferred interest
// directly; without it they fall back to down-rating Disney items and
// hoping. The original study found time and correctness misleading
// when users could not find the tool, so interface-issue injection
// (the tool is hidden for a fraction of users) is part of the design.
func RunE7(seed uint64) *Result {
	r := newResult("E7", "Scrutability task (Czarkowski)")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 160, Items: 150, RatingsPerUser: 25})
	pop := usersim.NewPopulation(c, 160, seed+14)

	disneyItems := func() []*model.Item {
		var out []*model.Item
		for _, it := range c.Catalog.Items() {
			if it.HasKeyword("disney") {
				out = append(out, it)
			}
		}
		return out
	}()

	// success: the user's top-10 contains no Disney item.
	success := func(m *model.Matrix, fb *interact.FeedbackModel, u *usersim.User) bool {
		kw := content.NewKeywordRecommender(m, c.Catalog)
		preds := kw.Recommend(u.ID, c.Catalog.Len(), recsys.ExcludeRated(m, u.ID))
		if fb != nil {
			preds = fb.Rerank(c.Catalog, preds, nil)
		}
		top := recsys.TopN(preds, 10)
		for _, p := range top {
			it, err := c.Catalog.Item(p.Item)
			if err == nil && it.HasKeyword("disney") {
				return false
			}
		}
		return len(top) > 0
	}

	runWithTool := func(u *usersim.User) eval.TaskOutcome {
		seconds := 10.0 // orienting
		// Interface issue: 30% of users struggle to find the tool.
		if u.R.Bernoulli(0.3) {
			seconds += 60
			if !u.R.Bernoulli(u.Skill) {
				return eval.TaskOutcome{Correct: false, Seconds: seconds, GaveUp: true}
			}
		}
		fb := interact.NewFeedbackModel()
		for i, it := range disneyItems {
			if i >= 3 {
				break
			}
			//lint:ignore dropped-error Apply only fails on malformed opinions; NoMoreLikeThis with a catalogue item cannot be malformed
			_ = fb.Apply(interact.Opinion{Kind: interact.NoMoreLikeThis, Item: it.ID}, it)
			seconds += 5
		}
		return eval.TaskOutcome{Correct: success(c.Ratings, fb, u), Seconds: seconds}
	}

	// Without the tool the user is in Mr. Iwanyk's position (the
	// survey's TiVo anecdote): the system learns from what they watch,
	// and one cannot "watch less Disney" — so they counteract by
	// consuming lots of war movies and other "guy stuff", hoping to
	// crowd the inference out.
	warItems := func() []*model.Item {
		var out []*model.Item
		for _, it := range c.Catalog.Items() {
			if it.HasKeyword("war") || it.HasKeyword("action") {
				if it.HasKeyword("disney") {
					continue
				}
				out = append(out, it)
			}
		}
		return out
	}()
	runWithoutTool := func(u *usersim.User) eval.TaskOutcome {
		seconds := 10.0
		m := c.Ratings.Clone()
		ed := interact.NewRatingEditor(m, u.ID)
		for i, it := range warItems {
			if i >= 6 {
				break
			}
			ed.Rate(it.ID, 5)
			seconds += 10
		}
		return eval.TaskOutcome{Correct: success(m, nil, u), Seconds: seconds}
	}

	var with, without []eval.TaskOutcome
	affected := 0
	for _, u := range pop.Users {
		// The task only exists for users who are actually getting
		// Disney recommendations (Mr. Iwanyk's situation).
		if success(c.Ratings, nil, u) {
			continue
		}
		affected++
		with = append(with, runWithTool(u))
		without = append(without, runWithoutTool(u))
	}
	repWith := eval.SummarizeTasks(with)
	repWithout := eval.SummarizeTasks(without)

	tbl := tablewriter.New("Condition", "Success %", "Gave up %", "Mean time (s)").
		SetTitle("E7: 'stop Disney recommendations' task").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	tbl.AddRow("down-rating only", pct(repWithout.CorrectRate), pct(repWithout.GaveUpRate), repWithout.TimeSummary.Mean)
	tbl.AddRow("scrutability tool", pct(repWith.CorrectRate), pct(repWith.GaveUpRate), repWith.TimeSummary.Mean)
	r.Report = tbl.String()

	r.metric("affected_users", float64(affected))
	r.metric("success_with_tool", repWith.CorrectRate)
	r.metric("success_without_tool", repWithout.CorrectRate)
	r.metric("gaveup_with_tool", repWith.GaveUpRate)
	r.check(affected >= 20, "enough affected users to measure (%d)", affected)
	r.check(repWith.CorrectRate > repWithout.CorrectRate,
		"the scrutability tool raises success (%.0f%% > %.0f%%)",
		repWith.CorrectRate*100, repWithout.CorrectRate*100)
	r.check(repWith.GaveUpRate > 0,
		"interface issues cause some abandonment, as in the original study (%.0f%%)",
		repWith.GaveUpRate*100)
	return r
}
