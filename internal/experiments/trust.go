package experiments

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/usersim"
)

// RunE5 re-runs the trust/loyalty study of McNee et al. (2003) crossed
// with an explanations on/off factor (survey Section 3.3): new users
// sign up by rating items either of their own choosing or of the
// system's choosing, then use the recommender over repeated sessions.
// Loyalty is the number of sessions before the user stops returning,
// plus a five-dimension trust questionnaire at the end. The paper
// reports that letting users choose which items to rate affects
// loyalty; Section 2.3 adds that explanations soften the trust cost of
// bad recommendations.
func RunE5(seed uint64) *Result {
	r := newResult("E5", "Trust and loyalty (McNee et al.)")
	base := dataset.Movies(dataset.Config{Seed: seed, Users: 160, Items: 150, RatingsPerUser: 25})
	questionnaire := eval.NewTrustQuestionnaire()
	qr := rng.New(seed + 11)

	type condition struct {
		name        string
		userChooses bool
		explained   bool
	}
	conditions := []condition{
		{"system-chosen, no explanations", false, false},
		{"system-chosen, explanations", false, true},
		{"user-chosen, no explanations", true, false},
		{"user-chosen, explanations", true, true},
	}

	const (
		signupRatings = 12
		maxSessions   = 20
	)

	sessions := map[string][]float64{}
	trustOut := map[string][]float64{}
	finalTrust := map[string][]float64{}
	for ci, cond := range conditions {
		// Fresh matrix per condition: sign-up ratings are the only
		// profile the newcomer has; the rest of the community stays.
		pop := usersim.NewPopulation(base, 80, seed+uint64(100+ci))
		for _, u := range pop.Users {
			m := base.Ratings.Clone()
			for _, id := range m.RatedItems() {
				m.Delete(u.ID, id)
			}
			// Sign-up: choose which items to rate.
			items := append([]*model.Item(nil), base.Catalog.Items()...)
			if cond.userChooses {
				// Users pick items they know (reasonably popular) AND
				// have strong opinions about — informative ratings that
				// still overlap with the community.
				sort.Slice(items, func(a, b int) bool {
					score := func(it *model.Item) float64 {
						v := math.Abs(u.TrueUtility(it) - 3)
						if it.Popularity < 0.08 {
							v -= 2 // never heard of it: cannot rate it
						}
						return v
					}
					da, db := score(items[a]), score(items[b])
					if da != db {
						return da > db
					}
					return items[a].ID < items[b].ID
				})
			} else {
				// The system asks about popular items.
				sort.Slice(items, func(a, b int) bool {
					if items[a].Popularity != items[b].Popularity {
						return items[a].Popularity > items[b].Popularity
					}
					return items[a].ID < items[b].ID
				})
			}
			for _, it := range items[:signupRatings] {
				// Familiarity drives both rating reliability and the
				// sign-up experience. A user rating an item they chose
				// rates from vivid experience; a user confronted with a
				// system-chosen item they barely know rates half from
				// hearsay — and the "I haven't seen this" friction at
				// sign-up erodes their confidence in the system before
				// the first recommendation arrives (the interface
				// effect McNee et al. observed on new users).
				var rating float64
				if cond.userChooses {
					rating = quantizeHalfLocal(u.TrueUtility(it) + u.R.Norm(0, 0.3))
				} else {
					rating = u.PostRating(it)
					if !u.R.Bernoulli(it.Popularity) {
						rating = quantizeHalfLocal(rating + u.R.Norm(0, 1.2))
						u.Trust = math.Max(0, u.Trust-0.04)
					}
				}
				m.Set(u.ID, it.ID, rating)
			}
			knn := cf.NewUserKNN(m, base.Catalog, cf.Options{K: 20})
			he := explain.NewHistogramExplainer(knn)

			var count float64
			for s := 0; s < maxSessions; s++ {
				recs := knn.Recommend(u.ID, 1, recsys.ExcludeRated(m, u.ID))
				if len(recs) == 0 {
					break
				}
				it, err := base.Catalog.Item(recs[0].Item)
				if err != nil {
					break
				}
				explained := false
				if cond.explained {
					if _, err := he.Explain(u.ID, it); err == nil {
						explained = true
					}
				}
				experienced := u.Consume(it)
				m.Set(u.ID, it.ID, quantizeHalfLocal(experienced))
				u.UpdateTrust(recs[0].Score, experienced, explained)
				count++
				if !u.WillReturn() {
					break
				}
			}
			sessions[cond.name] = append(sessions[cond.name], count)
			finalTrust[cond.name] = append(finalTrust[cond.name], u.Trust)
			trustOut[cond.name] = append(trustOut[cond.name], questionnaire.Administer(u.Trust, qr).Overall())
		}
	}

	tbl := tablewriter.New("Condition", "Mean sessions", "Questionnaire trust (1-7)").
		SetTitle("E5: loyalty (sessions) and trust by sign-up interface and explanation factor").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight)
	for _, cond := range conditions {
		tbl.AddRow(cond.name, stats.Mean(sessions[cond.name]), stats.Mean(trustOut[cond.name]))
	}
	r.Report = tbl.String()

	userChosen := append(append([]float64(nil), sessions["user-chosen, no explanations"]...),
		sessions["user-chosen, explanations"]...)
	systemChosen := append(append([]float64(nil), sessions["system-chosen, no explanations"]...),
		sessions["system-chosen, explanations"]...)
	explained := append(append([]float64(nil), sessions["system-chosen, explanations"]...),
		sessions["user-chosen, explanations"]...)
	unexplained := append(append([]float64(nil), sessions["system-chosen, no explanations"]...),
		sessions["user-chosen, no explanations"]...)

	r.metric("sessions_user_chosen", stats.Mean(userChosen))
	r.metric("sessions_system_chosen", stats.Mean(systemChosen))
	r.metric("sessions_explained", stats.Mean(explained))
	r.metric("sessions_unexplained", stats.Mean(unexplained))

	// The survey reports only that the elicitation interface "did
	// affect user loyalty", without fixing a direction; we check for a
	// detectable effect on the trust state driving loyalty. (In this
	// simulation system-chosen popular items produce slightly better
	// cold-start predictions — popular items have the most co-raters —
	// while user-chosen items are rated more reliably; the net effect
	// is what the test detects.)
	userTrust := append(append([]float64(nil), finalTrust["user-chosen, no explanations"]...),
		finalTrust["user-chosen, explanations"]...)
	systemTrust := append(append([]float64(nil), finalTrust["system-chosen, no explanations"]...),
		finalTrust["system-chosen, explanations"]...)
	if test, err := stats.WelchTTest(userTrust, systemTrust); err == nil {
		r.metric("choice_effect_p", test.P)
		r.metric("choice_effect_d", stats.CohenD(userTrust, systemTrust))
		r.check(test.Significant(0.05) || math.Abs(stats.CohenD(userTrust, systemTrust)) > 0.25,
			"elicitation interface affects trust and loyalty (p=%.4g, d=%.2f)",
			test.P, stats.CohenD(userTrust, systemTrust))
	} else {
		r.check(false, "t-test failed: %v", err)
	}
	r.check(stats.Mean(explained) > stats.Mean(unexplained),
		"explanations increase loyalty (%.1f > %.1f sessions)",
		stats.Mean(explained), stats.Mean(unexplained))
	best := "user-chosen, explanations"
	r.check(stats.Mean(trustOut[best]) > stats.Mean(trustOut["system-chosen, no explanations"]),
		"questionnaire trust highest with both factors")
	return r
}

func quantizeHalfLocal(v float64) float64 {
	return model.ClampRating(math.Round(v*2) / 2)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RunA3 is the personality ablation of Section 4.6: affirming
// recommenders build trust by showing familiar items, serendipitous
// ones score higher on the serendipity metric, bold ones pay for their
// exaggerated claims with trust after consumption, and frank ones
// (true confidence disclosed) keep trust without score distortion.
func RunA3(seed uint64) *Result {
	r := newResult("A3", "Ablation: recommender personality")
	c := dataset.Movies(dataset.Config{Seed: seed, Users: 150, Items: 150, RatingsPerUser: 25})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 20})

	personalities := []present.Personality{
		present.Neutral, present.Affirming, present.Serendipitous, present.Bold, present.Frank,
	}
	const sessions = 8

	type outcome struct {
		trust       []float64
		serendipity []float64
		meanTruth   []float64
		popularity  []float64
	}
	results := map[present.Personality]*outcome{}
	for pi, p := range personalities {
		pop := usersim.NewPopulation(c, 60, seed+uint64(200+pi))
		out := &outcome{}
		for _, u := range pop.Users {
			consumed := map[model.ItemID]bool{}
			var truthSum float64
			var n int
			var lists [][]model.ItemID
			for s := 0; s < sessions; s++ {
				// The personality shapes *which* of the many plausible
				// candidates reach the top-10, so it acts on a wide
				// pool before truncation.
				preds := knn.Recommend(u.ID, 60, func(i model.ItemID) bool {
					if consumed[i] {
						return true
					}
					_, rated := c.Ratings.Get(u.ID, i)
					return rated
				})
				if len(preds) == 0 {
					break
				}
				adjusted := p.Apply(c.Catalog, preds)
				adjusted = adjusted[:minInt(10, len(adjusted))]
				var list []model.ItemID
				for _, pr := range adjusted {
					list = append(list, pr.Item)
				}
				lists = append(lists, list)
				top := adjusted[0]
				it, err := c.Catalog.Item(top.Item)
				if err != nil {
					break
				}
				consumed[top.Item] = true
				experienced := u.Consume(it)
				// Frank discloses true confidence, softening failures
				// like an explanation does.
				u.UpdateTrust(top.Score, experienced, p == present.Frank)
				truthSum += u.TrueUtility(it)
				n++
			}
			if n == 0 {
				continue
			}
			out.trust = append(out.trust, u.Trust)
			out.meanTruth = append(out.meanTruth, truthSum/float64(n))
			// Serendipity over the union of session lists: relevant =
			// true utility >= 4, unexpected = deep-tail popularity.
			relevant := map[model.ItemID]bool{}
			var flat []model.ItemID
			seen := map[model.ItemID]bool{}
			var popSum float64
			for _, l := range lists {
				for _, id := range l {
					if seen[id] {
						continue
					}
					seen[id] = true
					flat = append(flat, id)
					it, err := c.Catalog.Item(id)
					if err != nil {
						continue
					}
					popSum += it.Popularity
					if u.TrueUtility(it) >= 4 {
						relevant[id] = true
					}
				}
			}
			if len(flat) > 0 {
				out.popularity = append(out.popularity, popSum/float64(len(flat)))
			}
			out.serendipity = append(out.serendipity, eval.Serendipity(c.Catalog, flat, relevant, 0.15))
		}
		results[p] = out
	}

	tbl := tablewriter.New("Personality", "Final trust", "Serendipity", "List popularity", "Mean true utility of picks").
		SetTitle("A3: personality effects over repeated sessions").
		SetAligns(tablewriter.AlignLeft, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight, tablewriter.AlignRight)
	for _, p := range personalities {
		out := results[p]
		tbl.AddRow(p.String(), stats.Mean(out.trust), stats.Mean(out.serendipity),
			stats.Mean(out.popularity), stats.Mean(out.meanTruth))
	}
	r.Report = tbl.String()

	r.metric("trust_neutral", stats.Mean(results[present.Neutral].trust))
	r.metric("trust_bold", stats.Mean(results[present.Bold].trust))
	r.metric("trust_frank", stats.Mean(results[present.Frank].trust))
	r.metric("serendipity_affirming", stats.Mean(results[present.Affirming].serendipity))
	r.metric("serendipity_serendipitous", stats.Mean(results[present.Serendipitous].serendipity))
	r.metric("popularity_affirming", stats.Mean(results[present.Affirming].popularity))
	r.metric("popularity_serendipitous", stats.Mean(results[present.Serendipitous].popularity))

	r.check(stats.Mean(results[present.Affirming].popularity) >
		stats.Mean(results[present.Serendipitous].popularity),
		"affirming recommends familiar items, serendipitous novel ones (pop %.3f > %.3f)",
		stats.Mean(results[present.Affirming].popularity),
		stats.Mean(results[present.Serendipitous].popularity))
	r.check(stats.Mean(results[present.Serendipitous].serendipity) >=
		stats.Mean(results[present.Affirming].serendipity)-0.02,
		"serendipitous personality at least matches affirming on serendipity (%.3f vs %.3f)",
		stats.Mean(results[present.Serendipitous].serendipity),
		stats.Mean(results[present.Affirming].serendipity))
	r.check(stats.Mean(results[present.Bold].trust) < stats.Mean(results[present.Frank].trust),
		"bold claims cost trust relative to frank disclosure (%.2f < %.2f)",
		stats.Mean(results[present.Bold].trust), stats.Mean(results[present.Frank].trust))
	r.check(stats.Mean(results[present.Frank].trust) >= stats.Mean(results[present.Neutral].trust),
		"frank disclosure does not cost trust")
	return r
}
