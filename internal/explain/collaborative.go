package explain

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/recsys/cf"
	"repro/internal/stats"
)

// HistogramExplainer renders the winning interface of Herlocker et
// al.'s persuasion study: a histogram of how the user's nearest
// neighbours rated the item, with the "good" ratings (4-5) and "bad"
// ratings (1-2) clustered.
type HistogramExplainer struct {
	knn *cf.UserKNN
}

// NewHistogramExplainer builds a histogram explainer over a trained
// user-based CF model.
func NewHistogramExplainer(knn *cf.UserKNN) *HistogramExplainer {
	return &HistogramExplainer{knn: knn}
}

// Style implements Explainer.
func (h *HistogramExplainer) Style() Style { return CollaborativeBased }

// Explain implements Explainer.
func (h *HistogramExplainer) Explain(u model.UserID, item *model.Item) (*Explanation, error) {
	neighbors := h.knn.Neighbors(u, item.ID)
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("user %d, item %d: %w", u, item.ID, ErrNoEvidence)
	}
	hist := stats.NewHistogram(model.MinRating, model.MaxRating, 5)
	for _, nb := range neighbors {
		hist.Add(nb.Rating)
	}
	good, neutral, bad := countGoodBad(neighbors)
	pred, err := h.knn.Predict(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("explaining item %d: %w", item.ID, err)
	}
	text := fmt.Sprintf(
		"Your neighbours' ratings for %q: %d rated it good (4-5 stars), %d were lukewarm, %d rated it bad (1-2 stars).",
		item.Title, good, neutral, bad)
	return &Explanation{
		Style:      CollaborativeBased,
		Text:       text,
		Detail:     hist.Render(30),
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence:   Evidence{Histogram: hist, Neighbors: neighbors},
	}, nil
}

// NeighborCountExplainer renders the terse collaborative variant:
// "N of your 20 nearest neighbours rated this item 4 stars or higher."
type NeighborCountExplainer struct {
	knn *cf.UserKNN
}

// NewNeighborCountExplainer builds the neighbour-count explainer.
func NewNeighborCountExplainer(knn *cf.UserKNN) *NeighborCountExplainer {
	return &NeighborCountExplainer{knn: knn}
}

// Style implements Explainer.
func (n *NeighborCountExplainer) Style() Style { return CollaborativeBased }

// Explain implements Explainer.
func (n *NeighborCountExplainer) Explain(u model.UserID, item *model.Item) (*Explanation, error) {
	neighbors := n.knn.Neighbors(u, item.ID)
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("user %d, item %d: %w", u, item.ID, ErrNoEvidence)
	}
	good, _, _ := countGoodBad(neighbors)
	pred, err := n.knn.Predict(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("explaining item %d: %w", item.ID, err)
	}
	text := fmt.Sprintf("%d of the %d people most similar to you rated %q 4 stars or higher.",
		good, len(neighbors), item.Title)
	return &Explanation{
		Style:      CollaborativeBased,
		Text:       text,
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence:   Evidence{Neighbors: neighbors},
	}, nil
}

// ItemSimilarityExplainer renders the Amazon-style item-based form:
// "People like you liked Oliver Twist" / "because you liked Great
// Expectations and Bleak House".
type ItemSimilarityExplainer struct {
	knn *cf.ItemKNN
	cat *model.Catalog
	// MaxCited bounds how many past items are named (default 2; the
	// survey notes long explanations trade efficiency for transparency).
	MaxCited int
}

// NewItemSimilarityExplainer builds an item-similarity explainer.
func NewItemSimilarityExplainer(knn *cf.ItemKNN, cat *model.Catalog) *ItemSimilarityExplainer {
	return &ItemSimilarityExplainer{knn: knn, cat: cat, MaxCited: 2}
}

// Style implements Explainer. Despite running on collaborative data,
// the rendered content names the user's own items, which the survey's
// tables classify as content-based explanation (Amazon's row).
func (e *ItemSimilarityExplainer) Style() Style { return ContentBased }

// Explain implements Explainer.
func (e *ItemSimilarityExplainer) Explain(u model.UserID, item *model.Item) (*Explanation, error) {
	neighbors := e.knn.Neighbors(u, item.ID)
	// Only cite items the user actually liked; citing a hated item as
	// the reason would be unfaithful.
	var liked []cf.ItemNeighbor
	for _, nb := range neighbors {
		if nb.Rating >= 4 {
			liked = append(liked, nb)
		}
	}
	if len(liked) == 0 {
		return nil, fmt.Errorf("user %d, item %d: no liked similar items: %w", u, item.ID, ErrNoEvidence)
	}
	cited := liked
	if e.MaxCited > 0 && len(cited) > e.MaxCited {
		cited = cited[:e.MaxCited]
	}
	names := make([]string, 0, len(cited))
	for _, nb := range cited {
		it, err := e.cat.Item(nb.Item)
		if err != nil {
			continue
		}
		names = append(names, fmt.Sprintf("%q", it.Title))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("user %d, item %d: cited items missing from catalogue: %w", u, item.ID, ErrNoEvidence)
	}
	pred, err := e.knn.Predict(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("explaining item %d: %w", item.ID, err)
	}
	text := fmt.Sprintf("We recommend %q because you liked %s.",
		item.Title, strings.Join(names, " and "))
	return &Explanation{
		Style:      ContentBased,
		Text:       text,
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence:   Evidence{SimilarItems: liked},
	}, nil
}

// SocialPhrase renders the "People like you liked..." framing of
// Section 4.3 for a recommended item.
func SocialPhrase(item *model.Item) string {
	who := item.Title
	if item.Creator != "" {
		who = fmt.Sprintf("%s by %s", item.Title, item.Creator)
	}
	return fmt.Sprintf("People like you liked... %s", who)
}
