package explain

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/recsys/content"
	"repro/internal/tablewriter"
)

// InfluenceExplainer reproduces the LIBRA influence interface of
// Figure 3: for a recommended book it shows which of the user's past
// ratings influenced the recommendation the most, as percentages.
type InfluenceExplainer struct {
	bayes *content.Bayes
	cat   *model.Catalog
	// MaxRows bounds the influence table (default 5, like the figure).
	MaxRows int
}

// NewInfluenceExplainer builds an influence explainer over a
// naive-Bayes content model.
func NewInfluenceExplainer(b *content.Bayes, cat *model.Catalog) *InfluenceExplainer {
	return &InfluenceExplainer{bayes: b, cat: cat, MaxRows: 5}
}

// Style implements Explainer.
func (e *InfluenceExplainer) Style() Style { return ContentBased }

// Explain implements Explainer.
func (e *InfluenceExplainer) Explain(u model.UserID, item *model.Item) (*Explanation, error) {
	infl, err := e.bayes.Influences(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("influences for user %d, item %d: %w (%v)", u, item.ID, ErrNoEvidence, err)
	}
	if len(infl) == 0 {
		return nil, fmt.Errorf("user %d, item %d: %w", u, item.ID, ErrNoEvidence)
	}
	pred, err := e.bayes.Predict(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("predicting item %d: %w", item.ID, err)
	}
	rows := infl
	if e.MaxRows > 0 && len(rows) > e.MaxRows {
		rows = rows[:e.MaxRows]
	}
	tbl := tablewriter.New("Your rating", "Title", "Influence").
		SetTitle(fmt.Sprintf("Ratings that most influenced recommending %q:", item.Title)).
		SetAligns(tablewriter.AlignRight, tablewriter.AlignLeft, tablewriter.AlignRight)
	var topTitle string
	for i, in := range rows {
		it, err := e.cat.Item(in.Item)
		if err != nil {
			continue
		}
		if i == 0 {
			topTitle = it.Title
		}
		tbl.AddRow(ratedPhrase(in.Rating), it.Title, fmt.Sprintf("%.0f%%", in.Percent))
	}
	text := fmt.Sprintf("Your rating of %q influenced this recommendation the most.", topTitle)
	return &Explanation{
		Style:      ContentBased,
		Text:       text,
		Detail:     tbl.String(),
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence:   Evidence{Influences: infl},
	}, nil
}

// KeywordExplainer renders per-feature content explanations:
// "recommended because it is a comedy, and you have liked comedies".
type KeywordExplainer struct {
	bayes *content.Bayes
	// MaxKeywords bounds how many features are named (default 2).
	MaxKeywords int
}

// NewKeywordExplainer builds a keyword explainer over a naive-Bayes
// content model.
func NewKeywordExplainer(b *content.Bayes) *KeywordExplainer {
	return &KeywordExplainer{bayes: b, MaxKeywords: 2}
}

// Style implements Explainer.
func (e *KeywordExplainer) Style() Style { return ContentBased }

// Explain implements Explainer.
func (e *KeywordExplainer) Explain(u model.UserID, item *model.Item) (*Explanation, error) {
	kcs, err := e.bayes.KeywordContributions(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("contributions for user %d, item %d: %w (%v)", u, item.ID, ErrNoEvidence, err)
	}
	if len(kcs) == 0 {
		return nil, fmt.Errorf("item %d carries no content features: %w", item.ID, ErrNoEvidence)
	}
	pred, err := e.bayes.Predict(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("predicting item %d: %w", item.ID, err)
	}
	var pros, cons []string
	for _, kc := range kcs {
		switch {
		case kc.Weight > 0.05:
			pros = append(pros, kc.Keyword)
		case kc.Weight < -0.05:
			cons = append(cons, kc.Keyword)
		}
	}
	limit := func(ss []string) []string {
		if e.MaxKeywords > 0 && len(ss) > e.MaxKeywords {
			return ss[:e.MaxKeywords]
		}
		return ss
	}
	var text string
	switch {
	case len(pros) > 0 && len(cons) > 0:
		text = fmt.Sprintf("%q matches your interest in %s, although you have not liked %s items before.",
			item.Title, joinAnd(limit(pros)), joinAnd(limit(cons)))
	case len(pros) > 0:
		text = fmt.Sprintf("We recommend %q because you have liked %s items.",
			item.Title, joinAnd(limit(pros)))
	case len(cons) > 0:
		text = fmt.Sprintf("%q is a %s item, and you do not seem to like %s.",
			item.Title, joinAnd(limit(cons)), joinAnd(limit(cons)))
	default:
		text = fmt.Sprintf("%q is unlike anything you have rated, so this is an experiment.", item.Title)
	}
	return &Explanation{
		Style:      ContentBased,
		Text:       text,
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence:   Evidence{Keywords: kcs},
	}, nil
}

func joinAnd(ss []string) string {
	switch len(ss) {
	case 0:
		return ""
	case 1:
		return ss[0]
	default:
		return strings.Join(ss[:len(ss)-1], ", ") + " and " + ss[len(ss)-1]
	}
}
