package explain_test

import (
	"fmt"

	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

// The Qwikshop-style trade-off phrase from the survey's Section 5.2,
// generated from two real items.
func ExampleTradeoffPhrase() {
	cat := model.NewCatalog("cameras",
		model.AttrDef{Name: "memory", Kind: model.Numeric},
		model.AttrDef{Name: "resolution", Kind: model.Numeric},
		model.AttrDef{Name: "price", Kind: model.Numeric, LessIsBetter: true},
	)
	ref := &model.Item{ID: 1, Title: "Current", Numeric: map[string]float64{
		"memory": 32, "resolution": 24, "price": 800,
	}}
	alt := &model.Item{ID: 2, Title: "Alternative", Numeric: map[string]float64{
		"memory": 8, "resolution": 10, "price": 200,
	}}
	cat.MustAdd(ref)
	cat.MustAdd(alt)
	fmt.Println(explain.TradeoffPhrase(knowledge.Compare(cat, ref, alt)))
	// Output:
	// Less Memory and Lower Resolution and Cheaper
}

// The social framing of Section 4.3.
func ExampleSocialPhrase() {
	book := &model.Item{Title: "Oliver Twist", Creator: "Charles Dickens"}
	fmt.Println(explain.SocialPhrase(book))
	// Output:
	// People like you liked... Oliver Twist by Charles Dickens
}
