// Package explain is the heart of the reproduction: it generates
// user-facing explanations for recommendations in the three styles the
// survey's conclusion identifies —
//
//   - content-based: "We have recommended X because you liked Y"
//   - collaborative-based: "People who liked X also liked Y"
//   - preference-based: "Your interests suggest that you would like X"
//
// — plus confidence statements ("frank" systems, Section 2.3),
// trade-off explanations ("cheaper but lower resolution", Section 5.2)
// and the Herlocker et al. catalogue of 21 explanation interfaces used
// by the persuasion experiment (Section 3.4).
//
// Every explanation carries both rendered Text and typed Evidence so
// that presenters can re-render the same facts (as a histogram, a
// percentage table, a sentence) and the simulated-user laboratory can
// score how convincing and how faithful the explanation is.
package explain

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/content"
	"repro/internal/recsys/hybrid"
	"repro/internal/recsys/knowledge"
	"repro/internal/stats"
)

// Style is the content category of an explanation, following the
// survey's Tables 3-4 "Explanation" column.
type Style int

// Explanation styles.
const (
	ContentBased Style = iota
	CollaborativeBased
	PreferenceBased
)

func (s Style) String() string {
	switch s {
	case ContentBased:
		return "content-based"
	case CollaborativeBased:
		return "collaborative-based"
	case PreferenceBased:
		return "preference-based"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Evidence is the typed payload behind an explanation. Exactly the
// fields relevant to the generating style are populated.
type Evidence struct {
	// Histogram of neighbours' ratings (collaborative style).
	Histogram *stats.Histogram
	// Neighbors behind a user-based CF prediction.
	Neighbors []cf.UserNeighbor
	// SimilarItems behind an item-based CF prediction.
	SimilarItems []cf.ItemNeighbor
	// Influences of past ratings (content style, Figure 3).
	Influences []content.Influence
	// Keywords contributing to a content prediction.
	Keywords []content.KeywordContribution
	// Breakdown of a knowledge-based utility (preference style).
	Breakdown []knowledge.AttrScore
	// Tradeoffs against a reference item (critiquing).
	Tradeoffs []knowledge.Tradeoff
	// Sources of a hybrid prediction.
	Sources []hybrid.Contribution
	// Factors behind a matrix-factorisation prediction: the latent
	// dimensions where the user's taste vector and the item's factor
	// vector align (preference style, strongest first).
	Factors []recsys.FactorShare
}

// Explanation is one rendered justification for recommending an item
// to a user.
type Explanation struct {
	Style Style
	// Text is the natural-language rendering shown to the user.
	Text string
	// Detail is an optional multi-line elaboration (histogram art,
	// influence tables) shown when the interface has room for it.
	Detail string
	// Confidence is the recommender's confidence in the underlying
	// prediction, carried so "frank" interfaces can disclose it.
	Confidence float64
	// Faithful reports whether the explanation actually reflects the
	// evidence that produced the recommendation (true for everything
	// this package generates from live evidence; persuasion-experiment
	// boilerplate interfaces set it false). Effectiveness depends on
	// faithfulness; persuasion does not — that asymmetry is the
	// paper's Section 3.8 trade-off.
	Faithful bool
	// Evidence holds the structured payload the Text was rendered from.
	Evidence Evidence
	// Degraded reports that this explanation was produced by a cheaper
	// fallback path because the primary explainer was unavailable
	// (breaker open, deadline, panic). Degraded explanations are still
	// well-formed; the flag keeps the downgrade honest — the survey's
	// trust aim asks the system to admit its limits, not hide them.
	Degraded bool
	// ModelVersion is the serving model generation this explanation
	// was produced from, when the engine runs a versioned model
	// lifecycle (core.WithTrainer); 0 otherwise. It lets a client
	// correlate an answer with /debug/models across a background
	// retrain swap.
	ModelVersion uint64
}

// Explainer generates explanations for (user, item) pairs. Each
// recommender family has at least one Explainer over its evidence.
type Explainer interface {
	// Explain justifies recommending item to user u. Implementations
	// return ErrNoEvidence (possibly wrapped) when they cannot ground
	// an explanation in actual data.
	Explain(u model.UserID, item *model.Item) (*Explanation, error)
	// Style reports the explanation style this explainer produces.
	Style() Style
}

// ErrNoEvidence is returned when an explainer has no data to ground an
// explanation in. Callers may fall back to a vaguer style — but the
// fallback is explicit, never silent.
var ErrNoEvidence = errors.New("explain: no evidence for explanation")

// MatrixRebinder is the optional contract a custom Explainer implements
// to participate in snapshot-based concurrency (see DESIGN.md,
// "Concurrency model"): it returns an explainer equivalent to the
// receiver but grounded in m. The receiver must stay fully usable —
// readers of an older snapshot keep explaining from it — and the
// returned explainer must itself implement MatrixRebinder. Custom
// explainers installed on an engine without this interface are served
// behind a read-write lock instead of lock-free snapshots. The
// explainers in this package are rebuilt per snapshot by the engine
// itself and do not need it.
type MatrixRebinder interface {
	RebindMatrix(m *model.Matrix, touched ...model.UserID) Explainer
}

// countGoodBad splits neighbour ratings into the "good" (>= 4) and
// "bad" (<= 2) clusters of the winning Herlocker histogram interface.
func countGoodBad(neighbors []cf.UserNeighbor) (good, neutral, bad int) {
	for _, nb := range neighbors {
		switch {
		case nb.Rating >= 4:
			good++
		case nb.Rating <= 2:
			bad++
		default:
			neutral++
		}
	}
	return good, neutral, bad
}

// confidencePhrase renders a frank confidence statement (Section 2.3:
// "a user may appreciate when a system is frank and admits that it is
// not confident about a particular recommendation").
func confidencePhrase(conf float64) string {
	switch {
	case conf >= 0.75:
		return "We are confident in this recommendation."
	case conf >= 0.45:
		return "We are fairly sure about this recommendation."
	case conf >= 0.2:
		return "We are not very confident about this recommendation."
	default:
		return "This is a long shot: we have little data to go on."
	}
}

// WithFrankConfidence appends the confidence phrase to an explanation,
// returning the modified explanation for chaining.
func WithFrankConfidence(e *Explanation) *Explanation {
	e.Text = e.Text + " " + confidencePhrase(e.Confidence)
	return e
}

// ratedPhrase renders "4.5 stars" style fragments.
func ratedPhrase(v float64) string {
	return fmt.Sprintf("%.1f stars", v)
}

// Describe renders a one-line summary of a prediction for transcripts.
func Describe(item *model.Item, p recsys.Prediction) string {
	return fmt.Sprintf("%s — predicted %s (confidence %.0f%%)", item.Title, ratedPhrase(p.Score), p.Confidence*100)
}
