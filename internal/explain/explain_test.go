package explain

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/content"
)

func movieCommunity(t testing.TB) *dataset.Community {
	t.Helper()
	return dataset.Movies(dataset.Config{Seed: 101, Users: 60, Items: 80, RatingsPerUser: 20})
}

// pickExplainable returns a (user, item) pair for which the user-based
// CF model has neighbours and no self-rating.
func pickExplainable(t testing.TB, c *dataset.Community, knn *cf.UserKNN) (model.UserID, *model.Item) {
	t.Helper()
	for u := 1; u <= 20; u++ {
		uid := model.UserID(u)
		for _, it := range c.Catalog.Items() {
			if _, rated := c.Ratings.Get(uid, it.ID); rated {
				continue
			}
			if len(knn.Neighbors(uid, it.ID)) >= 5 {
				return uid, it
			}
		}
	}
	t.Fatal("no explainable pair found")
	return 0, nil
}

func TestStyleString(t *testing.T) {
	if ContentBased.String() != "content-based" ||
		CollaborativeBased.String() != "collaborative-based" ||
		PreferenceBased.String() != "preference-based" {
		t.Fatal("style strings")
	}
	if Style(9).String() == "" {
		t.Fatal("unknown style should stringify")
	}
}

func TestHistogramExplainer(t *testing.T) {
	c := movieCommunity(t)
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 15})
	u, it := pickExplainable(t, c, knn)
	e := NewHistogramExplainer(knn)
	if e.Style() != CollaborativeBased {
		t.Fatal("style")
	}
	exp, err := e.Explain(u, it)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, it.Title) {
		t.Fatalf("text does not cite the item: %q", exp.Text)
	}
	if !strings.Contains(exp.Text, "neighbours") {
		t.Fatalf("text = %q", exp.Text)
	}
	if exp.Evidence.Histogram == nil || exp.Evidence.Histogram.Total() != len(exp.Evidence.Neighbors) {
		t.Fatal("histogram evidence inconsistent with neighbours")
	}
	if exp.Detail == "" || !strings.Contains(exp.Detail, "#") {
		t.Fatalf("histogram detail missing:\n%s", exp.Detail)
	}
	if !exp.Faithful {
		t.Fatal("histogram explanations are grounded and must be faithful")
	}
}

func TestHistogramExplainerNoEvidence(t *testing.T) {
	c := movieCommunity(t)
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 15})
	it := c.Catalog.Items()[0]
	_, err := NewHistogramExplainer(knn).Explain(9999, it)
	if !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
}

func TestNeighborCountExplainer(t *testing.T) {
	c := movieCommunity(t)
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 15})
	u, it := pickExplainable(t, c, knn)
	exp, err := NewNeighborCountExplainer(knn).Explain(u, it)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, "similar to you") {
		t.Fatalf("text = %q", exp.Text)
	}
	if len(exp.Evidence.Neighbors) == 0 {
		t.Fatal("evidence missing")
	}
}

func TestItemSimilarityExplainer(t *testing.T) {
	c := movieCommunity(t)
	knn := cf.NewItemKNN(c.Ratings, c.Catalog, cf.Options{K: 10})
	e := NewItemSimilarityExplainer(knn, c.Catalog)
	var exp *Explanation
	var who model.UserID
	var target *model.Item
	// Find any pair with liked similar items.
	for u := 1; u <= 30 && exp == nil; u++ {
		for _, it := range c.Catalog.Items() {
			if _, rated := c.Ratings.Get(model.UserID(u), it.ID); rated {
				continue
			}
			if got, err := e.Explain(model.UserID(u), it); err == nil {
				exp, who, target = got, model.UserID(u), it
				break
			}
		}
	}
	if exp == nil {
		t.Fatal("no explainable pair for item similarity")
	}
	_ = who
	if !strings.Contains(exp.Text, "because you liked") {
		t.Fatalf("text = %q", exp.Text)
	}
	if !strings.Contains(exp.Text, target.Title) {
		t.Fatalf("text does not cite target: %q", exp.Text)
	}
	// Citation cap respected.
	if n := strings.Count(exp.Text, "\""); n > 2+2*e.MaxCited {
		t.Fatalf("too many citations in %q", exp.Text)
	}
	// All cited evidence items were liked (>= 4).
	for _, nb := range exp.Evidence.SimilarItems {
		if nb.Rating < 4 {
			t.Fatalf("cited item rated %.1f, must be liked", nb.Rating)
		}
	}
}

func TestSocialPhrase(t *testing.T) {
	it := &model.Item{Title: "Oliver Twist", Creator: "Charles Dickens"}
	got := SocialPhrase(it)
	if got != "People like you liked... Oliver Twist by Charles Dickens" {
		t.Fatalf("SocialPhrase = %q", got)
	}
	if SocialPhrase(&model.Item{Title: "X"}) != "People like you liked... X" {
		t.Fatal("creator-less phrase")
	}
}

func TestInfluenceExplainer(t *testing.T) {
	c := dataset.Books(dataset.Config{Seed: 103, Users: 40, Items: 60, RatingsPerUser: 15})
	b := content.NewBayes(c.Ratings, c.Catalog)
	e := NewInfluenceExplainer(b, c.Catalog)
	u := model.UserID(1)
	var target *model.Item
	for _, it := range c.Catalog.Items() {
		if _, rated := c.Ratings.Get(u, it.ID); !rated {
			target = it
			break
		}
	}
	exp, err := e.Explain(u, target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, "influenced this recommendation the most") {
		t.Fatalf("text = %q", exp.Text)
	}
	if !strings.Contains(exp.Detail, "Influence") {
		t.Fatalf("detail missing table:\n%s", exp.Detail)
	}
	if len(exp.Evidence.Influences) == 0 {
		t.Fatal("influence evidence missing")
	}
	// Detail table respects MaxRows.
	lines := strings.Count(exp.Detail, "\n")
	if lines > e.MaxRows+3 {
		t.Fatalf("detail too long (%d lines):\n%s", lines, exp.Detail)
	}
}

func TestInfluenceExplainerColdStart(t *testing.T) {
	c := dataset.Books(dataset.Config{Seed: 103, Users: 5, Items: 10, RatingsPerUser: 3})
	e := NewInfluenceExplainer(content.NewBayes(c.Ratings, c.Catalog), c.Catalog)
	if _, err := e.Explain(999, c.Catalog.Items()[0]); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeywordExplainer(t *testing.T) {
	cat := model.NewCatalog("movies")
	cat.MustAdd(&model.Item{ID: 1, Title: "A", Keywords: []string{"comedy"}})
	cat.MustAdd(&model.Item{ID: 2, Title: "B", Keywords: []string{"comedy"}})
	cat.MustAdd(&model.Item{ID: 3, Title: "C", Keywords: []string{"horror"}})
	cat.MustAdd(&model.Item{ID: 4, Title: "Candidate", Keywords: []string{"comedy"}})
	cat.MustAdd(&model.Item{ID: 5, Title: "Scary", Keywords: []string{"horror"}})
	m := model.NewMatrix()
	m.Set(1, 1, 5)
	m.Set(1, 2, 5)
	m.Set(1, 3, 1)
	b := content.NewBayes(m, cat)
	e := NewKeywordExplainer(b)
	pos, err := e.Explain(1, mustItem(t, cat, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pos.Text, "because you have liked comedy") {
		t.Fatalf("positive text = %q", pos.Text)
	}
	neg, err := e.Explain(1, mustItem(t, cat, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(neg.Text, "do not seem to like horror") {
		t.Fatalf("negative text = %q", neg.Text)
	}
}

func TestJoinAnd(t *testing.T) {
	if joinAnd(nil) != "" {
		t.Fatal("empty")
	}
	if joinAnd([]string{"a"}) != "a" {
		t.Fatal("one")
	}
	if joinAnd([]string{"a", "b"}) != "a and b" {
		t.Fatal("two")
	}
	if joinAnd([]string{"a", "b", "c"}) != "a, b and c" {
		t.Fatal("three")
	}
}

func TestConfidencePhrases(t *testing.T) {
	cases := []struct {
		conf float64
		want string
	}{
		{0.9, "confident"},
		{0.5, "fairly sure"},
		{0.3, "not very confident"},
		{0.05, "long shot"},
	}
	for _, c := range cases {
		if got := confidencePhrase(c.conf); !strings.Contains(got, c.want) {
			t.Fatalf("confidencePhrase(%v) = %q", c.conf, got)
		}
	}
	e := &Explanation{Text: "Base.", Confidence: 0.1}
	if got := WithFrankConfidence(e).Text; !strings.Contains(got, "long shot") {
		t.Fatalf("frank text = %q", got)
	}
}

func TestDescribe(t *testing.T) {
	it := &model.Item{Title: "X"}
	got := Describe(it, recsys.Prediction{Score: 4.25, Confidence: 0.8})
	if !strings.Contains(got, "X") || !strings.Contains(got, "4.2 stars") || !strings.Contains(got, "80%") {
		t.Fatalf("Describe = %q", got)
	}
}

func mustItem(t *testing.T, cat *model.Catalog, id model.ItemID) *model.Item {
	t.Helper()
	it, err := cat.Item(id)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestExplainerStyles(t *testing.T) {
	c := movieCommunity(t)
	uknn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 10})
	iknn := cf.NewItemKNN(c.Ratings, c.Catalog, cf.Options{K: 10})
	bayes := content.NewBayes(c.Ratings, c.Catalog)
	cases := []struct {
		ex   Explainer
		want Style
	}{
		{NewHistogramExplainer(uknn), CollaborativeBased},
		{NewNeighborCountExplainer(uknn), CollaborativeBased},
		{NewItemSimilarityExplainer(iknn, c.Catalog), ContentBased},
		{NewInfluenceExplainer(bayes, c.Catalog), ContentBased},
		{NewKeywordExplainer(bayes), ContentBased},
	}
	for _, tc := range cases {
		if got := tc.ex.Style(); got != tc.want {
			t.Errorf("%T.Style() = %v, want %v", tc.ex, got, tc.want)
		}
	}
}

func TestNeighborCountNoEvidence(t *testing.T) {
	c := movieCommunity(t)
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 10})
	if _, err := NewNeighborCountExplainer(knn).Explain(9999, c.Catalog.Items()[0]); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
}

func TestItemSimilarityNoLikedItems(t *testing.T) {
	// A user who hated everything has no liked items to cite.
	cat := model.NewCatalog("t")
	cat.MustAdd(&model.Item{ID: 1, Title: "a"})
	cat.MustAdd(&model.Item{ID: 2, Title: "b"})
	cat.MustAdd(&model.Item{ID: 3, Title: "c"})
	m := model.NewMatrix()
	for u := model.UserID(1); u <= 3; u++ {
		m.Set(u, 1, 1.5)
		m.Set(u, 2, 1)
		m.Set(u, 3, 2)
	}
	knn := cf.NewItemKNN(m, cat, cf.Options{K: 5, MinOverlap: 2})
	e := NewItemSimilarityExplainer(knn, cat)
	it, _ := cat.Item(3)
	if _, err := e.Explain(1, it); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeywordExplainerNoFeatures(t *testing.T) {
	cat := model.NewCatalog("t")
	cat.MustAdd(&model.Item{ID: 1, Keywords: []string{"a"}})
	cat.MustAdd(&model.Item{ID: 2}) // featureless candidate
	m := model.NewMatrix()
	m.Set(1, 1, 5)
	e := NewKeywordExplainer(content.NewBayes(m, cat))
	if _, err := e.Explain(1, mustItem(t, cat, 2)); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
	// Cold user.
	if _, err := e.Explain(9, mustItem(t, cat, 1)); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("cold err = %v", err)
	}
}

func TestInfluenceExplainerUnknownItem(t *testing.T) {
	c := movieCommunity(t)
	bayes := content.NewBayes(c.Ratings, c.Catalog)
	e := NewInfluenceExplainer(bayes, c.Catalog)
	if _, err := e.Explain(1, &model.Item{ID: 99999, Title: "ghost"}); err == nil {
		t.Fatal("unknown item accepted")
	}
}
