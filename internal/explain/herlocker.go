package explain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/stats"
)

// PersuasionEvidence bundles the live data available to a persuasion
// interface for one (user, item) pair: the CF neighbourhood, the
// system's prediction, catalogue facts and the system's historical
// accuracy for this user.
type PersuasionEvidence struct {
	Item       *model.Item
	Neighbors  []cf.UserNeighbor
	Prediction recsys.Prediction
	ItemAvg    float64 // community average rating of the item
	// PastAccuracy is the fraction of past predictions that were
	// within one star for this user ("MovieLens has predicted
	// correctly for you 80% of the time").
	PastAccuracy float64
}

// goodBadFractions summarises the neighbourhood.
func (ev PersuasionEvidence) goodBadFractions() (good, bad float64) {
	g, _, b := countGoodBad(ev.Neighbors)
	n := len(ev.Neighbors)
	if n == 0 {
		return 0, 0
	}
	return float64(g) / float64(n), float64(b) / float64(n)
}

// PersuasionInterface is one of the 21 explanation interfaces from
// Herlocker, Konstan & Riedl (2000), "Explaining collaborative
// filtering recommendations", as re-run by experiment E1 (Section 3.4
// of the survey). The original paper measured, for each interface, the
// mean likelihood (1-7) that users would see the movie; the clustered
// ratings histogram won, several data-free or confusing displays
// scored below the no-explanation base case.
//
// Exact wordings and screenshots are not reproducible from the survey,
// so each interface here is characterised by the two features the
// outcome shape depends on:
//
//   - Clarity: how easily a user decodes the display (confusing
//     interfaces annoy and depress acceptance);
//   - Support: the signed evidence strength in [-1, 1] the display
//     conveys for the item, computed from live evidence when the
//     display is grounded in data, fixed when it is boilerplate.
type PersuasionInterface struct {
	ID   int
	Name string
	// Clarity in [0, 1].
	Clarity float64
	// Grounded reports whether the display reflects per-user evidence.
	// Ungrounded displays (awards, critics) persuade but cannot inform,
	// which is exactly the persuasiveness/effectiveness trade-off of
	// Section 3.8.
	Grounded bool
	// boilerplate is the fixed support for ungrounded displays.
	boilerplate float64
	support     func(PersuasionEvidence) float64
	render      func(PersuasionEvidence) string
}

// Support returns the signed support in [-1, 1] the interface conveys.
func (pi PersuasionInterface) Support(ev PersuasionEvidence) float64 {
	if !pi.Grounded {
		return pi.boilerplate
	}
	s := pi.support(ev)
	if s > 1 {
		s = 1
	}
	if s < -1 {
		s = -1
	}
	return s
}

// Render produces the display text shown to the user.
func (pi PersuasionInterface) Render(ev PersuasionEvidence) string {
	if pi.render == nil {
		return ""
	}
	return pi.render(ev)
}

// scoreSupport maps a rating-scale value onto [-1, 1] around the
// midpoint.
func scoreSupport(v float64) float64 {
	return (v - 3) / 2
}

// Herlocker21 returns the interface catalogue, ordered by ID. ID 21 is
// the no-explanation base case.
func Herlocker21() []PersuasionInterface {
	// The clustered display communicates the *ratio* of the good to the
	// bad cluster (neutral ratings visually recede), so its support is
	// (good-bad)/(good+bad).
	histSupport := func(ev PersuasionEvidence) float64 {
		good, bad := ev.goodBadFractions()
		if good+bad == 0 {
			return 0
		}
		return (good - bad) / (good + bad)
	}
	ifaces := []PersuasionInterface{
		{
			ID: 1, Name: "histogram-grouped", Clarity: 0.95, Grounded: true,
			support: histSupport,
			render: func(ev PersuasionEvidence) string {
				g, n, b := countGoodBad(ev.Neighbors)
				hist := stats.NewHistogram(model.MinRating, model.MaxRating, 5)
				for _, nb := range ev.Neighbors {
					hist.Add(nb.Rating)
				}
				return fmt.Sprintf("Your neighbours' ratings for %q (good: %d, neutral: %d, bad: %d)\n%s",
					ev.Item.Title, g, n, b, hist.Render(24))
			},
		},
		{
			ID: 2, Name: "past-performance", Clarity: 0.9, Grounded: true,
			support: func(ev PersuasionEvidence) float64 {
				return (ev.PastAccuracy*2 - 1) * scoreSupport(ev.Prediction.Score)
			},
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("MovieLens has predicted correctly for you %.0f%% of the time in the past.",
					ev.PastAccuracy*100)
			},
		},
		{
			ID: 3, Name: "neighbor-count", Clarity: 0.85, Grounded: true,
			support: func(ev PersuasionEvidence) float64 {
				good, _ := ev.goodBadFractions()
				return good
			},
			render: func(ev PersuasionEvidence) string {
				g, _, _ := countGoodBad(ev.Neighbors)
				return fmt.Sprintf("%d of your %d nearest neighbours rated %q 4 stars or above.",
					g, len(ev.Neighbors), ev.Item.Title)
			},
		},
		{
			ID: 4, Name: "histogram-ungrouped", Clarity: 0.7, Grounded: true,
			support: histSupport,
			render: func(ev PersuasionEvidence) string {
				hist := stats.NewHistogram(model.MinRating, model.MaxRating, 9)
				for _, nb := range ev.Neighbors {
					hist.Add(nb.Rating)
				}
				return hist.Render(24)
			},
		},
		{
			ID: 5, Name: "neighbor-table", Clarity: 0.5, Grounded: true,
			support: histSupport,
			render: func(ev PersuasionEvidence) string {
				var b strings.Builder
				fmt.Fprintf(&b, "Neighbour ratings for %q:\n", ev.Item.Title)
				for _, nb := range ev.Neighbors {
					fmt.Fprintf(&b, "  user %4d  sim %.2f  rated %.1f\n", nb.User, nb.Similarity, nb.Rating)
				}
				return b.String()
			},
		},
		{
			ID: 6, Name: "similar-items", Clarity: 0.8, Grounded: true,
			support: func(ev PersuasionEvidence) float64 { return scoreSupport(ev.Prediction.Score) },
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("%q is similar to other items you have rated highly.", ev.Item.Title)
			},
		},
		{
			ID: 7, Name: "favourite-creator", Clarity: 0.75, Grounded: true,
			support: func(ev PersuasionEvidence) float64 { return 0.6 * scoreSupport(ev.Prediction.Score) },
			render: func(ev PersuasionEvidence) string {
				if ev.Item.Creator == "" {
					return fmt.Sprintf("%q features contributors you have liked.", ev.Item.Title)
				}
				return fmt.Sprintf("%q is by %s, whose work you have liked.", ev.Item.Title, ev.Item.Creator)
			},
		},
		{
			ID: 8, Name: "confidence-display", Clarity: 0.7, Grounded: true,
			support: func(ev PersuasionEvidence) float64 {
				return ev.Prediction.Confidence * scoreSupport(ev.Prediction.Score)
			},
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("Predicted %.1f stars with %.0f%% confidence.",
					ev.Prediction.Score, ev.Prediction.Confidence*100)
			},
		},
		{
			ID: 9, Name: "won-awards", Clarity: 0.8, Grounded: false, boilerplate: 0.35,
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("%q has won several awards.", ev.Item.Title)
			},
		},
		{
			ID: 10, Name: "average-rating", Clarity: 0.85, Grounded: true,
			support: func(ev PersuasionEvidence) float64 { return scoreSupport(ev.ItemAvg) },
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("The average rating of %q is %.1f stars.", ev.Item.Title, ev.ItemAvg)
			},
		},
		{
			ID: 11, Name: "predicted-rating", Clarity: 0.8, Grounded: true,
			support: func(ev PersuasionEvidence) float64 { return scoreSupport(ev.Prediction.Score) },
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("MovieLens predicts you would rate %q %.1f stars.", ev.Item.Title, ev.Prediction.Score)
			},
		},
		{
			ID: 12, Name: "closest-neighbor-quote", Clarity: 0.75, Grounded: true,
			support: func(ev PersuasionEvidence) float64 {
				if len(ev.Neighbors) == 0 {
					return 0
				}
				return scoreSupport(ev.Neighbors[0].Rating)
			},
			render: func(ev PersuasionEvidence) string {
				if len(ev.Neighbors) == 0 {
					return ""
				}
				return fmt.Sprintf("The user most similar to you rated %q %.1f stars.",
					ev.Item.Title, ev.Neighbors[0].Rating)
			},
		},
		{
			ID: 13, Name: "percent-liked", Clarity: 0.85, Grounded: true,
			support: func(ev PersuasionEvidence) float64 {
				good, _ := ev.goodBadFractions()
				return good*2 - 1
			},
			render: func(ev PersuasionEvidence) string {
				good, _ := ev.goodBadFractions()
				return fmt.Sprintf("%.0f%% of users like you liked %q.", good*100, ev.Item.Title)
			},
		},
		{
			ID: 14, Name: "critics-score", Clarity: 0.8, Grounded: false, boilerplate: 0.3,
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("Critics praise %q.", ev.Item.Title)
			},
		},
		{
			ID: 15, Name: "recommend-count", Clarity: 0.7, Grounded: true,
			support: func(ev PersuasionEvidence) float64 {
				n := float64(len(ev.Neighbors)) / 20
				if n > 1 {
					n = 1
				}
				return 0.5 * n
			},
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("%d users contributed to this recommendation.", len(ev.Neighbors))
			},
		},
		{
			ID: 16, Name: "demographic-match", Clarity: 0.6, Grounded: false, boilerplate: 0.15,
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("%q is popular among people with your profile.", ev.Item.Title)
			},
		},
		{
			ID: 17, Name: "popularity", Clarity: 0.8, Grounded: true,
			support: func(ev PersuasionEvidence) float64 { return ev.Item.Popularity - 0.3 },
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("%q is one of the most viewed items this week.", ev.Item.Title)
			},
		},
		{
			ID: 18, Name: "genre-match", Clarity: 0.75, Grounded: true,
			support: func(ev PersuasionEvidence) float64 { return 0.5 * scoreSupport(ev.Prediction.Score) },
			render: func(ev PersuasionEvidence) string {
				return fmt.Sprintf("%q matches the genres you watch most.", ev.Item.Title)
			},
		},
		{
			ID: 19, Name: "correlation-graph", Clarity: 0.15, Grounded: true,
			support: histSupport,
			render: func(ev PersuasionEvidence) string {
				var b strings.Builder
				b.WriteString("Neighbour correlation scatter (sim vs rating):\n")
				for _, nb := range ev.Neighbors {
					fmt.Fprintf(&b, "  (%.3f, %.2f)", nb.Similarity, nb.Rating)
				}
				b.WriteByte('\n')
				return b.String()
			},
		},
		{
			ID: 20, Name: "raw-data-dump", Clarity: 0.05, Grounded: true,
			support: histSupport,
			render: func(ev PersuasionEvidence) string {
				var b strings.Builder
				b.WriteString("DEBUG neighbourhood state:\n")
				for _, nb := range ev.Neighbors {
					fmt.Fprintf(&b, "u=%d;s=%.6f;r=%.2f|", nb.User, nb.Similarity, nb.Rating)
				}
				b.WriteByte('\n')
				return b.String()
			},
		},
		{
			ID: 21, Name: "no-explanation", Clarity: 1, Grounded: false, boilerplate: 0,
			render: func(ev PersuasionEvidence) string { return "" },
		},
	}
	sort.Slice(ifaces, func(a, b int) bool { return ifaces[a].ID < ifaces[b].ID })
	return ifaces
}

// BaseInterfaceID is the no-explanation control condition in
// Herlocker21.
const BaseInterfaceID = 21
