package explain

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/hybrid"
)

func sampleEvidence(good, bad int) PersuasionEvidence {
	var nbs []cf.UserNeighbor
	id := model.UserID(1)
	for i := 0; i < good; i++ {
		nbs = append(nbs, cf.UserNeighbor{User: id, Similarity: 0.9, Rating: 4.5})
		id++
	}
	for i := 0; i < bad; i++ {
		nbs = append(nbs, cf.UserNeighbor{User: id, Similarity: 0.8, Rating: 1.5})
		id++
	}
	return PersuasionEvidence{
		Item:         &model.Item{ID: 7, Title: "The Crimson Harbor", Creator: "A. Calder", Popularity: 0.8},
		Neighbors:    nbs,
		Prediction:   recsys.Prediction{Item: 7, Score: 4.2, Confidence: 0.7},
		ItemAvg:      4.0,
		PastAccuracy: 0.8,
	}
}

func TestHerlocker21Complete(t *testing.T) {
	ifaces := Herlocker21()
	if len(ifaces) != 21 {
		t.Fatalf("got %d interfaces, want 21", len(ifaces))
	}
	seen := map[int]bool{}
	names := map[string]bool{}
	for i, pi := range ifaces {
		if pi.ID != i+1 {
			t.Fatalf("interfaces not ordered by ID: index %d has ID %d", i, pi.ID)
		}
		if seen[pi.ID] || names[pi.Name] {
			t.Fatalf("duplicate interface %d %q", pi.ID, pi.Name)
		}
		seen[pi.ID] = true
		names[pi.Name] = true
		if pi.Clarity < 0 || pi.Clarity > 1 {
			t.Fatalf("%s clarity %v out of range", pi.Name, pi.Clarity)
		}
	}
	if ifaces[BaseInterfaceID-1].Name != "no-explanation" {
		t.Fatalf("base interface = %q", ifaces[BaseInterfaceID-1].Name)
	}
}

func TestSupportBoundsAllInterfaces(t *testing.T) {
	evs := []PersuasionEvidence{
		sampleEvidence(10, 0),
		sampleEvidence(0, 10),
		sampleEvidence(5, 5),
		sampleEvidence(0, 0),
	}
	for _, pi := range Herlocker21() {
		for _, ev := range evs {
			s := pi.Support(ev)
			if s < -1 || s > 1 {
				t.Fatalf("%s support %v out of [-1,1]", pi.Name, s)
			}
		}
	}
}

func TestHistogramInterfaceTracksEvidence(t *testing.T) {
	ifaces := Herlocker21()
	hist := ifaces[0]
	if hist.Name != "histogram-grouped" {
		t.Fatalf("interface 1 = %q", hist.Name)
	}
	sGood := hist.Support(sampleEvidence(10, 0))
	sBad := hist.Support(sampleEvidence(0, 10))
	if sGood <= 0 || sBad >= 0 {
		t.Fatalf("grouped histogram support: good=%v bad=%v", sGood, sBad)
	}
	if sGood != 1 || sBad != -1 {
		t.Fatalf("pure neighbourhoods should saturate support: %v, %v", sGood, sBad)
	}
}

func TestUngroundedInterfacesIgnoreEvidence(t *testing.T) {
	for _, pi := range Herlocker21() {
		if pi.Grounded {
			continue
		}
		a := pi.Support(sampleEvidence(10, 0))
		b := pi.Support(sampleEvidence(0, 10))
		if a != b {
			t.Fatalf("ungrounded %s changed support with evidence: %v vs %v", pi.Name, a, b)
		}
	}
}

func TestBaseInterfaceZeroSupportEmptyRender(t *testing.T) {
	base := Herlocker21()[BaseInterfaceID-1]
	ev := sampleEvidence(8, 2)
	if base.Support(ev) != 0 {
		t.Fatalf("base support = %v", base.Support(ev))
	}
	if base.Render(ev) != "" {
		t.Fatalf("base render = %q", base.Render(ev))
	}
}

func TestAllRendersProduceText(t *testing.T) {
	ev := sampleEvidence(8, 2)
	for _, pi := range Herlocker21() {
		if pi.ID == BaseInterfaceID {
			continue
		}
		out := pi.Render(ev)
		if out == "" {
			t.Fatalf("%s rendered empty display", pi.Name)
		}
	}
	// A few spot checks on wording.
	byName := map[string]PersuasionInterface{}
	for _, pi := range Herlocker21() {
		byName[pi.Name] = pi
	}
	if got := byName["past-performance"].Render(ev); !strings.Contains(got, "80%") {
		t.Fatalf("past-performance = %q", got)
	}
	if got := byName["favourite-creator"].Render(ev); !strings.Contains(got, "A. Calder") {
		t.Fatalf("favourite-creator = %q", got)
	}
	if got := byName["average-rating"].Render(ev); !strings.Contains(got, "4.0") {
		t.Fatalf("average-rating = %q", got)
	}
}

func TestClosestNeighborQuoteEmptyNeighborhood(t *testing.T) {
	var quote PersuasionInterface
	for _, pi := range Herlocker21() {
		if pi.Name == "closest-neighbor-quote" {
			quote = pi
		}
	}
	ev := sampleEvidence(0, 0)
	if quote.Support(ev) != 0 {
		t.Fatal("empty neighbourhood should give zero support")
	}
	if quote.Render(ev) != "" {
		t.Fatal("empty neighbourhood should render nothing")
	}
}

func TestHybridExplainerDelegatesToDominantSource(t *testing.T) {
	cat := model.NewCatalog("t")
	it := &model.Item{ID: 1, Title: "X"}
	cat.MustAdd(it)
	strong := hybrid.Source{Name: "strong", Weight: 3, Predictor: constPredictor{score: 4.5, conf: 0.9}}
	weak := hybrid.Source{Name: "weak", Weight: 1, Predictor: constPredictor{score: 2, conf: 0.2}}
	h := hybrid.New(cat, strong, weak)
	e := NewHybridExplainer(h, map[string]Explainer{
		"strong": stubExplainer{text: "from strong"},
		"weak":   stubExplainer{text: "from weak"},
	})
	exp, err := e.Explain(1, it)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Text != "from strong" {
		t.Fatalf("delegated to wrong source: %q", exp.Text)
	}
	if len(exp.Evidence.Sources) != 2 {
		t.Fatal("provenance not attached")
	}
}

func TestHybridExplainerFallsBackToGeneric(t *testing.T) {
	cat := model.NewCatalog("t")
	it := &model.Item{ID: 1, Title: "X"}
	cat.MustAdd(it)
	h := hybrid.New(cat, hybrid.Source{Name: "s", Weight: 1, Predictor: constPredictor{score: 4, conf: 0.5}})
	e := NewHybridExplainer(h, map[string]Explainer{
		"s": stubExplainer{err: ErrNoEvidence},
	})
	exp, err := e.Explain(1, it)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, "Your interests suggest") {
		t.Fatalf("generic fallback missing: %q", exp.Text)
	}
	if e.Style() != PreferenceBased {
		t.Fatal("style")
	}
}

func TestHybridExplainerUsesConfiguredFallback(t *testing.T) {
	cat := model.NewCatalog("t")
	it := &model.Item{ID: 1, Title: "X"}
	cat.MustAdd(it)
	h := hybrid.New(cat, hybrid.Source{Name: "s", Weight: 1, Predictor: constPredictor{score: 4, conf: 0.5}})
	e := NewHybridExplainer(h, nil)
	e.Fallback = stubExplainer{text: "fallback text"}
	exp, err := e.Explain(1, it)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Text != "fallback text" {
		t.Fatalf("text = %q", exp.Text)
	}
}

type constPredictor struct{ score, conf float64 }

func (p constPredictor) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	return recsys.Prediction{Item: i, Score: p.score, Confidence: p.conf}, nil
}

type stubExplainer struct {
	text string
	err  error
}

func (s stubExplainer) Explain(model.UserID, *model.Item) (*Explanation, error) {
	if s.err != nil {
		return nil, s.err
	}
	return &Explanation{Style: ContentBased, Text: s.text, Faithful: true}, nil
}

func (s stubExplainer) Style() Style { return ContentBased }
