package explain

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/recsys/hybrid"
)

// HybridExplainer explains hybrid recommendations by delegating to the
// explainer of the ensemble's dominant source — so a recommendation
// that is mostly collaborative evidence gets a collaborative
// explanation, not a vague generic one.
type HybridExplainer struct {
	h *hybrid.Hybrid
	// bysource maps source names (hybrid.Source.Name) to explainers.
	bySource map[string]Explainer
	// Fallback is used when the dominant source has no registered
	// explainer or its explainer has no evidence. Optional.
	Fallback Explainer
}

// NewHybridExplainer builds an explainer for h. bySource maps source
// names to the explainer for that source's evidence.
func NewHybridExplainer(h *hybrid.Hybrid, bySource map[string]Explainer) *HybridExplainer {
	return &HybridExplainer{h: h, bySource: bySource}
}

// Style reports the preference-based style: the hybrid's own framing
// is "your interests suggest X", refined per-call by delegation.
func (e *HybridExplainer) Style() Style { return PreferenceBased }

// Explain implements Explainer.
func (e *HybridExplainer) Explain(u model.UserID, item *model.Item) (*Explanation, error) {
	pred, contribs, err := e.h.Provenance(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("hybrid provenance for item %d: %w (%v)", item.ID, ErrNoEvidence, err)
	}
	dom, err := hybrid.Dominant(contribs)
	if err != nil {
		return nil, fmt.Errorf("item %d: %w (%v)", item.ID, ErrNoEvidence, err)
	}
	if sub, ok := e.bySource[dom.Name]; ok {
		if exp, err := sub.Explain(u, item); err == nil {
			exp.Evidence.Sources = contribs
			return exp, nil
		}
	}
	if e.Fallback != nil {
		if exp, err := e.Fallback.Explain(u, item); err == nil {
			exp.Evidence.Sources = contribs
			return exp, nil
		}
	}
	// Last resort: the honest generic preference-based sentence.
	return &Explanation{
		Style:      PreferenceBased,
		Text:       fmt.Sprintf("Your interests suggest that you would like %q.", item.Title),
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence:   Evidence{Sources: contribs},
	}, nil
}
