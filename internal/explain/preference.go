package explain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/recsys/content"
	"repro/internal/recsys/knowledge"
)

// ProfileExplainer renders preference-based explanations from a
// keyword profile, reproducing the survey's Section 4 worked examples:
//
//	"You have been watching a lot of sport, and football in
//	particular. This is the most popular and recent item from the
//	football section."
//
// and, for low predictions (Section 4.4),
//
//	"This is a sport item, but it is about hockey. You do not seem
//	to like hockey!"
type ProfileExplainer struct {
	rec *content.KeywordRecommender
}

// NewProfileExplainer builds a profile explainer over a keyword
// recommender.
func NewProfileExplainer(rec *content.KeywordRecommender) *ProfileExplainer {
	return &ProfileExplainer{rec: rec}
}

// Style implements Explainer.
func (e *ProfileExplainer) Style() Style { return PreferenceBased }

// Explain implements Explainer, producing the positive justification.
func (e *ProfileExplainer) Explain(u model.UserID, item *model.Item) (*Explanation, error) {
	profile, err := e.rec.ProfileFor(u)
	if err != nil {
		return nil, fmt.Errorf("profile for user %d: %w (%v)", u, ErrNoEvidence, err)
	}
	liked := likedItemKeywords(profile, item)
	if len(liked) == 0 {
		return nil, fmt.Errorf("user %d, item %d: no liked features: %w", u, item.ID, ErrNoEvidence)
	}
	pred, err := e.rec.Predict(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("predicting item %d: %w", item.ID, err)
	}
	var text string
	if len(liked) >= 2 {
		// Broad interest plus a sharper one: the paper's exact shape.
		text = fmt.Sprintf("You have been watching a lot of %s, and %s in particular. %s",
			liked[0].Keyword, liked[1].Keyword, qualityClause(item, liked[1].Keyword))
	} else {
		text = fmt.Sprintf("You have been watching a lot of %s. %s",
			liked[0].Keyword, qualityClause(item, liked[0].Keyword))
	}
	return &Explanation{
		Style:      PreferenceBased,
		Text:       text,
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence:   Evidence{Keywords: toContributions(liked)},
	}, nil
}

// ExplainLow justifies a *low* prediction: the Section 4.4 example of
// a user asking why local hockey results are predicted poorly. It
// returns ErrNoEvidence when no disliked feature explains the score.
func (e *ProfileExplainer) ExplainLow(u model.UserID, item *model.Item) (*Explanation, error) {
	profile, err := e.rec.ProfileFor(u)
	if err != nil {
		return nil, fmt.Errorf("profile for user %d: %w (%v)", u, ErrNoEvidence, err)
	}
	var worst string
	worstW := 0.0
	var context string
	for _, k := range item.Keywords {
		w, ok := profile.Weights[k]
		if !ok {
			continue
		}
		if w < worstW {
			worst, worstW = k, w
		}
		if w > likedWeight && context == "" {
			context = k
		}
	}
	if worst == "" {
		return nil, fmt.Errorf("user %d, item %d: no disliked features: %w", u, item.ID, ErrNoEvidence)
	}
	pred, err := e.rec.Predict(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("predicting item %d: %w", item.ID, err)
	}
	var text string
	if context != "" {
		text = fmt.Sprintf("This is a %s item, but it is about %s. You do not seem to like %s!",
			context, worst, worst)
	} else {
		text = fmt.Sprintf("This item is about %s, and you do not seem to like %s.", worst, worst)
	}
	return &Explanation{
		Style:      PreferenceBased,
		Text:       text,
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence: Evidence{Keywords: []content.KeywordContribution{
			{Keyword: worst, Weight: worstW},
		}},
	}, nil
}

// likedWeight is the profile weight above which a keyword counts as a
// liked interest for explanation text. Profiles are normalised to
// [-1, 1], and broad topics (sport) dilute across many items, so the
// bar is deliberately low.
const likedWeight = 0.1

// likedItemKeywords returns the item's keywords the profile likes
// (weight > likedWeight), sorted ascending by weight so the broader,
// weaker interest precedes the sharper one — matching "a lot of
// sport, and football in particular".
func likedItemKeywords(p *content.Profile, item *model.Item) []content.KeywordContribution {
	var out []content.KeywordContribution
	for _, k := range item.Keywords {
		if w, ok := p.Weights[k]; ok && w > likedWeight {
			out = append(out, content.KeywordContribution{Keyword: k, Weight: w})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Weight != out[b].Weight {
			return out[a].Weight < out[b].Weight
		}
		return out[a].Keyword < out[b].Keyword
	})
	return out
}

func toContributions(ks []content.KeywordContribution) []content.KeywordContribution {
	return append([]content.KeywordContribution(nil), ks...)
}

// qualityClause renders the trailing sentence citing popularity and
// recency, e.g. "This is the most popular and recent item from the
// football section."
func qualityClause(item *model.Item, keyword string) string {
	switch {
	case item.Popularity > 0.5 && item.Recency > 0.5:
		return fmt.Sprintf("This is the most popular and recent item from the %s section.", keyword)
	case item.Popularity > 0.5:
		return fmt.Sprintf("This is one of the most popular %s items.", keyword)
	case item.Recency > 0.5:
		return fmt.Sprintf("This is one of the newest %s items.", keyword)
	default:
		return fmt.Sprintf("It is a %s item you have not seen yet.", keyword)
	}
}

// UtilityExplainer renders preference-based explanations for
// knowledge-based (MAUT) recommendations: which requirements the item
// satisfies and where it falls short.
type UtilityExplainer struct {
	cat *model.Catalog
}

// NewUtilityExplainer builds a utility explainer over cat's schema.
func NewUtilityExplainer(cat *model.Catalog) *UtilityExplainer {
	return &UtilityExplainer{cat: cat}
}

// Style reports the produced style.
func (e *UtilityExplainer) Style() Style { return PreferenceBased }

// ExplainScored justifies one knowledge.ScoredItem. (The Explainer
// interface does not fit here: knowledge-based recommendation has no
// persistent user ID, only stated preferences, so the scored item is
// passed directly.)
func (e *UtilityExplainer) ExplainScored(s knowledge.ScoredItem) (*Explanation, error) {
	if len(s.Breakdown) == 0 {
		return nil, fmt.Errorf("item %d has no utility breakdown: %w", s.Item.ID, ErrNoEvidence)
	}
	sorted := append([]knowledge.AttrScore(nil), s.Breakdown...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Score != sorted[b].Score {
			return sorted[a].Score > sorted[b].Score
		}
		return sorted[a].Attr < sorted[b].Attr
	})
	var strong, weak []string
	for _, as := range sorted {
		switch {
		case as.Score >= 0.75:
			strong = append(strong, as.Attr)
		case as.Score <= 0.4:
			weak = append(weak, as.Attr)
		}
	}
	var text string
	switch {
	case len(strong) > 0 && len(weak) > 0:
		text = fmt.Sprintf("%q matches your requirements on %s (%.0f%% overall), but is weaker on %s.",
			s.Item.Title, joinAnd(strong), s.Utility*100, joinAnd(weak))
	case len(strong) > 0:
		text = fmt.Sprintf("%q matches your requirements on %s (%.0f%% overall).",
			s.Item.Title, joinAnd(strong), s.Utility*100)
	default:
		text = fmt.Sprintf("%q is the best compromise available (%.0f%% match), though no single requirement is fully met.",
			s.Item.Title, s.Utility*100)
	}
	return &Explanation{
		Style:      PreferenceBased,
		Text:       text,
		Confidence: s.Utility,
		Faithful:   true,
		Evidence:   Evidence{Breakdown: s.Breakdown},
	}, nil
}

// TradeoffPhrase renders the McCarthy-style compound critique label
// for an alternative relative to a reference item: "Less Memory and
// Lower Resolution and Cheaper". Same-direction attributes are
// skipped; it returns "" when nothing differs.
func TradeoffPhrase(tradeoffs []knowledge.Tradeoff) string {
	var parts []string
	for _, to := range tradeoffs {
		if to.Direction == knowledge.Same {
			continue
		}
		parts = append(parts, to.Phrase)
	}
	return strings.Join(parts, " and ")
}

// ExplainTradeoffs renders a full trade-off explanation of alt against
// ref, e.g. "Compared with the Vanta D-101, this camera is Cheaper and
// Lighter, but has Lower Resolution."
func ExplainTradeoffs(cat *model.Catalog, ref, alt *model.Item) (*Explanation, error) {
	tos := knowledge.Compare(cat, ref, alt)
	var gains, losses []string
	for _, to := range tos {
		switch to.Direction {
		case knowledge.Better:
			gains = append(gains, to.Phrase)
		case knowledge.Worse:
			losses = append(losses, to.Phrase)
		case knowledge.Different:
			gains = append(gains, to.Phrase)
		}
	}
	if len(gains)+len(losses) == 0 {
		return nil, fmt.Errorf("items %d and %d do not differ: %w", ref.ID, alt.ID, ErrNoEvidence)
	}
	var text string
	switch {
	case len(gains) > 0 && len(losses) > 0:
		text = fmt.Sprintf("Compared with %q, %q is %s, but %s.",
			ref.Title, alt.Title, joinAnd(gains), joinAnd(losses))
	case len(gains) > 0:
		text = fmt.Sprintf("Compared with %q, %q is %s.", ref.Title, alt.Title, joinAnd(gains))
	default:
		text = fmt.Sprintf("Compared with %q, %q is %s.", ref.Title, alt.Title, joinAnd(losses))
	}
	return &Explanation{
		Style:    PreferenceBased,
		Text:     text,
		Faithful: true,
		Evidence: Evidence{Tradeoffs: tos},
	}, nil
}
