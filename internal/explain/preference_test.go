package explain

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys/content"
	"repro/internal/recsys/knowledge"
)

// newsFanFixture builds the paper's football-and-technology running
// example: a user whose history is heavy on sport/football.
func newsFanFixture() (*model.Matrix, *model.Catalog, model.UserID) {
	cat := model.NewCatalog("news")
	add := func(id model.ItemID, title string, pop, rec float64, kws ...string) {
		cat.MustAdd(&model.Item{ID: id, Title: title, Keywords: kws, Popularity: pop, Recency: rec})
	}
	add(1, "World cup qualifier report", 0.9, 0.9, "sport", "football")
	add(2, "League results roundup", 0.7, 0.8, "sport", "football")
	add(3, "Transfer window rumours", 0.6, 0.7, "sport", "football")
	add(4, "Hockey semifinal", 0.6, 0.7, "sport", "hockey")
	add(5, "Gadget of the day", 0.5, 0.9, "technology", "gadgets")
	add(6, "Election coverage", 0.5, 0.5, "politics", "elections")
	add(7, "World cup final preview", 0.95, 0.95, "sport", "football") // candidate
	add(8, "Local hockey results", 0.4, 0.6, "sport", "hockey")        // candidate, disliked subtopic
	add(9, "Space telescope images", 0.5, 0.5, "science", "space")     // unknown topic
	m := model.NewMatrix()
	u := model.UserID(1)
	m.Set(u, 1, 5)
	m.Set(u, 2, 5)
	m.Set(u, 3, 5)
	m.Set(u, 4, 3)
	m.Set(u, 5, 4.5)
	m.Set(u, 6, 2.5)
	return m, cat, u
}

func TestProfileExplainerPositive(t *testing.T) {
	m, cat, u := newsFanFixture()
	e := NewProfileExplainer(content.NewKeywordRecommender(m, cat))
	if e.Style() != PreferenceBased {
		t.Fatal("style")
	}
	exp, err := e.Explain(u, mustItem(t, cat, 7))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: broad interest first, sharper one second.
	if !strings.Contains(exp.Text, "a lot of sport, and football in particular") {
		t.Fatalf("text = %q", exp.Text)
	}
	if !strings.Contains(exp.Text, "most popular and recent item from the football section") {
		t.Fatalf("quality clause missing: %q", exp.Text)
	}
	if !exp.Faithful {
		t.Fatal("profile explanations are grounded")
	}
}

func TestProfileExplainerLow(t *testing.T) {
	m, cat, u := newsFanFixture()
	e := NewProfileExplainer(content.NewKeywordRecommender(m, cat))
	exp, err := e.ExplainLow(u, mustItem(t, cat, 8))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Text != "This is a sport item, but it is about hockey. You do not seem to like hockey!" {
		t.Fatalf("text = %q", exp.Text)
	}
}

func TestProfileExplainerNoEvidence(t *testing.T) {
	m, cat, u := newsFanFixture()
	e := NewProfileExplainer(content.NewKeywordRecommender(m, cat))
	// Item 9's topic (science/space) is unknown to the profile.
	if _, err := e.Explain(u, mustItem(t, cat, 9)); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("positive err = %v", err)
	}
	if _, err := e.ExplainLow(u, mustItem(t, cat, 9)); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("low err = %v", err)
	}
	// Unknown user.
	if _, err := e.Explain(999, mustItem(t, cat, 7)); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("cold err = %v", err)
	}
}

func TestQualityClauseVariants(t *testing.T) {
	cases := []struct {
		pop, rec float64
		want     string
	}{
		{0.9, 0.9, "most popular and recent"},
		{0.9, 0.1, "most popular"},
		{0.1, 0.9, "newest"},
		{0.1, 0.1, "not seen yet"},
	}
	for _, c := range cases {
		it := &model.Item{Popularity: c.pop, Recency: c.rec}
		if got := qualityClause(it, "football"); !strings.Contains(got, c.want) {
			t.Fatalf("qualityClause(pop=%v, rec=%v) = %q", c.pop, c.rec, got)
		}
	}
}

func TestUtilityExplainerStrongAndWeak(t *testing.T) {
	cat := model.NewCatalog("cameras",
		model.AttrDef{Name: "price", Kind: model.Numeric, LessIsBetter: true},
		model.AttrDef{Name: "resolution", Kind: model.Numeric},
	)
	it := &model.Item{ID: 1, Title: "Axiom C-100"}
	e := NewUtilityExplainer(cat)
	if e.Style() != PreferenceBased {
		t.Fatal("style")
	}
	exp, err := e.ExplainScored(knowledge.ScoredItem{
		Item:    it,
		Utility: 0.7,
		Breakdown: []knowledge.AttrScore{
			{Attr: "price", Score: 0.95, Weight: 1},
			{Attr: "resolution", Score: 0.2, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, "matches your requirements on price") {
		t.Fatalf("text = %q", exp.Text)
	}
	if !strings.Contains(exp.Text, "weaker on resolution") {
		t.Fatalf("text = %q", exp.Text)
	}
	if !strings.Contains(exp.Text, "70%") {
		t.Fatalf("utility percent missing: %q", exp.Text)
	}
}

func TestUtilityExplainerNoBreakdown(t *testing.T) {
	e := NewUtilityExplainer(model.NewCatalog("x"))
	_, err := e.ExplainScored(knowledge.ScoredItem{Item: &model.Item{ID: 1}})
	if !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
}

func TestUtilityExplainerAllWeak(t *testing.T) {
	e := NewUtilityExplainer(model.NewCatalog("x"))
	exp, err := e.ExplainScored(knowledge.ScoredItem{
		Item:    &model.Item{ID: 1, Title: "Meh"},
		Utility: 0.3,
		Breakdown: []knowledge.AttrScore{
			{Attr: "price", Score: 0.3, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, "best compromise") {
		t.Fatalf("text = %q", exp.Text)
	}
}

func TestTradeoffPhraseMatchesPaperExample(t *testing.T) {
	// The survey quotes Qwikshop: "Less Memory and Lower Resolution and
	// Cheaper". Build two cameras with exactly those differences.
	cat := model.NewCatalog("cameras",
		model.AttrDef{Name: "memory", Kind: model.Numeric},
		model.AttrDef{Name: "resolution", Kind: model.Numeric},
		model.AttrDef{Name: "price", Kind: model.Numeric, LessIsBetter: true},
	)
	ref := &model.Item{ID: 1, Title: "Ref", Numeric: map[string]float64{
		"memory": 32, "resolution": 24, "price": 800,
	}}
	alt := &model.Item{ID: 2, Title: "Alt", Numeric: map[string]float64{
		"memory": 8, "resolution": 10, "price": 200,
	}}
	cat.MustAdd(ref)
	cat.MustAdd(alt)
	phrase := TradeoffPhrase(knowledge.Compare(cat, ref, alt))
	if phrase != "Less Memory and Lower Resolution and Cheaper" {
		t.Fatalf("phrase = %q", phrase)
	}
}

func TestExplainTradeoffs(t *testing.T) {
	c := dataset.Cameras(dataset.Config{Seed: 7, Users: 3, Items: 30, RatingsPerUser: 2})
	items := c.Catalog.Items()
	exp, err := ExplainTradeoffs(c.Catalog, items[0], items[1])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, "Compared with") {
		t.Fatalf("text = %q", exp.Text)
	}
	if len(exp.Evidence.Tradeoffs) == 0 {
		t.Fatal("tradeoff evidence missing")
	}
	// Identical items: no explanation.
	if _, err := ExplainTradeoffs(c.Catalog, items[0], items[0]); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("identical err = %v", err)
	}
}
