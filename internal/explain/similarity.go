package explain

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/recsys/content"
)

// SimilarityExplainer implements the survey's first future-work
// direction as a working explainer: "a system that can explain to the
// user in their own terms why items are recommended is likely to
// increase user trust, as well as system transparency and
// scrutability." It justifies a similar-item recommendation by naming
// the shared aspects, weighted by how much this user cares about each.
type SimilarityExplainer struct {
	rec *content.KeywordRecommender
	// Seed is the reference item recommendations are similar to.
	Seed *model.Item
	// MaxAspects bounds how many shared aspects are named (default 2).
	MaxAspects int
}

// NewSimilarityExplainer builds an explainer for items similar to seed.
func NewSimilarityExplainer(rec *content.KeywordRecommender, seed *model.Item) *SimilarityExplainer {
	return &SimilarityExplainer{rec: rec, Seed: seed, MaxAspects: 2}
}

// Style implements Explainer.
func (e *SimilarityExplainer) Style() Style { return ContentBased }

// Explain implements Explainer: "Similar to <seed> — both are football
// items, and you watch a lot of football."
func (e *SimilarityExplainer) Explain(u model.UserID, item *model.Item) (*Explanation, error) {
	score, aspects, err := e.rec.PersonalizedSimilarity(u, e.Seed, item)
	if err != nil {
		return nil, fmt.Errorf("similarity to %q: %w (%v)", e.Seed.Title, ErrNoEvidence, err)
	}
	if len(aspects) == 0 {
		return nil, fmt.Errorf("items %d and %d share nothing: %w", e.Seed.ID, item.ID, ErrNoEvidence)
	}
	shown := aspects
	if e.MaxAspects > 0 && len(shown) > e.MaxAspects {
		shown = shown[:e.MaxAspects]
	}
	var parts []string
	var lovedAspect string
	for _, a := range shown {
		parts = append(parts, a.Aspect)
		if a.UserWeight > 0.3 && lovedAspect == "" && !strings.HasPrefix(a.Aspect, "by ") {
			lovedAspect = a.Aspect
		}
	}
	var text string
	switch {
	case strings.HasPrefix(parts[0], "by ") && len(parts) > 1:
		text = fmt.Sprintf("Similar to %q: both %s, and both are %s items.",
			e.Seed.Title, parts[0], joinAnd(parts[1:]))
	case strings.HasPrefix(parts[0], "by "):
		text = fmt.Sprintf("Similar to %q: both %s.", e.Seed.Title, parts[0])
	default:
		text = fmt.Sprintf("Similar to %q: both are %s items.", e.Seed.Title, joinAnd(parts))
	}
	if lovedAspect != "" {
		text += fmt.Sprintf(" You watch a lot of %s.", lovedAspect)
	}
	return &Explanation{
		Style:      ContentBased,
		Text:       text,
		Confidence: score,
		Faithful:   true,
		Evidence:   Evidence{Keywords: aspectsToContributions(aspects)},
	}, nil
}

func aspectsToContributions(aspects []content.SharedAspect) []content.KeywordContribution {
	out := make([]content.KeywordContribution, 0, len(aspects))
	for _, a := range aspects {
		out = append(out, content.KeywordContribution{Keyword: a.Aspect, Weight: a.UserWeight})
	}
	return out
}
