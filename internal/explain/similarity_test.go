package explain

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/recsys/content"
)

func similarityFixture() (*content.KeywordRecommender, *model.Catalog, model.UserID) {
	cat := model.NewCatalog("news")
	add := func(id model.ItemID, title, creator string, kws ...string) {
		cat.MustAdd(&model.Item{ID: id, Title: title, Creator: creator, Keywords: kws})
	}
	add(1, "Derby report", "", "sport", "football")
	add(2, "Cup final recap", "", "sport", "football")
	add(3, "Budget vote", "", "politics", "elections")
	add(4, "World cup preview", "", "sport", "football") // seed
	add(5, "League table shakeup", "", "sport", "football")
	add(6, "Space probe", "", "science", "space")
	add(7, "Novel A", "A. Writer", "culture", "books")
	add(8, "Novel B", "A. Writer", "culture", "poetry")
	m := model.NewMatrix()
	m.Set(1, 1, 5)
	m.Set(1, 2, 5)
	m.Set(1, 3, 1.5)
	return content.NewKeywordRecommender(m, cat), cat, 1
}

func TestSimilarityExplainerUserTerms(t *testing.T) {
	rec, cat, u := similarityFixture()
	seed := mustItem(t, cat, 4)
	e := NewSimilarityExplainer(rec, seed)
	if e.Style() != ContentBased {
		t.Fatal("style")
	}
	exp, err := e.Explain(u, mustItem(t, cat, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, `Similar to "World cup preview"`) {
		t.Fatalf("text = %q", exp.Text)
	}
	if !strings.Contains(exp.Text, "football") {
		t.Fatalf("shared aspect missing: %q", exp.Text)
	}
	// The adaptation: the loved aspect is called out in the user's
	// terms.
	if !strings.Contains(exp.Text, "You watch a lot of football.") {
		t.Fatalf("user-terms clause missing: %q", exp.Text)
	}
	if !exp.Faithful || len(exp.Evidence.Keywords) == 0 {
		t.Fatalf("evidence missing: %+v", exp)
	}
}

func TestSimilarityExplainerSharedCreator(t *testing.T) {
	rec, cat, u := similarityFixture()
	e := NewSimilarityExplainer(rec, mustItem(t, cat, 7))
	exp, err := e.Explain(u, mustItem(t, cat, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, "by A. Writer") {
		t.Fatalf("creator aspect missing: %q", exp.Text)
	}
}

func TestSimilarityExplainerNoOverlap(t *testing.T) {
	rec, cat, u := similarityFixture()
	e := NewSimilarityExplainer(rec, mustItem(t, cat, 4))
	if _, err := e.Explain(u, mustItem(t, cat, 6)); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Explain(99, mustItem(t, cat, 5)); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("cold err = %v", err)
	}
}
