// ClusterSim: the cluster-level companion to the stage-level Injector.
// Where the Injector perturbs pipeline stages inside one engine, the
// ClusterSim perturbs the links between a router and its shards —
// shard loss, slow shards, network partitions — by answering one
// question per shard call: what happens to this call before the shard
// engine sees it? Decisions are deterministic from the seed and the
// call sequence, so a failing chaos run replays bit-for-bit, exactly
// like stage-level fault injection.
//
// The simulator is intentionally ignorant of the cluster package: it
// speaks shard IDs and operation names only, so internal/cluster can
// depend on it without a cycle and any future multi-node layer can
// reuse it.

package fault

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// ErrShardUnreachable is the conventional error for a simulated dead
// or partitioned shard: the router treats it exactly like a transport
// failure to a remote node.
var ErrShardUnreachable = &shardUnreachableError{}

type shardUnreachableError struct{}

func (*shardUnreachableError) Error() string { return "fault: shard unreachable" }

// ClusterDecision is the simulator's verdict on one shard call.
type ClusterDecision struct {
	// Down reports the shard is unreachable for this call: the router
	// must not invoke the shard engine and should treat the call as a
	// transport failure.
	Down bool
	// Latency is added before the call proceeds (slow-shard faults).
	Latency time.Duration
	// Err, when non-nil, is returned as the call's transport error
	// without invoking the shard.
	Err error
}

// ClusterRule describes one standing fault against shard links.
type ClusterRule struct {
	// Shard restricts the rule to one shard ID; -1 matches any shard.
	Shard int
	// Op restricts the rule to one operation name ("recommend",
	// "similar", ...); "" matches any.
	Op string

	// After delays the rule: it cannot fire on the first After matching
	// calls. Combined with Nth/P this models faults that start mid-load.
	After int
	// Nth fires the rule on every nth matching call once past After
	// (1 = every call). When Nth is 0 the rule fires with probability P
	// drawn from the simulator's seeded stream.
	Nth int
	// P is the firing probability used when Nth == 0.
	P float64
	// Count caps total firings; 0 means unlimited.
	Count int

	// KillShard, when set, marks the matched shard permanently
	// unreachable on firing — shard loss — until Restore or Heal.
	KillShard bool
	// Latency is added to the call on firing (slow shard).
	Latency time.Duration
	// Err is returned as a transport error on firing; nil with
	// KillShard false and zero Latency makes the rule a no-op.
	Err error
}

type clusterRuleState struct {
	ClusterRule
	calls int
	fired int
}

// ClusterSim simulates cluster-level failures for a shard router. All
// mutable state sits behind one mutex; probability draws come from a
// seeded internal/rng stream, so sequential runs are reproducible.
type ClusterSim struct {
	mu     sync.Mutex
	rnd    *rng.RNG
	rules  []*clusterRuleState
	downed map[int]bool
	calls  int
}

// NewClusterSim builds a simulator with probability draws seeded by
// seed.
func NewClusterSim(seed uint64, rules ...ClusterRule) *ClusterSim {
	s := &ClusterSim{rnd: rng.New(seed), downed: make(map[int]bool)}
	for _, r := range rules {
		s.rules = append(s.rules, &clusterRuleState{ClusterRule: r})
	}
	return s
}

// Decide is consulted by the router before every shard call and
// returns what the "network" does to it. Sticky shard loss (Kill,
// Partition, KillShard rules) wins over per-call effects; latency and
// error effects from multiple matching rules accumulate with the
// first error winning.
func (s *ClusterSim) Decide(shard int, op string) ClusterDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	var d ClusterDecision
	for _, r := range s.rules {
		if r.Shard != -1 && r.Shard != shard {
			continue
		}
		if r.Op != "" && r.Op != op {
			continue
		}
		r.calls++
		if r.calls <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		var hit bool
		if r.Nth > 0 {
			hit = (r.calls-r.After)%r.Nth == 0
		} else {
			hit = s.rnd.Bernoulli(r.P)
		}
		if !hit {
			continue
		}
		r.fired++
		if r.KillShard {
			s.downed[shard] = true
		}
		d.Latency += r.Latency
		if d.Err == nil {
			d.Err = r.Err
		}
	}
	if s.downed[shard] {
		return ClusterDecision{Down: true}
	}
	return d
}

// Kill marks a shard unreachable — shard loss — until Restore or Heal.
func (s *ClusterSim) Kill(shard int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.downed[shard] = true
}

// Partition marks every listed shard unreachable at once, modelling a
// network partition that cuts the router off from part of the cluster.
func (s *ClusterSim) Partition(shards ...int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range shards {
		s.downed[id] = true
	}
}

// Restore marks one shard reachable again.
func (s *ClusterSim) Restore(shard int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.downed, shard)
}

// Heal restores every shard.
func (s *ClusterSim) Heal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.downed = make(map[int]bool)
}

// DownShards returns the currently unreachable shard IDs, sorted — a
// test and /debug convenience.
func (s *ClusterSim) DownShards() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.downed))
	for id := range s.downed {
		out = append(out, id)
	}
	// Insertion sort: the set is tiny and keeping the output ordered
	// makes map-iteration order invisible to callers.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Calls reports the total shard calls decided so far.
func (s *ClusterSim) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}
