package fault

import (
	"errors"
	"testing"
	"time"
)

func TestClusterSimSameSeedSameDecisions(t *testing.T) {
	mk := func() *ClusterSim {
		return NewClusterSim(7,
			ClusterRule{Shard: -1, P: 0.3, Err: ErrShardUnreachable},
			ClusterRule{Shard: 1, P: 0.5, Latency: time.Millisecond})
	}
	a, b := mk(), mk()
	for i := 0; i < 400; i++ {
		shard := i % 4
		da, db := a.Decide(shard, "recommend"), b.Decide(shard, "recommend")
		if da != db {
			t.Fatalf("call %d: decisions diverge: %+v vs %+v", i, da, db)
		}
	}
	if a.Calls() != 400 {
		t.Fatalf("calls = %d, want 400", a.Calls())
	}
}

func TestClusterRuleNthAfterCount(t *testing.T) {
	s := NewClusterSim(1, ClusterRule{
		Shard: -1, After: 2, Nth: 3, Count: 2, Err: ErrShardUnreachable,
	})
	var fired []int
	for i := 1; i <= 12; i++ {
		if d := s.Decide(0, "x"); d.Err != nil {
			fired = append(fired, i)
		}
	}
	// Eligible after call 2, every 3rd matching call: 5, 8, then capped
	// by Count.
	want := []int{5, 8}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("rule fired at %v, want %v", fired, want)
	}
}

func TestClusterRuleOpAndShardScoping(t *testing.T) {
	s := NewClusterSim(1, ClusterRule{Shard: 2, Op: "similar", Nth: 1, Err: ErrShardUnreachable})
	if d := s.Decide(2, "recommend"); d.Err != nil {
		t.Fatal("rule fired for wrong op")
	}
	if d := s.Decide(1, "similar"); d.Err != nil {
		t.Fatal("rule fired for wrong shard")
	}
	if d := s.Decide(2, "similar"); !errors.Is(d.Err, ErrShardUnreachable) {
		t.Fatalf("rule did not fire on its target: %+v", d)
	}
}

func TestKillShardRuleIsSticky(t *testing.T) {
	s := NewClusterSim(1, ClusterRule{Shard: 3, Nth: 1, Count: 1, KillShard: true})
	if d := s.Decide(3, "x"); !d.Down {
		t.Fatalf("killing decision not Down: %+v", d)
	}
	// Rule is exhausted (Count 1) but the shard stays down.
	if d := s.Decide(3, "x"); !d.Down {
		t.Fatal("shard loss not sticky")
	}
	if got := s.DownShards(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("down shards = %v", got)
	}
	s.Restore(3)
	if d := s.Decide(3, "x"); d.Down {
		t.Fatal("restored shard still down")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s := NewClusterSim(1)
	s.Partition(2, 0)
	if got := s.DownShards(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("down shards = %v, want sorted [0 2]", got)
	}
	if !s.Decide(0, "x").Down || !s.Decide(2, "x").Down || s.Decide(1, "x").Down {
		t.Fatal("partition membership wrong")
	}
	s.Heal()
	if got := s.DownShards(); len(got) != 0 {
		t.Fatalf("down shards after heal = %v", got)
	}
}

func TestLatencyAccumulatesFirstErrorWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	s := NewClusterSim(1,
		ClusterRule{Shard: -1, Nth: 1, Latency: 2 * time.Millisecond, Err: errA},
		ClusterRule{Shard: -1, Nth: 1, Latency: 3 * time.Millisecond, Err: errB})
	d := s.Decide(0, "x")
	if d.Latency != 5*time.Millisecond {
		t.Fatalf("latency = %v, want 5ms", d.Latency)
	}
	if !errors.Is(d.Err, errA) {
		t.Fatalf("err = %v, want first rule's", d.Err)
	}
}
