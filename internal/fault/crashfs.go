// CrashFS: a crash-point injector for the write-ahead log. It wraps a
// wal.FS and kills the "machine" at a chosen point — before the Nth
// write, partway through it (a torn write), as a short-write error, or
// at the Nth fsync — after which every operation fails, exactly as a
// dead disk behaves to a dead process. Because the WAL hands each
// record to File.Write in a single call (the wal package's storage
// contract), "the Nth write" is "the Nth record", so a sweep over
// AfterWrites visits every record boundary, and TearBytes sweeps every
// byte offset inside a frame.
//
// The injector is deliberately free of randomness: crash points are
// chosen by the test harness, not drawn from a stream, because the
// property under test is universally quantified ("recovery from a
// crash at ANY point is prefix-consistent"), not probabilistic.

package fault

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/wal"
)

// ErrCrashed is returned by every CrashFS operation after the crash
// point has been hit.
var ErrCrashed = errors.New("fault: filesystem crashed")

// CrashPlan picks the crash point. The zero value never crashes.
type CrashPlan struct {
	// AfterWrites crashes at the Nth File.Write call (1-based) across
	// all files; 0 disables write crashes. One WAL record is one write,
	// so this is a record boundary.
	AfterWrites int
	// TearBytes is how many bytes of the fatal write reach storage
	// before the crash: 0 tears the record off entirely (crash just
	// before the write), a value in (0, len) is a torn write, and -1
	// lets the full record land before dying (crash just after).
	TearBytes int
	// ShortWrite makes the fatal write report a short byte count with
	// io.ErrShortWrite instead of silently dying — the error path a
	// full disk produces. TearBytes bytes still land.
	ShortWrite bool
	// AfterSyncs fails the Nth sync call (1-based, file Sync and
	// directory SyncDir counted alike) with a sticky error; 0 disables.
	// Models a device that dies at fsync — the failure every durable
	// system must treat as fatal.
	AfterSyncs int
}

// CrashFS wraps a wal.FS with a CrashPlan. Safe for concurrent use.
type CrashFS struct {
	inner wal.FS
	plan  CrashPlan

	mu      sync.Mutex
	writes  int
	syncs   int
	crashed bool
}

// NewCrashFS wraps inner with plan.
func NewCrashFS(inner wal.FS, plan CrashPlan) *CrashFS {
	return &CrashFS{inner: inner, plan: plan}
}

// Crashed reports whether the crash point has been hit.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Writes reports how many File.Write calls have been observed — run a
// workload once with a zero plan to learn the sweep bound.
func (c *CrashFS) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

func (c *CrashFS) guard() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return nil
}

func (c *CrashFS) List() ([]string, error) {
	if err := c.guard(); err != nil {
		return nil, err
	}
	return c.inner.List()
}

func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	if err := c.guard(); err != nil {
		return nil, err
	}
	return c.inner.ReadFile(name)
}

func (c *CrashFS) OpenAppend(name string, size int64) (wal.File, error) {
	if err := c.guard(); err != nil {
		return nil, err
	}
	f, err := c.inner.OpenAppend(name, size)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, inner: f}, nil
}

func (c *CrashFS) Create(name string) (wal.File, error) {
	if err := c.guard(); err != nil {
		return nil, err
	}
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, inner: f}, nil
}

func (c *CrashFS) Remove(name string) error {
	if err := c.guard(); err != nil {
		return err
	}
	return c.inner.Remove(name)
}

func (c *CrashFS) Rename(oldname, newname string) error {
	if err := c.guard(); err != nil {
		return err
	}
	return c.inner.Rename(oldname, newname)
}

// SyncDir counts toward AfterSyncs exactly like a file fsync: a device
// that dies at the Nth sync does not care whether the inode being
// flushed is a file's or its directory's.
func (c *CrashFS) SyncDir() error {
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return ErrCrashed
	}
	c.syncs++
	if c.plan.AfterSyncs > 0 && c.syncs == c.plan.AfterSyncs {
		c.crashed = true
		c.mu.Unlock()
		return fmt.Errorf("fault: injected directory-sync failure: %w", ErrCrashed)
	}
	c.mu.Unlock()
	return c.inner.SyncDir()
}

type crashFile struct {
	fs    *CrashFS
	inner wal.File
}

func (f *crashFile) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return 0, ErrCrashed
	}
	c.writes++
	fatal := c.plan.AfterWrites > 0 && c.writes == c.plan.AfterWrites
	if fatal {
		c.crashed = true
	}
	c.mu.Unlock()

	if !fatal {
		return f.inner.Write(p)
	}
	// The fatal write: land TearBytes of the record, then die.
	tear := c.plan.TearBytes
	if tear < 0 || tear > len(p) {
		tear = len(p)
	}
	if tear > 0 {
		if _, err := f.inner.Write(p[:tear]); err != nil {
			return 0, fmt.Errorf("fault: landing torn prefix: %w", err)
		}
	}
	if c.plan.ShortWrite {
		return tear, io.ErrShortWrite
	}
	return 0, ErrCrashed
}

func (f *crashFile) Sync() error {
	c := f.fs
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return ErrCrashed
	}
	c.syncs++
	if c.plan.AfterSyncs > 0 && c.syncs == c.plan.AfterSyncs {
		c.crashed = true
		c.mu.Unlock()
		return fmt.Errorf("fault: injected fsync failure: %w", ErrCrashed)
	}
	c.mu.Unlock()
	return f.inner.Sync()
}

func (f *crashFile) Close() error {
	// Close succeeds even after a crash: the harness closes handles
	// while tearing down, and a real dead process's descriptors close
	// too.
	return f.inner.Close()
}
