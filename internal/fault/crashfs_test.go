package fault

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/wal"
)

// workload appends n records through a CrashFS until the crash hits,
// returning how many appends succeeded.
func workload(t *testing.T, fs wal.FS, n int) int {
	t.Helper()
	l, _, err := wal.Open(wal.Options{FS: fs, Fsync: wal.FsyncOS})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("op-%03d", i))); err != nil {
			return i
		}
	}
	return n
}

func TestCrashFSSweepEveryRecordBoundary(t *testing.T) {
	const n = 20
	// Learn the write count with a zero plan.
	probe := NewCrashFS(wal.NewMemFS(), CrashPlan{})
	if got := workload(t, probe, n); got != n {
		t.Fatalf("zero plan stopped workload at %d", got)
	}
	total := probe.Writes()
	if total != n {
		t.Fatalf("workload produced %d writes, want %d (one per record)", total, n)
	}

	for k := 1; k <= total; k++ {
		mem := wal.NewMemFS()
		cfs := NewCrashFS(mem, CrashPlan{AfterWrites: k, TearBytes: 0})
		done := workload(t, cfs, n)
		if done != k-1 {
			t.Fatalf("crash at write %d: %d appends succeeded, want %d", k, done, k-1)
		}
		if !cfs.Crashed() {
			t.Fatalf("crash at write %d never fired", k)
		}
		// Recovery on the survivor bytes yields exactly the acknowledged prefix.
		l, rec, err := wal.Open(wal.Options{FS: mem})
		if err != nil {
			t.Fatalf("crash at write %d: recovery: %v", k, err)
		}
		if len(rec.Records) != k-1 {
			t.Fatalf("crash at write %d: recovered %d records, want %d", k, len(rec.Records), k-1)
		}
		l.Close()
	}
}

func TestCrashFSTornWrite(t *testing.T) {
	// Tear the 3rd record at every strictly-partial byte offset;
	// recovery always sees 2. (tear == frameLen lands the whole frame —
	// covered by TestCrashFSFullRecordLandsThenDies.)
	frameLen := 16 + len("op-000")
	for tear := 0; tear < frameLen; tear++ {
		mem := wal.NewMemFS()
		cfs := NewCrashFS(mem, CrashPlan{AfterWrites: 3, TearBytes: tear})
		if done := workload(t, cfs, 5); done != 2 {
			t.Fatalf("tear %d: %d appends succeeded, want 2", tear, done)
		}
		_, rec, err := wal.Open(wal.Options{FS: mem})
		if err != nil {
			t.Fatalf("tear %d: recovery: %v", tear, err)
		}
		if len(rec.Records) != 2 {
			t.Fatalf("tear %d: recovered %d records, want 2", tear, len(rec.Records))
		}
		if want := tear; rec.Report.Truncated != want {
			t.Fatalf("tear %d: Truncated = %d, want %d", tear, rec.Report.Truncated, want)
		}
	}
}

func TestCrashFSFullRecordLandsThenDies(t *testing.T) {
	mem := wal.NewMemFS()
	cfs := NewCrashFS(mem, CrashPlan{AfterWrites: 3, TearBytes: -1})
	// The 3rd append's bytes land but the call reports failure — the
	// caller must treat it as NOT acknowledged; recovery may legally
	// surface it (it is a prefix either way).
	if done := workload(t, cfs, 5); done != 2 {
		t.Fatalf("%d appends acknowledged, want 2", done)
	}
	_, rec, err := wal.Open(wal.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want 3 (full frame landed)", len(rec.Records))
	}
}

func TestCrashFSShortWrite(t *testing.T) {
	mem := wal.NewMemFS()
	cfs := NewCrashFS(mem, CrashPlan{AfterWrites: 2, TearBytes: 4, ShortWrite: true})
	l, _, err := wal.Open(wal.Options{FS: cfs, Fsync: wal.FsyncOS})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	_, err = l.Append([]byte("second"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	// The failure is sticky on the log: durability is gone, so no
	// further writes are acknowledged.
	if _, err := l.Append([]byte("third")); err == nil {
		t.Fatal("append after short write succeeded; the log must stay failed")
	}
	// Recovery drops the 4 torn bytes and keeps the first record.
	_, rec, err := wal.Open(wal.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || rec.Report.Truncated != 4 {
		t.Fatalf("recovered %d records, truncated %d; want 1, 4", len(rec.Records), rec.Report.Truncated)
	}
}

func TestCrashFSFsyncFailureIsSticky(t *testing.T) {
	mem := wal.NewMemFS()
	// Sync 1 is the first segment's directory publish, sync 2 the first
	// append's fsync; sync 3 — the second append's fsync — fails.
	cfs := NewCrashFS(mem, CrashPlan{AfterSyncs: 3})
	l, _, err := wal.Open(wal.Options{FS: cfs, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if _, err := l.Append([]byte("two")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second append: %v, want fsync crash", err)
	}
	if _, err := l.Append([]byte("three")); err == nil {
		t.Fatal("append after failed fsync succeeded")
	}
	st := l.State()
	if !st.Failed || st.AppendErrors == 0 {
		t.Fatalf("state after fsync failure: %+v", st)
	}
	// Only the fsync-acknowledged record survives recovery... the
	// second record's bytes landed before its fsync failed, which is a
	// legal longer prefix; the invariant is "no acknowledged write is
	// lost", so record one MUST be there.
	_, rec, err := wal.Open(wal.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) < 1 || string(rec.Records[0].Payload) != "one" {
		t.Fatalf("acknowledged record lost: %+v", rec.Records)
	}
}

func TestCrashFSAllOpsFailAfterCrash(t *testing.T) {
	mem := wal.NewMemFS()
	cfs := NewCrashFS(mem, CrashPlan{AfterWrites: 1})
	l, _, err := wal.Open(wal.Options{FS: cfs, Fsync: wal.FsyncOS})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("boom")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append = %v, want ErrCrashed", err)
	}
	if _, err := cfs.List(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("List after crash = %v", err)
	}
	if _, err := cfs.ReadFile("x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadFile after crash = %v", err)
	}
	if _, err := cfs.Create("x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Create after crash = %v", err)
	}
	if err := cfs.Remove("x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Remove after crash = %v", err)
	}
	if err := cfs.Rename("x", "y"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Rename after crash = %v", err)
	}
}
