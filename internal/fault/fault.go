// Package fault injects failures into serving pipelines —
// deterministically. Chaos testing is only trustworthy when a failing
// run can be replayed bit-for-bit, so every probabilistic decision
// draws from a seeded internal/rng stream (the package sits under
// recsyslint's determinism rule: wall-clock reads and math/rand are
// mechanically banned) and every counted trigger (every-nth-call)
// advances an explicit per-rule counter.
//
// An Injector wraps any pipeline.Stage, either one at a time (Wrap) or
// as a pipeline.Interceptor applied to a whole pipeline, and applies
// its Rules to matching stages: added latency, injected errors, and
// injected panics. The engine composes chaos interceptors *innermost*
// — inside Recover — so injected panics exercise the real recovery and
// fallback machinery exactly as a genuine stage panic would.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/rng"
)

// ErrInjected is the conventional error value for injected failures.
// Rules may carry any error; tests that only need "some infrastructure
// fault" use this one.
var ErrInjected = errors.New("fault: injected failure")

// Rule describes one fault: which stages it matches, when it fires,
// and what it does. A fired rule applies Latency first (honouring the
// request context), then raises Panic if set, then returns Err if set;
// a rule with neither Panic nor Err is a pure latency fault.
type Rule struct {
	// Pipeline restricts the rule to one pipeline; "" matches any.
	Pipeline string
	// Stage restricts the rule to one stage name; "" matches any.
	Stage string

	// Nth fires the rule on every nth matching call (1 = every call).
	// When Nth is 0, the rule instead fires with probability P, drawn
	// from the injector's seeded stream.
	Nth int
	// P is the firing probability used when Nth == 0.
	P float64
	// Count caps the total number of firings; 0 means unlimited.
	Count int

	// Latency is injected before the effect (and before the stage runs
	// for latency-only rules).
	Latency time.Duration
	// Err is returned to the caller, wrapped with the stage identity.
	Err error
	// Panic is raised, exercising the pipeline's recovery path.
	Panic any
}

// Injector applies a fixed rule set to the stages it wraps. All
// mutable state (call counters, the probability stream) lives behind
// one mutex, so an Injector is safe for concurrent use and its
// decisions are reproducible from the seed in sequential runs.
type Injector struct {
	mu    sync.Mutex
	rnd   *rng.RNG
	rules []*ruleState
}

type ruleState struct {
	Rule
	calls int // matching stage executions seen
	fired int // times the rule actually fired
}

// NewInjector builds an injector over rules, with probability draws
// seeded by seed. Rules sharing an Injector share its deterministic
// stream; rule counters are per-rule but global across all stages the
// rule matches, so "every 3rd matching call" counts calls to any
// matched stage.
func NewInjector(seed uint64, rules ...Rule) *Injector {
	in := &Injector{rnd: rng.New(seed)}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// Interceptor returns the injector as a pipeline interceptor: stages
// with at least one matching rule are wrapped, others are returned
// untouched.
func (in *Injector) Interceptor() pipeline.Interceptor {
	return func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		var matched []*ruleState
		for _, r := range in.rules {
			if r.matches(info) {
				matched = append(matched, r)
			}
		}
		if len(matched) == 0 {
			return next
		}
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			for _, r := range matched {
				if !in.fire(r) {
					continue
				}
				if r.Latency > 0 {
					if err := waitCtx(ctx, r.Latency); err != nil {
						return nil, err
					}
				}
				if r.Panic != nil {
					panic(r.Panic)
				}
				if r.Err != nil {
					return nil, fmt.Errorf("stage %s/%s: %w", info.Pipeline, info.Stage, r.Err)
				}
			}
			return next(ctx, req)
		}
	}
}

// Wrap returns st wrapped with the injector for use in the named
// pipeline — the single-stage form of Interceptor, for tests that
// build pipelines by hand.
func (in *Injector) Wrap(pipelineName string, st pipeline.Stage) pipeline.Stage {
	info := pipeline.StageInfo{Pipeline: pipelineName, Stage: st.Name}
	return pipeline.Stage{Name: st.Name, Run: in.Interceptor()(info, st.Run)}
}

// Calls reports how many matching stage executions rule i has seen.
func (in *Injector) Calls(i int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rules[i].calls
}

// Fired reports how many times rule i has fired.
func (in *Injector) Fired(i int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rules[i].fired
}

func (r *ruleState) matches(info pipeline.StageInfo) bool {
	if r.Pipeline != "" && r.Pipeline != info.Pipeline {
		return false
	}
	if r.Stage != "" && r.Stage != info.Stage {
		return false
	}
	return true
}

// fire advances rule r's counters and decides whether it fires on this
// call.
func (in *Injector) fire(r *ruleState) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	r.calls++
	if r.Count > 0 && r.fired >= r.Count {
		return false
	}
	var hit bool
	if r.Nth > 0 {
		hit = r.calls%r.Nth == 0
	} else {
		hit = in.rnd.Bernoulli(r.P)
	}
	if hit {
		r.fired++
	}
	return hit
}

// waitCtx sleeps d or until ctx dies, returning the context's error in
// the latter case.
func waitCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
