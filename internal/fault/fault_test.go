package fault

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
)

func okHandler(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	return &pipeline.Response{}, nil
}

func run(t *testing.T, p *pipeline.Pipeline) error {
	t.Helper()
	_, err := p.Run(context.Background(), &pipeline.Request{})
	return err
}

func onePipeline(in *Injector, h pipeline.Handler) *pipeline.Pipeline {
	return pipeline.New("p", []pipeline.Stage{{Name: "s", Run: h}}, in.Interceptor())
}

// TestNthCallRule: Nth=3 fires on exactly every third matching call.
func TestNthCallRule(t *testing.T) {
	in := NewInjector(1, Rule{Stage: "s", Nth: 3, Err: ErrInjected})
	p := onePipeline(in, okHandler)
	var failed []int
	for i := 1; i <= 9; i++ {
		if err := run(t, p); err != nil {
			failed = append(failed, i)
		}
	}
	want := []int{3, 6, 9}
	if len(failed) != len(want) {
		t.Fatalf("failures at %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failures at %v, want %v", failed, want)
		}
	}
	if in.Calls(0) != 9 || in.Fired(0) != 3 {
		t.Fatalf("calls=%d fired=%d, want 9/3", in.Calls(0), in.Fired(0))
	}
}

// TestCountCapsFirings: Count=2 stops injecting after two faults even
// though the rule keeps matching.
func TestCountCapsFirings(t *testing.T) {
	in := NewInjector(1, Rule{Stage: "s", Nth: 1, Count: 2, Err: ErrInjected})
	p := onePipeline(in, okHandler)
	var failures int
	for i := 0; i < 10; i++ {
		if run(t, p) != nil {
			failures++
		}
	}
	if failures != 2 || in.Fired(0) != 2 {
		t.Fatalf("failures=%d fired=%d, want 2/2", failures, in.Fired(0))
	}
}

// TestProbabilityRuleDeterministic: equal seeds reproduce the exact
// firing pattern; different seeds (almost surely) differ, and the
// firing rate lands near P.
func TestProbabilityRuleDeterministic(t *testing.T) {
	pattern := func(seed uint64) string {
		in := NewInjector(seed, Rule{Stage: "s", P: 0.3, Err: ErrInjected})
		p := onePipeline(in, okHandler)
		var b strings.Builder
		for i := 0; i < 200; i++ {
			if run(t, p) != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed, different patterns:\n%s\n%s", a, b)
	}
	fired := strings.Count(a, "x")
	if fired < 30 || fired > 90 {
		t.Fatalf("P=0.3 fired %d/200 times, far from expectation", fired)
	}
	if pattern(43) == a {
		t.Fatal("different seeds produced identical 200-call patterns")
	}
}

// TestPanicRule: the injected panic propagates out of the stage (the
// pipeline's Recover interceptor is deliberately absent here).
func TestPanicRule(t *testing.T) {
	in := NewInjector(1, Rule{Stage: "s", Nth: 1, Panic: "chaos"})
	p := onePipeline(in, okHandler)
	defer func() {
		if v := recover(); v != "chaos" {
			t.Fatalf("recovered %v, want injected panic value", v)
		}
	}()
	_ = run(t, p)
	t.Fatal("stage did not panic")
}

// TestPanicRecoveredByPipeline: composed inside pipeline.Recover, an
// injected panic surfaces as a PanicError carrying the stage identity —
// exactly like a genuine stage panic.
func TestPanicRecoveredByPipeline(t *testing.T) {
	in := NewInjector(1, Rule{Stage: "s", Nth: 1, Panic: "chaos"})
	p := pipeline.New("p", []pipeline.Stage{{Name: "s", Run: okHandler}},
		pipeline.Recover(), in.Interceptor())
	err := run(t, p)
	var pe *pipeline.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Pipeline != "p" || pe.Stage != "s" {
		t.Fatalf("panic attributed to %s/%s, want p/s", pe.Pipeline, pe.Stage)
	}
}

// TestLatencyRuleHonoursContext: a latency injection aborts with the
// context's error when the request dies mid-wait.
func TestLatencyRuleHonoursContext(t *testing.T) {
	in := NewInjector(1, Rule{Stage: "s", Nth: 1, Latency: time.Hour})
	p := onePipeline(in, okHandler)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(ctx, &pipeline.Request{})
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRuleMatching: pipeline/stage selectors restrict where rules
// apply; "" wildcards.
func TestRuleMatching(t *testing.T) {
	in := NewInjector(1,
		Rule{Pipeline: "other", Stage: "s", Nth: 1, Err: ErrInjected},
		Rule{Pipeline: "p", Stage: "t", Nth: 1, Err: ErrInjected},
	)
	p := onePipeline(in, okHandler)
	if err := run(t, p); err != nil {
		t.Fatalf("err = %v; no rule should match stage p/s", err)
	}
	wild := NewInjector(1, Rule{Nth: 1, Err: ErrInjected})
	if err := run(t, onePipeline(wild, okHandler)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wildcard rule to fire", err)
	}
}

// TestInjectedErrorCarriesStageIdentity: wrapped errors name the stage,
// so chaos-test failures are attributable.
func TestInjectedErrorCarriesStageIdentity(t *testing.T) {
	in := NewInjector(1, Rule{Stage: "s", Nth: 1, Err: ErrInjected})
	err := run(t, onePipeline(in, okHandler))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "p/s") {
		t.Fatalf("err %q does not name the stage", err)
	}
}

// TestWrap: the single-stage form applies the same rules.
func TestWrap(t *testing.T) {
	in := NewInjector(1, Rule{Pipeline: "p", Stage: "s", Nth: 2, Err: ErrInjected})
	st := in.Wrap("p", pipeline.Stage{Name: "s", Run: okHandler})
	if _, err := st.Run(context.Background(), &pipeline.Request{}); err != nil {
		t.Fatalf("call 1: err = %v, want success", err)
	}
	if _, err := st.Run(context.Background(), &pipeline.Request{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 2: err = %v, want injected", err)
	}
}

// TestInjectorConcurrentUse hammers one injector from many goroutines
// (run with -race); the total fired count must equal the rule cap.
func TestInjectorConcurrentUse(t *testing.T) {
	in := NewInjector(1, Rule{Stage: "s", Nth: 1, Count: 64, Err: ErrInjected})
	p := onePipeline(in, okHandler)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				//lint:ignore dropped-error the failure pattern is asserted via Fired below, not per call
				_, _ = p.Run(context.Background(), &pipeline.Request{})
			}
		}()
	}
	wg.Wait()
	if in.Calls(0) != 256 || in.Fired(0) != 64 {
		t.Fatalf("calls=%d fired=%d, want 256/64", in.Calls(0), in.Fired(0))
	}
}
