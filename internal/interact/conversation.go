package interact

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

// Dialog is a conversational recommender in the style of the Adaptive
// Place Advisor (Thompson, Goeker & Langley 2004; survey Sections 5.1
// and 3.6): the system elicits attribute constraints one question at a
// time, narrowing the candidate set, and proposes items once the set
// is small enough. Users "elaborate their requirements over the course
// of an extended dialog" instead of a single-shot query.
//
// A personalised user model (Prefill) answers questions the system
// already knows the answer to — the mechanism behind the study's
// finding that personalisation significantly reduces interactions.
type Dialog struct {
	rec         *knowledge.Recommender
	constraints []knowledge.Constraint
	asked       map[string]bool
	rejected    map[model.ItemID]bool
	// ProposeAt is the candidate-set size at which the dialog stops
	// asking and starts proposing (default 5).
	ProposeAt int

	questions int
	proposals int
}

// NewDialog starts a dialog over the recommender's catalogue.
func NewDialog(rec *knowledge.Recommender) *Dialog {
	return &Dialog{
		rec:       rec,
		asked:     map[string]bool{},
		rejected:  map[model.ItemID]bool{},
		ProposeAt: 5,
	}
}

// Prefill applies a personalised user model: every attribute the prior
// knows is answered silently, without costing a question. Categorical
// preferences become equality constraints; numeric ideals on
// less-is-better attributes become upper bounds at 130% of the ideal
// (a tolerant budget), other numeric attributes are left to scoring.
func (d *Dialog) Prefill(prior *knowledge.Preferences) {
	if prior == nil {
		return
	}
	// Constraints are added in sorted attribute order so that the
	// relax-on-empty behaviour (which drops the newest constraint) is
	// deterministic.
	catAttrs := make([]string, 0, len(prior.CategoricalPrefer))
	for attr := range prior.CategoricalPrefer {
		catAttrs = append(catAttrs, attr)
	}
	sort.Strings(catAttrs)
	for _, attr := range catAttrs {
		if d.asked[attr] {
			continue
		}
		d.asked[attr] = true
		d.constraints = append(d.constraints, knowledge.Constraint{Attr: attr, Op: knowledge.Eq, Str: prior.CategoricalPrefer[attr]})
	}
	numAttrs := make([]string, 0, len(prior.NumericIdeal))
	for attr := range prior.NumericIdeal {
		numAttrs = append(numAttrs, attr)
	}
	sort.Strings(numAttrs)
	for _, attr := range numAttrs {
		if d.asked[attr] {
			continue
		}
		def, ok := d.rec.Catalog().AttrDef(attr)
		if !ok || def.Kind != model.Numeric || !def.LessIsBetter {
			continue
		}
		d.asked[attr] = true
		d.constraints = append(d.constraints, knowledge.Constraint{Attr: attr, Op: knowledge.Le, Num: prior.NumericIdeal[attr] * 1.3})
	}
	d.relaxUntilNonEmpty()
}

// NextQuestion returns the next attribute to ask about, or ok=false
// when the dialog should move to proposing (all attributes asked or
// few enough candidates remain). Each call that returns an attribute
// costs one interaction.
func (d *Dialog) NextQuestion() (model.AttrDef, bool) {
	if len(d.Candidates()) <= d.ProposeAt {
		return model.AttrDef{}, false
	}
	for _, def := range d.rec.Catalog().Attrs {
		if !d.asked[def.Name] {
			d.asked[def.Name] = true
			d.questions++
			return def, true
		}
	}
	return model.AttrDef{}, false
}

// AnswerCategorical answers the current question with an equality
// constraint. If the constraint empties the candidate set it is
// dropped again — the system shows what does exist instead of a dead
// end (Section 5.2's flight-search complaint).
func (d *Dialog) AnswerCategorical(attr, value string) {
	d.constraints = append(d.constraints, knowledge.Constraint{Attr: attr, Op: knowledge.Eq, Str: value})
	d.relaxUntilNonEmpty()
}

// AnswerNumericMax answers with an upper bound.
func (d *Dialog) AnswerNumericMax(attr string, max float64) {
	d.constraints = append(d.constraints, knowledge.Constraint{Attr: attr, Op: knowledge.Le, Num: max})
	d.relaxUntilNonEmpty()
}

// DontCare records that the user has no requirement on the attribute.
func (d *Dialog) DontCare(attr string) {
	// The attribute was already marked asked by NextQuestion; nothing
	// to constrain.
}

// relaxUntilNonEmpty drops the newest constraints until candidates
// exist again.
func (d *Dialog) relaxUntilNonEmpty() {
	for len(d.constraints) > 0 && len(d.Candidates()) == 0 {
		d.constraints = d.constraints[:len(d.constraints)-1]
	}
}

// Candidates returns the items satisfying the current constraints,
// minus rejected proposals.
func (d *Dialog) Candidates() []*model.Item {
	var out []*model.Item
	for _, it := range d.rec.Filter(d.constraints) {
		if !d.rejected[it.ID] {
			out = append(out, it)
		}
	}
	return out
}

// ErrDialogExhausted is returned when every candidate has been
// rejected.
var ErrDialogExhausted = errors.New("interact: dialog has no candidates left")

// Propose scores the remaining candidates under prefs and returns the
// best. Each proposal costs one interaction.
func (d *Dialog) Propose(prefs *knowledge.Preferences) (knowledge.ScoredItem, error) {
	cands := d.Candidates()
	if len(cands) == 0 {
		return knowledge.ScoredItem{}, ErrDialogExhausted
	}
	d.proposals++
	best := knowledge.ScoredItem{Utility: -1}
	for _, it := range cands {
		u, breakdown, err := d.rec.Utility(prefs, it)
		if err != nil {
			continue
		}
		if u > best.Utility || (u == best.Utility && best.Item != nil && it.ID < best.Item.ID) {
			best = knowledge.ScoredItem{Item: it, Utility: u, Breakdown: breakdown}
		}
	}
	if best.Item == nil {
		// Preferences score nothing (e.g. empty model): fall back to
		// the first candidate so the dialog can still conclude.
		best = knowledge.ScoredItem{Item: cands[0]}
	}
	return best, nil
}

// Reject records that the user declined a proposal.
func (d *Dialog) Reject(item model.ItemID) {
	d.rejected[item] = true
}

// Interactions returns the conversation cost so far: questions asked
// plus proposals made — the efficiency measure of Section 3.6.
func (d *Dialog) Interactions() int { return d.questions + d.proposals }

// Questions returns only the elicitation questions asked.
func (d *Dialog) Questions() int { return d.questions }

// CritiqueSession is a critique-driven shopping loop (Section 5.2,
// McCarthy et al. / Reilly et al.): the system shows one item, the
// user critiques it ("cheaper", or a compound critique), the candidate
// set narrows, and a new reference item is shown.
type CritiqueSession struct {
	rec        *knowledge.Recommender
	prefs      *knowledge.Preferences
	candidates []*model.Item
	current    *model.Item
	steps      int
	// SelectNearest switches the display policy after a critique: when
	// false (default) the next item is the best match under the
	// session preferences; when true it is the item most similar to
	// the previous one that satisfies the critique — the FindMe-style
	// "like this, but cheaper" behaviour, under which unit critiques
	// move in small steps and compound critiques leap.
	SelectNearest bool
}

// ErrNoMatches is returned when a critique matches nothing; the
// session state is unchanged so the user can try another critique —
// the "show what types of items do exist" behaviour the survey
// contrasts with dead-end error messages.
var ErrNoMatches = errors.New("interact: no items match that critique")

// NewCritiqueSession starts a session over the recommender's items
// filtered by constraints, showing the best item under prefs first.
func NewCritiqueSession(rec *knowledge.Recommender, prefs *knowledge.Preferences, constraints []knowledge.Constraint) (*CritiqueSession, error) {
	cands := rec.Filter(constraints)
	if len(cands) == 0 {
		return nil, ErrDialogExhausted
	}
	s := &CritiqueSession{rec: rec, prefs: prefs, candidates: cands}
	s.current = s.bestOf(cands)
	return s, nil
}

func (s *CritiqueSession) bestOf(cands []*model.Item) *model.Item {
	best := cands[0]
	bestU := -1.0
	for _, it := range cands {
		u, _, err := s.rec.Utility(s.prefs, it)
		if err != nil {
			continue
		}
		if u > bestU || (u == bestU && it.ID < best.ID) {
			best, bestU = it, u
		}
	}
	return best
}

// Current returns the item on display.
func (s *CritiqueSession) Current() *model.Item { return s.current }

// Candidates returns the remaining candidate set (including current).
func (s *CritiqueSession) Candidates() []*model.Item { return s.candidates }

// Steps returns how many critiques have been applied — the session
// length measure of experiment E8.
func (s *CritiqueSession) Steps() int { return s.steps }

// ApplyUnit applies a single-attribute critique.
func (s *CritiqueSession) ApplyUnit(c Critique) error {
	return s.apply(func() []*model.Item {
		return ApplyCritique(s.rec.Catalog(), s.current, s.candidates, c)
	})
}

// ApplyCompound applies a compound critique.
func (s *CritiqueSession) ApplyCompound(cc CompoundCritique) error {
	return s.apply(func() []*model.Item {
		return ApplyCompound(s.rec.Catalog(), s.current, s.candidates, cc)
	})
}

func (s *CritiqueSession) apply(filter func() []*model.Item) error {
	next := filter()
	if len(next) == 0 {
		return fmt.Errorf("%w (still showing %q)", ErrNoMatches, s.current.Title)
	}
	prev := s.current
	s.candidates = next
	if s.SelectNearest {
		s.current = s.nearestTo(prev, next)
	} else {
		s.current = s.bestOf(next)
	}
	s.steps++
	return nil
}

// nearestTo returns the candidate closest to ref in normalised
// attribute space (Euclidean over numeric attributes, unit penalty per
// categorical mismatch), ties broken by item ID.
func (s *CritiqueSession) nearestTo(ref *model.Item, cands []*model.Item) *model.Item {
	cat := s.rec.Catalog()
	best := cands[0]
	bestD := s.distance(cat, ref, cands[0])
	for _, it := range cands[1:] {
		d := s.distance(cat, ref, it)
		if d < bestD || (d == bestD && it.ID < best.ID) {
			best, bestD = it, d
		}
	}
	return best
}

func (s *CritiqueSession) distance(cat *model.Catalog, a, b *model.Item) float64 {
	var sum float64
	for _, def := range cat.Attrs {
		switch def.Kind {
		case model.Numeric:
			va, okA := a.Numeric[def.Name]
			vb, okB := b.Numeric[def.Name]
			if !okA || !okB {
				continue
			}
			lo, hi, ok := cat.NumericRange(def.Name)
			span := hi - lo
			if !ok || span <= 0 {
				span = 1
			}
			d := (va - vb) / span
			sum += d * d
		case model.Categorical:
			if a.Categorical[def.Name] != b.Categorical[def.Name] {
				sum += 1
			}
		}
	}
	return sum
}

// Compounds mines the compound critiques currently available, with
// their live support. It surfaces at most n (0 = all).
func (s *CritiqueSession) Compounds(minSupport float64, maxParts, n int) []CompoundCritique {
	ccs, err := MineCompoundCritiques(s.rec.Catalog(), s.current, s.candidates, minSupport, maxParts)
	if err != nil {
		return nil
	}
	// Only multi-part patterns count as compound critiques in the UI;
	// single-part ones are the unit critique menu.
	var out []CompoundCritique
	for _, cc := range ccs {
		if len(cc.Parts) >= 2 {
			out = append(out, cc)
		}
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
