package interact

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

func restaurantSetup(t testing.TB) (*dataset.Community, *knowledge.Recommender) {
	t.Helper()
	c := dataset.Restaurants(dataset.Config{Seed: 61, Users: 5, Items: 120, RatingsPerUser: 3})
	return c, knowledge.New(c.Catalog)
}

func TestDialogNarrowsWithAnswers(t *testing.T) {
	_, rec := restaurantSetup(t)
	d := NewDialog(rec)
	before := len(d.Candidates())
	def, ok := d.NextQuestion()
	if !ok {
		t.Fatal("dialog should ask with a full candidate set")
	}
	if def.Name != dataset.RestPrice {
		t.Fatalf("first question = %q, want schema order", def.Name)
	}
	d.AnswerNumericMax(dataset.RestPrice, 40)
	after := len(d.Candidates())
	if after >= before || after == 0 {
		t.Fatalf("answer did not narrow sensibly: %d -> %d", before, after)
	}
	for _, it := range d.Candidates() {
		if it.Numeric[dataset.RestPrice] > 40 {
			t.Fatalf("constraint violated: %v", it.Numeric[dataset.RestPrice])
		}
	}
	if d.Questions() != 1 || d.Interactions() != 1 {
		t.Fatalf("counters = %d questions, %d interactions", d.Questions(), d.Interactions())
	}
}

func TestDialogImpossibleConstraintRelaxed(t *testing.T) {
	_, rec := restaurantSetup(t)
	d := NewDialog(rec)
	d.NextQuestion()
	before := len(d.Candidates())
	d.AnswerNumericMax(dataset.RestPrice, 0.01) // impossible
	if len(d.Candidates()) != before {
		t.Fatal("impossible constraint should be dropped, not dead-end")
	}
}

func TestDialogStopsAskingWhenFewCandidates(t *testing.T) {
	_, rec := restaurantSetup(t)
	d := NewDialog(rec)
	d.ProposeAt = 1000 // higher than catalogue size
	if _, ok := d.NextQuestion(); ok {
		t.Fatal("no question should be asked when candidates <= ProposeAt")
	}
}

func TestDialogProposeAndReject(t *testing.T) {
	c, rec := restaurantSetup(t)
	d := NewDialog(rec)
	prefs := &knowledge.Preferences{
		CategoricalPrefer: map[string]string{dataset.RestCuisine: "thai"},
		NumericIdeal:      map[string]float64{dataset.RestPrice: 20},
	}
	first, err := d.Propose(prefs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Item == nil {
		t.Fatal("no proposal")
	}
	d.Reject(first.Item.ID)
	second, err := d.Propose(prefs)
	if err != nil {
		t.Fatal(err)
	}
	if second.Item.ID == first.Item.ID {
		t.Fatal("rejected item proposed again")
	}
	if second.Utility > first.Utility {
		t.Fatalf("second proposal better than first: %v > %v", second.Utility, first.Utility)
	}
	if d.Interactions() != 2 {
		t.Fatalf("interactions = %d", d.Interactions())
	}
	_ = c
}

func TestDialogExhaustion(t *testing.T) {
	cat := model.NewCatalog("tiny", model.AttrDef{Name: "x", Kind: model.Numeric})
	cat.MustAdd(&model.Item{ID: 1, Numeric: map[string]float64{"x": 1}})
	rec := knowledge.New(cat)
	d := NewDialog(rec)
	prefs := &knowledge.Preferences{NumericIdeal: map[string]float64{"x": 1}}
	got, err := d.Propose(prefs)
	if err != nil {
		t.Fatal(err)
	}
	d.Reject(got.Item.ID)
	if _, err := d.Propose(prefs); !errors.Is(err, ErrDialogExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestPrefillReducesQuestions(t *testing.T) {
	// The E3 mechanism: a personalised prior answers questions without
	// asking them, so the dialog reaches proposal size with fewer
	// interactions.
	_, rec := restaurantSetup(t)

	runDialog := func(prior *knowledge.Preferences) int {
		d := NewDialog(rec)
		d.ProposeAt = 8
		d.Prefill(prior)
		answers := map[string]func(){
			dataset.RestPrice:    func() { d.AnswerNumericMax(dataset.RestPrice, 45) },
			dataset.RestDistance: func() { d.AnswerNumericMax(dataset.RestDistance, 8) },
			dataset.RestCuisine:  func() { d.AnswerCategorical(dataset.RestCuisine, "italian") },
			dataset.RestParking:  func() { d.AnswerCategorical(dataset.RestParking, "lot") },
		}
		for {
			def, ok := d.NextQuestion()
			if !ok {
				break
			}
			if f, ok := answers[def.Name]; ok {
				f()
			} else {
				d.DontCare(def.Name)
			}
		}
		return d.Interactions()
	}

	cold := runDialog(nil)
	warm := runDialog(&knowledge.Preferences{
		CategoricalPrefer: map[string]string{dataset.RestCuisine: "italian"},
		NumericIdeal:      map[string]float64{dataset.RestPrice: 35},
	})
	if warm >= cold {
		t.Fatalf("personalised dialog should need fewer interactions: warm=%d cold=%d", warm, cold)
	}
}

func TestPrefillNilPrior(t *testing.T) {
	_, rec := restaurantSetup(t)
	d := NewDialog(rec)
	d.Prefill(nil) // no-op, no panic
	if d.Interactions() != 0 {
		t.Fatal("prefill should not count interactions")
	}
}
