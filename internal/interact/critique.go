// Package interact implements the survey's Section 5: the ways a user
// gives feedback to a recommender. It provides requirement
// specification dialogs (5.1), critiquing including dynamically mined
// compound critiques (5.2), scrutable rating editing (5.3), opinion
// feedback — more-like-this, no-more-like-this, surprise-me (5.4) —
// and the SASY-style scrutable user profile (Figure 1).
package interact

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

// Critique is one user request to alter the current recommendation
// along an attribute (Section 5.2): "show me something cheaper" /
// "a different brand".
type Critique struct {
	Attr string
	// Dir is the requested direction for numeric attributes: Better
	// means "improve this attribute" in the schema's sense (cheaper
	// for less-is-better, more for the rest). For categorical
	// attributes Dir is Different ("another brand") or Same.
	Dir knowledge.Direction
}

// String renders the critique for transcripts.
func (c Critique) String() string { return c.Attr + ":" + c.Dir.String() }

// UnitCritiques enumerates the atomic critiques the interface offers
// for a catalogue: better/worse on every numeric attribute and
// different on every categorical one.
func UnitCritiques(cat *model.Catalog) []Critique {
	var out []Critique
	for _, def := range cat.Attrs {
		switch def.Kind {
		case model.Numeric:
			out = append(out,
				Critique{Attr: def.Name, Dir: knowledge.Better},
				Critique{Attr: def.Name, Dir: knowledge.Worse})
		case model.Categorical:
			out = append(out, Critique{Attr: def.Name, Dir: knowledge.Different})
		}
	}
	return out
}

// Matches reports whether candidate satisfies the critique relative to
// the reference item.
func (c Critique) Matches(cat *model.Catalog, ref, cand *model.Item) bool {
	for _, to := range knowledge.Compare(cat, ref, cand) {
		if to.Attr != c.Attr {
			continue
		}
		return to.Direction == c.Dir
	}
	return false
}

// ApplyCritique filters candidates to those satisfying the critique
// relative to ref. The reference itself never survives.
func ApplyCritique(cat *model.Catalog, ref *model.Item, cands []*model.Item, c Critique) []*model.Item {
	var out []*model.Item
	for _, cand := range cands {
		if cand.ID == ref.ID {
			continue
		}
		if c.Matches(cat, ref, cand) {
			out = append(out, cand)
		}
	}
	return out
}

// CompoundCritique is a dynamically mined pattern of unit critiques
// that co-occur among the remaining candidates (Reilly et al. 2004,
// "Dynamic critiquing"; the survey's Qwikshop example "Less Memory and
// Lower Resolution and Cheaper").
type CompoundCritique struct {
	Parts []Critique
	// Support is the fraction of candidates matching all parts.
	Support float64
	// Label is the user-facing description built from trade-off
	// phrases.
	Label string
}

// ApplyCompound filters candidates to those satisfying every part.
func ApplyCompound(cat *model.Catalog, ref *model.Item, cands []*model.Item, cc CompoundCritique) []*model.Item {
	out := cands
	for _, part := range cc.Parts {
		out = ApplyCritique(cat, ref, out, part)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// ErrNoCandidates is returned when critique mining has nothing to
// mine over.
var ErrNoCandidates = errors.New("interact: no candidates to mine critiques from")

// MineCompoundCritiques finds the frequent critique patterns among
// candidates relative to ref using an Apriori-style levelwise search:
// patterns of up to maxParts unit critiques whose joint support is at
// least minSupport. Patterns are returned by descending support, then
// lexicographic label; subsumed patterns (same support as a superset)
// are kept — the interface ranks, the user chooses.
func MineCompoundCritiques(cat *model.Catalog, ref *model.Item, cands []*model.Item, minSupport float64, maxParts int) ([]CompoundCritique, error) {
	others := make([]*model.Item, 0, len(cands))
	for _, c := range cands {
		if c.ID != ref.ID {
			others = append(others, c)
		}
	}
	if len(others) == 0 {
		return nil, ErrNoCandidates
	}
	if maxParts < 1 {
		maxParts = 1
	}
	// Transaction encoding: per candidate, the set of non-Same critique
	// directions it exhibits vs ref, with the display phrase.
	type token struct {
		crit   Critique
		phrase string
	}
	transactions := make([][]string, len(others))
	tokens := map[string]token{}
	for i, cand := range others {
		for _, to := range knowledge.Compare(cat, ref, cand) {
			if to.Direction == knowledge.Same {
				continue
			}
			key := to.Attr + ":" + to.Direction.String()
			tokens[key] = token{crit: Critique{Attr: to.Attr, Dir: to.Direction}, phrase: to.Phrase}
			transactions[i] = append(transactions[i], key)
		}
		sort.Strings(transactions[i])
	}
	support := func(pattern []string) float64 {
		n := 0
	next:
		for _, tx := range transactions {
			for _, want := range pattern {
				if !containsSorted(tx, want) {
					continue next
				}
			}
			n++
		}
		return float64(n) / float64(len(others))
	}
	// Level 1: frequent single critiques.
	var level [][]string
	for key := range tokens {
		if support([]string{key}) >= minSupport {
			level = append(level, []string{key})
		}
	}
	sortPatterns(level)
	var frequent [][]string
	frequent = append(frequent, level...)
	for size := 2; size <= maxParts && len(level) > 0; size++ {
		var next [][]string
		seen := map[string]bool{}
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				cand := joinPatterns(level[i], level[j], size)
				if cand == nil {
					continue
				}
				key := strings.Join(cand, "|")
				if seen[key] {
					continue
				}
				seen[key] = true
				if !patternConsistent(cand) {
					continue
				}
				if support(cand) >= minSupport {
					next = append(next, cand)
				}
			}
		}
		sortPatterns(next)
		frequent = append(frequent, next...)
		level = next
	}
	out := make([]CompoundCritique, 0, len(frequent))
	for _, pattern := range frequent {
		cc := CompoundCritique{Support: support(pattern)}
		var phrases []string
		for _, key := range pattern {
			tk := tokens[key]
			cc.Parts = append(cc.Parts, tk.crit)
			phrases = append(phrases, tk.phrase)
		}
		cc.Label = strings.Join(phrases, " and ")
		out = append(out, cc)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Support != out[b].Support {
			return out[a].Support > out[b].Support
		}
		if len(out[a].Parts) != len(out[b].Parts) {
			return len(out[a].Parts) > len(out[b].Parts)
		}
		return out[a].Label < out[b].Label
	})
	return out, nil
}

// patternConsistent rejects self-contradictory patterns such as
// "price better and price worse".
func patternConsistent(pattern []string) bool {
	attrs := map[string]bool{}
	for _, key := range pattern {
		attr := strings.SplitN(key, ":", 2)[0]
		if attrs[attr] {
			return false
		}
		attrs[attr] = true
	}
	return true
}

// joinPatterns merges two sorted size-(k-1) patterns sharing a
// (k-2)-prefix into a size-k candidate, the classic Apriori join.
func joinPatterns(a, b []string, size int) []string {
	if len(a) != size-1 || len(b) != size-1 {
		return nil
	}
	for i := 0; i < size-2; i++ {
		if a[i] != b[i] {
			return nil
		}
	}
	last := size - 2
	if a[last] == b[last] {
		return nil
	}
	merged := append(append([]string(nil), a...), b[last])
	sort.Strings(merged)
	return merged
}

func sortPatterns(ps [][]string) {
	sort.Slice(ps, func(a, b int) bool {
		return strings.Join(ps[a], "|") < strings.Join(ps[b], "|")
	})
}

func containsSorted(sorted []string, want string) bool {
	i := sort.SearchStrings(sorted, want)
	return i < len(sorted) && sorted[i] == want
}

// DescribeCritique renders a critique against the catalogue schema for
// menus, e.g. "cheaper" or "different brand". It reuses the knowledge
// package's phrase vocabulary via a two-item synthetic comparison so
// the menu and the trade-off explanations speak the same language.
func DescribeCritique(cat *model.Catalog, c Critique) string {
	def, ok := cat.AttrDef(c.Attr)
	if !ok {
		return fmt.Sprintf("%s (%s)", c.Attr, c.Dir)
	}
	if def.Kind == model.Categorical {
		return "different " + def.Name
	}
	// Better on a less-is-better attribute means the value decreases;
	// otherwise the table flips accordingly.
	increase := (c.Dir == knowledge.Better) != def.LessIsBetter
	delta := 10.0
	if !increase {
		delta = -10
	}
	synth := model.NewCatalog("phrase", def)
	a := &model.Item{ID: 1, Numeric: map[string]float64{def.Name: 100}}
	b := &model.Item{ID: 2, Numeric: map[string]float64{def.Name: 100 + delta}}
	synth.MustAdd(a)
	synth.MustAdd(b)
	for _, to := range knowledge.Compare(synth, a, b) {
		if to.Attr == def.Name {
			return strings.ToLower(to.Phrase)
		}
	}
	return def.Name
}
