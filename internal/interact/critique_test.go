package interact

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

func cameraCatalog() *model.Catalog {
	cat := model.NewCatalog("cameras",
		model.AttrDef{Name: "price", Kind: model.Numeric, LessIsBetter: true, Unit: "$"},
		model.AttrDef{Name: "resolution", Kind: model.Numeric, Unit: "MP"},
		model.AttrDef{Name: "memory", Kind: model.Numeric, Unit: "GB"},
		model.AttrDef{Name: "brand", Kind: model.Categorical},
	)
	add := func(id model.ItemID, price, res, mem float64, brand string) *model.Item {
		it := &model.Item{
			ID:          id,
			Title:       brand,
			Numeric:     map[string]float64{"price": price, "resolution": res, "memory": mem},
			Categorical: map[string]string{"brand": brand},
		}
		cat.MustAdd(it)
		return it
	}
	add(1, 500, 20, 32, "Axiom") // reference
	add(2, 200, 10, 8, "Axiom")  // cheaper, lower res, less memory
	add(3, 250, 12, 8, "Lumo")   // cheaper, lower res, less memory, diff brand
	add(4, 800, 30, 64, "Vanta") // pricier, better specs
	add(5, 480, 19, 32, "Axiom") // nearly identical to ref
	return cat
}

func TestUnitCritiquesEnumeration(t *testing.T) {
	cat := cameraCatalog()
	cs := UnitCritiques(cat)
	// 3 numeric * 2 directions + 1 categorical = 7.
	if len(cs) != 7 {
		t.Fatalf("got %d unit critiques: %v", len(cs), cs)
	}
}

func TestApplyCritiqueCheaper(t *testing.T) {
	cat := cameraCatalog()
	ref, _ := cat.Item(1)
	cheaper := ApplyCritique(cat, ref, cat.Items(), Critique{Attr: "price", Dir: knowledge.Better})
	if len(cheaper) != 3 { // items 2, 3 and the slightly-cheaper 5
		t.Fatalf("cheaper = %v", ids(cheaper))
	}
	for _, it := range cheaper {
		if it.Numeric["price"] >= ref.Numeric["price"] {
			t.Fatalf("item %d not cheaper", it.ID)
		}
	}
	// Reference never survives.
	for _, it := range cheaper {
		if it.ID == ref.ID {
			t.Fatal("reference survived its own critique")
		}
	}
}

func TestApplyCritiqueDifferentBrand(t *testing.T) {
	cat := cameraCatalog()
	ref, _ := cat.Item(1)
	diff := ApplyCritique(cat, ref, cat.Items(), Critique{Attr: "brand", Dir: knowledge.Different})
	if len(diff) != 2 { // Lumo and Vanta
		t.Fatalf("different brand = %v", ids(diff))
	}
}

func TestMineCompoundCritiquesFindsPaperPattern(t *testing.T) {
	cat := cameraCatalog()
	ref, _ := cat.Item(1)
	ccs, err := MineCompoundCritiques(cat, ref, cat.Items(), 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ccs) == 0 {
		t.Fatal("no compound critiques mined")
	}
	// Items 2 and 3 (half the candidates) are cheaper AND lower
	// resolution AND less memory — the Qwikshop pattern must appear.
	var found *CompoundCritique
	for i := range ccs {
		if len(ccs[i].Parts) == 3 && strings.Contains(ccs[i].Label, "Cheaper") &&
			strings.Contains(ccs[i].Label, "Lower Resolution") &&
			strings.Contains(ccs[i].Label, "Less Memory") {
			found = &ccs[i]
		}
	}
	if found == nil {
		t.Fatalf("Qwikshop pattern missing from %+v", ccs)
	}
	if found.Support != 0.5 {
		t.Fatalf("pattern support = %v, want 0.5", found.Support)
	}
	// Sorted by support descending.
	for i := 1; i < len(ccs); i++ {
		if ccs[i-1].Support < ccs[i].Support {
			t.Fatal("compound critiques not sorted by support")
		}
	}
}

func TestMineCompoundNoContradictions(t *testing.T) {
	cat := cameraCatalog()
	ref, _ := cat.Item(1)
	ccs, err := MineCompoundCritiques(cat, ref, cat.Items(), 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range ccs {
		seen := map[string]bool{}
		for _, part := range cc.Parts {
			if seen[part.Attr] {
				t.Fatalf("contradictory pattern %+v", cc)
			}
			seen[part.Attr] = true
		}
	}
}

func TestMineCompoundSupportsAreHonest(t *testing.T) {
	cat := cameraCatalog()
	ref, _ := cat.Item(1)
	ccs, err := MineCompoundCritiques(cat, ref, cat.Items(), 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cands := cat.Items()
	for _, cc := range ccs {
		matched := ApplyCompound(cat, ref, cands, cc)
		want := cc.Support * 4 // 4 candidates besides ref
		if float64(len(matched)) != want {
			t.Fatalf("pattern %q support %v but matches %d of 4", cc.Label, cc.Support, len(matched))
		}
	}
}

func TestMineCompoundErrors(t *testing.T) {
	cat := cameraCatalog()
	ref, _ := cat.Item(1)
	if _, err := MineCompoundCritiques(cat, ref, []*model.Item{ref}, 0.5, 2); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v", err)
	}
}

func TestDescribeCritique(t *testing.T) {
	cat := cameraCatalog()
	cases := []struct {
		c    Critique
		want string
	}{
		{Critique{Attr: "price", Dir: knowledge.Better}, "cheaper"},
		{Critique{Attr: "price", Dir: knowledge.Worse}, "more expensive"},
		{Critique{Attr: "resolution", Dir: knowledge.Better}, "higher resolution"},
		{Critique{Attr: "memory", Dir: knowledge.Worse}, "less memory"},
		{Critique{Attr: "brand", Dir: knowledge.Different}, "different brand"},
	}
	for _, c := range cases {
		if got := DescribeCritique(cat, c.c); got != c.want {
			t.Fatalf("DescribeCritique(%v) = %q, want %q", c.c, got, c.want)
		}
	}
	// Unknown attribute falls back to a technical rendering.
	if got := DescribeCritique(cat, Critique{Attr: "bogus", Dir: knowledge.Better}); !strings.Contains(got, "bogus") {
		t.Fatalf("unknown attr = %q", got)
	}
}

func TestCritiqueString(t *testing.T) {
	c := Critique{Attr: "price", Dir: knowledge.Better}
	if c.String() != "price:better" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestCritiqueSessionNarrowsMonotonically(t *testing.T) {
	c := dataset.Cameras(dataset.Config{Seed: 51, Users: 3, Items: 80, RatingsPerUser: 2})
	rec := knowledge.New(c.Catalog)
	lo, hi, _ := c.Catalog.NumericRange(dataset.CamPrice)
	prefs := &knowledge.Preferences{
		NumericIdeal: map[string]float64{dataset.CamPrice: lo + (hi-lo)*0.3, dataset.CamResolution: 20},
	}
	s, err := NewCritiqueSession(rec, prefs, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := len(s.Candidates())
	if err := s.ApplyUnit(Critique{Attr: dataset.CamPrice, Dir: knowledge.Better}); err != nil {
		t.Fatal(err)
	}
	after := len(s.Candidates())
	if after >= before {
		t.Fatalf("critique did not narrow: %d -> %d", before, after)
	}
	if s.Steps() != 1 {
		t.Fatalf("steps = %d", s.Steps())
	}
	// Every remaining candidate is cheaper than the old reference was…
	// except we replaced current; just re-check narrowing again works.
	if err := s.ApplyUnit(Critique{Attr: dataset.CamPrice, Dir: knowledge.Better}); err != nil {
		t.Fatal(err)
	}
	if len(s.Candidates()) >= after {
		t.Fatal("second critique did not narrow")
	}
}

func TestCritiqueSessionNoMatchesKeepsState(t *testing.T) {
	cat := cameraCatalog()
	rec := knowledge.New(cat)
	prefs := &knowledge.Preferences{NumericIdeal: map[string]float64{"price": 100}}
	s, err := NewCritiqueSession(rec, prefs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Narrow down to the cheapest; then asking for cheaper again fails.
	for {
		if err := s.ApplyUnit(Critique{Attr: "price", Dir: knowledge.Better}); err != nil {
			if !errors.Is(err, ErrNoMatches) {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
	}
	if len(s.Candidates()) == 0 || s.Current() == nil {
		t.Fatal("failed critique should not destroy session state")
	}
	if s.Current().Numeric["price"] != 200 {
		t.Fatalf("should end on the cheapest item, got %v", s.Current().Numeric["price"])
	}
}

func TestCritiqueSessionCompounds(t *testing.T) {
	cat := cameraCatalog()
	rec := knowledge.New(cat)
	prefs := &knowledge.Preferences{NumericIdeal: map[string]float64{"resolution": 20}}
	s, err := NewCritiqueSession(rec, prefs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ccs := s.Compounds(0.3, 3, 5)
	for _, cc := range ccs {
		if len(cc.Parts) < 2 {
			t.Fatalf("unit critique leaked into compounds: %+v", cc)
		}
	}
	if len(ccs) > 5 {
		t.Fatal("cap not respected")
	}
	if len(ccs) > 0 {
		if err := s.ApplyCompound(ccs[0]); err != nil {
			t.Fatalf("applying mined compound failed: %v", err)
		}
	}
}

func TestNewCritiqueSessionEmpty(t *testing.T) {
	cat := cameraCatalog()
	rec := knowledge.New(cat)
	_, err := NewCritiqueSession(rec, &knowledge.Preferences{}, []knowledge.Constraint{
		{Attr: "price", Op: knowledge.Le, Num: 1},
	})
	if !errors.Is(err, ErrDialogExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func ids(items []*model.Item) []model.ItemID {
	out := make([]model.ItemID, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}
