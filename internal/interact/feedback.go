package interact

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/rng"
)

// OpinionKind enumerates the explicit opinion feedback of Section 5.4.
type OpinionKind int

// Opinion kinds.
const (
	// MoreLikeThis: the user wants more items of this type right now.
	MoreLikeThis OpinionKind = iota
	// MoreLater ("More later!"): liked the type, had enough for now —
	// keep it in the profile but stop showing similar items this
	// session.
	MoreLater
	// GiveMeMore ("Give me more!"): discovered a new vein, dig in.
	GiveMeMore
	// AlreadyKnow ("I already know this!"): correct recommendation,
	// already consumed; do not increase the likelihood of similar
	// recommendations, but do not treat it as negative.
	AlreadyKnow
	// NoMoreLikeThis ("No more like this!"): dislike or disinterest.
	NoMoreLikeThis
	// NotThisAspect: a finer-grained negative — the user likes the item
	// in general but rejects one aspect (the paper's example: likes the
	// sport, not the distant location). Requires Aspect.
	NotThisAspect
	// SurpriseMe: broaden horizons with random recommendations.
	SurpriseMe
)

func (k OpinionKind) String() string {
	switch k {
	case MoreLikeThis:
		return "more-like-this"
	case MoreLater:
		return "more-later"
	case GiveMeMore:
		return "give-me-more"
	case AlreadyKnow:
		return "already-know"
	case NoMoreLikeThis:
		return "no-more-like-this"
	case NotThisAspect:
		return "not-this-aspect"
	case SurpriseMe:
		return "surprise-me"
	default:
		return fmt.Sprintf("OpinionKind(%d)", int(k))
	}
}

// Opinion is one piece of explicit feedback about an item (or, for
// SurpriseMe, about the session).
type Opinion struct {
	Kind OpinionKind
	Item model.ItemID
	// Aspect names the rejected keyword for NotThisAspect.
	Aspect string
}

// ErrBadOpinion is returned for structurally invalid feedback.
var ErrBadOpinion = errors.New("interact: invalid opinion")

// FeedbackModel accumulates opinion feedback and re-ranks candidate
// predictions accordingly. It layers on top of any recommender: the
// base scores come in, boosts and blocks are applied, and (when the
// user asked to be surprised) random exploration is mixed in with its
// extent visible on a sliding scale — the paper's "mark on a sliding
// bar to which extent it offers random recommendations".
type FeedbackModel struct {
	// boosts adjusts keyword scores: positive for MoreLikeThis /
	// GiveMeMore, negative for NoMoreLikeThis / NotThisAspect.
	boosts map[string]float64
	// sessionMuted keywords (MoreLater) are filtered this session but
	// keep their positive boost for future sessions.
	sessionMuted map[string]bool
	// blockedItems are never shown again.
	blockedItems map[model.ItemID]bool
	// knownItems came back as AlreadyKnow: excluded from candidates,
	// no boost change.
	knownItems map[model.ItemID]bool
	// surprise in [0,1] is the exploration rate.
	surprise float64
	history  []Opinion
}

// NewFeedbackModel returns an empty feedback model.
func NewFeedbackModel() *FeedbackModel {
	return &FeedbackModel{
		boosts:       map[string]float64{},
		sessionMuted: map[string]bool{},
		blockedItems: map[model.ItemID]bool{},
		knownItems:   map[model.ItemID]bool{},
	}
}

// Surprise returns the current exploration rate — the value the
// sliding bar displays.
func (f *FeedbackModel) Surprise() float64 { return f.surprise }

// History returns all applied opinions in order.
func (f *FeedbackModel) History() []Opinion { return f.history }

// Boost returns the accumulated boost for a keyword.
func (f *FeedbackModel) Boost(keyword string) float64 { return f.boosts[keyword] }

// Apply folds one opinion into the model. The item resolves keyword
// effects; it may be nil only for SurpriseMe.
func (f *FeedbackModel) Apply(op Opinion, item *model.Item) error {
	switch op.Kind {
	case SurpriseMe:
		f.surprise = clamp01(f.surprise + 0.25)
	case MoreLikeThis:
		if item == nil {
			return fmt.Errorf("%w: %s needs an item", ErrBadOpinion, op.Kind)
		}
		for _, k := range item.Keywords {
			f.boosts[k] += 0.3
		}
	case GiveMeMore:
		if item == nil {
			return fmt.Errorf("%w: %s needs an item", ErrBadOpinion, op.Kind)
		}
		for _, k := range item.Keywords {
			f.boosts[k] += 0.6
		}
	case MoreLater:
		if item == nil {
			return fmt.Errorf("%w: %s needs an item", ErrBadOpinion, op.Kind)
		}
		for _, k := range item.Keywords {
			f.boosts[k] += 0.3
			f.sessionMuted[k] = true
		}
	case AlreadyKnow:
		if item == nil {
			return fmt.Errorf("%w: %s needs an item", ErrBadOpinion, op.Kind)
		}
		f.knownItems[item.ID] = true
	case NoMoreLikeThis:
		if item == nil {
			return fmt.Errorf("%w: %s needs an item", ErrBadOpinion, op.Kind)
		}
		f.blockedItems[item.ID] = true
		for _, k := range item.Keywords {
			f.boosts[k] -= 0.5
		}
	case NotThisAspect:
		if item == nil || op.Aspect == "" {
			return fmt.Errorf("%w: %s needs an item and an aspect", ErrBadOpinion, op.Kind)
		}
		if !item.HasKeyword(op.Aspect) {
			return fmt.Errorf("%w: item %d has no aspect %q", ErrBadOpinion, item.ID, op.Aspect)
		}
		// Penalise only the rejected aspect; gently support the rest.
		f.boosts[op.Aspect] -= 0.6
		for _, k := range item.Keywords {
			if k != op.Aspect {
				f.boosts[k] += 0.15
			}
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadOpinion, int(op.Kind))
	}
	f.history = append(f.history, op)
	return nil
}

// Rerank applies the model to base predictions over cat: blocked and
// known items are removed, keyword boosts shift scores, muted keywords
// are filtered for this session, and with probability proportional to
// the surprise rate random unseen items are spliced in near the top.
// rnd drives the exploration; the input slice is not modified.
func (f *FeedbackModel) Rerank(cat *model.Catalog, preds []recsys.Prediction, rnd *rng.RNG) []recsys.Prediction {
	kept := make([]recsys.Prediction, 0, len(preds))
	present := map[model.ItemID]bool{}
	for _, p := range preds {
		it, err := cat.Item(p.Item)
		if err != nil || f.blockedItems[p.Item] || f.knownItems[p.Item] {
			continue
		}
		muted := false
		var boost float64
		for _, k := range it.Keywords {
			if f.sessionMuted[k] {
				muted = true
			}
			boost += f.boosts[k]
		}
		if muted {
			continue
		}
		p.Score = model.ClampRating(p.Score + boost)
		kept = append(kept, p)
		present[p.Item] = true
	}
	recsys.SortPredictions(kept)
	if f.surprise > 0 && rnd != nil {
		// Splice surprise picks: items outside the candidate list,
		// inserted with midpoint scores so they surface without
		// pretending to be sure bets.
		nSurprise := int(f.surprise * 3)
		items := cat.Items()
		for i := 0; i < nSurprise && len(items) > 0; i++ {
			it := items[rnd.Intn(len(items))]
			if present[it.ID] || f.blockedItems[it.ID] || f.knownItems[it.ID] {
				continue
			}
			present[it.ID] = true
			pick := recsys.Prediction{Item: it.ID, Score: 3, Confidence: 0}
			pos := 0
			if len(kept) > 0 {
				pos = rnd.Intn(minInt(3, len(kept)) + 1)
			}
			kept = append(kept, recsys.Prediction{})
			copy(kept[pos+1:], kept[pos:])
			kept[pos] = pick
		}
	}
	return kept
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
