package interact

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/rng"
)

func feedbackCatalog() *model.Catalog {
	cat := model.NewCatalog("news")
	cat.MustAdd(&model.Item{ID: 1, Title: "Football final", Keywords: []string{"sport", "football"}})
	cat.MustAdd(&model.Item{ID: 2, Title: "Hockey derby", Keywords: []string{"sport", "hockey"}})
	cat.MustAdd(&model.Item{ID: 3, Title: "Gadget news", Keywords: []string{"technology", "gadgets"}})
	cat.MustAdd(&model.Item{ID: 4, Title: "Away game report", Keywords: []string{"sport", "football", "distant"}})
	return cat
}

func basePreds() []recsys.Prediction {
	return []recsys.Prediction{
		{Item: 1, Score: 3.9, Confidence: 0.8},
		{Item: 2, Score: 3.8, Confidence: 0.7},
		{Item: 3, Score: 3.5, Confidence: 0.6},
		{Item: 4, Score: 3.4, Confidence: 0.6},
	}
}

func TestMoreLikeThisBoosts(t *testing.T) {
	cat := feedbackCatalog()
	f := NewFeedbackModel()
	it, _ := cat.Item(3)
	if err := f.Apply(Opinion{Kind: MoreLikeThis, Item: 3}, it); err != nil {
		t.Fatal(err)
	}
	out := f.Rerank(cat, basePreds(), nil)
	if out[0].Item != 3 {
		t.Fatalf("boosted item should lead, got %d", out[0].Item)
	}
	if f.Boost("technology") <= 0 {
		t.Fatal("boost not recorded")
	}
}

func TestNoMoreLikeThisBlocksAndPenalises(t *testing.T) {
	cat := feedbackCatalog()
	f := NewFeedbackModel()
	it, _ := cat.Item(2)
	if err := f.Apply(Opinion{Kind: NoMoreLikeThis, Item: 2}, it); err != nil {
		t.Fatal(err)
	}
	out := f.Rerank(cat, basePreds(), nil)
	for _, p := range out {
		if p.Item == 2 {
			t.Fatal("blocked item still present")
		}
	}
	// The shared "sport" keyword was penalised, so football items sink
	// below technology.
	if out[0].Item != 3 {
		t.Fatalf("expected technology first after sport penalty, got %d", out[0].Item)
	}
}

func TestAlreadyKnowExcludesWithoutPenalty(t *testing.T) {
	cat := feedbackCatalog()
	f := NewFeedbackModel()
	it, _ := cat.Item(1)
	if err := f.Apply(Opinion{Kind: AlreadyKnow, Item: 1}, it); err != nil {
		t.Fatal(err)
	}
	out := f.Rerank(cat, basePreds(), nil)
	for _, p := range out {
		if p.Item == 1 {
			t.Fatal("known item still present")
		}
	}
	if f.Boost("football") != 0 {
		t.Fatal("AlreadyKnow must not change keyword boosts")
	}
	// Other football items keep their ranking (no penalty).
	if out[0].Item != 2 {
		t.Fatalf("ranking disturbed: %v", out)
	}
}

func TestMoreLaterMutesSessionKeepsBoost(t *testing.T) {
	cat := feedbackCatalog()
	f := NewFeedbackModel()
	it, _ := cat.Item(1)
	if err := f.Apply(Opinion{Kind: MoreLater, Item: 1}, it); err != nil {
		t.Fatal(err)
	}
	out := f.Rerank(cat, basePreds(), nil)
	// Everything sharing the muted keywords disappears this session.
	for _, p := range out {
		if p.Item == 1 || p.Item == 2 || p.Item == 4 {
			t.Fatalf("muted sport item %d still shown", p.Item)
		}
	}
	if f.Boost("football") <= 0 {
		t.Fatal("MoreLater must keep a positive boost for later sessions")
	}
}

func TestNotThisAspect(t *testing.T) {
	cat := feedbackCatalog()
	f := NewFeedbackModel()
	it, _ := cat.Item(4)
	// The paper's example: likes the sport, not the distant location.
	if err := f.Apply(Opinion{Kind: NotThisAspect, Item: 4, Aspect: "distant"}, it); err != nil {
		t.Fatal(err)
	}
	if f.Boost("distant") >= 0 {
		t.Fatal("rejected aspect should be penalised")
	}
	if f.Boost("football") <= 0 {
		t.Fatal("other aspects should be gently supported")
	}
	// Aspect must exist on the item.
	if err := f.Apply(Opinion{Kind: NotThisAspect, Item: 4, Aspect: "space"}, it); !errors.Is(err, ErrBadOpinion) {
		t.Fatalf("bogus aspect err = %v", err)
	}
}

func TestSurpriseMeMixesExploration(t *testing.T) {
	cat := feedbackCatalog()
	f := NewFeedbackModel()
	if err := f.Apply(Opinion{Kind: SurpriseMe}, nil); err != nil {
		t.Fatal(err)
	}
	if f.Surprise() != 0.25 {
		t.Fatalf("surprise = %v", f.Surprise())
	}
	// Crank it up; the slider saturates at 1.
	for i := 0; i < 10; i++ {
		_ = f.Apply(Opinion{Kind: SurpriseMe}, nil)
	}
	if f.Surprise() != 1 {
		t.Fatalf("surprise = %v, want saturated 1", f.Surprise())
	}
	// With full surprise and a list missing item 4, exploration can
	// surface it.
	preds := basePreds()[:3]
	found := false
	r := rng.New(7)
	for trial := 0; trial < 50 && !found; trial++ {
		out := f.Rerank(cat, preds, r)
		for _, p := range out {
			if p.Item == 4 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("surprise never surfaced an unseen item in 50 trials")
	}
}

func TestRerankNoDuplicatesUnderSurprise(t *testing.T) {
	cat := feedbackCatalog()
	f := NewFeedbackModel()
	for i := 0; i < 4; i++ {
		_ = f.Apply(Opinion{Kind: SurpriseMe}, nil)
	}
	r := rng.New(9)
	for trial := 0; trial < 30; trial++ {
		out := f.Rerank(cat, basePreds(), r)
		seen := map[model.ItemID]bool{}
		for _, p := range out {
			if seen[p.Item] {
				t.Fatalf("duplicate item %d in %v", p.Item, out)
			}
			seen[p.Item] = true
		}
	}
}

func TestApplyValidation(t *testing.T) {
	f := NewFeedbackModel()
	for _, kind := range []OpinionKind{MoreLikeThis, MoreLater, GiveMeMore, AlreadyKnow, NoMoreLikeThis} {
		if err := f.Apply(Opinion{Kind: kind, Item: 1}, nil); !errors.Is(err, ErrBadOpinion) {
			t.Fatalf("%v with nil item: err = %v", kind, err)
		}
	}
	if err := f.Apply(Opinion{Kind: OpinionKind(99)}, nil); !errors.Is(err, ErrBadOpinion) {
		t.Fatalf("unknown kind err = %v", err)
	}
	if len(f.History()) != 0 {
		t.Fatal("failed opinions must not enter history")
	}
}

func TestOpinionKindStrings(t *testing.T) {
	kinds := []OpinionKind{MoreLikeThis, MoreLater, GiveMeMore, AlreadyKnow, NoMoreLikeThis, NotThisAspect, SurpriseMe}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad kind string %q", s)
		}
		seen[s] = true
	}
}

func TestGiveMeMoreStrongerThanMoreLikeThis(t *testing.T) {
	cat := feedbackCatalog()
	a := NewFeedbackModel()
	b := NewFeedbackModel()
	it, _ := cat.Item(1)
	_ = a.Apply(Opinion{Kind: MoreLikeThis, Item: 1}, it)
	_ = b.Apply(Opinion{Kind: GiveMeMore, Item: 1}, it)
	if b.Boost("football") <= a.Boost("football") {
		t.Fatal("GiveMeMore should boost harder than MoreLikeThis")
	}
}
