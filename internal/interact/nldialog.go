package interact

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// NLDialog reproduces the plain-English preference dialog the survey
// quotes from Wärnestål (Section 5.1):
//
//	User:   I feel like watching a thriller.
//	System: Can you tell me one of your favourite thriller movies?
//	User:   Uhm, I'm not sure
//	System: Okay. Can you tell me one of your favourite actors or
//	        actresses?
//	User:   I think Bruce Willis is good
//	System: I see. Have you seen Pulp Fiction?
//	User:   No
//	System: Pulp Fiction is a thriller starring Bruce Willis
//
// As the survey notes, the final line "does not explain directly ...
// It does however do so indirectly, by reiterating (and satisfying)
// the user's requirements." The dialog is a small state machine over
// the catalogue: a genre request, an optional favourite-item or
// favourite-creator elicitation, and a proposal whose phrasing
// reiterates the collected requirements.
type NLDialog struct {
	cat *model.Catalog

	state      nlState
	genre      string
	creator    string
	rejected   map[model.ItemID]bool
	proposed   *model.Item
	transcript []DialogLine
}

// DialogLine is one utterance of the conversation.
type DialogLine struct {
	Who  string // "User" or "System"
	Text string
}

type nlState int

const (
	nlAwaitGenre nlState = iota
	nlAwaitFavoriteItem
	nlAwaitCreator
	nlAwaitVerdict
	nlDone
)

// NewNLDialog starts a conversation over the catalogue.
func NewNLDialog(cat *model.Catalog) *NLDialog {
	return &NLDialog{cat: cat, rejected: map[model.ItemID]bool{}}
}

// Transcript returns the conversation so far.
func (d *NLDialog) Transcript() []DialogLine { return d.transcript }

// Render prints the transcript in the paper's format.
func (d *NLDialog) Render() string {
	var b strings.Builder
	for _, l := range d.transcript {
		fmt.Fprintf(&b, "%s: %s\n", l.Who, l.Text)
	}
	return b.String()
}

func (d *NLDialog) user(text string) { d.transcript = append(d.transcript, DialogLine{"User", text}) }
func (d *NLDialog) system(text string) string {
	d.transcript = append(d.transcript, DialogLine{"System", text})
	return text
}

// Say routes a free-text user utterance by dialog state, extracting
// genre, title or creator mentions from the catalogue's vocabulary.
// The returned string is the system's reply.
func (d *NLDialog) Say(text string) string {
	d.user(text)
	lower := strings.ToLower(text)
	switch d.state {
	case nlAwaitGenre:
		for _, g := range d.cat.Keywords() {
			if strings.Contains(lower, strings.ToLower(g)) {
				d.genre = g
				d.state = nlAwaitFavoriteItem
				return d.system(fmt.Sprintf("Can you tell me one of your favourite %s movies?", g))
			}
		}
		return d.system("What kind of movie do you feel like?")
	case nlAwaitFavoriteItem:
		if isUnsure(lower) {
			d.state = nlAwaitCreator
			return d.system("Okay. Can you tell me one of your favourite actors or actresses?")
		}
		for _, it := range d.cat.Items() {
			if it.Title != "" && strings.Contains(lower, strings.ToLower(it.Title)) {
				d.creator = it.Creator
				return d.propose()
			}
		}
		d.state = nlAwaitCreator
		return d.system("I don't know that one. Can you tell me one of your favourite actors or actresses?")
	case nlAwaitCreator:
		for _, it := range d.cat.Items() {
			if it.Creator != "" && strings.Contains(lower, strings.ToLower(it.Creator)) {
				d.creator = it.Creator
				return d.propose()
			}
		}
		if isUnsure(lower) {
			// Propose on genre alone.
			return d.propose()
		}
		return d.system("I don't recognise that name. Anyone else you like?")
	case nlAwaitVerdict:
		switch {
		case strings.Contains(lower, "no"):
			// "Have you seen X?" -> No: the proposal stands, with the
			// indirect explanation.
			return d.explainProposal()
		case strings.Contains(lower, "yes"), strings.Contains(lower, "seen it"):
			if d.proposed != nil {
				d.rejected[d.proposed.ID] = true
			}
			return d.propose()
		default:
			return d.system(fmt.Sprintf("Have you seen %s?", d.proposed.Title))
		}
	default:
		return d.system("Enjoy the movie!")
	}
}

func isUnsure(lower string) bool {
	for _, cue := range []string{"not sure", "don't know", "dont know", "no idea", "uhm", "um"} {
		if strings.Contains(lower, cue) {
			return true
		}
	}
	return false
}

// propose selects the best unrejected item matching the collected
// requirements (genre, then creator, most popular first) and asks the
// "Have you seen X?" question.
func (d *NLDialog) propose() string {
	var best *model.Item
	for _, it := range d.cat.Items() {
		if d.rejected[it.ID] {
			continue
		}
		if d.genre != "" && !it.HasKeyword(d.genre) {
			continue
		}
		if d.creator != "" && it.Creator != d.creator {
			continue
		}
		if best == nil || it.Popularity > best.Popularity {
			best = it
		}
	}
	if best == nil && d.creator != "" {
		// Relax the creator constraint rather than dead-ending.
		d.creator = ""
		return d.propose()
	}
	if best == nil {
		d.state = nlDone
		return d.system(fmt.Sprintf("I'm afraid I have no more %s movies to suggest.", d.genre))
	}
	d.proposed = best
	d.state = nlAwaitVerdict
	return d.system(fmt.Sprintf("I see. Have you seen %s?", best.Title))
}

// explainProposal delivers the indirect explanation that reiterates
// the satisfied requirements.
func (d *NLDialog) explainProposal() string {
	d.state = nlDone
	switch {
	case d.genre != "" && d.creator != "":
		return d.system(fmt.Sprintf("%s is a %s starring %s", d.proposed.Title, d.genre, d.creator))
	case d.genre != "":
		return d.system(fmt.Sprintf("%s is a %s", d.proposed.Title, d.genre))
	default:
		return d.system(fmt.Sprintf("%s should suit you", d.proposed.Title))
	}
}

// Proposed returns the item currently on the table (nil before the
// first proposal).
func (d *NLDialog) Proposed() *model.Item { return d.proposed }

// Done reports whether the conversation has concluded.
func (d *NLDialog) Done() bool { return d.state == nlDone }
