package interact

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// pulpFixture builds a catalogue containing the paper's example movie.
func pulpFixture() *model.Catalog {
	cat := model.NewCatalog("movies")
	add := func(id model.ItemID, title, creator string, pop float64, kws ...string) {
		cat.MustAdd(&model.Item{ID: id, Title: title, Creator: creator, Popularity: pop, Keywords: kws})
	}
	add(1, "Pulp Fiction", "Bruce Willis", 0.9, "thriller")
	add(2, "Die Harder Still", "Bruce Willis", 0.7, "action")
	add(3, "Quiet Thriller", "Someone Else", 0.5, "thriller")
	add(4, "A Comedy", "Nobody", 0.8, "comedy")
	return cat
}

func TestNLDialogReproducesPaperTranscript(t *testing.T) {
	d := NewNLDialog(pulpFixture())
	replies := []struct {
		say  string
		want string
	}{
		{"I feel like watching a thriller.", "Can you tell me one of your favourite thriller movies?"},
		{"Uhm, I'm not sure", "Okay. Can you tell me one of your favourite actors or actresses?"},
		{"I think Bruce Willis is good", "I see. Have you seen Pulp Fiction?"},
		{"No", "Pulp Fiction is a thriller starring Bruce Willis"},
	}
	for _, step := range replies {
		got := d.Say(step.say)
		if got != step.want {
			t.Fatalf("Say(%q) = %q, want %q\ntranscript:\n%s", step.say, got, step.want, d.Render())
		}
	}
	if !d.Done() {
		t.Fatal("dialog should conclude after the indirect explanation")
	}
	if d.Proposed() == nil || d.Proposed().Title != "Pulp Fiction" {
		t.Fatalf("proposed = %+v", d.Proposed())
	}
	// The transcript alternates User/System and renders in the paper's
	// format.
	out := d.Render()
	if !strings.HasPrefix(out, "User: I feel like watching a thriller.") {
		t.Fatalf("render:\n%s", out)
	}
	if len(d.Transcript()) != 8 {
		t.Fatalf("transcript has %d lines", len(d.Transcript()))
	}
}

func TestNLDialogAlreadySeenMovesOn(t *testing.T) {
	d := NewNLDialog(pulpFixture())
	d.Say("something with a thriller in it")
	d.Say("no idea")
	d.Say("Bruce Willis")
	got := d.Say("Yes, seen it")
	// Pulp Fiction rejected; no other Bruce Willis thriller exists, so
	// the creator constraint relaxes to keep the conversation alive.
	if !strings.Contains(got, "Quiet Thriller") {
		t.Fatalf("after rejection got %q", got)
	}
}

func TestNLDialogFavoriteTitleShortcut(t *testing.T) {
	d := NewNLDialog(pulpFixture())
	d.Say("a thriller please")
	got := d.Say("I loved Pulp Fiction")
	// Naming a favourite seeds the creator and proposes; the favourite
	// itself is the best match (the dialog asks before assuming it is
	// seen).
	if !strings.Contains(got, "Have you seen") {
		t.Fatalf("got %q", got)
	}
}

func TestNLDialogUnknownGenreReprompts(t *testing.T) {
	d := NewNLDialog(pulpFixture())
	if got := d.Say("surprise me somehow"); !strings.Contains(got, "What kind of movie") {
		t.Fatalf("got %q", got)
	}
	// Still answerable afterwards.
	if got := d.Say("a comedy then"); !strings.Contains(got, "favourite comedy movies") {
		t.Fatalf("got %q", got)
	}
}

func TestNLDialogUnknownCreatorReprompts(t *testing.T) {
	d := NewNLDialog(pulpFixture())
	d.Say("thriller")
	d.Say("not sure")
	if got := d.Say("Maximilian Obscure is great"); !strings.Contains(got, "don't recognise") {
		t.Fatalf("got %q", got)
	}
	// Giving up on the creator proposes on genre alone.
	if got := d.Say("I really don't know"); !strings.Contains(got, "Have you seen") {
		t.Fatalf("got %q", got)
	}
}

func TestNLDialogExhaustion(t *testing.T) {
	cat := model.NewCatalog("movies")
	cat.MustAdd(&model.Item{ID: 1, Title: "Only Thriller", Popularity: 0.5, Keywords: []string{"thriller"}})
	d := NewNLDialog(cat)
	d.Say("thriller")
	d.Say("not sure")
	d.Say("no favourites, sorry, really not sure")
	got := d.Say("yes, seen it")
	if !strings.Contains(got, "no more thriller movies") {
		t.Fatalf("got %q", got)
	}
	if !d.Done() {
		t.Fatal("exhausted dialog should be done")
	}
}
