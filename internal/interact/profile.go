package interact

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

// The scrutable user profile of Czarkowski's SASY (survey Figure 1,
// Sections 2.2 and 3.2): the user can see that adaptation is based on
// personal attributes stored in their profile, that the profile mixes
// information they volunteered with information the system inferred,
// and that they can change it to control the personalisation.

// Provenance records how a profile entry came to be.
type Provenance int

// Provenance values.
const (
	// Volunteered entries were stated by the user.
	Volunteered Provenance = iota
	// Inferred entries were derived by the system from observations.
	Inferred
)

func (p Provenance) String() string {
	switch p {
	case Volunteered:
		return "volunteered"
	case Inferred:
		return "inferred"
	default:
		return fmt.Sprintf("Provenance(%d)", int(p))
	}
}

// ProfileEntry is one personal attribute with provenance and the
// evidence behind it.
type ProfileEntry struct {
	Key    string
	Value  string
	Source Provenance
	// Evidence explains an inferred entry ("you recorded 12 war
	// movies"); empty for volunteered ones.
	Evidence string
}

// ChangeKind classifies profile mutations for the audit log.
type ChangeKind int

// Profile change kinds.
const (
	ChangeSet ChangeKind = iota
	ChangeCorrect
	ChangeRemove
)

// Change is one audit-log record.
type Change struct {
	Kind     ChangeKind
	Key      string
	Old, New string
}

// ScrutableProfile is an editable, inspectable user model.
type ScrutableProfile struct {
	entries map[string]ProfileEntry
	log     []Change
}

// NewScrutableProfile returns an empty profile.
func NewScrutableProfile() *ScrutableProfile {
	return &ScrutableProfile{entries: map[string]ProfileEntry{}}
}

// ErrNoEntry is returned when correcting or removing an absent key.
var ErrNoEntry = errors.New("interact: no such profile entry")

// Set records an entry (system- or user-initiated). Inferred values
// never overwrite a volunteered one — the user's own statement wins,
// which is the control guarantee scrutability promises.
func (p *ScrutableProfile) Set(e ProfileEntry) {
	if old, ok := p.entries[e.Key]; ok && old.Source == Volunteered && e.Source == Inferred {
		return
	}
	old := p.entries[e.Key]
	p.entries[e.Key] = e
	p.log = append(p.log, Change{Kind: ChangeSet, Key: e.Key, Old: old.Value, New: e.Value})
}

// Correct overrides an entry with a user-stated value, marking it
// volunteered. It fails for unknown keys so typos surface.
func (p *ScrutableProfile) Correct(key, value string) error {
	old, ok := p.entries[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoEntry, key)
	}
	p.entries[key] = ProfileEntry{Key: key, Value: value, Source: Volunteered}
	p.log = append(p.log, Change{Kind: ChangeCorrect, Key: key, Old: old.Value, New: value})
	return nil
}

// Remove deletes an entry entirely.
func (p *ScrutableProfile) Remove(key string) error {
	old, ok := p.entries[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoEntry, key)
	}
	delete(p.entries, key)
	p.log = append(p.log, Change{Kind: ChangeRemove, Key: key, Old: old.Value})
	return nil
}

// Get returns an entry.
func (p *ScrutableProfile) Get(key string) (ProfileEntry, bool) {
	e, ok := p.entries[key]
	return e, ok
}

// Entries returns all entries sorted by key.
func (p *ScrutableProfile) Entries() []ProfileEntry {
	out := make([]ProfileEntry, 0, len(p.entries))
	for _, e := range p.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// Log returns the audit trail.
func (p *ScrutableProfile) Log() []Change { return p.log }

// Render draws the profile the way SASY's "why?" page does: every
// attribute, its value, where it came from, and the evidence for
// inferred entries — with the standing invitation to change it.
func (p *ScrutableProfile) Render() string {
	var b strings.Builder
	b.WriteString("Your profile (you can change any entry):\n")
	for _, e := range p.Entries() {
		fmt.Fprintf(&b, "  %-16s = %-14s [%s]", e.Key, e.Value, e.Source)
		if e.Evidence != "" {
			fmt.Fprintf(&b, " — %s", e.Evidence)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ToPreferences compiles the profile into a knowledge-based preference
// model against a catalogue schema: entries whose key matches a
// categorical attribute become preferred values; entries matching a
// numeric attribute (parsed "ideal:<x>" is not supported — numeric
// ideals are profile-external) are skipped. This is how the scrutable
// holiday recommender turns "travelling with children = yes" into
// personalisation the user can see and veto.
func (p *ScrutableProfile) ToPreferences(cat *model.Catalog) *knowledge.Preferences {
	prefs := &knowledge.Preferences{
		CategoricalPrefer: map[string]string{},
		CategoricalWeight: map[string]float64{},
	}
	for _, e := range p.Entries() {
		def, ok := cat.AttrDef(e.Key)
		if !ok || def.Kind != model.Categorical {
			continue
		}
		prefs.CategoricalPrefer[e.Key] = e.Value
		// Volunteered statements weigh more than inferences.
		if e.Source == Volunteered {
			prefs.CategoricalWeight[e.Key] = 2
		} else {
			prefs.CategoricalWeight[e.Key] = 1
		}
	}
	return prefs
}
