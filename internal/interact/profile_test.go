package interact

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

func TestScrutableProfileSetAndRender(t *testing.T) {
	p := NewScrutableProfile()
	p.Set(ProfileEntry{Key: "budget", Value: "low", Source: Volunteered})
	p.Set(ProfileEntry{Key: "kidfriendly", Value: "yes", Source: Inferred,
		Evidence: "you searched for family rooms twice"})
	out := p.Render()
	if !strings.Contains(out, "budget") || !strings.Contains(out, "[volunteered]") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "[inferred] — you searched for family rooms twice") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "you can change any entry") {
		t.Fatalf("scrutability invitation missing:\n%s", out)
	}
}

func TestInferredNeverOverwritesVolunteered(t *testing.T) {
	p := NewScrutableProfile()
	p.Set(ProfileEntry{Key: "climate", Value: "cold", Source: Volunteered})
	p.Set(ProfileEntry{Key: "climate", Value: "tropical", Source: Inferred})
	e, _ := p.Get("climate")
	if e.Value != "cold" || e.Source != Volunteered {
		t.Fatalf("volunteered entry was overwritten: %+v", e)
	}
	// But volunteered can overwrite inferred.
	p.Set(ProfileEntry{Key: "setting", Value: "beach", Source: Inferred})
	p.Set(ProfileEntry{Key: "setting", Value: "city", Source: Volunteered})
	e, _ = p.Get("setting")
	if e.Value != "city" {
		t.Fatalf("user statement should win: %+v", e)
	}
}

func TestCorrectMarksVolunteered(t *testing.T) {
	p := NewScrutableProfile()
	p.Set(ProfileEntry{Key: "kidfriendly", Value: "no", Source: Inferred, Evidence: "guessed"})
	if err := p.Correct("kidfriendly", "yes"); err != nil {
		t.Fatal(err)
	}
	e, _ := p.Get("kidfriendly")
	if e.Value != "yes" || e.Source != Volunteered || e.Evidence != "" {
		t.Fatalf("corrected entry = %+v", e)
	}
	if err := p.Correct("nonexistent", "x"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveAndLog(t *testing.T) {
	p := NewScrutableProfile()
	p.Set(ProfileEntry{Key: "a", Value: "1", Source: Inferred})
	if err := p.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Get("a"); ok {
		t.Fatal("entry not removed")
	}
	if err := p.Remove("a"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("double remove err = %v", err)
	}
	log := p.Log()
	if len(log) != 2 || log[0].Kind != ChangeSet || log[1].Kind != ChangeRemove {
		t.Fatalf("log = %+v", log)
	}
}

func TestEntriesSorted(t *testing.T) {
	p := NewScrutableProfile()
	p.Set(ProfileEntry{Key: "z", Value: "1", Source: Inferred})
	p.Set(ProfileEntry{Key: "a", Value: "2", Source: Inferred})
	es := p.Entries()
	if es[0].Key != "a" || es[1].Key != "z" {
		t.Fatalf("entries = %+v", es)
	}
}

func TestToPreferencesWeightsProvenance(t *testing.T) {
	c := dataset.Holidays(dataset.Config{Seed: 5, Users: 3, Items: 20, RatingsPerUser: 2})
	p := NewScrutableProfile()
	p.Set(ProfileEntry{Key: dataset.HolKids, Value: "yes", Source: Volunteered})
	p.Set(ProfileEntry{Key: dataset.HolClimate, Value: "tropical", Source: Inferred, Evidence: "booked Costa Azul"})
	p.Set(ProfileEntry{Key: "shoe-size", Value: "43", Source: Volunteered}) // not in schema
	prefs := p.ToPreferences(c.Catalog)
	if prefs.CategoricalPrefer[dataset.HolKids] != "yes" {
		t.Fatal("kidfriendly preference missing")
	}
	if prefs.CategoricalWeight[dataset.HolKids] != 2 || prefs.CategoricalWeight[dataset.HolClimate] != 1 {
		t.Fatalf("weights = %+v", prefs.CategoricalWeight)
	}
	if _, ok := prefs.CategoricalPrefer["shoe-size"]; ok {
		t.Fatal("non-schema entry leaked into preferences")
	}
}

func TestScrutinizationChangesRecommendations(t *testing.T) {
	// End-to-end scrutability: correcting a wrong inference must change
	// what the knowledge-based recommender returns — "the user exerts
	// control over the type of recommendations made".
	c := dataset.Holidays(dataset.Config{Seed: 8, Users: 3, Items: 60, RatingsPerUser: 2})
	rec := knowledge.New(c.Catalog)
	p := NewScrutableProfile()
	p.Set(ProfileEntry{Key: dataset.HolKids, Value: "no", Source: Inferred, Evidence: "no child tickets observed"})
	before, err := rec.Recommend(p.ToPreferences(c.Catalog), nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Correct(dataset.HolKids, "yes"); err != nil {
		t.Fatal(err)
	}
	after, err := rec.Recommend(p.ToPreferences(c.Catalog), nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if before[0].Item.Categorical[dataset.HolKids] != "no" {
		t.Fatalf("pre-correction top item should be kid-unfriendly: %+v", before[0].Item.Categorical)
	}
	if after[0].Item.Categorical[dataset.HolKids] != "yes" {
		t.Fatalf("post-correction top item should be kid-friendly: %+v", after[0].Item.Categorical)
	}
}

func TestProvenanceString(t *testing.T) {
	if Volunteered.String() != "volunteered" || Inferred.String() != "inferred" {
		t.Fatal("provenance strings")
	}
	if Provenance(7).String() == "" {
		t.Fatal("unknown provenance should stringify")
	}
}

func TestRatingEditor(t *testing.T) {
	m := model.NewMatrix()
	e := NewRatingEditor(m, 1)
	e.Rate(10, 4)
	if v, _ := m.Get(1, 10); v != 4 {
		t.Fatal("rate failed")
	}
	e.Rate(10, 9) // clamped
	if v, _ := m.Get(1, 10); v != 5 {
		t.Fatalf("clamp failed: %v", v)
	}
	if err := e.Undo(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(1, 10); v != 4 {
		t.Fatalf("undo re-rate: %v", v)
	}
	if err := e.Remove(10); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(1, 10); ok {
		t.Fatal("remove failed")
	}
	if err := e.Undo(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(1, 10); v != 4 {
		t.Fatalf("undo remove: %v", v)
	}
	// Undo the original rate: rating disappears entirely.
	if err := e.Undo(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(1, 10); ok {
		t.Fatal("undo of initial rate should delete")
	}
	if err := e.Undo(); !errors.Is(err, ErrNothingToUndo) {
		t.Fatalf("err = %v", err)
	}
	if err := e.Remove(999); !errors.Is(err, ErrNoRating) {
		t.Fatalf("err = %v", err)
	}
}
