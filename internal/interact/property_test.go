package interact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

// Property: every item returned by ApplyCritique satisfies the
// critique relative to the reference, and the reference never appears.
func TestApplyCritiqueSoundnessQuick(t *testing.T) {
	c := dataset.Cameras(dataset.Config{Seed: 101, Users: 3, Items: 60, RatingsPerUser: 2})
	items := c.Catalog.Items()
	crits := UnitCritiques(c.Catalog)
	f := func(refIdx uint16, critIdx uint8) bool {
		ref := items[int(refIdx)%len(items)]
		crit := crits[int(critIdx)%len(crits)]
		out := ApplyCritique(c.Catalog, ref, items, crit)
		for _, it := range out {
			if it.ID == ref.ID {
				return false
			}
			if !crit.Matches(c.Catalog, ref, it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: compound critique supports are exact — the advertised
// support times the candidate count equals the number of matching
// items — and every mined pattern is internally consistent.
func TestMineCompoundExactSupportQuick(t *testing.T) {
	c := dataset.Cameras(dataset.Config{Seed: 103, Users: 3, Items: 40, RatingsPerUser: 2})
	items := c.Catalog.Items()
	f := func(refIdx uint16, minSupRaw uint8) bool {
		ref := items[int(refIdx)%len(items)]
		minSup := 0.05 + float64(minSupRaw%50)/100
		ccs, err := MineCompoundCritiques(c.Catalog, ref, items, minSup, 3)
		if err != nil {
			return false
		}
		others := len(items) - 1
		for _, cc := range ccs {
			if cc.Support < minSup {
				return false
			}
			attrs := map[string]bool{}
			for _, p := range cc.Parts {
				if attrs[p.Attr] {
					return false // contradictory pattern survived
				}
				attrs[p.Attr] = true
			}
			matched := ApplyCompound(c.Catalog, ref, items, cc)
			if math.Abs(float64(len(matched))-cc.Support*float64(others)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a critique session's candidate set never grows, and the
// current item is always among the candidates.
func TestCritiqueSessionInvariantsQuick(t *testing.T) {
	c := dataset.Cameras(dataset.Config{Seed: 107, Users: 3, Items: 80, RatingsPerUser: 2})
	rec := knowledge.New(c.Catalog)
	prefs := &knowledge.Preferences{NumericIdeal: map[string]float64{dataset.CamPrice: 200}}
	crits := UnitCritiques(c.Catalog)
	f := func(moves []uint8, nearest bool) bool {
		s, err := NewCritiqueSession(rec, prefs, nil)
		if err != nil {
			return false
		}
		s.SelectNearest = nearest
		prev := len(s.Candidates())
		for _, m := range moves {
			if len(moves) > 12 {
				moves = moves[:12]
			}
			crit := crits[int(m)%len(crits)]
			if err := s.ApplyUnit(crit); err != nil {
				continue // no matches: state must be unchanged
			}
			cur := len(s.Candidates())
			if cur > prev || cur == 0 {
				return false
			}
			prev = cur
			found := false
			for _, it := range s.Candidates() {
				if it.ID == s.Current().ID {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the scrutable profile's volunteered-wins rule holds under
// arbitrary interleavings of Set operations.
func TestScrutableProfileProtectionQuick(t *testing.T) {
	f := func(ops []struct {
		Key       uint8
		Val       uint8
		Volunteer bool
	}) bool {
		p := NewScrutableProfile()
		lastVolunteered := map[string]string{}
		for _, op := range ops {
			key := string(rune('a' + op.Key%5))
			val := string(rune('0' + op.Val%10))
			src := Inferred
			if op.Volunteer {
				src = Volunteered
				lastVolunteered[key] = val
			}
			p.Set(ProfileEntry{Key: key, Value: val, Source: src})
		}
		for key, want := range lastVolunteered {
			e, ok := p.Get(key)
			if !ok || e.Value != want || e.Source != Volunteered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: rating-editor undo is an exact inverse — after any
// sequence of edits, undoing everything restores the matrix.
func TestRatingEditorUndoAllQuick(t *testing.T) {
	f := func(ops []struct {
		Item   uint8
		Value  uint8
		Remove bool
	}) bool {
		m := model.NewMatrix()
		m.Set(1, 1, 3)
		m.Set(1, 2, 4.5)
		before := map[model.ItemID]float64{}
		for i, v := range m.UserRatings(1) {
			before[i] = v
		}
		ed := NewRatingEditor(m, 1)
		for _, op := range ops {
			item := model.ItemID(op.Item%6 + 1)
			if op.Remove {
				_ = ed.Remove(item) // may fail for absent ratings; fine
			} else {
				ed.Rate(item, float64(op.Value%5)+1)
			}
		}
		for ed.Edits() > 0 {
			if err := ed.Undo(); err != nil {
				return false
			}
		}
		after := m.UserRatings(1)
		if len(after) != len(before) {
			return false
		}
		for i, v := range before {
			if after[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
