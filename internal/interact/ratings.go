package interact

import (
	"errors"
	"fmt"

	"repro/internal/model"
)

// RatingEditor implements Section 5.3: the user corrects predicted
// ratings or modifies past ratings, with an undo log. The paper notes
// ratings are often easier to modify than computed influence; the
// editor therefore edits only the rating matrix and lets influence be
// recomputed downstream.
type RatingEditor struct {
	m    *model.Matrix
	user model.UserID
	log  []ratingChange
}

type ratingChange struct {
	item     model.ItemID
	old      float64
	hadOld   bool
	deleted  bool
	newValue float64
}

// NewRatingEditor wraps a matrix for one user's edits.
func NewRatingEditor(m *model.Matrix, user model.UserID) *RatingEditor {
	return &RatingEditor{m: m, user: user}
}

// ErrNothingToUndo is returned by Undo on an empty log.
var ErrNothingToUndo = errors.New("interact: nothing to undo")

// ErrNoRating is returned when removing a rating that does not exist.
var ErrNoRating = errors.New("interact: no rating to remove")

// Rate sets (or re-rates) an item. Values are clamped to the scale.
func (e *RatingEditor) Rate(item model.ItemID, value float64) {
	old, had := e.m.Get(e.user, item)
	v := model.ClampRating(value)
	e.m.Set(e.user, item, v)
	e.log = append(e.log, ratingChange{item: item, old: old, hadOld: had, newValue: v})
}

// Remove withdraws a past rating.
func (e *RatingEditor) Remove(item model.ItemID) error {
	old, had := e.m.Get(e.user, item)
	if !had {
		return fmt.Errorf("%w: item %d", ErrNoRating, item)
	}
	e.m.Delete(e.user, item)
	e.log = append(e.log, ratingChange{item: item, old: old, hadOld: true, deleted: true})
	return nil
}

// Undo reverts the most recent edit.
func (e *RatingEditor) Undo() error {
	if len(e.log) == 0 {
		return ErrNothingToUndo
	}
	last := e.log[len(e.log)-1]
	e.log = e.log[:len(e.log)-1]
	switch {
	case last.deleted:
		e.m.Set(e.user, last.item, last.old)
	case last.hadOld:
		e.m.Set(e.user, last.item, last.old)
	default:
		e.m.Delete(e.user, last.item)
	}
	return nil
}

// Edits returns the number of edits still on the undo log.
func (e *RatingEditor) Edits() int { return len(e.log) }
