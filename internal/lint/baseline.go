// Committed-baseline mode: CI fails only on findings that are not in
// the checked-in baseline file, so a new rule can land (and its
// legacy debt be tracked) without blocking every unrelated PR until
// the debt is paid down.
//
// Baseline entries are counted per (rule, file, message) — line
// numbers are deliberately not part of the key, so moving code within
// a file does not invalidate the baseline, while a *new* instance of
// an already-baselined message in the same file still trips the gate
// (the count grew).

package lint

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is the committed set of accepted findings, keyed by
// rule|file|message with an instance count.
type Baseline struct {
	// Counts maps "rule\x1ffile\x1fmessage" keys to how many instances
	// of that finding are accepted.
	Counts map[string]int `json:"counts"`
}

func baselineKey(f Finding) string {
	return f.RuleID + "\x1f" + f.Pos.Filename + "\x1f" + f.Message
}

// NewBaseline captures findings as the accepted state.
func NewBaseline(findings []Finding) *Baseline {
	b := &Baseline{Counts: make(map[string]int, len(findings))}
	for _, f := range findings {
		b.Counts[baselineKey(f)]++
	}
	return b
}

// Filter returns the findings that exceed the baseline: for each key,
// the first count(key) instances are suppressed, the rest survive.
// Findings must use the same (relative) file paths the baseline was
// written with.
func (b *Baseline) Filter(findings []Finding) []Finding {
	if b == nil || len(b.Counts) == 0 {
		return findings
	}
	budget := make(map[string]int, len(b.Counts))
	for k, n := range b.Counts {
		budget[k] = n
	}
	var out []Finding
	for _, f := range findings {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, not an error, so the gate degrades to plain mode before
// the first -write-baseline run.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Counts: map[string]int{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Counts == nil {
		b.Counts = map[string]int{}
	}
	return &b, nil
}

// WriteBaseline writes b to path. encoding/json sorts map keys, so
// the committed file diffs minimally.
func (b *Baseline) WriteBaseline(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
