// The intra-module call graph underpinning the interprocedural rules.
//
// Construction is CHA-style (class-hierarchy analysis) on the
// stdlib's go/types: static calls resolve to their single declared
// target; calls through an interface method resolve to that method on
// every package-scope named type in the loaded module that implements
// the interface. Method values, promoted methods and generic
// receivers all resolve through types.Info the same way ordinary
// calls do, so the graph sees `go e.run()`, `defer wg.Done()` and
// `f := s.flush; f()` alike — each edge carries the mode it was
// reached in (plain call, defer, go statement, or a reference from a
// non-invoked function literal), because the interprocedural rules
// weigh those modes very differently: a lock held across a plain call
// is held across the callee, but not across the body of a goroutine
// the callee merely spawns.
//
// On top of the graph the Program precomputes three fixed-point
// summaries the rules share:
//
//   - mutatedParams: which parameters (receiver included) a function
//     may write through, directly or by passing them onward — the
//     snapshot-escape rule's alias oracle;
//   - acquiredLocks: which lock identities a function may acquire,
//     transitively through plain calls — the lock-ordering rule's
//     reachability oracle;
//   - recoverGuards: whether a function installs a direct
//     defer-recover guard (recover only works when called directly by
//     a deferred function, so this summary is deliberately not
//     transitive) — the goroutine-lifecycle rule's guard oracle.
//
// Summaries are computed once, single-threaded, at Program build
// time; rule passes then run in parallel and only read them.

package lint

import (
	"go/ast"
	"go/types"
)

// CallMode classifies how a call site transfers control.
type CallMode uint8

const (
	// ModeCall is a plain call in the function's own control flow.
	ModeCall CallMode = iota
	// ModeDefer is a deferred call (runs at function exit).
	ModeDefer
	// ModeGo is a call that spawns a goroutine (or runs inside a
	// goroutine body spawned by this function).
	ModeGo
	// ModeRef is a reference without a call: a method value, a
	// function passed as an argument, or a call inside a non-invoked
	// function literal whose execution time is unknown.
	ModeRef
)

// CallSite is one resolved outgoing edge of a function.
type CallSite struct {
	// Expr is the call expression, or the referencing expression for
	// ModeRef method values. Position only; may belong to a nested
	// literal.
	Expr ast.Expr
	// Mode is how control reaches the target.
	Mode CallMode
	// Targets are the resolved module-declared callees: exactly one
	// for a static call, every implementing method for an interface
	// dispatch, none if the callee is a func value or lives outside
	// the module.
	Targets []*types.Func
}

// FuncInfo is one declared function or method of the module, with its
// resolved outgoing edges.
type FuncInfo struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []CallSite
}

// Program is a set of loaded packages plus the call graph and
// interprocedural summaries over them. Build once with NewProgram,
// then Run rule passes (in parallel) against it.
type Program struct {
	Pkgs []*Package
	Cfg  *Config

	funcs      map[*types.Func]*FuncInfo
	namedTypes []*types.Named

	// implCache memoises CHA resolution: interface method → module
	// methods implementing it.
	implCache map[*types.Func][]*types.Func

	// Summaries (see package comment). All read-only after NewProgram.
	mutatedParams map[*types.Func][]bool
	acquiredLocks map[*types.Func]map[string]bool
	recoverGuards map[*types.Func]bool

	// lockEdges / lockCycles are the global lock-acquisition graph and
	// its cycles (see rules_locks.go).
	lockEdges  []lockEdge
	lockCycles []lockCycle
}

// NewProgram builds the call graph and interprocedural summaries for
// pkgs under cfg. The packages must come from one Loader so their
// types.Info objects share identity.
func NewProgram(pkgs []*Package, cfg *Config) *Program {
	prog := &Program{
		Pkgs:      pkgs,
		Cfg:       cfg,
		funcs:     make(map[*types.Func]*FuncInfo),
		implCache: make(map[*types.Func][]*types.Func),
	}
	prog.indexDecls()
	prog.resolveCalls()
	prog.buildMutationSummaries()
	prog.buildRecoverSummaries()
	prog.buildLockGraph()
	return prog
}

// FuncOf returns the module declaration info for fn, or nil when fn is
// not declared in the loaded packages.
func (prog *Program) FuncOf(fn *types.Func) *FuncInfo { return prog.funcs[fn] }

// indexDecls records every declared function and method, and every
// package-scope named type (the CHA universe).
func (prog *Program) indexDecls() {
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.funcs[obj] = &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
			}
		}
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					prog.namedTypes = append(prog.namedTypes, named)
				}
			}
		}
	}
}

// resolveCalls walks every indexed function body and records its
// outgoing edges with their modes.
func (prog *Program) resolveCalls() {
	for _, fi := range prog.funcs {
		fi.Calls = prog.collectCalls(fi.Pkg, fi.Decl.Body, ModeCall)
	}
}

// collectCalls gathers the call sites of one body. mode is the mode
// calls at this nesting level execute in; nested literals and go/defer
// statements shift it.
func (prog *Program) collectCalls(pkg *Package, body *ast.BlockStmt, mode CallMode) []CallSite {
	var out []CallSite
	// funs marks expressions used as the Fun of a call, so the ModeRef
	// scan below does not double-report them.
	funs := make(map[ast.Expr]bool)

	var walk func(n ast.Node, mode CallMode)
	walk = func(n ast.Node, mode CallMode) {
		switch st := n.(type) {
		case nil:
			return
		case *ast.GoStmt:
			out = append(out, prog.siteFor(pkg, st.Call, ModeGo, funs)...)
			prog.walkCallArgs(pkg, st.Call, ModeGo, &out, funs, walk)
			return
		case *ast.DeferStmt:
			out = append(out, prog.siteFor(pkg, st.Call, ModeDefer, funs)...)
			prog.walkCallArgs(pkg, st.Call, ModeDefer, &out, funs, walk)
			return
		case *ast.CallExpr:
			out = append(out, prog.siteFor(pkg, st, mode, funs)...)
			prog.walkCallArgs(pkg, st, mode, &out, funs, walk)
			return
		case *ast.FuncLit:
			// A literal reached outside a call/go/defer head is stored
			// or passed somewhere: its body runs at an unknown time.
			walkChildren(st.Body, func(c ast.Node) { walk(c, ModeRef) })
			return
		case *ast.Ident, *ast.SelectorExpr:
			expr := n.(ast.Expr)
			if !funs[expr] {
				if fn := usedFunc(pkg, expr); fn != nil && prog.funcs[fn] != nil {
					out = append(out, CallSite{Expr: expr, Mode: ModeRef, Targets: []*types.Func{fn}})
				}
			}
			// Selector bases can still contain calls: f().x — recurse.
			if sel, ok := n.(*ast.SelectorExpr); ok {
				walk(sel.X, mode)
			}
			return
		}
		walkChildren(n, func(c ast.Node) { walk(c, mode) })
	}
	walkChildren(body, func(c ast.Node) { walk(c, mode) })
	return out
}

// walkCallArgs continues the walk through a call's fun-literal and
// arguments. The callee expression itself was already consumed by
// siteFor; an immediately-invoked literal's body executes in the
// surrounding mode, while literals passed as arguments demote to
// ModeRef.
func (prog *Program) walkCallArgs(pkg *Package, call *ast.CallExpr, mode CallMode, out *[]CallSite, funs map[ast.Expr]bool, walk func(ast.Node, CallMode)) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		walkChildren(lit.Body, func(c ast.Node) { walk(c, mode) })
	} else if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		walk(sel.X, mode)
	} else if _, ok := call.Fun.(*ast.Ident); !ok {
		walk(call.Fun, mode)
	}
	for _, arg := range call.Args {
		walk(arg, mode)
	}
}

// siteFor resolves one call expression into zero or one CallSite and
// marks its callee expression as consumed.
func (prog *Program) siteFor(pkg *Package, call *ast.CallExpr, mode CallMode, funs map[ast.Expr]bool) []CallSite {
	fun := ast.Unparen(call.Fun)
	funs[fun] = true
	fn := usedFunc(pkg, fun)
	if fn == nil {
		return nil // func value, builtin, or type conversion
	}
	targets := prog.chaTargets(fn)
	if len(targets) == 0 {
		return nil // outside the module entirely
	}
	return []CallSite{{Expr: call, Mode: mode, Targets: targets}}
}

// chaTargets resolves fn to module-declared targets: itself when
// declared here, or every module method implementing it when fn is an
// interface method.
func (prog *Program) chaTargets(fn *types.Func) []*types.Func {
	if prog.funcs[fn] != nil {
		return []*types.Func{fn}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if impls, ok := prog.implCache[fn]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range prog.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, fn.Pkg(), fn.Name())
		m, ok := obj.(*types.Func)
		if !ok || prog.funcs[m] == nil {
			continue
		}
		impls = append(impls, m)
	}
	prog.implCache[fn] = impls
	return impls
}

// usedFunc resolves an identifier or selector to the *types.Func it
// names, or nil.
func usedFunc(pkg *Package, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		// Prefer the selection (handles promoted methods precisely),
		// fall back to Uses for qualified package identifiers.
		if sel, ok := pkg.Info.Selections[e]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pkg.Info.Uses[e.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		// Generic instantiation: f[T](...).
		return usedFunc(pkg, e.X)
	}
	return nil
}

// walkChildren applies fn to the immediate children of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// reachable reports whether pred holds for from or any function
// reachable from it through edges whose mode passes keep.
func (prog *Program) reachable(from *types.Func, keep func(CallMode) bool, pred func(*FuncInfo) bool) bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func) bool
	visit = func(fn *types.Func) bool {
		if seen[fn] {
			return false
		}
		seen[fn] = true
		fi := prog.funcs[fn]
		if fi == nil {
			return false
		}
		if pred(fi) {
			return true
		}
		for _, site := range fi.Calls {
			if !keep(site.Mode) {
				continue
			}
			for _, t := range site.Targets {
				if visit(t) {
					return true
				}
			}
		}
		return false
	}
	return visit(from)
}
