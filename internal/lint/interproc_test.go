// Tests for the interprocedural layer: the four call-graph-backed
// rules' golden fixtures, call-graph construction itself, the hardened
// module loader, and the JSON/SARIF/baseline output plumbing.
package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func TestSnapshotEscapeFixtures(t *testing.T) {
	bad := fixture(t, "snapshotescape/bad")
	checkFixture(t, bad, &Config{EscapeScopePrefixes: []string{bad.Path}}, "snapshot-escape")
	good := fixture(t, "snapshotescape/good")
	checkFixture(t, good, &Config{EscapeScopePrefixes: []string{good.Path}}, "snapshot-escape")
}

func TestGoroutineLifecycleFixtures(t *testing.T) {
	bad := fixture(t, "goroutinelifecycle/bad")
	checkFixture(t, bad, &Config{GoroutineScopePrefixes: []string{bad.Path}}, "goroutine-lifecycle")
	good := fixture(t, "goroutinelifecycle/good")
	checkFixture(t, good, &Config{
		GoroutineScopePrefixes: []string{good.Path},
		GoroutineAllowlist:     map[string]bool{good.Path + ".allowlisted": true},
	}, "goroutine-lifecycle")

	// Without its allowlist entry, the supervisor fixture is flagged —
	// the list is load-bearing, not decorative.
	findings := Run([]*Package{good}, &Config{GoroutineScopePrefixes: []string{good.Path}}, []Rule{ruleByID(t, "goroutine-lifecycle")})
	sawAllowlisted := false
	for _, f := range findings {
		if strings.Contains(f.Message, "allowlisted") {
			sawAllowlisted = true
		}
	}
	if !sawAllowlisted {
		t.Errorf("removing the allowlist entry should flag the allowlisted spawn; findings: %v", findings)
	}
}

func TestLockOrderingFixtures(t *testing.T) {
	bad := fixture(t, "lockordering/bad")
	checkFixture(t, bad, &Config{LockScopePrefixes: []string{bad.Path}}, "lock-ordering")
	good := fixture(t, "lockordering/good")
	checkFixture(t, good, &Config{LockScopePrefixes: []string{good.Path}}, "lock-ordering")
}

func TestHotPathAllocFixtures(t *testing.T) {
	bad := fixture(t, "hotpathalloc/bad")
	checkFixture(t, bad, readPathCfg(bad), "hot-path-alloc")
	good := fixture(t, "hotpathalloc/good")
	checkFixture(t, good, readPathCfg(good), "hot-path-alloc")
}

// TestANNHotPathFixtures exercises the HotPathFuncs scoping: the rule
// reaches a listed Search method outside any ReadPathPkgs package and
// leaves unlisted siblings alone.
func TestANNHotPathFixtures(t *testing.T) {
	bad := fixture(t, "annhotpath/bad")
	checkFixture(t, bad, &Config{
		HotPathFuncs: map[string]bool{bad.Path + ".(*Index).Search": true},
	}, "hot-path-alloc")
	good := fixture(t, "annhotpath/good")
	checkFixture(t, good, &Config{
		HotPathFuncs: map[string]bool{good.Path + ".(*Index).Search": true},
	}, "hot-path-alloc")
}

// ---- call-graph construction ----

func scopeFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s in %s", name, pkg.Path)
	}
	return fn
}

func methodOf(t *testing.T, pkg *Package, typeName, method string) *types.Func {
	t.Helper()
	tn, ok := pkg.Pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("no type %s in %s", typeName, pkg.Path)
	}
	named := tn.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == method {
			return named.Method(i)
		}
	}
	t.Fatalf("no method %s.%s", typeName, method)
	return nil
}

func TestCallGraphConstruction(t *testing.T) {
	pkg := fixture(t, "callgraph")
	prog := NewProgram([]*Package{pkg}, &Config{})

	aRun := methodOf(t, pkg, "A", "Run")
	bRun := methodOf(t, pkg, "B", "Run")
	basePing := methodOf(t, pkg, "Base", "Ping")
	helper := scopeFunc(t, pkg, "helperA")

	// Interface dispatch: invoke's r.Run() resolves to both impls.
	invoke := prog.FuncOf(scopeFunc(t, pkg, "invoke"))
	if invoke == nil {
		t.Fatal("invoke not indexed")
	}
	var dispatch *CallSite
	for i := range invoke.Calls {
		if invoke.Calls[i].Mode == ModeCall && len(invoke.Calls[i].Targets) > 1 {
			dispatch = &invoke.Calls[i]
		}
	}
	if dispatch == nil {
		t.Fatalf("invoke has no multi-target dispatch site: %+v", invoke.Calls)
	}
	targets := make(map[*types.Func]bool)
	for _, f := range dispatch.Targets {
		targets[f] = true
	}
	if !targets[aRun] || !targets[bRun] {
		t.Errorf("dispatch targets missing A.Run or (*B).Run: %v", dispatch.Targets)
	}

	// Promoted method: d.Ping() resolves to the embedded Base's method.
	promoted := prog.FuncOf(scopeFunc(t, pkg, "promoted"))
	foundPing := false
	for _, site := range promoted.Calls {
		for _, f := range site.Targets {
			if f == basePing {
				foundPing = true
			}
		}
	}
	if !foundPing {
		t.Errorf("promoted call did not resolve to Base.Ping: %+v", promoted.Calls)
	}

	// Call modes: method value → ModeRef, go/defer → ModeGo/ModeDefer.
	modes := prog.FuncOf(scopeFunc(t, pkg, "modes"))
	byMode := make(map[CallMode]map[*types.Func]bool)
	for _, site := range modes.Calls {
		if byMode[site.Mode] == nil {
			byMode[site.Mode] = make(map[*types.Func]bool)
		}
		for _, f := range site.Targets {
			byMode[site.Mode][f] = true
		}
	}
	if !byMode[ModeRef][aRun] {
		t.Errorf("method value a.Run not recorded as ModeRef: %+v", modes.Calls)
	}
	if !byMode[ModeGo][helper] {
		t.Errorf("go helperA() not recorded as ModeGo: %+v", modes.Calls)
	}
	if !byMode[ModeDefer][helper] {
		t.Errorf("defer helperA() not recorded as ModeDefer: %+v", modes.Calls)
	}

	// Transitive reachability through the interface edge:
	// invoke → A.Run → helperA on plain call edges.
	reached := prog.reachable(invoke.Obj,
		func(m CallMode) bool { return m == ModeCall },
		func(fi *FuncInfo) bool { return fi.Obj == helper })
	if !reached {
		t.Error("helperA not reachable from invoke through interface dispatch")
	}
}

// ---- loader hardening ----

func loaderFixtureDir(t *testing.T, rel string) string {
	t.Helper()
	l := testLoader(t)
	return filepath.Join(l.Root, "internal", "lint", "testdata", "src", "loader", filepath.FromSlash(rel))
}

func TestLoaderImportCycle(t *testing.T) {
	l := testLoader(t)
	_, err := l.LoadDir(loaderFixtureDir(t, "cycle/a"))
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("want an import-cycle diagnostic, got %v", err)
	}
	if !strings.Contains(err.Error(), "cycle/a") || !strings.Contains(err.Error(), "cycle/b") {
		t.Errorf("cycle diagnostic should name both packages: %v", err)
	}
}

func TestLoaderBuildConstraints(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fixture carries flavor files for linux/windows only")
	}
	l := testLoader(t)
	pkg, err := l.LoadDir(loaderFixtureDir(t, "tagged"))
	if err != nil {
		t.Fatalf("tagged fixture should load cleanly: %v", err)
	}
	// tagged.go + flavor_linux.go; flavor_windows.go (filename) and
	// excluded.go (//go:build) are filtered out.
	if len(pkg.Files) != 2 {
		t.Errorf("want 2 buildable files, got %d", len(pkg.Files))
	}
	c, ok := pkg.Pkg.Scope().Lookup("flavor").(*types.Const)
	if !ok {
		t.Fatal("flavor const missing")
	}
	if got := constant.StringVal(c.Val()); got != "linux" {
		t.Errorf("flavor = %q, want linux", got)
	}
}

func TestLoaderAllFilesExcluded(t *testing.T) {
	l := testLoader(t)
	_, err := l.LoadDir(loaderFixtureDir(t, "onlytagged"))
	var nfe *NoFilesError
	if !errors.As(err, &nfe) {
		t.Fatalf("want NoFilesError, got %v", err)
	}
}

func TestLoaderMissingImport(t *testing.T) {
	l := testLoader(t)
	_, err := l.LoadDir(loaderFixtureDir(t, "missing"))
	if err == nil || !strings.Contains(err.Error(), "doesnotexist") {
		t.Fatalf("want a diagnostic naming the missing import, got %v", err)
	}
}

// TestLoadAllNoDuplicates is the regression test for the walker bug
// where a subdirectory (internal/core/servicetest) split its parent's
// file list and the parent package was collected twice, silently
// doubling every finding in it.
func TestLoadAllNoDuplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check in -short mode")
	}
	l := testLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		if seen[p.Path] {
			t.Errorf("LoadAll returned %s twice", p.Path)
		}
		seen[p.Path] = true
	}
}

// ---- output formats ----

func sampleFindings() []Finding {
	return []Finding{
		{Pos: token.Position{Filename: "internal/core/a.go", Line: 3, Column: 2}, RuleID: "lock-ordering", Message: "cycle"},
		{Pos: token.Position{Filename: "internal/core/b.go", Line: 10, Column: 1}, RuleID: "snapshot-escape", Message: "mutated after publish"},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleFindings()); err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decoding our own JSON: %v", err)
	}
	if rep.Count != 2 || len(rep.Findings) != 2 {
		t.Fatalf("want 2 findings, got count=%d len=%d", rep.Count, len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.File != "internal/core/a.go" || f.Line != 3 || f.Column != 2 || f.Rule != "lock-ordering" || f.Message != "cycle" {
		t.Errorf("finding did not survive the round trip: %+v", f)
	}
}

func TestSARIFRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleFindings(), AllRules()); err != nil {
		t.Fatal(err)
	}
	var log SARIFLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("decoding our own SARIF: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "recsyslint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(AllRules()) {
		t.Errorf("driver advertises %d rules, want %d", len(run.Tool.Driver.Rules), len(AllRules()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "lock-ordering" || r.Message.Text != "cycle" {
		t.Errorf("result did not survive the round trip: %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/a.go" || loc.Region.StartLine != 3 || loc.Region.StartColumn != 2 {
		t.Errorf("location did not survive the round trip: %+v", loc)
	}
}

// ---- baseline ----

func TestBaselineFilter(t *testing.T) {
	fs := sampleFindings()
	base := NewBaseline(fs)

	if kept := base.Filter(fs); len(kept) != 0 {
		t.Errorf("baseline should suppress its own findings, kept %v", kept)
	}

	// A new finding survives; a second instance of a baselined one does
	// too (the count grew).
	extra := Finding{Pos: token.Position{Filename: "internal/core/c.go", Line: 1}, RuleID: "determinism", Message: "wall clock"}
	dup := fs[0]
	kept := base.Filter([]Finding{fs[0], dup, fs[1], extra})
	if len(kept) != 2 {
		t.Fatalf("want 2 surviving findings, got %v", kept)
	}
}

func TestBaselineReadWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	base := NewBaseline(sampleFindings())
	if err := base.WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Counts, base.Counts) {
		t.Errorf("round trip changed counts: %v != %v", got.Counts, base.Counts)
	}

	// Missing file degrades to an empty baseline.
	empty, err := ReadBaseline(filepath.Join(dir, "nope.json"))
	if err != nil || len(empty.Counts) != 0 {
		t.Errorf("missing baseline should read as empty: %v %v", empty, err)
	}
}
