// Package lint implements recsyslint, the repository's invariant
// analyzer. It turns the hand-maintained contracts of the serving
// engine — immutable snapshots on the read path, context-first
// propagation, deterministic experiment code, a lock-free pipeline,
// no silently dropped errors — into mechanical checks that run in CI.
//
// The analyzer is built purely on the standard library's go/parser,
// go/ast, go/types and go/importer (see load.go); rules receive fully
// type-checked packages and report findings as
// "file:line:col: rule-id: message".
//
// # Suppression
//
// A finding can be suppressed with a directive on the offending line
// or the line directly above it:
//
//	//lint:ignore <rule-id> <reason>
//
// The reason is mandatory: a directive without one is itself reported
// (rule-id lint-directive), as is a directive naming an unknown rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	RuleID  string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.RuleID, f.Message)
}

// Rule is one invariant check. Rules are stateless; Check is called
// once per package and reports findings through the pass.
type Rule interface {
	// ID is the stable identifier used in reports, -rules filters and
	// //lint:ignore directives.
	ID() string
	// Doc is a one-line description of the invariant the rule protects.
	Doc() string
	Check(pass *Pass)
}

// Pass couples one rule run over one package with its report sink.
// Prog carries the module-wide call graph and interprocedural
// summaries (nil only in narrow unit tests); intra-function rules
// ignore it.
type Pass struct {
	Cfg    *Config
	Pkg    *Package
	Prog   *Program
	rule   string
	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:     p.Pkg.Fset.Position(pos),
		RuleID:  p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Config scopes the rules to the packages whose contracts they
// enforce. Paths are import paths; the zero value checks nothing, so
// use DefaultConfig (the repository's contract map) or build one
// explicitly, as the fixture tests do.
type Config struct {
	// ReadPathPkgs are the packages whose stage functions form the
	// lock-free serving read path (snapshot-mutation, lock-in-read-path).
	ReadPathPkgs map[string]bool
	// HotPathFuncs names individual functions outside ReadPathPkgs
	// that the read-path rules treat as stage bodies, qualified like
	// CtxAllowlist ("import/path.(*Recv).Method"). The ANN search
	// methods live here: they run on every request but sit in their
	// own package, where the stageXxx naming convention does not
	// reach.
	HotPathFuncs map[string]bool
	// DeterminismPkgs are the packages that must be bit-reproducible
	// from a seed (determinism).
	DeterminismPkgs map[string]bool
	// ErrorScopePrefixes are import-path prefixes inside which the
	// dropped-error rule applies.
	ErrorScopePrefixes []string
	// CtxAllowlist names functions allowed to call
	// context.Background() outside main packages, qualified as
	// "import/path.Func" or "import/path.(*Recv).Method".
	CtxAllowlist map[string]bool
	// GoroutineScopePrefixes are import-path prefixes inside which the
	// goroutine-lifecycle rule applies.
	GoroutineScopePrefixes []string
	// GoroutineAllowlist names functions (qualified like CtxAllowlist)
	// whose go statements are supervised by construction — the
	// retrainAsync pattern, where a CAS gate bounds the goroutine's
	// lifetime instead of a context.
	GoroutineAllowlist map[string]bool
	// EscapeScopePrefixes are import-path prefixes inside which the
	// snapshot-escape rule applies.
	EscapeScopePrefixes []string
	// LockScopePrefixes are import-path prefixes inside which the
	// lock-ordering rule reports cycles.
	LockScopePrefixes []string
	// FSScopePrefixes are import-path prefixes inside which the
	// fs-boundary rule applies; FSAllowedPkgs are the packages within
	// that scope allowed to mutate the filesystem (the durability
	// layer and the tooling that owns its own files).
	FSScopePrefixes []string
	FSAllowedPkgs   map[string]bool
}

// DefaultConfig returns the contract map of this repository: the read
// path lives in internal/core and internal/pipeline, the simulated
// user lab in internal/usersim, internal/eval, internal/experiments
// and internal/rng, the dropped-error rule covers all of internal/,
// and the legacy context-free Engine wrappers are the only allowed
// context.Background() call sites outside main packages.
//
// internal/resilience, internal/fault and internal/trace are
// determinism packages too: retry jitter and fault-injection
// probability must draw from seeded internal/rng streams so a failing
// chaos run replays bit-for-bit, and the tracer must route every
// timestamp through its injectable Clock and every ID/sampling draw
// through a seeded counter stream. (Timer-based waiting —
// time.NewTimer, time.AfterFunc — is not a determinism leak and stays
// allowed; only wall-clock reads and math/rand are banned.)
func DefaultConfig() *Config {
	return &Config{
		ReadPathPkgs: map[string]bool{
			"repro/internal/core":     true,
			"repro/internal/pipeline": true,
		},
		HotPathFuncs: map[string]bool{
			// The ANN search kernels run on every /similar and
			// /recommend request; they must stay as allocation-light as
			// the stage functions that call them (scratch state comes
			// from a sync.Pool, not per-query make).
			"repro/internal/ann.(*Flat).Search": true,
			"repro/internal/ann.(*HNSW).Search": true,
		},
		DeterminismPkgs: map[string]bool{
			"repro/internal/usersim":     true,
			"repro/internal/eval":        true,
			"repro/internal/experiments": true,
			"repro/internal/rng":         true,
			"repro/internal/resilience":  true,
			"repro/internal/fault":       true,
			"repro/internal/trace":       true,
			// The cluster layer must replay bit-for-bit from its seeds:
			// ring placement, shard health (count-based probing, no
			// clocks) and chaos decisions.
			"repro/internal/cluster": true,
			// The model store publishes versioned artifacts whose
			// identity (version, checksum, data revision) must be a pure
			// function of the training data and trainer seed — never a
			// wall-clock stamp or RNG draw, or two identically-seeded
			// engines would disagree about which model they serve.
			// Timestamps on artifacts come from the lifecycle's
			// injectable Clock, outside this package.
			"repro/internal/modelstore": true,
			// The write-ahead log is replayed to reconstruct serving
			// state, so recovery must be a pure function of the bytes on
			// disk: no clocks in records (checkpoint age is counted in
			// records, not seconds) and no randomness in segment naming.
			"repro/internal/wal": true,
			// The ANN index must build bit-identically from its seed:
			// HNSW level draws come from internal/rng, tie-breaks are
			// ordered, and no map iteration reaches an output slice —
			// two same-seed builds must serve byte-identical neighbour
			// lists or sharded replicas would disagree.
			"repro/internal/ann": true,
		},
		ErrorScopePrefixes: []string{"repro/internal/"},
		CtxAllowlist: map[string]bool{
			// The legacy compat wrappers (core.go) that adapt the
			// context-free public API onto the *Context variants.
			"repro/internal/core.(*Engine).Recommend": true,
			"repro/internal/core.(*Engine).Explain":   true,
			"repro/internal/core.(*Engine).WhyLow":    true,
			"repro/internal/core.(*Engine).BrowseAll": true,
			"repro/internal/core.(*Engine).SimilarTo": true,
			// The breaker's open → half-open transition is driven by a
			// cooldown timer, not a request: there is no caller context
			// to attribute the recorder event to.
			"repro/internal/resilience.(*breakerState).halfOpen": true,
			// The Service conformance suite is test harness code that is
			// not in a _test.go file (it is imported by several packages'
			// tests); like a test, it owns its request contexts.
			"repro/internal/core/servicetest.Run": true,
			// Background retrains are triggered by a write-counter, not
			// a request: there is no caller context to inherit, and the
			// write that fired the trigger must not be tied to the
			// training run's lifetime.
			"repro/internal/core.(*Engine).retrainAsync": true,
			// Clock-scheduled retrains have no caller at all: the tick
			// is the trigger, and the run is bounded by the stop channel
			// the loop selects on, not by a request context.
			"repro/internal/core.(*Engine).scheduledRetrainLoop": true,
		},
		GoroutineScopePrefixes: []string{"repro/internal/"},
		GoroutineAllowlist: map[string]bool{
			// The background trainer: its goroutine's lifetime is bounded
			// by the lifecycle's single-flight CAS gate (training flag),
			// not by a context — the write that triggered the retrain
			// must not cancel it, and panics are recovered into
			// TrainsFailed.
			"repro/internal/core.(*Engine).retrainAsync": true,
		},
		EscapeScopePrefixes: []string{"repro/internal/"},
		LockScopePrefixes:   []string{"repro/internal/"},
		FSScopePrefixes:     []string{"repro/internal/"},
		FSAllowedPkgs: map[string]bool{
			// The durability boundary: the log itself, the dataset store,
			// and artifact persistence own their fsync/atomic-rename
			// protocols.
			"repro/internal/wal":        true,
			"repro/internal/store":      true,
			"repro/internal/modelstore": true,
			// The analyzer's baseline file is operator tooling, not
			// serving state.
			"repro/internal/lint": true,
		},
	}
}

// AllRules returns every registered rule, in report order. The first
// five are the original intra-function rules; the last four are the
// interprocedural suite built on the call graph (callgraph.go).
func AllRules() []Rule {
	return []Rule{
		snapshotMutation{},
		ctxPropagation{},
		determinism{},
		lockInReadPath{},
		droppedError{},
		snapshotEscape{},
		goroutineLifecycle{},
		lockOrdering{},
		hotPathAlloc{},
		fsBoundary{},
	}
}

// RuleIDs returns the identifiers of all registered rules.
func RuleIDs() []string {
	rules := AllRules()
	ids := make([]string, len(rules))
	for i, r := range rules {
		ids[i] = r.ID()
	}
	return ids
}

// Run checks pkgs with rules under cfg and returns the surviving
// findings sorted by position. Suppressed findings are dropped;
// malformed or unknown //lint:ignore directives are reported under the
// lint-directive pseudo-rule.
//
// The call graph and interprocedural summaries are built once, up
// front; packages are then analysed in parallel — the summaries are
// read-only during rule passes, the type-check results were cached by
// the loader, and findings are merged and position-sorted at the end,
// so the output is identical to a sequential run.
func Run(pkgs []*Package, cfg *Config, rules []Rule) []Finding {
	known := make(map[string]bool)
	for _, r := range AllRules() {
		known[r.ID()] = true
	}
	prog := NewProgram(pkgs, cfg)
	perPkg := make([][]Finding, len(pkgs))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sup, bad := directives(pkg, known)
			out := bad
			for _, r := range rules {
				pass := &Pass{Cfg: cfg, Pkg: pkg, Prog: prog, rule: r.ID(), report: func(f Finding) {
					if !sup.suppresses(f) {
						out = append(out, f)
					}
				}}
				r.Check(pass)
			}
			perPkg[i] = out
		}(i, pkg)
	}
	wg.Wait()
	var out []Finding
	for _, fs := range perPkg {
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.RuleID < b.RuleID
	})
	return out
}

// suppressions indexes //lint:ignore directives: file → line → rule-ids
// suppressed at that line and the line below it.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppresses(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[f.Pos.Line][f.RuleID] || lines[f.Pos.Line-1][f.RuleID]
}

// directives scans a package's comments for //lint:ignore directives,
// returning the suppression index and findings for malformed ones
// (missing rule id or reason, or an unknown rule id).
func directives(pkg *Package, known map[string]bool) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Pos: pkg.Fset.Position(pos), RuleID: "lint-directive", Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(c.Pos(), `malformed directive: want "//lint:ignore <rule-id> <reason>" (reason is mandatory)`)
					continue
				}
				id := fields[0]
				if !known[id] {
					report(c.Pos(), fmt.Sprintf("//lint:ignore names unknown rule %q (known: %s)", id, strings.Join(RuleIDs(), ", ")))
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = make(map[string]bool)
				}
				lines[pos.Line][id] = true
			}
		}
	}
	return sup, bad
}

// inspect walks every file of the package in source order.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
