package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches type-checked packages (including the stdlib
// source-importer work) across all fixture tests.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// fixture loads one testdata package by path relative to testdata/src.
func fixture(t *testing.T, rel string) *Package {
	t.Helper()
	l := testLoader(t)
	dir := filepath.Join(l.Root, "internal", "lint", "testdata", "src", filepath.FromSlash(rel))
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return pkg
}

// wants collects the fixture's "// want <rule-id>" comments as
// "file:line→rule-id" expectations.
func wants(pkg *Package) map[string]string {
	out := make(map[string]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = strings.TrimSpace(rest)
			}
		}
	}
	return out
}

func ruleByID(t *testing.T, id string) Rule {
	t.Helper()
	for _, r := range AllRules() {
		if r.ID() == id {
			return r
		}
	}
	t.Fatalf("no rule %q", id)
	return nil
}

// checkFixture runs one rule over one fixture package and matches the
// findings exactly against the fixture's want comments.
func checkFixture(t *testing.T, pkg *Package, cfg *Config, ruleID string) {
	t.Helper()
	findings := Run([]*Package{pkg}, cfg, []Rule{ruleByID(t, ruleID)})
	expected := wants(pkg)
	got := make(map[string]string)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		if prev, dup := got[key]; dup {
			t.Errorf("multiple findings on %s: %s and %s", key, prev, f.RuleID)
		}
		got[key] = f.RuleID
	}
	for key, want := range expected {
		if got[key] != want {
			t.Errorf("%s: want a %s finding, got %q", key, want, got[key])
		}
	}
	for key, id := range got {
		if _, ok := expected[key]; !ok {
			t.Errorf("%s: unexpected %s finding", key, id)
		}
	}
}

func readPathCfg(pkg *Package) *Config {
	return &Config{ReadPathPkgs: map[string]bool{pkg.Path: true}}
}

func TestSnapshotMutationFixtures(t *testing.T) {
	bad := fixture(t, "snapshotmutation/bad")
	checkFixture(t, bad, readPathCfg(bad), "snapshot-mutation")
	good := fixture(t, "snapshotmutation/good")
	checkFixture(t, good, readPathCfg(good), "snapshot-mutation")
}

func TestLockInReadPathFixtures(t *testing.T) {
	bad := fixture(t, "lockinreadpath/bad")
	checkFixture(t, bad, readPathCfg(bad), "lock-in-read-path")
	good := fixture(t, "lockinreadpath/good")
	checkFixture(t, good, readPathCfg(good), "lock-in-read-path")
}

func TestCtxPropagationFixtures(t *testing.T) {
	bad := fixture(t, "ctxpropagation/bad")
	checkFixture(t, bad, &Config{}, "ctx-propagation")
	good := fixture(t, "ctxpropagation/good")
	checkFixture(t, good, &Config{CtxAllowlist: map[string]bool{good.Path + ".allowed": true}}, "ctx-propagation")
	mainpkg := fixture(t, "ctxpropagation/mainpkg")
	checkFixture(t, mainpkg, &Config{}, "ctx-propagation")
}

func TestDeterminismFixtures(t *testing.T) {
	bad := fixture(t, "determinism/bad")
	checkFixture(t, bad, &Config{DeterminismPkgs: map[string]bool{bad.Path: true}}, "determinism")
	good := fixture(t, "determinism/good")
	checkFixture(t, good, &Config{DeterminismPkgs: map[string]bool{good.Path: true}}, "determinism")

	// Out of scope, even the violating file is silent.
	unscoped := Run([]*Package{bad}, &Config{}, []Rule{ruleByID(t, "determinism")})
	if len(unscoped) != 0 {
		t.Errorf("determinism reported outside its package scope: %v", unscoped)
	}
}

// TestTraceSeamFixtures runs the two rules that police the tracing
// subsystem's seams — determinism (clock injection, seeded sampling)
// and ctx-propagation (events must ride the request context) —
// together over fixtures modeling a tracer built with and without
// those seams, the way internal/trace itself is checked.
func TestTraceSeamFixtures(t *testing.T) {
	rules := []Rule{ruleByID(t, "determinism"), ruleByID(t, "ctx-propagation")}
	for _, rel := range []string{"traceseam/bad", "traceseam/good"} {
		pkg := fixture(t, rel)
		cfg := &Config{DeterminismPkgs: map[string]bool{pkg.Path: true}}
		findings := Run([]*Package{pkg}, cfg, rules)
		expected := wants(pkg)
		got := make(map[string]string)
		for _, f := range findings {
			got[fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)] = f.RuleID
		}
		for key, want := range expected {
			if got[key] != want {
				t.Errorf("%s: %s: want a %s finding, got %q", rel, key, want, got[key])
			}
		}
		for key, id := range got {
			if _, ok := expected[key]; !ok {
				t.Errorf("%s: %s: unexpected %s finding", rel, key, id)
			}
		}
	}
}

// TestClusterSeamFixtures runs the same rule pair over fixtures
// modeling a shard router built with and without internal/cluster's
// seams: count-based health probing versus wall-clock cooldowns and
// math/rand jitter (determinism), and fan-out legs that inherit the
// request context versus minting their own (ctx-propagation).
func TestClusterSeamFixtures(t *testing.T) {
	rules := []Rule{ruleByID(t, "determinism"), ruleByID(t, "ctx-propagation")}
	for _, rel := range []string{"clusterseam/bad", "clusterseam/good"} {
		pkg := fixture(t, rel)
		cfg := &Config{DeterminismPkgs: map[string]bool{pkg.Path: true}}
		findings := Run([]*Package{pkg}, cfg, rules)
		expected := wants(pkg)
		got := make(map[string]string)
		for _, f := range findings {
			got[fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)] = f.RuleID
		}
		for key, want := range expected {
			if got[key] != want {
				t.Errorf("%s: %s: want a %s finding, got %q", rel, key, want, got[key])
			}
		}
		for key, id := range got {
			if _, ok := expected[key]; !ok {
				t.Errorf("%s: %s: unexpected %s finding", rel, key, id)
			}
		}
	}
}

// TestModelStoreSeamFixtures runs the same rule pair over fixtures
// modeling a versioned artifact store built with and without
// internal/modelstore's seams: monotonic version counters and pure
// checksums versus wall-clock stamps and math/rand salt
// (determinism), and publish hooks that inherit the caller's context
// versus minting their own (ctx-propagation).
func TestModelStoreSeamFixtures(t *testing.T) {
	rules := []Rule{ruleByID(t, "determinism"), ruleByID(t, "ctx-propagation")}
	for _, rel := range []string{"modelstoreseam/bad", "modelstoreseam/good"} {
		pkg := fixture(t, rel)
		cfg := &Config{DeterminismPkgs: map[string]bool{pkg.Path: true}}
		findings := Run([]*Package{pkg}, cfg, rules)
		expected := wants(pkg)
		got := make(map[string]string)
		for _, f := range findings {
			got[fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)] = f.RuleID
		}
		for key, want := range expected {
			if got[key] != want {
				t.Errorf("%s: %s: want a %s finding, got %q", rel, key, want, got[key])
			}
		}
		for key, id := range got {
			if _, ok := expected[key]; !ok {
				t.Errorf("%s: %s: unexpected %s finding", rel, key, id)
			}
		}
	}
}

// TestWALSeamFixtures runs the three rules that police the log's
// seams — determinism (counter-named segments, clockless records),
// dropped-error (a dropped fsync is the lie a WAL exists to prevent)
// and goroutine-lifecycle (no unsupervised background checkpointer) —
// over fixtures modeling a write-ahead log built with and without
// them, the way internal/wal itself is checked.
func TestWALSeamFixtures(t *testing.T) {
	rules := []Rule{
		ruleByID(t, "determinism"),
		ruleByID(t, "dropped-error"),
		ruleByID(t, "goroutine-lifecycle"),
	}
	for _, rel := range []string{"walseam/bad", "walseam/good"} {
		pkg := fixture(t, rel)
		cfg := &Config{
			DeterminismPkgs:        map[string]bool{pkg.Path: true},
			ErrorScopePrefixes:     []string{"repro/internal/"},
			GoroutineScopePrefixes: []string{"repro/internal/"},
		}
		findings := Run([]*Package{pkg}, cfg, rules)
		expected := wants(pkg)
		got := make(map[string]string)
		for _, f := range findings {
			got[fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)] = f.RuleID
		}
		for key, want := range expected {
			if got[key] != want {
				t.Errorf("%s: %s: want a %s finding, got %q", rel, key, want, got[key])
			}
		}
		for key, id := range got {
			if _, ok := expected[key]; !ok {
				t.Errorf("%s: %s: unexpected %s finding", rel, key, id)
			}
		}
	}
}

func TestFSBoundaryFixtures(t *testing.T) {
	cfg := &Config{FSScopePrefixes: []string{"repro/internal/"}}
	bad := fixture(t, "fsboundary/bad")
	checkFixture(t, bad, cfg, "fs-boundary")
	good := fixture(t, "fsboundary/good")
	checkFixture(t, good, cfg, "fs-boundary")

	// The same violating package is silent once allowlisted — the
	// durability packages own their os calls.
	allowed := &Config{
		FSScopePrefixes: []string{"repro/internal/"},
		FSAllowedPkgs:   map[string]bool{bad.Path: true},
	}
	if findings := Run([]*Package{bad}, allowed, []Rule{ruleByID(t, "fs-boundary")}); len(findings) != 0 {
		t.Errorf("allowlisted package still reported: %v", findings)
	}

	// Out of scope, even the violating file is silent.
	if findings := Run([]*Package{bad}, &Config{}, []Rule{ruleByID(t, "fs-boundary")}); len(findings) != 0 {
		t.Errorf("fs-boundary reported outside its scope: %v", findings)
	}
}

func errScopeCfg() *Config {
	return &Config{ErrorScopePrefixes: []string{"repro/internal/"}}
}

func TestDroppedErrorFixtures(t *testing.T) {
	checkFixture(t, fixture(t, "droppederror/bad"), errScopeCfg(), "dropped-error")
	checkFixture(t, fixture(t, "droppederror/good"), errScopeCfg(), "dropped-error")
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	pkg := fixture(t, "droppederror/ignored")
	findings := Run([]*Package{pkg}, errScopeCfg(), []Rule{ruleByID(t, "dropped-error")})
	if len(findings) != 0 {
		t.Errorf("//lint:ignore did not suppress: %v", findings)
	}
}

func TestDirectiveEtiquette(t *testing.T) {
	pkg := fixture(t, "directives/bad")
	findings := Run([]*Package{pkg}, errScopeCfg(), []Rule{ruleByID(t, "dropped-error")})
	var directive, dropped int
	for _, f := range findings {
		switch f.RuleID {
		case "lint-directive":
			directive++
		case "dropped-error":
			dropped++
		}
	}
	if directive != 2 {
		t.Errorf("want 2 lint-directive findings (missing reason, unknown rule), got %d: %v", directive, findings)
	}
	if dropped != 2 {
		t.Errorf("malformed directives must not suppress: want 2 dropped-error findings, got %d: %v", dropped, findings)
	}
}

// TestRepositoryIsClean is the acceptance gate: every rule over every
// module package must be silent, so CI fails the moment a seeded
// violation is introduced.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check in -short mode")
	}
	l := testLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadAll found only %d packages; the walker looks broken", len(pkgs))
	}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "/testdata/") {
			t.Errorf("LoadAll must skip testdata, loaded %s", p.Path)
		}
	}
	findings := Run(pkgs, DefaultConfig(), AllRules())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestRuleMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range AllRules() {
		if r.ID() == "" || r.Doc() == "" {
			t.Errorf("rule %T lacks id or doc", r)
		}
		if seen[r.ID()] {
			t.Errorf("duplicate rule id %s", r.ID())
		}
		seen[r.ID()] = true
	}
	for _, id := range []string{
		"snapshot-mutation", "ctx-propagation", "determinism", "lock-in-read-path", "dropped-error",
		"snapshot-escape", "goroutine-lifecycle", "lock-ordering", "hot-path-alloc", "fs-boundary",
	} {
		if !seen[id] {
			t.Errorf("registry is missing rule %s", id)
		}
	}
}
