// Module loading for recsyslint, built purely on the standard
// library's go/parser, go/ast, go/types and go/importer — no
// golang.org/x/tools dependency, per the repository's stdlib-only
// rule.
//
// The loader walks the module tree for directories containing
// buildable Go files, parses them (test files excluded), and
// type-checks each package with a custom importer: imports inside the
// module resolve recursively through the loader itself, while
// standard-library imports are served by the stdlib source importer
// (importer.ForCompiler "source"), which type-checks GOROOT sources
// and therefore needs no pre-compiled export data. Build constraints
// are not evaluated; the repository has no tagged files.

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for rule checking.
type Package struct {
	Path  string // import path within the module
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // parsed non-test files, comments included
	Pkg   *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of a single module.
type Loader struct {
	Root    string // module root (directory containing go.mod)
	ModPath string // module path from go.mod

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // import path → loaded package
	loading map[string]bool     // cycle detection
}

// NewLoader returns a loader for the module rooted at root, which must
// contain a go.mod file.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		ModPath: modpath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll loads every package in the module, in deterministic
// directory order. Directories named testdata (and hidden or
// underscore-prefixed directories) are skipped, exactly as the go tool
// skips them, so the analyzer never chokes on the lint fixtures that
// deliberately violate its own rules.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadDir loads and type-checks the package in dir, which must sit
// inside the module tree. It is used directly by the fixture tests to
// load testdata packages the module walk skips.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPath(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// importPath maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.Root)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module-internal paths load
// recursively through the loader, everything else is assumed to be
// standard library and resolves through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one package directory, caching the
// result by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, f.Name.Name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	for _, n := range names[1:] {
		if n != names[0] {
			return nil, fmt.Errorf("lint: multiple packages (%s, %s) in %s", names[0], n, dir)
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		err = typeErrs[0] // first error is the most actionable
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}
