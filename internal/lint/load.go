// Module loading for recsyslint, built purely on the standard
// library's go/parser, go/ast, go/types and go/importer — no
// golang.org/x/tools dependency, per the repository's stdlib-only
// rule.
//
// The loader walks the module tree for directories containing
// buildable Go files, parses them (test files excluded), and
// type-checks each package with a custom importer: imports inside the
// module resolve recursively through the loader itself, while
// standard-library imports are served by the stdlib source importer
// (importer.ForCompiler "source"), which type-checks GOROOT sources
// and therefore needs no pre-compiled export data.
//
// Build constraints are evaluated with go/build/constraint against
// the running GOOS/GOARCH (plus the implicit "gc" and go1.* tags), and
// _GOOS/_GOARCH filename suffixes are honoured, so a file excluded
// from the build never reaches the type-checker where its
// duplicate-declaration or missing-symbol errors would be
// misattributed to the live code. Import cycles are reported with the
// full chain, and a panicking type-check (possible on pathological
// inputs) is recovered into a diagnostic instead of taking the
// analyzer down.

package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package ready for rule checking.
type Package struct {
	Path  string // import path within the module
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // parsed non-test files, comments included
	Pkg   *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of a single module.
type Loader struct {
	Root    string // module root (directory containing go.mod)
	ModPath string // module path from go.mod

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // import path → loaded package
	loading []string            // in-progress load stack, for cycle chains
}

// NewLoader returns a loader for the module rooted at root, which must
// contain a go.mod file.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		ModPath: modpath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll loads every package in the module, in deterministic
// directory order. Directories named testdata (and hidden or
// underscore-prefixed directories) are skipped, exactly as the go tool
// skips them, so the analyzer never chokes on the lint fixtures that
// deliberately violate its own rules.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			// Dedup with a set, not a last-element check: WalkDir is
			// lexical, so a subdirectory can split a package's files into
			// two runs (internal/core resumes after servicetest/) and the
			// same dir would be collected — and analysed — twice.
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			var empty *NoFilesError
			if errors.As(err, &empty) {
				// Every file in the directory is excluded by build
				// constraints for this GOOS/GOARCH: not a package at all
				// from the analyzer's point of view.
				continue
			}
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// NoFilesError reports a directory whose .go files are all excluded —
// by build constraints or because only test files exist. LoadAll
// skips such directories; direct loads surface the diagnostic.
type NoFilesError struct {
	Dir string
}

func (e *NoFilesError) Error() string {
	return fmt.Sprintf("lint: no buildable Go files in %s (all excluded by build constraints?)", e.Dir)
}

// LoadDir loads and type-checks the package in dir, which must sit
// inside the module tree. It is used directly by the fixture tests to
// load testdata packages the module walk skips.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPath(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// importPath maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.Root)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module-internal paths load
// recursively through the loader, everything else is assumed to be
// standard library and resolves through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one package directory, caching the
// result by import path.
func (l *Loader) load(path, dir string) (p *Package, err error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	for i, in := range l.loading {
		if in == path {
			chain := append(append([]string{}, l.loading[i:]...), path)
			return nil, fmt.Errorf("lint: import cycle: %s", strings.Join(chain, " → "))
		}
	}
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	// The type-checker and the source importer are not supposed to
	// panic, but a malformed GOROOT or a pathological fixture can make
	// them: turn that into a diagnostic instead of crashing the
	// analyzer (and CI) with a bare stack trace.
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("lint: internal panic loading %s: %v", path, r)
		}
	}()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !goodOSArchFile(name) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildTagsSatisfied(f) {
			continue
		}
		files = append(files, f)
		names = append(names, f.Name.Name)
	}
	if len(files) == 0 {
		return nil, &NoFilesError{Dir: dir}
	}
	for _, n := range names[1:] {
		if n != names[0] {
			return nil, fmt.Errorf("lint: multiple packages (%s, %s) in %s", names[0], n, dir)
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		err = typeErrs[0] // first error is the most actionable
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p = &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// buildTagsSatisfied evaluates the file's //go:build (or legacy
// // +build) constraint for the analyzer's own GOOS/GOARCH. A file
// with no constraint is always in.
func buildTagsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false // unparseable constraint: treat as excluded
			}
			if !expr.Eval(buildTagOK) {
				return false
			}
		}
	}
	return true
}

// buildTagOK decides one build tag the way `go build` would on this
// machine: the running GOOS/GOARCH, the gc compiler, and every
// released language version are in; everything else — including
// "ignore", cgo, and custom tags — is out.
func buildTagOK(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc":
		return true
	case strings.HasPrefix(tag, "go1."):
		return true
	case tag == "unix":
		return unixGOOS[runtime.GOOS]
	}
	return false
}

var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"js": true, "linux": true, "netbsd": true, "openbsd": true,
	"plan9": true, "solaris": true, "wasip1": true, "windows": true,
	"zos": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "sparc64": true, "wasm": true,
}

// goodOSArchFile applies the _GOOS/_GOARCH filename convention:
// name_linux.go, name_amd64.go, name_linux_amd64.go. Mirrors the go
// tool's rule, including that the suffix only counts after an initial
// non-suffix part (literally "linux.go" has no constraint).
func goodOSArchFile(name string) bool {
	name = strings.TrimSuffix(name, ".go")
	parts := strings.Split(name, "_")
	if len(parts) < 2 {
		return true
	}
	parts = parts[1:] // the leading part is never a constraint
	if n := len(parts); n >= 2 && knownGOOS[parts[n-2]] && knownGOARCH[parts[n-1]] {
		return parts[n-2] == runtime.GOOS && parts[n-1] == runtime.GOARCH
	}
	if n := len(parts); knownGOOS[parts[n-1]] {
		return parts[n-1] == runtime.GOOS
	}
	if n := len(parts); knownGOARCH[parts[n-1]] {
		return parts[n-1] == runtime.GOARCH
	}
	return true
}
