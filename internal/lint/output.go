// Machine-readable output for recsyslint: a flat JSON findings array
// for scripting, and SARIF 2.1.0 for code-scanning UIs and CI
// artifact upload. The exported structs round-trip through
// encoding/json, which the decode tests rely on: whatever the CLI
// emits, a consumer can json.Unmarshal back into these types.

package lint

import (
	"encoding/json"
	"io"
)

// JSONFinding is the JSON wire form of one finding.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// JSONReport is the top-level -json document.
type JSONReport struct {
	Findings []JSONFinding `json:"findings"`
	Count    int           `json:"count"`
}

// WriteJSON emits findings as a JSONReport.
func WriteJSON(w io.Writer, findings []Finding) error {
	rep := JSONReport{Findings: make([]JSONFinding, 0, len(findings)), Count: len(findings)}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, JSONFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.RuleID,
			Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// SARIF 2.1.0 — the minimal subset code-scanning consumers require:
// one run, a driver with rule metadata, and one result per finding
// with a physical location.

type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

type SARIFDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri,omitempty"`
	Rules          []SARIFRuleDesc `json:"rules"`
}

type SARIFRuleDesc struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

type SARIFMessage struct {
	Text string `json:"text"`
}

type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
}

type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits findings as a single-run SARIF 2.1.0 log. rules
// populates the driver's rule table (pass AllRules(), or the selected
// subset). File paths are emitted as given — relativize before
// calling if the consumer wants repo-relative URIs.
func WriteSARIF(w io.Writer, findings []Finding, rules []Rule) error {
	driver := SARIFDriver{Name: "recsyslint"}
	for _, r := range rules {
		driver.Rules = append(driver.Rules, SARIFRuleDesc{
			ID:               r.ID(),
			ShortDescription: SARIFMessage{Text: r.Doc()},
		})
	}
	results := make([]SARIFResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, SARIFResult{
			RuleID:  f.RuleID,
			Level:   "error",
			Message: SARIFMessage{Text: f.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{URI: f.Pos.Filename},
					Region:           SARIFRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := SARIFLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []SARIFRun{{Tool: SARIFTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
