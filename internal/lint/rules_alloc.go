// The hot-path-alloc rule: a heuristic allocation budget for the
// serving read path (ROADMAP item 3's raw-speed goal). Inside stage
// functions — the same scope the snapshot-mutation and
// lock-in-read-path rules police — it flags the three allocation
// patterns profiling keeps finding:
//
//   - fmt.Sprintf / fmt.Sprint / fmt.Sprintln: reflection plus at
//     least one allocation per call, on every request;
//   - append inside a loop to a slice this function created without a
//     capacity hint (no make with a length/capacity argument): the
//     backing array reallocates log-many times per request;
//   - map composite literals: a per-request map allocation, usually a
//     lookup table that belongs at package scope.
//
// It is a heuristic, not an escape analysis: appends to slices the
// function did not visibly create (parameters, fields it only ever
// appends to) are left alone, and anything intentional is one
// //lint:ignore with a reason away.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

type hotPathAlloc struct{}

func (hotPathAlloc) ID() string { return "hot-path-alloc" }
func (hotPathAlloc) Doc() string {
	return "no fmt.Sprintf, unhinted in-loop append, or map literals inside read-path stage functions"
}

var sprintFuncs = map[string]bool{"Sprintf": true, "Sprint": true, "Sprintln": true}

func (hotPathAlloc) Check(pass *Pass) {
	forEachStageFunc(pass, func(name string, body *ast.BlockStmt) {
		hinted := make(map[string]bool)   // slices created with a capacity/length hint
		declared := make(map[string]bool) // slices this function visibly creates or resets
		recordAssign := func(lhs, rhs ast.Expr) {
			key := exprString(lhs)
			declared[key] = true
			if rhs != nil && isMakeWithHint(pass, rhs) {
				hinted[key] = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						// s = append(s, ...) extends s, it does not create
						// it; without this skip every parameter would count
						// as function-created after its first append.
						if isSelfAppend(pass, st.Lhs[i], st.Rhs[i]) {
							continue
						}
						recordAssign(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, id := range st.Names {
					var rhs ast.Expr
					if i < len(st.Values) {
						rhs = st.Values[i]
					}
					recordAssign(id, rhs)
				}
			}
			return true
		})

		var loops []struct{ lo, hi token.Pos }
		ast.Inspect(body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, struct{ lo, hi token.Pos }{n.Pos(), n.End()})
			}
			return true
		})
		inLoop := func(p token.Pos) bool {
			for _, l := range loops {
				if p >= l.lo && p <= l.hi {
					return true
				}
			}
			return false
		}

		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, st); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && sprintFuncs[fn.Name()] {
					pass.Reportf(st.Pos(), "stage %s calls fmt.%s on the hot path; formatting reflects and allocates per request — use strconv or precomputed strings", name, fn.Name())
					return true
				}
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "append" && len(st.Args) >= 2 {
					if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && inLoop(st.Pos()) {
						key := exprString(st.Args[0])
						if declared[key] && !hinted[key] {
							pass.Reportf(st.Pos(), "stage %s appends to %s inside a loop without a capacity hint; the backing array reallocates repeatedly — preallocate with make(..., 0, n)", name, key)
						}
					}
				}
			case *ast.CompositeLit:
				if t := pass.Pkg.Info.Types[st].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(st.Pos(), "stage %s builds a map literal on the hot path; hoist the table to package scope or reuse a pooled map", name)
					}
				}
			}
			return true
		})
	})
}

// isSelfAppend reports whether rhs is append(lhs, ...) — structural
// equality on the printed expression, matching the declared/hinted
// bookkeeping keys.
func isSelfAppend(pass *Pass, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return exprString(call.Args[0]) == exprString(lhs)
}

// isMakeWithHint reports whether e is make(...) carrying a size
// argument: make([]T, n) or make([]T, 0, n) both pre-size the backing
// array.
func isMakeWithHint(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
