// The ctx-propagation rule: contexts flow down from the request
// boundary, they are not minted mid-call-chain. Concretely it polices
// context.Background() and context.TODO():
//
//   - inside a function that already receives a context.Context, any
//     call to Background/TODO is a failure to forward the caller's
//     context — cancellation and deadlines silently stop propagating;
//   - elsewhere, Background/TODO is allowed only in main packages
//     (program entry points own the root context), test files (not
//     loaded by the analyzer), and the explicit allowlist of legacy
//     compat wrappers in Config.CtxAllowlist.

package lint

import (
	"go/ast"
	"go/types"
)

type ctxPropagation struct{}

func (ctxPropagation) ID() string { return "ctx-propagation" }
func (ctxPropagation) Doc() string {
	return "forward received contexts; context.Background() only in main packages or allowlisted wrappers"
}

func (ctxPropagation) Check(pass *Pass) {
	if pass.Pkg.Pkg.Name() == "main" {
		return
	}
	for _, file := range pass.Pkg.Files {
		// funcs is the stack of enclosing functions; each frame records
		// whether that function receives a context.Context and its
		// allowlist-qualified name.
		type frame struct {
			hasCtx  bool
			name    string
			endPos  int
			allowed bool
		}
		var stack []frame
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			for len(stack) > 0 && int(n.Pos()) >= stack[len(stack)-1].endPos {
				stack = stack[:len(stack)-1]
			}
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					return true
				}
				name := qualifiedName(pass, d)
				stack = append(stack, frame{
					hasCtx:  declaresCtxParam(pass, d.Type),
					name:    name,
					endPos:  int(d.End()),
					allowed: pass.Cfg.CtxAllowlist[name],
				})
			case *ast.FuncLit:
				inherited := len(stack) > 0 && stack[len(stack)-1].allowed
				sig, _ := pass.Pkg.Info.Types[d].Type.(*types.Signature)
				stack = append(stack, frame{
					hasCtx:  sigHasCtxParam(sig),
					name:    "(func literal)",
					endPos:  int(d.End()),
					allowed: inherited,
				})
			case *ast.CallExpr:
				fn := calleeFunc(pass, d)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() != "Background" && fn.Name() != "TODO" {
					return true
				}
				if len(stack) == 0 {
					return true // package-level initialiser; out of scope
				}
				top := stack[len(stack)-1]
				switch {
				case top.hasCtx:
					pass.Reportf(d.Pos(), "%s receives a context.Context but calls context.%s(); forward the received ctx so cancellation and deadlines propagate", top.name, fn.Name())
				case !top.allowed:
					pass.Reportf(d.Pos(), "context.%s() outside a main package: plumb a caller context, or add %s to the ctx allowlist if it is a deliberate compat boundary", fn.Name(), top.name)
				}
			}
			return true
		})
	}
}

// declaresCtxParam reports whether the function type has a
// context.Context parameter.
func declaresCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pass.Pkg.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func sigHasCtxParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function object, when the callee is a
// plain identifier or selector.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// qualifiedName renders a FuncDecl as "import/path.Func" or
// "import/path.(*Recv).Method" for allowlist matching.
func qualifiedName(pass *Pass, d *ast.FuncDecl) string {
	path := pass.Pkg.Path
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return path + "." + d.Name.Name
	}
	recv := d.Recv.List[0].Type
	star := false
	if s, ok := recv.(*ast.StarExpr); ok {
		star = true
		recv = s.X
	}
	// Strip generic receiver type parameters, e.g. T[K].
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ix.X
	}
	name := "?"
	if id, ok := recv.(*ast.Ident); ok {
		name = id.Name
	}
	if star {
		return path + ".(*" + name + ")." + d.Name.Name
	}
	return path + "." + name + "." + d.Name.Name
}
