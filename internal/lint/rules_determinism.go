// The determinism rule: packages in Config.DeterminismPkgs stand in
// for the paper's human studies, so their runs must be bit-identical
// given a seed. Three violation classes are mechanical enough to
// check:
//
//   - wall-clock reads (time.Now / time.Since / time.Until);
//   - importing math/rand or math/rand/v2 — all randomness routes
//     through internal/rng, whose streams are seed-stable across Go
//     versions;
//   - iterating a map directly into an output sink (fmt printing,
//     tablewriter rows, strings.Builder / bytes.Buffer writes, raw
//     io.Writer writes): Go randomises map order, so emitted text
//     differs run to run. Collect keys, sort, then emit.

package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

type determinism struct{}

func (determinism) ID() string { return "determinism" }
func (determinism) Doc() string {
	return "no wall-clock, math/rand, or map-iteration-to-output in seed-reproducible packages"
}

var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func (determinism) Check(pass *Pass) {
	if !pass.Cfg.DeterminismPkgs[pass.Pkg.Path] {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a seed-reproducible package; route all randomness through internal/rng", path)
			}
		}
	}
	pass.inspect(func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass, node); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && clockFuncs[fn.Name()] {
				pass.Reportf(node.Pos(), "time.%s() in a seed-reproducible package; wall-clock reads make runs irreproducible — thread timestamps through parameters if one is needed", fn.Name())
			}
		case *ast.RangeStmt:
			tv, ok := pass.Pkg.Info.Types[node.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := firstSink(pass, node.Body); sink != "" {
				pass.Reportf(node.Pos(), "map iteration feeds output via %s; map order is randomised — collect keys, sort, then emit", sink)
			}
		}
		return true
	})
}

// firstSink returns a description of the first output-sink call inside
// body, or "" when the loop only accumulates (which is fine: the
// caller can sort afterwards).
func firstSink(pass *Pass, body *ast.BlockStmt) string {
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg, name := fn.Pkg().Path(), fn.Name()
		switch {
		case pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
			found = "fmt." + name
		case strings.HasSuffix(pkg, "tablewriter") && name == "AddRow":
			found = "tablewriter AddRow"
		case (pkg == "strings" || pkg == "bytes") && strings.HasPrefix(name, "Write"):
			found = pkg + " " + name // Builder/Buffer Write* methods
		case pkg == "io" && name == "Write":
			found = "io.Writer Write"
		}
		return true
	})
	return found
}
