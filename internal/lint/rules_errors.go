// The dropped-error rule: in non-test code under the configured scope
// (internal/ by default), discarding an error result through the blank
// identifier hides failures the serving and experiment paths are
// contractually required to surface. Deliberate discards must carry a
// //lint:ignore dropped-error directive with a reason, which doubles
// as documentation of why the discard is safe.

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

type droppedError struct{}

func (droppedError) ID() string { return "dropped-error" }
func (droppedError) Doc() string {
	return "no blank-identifier discard of an error result in non-test scoped code"
}

func (r droppedError) Check(pass *Pass) {
	inScope := false
	for _, prefix := range pass.Cfg.ErrorScopePrefixes {
		if strings.HasPrefix(pass.Pkg.Path, prefix) || pass.Pkg.Path+"/" == prefix {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	pass.inspect(func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Multi-value form: x, _ := f() — match blank positions against
		// the call's result tuple.
		if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
			tv, ok := pass.Pkg.Info.Types[assign.Rhs[0]]
			if !ok {
				return true
			}
			tuple, ok := tv.Type.(*types.Tuple)
			if !ok || tuple.Len() != len(assign.Lhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				if isBlank(lhs) && types.Identical(tuple.At(i).Type(), errType) {
					pass.Reportf(lhs.Pos(), "error result of %s discarded via _; handle it or add //lint:ignore dropped-error <reason>", calleeDesc(pass, assign.Rhs[0]))
				}
			}
			return true
		}
		// One-to-one form: _ = f().
		if len(assign.Lhs) == len(assign.Rhs) {
			for i, lhs := range assign.Lhs {
				if !isBlank(lhs) {
					continue
				}
				tv, ok := pass.Pkg.Info.Types[assign.Rhs[i]]
				if ok && types.Identical(tv.Type, errType) {
					pass.Reportf(lhs.Pos(), "error value of %s discarded via _; handle it or add //lint:ignore dropped-error <reason>", calleeDesc(pass, assign.Rhs[i]))
				}
			}
		}
		return true
	})
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeDesc describes the expression whose error is being discarded,
// preferring the qualified callee name of a call.
func calleeDesc(pass *Pass, e ast.Expr) string {
	if call, ok := e.(*ast.CallExpr); ok {
		if fn := calleeFunc(pass, call); fn != nil {
			if fn.Pkg() != nil {
				return "call to " + fn.Pkg().Name() + "." + fn.Name()
			}
			return "call to " + fn.Name()
		}
		return "call to " + exprString(call.Fun)
	}
	return exprString(e)
}
