// The snapshot-escape rule: values published through an atomic
// pointer (atomic.Pointer[T].Store) or an artifact store (a module
// method named Publish) are shared with every concurrent reader the
// instant the publish call returns, so the publishing function must
// not write through the published value afterwards — directly,
// through an alias captured earlier (a map or slice pulled out of the
// value), or by passing the value to a callee that mutates its
// parameter. The intra-function snapshot-mutation rule (PR 3) already
// guards read-path stages; this rule guards the write path's half of
// the contract, across function boundaries, using the call graph's
// parameter-mutation summaries.
//
// The analysis is deliberately shaped like the repository's publish
// idiom: build → (optionally hand to helpers) → publish → never touch
// again. Everything before the publish call is fair game; the rule
// fires only on post-publish writes and on post-publish calls whose
// (transitively computed) summary says they may write through the
// argument.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

type snapshotEscape struct{}

func (snapshotEscape) ID() string { return "snapshot-escape" }
func (snapshotEscape) Doc() string {
	return "no mutation of, or retained mutable alias into, a value after it is published via atomic.Pointer.Store or a Publish method"
}

func (snapshotEscape) Check(pass *Pass) {
	if pass.Prog == nil || !prefixMatch(pass.Pkg.Path, pass.Cfg.EscapeScopePrefixes) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEscapes(pass, fd)
		}
	}
}

// publishEvent is one publish call inside a function body.
type publishEvent struct {
	pos   token.Pos
	desc  string         // rendering of the publish call for messages
	roots []types.Object // identifiable published values
}

// checkEscapes analyses one function declaration: find the publish
// calls, build the alias map, then flag post-publish writes and
// mutating calls that reach a published value.
func checkEscapes(pass *Pass, fd *ast.FuncDecl) {
	var publishes []publishEvent
	aliases := make(map[types.Object]types.Object) // alias → aliased base object
	rebinds := make(map[types.Object][]token.Pos)  // variable → wholesale reassignment positions

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if roots, desc, ok := publishedValues(pass, st); ok {
				publishes = append(publishes, publishEvent{pos: st.Pos(), desc: desc, roots: roots})
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := identObj(pass, id)
				if obj == nil {
					continue
				}
				// A wholesale rebind starts a fresh generation: earlier
				// publishes of this variable no longer alias it.
				rebinds[obj] = append(rebinds[obj], lhs.Pos())
				// Record pure-path aliases: m := s.scores, t := s.
				if i < len(st.Rhs) && len(st.Lhs) == len(st.Rhs) {
					if base, pure := pathBase(pass, st.Rhs[i]); pure && base != nil {
						aliases[obj] = base
					}
				}
			}
		}
		return true
	})
	if len(publishes) == 0 {
		return
	}

	published := func(obj types.Object, after token.Pos) (publishEvent, bool) {
		// Resolve the alias chain to its base object.
		seen := 0
		for {
			base, ok := aliases[obj]
			if !ok || seen > 10 {
				break
			}
			obj = base
			seen++
		}
		for _, p := range publishes {
			if after <= p.pos {
				continue
			}
			match := false
			for _, r := range p.roots {
				if r == obj {
					match = true
					break
				}
			}
			if !match {
				continue
			}
			rebound := false
			for _, rp := range rebinds[obj] {
				if p.pos < rp && rp < after {
					rebound = true
					break
				}
			}
			if !rebound {
				return p, true
			}
		}
		return publishEvent{}, false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				obj, through := writeRoot(pass.Pkg, lhs)
				if obj == nil || !through {
					continue
				}
				if p, ok := published(obj, lhs.Pos()); ok {
					pass.Reportf(lhs.Pos(), "%s writes through %s after it was published by %s; published values are shared with concurrent readers — mutate before publishing, or build a fresh generation", fd.Name.Name, exprString(lhs), p.desc)
				}
			}
		case *ast.IncDecStmt:
			if obj, through := writeRoot(pass.Pkg, st.X); obj != nil && through {
				if p, ok := published(obj, st.X.Pos()); ok {
					pass.Reportf(st.X.Pos(), "%s writes through %s after it was published by %s; published values are shared with concurrent readers — mutate before publishing, or build a fresh generation", fd.Name.Name, exprString(st.X), p.desc)
				}
			}
		case *ast.CallExpr:
			checkEscapeCall(pass, fd, st, published)
		}
		return true
	})
}

// checkEscapeCall flags a call made after a publish that hands the
// published value (or an alias of it) to a parameter the callee may
// mutate, and the builtin mutators delete/copy.
func checkEscapeCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, published func(types.Object, token.Pos) (publishEvent, bool)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "delete" || id.Name == "copy") && len(call.Args) > 0 {
		if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			if base, _ := pathBase(pass, call.Args[0]); base != nil {
				if p, ok := published(base, call.Pos()); ok {
					pass.Reportf(call.Pos(), "%s calls %s on state reachable from a value published by %s; published values are shared with concurrent readers", fd.Name.Name, id.Name, p.desc)
				}
			}
		}
		return
	}
	fn := usedFunc(pass.Pkg, call.Fun)
	if fn == nil {
		return
	}
	for _, target := range pass.Prog.chaTargets(fn) {
		for idx, arg := range callArgs(pass.Pkg, call, target) {
			base, _ := pathBase(pass, arg)
			if base == nil {
				continue
			}
			mut := pass.Prog.mutatedParams[target]
			if idx >= len(mut) || !mut[idx] {
				continue
			}
			if p, ok := published(base, call.Pos()); ok {
				pass.Reportf(call.Pos(), "%s passes %s, published by %s, to %s which may mutate it; published values are shared with concurrent readers — pass a copy or reorder the publish", fd.Name.Name, exprString(arg), p.desc, target.Name())
				return
			}
		}
	}
}

// publishedValues recognises a publish call and returns the
// identifiable objects it publishes: the stored value for
// (*sync/atomic.Pointer[T]).Store, and every reference-typed argument
// for a module method named Publish.
func publishedValues(pass *Pass, call *ast.CallExpr) ([]types.Object, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, "", false
	}
	collect := func(args []ast.Expr) []types.Object {
		var roots []types.Object
		for _, a := range args {
			if !referenceLike(pass.Pkg.Info.Types[a].Type) {
				continue
			}
			if base, pure := pathBase(pass, a); pure && base != nil {
				roots = append(roots, base)
			}
		}
		return roots
	}
	if fn.Name() == "Store" && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && isAtomicPointerRecv(fn) && len(call.Args) == 1 {
		return collect(call.Args), exprString(call.Fun) + "(...)", true
	}
	if fn.Name() == "Publish" && fn.Pkg() != nil && fn.Pkg().Path() != "sync/atomic" {
		// Only module-declared Publish methods count as artifact stores.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return collect(call.Args), exprString(call.Fun) + "(...)", true
		}
	}
	return nil, "", false
}

// isAtomicPointerRecv reports whether fn's receiver is
// sync/atomic.Pointer[T] (as opposed to Bool/Int64/Value, whose Store
// publishes no aliasable structure).
func isAtomicPointerRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pointer"
}

// referenceLike reports whether t can carry mutable state by
// reference: pointers, maps, slices, channels and interfaces.
func referenceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// pathBase resolves a pure selector/index/dereference path to its base
// identifier's object. The second result is false when the expression
// contains anything but path steps (a call breaks aliasing).
func pathBase(pass *Pass, e ast.Expr) (types.Object, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return identObj(pass, x), true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, false
			}
			e = x.X
		default:
			return nil, false
		}
	}
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Defs[id]
}

// writeRoot returns the base identifier object of an assignable
// expression and whether the write goes through at least one
// selector/index/dereference step (writing *into* the object rather
// than rebinding a variable).
func writeRoot(pkg *Package, e ast.Expr) (types.Object, bool) {
	through := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			return obj, through
		case *ast.SelectorExpr:
			e, through = x.X, true
		case *ast.IndexExpr:
			e, through = x.X, true
		case *ast.StarExpr:
			e, through = x.X, true
		default:
			return nil, false
		}
	}
}

// callArgs maps a call's argument expressions onto target's parameter
// list (receiver first), so summary bits line up with what the caller
// passed. Variadic overflow maps onto the last parameter.
func callArgs(pkg *Package, call *ast.CallExpr, target *types.Func) []ast.Expr {
	sig, ok := target.Type().(*types.Signature)
	if !ok {
		return nil
	}
	n := sig.Params().Len()
	hasRecv := sig.Recv() != nil
	total := n
	if hasRecv {
		total++
	}
	out := make([]ast.Expr, total)
	args := call.Args
	if hasRecv {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if s, found := pkg.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
				out[0] = sel.X
			}
		}
		if out[0] == nil && len(args) > 0 {
			// Method expression T.M(recv, ...) — first arg is the receiver.
			out[0] = args[0]
			args = args[1:]
		}
	}
	off := 0
	if hasRecv {
		off = 1
	}
	for i, a := range args {
		slot := i
		if slot >= n {
			slot = n - 1 // variadic overflow
		}
		if slot >= 0 && off+slot < total && out[off+slot] == nil {
			out[off+slot] = a
		}
	}
	return out
}

// paramObjs lists a function's parameter objects, receiver first, in
// the order mutatedParams bits refer to them.
func paramObjs(fi *FuncInfo) []*types.Var {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// buildMutationSummaries computes, to a fixed point over the call
// graph, which parameters each module function may write through:
// direct selector/index/dereference stores, the builtins delete and
// copy, and parameters passed onward into a mutated position of a
// callee (any call mode — a mutation on a goroutine or in a stored
// closure still mutates).
func (prog *Program) buildMutationSummaries() {
	prog.mutatedParams = make(map[*types.Func][]bool, len(prog.funcs))
	params := make(map[*types.Func]map[types.Object]int, len(prog.funcs))
	for fn, fi := range prog.funcs {
		objs := paramObjs(fi)
		prog.mutatedParams[fn] = make([]bool, len(objs))
		idx := make(map[types.Object]int, len(objs))
		for i, o := range objs {
			idx[o] = i
		}
		params[fn] = idx
	}

	mark := func(fn *types.Func, obj types.Object) bool {
		if obj == nil {
			return false
		}
		i, ok := params[fn][obj]
		if !ok || prog.mutatedParams[fn][i] {
			return false
		}
		prog.mutatedParams[fn][i] = true
		return true
	}

	for changed := true; changed; {
		changed = false
		for fn, fi := range prog.funcs {
			pkg := fi.Pkg
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if obj, through := writeRoot(pkg, lhs); through && mark(fn, obj) {
							changed = true
						}
					}
				case *ast.IncDecStmt:
					if obj, through := writeRoot(pkg, st.X); through && mark(fn, obj) {
						changed = true
					}
				case *ast.UnaryExpr:
					// &param escaping: treat taking the address of a
					// parameter's interior as a potential mutation.
					if st.Op == token.AND {
						if obj, through := writeRoot(pkg, st.X); through && obj != nil {
							if _, isParam := params[fn][obj]; isParam && mark(fn, obj) {
								changed = true
							}
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && (id.Name == "delete" || id.Name == "copy") && len(st.Args) > 0 {
						if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
							if base, _ := pathBaseInfo(pkg, st.Args[0]); base != nil && mark(fn, base) {
								changed = true
							}
						}
						return true
					}
					callee := usedFunc(pkg, st.Fun)
					if callee == nil {
						return true
					}
					for _, target := range prog.chaTargets(callee) {
						mut := prog.mutatedParams[target]
						for idx, arg := range callArgs(pkg, st, target) {
							if arg == nil || idx >= len(mut) || !mut[idx] {
								continue
							}
							if base, _ := pathBaseInfo(pkg, arg); base != nil && mark(fn, base) {
								changed = true
							}
						}
					}
				}
				return true
			})
		}
	}
}

// pathBaseInfo is pathBase without a Pass (used at summary-build time).
func pathBaseInfo(pkg *Package, e ast.Expr) (types.Object, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			return obj, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, false
			}
			e = x.X
		default:
			return nil, false
		}
	}
}

// prefixMatch reports whether path falls under any of the prefixes.
func prefixMatch(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if p == "" {
			continue
		}
		if path == p || len(path) > len(p) && path[:len(p)] == p {
			return true
		}
	}
	return false
}
