// The fs-boundary rule: only the designated durability packages may
// mutate the filesystem. Everything else in internal/ must route
// persistent state through those seams (wal.FS, the artifact store),
// because a stray os.WriteFile in a serving package bypasses the
// fsync policy, the atomic-rename protocol and the crash-recovery
// story the durability layer guarantees — a write that recovery will
// never see. Reads are fine everywhere; the rule polices mutation.
// Main packages (binaries wire flags to directories) are exempt, and
// test files are never loaded.

package lint

import (
	"go/ast"
	"go/types"
)

type fsBoundary struct{}

func (fsBoundary) ID() string { return "fs-boundary" }
func (fsBoundary) Doc() string {
	return "filesystem mutation only inside the designated durability packages (Config.FSAllowedPkgs)"
}

// fsMutators are the os package functions that change the filesystem.
var fsMutators = map[string]bool{
	"Create": true, "OpenFile": true, "WriteFile": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "CreateTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Chmod": true, "Chown": true, "Chtimes": true, "Symlink": true, "Link": true,
}

// fileMutators are the *os.File methods that write through to disk.
var fileMutators = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true,
	"Sync": true, "Truncate": true, "Chmod": true, "Chown": true,
}

func (fsBoundary) Check(pass *Pass) {
	cfg := pass.Cfg
	if !prefixMatch(pass.Pkg.Path, cfg.FSScopePrefixes) || cfg.FSAllowedPkgs[pass.Pkg.Path] {
		return
	}
	if pass.Pkg.Pkg != nil && pass.Pkg.Pkg.Name() == "main" {
		return
	}
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		name := fn.Name()
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if fileMutators[name] {
				pass.Reportf(call.Pos(), "os.File.%s outside the durability boundary; persistent writes go through wal.FS or the artifact store so fsync policy and crash recovery cover them", name)
			}
			return true
		}
		if fsMutators[name] {
			pass.Reportf(call.Pos(), "os.%s outside the durability boundary; persistent writes go through wal.FS or the artifact store so fsync policy and crash recovery cover them", name)
		}
		return true
	})
}
