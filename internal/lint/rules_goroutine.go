// The goroutine-lifecycle rule: every `go` statement inside the
// configured scope must be *supervised* and *bounded*.
//
// Supervised means a panic on the goroutine cannot take the process
// down unnoticed: the spawned body installs a defer-recover guard
// directly, or some function reachable from it through plain call
// edges installs one (the pipeline's Recover interceptor pattern), or
// the goroutine is awaited through a sync.WaitGroup in structured-
// concurrency style, or the enclosing function is an allowlisted
// supervisor (Config.GoroutineAllowlist — the retrainAsync pattern,
// whose lifetime is bounded by a CAS gate rather than a context).
//
// Bounded means something can stop it: the body (or the named
// function it runs) references a context.Context *variable* — a
// freshly minted context.Background() does not count — or blocks on a
// channel receive/select/range (a stop channel is a cancellation
// path), or is WaitGroup-awaited (its lifetime is then bounded by the
// caller's, which holds the caller's context).
//
// recover() only recovers when called directly by a deferred
// function, so the direct-guard check looks for `defer func() {
// ... recover() ... }()` (or a deferred named function whose own body
// calls recover) and deliberately does not credit recover calls in
// nested literals.

package lint

import (
	"go/ast"
	"go/types"
)

type goroutineLifecycle struct{}

func (goroutineLifecycle) ID() string { return "goroutine-lifecycle" }
func (goroutineLifecycle) Doc() string {
	return "every go statement needs a recover guard (direct, reachable, or WaitGroup-awaited) and a cancellation path (ctx, stop channel, or awaited)"
}

func (goroutineLifecycle) Check(pass *Pass) {
	if pass.Prog == nil || !prefixMatch(pass.Pkg.Path, pass.Cfg.GoroutineScopePrefixes) {
		return
	}
	if pass.Pkg.Pkg.Name() == "main" {
		return // entry points own their goroutines' lifetimes
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			encl := qualifiedName(pass, fd)
			allowed := pass.Cfg.GoroutineAllowlist[encl]
			var fi *FuncInfo
			if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				fi = pass.Prog.FuncOf(obj)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, fi, g, encl, allowed)
				return true
			})
		}
	}
}

// checkGoStmt applies the supervision and boundedness checks to one go
// statement inside the function described by fi.
func checkGoStmt(pass *Pass, fi *FuncInfo, g *ast.GoStmt, encl string, allowed bool) {
	if allowed {
		return
	}
	prog := pass.Prog
	var body *ast.BlockStmt // the spawned body, when visible
	var named *types.Func   // the spawned named function, when static
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := usedFunc(pass.Pkg, g.Call.Fun); fn != nil {
		named = fn
		if nfi := prog.FuncOf(fn); nfi != nil {
			body = nfi.Decl.Body
		}
	}
	var bodyPkg *Package
	if body != nil {
		bodyPkg = pass.Pkg
		if named != nil {
			if nfi := prog.FuncOf(named); nfi != nil {
				bodyPkg = nfi.Pkg
			}
		}
	}

	waited := body != nil && bodyHasWaitGroupDone(bodyPkg, body)

	supervised := waited
	if !supervised && body != nil && hasDirectDeferRecover(bodyPkg, body) {
		supervised = true
	}
	if !supervised {
		keep := func(m CallMode) bool { return m == ModeCall || m == ModeDefer }
		guarded := func(f *FuncInfo) bool { return prog.recoverGuards[f.Obj] }
		if named != nil && prog.reachable(named, keep, guarded) {
			supervised = true
		}
		if !supervised && fi != nil {
			// A literal body's calls were collected on the enclosing
			// function with ModeGo/ModeDefer; restrict to this statement's
			// span and chase plain edges from those targets.
			for _, site := range fi.Calls {
				p := site.Expr.Pos()
				if p < g.Pos() || p > g.End() {
					continue
				}
				for _, t := range site.Targets {
					if prog.reachable(t, keep, guarded) {
						supervised = true
						break
					}
				}
				if supervised {
					break
				}
			}
		}
	}
	if !supervised {
		pass.Reportf(g.Pos(), "go statement in %s spawns an unsupervised goroutine: no defer-recover guard in or reachable from its body and it is not WaitGroup-awaited — a panic here kills the process; add a guard or allowlist the supervisor", encl)
		return
	}

	bounded := waited
	if !bounded {
		for _, arg := range g.Call.Args {
			if isCtxVar(pass.Pkg, arg) {
				bounded = true
				break
			}
		}
	}
	if !bounded && body != nil {
		bounded = bodyHasCancelSignal(bodyPkg, body)
	}
	if !bounded {
		pass.Reportf(g.Pos(), "goroutine in %s has no cancellation path: no context variable, stop-channel receive, or WaitGroup bound reaches its body — thread the caller's ctx or a quit channel through it", encl)
	}
}

// hasDirectDeferRecover reports whether body installs a defer whose
// deferred function calls recover() directly (not in a nested
// literal). Deferred named functions count when their own body calls
// recover directly.
func hasDirectDeferRecover(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(d.Call.Fun).(type) {
		case *ast.FuncLit:
			if callsRecoverDirectly(pkg, fun.Body) {
				found = true
			}
		default:
			// defer named() — recover inside named's own body works too,
			// but only when the declaration is visible in this package's
			// loaded set; cross-package deferred guards resolve through
			// the recoverGuards summary at the call-graph layer.
			if id, ok := ast.Unparen(d.Call.Fun).(*ast.Ident); ok {
				if decl := localDecl(pkg, id); decl != nil && decl.Body != nil && callsRecoverDirectly(pkg, decl.Body) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// callsRecoverDirectly reports whether body calls the builtin recover
// outside any nested function literal.
func callsRecoverDirectly(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if found || n == nil {
			return
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return // a recover in a nested frame does not guard this one
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "recover" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return
				}
			}
		}
		walkChildren(n, walk)
	}
	walkChildren(body, walk)
	return found
}

// localDecl finds the FuncDecl an identifier names inside this
// package's files, or nil.
func localDecl(pkg *Package, id *ast.Ident) *ast.FuncDecl {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pkg.Info.Defs[fd.Name] == obj {
				return fd
			}
		}
	}
	return nil
}

// bodyHasWaitGroupDone reports whether body calls Done on a
// sync.WaitGroup — the structured-concurrency marker the rule treats
// as both supervision (the spawner observes completion) and bound
// (the goroutine's lifetime nests inside its caller's).
func bodyHasWaitGroupDone(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			found = true
		}
		return true
	})
	return found
}

// bodyHasCancelSignal reports whether body references a
// context.Context variable or blocks on a channel (receive, select,
// or range over a channel) — any of which gives the outside world a
// handle to stop the goroutine.
func bodyHasCancelSignal(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if st.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[st.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if isCtxVar(pkg, st) {
				found = true
			}
		case *ast.SelectorExpr:
			if isCtxVar(pkg, st) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isCtxVar reports whether e is a variable (or field selection) of
// type context.Context. Calls — context.Background(), context.TODO()
// — intentionally do not qualify: a freshly minted root context is
// exactly what this rule exists to catch.
func isCtxVar(pkg *Package, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return isContextType(v.Type())
		}
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			return isContextType(s.Obj().Type())
		}
	}
	return false
}

// buildRecoverSummaries records, for every module function, whether
// its declaration installs a defer-recover guard anywhere — including
// inside nested literals, because a handler literal's guard protects
// whatever runs below it in the same call chain.
func (prog *Program) buildRecoverSummaries() {
	prog.recoverGuards = make(map[*types.Func]bool, len(prog.funcs))
	for fn, fi := range prog.funcs {
		guarded := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if guarded {
				return false
			}
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok && callsRecoverDirectly(fi.Pkg, lit.Body) {
				guarded = true
			}
			return true
		})
		prog.recoverGuards[fn] = guarded
	}
}
