// The lock-ordering rule: a static lock-acquisition graph over every
// lock-like value in the module — sync.Mutex/RWMutex fields (the
// engine's writer mutex, per-user state shards, the resilience
// breakers) and module-defined mutex types (the cluster's chan-based
// chMutex) — with an edge A → B whenever some function acquires B, or
// calls (transitively, through plain call edges) a function that
// acquires B, while textually holding A. A cycle in that graph is two
// code paths taking the same locks in opposite orders: a latent
// deadlock no test run is likely to catch.
//
// Lock identity is structural, not per-instance: "pkg.Type.field" for
// a lock stored in a struct field, "pkg.var" for a package-level
// lock, "pkg.func.name" for a function-local one. That matches how
// lock-ordering disciplines are actually stated ("writeMu before
// store.mu") and keeps the graph finite.
//
// The held region of an acquisition is textual: from the Lock call to
// the first matching Unlock at the same nesting, or to the end of the
// function when the Unlock is deferred. Calls on goroutines spawned
// inside the region, and bodies of non-invoked function literals, are
// excluded — a lock is not held across code that runs on another
// goroutine or at an unknown later time (see CallMode in
// callgraph.go).

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"path/filepath"
	"sort"
	"strings"
)

type lockOrdering struct{}

func (lockOrdering) ID() string { return "lock-ordering" }
func (lockOrdering) Doc() string {
	return "the static lock-acquisition graph (mutexes, chan-mutexes, breakers) must be acyclic"
}

func (lockOrdering) Check(pass *Pass) {
	if pass.Prog == nil || !prefixMatch(pass.Pkg.Path, pass.Cfg.LockScopePrefixes) {
		return
	}
	// The graph is global; each cycle is reported exactly once, by the
	// package owning its witness edge (the earliest acquisition that
	// closes the cycle).
	for _, cyc := range pass.Prog.lockCycles {
		file := pass.Pkg.Fset.Position(cyc.witness.pos).Filename
		if filepath.Dir(file) != pass.Pkg.Dir {
			continue
		}
		pass.Reportf(cyc.witness.pos, "lock-ordering cycle %s: %s acquires %s while holding %s, but another path acquires them in the opposite order — pick one global order and stick to it", strings.Join(cyc.nodes, " → "), cyc.witness.fn, cyc.witness.to, cyc.witness.from)
	}
}

// lockEdge is one "B acquired while holding A" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos // the acquisition (or call) that creates the edge
	fn       string    // qualified name of the function it happens in
}

// lockCycle is one strongly connected component of the lock graph with
// more than one node, i.e. an ordering inversion.
type lockCycle struct {
	nodes   []string // sorted, for a deterministic report
	witness lockEdge // minimal-position edge inside the cycle
}

// lockEvent is one acquisition or release in a function body, in
// textual order. atEnd marks releases that run at function exit
// (deferred), which extend the held region to the end of the body.
type lockEvent struct {
	pos     token.Pos
	id      string
	acquire bool
	atEnd   bool
}

var acquireMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"lock": true, "rlock": true, "trylock": true,
}

var releaseMethods = map[string]bool{
	"Unlock": true, "RUnlock": true,
	"unlock": true, "runlock": true,
}

// lockMethod recognises a lock-protocol call: a method named like an
// acquisition/release whose receiver is sync.Mutex/sync.RWMutex or a
// module type whose name contains "mutex" (the cluster's chMutex
// idiom). It returns the structural identity of the lock value.
func lockMethod(pkg *Package, call *ast.CallExpr) (id string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	name := sel.Sel.Name
	if !acquireMethods[name] && !releaseMethods[name] {
		return "", false, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false, false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false, false
	}
	obj := named.Obj()
	lockish := obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") ||
		strings.Contains(strings.ToLower(obj.Name()), "mutex")
	if !lockish {
		return "", false, false
	}
	return lockIdent(pkg, sel.X), acquireMethods[name], releaseMethods[name]
}

// lockIdent maps the lock-valued expression to its structural
// identity: the owning struct field, the package-level variable, or a
// function-local fallback.
func lockIdent(pkg *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[x]; ok {
			owner := s.Recv()
			if ptr, ok := owner.(*types.Pointer); ok {
				owner = ptr.Elem()
			}
			if named, ok := owner.(*types.Named); ok {
				o := named.Obj()
				if o.Pkg() != nil {
					return o.Pkg().Path() + "." + o.Name() + "." + x.Sel.Name
				}
			}
			// Owner is an anonymous struct or similar: index-based fallback.
			return exprString(x)
		}
		// Package-qualified variable: pkg.Mu.
		if obj := pkg.Info.Uses[x.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return exprString(x)
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if obj == nil {
			return pkg.Path + "." + x.Name
		}
		if obj.Pkg() != nil && obj.Pkg().Scope() == obj.Parent() {
			// Package-level lock variable.
			return obj.Pkg().Path() + "." + obj.Name()
		}
		// Function-local lock: identify by package and name; locals of
		// the same name in different functions collapse, which can only
		// merge nodes (never split a real cycle).
		return pkg.Path + ".<local>." + x.Name
	case *ast.IndexExpr:
		// Sharded locks: shards[i].mu style — identify by the base.
		return lockIdent(pkg, x.X)
	case *ast.StarExpr:
		return lockIdent(pkg, x.X)
	}
	return exprString(e)
}

// lockEvents collects one function's acquisitions and releases in
// textual order, excluding goroutine bodies and non-invoked literals.
// Deferred releases surface with atEnd set; deferred acquisitions are
// ignored (a defer that locks is its own pathology, not an ordering
// fact).
func lockEvents(pkg *Package, body *ast.BlockStmt) []lockEvent {
	var evs []lockEvent
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		switch st := n.(type) {
		case nil:
			return
		case *ast.GoStmt:
			return // runs on another goroutine; not held-across
		case *ast.DeferStmt:
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				walkChildren(lit.Body, func(c ast.Node) { walk(c, true) })
			} else {
				walk(st.Call, true)
			}
			return
		case *ast.CallExpr:
			if id, acq, rel := lockMethod(pkg, st); id != "" {
				if acq && !deferred {
					evs = append(evs, lockEvent{pos: st.Pos(), id: id, acquire: true})
				}
				if rel {
					evs = append(evs, lockEvent{pos: st.Pos(), id: id, atEnd: deferred})
				}
			}
			if lit, ok := st.Fun.(*ast.FuncLit); ok {
				walkChildren(lit.Body, func(c ast.Node) { walk(c, deferred) })
			} else if sel, ok := st.Fun.(*ast.SelectorExpr); ok {
				walk(sel.X, deferred)
			}
			for _, a := range st.Args {
				walk(a, deferred)
			}
			return
		case *ast.FuncLit:
			return // non-invoked: executes at an unknown time
		}
		walkChildren(n, func(c ast.Node) { walk(c, deferred) })
	}
	walkChildren(body, func(c ast.Node) { walk(c, false) })
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// buildLockGraph computes the transitive acquiredLocks summary, then
// derives held-region edges and the cycles of the resulting graph.
func (prog *Program) buildLockGraph() {
	prog.acquiredLocks = make(map[*types.Func]map[string]bool, len(prog.funcs))
	events := make(map[*types.Func][]lockEvent, len(prog.funcs))
	for fn, fi := range prog.funcs {
		evs := lockEvents(fi.Pkg, fi.Decl.Body)
		events[fn] = evs
		set := make(map[string]bool)
		for _, ev := range evs {
			if ev.acquire {
				set[ev.id] = true
			}
		}
		prog.acquiredLocks[fn] = set
	}
	// Fixed point: a function may acquire whatever its plain and
	// deferred callees may acquire.
	for changed := true; changed; {
		changed = false
		for fn, fi := range prog.funcs {
			set := prog.acquiredLocks[fn]
			for _, site := range fi.Calls {
				if site.Mode != ModeCall && site.Mode != ModeDefer {
					continue
				}
				for _, t := range site.Targets {
					for id := range prog.acquiredLocks[t] {
						if !set[id] {
							set[id] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// Held regions → edges.
	best := make(map[edgeKey]lockEdge)
	addEdge := func(from, to string, pos token.Pos, fn string) {
		if from == to {
			return // re-acquisition is a different bug class; skip to avoid RLock noise
		}
		k := edgeKey{from, to}
		if e, ok := best[k]; !ok || pos < e.pos {
			best[k] = lockEdge{from: from, to: to, pos: pos, fn: fn}
		}
	}
	for fn, fi := range prog.funcs {
		evs := events[fn]
		qname := funcQName(fn)
		for i, ev := range evs {
			if !ev.acquire {
				continue
			}
			end := token.Pos(math.MaxInt)
			for _, later := range evs[i+1:] {
				if !later.acquire && later.id == ev.id && !later.atEnd {
					end = later.pos
					break
				}
			}
			if end == token.Pos(math.MaxInt) {
				end = fi.Decl.End()
			}
			for _, later := range evs[i+1:] {
				if later.acquire && later.pos <= end {
					addEdge(ev.id, later.id, later.pos, qname)
				}
			}
			for _, site := range fi.Calls {
				if site.Mode != ModeCall {
					continue
				}
				p := site.Expr.Pos()
				if p <= ev.pos || p > end {
					continue
				}
				for _, t := range site.Targets {
					for id := range prog.acquiredLocks[t] {
						addEdge(ev.id, id, p, qname)
					}
				}
			}
		}
	}
	keys := make([]edgeKey, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	adj := make(map[string][]string)
	for _, k := range keys {
		prog.lockEdges = append(prog.lockEdges, best[k])
		adj[k.from] = append(adj[k.from], k.to)
	}
	prog.lockCycles = lockCyclesOf(adj, best)
}

// edgeKey identifies a lock-graph edge by its endpoints.
type edgeKey struct{ from, to string }

// lockCyclesOf finds the strongly connected components with more than
// one node and packages each as a cycle with its minimal-position
// witness edge.
func lockCyclesOf(adj map[string][]string, edges map[edgeKey]lockEdge) []lockCycle {
	nodes := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		add(from)
		for _, to := range tos {
			add(to)
		}
	}
	sort.Strings(nodes)

	// Tarjan's SCC, iterative enough for graphs this size.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var cycles []lockCycle
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] != index[v] {
			return
		}
		var comp []string
		for {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			onStack[w] = false
			comp = append(comp, w)
			if w == v {
				break
			}
		}
		if len(comp) < 2 {
			return
		}
		sort.Strings(comp)
		inComp := make(map[string]bool, len(comp))
		for _, n := range comp {
			inComp[n] = true
		}
		witness := lockEdge{pos: token.Pos(math.MaxInt)}
		for k, e := range edges {
			if inComp[k.from] && inComp[k.to] && e.pos < witness.pos {
				witness = e
			}
		}
		cycles = append(cycles, lockCycle{nodes: append(comp, comp[0]), witness: witness})
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i].witness.pos < cycles[j].witness.pos })
	return cycles
}

// funcQName renders fn as the allowlist-style qualified name:
// "import/path.Func" or "import/path.(*Recv).Method".
func funcQName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := false
	if p, isPtr := t.(*types.Pointer); isPtr {
		t, ptr = p.Elem(), true
	}
	name := "?"
	if named, isNamed := t.(*types.Named); isNamed {
		name = named.Obj().Name()
	}
	if ptr {
		return pkg + ".(*" + name + ")." + fn.Name()
	}
	return pkg + "." + name + "." + fn.Name()
}
