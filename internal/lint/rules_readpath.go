// The two read-path rules. Both apply only inside "stage functions"
// of the packages listed in Config.ReadPathPkgs: functions named
// stageXxx, or whose signature matches the pipeline handler shape
// func(context.Context, *Request) (*Response, error). The engine's
// read operations execute exclusively through such functions, so a
// violation there is a violation of the serving path's contracts.

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// snapshotMutation enforces the copy-on-write contract of the PR-1
// snapshot design: stage functions observe one immutable snapshot
// generation and must never write to state reachable from it. New
// generations are built and published only by the serialised write
// path (Engine.mutate / rebuild).
type snapshotMutation struct{}

func (snapshotMutation) ID() string { return "snapshot-mutation" }
func (snapshotMutation) Doc() string {
	return "no assignment to state reachable from a snapshot value inside read-path stage functions"
}

func (snapshotMutation) Check(pass *Pass) {
	forEachStageFunc(pass, func(name string, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if root := snapshotRoot(pass, lhs); root != "" {
						pass.Reportf(lhs.Pos(), "stage %s writes through snapshot value %s; snapshots are immutable after publication — build a new generation on the write path instead", name, root)
					}
				}
			case *ast.IncDecStmt:
				if root := snapshotRoot(pass, st.X); root != "" {
					pass.Reportf(st.X.Pos(), "stage %s writes through snapshot value %s; snapshots are immutable after publication — build a new generation on the write path instead", name, root)
				}
			}
			return true
		})
	})
}

// lockInReadPath keeps the serving read path lock-free: stage
// functions must not acquire a sync.Mutex or sync.RWMutex. Per-user
// feedback state and guarded compat mode take their locks outside the
// stage bodies, where the engine controls ordering; a lock acquired
// inside a stage would reintroduce cross-request contention the PR-1
// design removed.
type lockInReadPath struct{}

func (lockInReadPath) ID() string { return "lock-in-read-path" }
func (lockInReadPath) Doc() string {
	return "no sync.Mutex/sync.RWMutex acquisition inside read-path stage functions"
}

var lockAcquisitions = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func (lockInReadPath) Check(pass *Pass) {
	forEachStageFunc(pass, func(name string, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !lockAcquisitions[sel.Sel.Name] {
				return true
			}
			// Resolve the method object; promoted methods of embedded
			// mutexes still resolve to the sync package.
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return true
			}
			recv := "sync"
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				t := sig.Recv().Type()
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					recv = "sync." + named.Obj().Name()
				}
			}
			pass.Reportf(call.Pos(), "stage %s acquires %s.%s; the read path is lock-free — move locking to the write path or per-user state helpers", name, recv, fn.Name())
			return true
		})
	})
}

// forEachStageFunc invokes fn for every stage function in the package
// when the package is part of the configured read path: named
// functions and methods whose name starts with "stage", plus any
// function or literal matching the pipeline handler signature. Named
// functions listed in HotPathFuncs count as stage bodies in any
// package — that is how the ANN search kernels opt into the read-path
// rules from outside ReadPathPkgs.
func forEachStageFunc(pass *Pass, fn func(name string, body *ast.BlockStmt)) {
	readPath := pass.Cfg.ReadPathPkgs[pass.Pkg.Path]
	if !readPath && len(pass.Cfg.HotPathFuncs) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					return true
				}
				stage := readPath && (isStageName(d.Name.Name) || hasHandlerShape(pass, d.Name))
				if stage || pass.Cfg.HotPathFuncs[qualifiedName(pass, d)] {
					fn(d.Name.Name, d.Body)
					return false // the whole body is covered; don't double-visit literals
				}
			case *ast.FuncLit:
				if !readPath {
					return true
				}
				if sig, ok := pass.Pkg.Info.Types[d].Type.(*types.Signature); ok && isHandlerSig(sig) {
					fn("(func literal)", d.Body)
					return false
				}
			}
			return true
		})
	}
}

// isStageName reports whether a function name follows the stageXxx
// convention of internal/core/stages.go.
func isStageName(name string) bool {
	rest, ok := strings.CutPrefix(name, "stage")
	return ok && rest != "" && rest[0] >= 'A' && rest[0] <= 'Z'
}

// hasHandlerShape reports whether the declared function's type matches
// the pipeline handler signature.
func hasHandlerShape(pass *Pass, name *ast.Ident) bool {
	obj := pass.Pkg.Info.Defs[name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && isHandlerSig(sig)
}

// isHandlerSig matches func(context.Context, *Request) (*Response,
// error) structurally: the parameter and result struct types need only
// be named Request and Response, so the rule recognises both the real
// internal/pipeline vocabulary and self-contained fixtures.
func isHandlerSig(sig *types.Signature) bool {
	params, results := sig.Params(), sig.Results()
	if params.Len() != 2 || results.Len() != 2 {
		return false
	}
	return isContextType(params.At(0).Type()) &&
		isPointerToNamed(params.At(1).Type(), "Request") &&
		isPointerToNamed(results.At(0).Type(), "Response") &&
		types.Identical(results.At(1).Type(), types.Universe.Lookup("error").Type())
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isPointerToNamed(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == name
}

// isSnapshotType reports whether t (or what it points to) is a named
// type following the snapshot naming convention: "snapshot" or a
// *Snapshot suffix.
func isSnapshotType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "snapshot" || strings.HasSuffix(name, "Snapshot")
}

// snapshotRoot reports whether the assignable expression writes
// through a snapshot-typed value — a selector, index or dereference
// chain with a snapshot anywhere on its spine — returning the source
// text of the snapshot-typed subexpression, or "".
func snapshotRoot(pass *Pass, expr ast.Expr) string {
	for {
		var base ast.Expr
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			base = e.X
		case *ast.IndexExpr:
			base = e.X
		case *ast.StarExpr:
			base = e.X
		case *ast.ParenExpr:
			expr = e.X
			continue
		default:
			return ""
		}
		if tv, ok := pass.Pkg.Info.Types[base]; ok && isSnapshotType(tv.Type) {
			return exprString(base)
		}
		expr = base
	}
}

// exprString renders a small expression for finding messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "expression"
	}
}
