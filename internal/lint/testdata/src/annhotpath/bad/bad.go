// Violating fixture for the hot-path-alloc rule scoped to individual
// functions via HotPathFuncs: a Search method outside a read-path
// package that allocates per query.
package bad

import "fmt"

type Index struct{ ids []int64 }

func (ix *Index) Search(q []float32, k int) []string {
	out := []string{}
	seen := map[int64]bool{} // want hot-path-alloc
	for _, id := range ix.ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		label := fmt.Sprintf("n%d", id) // want hot-path-alloc
		out = append(out, label)        // want hot-path-alloc
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// unlisted is identical but not named in HotPathFuncs, so the rule
// must leave it alone even though it lives in the same package.
func (ix *Index) unlisted() []string {
	out := []string{}
	for _, id := range ix.ids {
		out = append(out, fmt.Sprintf("n%d", id))
	}
	return out
}
