// Clean fixture for the hot-path-alloc rule scoped via HotPathFuncs:
// the Search method reuses pooled scratch state and hints every slice
// it creates, like internal/ann's real kernels.
package good

import "sync"

type scratch struct {
	visited map[int64]bool
}

var pool = sync.Pool{New: func() any {
	return &scratch{visited: make(map[int64]bool, 64)}
}}

type Index struct{ ids []int64 }

func (ix *Index) Search(q []float32, k int) []int64 {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	res := make([]int64, 0, k)
	for _, id := range ix.ids {
		if sc.visited[id] || len(res) == k {
			continue
		}
		sc.visited[id] = true
		res = append(res, id)
	}
	for id := range sc.visited {
		delete(sc.visited, id)
	}
	return res
}
