// Fixture for call-graph construction tests: interface dispatch with
// two implementations, a promoted method, a method value (ModeRef),
// and go/defer call modes.
package callgraph

type Runner interface{ Run() }

type A struct{}

func (A) Run() { helperA() }

func helperA() {}

type B struct{}

func (*B) Run() {}

// invoke calls through the interface; CHA resolves it to every
// implementation in the module.
func invoke(r Runner) { r.Run() }

type Base struct{}

func (Base) Ping() {}

type Derived struct{ Base }

// promoted calls Ping through the embedded Base.
func promoted(d Derived) { d.Ping() }

// modes exercises the non-plain call modes: a method value that is
// referenced but not (statically) invoked, a goroutine spawn, and a
// deferred call.
func modes(a A) {
	f := a.Run
	f()
	go helperA()
	defer helperA()
}

var _ = invoke
var _ = promoted
var _ = modes
