// Violating fixture modeling a shard router built without
// internal/cluster's seams: shard health decided by wall-clock
// cooldowns, probe jitter from math/rand, fan-out legs minted from a
// fresh context instead of the request's, and a shard-state dump that
// ranges a map straight into output — each the defect the determinism
// and ctx-propagation rules police in internal/cluster.
package bad

import (
	"context"
	"fmt"
	"math/rand" // want determinism
	"time"
)

type shard struct {
	lastFailure time.Time
}

// healthy gates probing on wall-clock elapsed time: replaying a chaos
// test on a slower machine heals shards at different request ordinals,
// so the failure sequence cannot be reproduced. Count-based probing
// (every Nth arrival) is the deterministic seam.
func (s *shard) healthy(cooldown time.Duration) bool {
	return time.Since(s.lastFailure) > cooldown // want determinism
}

// probeJitter spreads probes with global math/rand: the set of
// requests that probe a down shard changes run to run.
func probeJitter(every int) bool {
	return rand.Intn(every) == 0
}

// scatter severs every fan-out leg from the request that caused it:
// per-shard spans can never parent into the request's trace, and the
// caller's deadline no longer bounds the slowest shard.
func scatter(legs []func(context.Context) error) {
	for _, leg := range legs {
		go leg(context.Background()) // want ctx-propagation
	}
}

// dumpState ranges the shard map straight into the report: two dumps
// of the same cluster list shards in different orders.
func dumpState(byID map[int]*shard) {
	for id, s := range byID { // want determinism
		fmt.Printf("shard %d: %v\n", id, s.lastFailure)
	}
}

var (
	_ = (*shard).healthy
	_ = probeJitter
	_ = scatter
	_ = dumpState
)
